// Section 1.1 premise: divergence control trades bounded staleness for
// concurrency.
//
// Sweep the eps-spec from 0 (pure serializability) upward and compare CC vs
// DC on a query-heavy banking mix: throughput, lock waits, fuzzy grants, and
// -- the other side of the bargain -- the worst realized audit error, which
// must stay within eps at every point.
#include <cstdio>

#include "bench_util.h"
#include "workload/banking.h"

using namespace atp;
using namespace atp::bench;

int main() {
  std::printf("DC vs CC: concurrency bought per epsilon (Section 1.1)\n");
  std::printf("%-10s %-10s %10s %10s %10s %10s %12s %12s %12s\n", "eps",
              "sched", "commit", "waits", "dlock", "tmout", "fuzzyGrant",
              "tps", "maxErr");

  for (const Value eps : {0.0, 50.0, 200.0, 800.0, 3200.0}) {
    BankingConfig cfg;
    cfg.branches = 2;
    cfg.accounts_per_branch = 16;
    cfg.max_transfer = 40;
    cfg.branch_audit_fraction = 0.25;
    cfg.global_audit_fraction = 0.15;
    cfg.audit_scan = 12;
    cfg.zipf_theta = 0.7;
    cfg.update_epsilon = eps;
    cfg.query_epsilon = eps;
    const Workload w = make_banking(cfg, 300, 5150);

    for (const SchedulerKind sched :
         {SchedulerKind::CC, SchedulerKind::DC, SchedulerKind::ODC}) {
      const MethodConfig method = sched == SchedulerKind::CC
                                      ? MethodConfig::baseline_sr()
                                  : sched == SchedulerKind::DC
                                      ? MethodConfig::baseline_dc()
                                      : MethodConfig::baseline_odc();
      const ExecutorReport r = run_local(w, method);
      std::printf(
          "%-10.0f %-10s %10llu %10llu %10llu %10llu %12llu %12.1f %12.1f\n",
          eps, to_string(sched), (unsigned long long)r.committed,
          (unsigned long long)r.lock_stats.waits,
          (unsigned long long)r.lock_stats.deadlocks,
          (unsigned long long)r.lock_stats.timeouts,
          (unsigned long long)r.lock_stats.fuzzy_grants, r.throughput_tps,
          r.query_error.max);
    }
  }
  std::printf(
      "\nexpected shape: CC is flat in eps (it never uses it).  DC tracks CC\n"
      "at eps = 0, then converts budget into fuzzy grants: lock waits fall,\n"
      "throughput rises, and maxErr grows but never crosses eps -- the ESR\n"
      "guarantee.\n");
  return 0;
}
