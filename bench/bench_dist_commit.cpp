// Section 4 reproduction: distributed commit cost and availability.
//
// The paper's claim: replacing {2PC + global validation} with {chopping +
// recoverable queues} removes >= 2 message rounds from every distributed
// commit ("a round trip ... takes from a few hundred milliseconds to a few
// seconds; this approach takes a few hundred milliseconds or a few seconds
// less"), and removes the blocking window a failed participant imposes.
//
// Series 1: client-visible commit latency and completion latency vs one-way
//           network latency for (a) 2PC + validation round, (b) bare 2PC,
//           (c) chopped over recoverable queues.  Plus messages/txn.
// Series 2: availability -- a 300 ms participant outage in the middle of a
//           stream of transfers; how long do clients stall under each
//           scheme?
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "dist/coordinator.h"
#include "dist/dist_executor.h"
#include "dist/site.h"
#include "workload/banking.h"

using namespace atp;
using namespace std::chrono_literals;

namespace {

constexpr Key kX = 1;
constexpr Key kY = 2;

struct Fleet {
  std::unique_ptr<SimNetwork> net;
  std::unique_ptr<Site> ny, la;
  std::vector<Site*> sites;

  explicit Fleet(std::chrono::microseconds one_way) {
    NetworkOptions n;
    n.one_way_latency = one_way;
    net = std::make_unique<SimNetwork>(2, n);
    DatabaseOptions dbo;
    dbo.scheduler = SchedulerKind::DC;
    dbo.lock_timeout = std::chrono::milliseconds(2000);
    ny = std::make_unique<Site>(0, *net, dbo);
    la = std::make_unique<Site>(1, *net, dbo);
    ny->db().load(kX, 1'000'000);
    la->db().load(kY, 1'000'000);
    sites = {ny.get(), la.get()};
    // Retransmission must outwait the ack round trip, or healthy links see
    // spurious duplicates (deduped, but they inflate the message counts).
    const auto retry = std::max(std::chrono::milliseconds(20),
                                std::chrono::duration_cast<std::chrono::milliseconds>(
                                    4 * one_way));
    ny->queues().set_retry_interval(retry);
    la->queues().set_retry_interval(retry);
    Coordinator::install_chop_handler(sites);
    ny->start();
    la->start();
  }
  ~Fleet() {
    ny->stop();
    la->stop();
  }
};

DistTxnSpec transfer(Value amount) {
  DistTxnSpec spec;
  spec.kind = TxnKind::Update;
  spec.piece_epsilon = 5000;  // the paper's $10,000 / 2
  spec.pieces = {DistPieceSpec{0, {Access::add(kX, -amount, amount)}},
                 DistPieceSpec{1, {Access::add(kY, +amount, amount)}}};
  return spec;
}

void series_latency() {
  std::printf("--- Series 1: commit latency vs one-way network latency ---\n");
  std::printf("%-12s %-24s %14s %14s %12s\n", "1-way(ms)", "scheme",
              "client(ms)", "complete(ms)", "msgs/txn");

  for (const int one_way_ms : {1, 5, 20, 50}) {
    Fleet fleet(std::chrono::microseconds(one_way_ms * 1000));
    Coordinator coord(*fleet.ny, fleet.sites);
    const int kRounds = 8;

    struct Scheme {
      const char* name;
      int mode;  // 0 = 2pc+validate, 1 = 2pc, 2 = chopped
    };
    for (const Scheme scheme : {Scheme{"2PC + validation", 0},
                                Scheme{"2PC", 1},
                                Scheme{"chopped + queues", 2}}) {
      double client = 0, complete = 0;
      fleet.net->reset_stats();
      int ok = 0;
      for (int i = 0; i < kRounds; ++i) {
        Result<DistOutcome> out =
            scheme.mode == 2
                ? coord.run_chopped(transfer(100), 30000ms)
                : coord.run_2pc(transfer(100), scheme.mode == 0, 30000ms);
        if (!out.ok()) continue;
        ++ok;
        client += out.value().client_latency_us / 1000.0;
        complete += out.value().complete_latency_us / 1000.0;
      }
      const double msgs =
          ok > 0 ? double(fleet.net->stats().sent) / double(ok) : 0;
      std::printf("%-12d %-24s %14.2f %14.2f %12.1f\n", one_way_ms,
                  scheme.name, client / ok, complete / ok, msgs);
    }
  }
  std::printf(
      "\nexpected shape: 2PC+validation client latency ~= 4x one-way (two\n"
      "round trips); bare 2PC ~= 2x; chopped ~= 0x (one local commit) with\n"
      "completion ~= 2x one-way (data hop + done notice), off the client's\n"
      "critical path.  Chopped also sends fewer messages per transaction.\n\n");
}

void series_availability() {
  std::printf("--- Series 2: availability across a 300 ms participant outage "
              "---\n");
  std::printf("%-24s %10s %14s %14s\n", "scheme", "txns", "worstClient(ms)",
              "stalled>100ms");

  for (const int mode : {0, 2}) {  // 2PC+validation vs chopped
    Fleet fleet(std::chrono::microseconds(2000));
    Coordinator coord(*fleet.ny, fleet.sites);

    std::thread outage([&] {
      std::this_thread::sleep_for(150ms);
      fleet.la->crash();
      std::this_thread::sleep_for(300ms);
      fleet.la->recover();
    });

    double worst_ms = 0;
    int stalled = 0, txns = 0;
    std::vector<std::uint64_t> pending;
    Stopwatch wall;
    while (wall.elapsed_ms() < 700) {
      Stopwatch txn_clock;
      if (mode == 0) {
        auto out = coord.run_2pc(transfer(10), true, 1000ms);
        // 2PC's client answer arrives only when the protocol finishes (or
        // aborts after its vote timeout).
        (void)out;
      } else {
        auto out = coord.run_chopped(transfer(10), 0ms);
        if (out.ok()) pending.push_back(out.value().gtid);
      }
      const double ms = txn_clock.elapsed_ms();
      worst_ms = std::max(worst_ms, ms);
      stalled += ms > 100 ? 1 : 0;
      ++txns;
    }
    outage.join();
    // Drain chopped completions so the fleet tears down cleanly.
    for (const auto gtid : pending) fleet.ny->wait_done(gtid, 10000ms);

    std::printf("%-24s %10d %14.1f %14d\n",
                mode == 0 ? "2PC + validation" : "chopped + queues", txns,
                worst_ms, stalled);
  }
  std::printf(
      "\nexpected shape: during the outage 2PC clients stall for the whole\n"
      "window (blocked commit protocol); chopped clients keep committing\n"
      "locally and the queued piece lands after recovery.\n");
}

void series_throughput() {
  std::printf("\n--- Series 3: client throughput, banking mix over two sites "
              "---\n");
  std::printf("%s\n", DistExecutorReport::header().c_str());

  for (const int one_way_ms : {2, 10}) {
    for (const bool chopped : {false, true}) {
      Fleet fleet(std::chrono::microseconds(one_way_ms * 1000));
      BankingConfig cfg;
      cfg.branches = 2;
      cfg.accounts_per_branch = 32;
      cfg.max_transfer = 50;
      cfg.branch_audit_fraction = 0.1;
      cfg.update_epsilon = 10000;
      cfg.query_epsilon = 20000;
      const Workload w = make_banking(cfg, 120, 808);
      const auto site_of = [](Key key) { return SiteId(key / 1'000'000); };
      for (const auto& [key, value] : w.initial_data) {
        fleet.sites[site_of(key)]->db().load(key, value);
      }
      const auto specs = to_dist_specs(w, site_of);

      DistExecutorOptions opts;
      opts.clients = 4;
      opts.use_chopping = chopped;
      const auto report = DistExecutor::run(fleet.sites, specs, opts);
      std::string label = std::to_string(one_way_ms) + "ms " +
                          (chopped ? "chopped" : "2PC+val");
      std::printf("%s\n", report.row(label.c_str()).c_str());
    }
  }
  std::printf(
      "\nexpected shape: a 2PC client thread is captive for 2+ round trips\n"
      "per cross-site transaction, so client throughput collapses with\n"
      "latency; chopped clients commit locally and throughput barely moves\n"
      "(completion drains asynchronously through the queues).\n");
}

}  // namespace

int main() {
  std::printf("Section 4: distributed commit -- 2PC vs chopping + "
              "recoverable queues\n\n");
  series_latency();
  series_availability();
  series_throughput();
  return 0;
}
