// Unified bench driver: every local bench scenario x applicable methods x
// thread counts {1, 2, 4, 8}, with machine-readable output.
//
// Where the individual bench_* binaries each print one human-oriented table,
// this driver runs the same scenario configurations under one roof and emits
// two JSON artifacts in the schema documented in docs/BENCH_SCHEMA.md:
//
//   * BENCH_scaling.json -- every (scenario, method, threads) run;
//   * BENCH_table1.json  -- the Table-1 method matrix (banking scenario at
//     the reference thread count), the paper's headline comparison.
//
// Every run records a full trace and is certifier-verified before its row is
// emitted: the ESR certifier replays the fuzziness ledger (all methods), and
// the SR certifier checks the direct-serialization graph (CC schedulers,
// where serializability is the promise).  A certification failure makes the
// driver exit nonzero -- the JSON is a *verified* artifact, not raw numbers.
//
// Timing: all wall-clock measurement inside runs uses steady_clock (see
// bench_util.h); percentiles are the shared interpolated-rank definition
// from common/metrics.h.
//
// Flags:
//   --json             emit JSON files (default: also prints a summary table)
//   --quick            CI smoke mode: fewer instances per run
//   --out-dir=DIR      directory for BENCH_*.json (default ".")
//   --metrics-port=N   serve live metrics on 127.0.0.1:N while running
//                      (atp-top --url 127.0.0.1:N; SIGUSR1 dumps a snapshot
//                      JSON into --out-dir)
//   --certify          run the online certifier live alongside each run; its
//                      verdict is cross-checked against the offline replay
//                      and its lag/window stats land in the JSON
//
// Observability: every run publishes into its own MetricsRegistry; the final
// snapshot (taken before the run's Database dies, so the retired epsilon-
// budget roll-ups and the stripe heatmap are populated) is embedded in each
// run's JSON record as the "metrics" block, and with --certify the online
// certifier's stats as the "online_cert" block -- schema v3,
// docs/BENCH_SCHEMA.md.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "audit/esr_certifier.h"
#include "audit/online_certifier.h"
#include "audit/sr_certifier.h"
#include "bench_util.h"
#include "obs/http_exporter.h"
#include "obs/metrics_registry.h"
#include "trace/tracer.h"
#include "wal/log.h"
#include "workload/banking.h"

using namespace atp;
using namespace atp::bench;

namespace {

struct Scenario {
  std::string name;
  BankingConfig cfg;
  std::size_t instances = 0;
  std::uint64_t seed = 0;
  std::vector<MethodConfig> methods;
  /// Thread counts to sweep (empty = the driver-wide default ladder).
  std::vector<std::size_t> threads;
  /// Simulated per-op think time (run_local defaults when zero).
  std::uint64_t op_delay_min_us = 0;
  std::uint64_t op_delay_max_us = 0;
  /// Attach a write-ahead log to every run of this scenario: commits force
  /// through the group committer and wal.group.* lands in the JSON metrics.
  bool wal = false;
  std::chrono::microseconds fsync_latency{0};
  CommitWait commit_wait = CommitWait::kSync;
};

/// The scenario set mirrors the standalone benches so their tables and the
/// JSON artifacts describe the same workloads (configs kept in sync by hand;
/// the source bench is named on each block).
std::vector<Scenario> make_scenarios(bool quick) {
  std::vector<Scenario> out;

  {  // bench_table1: the paper's banking mix, all six methods.
    Scenario s;
    s.name = "banking";
    s.cfg.branches = 2;
    s.cfg.accounts_per_branch = 24;
    s.cfg.max_transfer = 50;
    s.cfg.branch_audit_fraction = 0.15;
    s.cfg.global_audit_fraction = 0.08;
    s.cfg.audit_scan = 12;
    s.cfg.zipf_theta = 0.6;
    s.cfg.update_epsilon = 1200;
    s.cfg.query_epsilon = 2500;
    s.instances = quick ? 120 : 400;
    s.seed = 424242;
    s.methods = table1_methods();
    out.push_back(s);
  }

  {  // bench_fig2_dynamic at hops=2: multi-hop transfers, Method 3 policies.
    Scenario s;
    s.name = "multihop";
    s.cfg.branches = 2;
    s.cfg.accounts_per_branch = 12;
    s.cfg.max_transfer = 10;
    s.cfg.hops = 2;
    s.cfg.branch_audit_fraction = 0.0;
    s.cfg.global_audit_fraction = 0.20;
    s.cfg.zipf_theta = 0.6;
    s.cfg.update_epsilon = 200;     // 100 * hops, as in the ablation
    s.cfg.query_epsilon = 100000;   // audits never block
    s.instances = quick ? 80 : 200;
    s.seed = 7;
    s.methods = {MethodConfig::method3(DistPolicy::Static),
                 MethodConfig::method3(DistPolicy::Dynamic)};
    out.push_back(s);
  }

  {  // bench_dc_vs_cc at eps=800: query-heavy mix, unchopped baselines.
     // Think time is lighter than the other scenarios on purpose: this cell
     // measures the store's snapshot-read path, and at the default
     // 100-300us/op the 8-thread run saturates on simulated think time
     // (~2ms/txn caps it near 4k tps) with the query path idle.  At
     // 40-120us the scheduler is the bottleneck again, which is what the
     // lock-free-reads acceptance number tracks.
    Scenario s;
    s.name = "query_heavy";
    s.op_delay_min_us = 40;
    s.op_delay_max_us = 120;
    s.cfg.branches = 2;
    s.cfg.accounts_per_branch = 16;
    s.cfg.max_transfer = 40;
    s.cfg.branch_audit_fraction = 0.25;
    s.cfg.global_audit_fraction = 0.15;
    s.cfg.audit_scan = 12;
    s.cfg.zipf_theta = 0.7;
    s.cfg.update_epsilon = 800;
    s.cfg.query_epsilon = 800;
    s.instances = quick ? 100 : 300;
    s.seed = 5150;
    s.methods = {MethodConfig::baseline_sr(), MethodConfig::baseline_dc(),
                 MethodConfig::baseline_odc()};
    out.push_back(s);
  }

  {  // bench_method_crossover "heavy audits, tight eps" cell, all methods.
    Scenario s;
    s.name = "crossover_tight";
    s.cfg.branches = 2;
    s.cfg.accounts_per_branch = 16;
    s.cfg.max_transfer = 40;
    s.cfg.branch_audit_fraction = 0.35;
    s.cfg.global_audit_fraction = 0.15;
    s.cfg.audit_scan = 10;
    s.cfg.zipf_theta = 0.8;
    s.cfg.update_epsilon = 200;   // 800 * 0.25
    s.cfg.query_epsilon = 400;    // 1600 * 0.25
    s.instances = quick ? 100 : 300;
    s.seed = 999;
    s.methods = table1_methods();
    out.push_back(s);
  }

  {  // Group commit: the banking mix against a WAL with realistic fsync
     // cost, on the commit{wait=async} fast path -- success at append,
     // durability at the next group flush (the async backlog forces one
     // fsync per kAsyncFlushBacklog commits).  The cell's
     // wal.group.fsyncs_per_commit is the batching factor the subsystem
     // exists to buy (acceptance: <= 0.25 under 8 concurrent committers;
     // sync mode is bounded near ~1/3 by the durability wait itself --
     // each committer stalls ~2.5 flush periods -- and wal_test covers its
     // never-report-before-durable contract).
    Scenario s;
    s.name = "group_commit";
    s.cfg.branches = 2;
    s.cfg.accounts_per_branch = 24;
    s.cfg.max_transfer = 50;
    s.cfg.branch_audit_fraction = 0.15;
    s.cfg.global_audit_fraction = 0.08;
    s.cfg.audit_scan = 12;
    s.cfg.zipf_theta = 0.6;
    s.cfg.update_epsilon = 1200;
    s.cfg.query_epsilon = 2500;
    s.instances = quick ? 120 : 400;
    s.seed = 424242;
    s.methods = {MethodConfig::baseline_sr(), MethodConfig::baseline_dc()};
    s.threads = {8};
    s.wal = true;
    s.fsync_latency = std::chrono::microseconds(1000);
    s.commit_wait = CommitWait::kAsync;
    out.push_back(s);
  }

  return out;
}

struct RunRecord {
  std::string scenario;
  std::string method;
  std::string sched;
  std::size_t threads = 0;
  std::size_t instances = 0;
  Value eps_q = 0;
  ExecutorReport report;
  obs::MetricsSnapshot metrics;  ///< final per-run snapshot (schema "metrics")
  bool esr_ok = false;
  bool sr_checked = false;
  bool sr_ok = false;
  bool online_enabled = false;  ///< --certify: online certifier ran live
  bool online_check_sr = false;
  OnlineCertifierStats online;  ///< stats after the final drain
};

/// `git rev-parse --short HEAD`, or "unknown" outside a work tree.
std::string git_sha() {
  std::string sha = "unknown";
  if (FILE* p = popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    char buf[64] = {};
    if (std::fgets(buf, sizeof buf, p) != nullptr) {
      std::string s(buf);
      while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) s.pop_back();
      if (!s.empty()) sha = s;
    }
    pclose(p);
  }
  return sha;
}

/// Minimal JSON string escaping (method names contain only safe chars, but
/// the emitter shouldn't rely on that).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Counter/gauge value of `name` in the snapshot (0 when absent).
double mval(const obs::MetricsSnapshot& s, const std::string& name) {
  const obs::Sample* p = s.find(name);
  return p == nullptr ? 0 : p->value;
}

/// The run's "metrics" block: epsilon-budget roll-ups (retired + live -- at
/// snapshot time every ET has retired, but the split keeps the numbers
/// honest if that ever changes), commit/abort tallies, and the per-stripe
/// lock heatmap.  Shapes documented in docs/BENCH_SCHEMA.md (schema v2).
void append_metrics_json(std::string& out, const obs::MetricsSnapshot& m,
                         const char* indent) {
  char buf[512];
  auto eps_cls = [&](const char* cls) {
    const std::string live = std::string("eps.live.") + cls + ".";
    const std::string ret = std::string("eps.retired.") + cls + ".";
    std::snprintf(buf, sizeof buf,
                  "\"%s_ets\": %.0f, \"%s_used\": %.6g, \"%s_limit\": %.6g, "
                  "\"%s_unlimited\": %.0f",
                  cls, mval(m, live + "count") + mval(m, ret + "count"), cls,
                  mval(m, live + "used") + mval(m, ret + "used"), cls,
                  mval(m, live + "limit") + mval(m, ret + "limit"), cls,
                  mval(m, live + "unlimited") + mval(m, ret + "unlimited"));
    return std::string(buf);
  };
  out += std::string(indent) + " \"metrics\": {\n";
  std::snprintf(buf, sizeof buf,
                "%s  \"eps\": {\"charges_ok\": %.0f, \"rejected_import\": "
                "%.0f, \"rejected_export\": %.0f, \"rejected_admission\": "
                "%.0f, \"import_charged\": %.6g, \"export_charged\": %.6g,\n",
                indent, mval(m, "eps.charges_ok"),
                mval(m, "eps.rejected_import"), mval(m, "eps.rejected_export"),
                mval(m, "eps.rejected_admission"),
                mval(m, "eps.import_charged"), mval(m, "eps.export_charged"));
  out += buf;
  out += std::string(indent) + "   " + eps_cls("query") + ",\n";
  out += std::string(indent) + "   " + eps_cls("update") + "},\n";
  std::snprintf(buf, sizeof buf,
                "%s  \"db\": {\"commits\": %.0f, \"aborts\": %.0f},\n", indent,
                mval(m, "db.commits"), mval(m, "db.aborts"));
  out += buf;
  out += std::string(indent) + "  \"lock_stripes\": [";
  const auto stripes = std::size_t(mval(m, "lock.stripes"));
  for (std::size_t i = 0; i < stripes; ++i) {
    const std::string p = "lock.stripe." + std::to_string(i) + ".";
    const obs::Sample* lat = m.find(p + "acquire_us");
    std::snprintf(
        buf, sizeof buf,
        "%s{\"acquires\": %.0f, \"waits\": %.0f, \"deadlocks\": %.0f, "
        "\"timeouts\": %.0f, \"fuzzy_grants\": %.0f, \"max_waiters\": %.0f, "
        "\"acquire_us_p50\": %.3g, \"acquire_us_p95\": %.3g}",
        i == 0 ? "" : ", ", mval(m, p + "acquires"), mval(m, p + "waits"),
        mval(m, p + "deadlocks"), mval(m, p + "timeouts"),
        mval(m, p + "fuzzy_grants"), mval(m, p + "max_waiters"),
        lat != nullptr ? lat->summary.p50 : 0,
        lat != nullptr ? lat->summary.p95 : 0);
    out += buf;
  }
  out += "],\n";
  // v4: the multi-version store's counters -- how many snapshots the run's
  // queries took, what the version GC reclaimed, and how often the ring
  // aged a snapshot out (each one is a query retry).
  std::snprintf(
      buf, sizeof buf,
      "%s  \"mvcc\": {\"commit_seq\": %.0f, \"versions_published\": %.0f, "
      "\"gc_reclaimed\": %.0f, \"snapshot_too_old\": %.0f, "
      "\"snapshots_acquired\": %.0f, \"live_snapshots\": %.0f}",
      indent, mval(m, "mvcc.commit_seq"), mval(m, "mvcc.versions_published"),
      mval(m, "mvcc.gc_reclaimed"), mval(m, "mvcc.snapshot_too_old"),
      mval(m, "mvcc.snapshots_acquired"), mval(m, "mvcc.live_snapshots"));
  out += buf;
  // v4: group-commit batching, WAL-attached runs only.
  if (m.find("wal.group.flushes") != nullptr) {
    std::snprintf(
        buf, sizeof buf,
        ",\n%s  \"wal_group\": {\"commits_sync\": %.0f, \"commits_async\": "
        "%.0f, \"flushes\": %.0f, \"batched\": %.0f, \"async_self_flushes\": "
        "%.0f, \"fsyncs_per_commit\": %.4f, \"durable_lsn\": %.0f}",
        indent, mval(m, "wal.group.commits_sync"),
        mval(m, "wal.group.commits_async"), mval(m, "wal.group.flushes"),
        mval(m, "wal.group.batched"), mval(m, "wal.group.async_self_flushes"),
        mval(m, "wal.group.fsyncs_per_commit"),
        mval(m, "wal.group.durable_lsn"));
    out += buf;
  }
  out += "}";
}

void append_run_json(std::string& out, const RunRecord& r,
                     const char* indent) {
  char buf[512];
  const ExecutorReport& rep = r.report;
  std::snprintf(
      buf, sizeof buf,
      "%s{\"scenario\": \"%s\", \"method\": \"%s\", \"sched\": \"%s\", "
      "\"threads\": %zu, \"instances\": %zu,\n"
      "%s \"committed\": %llu, \"tps\": %.2f, "
      "\"p50_us\": %.1f, \"p95_us\": %.1f, \"p99_us\": %.1f,\n"
      "%s \"mean_z\": %.4f, \"max_audit_error\": %.4f, \"eps_q\": %.1f, "
      "\"budget_violations\": %llu,\n",
      indent, json_escape(r.scenario).c_str(), json_escape(r.method).c_str(),
      r.sched.c_str(), r.threads, r.instances, indent,
      (unsigned long long)rep.committed, rep.throughput_tps, rep.latency_us.p50,
      rep.latency_us.p95, rep.latency_us.p99, indent, rep.txn_fuzziness.mean,
      rep.query_error.max, double(r.eps_q),
      (unsigned long long)rep.budget_violations);
  out += buf;
  std::snprintf(
      buf, sizeof buf,
      "%s \"deadlock_aborts\": %llu, \"epsilon_aborts\": %llu, "
      "\"resubmissions\": %llu, \"steals\": %llu, \"wall_seconds\": %.4f,\n"
      "%s \"certified\": {\"esr_ok\": %s, \"sr_checked\": %s, \"sr_ok\": "
      "%s},\n",
      indent, (unsigned long long)rep.deadlock_aborts,
      (unsigned long long)rep.epsilon_aborts,
      (unsigned long long)rep.resubmissions, (unsigned long long)rep.steals,
      rep.wall_seconds, indent, r.esr_ok ? "true" : "false",
      r.sr_checked ? "true" : "false",
      r.sr_checked ? (r.sr_ok ? "true" : "false") : "null");
  out += buf;
  if (r.online_enabled) {
    const OnlineCertifierStats& os = r.online;
    std::snprintf(
        buf, sizeof buf,
        "%s \"online_cert\": {\"enabled\": true, \"check_sr\": %s, "
        "\"violations\": %llu, \"sr_violations\": %llu, \"esr_violations\": "
        "%llu,\n"
        "%s  \"events\": %llu, \"edges\": %llu, \"window_nodes_peak\": %llu, "
        "\"retired_nodes\": %llu, \"max_lag_us\": %llu, \"dropped_events\": "
        "%llu, \"degraded\": %s},\n",
        indent, r.online_check_sr ? "true" : "false",
        (unsigned long long)os.violations(),
        (unsigned long long)os.sr_violations,
        (unsigned long long)os.esr_violations, indent,
        (unsigned long long)os.events_processed,
        (unsigned long long)os.edges_added,
        (unsigned long long)os.window_nodes_peak,
        (unsigned long long)os.retired_nodes,
        (unsigned long long)os.max_lag_us,
        (unsigned long long)os.dropped_events, os.degraded ? "true" : "false");
    out += buf;
  } else {
    out += std::string(indent) + " \"online_cert\": {\"enabled\": false},\n";
  }
  append_metrics_json(out, r.metrics, indent);
  out += "}";
}

void write_json(const std::string& path, const std::string& sha, bool quick,
                const std::vector<const RunRecord*>& runs) {
  std::string out = "{\n";
  out += "  \"schema_version\": 4,\n";
  out += "  \"generated_by\": \"bench_driver\",\n";
  out += "  \"git_sha\": \"" + json_escape(sha) + "\",\n";
  out += std::string("  \"quick\": ") + (quick ? "true" : "false") + ",\n";
  out += "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    append_run_json(out, *runs[i], "    ");
    if (i + 1 < runs.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "bench_driver: cannot write %s\n", path.c_str());
    std::exit(2);
  }
  f << out;
  std::printf("wrote %s (%zu runs)\n", path.c_str(), runs.size());
}

}  // namespace

int main(int argc, char** argv) {
  bool emit_json = false;
  bool quick = false;
  bool certify = false;
  std::string out_dir = ".";
  std::uint16_t metrics_port = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      emit_json = true;
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--certify") {
      certify = true;
    } else if (arg.rfind("--out-dir=", 0) == 0) {
      out_dir = arg.substr(std::strlen("--out-dir="));
    } else if (arg.rfind("--metrics-port=", 0) == 0) {
      metrics_port = std::uint16_t(
          std::strtoul(arg.c_str() + std::strlen("--metrics-port="), nullptr,
                       10));
    } else {
      std::fprintf(stderr,
                   "usage: bench_driver [--json] [--quick] [--out-dir=DIR] "
                   "[--metrics-port=N] [--certify]\n");
      return 2;
    }
  }

  // One exporter for the whole driver; each run points it at its own
  // registry, so atp-top always watches the run in progress.
  std::unique_ptr<obs::ObsServer> metrics_server;
  if (metrics_port != 0) {
    metrics_server =
        std::make_unique<obs::ObsServer>(nullptr, metrics_port);
    if (metrics_server->ok()) {
      metrics_server->enable_signal_dump(out_dir + "/metrics_dump", SIGUSR1);
      std::printf("serving metrics on 127.0.0.1:%u "
                  "(atp-top --url 127.0.0.1:%u; SIGUSR1 dumps JSON)\n",
                  unsigned(metrics_server->port()),
                  unsigned(metrics_server->port()));
    }
  }

  const std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
  constexpr std::size_t kReferenceThreads = 8;  // Table-1 rows come from here

  const std::vector<Scenario> scenarios = make_scenarios(quick);
  std::vector<std::unique_ptr<RunRecord>> records;
  bool cert_failed = false;

  std::printf("%-16s %-22s %8s %10s %12s %10s %10s %10s %12s %8s\n",
              "scenario", "method", "threads", "commit", "tps", "p50(us)",
              "p99(us)", "maxErr", "eps(Q)", "cert");
  for (const Scenario& sc : scenarios) {
    const Workload w = make_banking(sc.cfg, sc.instances, sc.seed);
    const std::vector<std::size_t>& sweep =
        sc.threads.empty() ? thread_counts : sc.threads;
    for (const MethodConfig& method : sc.methods) {
      for (const std::size_t threads : sweep) {
        // Declaration order is lifetime order: the tracer's dtor detaches its
        // collector from run_metrics, and the certifier's dtor both detaches
        // from run_metrics and drops its subscription on the tracer.
        obs::MetricsRegistry run_metrics;
        obs::MetricsSnapshot final_snapshot;
        Tracer tracer(1 << 18);
        std::unique_ptr<OnlineCertifier> online;
        if (certify) {
          tracer.attach_metrics(&run_metrics);
          OnlineCertifierOptions co;
          // ET-level SR is only the CC schedulers' promise (see the offline
          // block below); DC schedules pay for divergence by design.
          co.check_sr = method.sched == SchedulerKind::CC;
          co.metrics = &run_metrics;
          online = std::make_unique<OnlineCertifier>(tracer, co);
          online->start();
        }
        if (metrics_server) metrics_server->set_registry(&run_metrics);
        LogDevice wal_device;  // per-run log; only attached when sc.wal
        LocalRunConfig rc;
        rc.workers = threads;
        rc.tracer = &tracer;
        rc.metrics = &run_metrics;
        rc.final_snapshot_out = &final_snapshot;
        if (sc.wal) {
          rc.wal = &wal_device;
          rc.fsync_latency = sc.fsync_latency;
          rc.commit_wait = sc.commit_wait;
        }
        if (sc.op_delay_max_us > 0) {
          rc.op_delay_min_us = sc.op_delay_min_us;
          rc.op_delay_max_us = sc.op_delay_max_us;
        }
        const ExecutorReport rep = run_local(w, method, rc);
        if (online) online->stop();  // final drain: verdict covers every event
        // Detach before run_metrics dies; a scrape between runs sees empty.
        if (metrics_server) metrics_server->set_registry(nullptr);

        const std::vector<TraceEvent> events = tracer.collect();
        const std::uint64_t dropped = tracer.dropped();
        const EsrReport esr = certify_esr(events, dropped);

        auto rec = std::make_unique<RunRecord>();
        rec->scenario = sc.name;
        rec->method = method.name();
        rec->sched = to_string(method.sched);
        rec->threads = threads;
        rec->instances = sc.instances;
        rec->eps_q = sc.cfg.query_epsilon;
        rec->report = rep;
        rec->metrics = std::move(final_snapshot);
        rec->esr_ok = esr.ok && esr.complete;
        if (method.sched == SchedulerKind::CC) {
          // Serializability is only the CC schedulers' promise; DC schedules
          // are epsilon-serializable by design and would (correctly) show
          // cycles involving fuzzy reads.  SR-choppings (Theorem 1) are
          // serializable at original-transaction granularity, so pieces are
          // merged; an ESR-chopping only promises ET-level SR.
          const auto merge = piece_merge_map(events);
          const bool merge_pieces = method.chop != ChopMode::ESR;
          const SrReport sr =
              certify_sr(events, merge_pieces ? &merge : nullptr, dropped);
          rec->sr_checked = true;
          rec->sr_ok = sr.serializable && sr.complete;
          if (!rec->sr_ok) {
            std::fprintf(stderr, "SR certification FAILED (%s/%s, %zu thr): %s\n",
                         sc.name.c_str(), rec->method.c_str(), threads,
                         sr.describe().c_str());
            cert_failed = true;
          }
        }
        if (!rec->esr_ok) {
          std::fprintf(stderr, "ESR certification FAILED (%s/%s, %zu thr): %s\n",
                       sc.name.c_str(), rec->method.c_str(), threads,
                       esr.describe().c_str());
          cert_failed = true;
        }
        if (online) {
          rec->online_enabled = true;
          rec->online_check_sr = method.sched == SchedulerKind::CC;
          rec->online = online->stats();
          // Cross-check the live verdict against the offline replay.  A full-
          // confidence online pass must agree with offline on ESR, and under
          // a CC scheduler must see zero ET-level cycles; disagreement means
          // one of the two certifiers is wrong, which is worth failing loud.
          if (!rec->online.degraded) {
            const bool online_esr_ok = rec->online.esr_violations == 0;
            bool mismatch = online_esr_ok != esr.ok;
            if (rec->online_check_sr && rec->online.sr_violations > 0) {
              mismatch = true;
            }
            if (mismatch) {
              std::fprintf(stderr,
                           "online/offline certifier MISMATCH (%s/%s, %zu "
                           "thr): online sr=%llu esr=%llu, offline esr_ok=%s\n",
                           sc.name.c_str(), rec->method.c_str(), threads,
                           (unsigned long long)rec->online.sr_violations,
                           (unsigned long long)rec->online.esr_violations,
                           esr.ok ? "true" : "false");
              for (const OnlineViolation& v : online->violations()) {
                std::fprintf(stderr, "  %s\n", v.witness.c_str());
              }
              cert_failed = true;
            }
          }
        }

        const bool cert_ok = rec->esr_ok && (!rec->sr_checked || rec->sr_ok);
        std::printf(
            "%-16s %-22s %8zu %10llu %12.1f %10.0f %10.0f %10.1f %12.0f %8s\n",
            sc.name.c_str(), rec->method.c_str(), threads,
            (unsigned long long)rep.committed, rep.throughput_tps,
            rep.latency_us.p50, rep.latency_us.p99, rep.query_error.max,
            double(sc.cfg.query_epsilon), cert_ok ? "ok" : "FAIL");
        records.push_back(std::move(rec));
      }
    }
  }

  // Shape checks (see EXPERIMENTS.md "Scaling"): chopped methods must turn
  // extra workers into throughput on the think-time-bound banking mix.
  int shape_failures = 0;
  for (const auto& rec : records) {
    if (rec->scenario != "banking" || rec->threads != 4) continue;
    if (rec->method != MethodConfig::method3().name()) continue;
    for (const auto& base : records) {
      if (base->scenario == "banking" && base->method == rec->method &&
          base->threads == 1) {
        const double ratio =
            base->report.throughput_tps > 0
                ? rec->report.throughput_tps / base->report.throughput_tps
                : 0;
        std::printf("\nscaling check: %s banking 4-thread / 1-thread tps = "
                    "%.2fx (require >= 2.0x)\n",
                    rec->method.c_str(), ratio);
        if (ratio < 2.0) {
          std::fprintf(stderr, "scaling check FAILED\n");
          ++shape_failures;
        }
      }
    }
  }

  if (emit_json) {
    const std::string sha = git_sha();
    std::vector<const RunRecord*> all;
    std::vector<const RunRecord*> table1;
    for (const auto& r : records) {
      all.push_back(r.get());
      // Table-1 artifact: the paper's banking matrix at the reference thread
      // count, plus the two headline cells of the multi-version store --
      // query_heavy (lock-free snapshot reads) and group_commit (batched
      // fsyncs) -- so the committed JSON carries the acceptance numbers.
      if ((r->scenario == "banking" || r->scenario == "query_heavy") &&
          r->threads == kReferenceThreads) {
        table1.push_back(r.get());
      } else if (r->scenario == "group_commit") {
        table1.push_back(r.get());
      }
    }
    write_json(out_dir + "/BENCH_scaling.json", sha, quick, all);
    write_json(out_dir + "/BENCH_table1.json", sha, quick, table1);
  }

  if (cert_failed) {
    std::fprintf(stderr, "bench_driver: certification failures\n");
    return 1;
  }
  if (shape_failures > 0) return 1;
  std::printf("\nall runs certifier-verified (ESR everywhere, SR on CC)\n");
  return 0;
}
