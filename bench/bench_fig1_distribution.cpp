// Figure 1 reproduction (Section 2.2): eps-spec distribution over an
// SR-chopping with restricted and unrestricted pieces.
//
// Part A replays the paper's walk-through exactly: transaction t in five
// pieces, C-cycles touching p1/p3/p5, Limit_t = 51 -> static thirds of 17,
// infinity on p2/p4; the Z = (10, 5, 20) execution rolls p3 back under the
// static split but fits under dynamic leftover propagation.
//
// Part B measures the same effect on a live engine: Method 1 with static vs
// dynamic distribution across a Limit_t sweep, reporting epsilon-driven
// rollbacks (the "unnecessary rollback situations" dynamic distribution
// eliminates).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "limits/distribution.h"
#include "workload/banking.h"

using namespace atp;
using namespace atp::bench;

namespace {

void part_a() {
  std::printf("--- Part A: the paper's Limit_t = 51 walk-through ---\n");
  const auto info = ChopPlanInfo::chain({true, false, true, false, true},
                                        TxnKind::Update, 51);
  StaticDistribution st(info);
  std::printf("static : p1=%.0f p2=inf p3=%.0f p4=inf p5=%.0f\n",
              st.limit_for(0), st.limit_for(2), st.limit_for(4));
  const Value z[] = {10, 5, 20, 0, 0};
  bool static_rollback = false;
  for (int p = 0; p < 5; ++p) {
    if (z[p] > st.limit_for(std::size_t(p))) static_rollback = true;
  }
  std::printf("static : Z = (10, 5, 20, ...) -> p3 %s (20 > 17)\n",
              static_rollback ? "ROLLS BACK" : "fits");

  DynamicDistribution dy(info);
  bool dynamic_rollback = false;
  for (int p = 0; p < 5; ++p) {
    const Value limit = dy.limit_for(std::size_t(p));
    std::printf("dynamic: p%d limit=%s Z=%.0f\n", p + 1,
                limit == kInfiniteLimit ? "inf" : std::to_string(int(limit)).c_str(),
                z[p]);
    if (z[p] > limit) dynamic_rollback = true;
    dy.report_committed(std::size_t(p), z[p]);
  }
  std::printf("dynamic: total Z = 35 <= 51 -> %s\n\n",
              dynamic_rollback ? "rollback (BUG)" : "no rollback");
}

void part_b() {
  std::printf("--- Part B: static vs dynamic on a live engine (Method 3) "
              "---\n");
  std::printf("workload: chopped transfers (bound 20) vs whole-bank audits;\n"
              "query eps is generous, so every epsilon event is an export-\n"
              "budget block on a transfer piece -- exactly where the limit\n"
              "distribution policy acts.  Median of 3 runs.\n");
  std::printf("%-10s %-22s %10s %10s %10s %12s\n", "Limit_t", "method",
              "commit", "epsAbort", "resubmit", "tps(med)");

  for (const Value limit : {120.0, 180.0, 300.0, 600.0}) {
    BankingConfig cfg;
    cfg.branches = 2;
    cfg.accounts_per_branch = 12;
    cfg.max_transfer = 20;  // Z^is of a chopped transfer = 80 < every limit
    cfg.branch_audit_fraction = 0.0;
    cfg.global_audit_fraction = 0.25;
    cfg.zipf_theta = 0.6;
    cfg.update_epsilon = limit;
    cfg.query_epsilon = 100000;  // audits never block: pressure on exports
    const Workload w = make_banking(cfg, 250, 11);

    for (const DistPolicy policy : {DistPolicy::Static, DistPolicy::Dynamic}) {
      const MethodConfig method = MethodConfig::method3(policy);
      std::vector<double> tps;
      std::uint64_t eps = 0, resub = 0, commit = 0;
      for (std::uint64_t seed : {1u, 2u, 3u}) {
        LocalRunConfig rc;
        rc.seed = seed;
        rc.lock_timeout = std::chrono::milliseconds(500);
        const ExecutorReport r = run_local(w, method, rc);
        tps.push_back(r.throughput_tps);
        eps += r.epsilon_aborts;
        resub += r.resubmissions;
        commit = r.committed;
      }
      std::sort(tps.begin(), tps.end());
      std::printf("%-10.0f %-22s %10llu %10llu %10llu %12.1f\n", limit,
                  method.name().c_str(), (unsigned long long)commit,
                  (unsigned long long)eps, (unsigned long long)resub, tps[1]);
    }
  }
  std::printf("\nexpected shape: at tight Limit_t the static split strands\n"
              "quota on lightly-loaded pieces and blocks/aborts more;\n"
              "dynamic leftover propagation absorbs the same fuzziness with\n"
              "fewer epsilon events, converging as Limit_t grows.\n");
}

}  // namespace

int main() {
  std::printf("Figure 1 / Section 2.2: inconsistency-limit distribution\n\n");
  part_a();
  part_b();
  return 0;
}
