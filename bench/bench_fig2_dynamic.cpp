// Figure 2 ablation: dynamic leftover propagation vs static even split as
// the chopping grows finer.
//
// The deeper a transaction is chopped, the more ways its Limit_t is split --
// and the likelier that one hot piece exhausts its static share while
// siblings sit on unused quota (the Section 2.2.2 pathology).  Dynamic
// distribution (Figure 2's algorithm) re-flows leftovers down the dependency
// chain, so its throughput should degrade less with depth.
//
// Workload: multi-hop banking transfers (2*hops pieces each) against
// whole-bank audits under Method 3.  Budgets scale with hops so the static
// per-piece share stays constant -- any widening gap is the distribution
// policy, not total pressure.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "workload/banking.h"

using namespace atp;
using namespace atp::bench;

int main() {
  std::printf("Figure 2 ablation: eps-spec distribution vs chopping depth\n");
  std::printf("%-6s %-8s %-22s %10s %10s %10s %12s %12s\n", "hops", "pieces",
              "method", "commit", "epsAbort", "resubmit", "tps(med)",
              "p95(us)");

  for (const std::size_t hops : {1u, 2u, 4u}) {
    BankingConfig cfg;
    cfg.branches = 2;
    cfg.accounts_per_branch = 12;
    cfg.max_transfer = 10;
    cfg.hops = hops;
    cfg.branch_audit_fraction = 0.0;
    cfg.global_audit_fraction = 0.20;
    cfg.zipf_theta = 0.6;
    // Z^is of a fully chopped transfer = 2*hops pieces x 2 doubled global-
    // audit edges x bound = 40*hops.  Limit 100*hops keeps the chop legal
    // and leaves a DC budget of 60*hops: a constant 30 per piece statically.
    cfg.update_epsilon = 100.0 * double(hops);
    cfg.query_epsilon = 100000;  // audits never block; pressure on exports
    const Workload w = make_banking(cfg, 200, 7);

    for (const DistPolicy policy : {DistPolicy::Static, DistPolicy::Dynamic}) {
      const MethodConfig method = MethodConfig::method3(policy);
      auto plan = ExecutionPlan::build(w.types, method);
      std::size_t transfer_pieces = 0;
      if (plan.ok()) {
        for (const auto& tp : plan.value().types) {
          if (tp.type.kind == TxnKind::Update) {
            transfer_pieces =
                std::max(transfer_pieces, tp.piece_ranges.size());
          }
        }
      }
      std::vector<double> tps;
      std::vector<double> p95;
      std::uint64_t eps = 0, resub = 0, commit = 0;
      for (const std::uint64_t seed : {1u, 2u, 3u}) {
        LocalRunConfig rc;
        rc.seed = seed;
        rc.lock_timeout = std::chrono::milliseconds(500);
        const ExecutorReport r = run_local(w, method, rc);
        tps.push_back(r.throughput_tps);
        p95.push_back(r.latency_us.p95);
        eps += r.epsilon_aborts;
        resub += r.resubmissions;
        commit = r.committed;
      }
      std::printf("%-6zu %-8zu %-22s %10llu %10llu %10llu %12.1f %12.0f\n",
                  hops, transfer_pieces, method.name().c_str(),
                  (unsigned long long)commit, (unsigned long long)eps,
                  (unsigned long long)resub, median(tps), median(p95));
    }
  }
  std::printf("\nexpected shape: both policies run the same chopping; as\n"
              "depth grows the static split strands more quota on cold\n"
              "pieces, so the dynamic advantage widens with hops.\n");
  return 0;
}
