// Figure 3 / Section 3.1 reproduction: inter-sibling fuzziness and the
// ESR-chopping legality frontier.
//
// Part A replays the paper's exact example: the SC-cycle through p1, t2, t3,
// t4, p2 with C-edge weights (2, 1, 4, 8); Eq. 4 gives W_S = 2 + 8 = 10.
//
// Part B maps the frontier Definition 1 draws: for the banking job stream,
// how finely each transfer type may be chopped as a function of (a) the
// transaction's eps budget Limit_t and (b) the per-conflict bound W_C.
// SR-chopping is the Limit_t -> 0 (or W_C -> infinity) corner.
#include <cstdio>

#include "chop/analyzer.h"
#include "chop/graph.h"
#include "engine/plan.h"
#include "workload/banking.h"

using namespace atp;

namespace {

void part_a() {
  std::printf("--- Part A: Figure 3's weights, replayed exactly ---\n");
  PieceGraph g;
  const auto p1 = g.add_piece(0, true);
  const auto p2 = g.add_piece(0, true);
  const auto t2 = g.add_piece(1, false);
  const auto t3 = g.add_piece(2, true);
  const auto t4 = g.add_piece(3, false);
  const std::size_t s = g.edges().size();
  g.add_s_edge(p1, p2);
  g.add_c_edge(p1, t2, 2);
  g.add_c_edge(t2, t3, 1);
  g.add_c_edge(t3, t4, 4);
  g.add_c_edge(t4, p2, 8);
  g.finalize();
  std::printf("SC-cycle exists: %s\n", g.has_sc_cycle() ? "yes" : "no");
  std::printf("W_S(s) = %.0f   (paper: 2 + 8 = 10)\n", g.s_edge_weight(s));
  std::printf("Z^is(t1) = %.0f\n\n", g.inter_sibling_fuzziness(0));
}

void part_b() {
  std::printf("--- Part B: ESR-chopping legality frontier (banking types) "
              "---\n");
  std::printf("%-12s %-12s %16s %16s %12s\n", "Limit_t(U)", "bound W_C",
              "SR pieces/xfer", "ESR pieces/xfer", "Z^is(xfer)");

  for (const Value bound : {25.0, 50.0, 100.0}) {
    for (const Value limit : {100.0, 200.0, 400.0, 800.0}) {
      BankingConfig cfg;
      cfg.branches = 2;
      cfg.accounts_per_branch = 8;
      cfg.max_transfer = bound;
      cfg.branch_audit_fraction = 0.2;
      cfg.global_audit_fraction = 0.1;
      cfg.update_epsilon = limit;
      cfg.query_epsilon = 4 * limit;
      const Workload w = make_banking(cfg, 1, 1);

      auto sr = ExecutionPlan::build(w.types, MethodConfig::sr_chop_cc());
      auto esr = ExecutionPlan::build(w.types, MethodConfig::method2());
      if (!sr.ok() || !esr.ok()) continue;
      std::size_t sr_pieces = 0, esr_pieces = 0, n = 0;
      Value zis = 0;
      for (std::size_t i = 0; i < w.types.size(); ++i) {
        if (w.types[i].kind != TxnKind::Update) continue;
        sr_pieces += sr.value().types[i].piece_ranges.size();
        esr_pieces += esr.value().types[i].piece_ranges.size();
        zis = std::max(zis, esr.value().types[i].z_is);
        ++n;
      }
      std::printf("%-12.0f %-12.0f %16.2f %16.2f %12.0f\n", limit, bound,
                  double(sr_pieces) / double(n), double(esr_pieces) / double(n),
                  zis);
    }
  }
  std::printf(
      "\nexpected shape: SR stays at 1 piece per transfer (audits put every\n"
      "chopped transfer on an SC-cycle); ESR reaches 2 pieces once Limit_t\n"
      "covers the inter-sibling fuzziness -- the frontier scales with the\n"
      "conflict bound W_C, and tight budgets reduce ESR to SR (upward\n"
      "compatibility).\n");
}

void part_c() {
  std::printf("\n--- Part C: chopping graph of the paper's Section 4 example "
              "(DOT) ---\n");
  // Transfer X->Y chopped, audit reading both: the canonical SC-cycle.
  const TxnProgram transfer = ProgramBuilder("transfer", TxnKind::Update)
                                  .add(1, -100, 100)
                                  .add(2, +100, 100)
                                  .epsilon(250)
                                  .build();
  const TxnProgram audit = ProgramBuilder("audit", TxnKind::Query)
                               .read(1)
                               .read(2)
                               .epsilon(250)
                               .build();
  const std::vector<TxnProgram> programs{transfer, audit};
  const Chopping chop({{0, 1}, {0}});
  const PieceGraph g = build_chopping_graph(programs, chop);
  std::printf("%s", g.to_dot().c_str());
}

}  // namespace

int main() {
  std::printf("Figure 3 / Definition 1: inter-sibling fuzziness & "
              "ESR-chopping\n\n");
  part_a();
  part_b();
  part_c();
  return 0;
}
