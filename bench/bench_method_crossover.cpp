// Section 5 reproduction: where each method wins.
//
// The paper's qualitative ranking: "there are scenarios where SR-chopping on
// divergence control wins and others in which ESR-chopping on concurrency
// control wins", while Method 3 combines both advantages.  We sweep the two
// axes that decide the outcome:
//
//   * audit pressure (fraction of queries in the mix) -- favours DC methods,
//     since queries are who import fuzziness;
//   * chop-friendliness (whether the stream lets SR keep transfers chopped:
//     audits present -> no; audit-free -> yes) -- favours chopped methods,
//     since pieces shorten lock holding.
//
// Cells print throughput; the per-row winner shows the crossover.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "workload/banking.h"

using namespace atp;
using namespace atp::bench;

int main() {
  std::printf("Section 5: method crossover map (throughput, txns/s)\n");

  struct Scenario {
    const char* name;
    double branch_audits;
    double global_audits;
    Value eps_scale;
    Value bound = 40;
  };
  const std::vector<Scenario> scenarios = {
      {"no audits (chop-friendly)", 0.0, 0.0, 1.0},
      {"light audits, wide eps", 0.10, 0.05, 2.0},
      {"heavy audits, wide eps", 0.35, 0.15, 2.0},
      {"heavy audits, tight eps", 0.35, 0.15, 0.25},
      // Tiny bounds let the ESR chop survive even a tight budget, while the
      // leftover DC budget is nearly useless: the regime where ESR-chop+CC
      // (Method 2) can beat SR-chop+DC (Method 1).
      {"tiny bounds, tight eps", 0.35, 0.15, 0.0625, 5},
  };

  std::printf("%-28s", "scenario");
  for (const MethodConfig m : table1_methods()) {
    std::printf(" %14s", m.name().c_str());
  }
  std::printf("   winner\n");

  for (const Scenario& sc : scenarios) {
    BankingConfig cfg;
    cfg.branches = 2;
    cfg.accounts_per_branch = 16;
    cfg.max_transfer = 40;
    cfg.branch_audit_fraction = sc.branch_audits;
    cfg.global_audit_fraction = sc.global_audits;
    cfg.audit_scan = 10;
    cfg.zipf_theta = 0.8;
    cfg.max_transfer = sc.bound;
    cfg.update_epsilon = 800.0 * sc.eps_scale;
    cfg.query_epsilon = 1600.0 * sc.eps_scale;
    const Workload w = make_banking(cfg, 600, 999);

    std::printf("%-28s", sc.name);
    double best = -1;
    std::string winner;
    for (const MethodConfig method : table1_methods()) {
      const ExecutorReport r = run_local(w, method);
      std::printf(" %14.1f", r.throughput_tps);
      if (r.throughput_tps > best) {
        best = r.throughput_tps;
        winner = method.name();
      }
    }
    std::printf("   %s\n", winner.c_str());
  }

  std::printf(
      "\nexpected shape: without audits every chopped method ties (chopping\n"
      "is the whole win, DC has nothing to do); with audits SR-chopping\n"
      "degenerates, so Method 1 tracks the DC baseline and Methods 2/3 pull\n"
      "ahead; with tight eps the DC advantage shrinks (budgets block) and\n"
      "ESR-chop+CC (Method 2) competes; Method 3 is never worse than both.\n");
  return 0;
}
