// Component micro-benchmarks (google-benchmark): the building blocks whose
// costs underlie the system-level numbers -- lock acquisition, fuzziness
// charging, chopping-graph analysis, and the finest-chopping searches.
//
// The obs group doubles as the instrumentation-overhead experiment: build
// once with -DATP_OBS=ON and once with OFF and compare
// BM_LockAcquireReleaseUncontended / BM_TxnCommitCycle /
// BM_TxnCommitCycleWithMetrics (EXPERIMENTS.md records the numbers; the
// budget is <2% on the enabled build).
#include <benchmark/benchmark.h>

#include "chop/analyzer.h"
#include "common/rng.h"
#include "lock/lock_manager.h"
#include "obs/metrics_registry.h"
#include "sched/database.h"
#include "txn/registry.h"
#include "workload/banking.h"

namespace atp {
namespace {

void BM_LockAcquireReleaseUncontended(benchmark::State& state) {
  LockManager locks;
  NeverFuzzyResolver cc;
  TxnId txn = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(locks.acquire(txn, 1, LockMode::Exclusive, cc));
    locks.release_all(txn);
    ++txn;
  }
}
BENCHMARK(BM_LockAcquireReleaseUncontended);

void BM_LockSharedReentrant(benchmark::State& state) {
  LockManager locks;
  NeverFuzzyResolver cc;
  (void)locks.acquire(1, 1, LockMode::Shared, cc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(locks.acquire(1, 1, LockMode::Shared, cc));
  }
}
BENCHMARK(BM_LockSharedReentrant);

void BM_RegistryChargePair(benchmark::State& state) {
  EtRegistry reg;
  const TxnId q = reg.begin(TxnKind::Query, EpsilonSpec::unlimited());
  const TxnId u = reg.begin(TxnKind::Update, EpsilonSpec::unlimited());
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.try_charge_pair(q, u, 1.0));
  }
}
BENCHMARK(BM_RegistryChargePair);

void BM_TxnCommitCycle(benchmark::State& state) {
  Database db(DatabaseOptions{});
  db.load(1, 100);
  db.load(2, 100);
  for (auto _ : state) {
    Txn t = db.begin(TxnKind::Update, EpsilonSpec::serializable());
    (void)t.add(1, -5);
    (void)t.add(2, +5);
    (void)t.commit();
  }
}
BENCHMARK(BM_TxnCommitCycle);

void BM_DcFuzzyRead(benchmark::State& state) {
  DatabaseOptions o;
  o.scheduler = SchedulerKind::DC;
  Database db(o);
  db.load(1, 100);
  Txn u = db.begin(TxnKind::Update, EpsilonSpec::unlimited());
  (void)u.write(1, 150);  // a standing dirty value
  for (auto _ : state) {
    Txn q = db.begin(TxnKind::Query, EpsilonSpec::unlimited());
    benchmark::DoNotOptimize(q.read(1));
    (void)q.commit();
  }
  u.abort();
}
BENCHMARK(BM_DcFuzzyRead);

void BM_TxnCommitCycleWithMetrics(benchmark::State& state) {
  // Same cycle as BM_TxnCommitCycle but with a registry attached: measures
  // what a Database pays for live telemetry (commit counters + the
  // registered collector, which costs nothing until snapshot time).
  obs::MetricsRegistry reg;
  DatabaseOptions o;
  o.metrics = &reg;
  Database db(o);
  db.load(1, 100);
  db.load(2, 100);
  for (auto _ : state) {
    Txn t = db.begin(TxnKind::Update, EpsilonSpec::serializable());
    (void)t.add(1, -5);
    (void)t.add(2, +5);
    (void)t.commit();
  }
}
BENCHMARK(BM_TxnCommitCycleWithMetrics);

void BM_ObsShardedCounterAdd(benchmark::State& state) {
  static obs::ShardedCounter counter;
  for (auto _ : state) {
    counter.add();
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_ObsShardedCounterAdd)->Threads(1)->Threads(8);

void BM_ObsRegistrySnapshot(benchmark::State& state) {
  // Snapshot cost with a realistic population: a Database's collector
  // (16-stripe heatmap + eps roll-ups) plus a few push instruments.
  obs::MetricsRegistry reg;
  DatabaseOptions o;
  o.metrics = &reg;
  Database db(o);
  db.load(1, 100);
  for (int i = 0; i < 64; ++i) {
    Txn t = db.begin(TxnKind::Update, EpsilonSpec::serializable());
    (void)t.add(1, 1);
    (void)t.commit();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.snapshot());
  }
}
BENCHMARK(BM_ObsRegistrySnapshot);

void BM_BuildChoppingGraph(benchmark::State& state) {
  BankingConfig cfg;
  cfg.branches = std::size_t(state.range(0));
  cfg.branch_audit_fraction = 0.2;
  cfg.global_audit_fraction = 0.1;
  const Workload w = make_banking(cfg, 1, 1);
  const Chopping c = Chopping::finest_candidate(w.types);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_chopping_graph(w.types, c));
  }
}
BENCHMARK(BM_BuildChoppingGraph)->Arg(2)->Arg(4)->Arg(8);

void BM_FinestSrChopping(benchmark::State& state) {
  BankingConfig cfg;
  cfg.branches = std::size_t(state.range(0));
  cfg.branch_audit_fraction = 0.2;
  cfg.global_audit_fraction = 0.1;
  const Workload w = make_banking(cfg, 1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(finest_sr_chopping(w.types));
  }
}
BENCHMARK(BM_FinestSrChopping)->Arg(2)->Arg(4);

void BM_FinestEsrChopping(benchmark::State& state) {
  BankingConfig cfg;
  cfg.branches = std::size_t(state.range(0));
  cfg.branch_audit_fraction = 0.2;
  cfg.global_audit_fraction = 0.1;
  cfg.update_epsilon = 1e6;  // generous: the search keeps everything chopped
  cfg.query_epsilon = 1e6;
  const Workload w = make_banking(cfg, 1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(finest_esr_chopping(w.types));
  }
}
BENCHMARK(BM_FinestEsrChopping)->Arg(2)->Arg(4);

}  // namespace
}  // namespace atp

BENCHMARK_MAIN();
