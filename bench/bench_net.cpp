// bench_net: end-to-end throughput and latency through the network
// front-end.
//
// Starts an in-process AtpServer on a kernel-assigned loopback TCP port
// (the same stack atpd runs) and drives it with N concurrent client
// threads, each holding its own connection and running closed-loop
// transactions: a two-account transfer (update) or a two-account audit
// (query), 80/20.  Every cell reports committed tps and per-transaction
// latency p50/p95/p99 over the loopback socket -- protocol encode, epoll,
// session dispatch, lock manager, and reply included.
//
// Cells: clients x {1, 2, 4, 8} for each of two client classes, so the
// admission surface shows up in the numbers:
//   * bronze -- wide eps ceilings; DC lets queries read past update locks;
//   * gold   -- eps = 0 (serializable); queries block on lock conflicts.
//
// Output: a human table, and with --json a BENCH_net.json artifact
// (schema v2 "net" cell family, docs/BENCH_SCHEMA.md).
//
// Flags: --json  --quick (CI smoke: fewer clients/ops)  --out-dir=DIR
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "obs/metrics_registry.h"
#include "sched/database.h"
#include "server/client.h"
#include "server/server.h"
#include "server/transport.h"

using namespace atp;
using namespace atp::bench;
using namespace atp::server;

namespace {

constexpr Key kAccounts = 64;

struct CellResult {
  std::string client_class;
  std::size_t clients = 0;
  std::size_t txns_committed = 0;
  std::size_t txns_aborted = 0;
  double wall_seconds = 0;
  double tps = 0;
  double p50_us = 0, p95_us = 0, p99_us = 0;
  double admission_rejected = 0;  ///< srv.admission.rejected.<class>
};

/// One client thread: closed-loop transactions until `ops` commits+aborts.
struct ClientStats {
  std::size_t committed = 0;
  std::size_t aborted = 0;
  std::vector<double> txn_us;
};

ClientStats run_client(std::uint16_t port, const std::string& cls,
                       std::size_t txns, std::uint64_t seed) {
  ClientStats st;
  Client c(std::make_unique<TcpByteChannel>("127.0.0.1", port));
  if (!c.ok() || !c.hello(cls).ok()) return st;
  Rng rng(seed);
  st.txn_us.reserve(txns);
  for (std::size_t i = 0; i < txns; ++i) {
    const Key a = Key(rng.next() % kAccounts);
    Key b = Key(rng.next() % kAccounts);
    if (b == a) b = (b + 1) % kAccounts;
    const bool update = rng.next() % 10 < 8;
    const std::int64_t t0 = bench_now_us();
    auto txn = c.begin(update ? TxnKind::Update : TxnKind::Query);
    if (!txn.ok()) {
      ++st.aborted;
      continue;
    }
    bool ok = true;
    if (update) {
      const double amount = double(1 + rng.next() % 20);
      ok = c.add(txn.value(), a, -amount).ok() &&
           c.add(txn.value(), b, +amount).ok();
    } else {
      ok = c.read(txn.value(), a).ok() && c.read(txn.value(), b).ok();
    }
    // A failed op already aborted server-side; only an intact txn commits.
    if (ok && c.commit(txn.value()).ok()) {
      ++st.committed;
      st.txn_us.push_back(double(bench_now_us() - t0));
    } else {
      ++st.aborted;
    }
  }
  c.close();
  return st;
}

CellResult run_cell(const std::string& cls, std::size_t clients,
                    std::size_t txns_per_client) {
  obs::MetricsRegistry metrics;
  DatabaseOptions dbo;
  dbo.scheduler = SchedulerKind::DC;
  dbo.metrics = &metrics;
  Database db(dbo);
  for (Key k = 0; k < kAccounts; ++k) db.load(k, 10000);

  ServerOptions so;
  so.workers = 8;
  so.metrics = &metrics;
  AtpServer srv(db, std::make_unique<TcpTransport>(0), std::move(so));
  if (!srv.ok()) {
    std::fprintf(stderr, "bench_net: server failed to start\n");
    std::exit(1);
  }

  std::vector<ClientStats> stats(clients);
  const std::int64_t t0 = bench_now_us();
  {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t i = 0; i < clients; ++i) {
      threads.emplace_back([&, i] {
        stats[i] = run_client(srv.port(), cls, txns_per_client,
                              0x5eed + 977 * i);
      });
    }
    for (auto& t : threads) t.join();
  }
  const double wall_s = double(bench_now_us() - t0) / 1e6;

  CellResult r;
  r.client_class = cls;
  r.clients = clients;
  r.wall_seconds = wall_s;
  std::vector<double> all_us;
  for (const ClientStats& s : stats) {
    r.txns_committed += s.committed;
    r.txns_aborted += s.aborted;
    all_us.insert(all_us.end(), s.txn_us.begin(), s.txn_us.end());
  }
  r.tps = wall_s > 0 ? double(r.txns_committed) / wall_s : 0;
  if (!all_us.empty()) {
    r.p50_us = percentile(all_us, 0.50);
    r.p95_us = percentile(all_us, 0.95);
    r.p99_us = percentile(all_us, 0.99);
  }
  const obs::MetricsSnapshot snap = metrics.snapshot();
  const obs::Sample* rej = snap.find("srv.admission.rejected." + cls);
  r.admission_rejected = rej == nullptr ? 0 : rej->value;
  srv.stop();
  return r;
}

std::string git_sha() {
  std::string sha = "unknown";
  if (FILE* p = popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    char buf[64] = {};
    if (std::fgets(buf, sizeof buf, p) != nullptr) {
      std::string s(buf);
      while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) s.pop_back();
      if (!s.empty()) sha = s;
    }
    pclose(p);
  }
  return sha;
}

void write_json(const std::string& path, bool quick,
                const std::vector<CellResult>& cells) {
  std::string out = "{\n";
  out += "  \"schema_version\": 2,\n";
  out += "  \"generated_by\": \"bench_net\",\n";
  out += "  \"git_sha\": \"" + git_sha() + "\",\n";
  out += std::string("  \"quick\": ") + (quick ? "true" : "false") + ",\n";
  out += "  \"runs\": [\n";
  char buf[512];
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    std::snprintf(
        buf, sizeof buf,
        "    {\"scenario\": \"net_loopback\", \"class\": \"%s\", "
        "\"clients\": %zu, \"txns_committed\": %zu, \"txns_aborted\": %zu, "
        "\"wall_seconds\": %.6f, \"txn_per_sec\": %.1f, "
        "\"latency_us\": {\"p50\": %.1f, \"p95\": %.1f, \"p99\": %.1f}, "
        "\"admission_rejected\": %.0f}%s\n",
        c.client_class.c_str(), c.clients, c.txns_committed, c.txns_aborted,
        c.wall_seconds, c.tps, c.p50_us, c.p95_us, c.p99_us,
        c.admission_rejected, i + 1 < cells.size() ? "," : "");
    out += buf;
  }
  out += "  ]\n}\n";
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "bench_net: cannot write %s\n", path.c_str());
    std::exit(2);
  }
  f << out;
  std::printf("wrote %s (%zu cells)\n", path.c_str(), cells.size());
}

}  // namespace

int main(int argc, char** argv) {
  bool emit_json = false;
  bool quick = false;
  std::string out_dir = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      emit_json = true;
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--out-dir=", 0) == 0) {
      out_dir = arg.substr(std::strlen("--out-dir="));
    } else {
      std::fprintf(stderr,
                   "usage: bench_net [--json] [--quick] [--out-dir=DIR]\n");
      return 2;
    }
  }

  const std::vector<std::size_t> client_counts =
      quick ? std::vector<std::size_t>{1, 4}
            : std::vector<std::size_t>{1, 2, 4, 8};
  const std::size_t txns_per_client = quick ? 200 : 1500;

  std::vector<CellResult> cells;
  std::printf("%-8s %8s %10s %12s %10s %10s %10s\n", "class", "clients",
              "committed", "tps", "p50(us)", "p95(us)", "p99(us)");
  for (const char* cls : {"bronze", "gold"}) {
    for (const std::size_t n : client_counts) {
      CellResult r = run_cell(cls, n, txns_per_client);
      std::printf("%-8s %8zu %10zu %12.1f %10.1f %10.1f %10.1f\n",
                  r.client_class.c_str(), r.clients, r.txns_committed, r.tps,
                  r.p50_us, r.p95_us, r.p99_us);
      cells.push_back(std::move(r));
    }
  }

  if (emit_json) write_json(out_dir + "/BENCH_net.json", quick, cells);
  return 0;
}
