// Table 1 reproduction: the off-line x on-line method matrix.
//
//                      On-line
//   Off-line           CC                 DC
//   ------------------------------------------------
//   (unchopped)        SR baseline        DC baseline
//   SR-chopping        SR (Shasha)        ESR^1 (Method 1)
//   ESR-chopping       ESR^2 (Method 2)   ESR^3 (Method 3)
//
// Workload: the paper's banking mix -- cross-branch transfers (bounded
// amounts), per-branch audits, and a global audit whose presence puts every
// chopped transfer on an SC-cycle.  Expected shape:
//   * SR-chopping degenerates to unchopped (audits close SC-cycles), so the
//     SR-chop+CC row matches the SR baseline and Method 1 matches the DC
//     baseline;
//   * ESR-chopping keeps transfers in two pieces (bounded conflicts fit the
//     eps budgets), so Methods 2 and 3 cut lock-holding time;
//   * DC rows admit query/update interleavings within epsilon, cutting
//     blocking further: ESR^3 >= {ESR^1, ESR^2} >= SR.
#include <cstdio>

#include "bench_util.h"
#include "workload/banking.h"

using namespace atp;
using namespace atp::bench;

int main() {
  BankingConfig cfg;
  cfg.branches = 2;
  cfg.accounts_per_branch = 24;
  cfg.max_transfer = 50;
  cfg.branch_audit_fraction = 0.15;
  cfg.global_audit_fraction = 0.08;
  cfg.audit_scan = 12;
  cfg.zipf_theta = 0.6;
  cfg.update_epsilon = 1200;
  cfg.query_epsilon = 2500;
  const std::size_t kInstances = 400;

  const Workload w = make_banking(cfg, kInstances, /*seed=*/424242);

  std::printf("Table 1: off-line (chopping) x on-line (scheduler) matrix\n");
  std::printf("banking mix: %zu txns, %zu accounts/branch x %zu branches, "
              "audits %.0f%%+%.0f%%, eps(U)=%.0f eps(Q)=%.0f\n",
              kInstances, cfg.accounts_per_branch, cfg.branches,
              100 * cfg.branch_audit_fraction,
              100 * cfg.global_audit_fraction, cfg.update_epsilon,
              cfg.query_epsilon);

  print_header("method matrix");
  for (const MethodConfig method : table1_methods()) {
    print_row(run_local(w, method));
  }

  std::printf(
      "\nreading guide: tps = committed original txns / wall second;\n"
      "  meanZ = mean accounted fuzziness of committed txns (0 under pure "
      "SR);\n"
      "  maxErr = worst observed global-audit deviation from the true total\n"
      "           (must stay <= eps(Q) = %.0f under every method).\n",
      cfg.query_epsilon);
  return 0;
}
