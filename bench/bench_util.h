// Shared plumbing for the paper-reproduction benches: run a workload under a
// method configuration and collect the report row.
//
// Local (single-database) benches add per-op think time so transactions hold
// locks for realistic durations -- without it, in-memory ops finish in
// nanoseconds and no method differentiates.  The distributed bench instead
// charges simulated network latency.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "engine/executor.h"
#include "workload/workload.h"

namespace atp::bench {

struct LocalRunConfig {
  std::size_t workers = 8;
  std::uint64_t seed = 20260705;
  std::uint64_t op_delay_min_us = 100;
  std::uint64_t op_delay_max_us = 300;
  std::chrono::milliseconds lock_timeout{2000};
};

inline ExecutorReport run_local(const Workload& w, MethodConfig method,
                                const LocalRunConfig& cfg = {}) {
  auto plan = ExecutionPlan::build(w.types, method);
  if (!plan.ok()) {
    std::fprintf(stderr, "plan build failed for %s: %s\n",
                 method.name().c_str(), plan.status().to_string().c_str());
    ExecutorReport r;
    r.method_name = method.name() + " (PLAN FAILED)";
    return r;
  }
  Database db(Executor::database_options(method, cfg.lock_timeout));
  w.load_into(db);
  ExecutorOptions opts;
  opts.workers = cfg.workers;
  opts.seed = cfg.seed;
  opts.op_delay_min_us = cfg.op_delay_min_us;
  opts.op_delay_max_us = cfg.op_delay_max_us;
  return Executor::run(db, plan.value(), w.instances, opts);
}

inline void print_header(const char* title) {
  std::printf("\n=== %s ===\n%s\n", title, ExecutorReport::header().c_str());
}

inline void print_row(const ExecutorReport& r) {
  std::printf("%s\n", r.row().c_str());
}

/// All six Table-1 configurations (baselines + the paper's three methods).
inline std::vector<MethodConfig> table1_methods() {
  return {MethodConfig::baseline_sr(), MethodConfig::baseline_dc(),
          MethodConfig::sr_chop_cc(),  MethodConfig::method1(),
          MethodConfig::method2(),     MethodConfig::method3()};
}

}  // namespace atp::bench
