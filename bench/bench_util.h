// Shared plumbing for the paper-reproduction benches: run a workload under a
// method configuration and collect the report row.
//
// Local (single-database) benches add per-op think time so transactions hold
// locks for realistic durations -- without it, in-memory ops finish in
// nanoseconds and no method differentiates.  The distributed bench instead
// charges simulated network latency.
//
// Timing discipline: every wall-clock measurement in the bench suite goes
// through bench_now_us() (std::chrono::steady_clock) -- never the system
// clock, which NTP can step mid-run.  Percentiles go through
// atp::percentile_of (common/metrics.h), the single interpolated-rank
// definition shared with Histogram and the JSON emitters; the report rows
// carry p50, p95 AND p99 so tail behaviour is visible in every table.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "engine/executor.h"
#include "workload/workload.h"

namespace atp::bench {

/// Monotonic microsecond timestamp (steady_clock).  Use for every elapsed-
/// time measurement in benches; differences are immune to wall-clock steps.
[[nodiscard]] inline std::int64_t bench_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Interpolated percentile of an *unsorted* sample set (sorts a copy).
/// q in [0, 1]; the math is percentile_of from common/metrics.h.
[[nodiscard]] inline double percentile(std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  return percentile_of(samples, q);
}

/// Median convenience (benches report medians of repeated runs).
[[nodiscard]] inline double median(std::vector<double> samples) {
  return percentile(std::move(samples), 0.5);
}

struct LocalRunConfig {
  std::size_t workers = 8;
  std::uint64_t seed = 20260705;
  std::uint64_t op_delay_min_us = 100;
  std::uint64_t op_delay_max_us = 300;
  std::chrono::milliseconds lock_timeout{2000};
  Tracer* tracer = nullptr;  ///< optional: certifier-grade event capture
  /// Optional metrics registry the run's Database + Executor publish into
  /// (live scrapes via an ObsServer pointed at it, final snapshot below).
  obs::MetricsRegistry* metrics = nullptr;
  /// When set (with `metrics`), receives a final snapshot taken after the
  /// run completes but BEFORE the Database dies -- the run's eps budgets,
  /// stripe heatmap and executor counters, ready for the bench JSON.
  obs::MetricsSnapshot* final_snapshot_out = nullptr;
  /// Optional write-ahead log: attaching one turns on force-at-commit via
  /// the database's group committer (wal.group.* lands in the metrics
  /// snapshot).  The caller owns the device; `fsync_latency` simulates the
  /// per-force device cost the group commit amortizes.
  LogDevice* wal = nullptr;
  std::chrono::microseconds fsync_latency{0};
  /// Durability mode for every transaction in the run (WAL runs only).
  CommitWait commit_wait = CommitWait::kSync;
};

inline ExecutorReport run_local(const Workload& w, MethodConfig method,
                                const LocalRunConfig& cfg = {}) {
  auto plan = ExecutionPlan::build(w.types, method);
  if (!plan.ok()) {
    std::fprintf(stderr, "plan build failed for %s: %s\n",
                 method.name().c_str(), plan.status().to_string().c_str());
    ExecutorReport r;
    r.method_name = method.name() + " (PLAN FAILED)";
    return r;
  }
  DatabaseOptions dbo = Executor::database_options(method, cfg.lock_timeout);
  dbo.tracer = cfg.tracer;
  dbo.metrics = cfg.metrics;
  if (cfg.wal != nullptr) {
    cfg.wal->set_fsync_latency(cfg.fsync_latency);
    dbo.wal = cfg.wal;
  }
  Database db(dbo);
  w.load_into(db);
  ExecutorOptions opts;
  opts.workers = cfg.workers;
  opts.seed = cfg.seed;
  opts.op_delay_min_us = cfg.op_delay_min_us;
  opts.op_delay_max_us = cfg.op_delay_max_us;
  opts.commit_wait = cfg.commit_wait;
  ExecutorReport report = Executor::run(db, plan.value(), w.instances, opts);
  if (cfg.metrics != nullptr && cfg.final_snapshot_out != nullptr) {
    // Taken while the Database's collector is still registered, so the
    // retired-ET budget roll-ups and the stripe heatmap land in the output.
    *cfg.final_snapshot_out = cfg.metrics->snapshot();
  }
  return report;
}

inline void print_header(const char* title) {
  std::printf("\n=== %s ===\n%s\n", title, ExecutorReport::header().c_str());
}

inline void print_row(const ExecutorReport& r) {
  std::printf("%s\n", r.row().c_str());
}

/// All six Table-1 configurations (baselines + the paper's three methods).
inline std::vector<MethodConfig> table1_methods() {
  return {MethodConfig::baseline_sr(), MethodConfig::baseline_dc(),
          MethodConfig::sr_chop_cc(),  MethodConfig::method1(),
          MethodConfig::method2(),     MethodConfig::method3()};
}

}  // namespace atp::bench
