file(REMOVE_RECURSE
  "CMakeFiles/bench_dc_vs_cc.dir/bench_dc_vs_cc.cpp.o"
  "CMakeFiles/bench_dc_vs_cc.dir/bench_dc_vs_cc.cpp.o.d"
  "bench_dc_vs_cc"
  "bench_dc_vs_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dc_vs_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
