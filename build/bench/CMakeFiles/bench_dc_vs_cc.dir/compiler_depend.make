# Empty compiler generated dependencies file for bench_dc_vs_cc.
# This may be replaced when dependencies are built.
