file(REMOVE_RECURSE
  "CMakeFiles/bench_dist_commit.dir/bench_dist_commit.cpp.o"
  "CMakeFiles/bench_dist_commit.dir/bench_dist_commit.cpp.o.d"
  "bench_dist_commit"
  "bench_dist_commit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dist_commit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
