# Empty dependencies file for bench_dist_commit.
# This may be replaced when dependencies are built.
