file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_esr_chopping.dir/bench_fig3_esr_chopping.cpp.o"
  "CMakeFiles/bench_fig3_esr_chopping.dir/bench_fig3_esr_chopping.cpp.o.d"
  "bench_fig3_esr_chopping"
  "bench_fig3_esr_chopping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_esr_chopping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
