# Empty compiler generated dependencies file for bench_fig3_esr_chopping.
# This may be replaced when dependencies are built.
