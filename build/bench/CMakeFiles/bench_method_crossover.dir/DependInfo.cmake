
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_method_crossover.cpp" "bench/CMakeFiles/bench_method_crossover.dir/bench_method_crossover.cpp.o" "gcc" "bench/CMakeFiles/bench_method_crossover.dir/bench_method_crossover.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wal/CMakeFiles/atp_wal.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/atp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/atp_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/lock/CMakeFiles/atp_lock.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/atp_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/atp_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/chop/CMakeFiles/atp_chop.dir/DependInfo.cmake"
  "/root/repo/build/src/limits/CMakeFiles/atp_limits.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/atp_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/atp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/atp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/queue/CMakeFiles/atp_queue.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/atp_dist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
