file(REMOVE_RECURSE
  "CMakeFiles/bench_method_crossover.dir/bench_method_crossover.cpp.o"
  "CMakeFiles/bench_method_crossover.dir/bench_method_crossover.cpp.o.d"
  "bench_method_crossover"
  "bench_method_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_method_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
