# Empty dependencies file for bench_method_crossover.
# This may be replaced when dependencies are built.
