file(REMOVE_RECURSE
  "CMakeFiles/banking_branches.dir/banking_branches.cpp.o"
  "CMakeFiles/banking_branches.dir/banking_branches.cpp.o.d"
  "banking_branches"
  "banking_branches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/banking_branches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
