# Empty dependencies file for banking_branches.
# This may be replaced when dependencies are built.
