# Empty dependencies file for payroll_audit.
# This may be replaced when dependencies are built.
