# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("storage")
subdirs("wal")
subdirs("lock")
subdirs("txn")
subdirs("sched")
subdirs("chop")
subdirs("limits")
subdirs("net")
subdirs("queue")
subdirs("dist")
subdirs("engine")
subdirs("workload")
