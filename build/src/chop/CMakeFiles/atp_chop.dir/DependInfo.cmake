
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chop/analyzer.cpp" "src/chop/CMakeFiles/atp_chop.dir/analyzer.cpp.o" "gcc" "src/chop/CMakeFiles/atp_chop.dir/analyzer.cpp.o.d"
  "/root/repo/src/chop/chopping.cpp" "src/chop/CMakeFiles/atp_chop.dir/chopping.cpp.o" "gcc" "src/chop/CMakeFiles/atp_chop.dir/chopping.cpp.o.d"
  "/root/repo/src/chop/graph.cpp" "src/chop/CMakeFiles/atp_chop.dir/graph.cpp.o" "gcc" "src/chop/CMakeFiles/atp_chop.dir/graph.cpp.o.d"
  "/root/repo/src/chop/parser.cpp" "src/chop/CMakeFiles/atp_chop.dir/parser.cpp.o" "gcc" "src/chop/CMakeFiles/atp_chop.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/atp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/atp_txn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
