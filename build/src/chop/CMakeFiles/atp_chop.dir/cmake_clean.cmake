file(REMOVE_RECURSE
  "CMakeFiles/atp_chop.dir/analyzer.cpp.o"
  "CMakeFiles/atp_chop.dir/analyzer.cpp.o.d"
  "CMakeFiles/atp_chop.dir/chopping.cpp.o"
  "CMakeFiles/atp_chop.dir/chopping.cpp.o.d"
  "CMakeFiles/atp_chop.dir/graph.cpp.o"
  "CMakeFiles/atp_chop.dir/graph.cpp.o.d"
  "CMakeFiles/atp_chop.dir/parser.cpp.o"
  "CMakeFiles/atp_chop.dir/parser.cpp.o.d"
  "libatp_chop.a"
  "libatp_chop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atp_chop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
