file(REMOVE_RECURSE
  "libatp_chop.a"
)
