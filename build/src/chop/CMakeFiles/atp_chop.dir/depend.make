# Empty dependencies file for atp_chop.
# This may be replaced when dependencies are built.
