# CMake generated Testfile for 
# Source directory: /root/repo/src/chop
# Build directory: /root/repo/build/src/chop
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
