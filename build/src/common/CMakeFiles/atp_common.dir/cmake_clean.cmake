file(REMOVE_RECURSE
  "CMakeFiles/atp_common.dir/rng.cpp.o"
  "CMakeFiles/atp_common.dir/rng.cpp.o.d"
  "libatp_common.a"
  "libatp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
