file(REMOVE_RECURSE
  "libatp_common.a"
)
