# Empty dependencies file for atp_common.
# This may be replaced when dependencies are built.
