
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/coordinator.cpp" "src/dist/CMakeFiles/atp_dist.dir/coordinator.cpp.o" "gcc" "src/dist/CMakeFiles/atp_dist.dir/coordinator.cpp.o.d"
  "/root/repo/src/dist/dist_executor.cpp" "src/dist/CMakeFiles/atp_dist.dir/dist_executor.cpp.o" "gcc" "src/dist/CMakeFiles/atp_dist.dir/dist_executor.cpp.o.d"
  "/root/repo/src/dist/site.cpp" "src/dist/CMakeFiles/atp_dist.dir/site.cpp.o" "gcc" "src/dist/CMakeFiles/atp_dist.dir/site.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/atp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/atp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/queue/CMakeFiles/atp_queue.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/atp_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/chop/CMakeFiles/atp_chop.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/atp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/lock/CMakeFiles/atp_lock.dir/DependInfo.cmake"
  "/root/repo/build/src/wal/CMakeFiles/atp_wal.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/atp_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/atp_txn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
