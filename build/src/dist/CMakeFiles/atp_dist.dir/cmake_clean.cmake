file(REMOVE_RECURSE
  "CMakeFiles/atp_dist.dir/coordinator.cpp.o"
  "CMakeFiles/atp_dist.dir/coordinator.cpp.o.d"
  "CMakeFiles/atp_dist.dir/dist_executor.cpp.o"
  "CMakeFiles/atp_dist.dir/dist_executor.cpp.o.d"
  "CMakeFiles/atp_dist.dir/site.cpp.o"
  "CMakeFiles/atp_dist.dir/site.cpp.o.d"
  "libatp_dist.a"
  "libatp_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atp_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
