file(REMOVE_RECURSE
  "libatp_dist.a"
)
