# Empty dependencies file for atp_dist.
# This may be replaced when dependencies are built.
