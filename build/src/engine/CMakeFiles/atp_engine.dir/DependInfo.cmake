
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/executor.cpp" "src/engine/CMakeFiles/atp_engine.dir/executor.cpp.o" "gcc" "src/engine/CMakeFiles/atp_engine.dir/executor.cpp.o.d"
  "/root/repo/src/engine/piece_runner.cpp" "src/engine/CMakeFiles/atp_engine.dir/piece_runner.cpp.o" "gcc" "src/engine/CMakeFiles/atp_engine.dir/piece_runner.cpp.o.d"
  "/root/repo/src/engine/plan.cpp" "src/engine/CMakeFiles/atp_engine.dir/plan.cpp.o" "gcc" "src/engine/CMakeFiles/atp_engine.dir/plan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/atp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/atp_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/chop/CMakeFiles/atp_chop.dir/DependInfo.cmake"
  "/root/repo/build/src/limits/CMakeFiles/atp_limits.dir/DependInfo.cmake"
  "/root/repo/build/src/lock/CMakeFiles/atp_lock.dir/DependInfo.cmake"
  "/root/repo/build/src/wal/CMakeFiles/atp_wal.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/atp_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/atp_txn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
