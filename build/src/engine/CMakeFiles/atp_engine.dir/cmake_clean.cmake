file(REMOVE_RECURSE
  "CMakeFiles/atp_engine.dir/executor.cpp.o"
  "CMakeFiles/atp_engine.dir/executor.cpp.o.d"
  "CMakeFiles/atp_engine.dir/piece_runner.cpp.o"
  "CMakeFiles/atp_engine.dir/piece_runner.cpp.o.d"
  "CMakeFiles/atp_engine.dir/plan.cpp.o"
  "CMakeFiles/atp_engine.dir/plan.cpp.o.d"
  "libatp_engine.a"
  "libatp_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atp_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
