file(REMOVE_RECURSE
  "libatp_engine.a"
)
