# Empty compiler generated dependencies file for atp_engine.
# This may be replaced when dependencies are built.
