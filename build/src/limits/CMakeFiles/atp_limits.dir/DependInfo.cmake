
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/limits/distribution.cpp" "src/limits/CMakeFiles/atp_limits.dir/distribution.cpp.o" "gcc" "src/limits/CMakeFiles/atp_limits.dir/distribution.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/atp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/atp_txn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
