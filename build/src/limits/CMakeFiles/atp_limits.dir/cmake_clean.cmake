file(REMOVE_RECURSE
  "CMakeFiles/atp_limits.dir/distribution.cpp.o"
  "CMakeFiles/atp_limits.dir/distribution.cpp.o.d"
  "libatp_limits.a"
  "libatp_limits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atp_limits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
