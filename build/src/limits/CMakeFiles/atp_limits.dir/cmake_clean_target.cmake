file(REMOVE_RECURSE
  "libatp_limits.a"
)
