# Empty compiler generated dependencies file for atp_limits.
# This may be replaced when dependencies are built.
