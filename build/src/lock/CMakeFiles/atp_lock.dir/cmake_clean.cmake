file(REMOVE_RECURSE
  "CMakeFiles/atp_lock.dir/lock_manager.cpp.o"
  "CMakeFiles/atp_lock.dir/lock_manager.cpp.o.d"
  "libatp_lock.a"
  "libatp_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atp_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
