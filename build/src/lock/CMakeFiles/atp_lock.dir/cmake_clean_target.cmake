file(REMOVE_RECURSE
  "libatp_lock.a"
)
