# Empty compiler generated dependencies file for atp_lock.
# This may be replaced when dependencies are built.
