file(REMOVE_RECURSE
  "CMakeFiles/atp_net.dir/network.cpp.o"
  "CMakeFiles/atp_net.dir/network.cpp.o.d"
  "libatp_net.a"
  "libatp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
