file(REMOVE_RECURSE
  "libatp_net.a"
)
