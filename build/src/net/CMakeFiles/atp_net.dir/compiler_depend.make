# Empty compiler generated dependencies file for atp_net.
# This may be replaced when dependencies are built.
