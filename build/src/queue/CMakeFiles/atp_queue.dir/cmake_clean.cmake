file(REMOVE_RECURSE
  "CMakeFiles/atp_queue.dir/recoverable_queue.cpp.o"
  "CMakeFiles/atp_queue.dir/recoverable_queue.cpp.o.d"
  "libatp_queue.a"
  "libatp_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atp_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
