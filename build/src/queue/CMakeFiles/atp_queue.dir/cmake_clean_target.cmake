file(REMOVE_RECURSE
  "libatp_queue.a"
)
