# Empty dependencies file for atp_queue.
# This may be replaced when dependencies are built.
