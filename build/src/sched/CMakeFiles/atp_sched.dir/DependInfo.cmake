
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/database.cpp" "src/sched/CMakeFiles/atp_sched.dir/database.cpp.o" "gcc" "src/sched/CMakeFiles/atp_sched.dir/database.cpp.o.d"
  "/root/repo/src/sched/dc_resolver.cpp" "src/sched/CMakeFiles/atp_sched.dir/dc_resolver.cpp.o" "gcc" "src/sched/CMakeFiles/atp_sched.dir/dc_resolver.cpp.o.d"
  "/root/repo/src/sched/history.cpp" "src/sched/CMakeFiles/atp_sched.dir/history.cpp.o" "gcc" "src/sched/CMakeFiles/atp_sched.dir/history.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/atp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/atp_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/lock/CMakeFiles/atp_lock.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/atp_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/wal/CMakeFiles/atp_wal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
