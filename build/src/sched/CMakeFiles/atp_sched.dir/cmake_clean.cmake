file(REMOVE_RECURSE
  "CMakeFiles/atp_sched.dir/database.cpp.o"
  "CMakeFiles/atp_sched.dir/database.cpp.o.d"
  "CMakeFiles/atp_sched.dir/dc_resolver.cpp.o"
  "CMakeFiles/atp_sched.dir/dc_resolver.cpp.o.d"
  "CMakeFiles/atp_sched.dir/history.cpp.o"
  "CMakeFiles/atp_sched.dir/history.cpp.o.d"
  "libatp_sched.a"
  "libatp_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atp_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
