file(REMOVE_RECURSE
  "libatp_sched.a"
)
