# Empty compiler generated dependencies file for atp_sched.
# This may be replaced when dependencies are built.
