file(REMOVE_RECURSE
  "CMakeFiles/atp_storage.dir/store.cpp.o"
  "CMakeFiles/atp_storage.dir/store.cpp.o.d"
  "libatp_storage.a"
  "libatp_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atp_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
