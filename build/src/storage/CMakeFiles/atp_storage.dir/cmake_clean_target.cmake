file(REMOVE_RECURSE
  "libatp_storage.a"
)
