# Empty dependencies file for atp_storage.
# This may be replaced when dependencies are built.
