file(REMOVE_RECURSE
  "CMakeFiles/atp_txn.dir/registry.cpp.o"
  "CMakeFiles/atp_txn.dir/registry.cpp.o.d"
  "libatp_txn.a"
  "libatp_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atp_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
