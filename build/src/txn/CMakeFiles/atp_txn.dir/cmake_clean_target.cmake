file(REMOVE_RECURSE
  "libatp_txn.a"
)
