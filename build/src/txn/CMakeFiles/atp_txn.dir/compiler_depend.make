# Empty compiler generated dependencies file for atp_txn.
# This may be replaced when dependencies are built.
