file(REMOVE_RECURSE
  "CMakeFiles/atp_wal.dir/log.cpp.o"
  "CMakeFiles/atp_wal.dir/log.cpp.o.d"
  "CMakeFiles/atp_wal.dir/recovery.cpp.o"
  "CMakeFiles/atp_wal.dir/recovery.cpp.o.d"
  "libatp_wal.a"
  "libatp_wal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atp_wal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
