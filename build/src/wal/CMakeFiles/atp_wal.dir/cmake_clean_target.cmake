file(REMOVE_RECURSE
  "libatp_wal.a"
)
