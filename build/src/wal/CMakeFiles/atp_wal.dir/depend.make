# Empty dependencies file for atp_wal.
# This may be replaced when dependencies are built.
