file(REMOVE_RECURSE
  "CMakeFiles/atp_workload.dir/airline.cpp.o"
  "CMakeFiles/atp_workload.dir/airline.cpp.o.d"
  "CMakeFiles/atp_workload.dir/banking.cpp.o"
  "CMakeFiles/atp_workload.dir/banking.cpp.o.d"
  "CMakeFiles/atp_workload.dir/orders.cpp.o"
  "CMakeFiles/atp_workload.dir/orders.cpp.o.d"
  "CMakeFiles/atp_workload.dir/payroll.cpp.o"
  "CMakeFiles/atp_workload.dir/payroll.cpp.o.d"
  "libatp_workload.a"
  "libatp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
