file(REMOVE_RECURSE
  "libatp_workload.a"
)
