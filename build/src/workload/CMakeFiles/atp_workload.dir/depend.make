# Empty dependencies file for atp_workload.
# This may be replaced when dependencies are built.
