file(REMOVE_RECURSE
  "CMakeFiles/chop_analyzer_test.dir/chop_analyzer_test.cpp.o"
  "CMakeFiles/chop_analyzer_test.dir/chop_analyzer_test.cpp.o.d"
  "chop_analyzer_test"
  "chop_analyzer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chop_analyzer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
