# Empty dependencies file for chop_analyzer_test.
# This may be replaced when dependencies are built.
