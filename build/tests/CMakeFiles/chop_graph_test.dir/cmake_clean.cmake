file(REMOVE_RECURSE
  "CMakeFiles/chop_graph_test.dir/chop_graph_test.cpp.o"
  "CMakeFiles/chop_graph_test.dir/chop_graph_test.cpp.o.d"
  "chop_graph_test"
  "chop_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chop_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
