# Empty dependencies file for chop_graph_test.
# This may be replaced when dependencies are built.
