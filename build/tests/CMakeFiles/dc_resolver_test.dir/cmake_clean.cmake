file(REMOVE_RECURSE
  "CMakeFiles/dc_resolver_test.dir/dc_resolver_test.cpp.o"
  "CMakeFiles/dc_resolver_test.dir/dc_resolver_test.cpp.o.d"
  "dc_resolver_test"
  "dc_resolver_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dc_resolver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
