# Empty compiler generated dependencies file for dc_resolver_test.
# This may be replaced when dependencies are built.
