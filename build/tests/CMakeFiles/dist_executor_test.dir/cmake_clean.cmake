file(REMOVE_RECURSE
  "CMakeFiles/dist_executor_test.dir/dist_executor_test.cpp.o"
  "CMakeFiles/dist_executor_test.dir/dist_executor_test.cpp.o.d"
  "dist_executor_test"
  "dist_executor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
