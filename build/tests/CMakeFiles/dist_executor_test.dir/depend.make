# Empty dependencies file for dist_executor_test.
# This may be replaced when dependencies are built.
