file(REMOVE_RECURSE
  "CMakeFiles/sched_cc_test.dir/sched_cc_test.cpp.o"
  "CMakeFiles/sched_cc_test.dir/sched_cc_test.cpp.o.d"
  "sched_cc_test"
  "sched_cc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_cc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
