file(REMOVE_RECURSE
  "CMakeFiles/sched_dc_test.dir/sched_dc_test.cpp.o"
  "CMakeFiles/sched_dc_test.dir/sched_dc_test.cpp.o.d"
  "sched_dc_test"
  "sched_dc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_dc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
