file(REMOVE_RECURSE
  "CMakeFiles/sched_odc_test.dir/sched_odc_test.cpp.o"
  "CMakeFiles/sched_odc_test.dir/sched_odc_test.cpp.o.d"
  "sched_odc_test"
  "sched_odc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_odc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
