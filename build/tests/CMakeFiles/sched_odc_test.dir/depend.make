# Empty dependencies file for sched_odc_test.
# This may be replaced when dependencies are built.
