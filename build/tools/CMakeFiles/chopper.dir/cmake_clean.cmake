file(REMOVE_RECURSE
  "CMakeFiles/chopper.dir/chopper.cpp.o"
  "CMakeFiles/chopper.dir/chopper.cpp.o.d"
  "chopper"
  "chopper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chopper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
