# Empty compiler generated dependencies file for chopper.
# This may be replaced when dependencies are built.
