// Airline reservations under every method: the paper's "reservation systems
// often require a limit for each reservation" example.
//
// Bookings decrement seat counts and post bounded fares to a revenue ledger;
// availability queries scan popular flights; a books-balance report reads
// everything.  The run prints the Table-1-style comparison for this domain
// and shows the invariant (seats sold == bookings) holding under every
// method.
#include <cstdio>

#include "engine/executor.h"
#include "workload/airline.h"

using namespace atp;

int main() {
  AirlineConfig cfg;
  cfg.flights = 24;
  cfg.seats_per_flight = 300;
  cfg.price_cap = 400;
  cfg.availability_fraction = 0.25;
  cfg.report_fraction = 0.05;
  cfg.zipf_theta = 0.8;  // a few popular routes
  cfg.update_epsilon = 4000;
  cfg.query_epsilon = 8000;
  const std::size_t kBookings = 300;

  const Workload w = make_airline(cfg, kBookings, /*seed=*/2026);
  std::printf("airline: %zu flights, %zu txns (%.0f%% availability, %.0f%% "
              "reports)\n\n",
              cfg.flights, kBookings, cfg.availability_fraction * 100,
              cfg.report_fraction * 100);
  std::printf("%s\n", ExecutorReport::header().c_str());

  for (const MethodConfig method :
       {MethodConfig::baseline_sr(), MethodConfig::baseline_dc(),
        MethodConfig::method2(), MethodConfig::method3()}) {
    auto plan = ExecutionPlan::build(w.types, method);
    if (!plan.ok()) {
      std::fprintf(stderr, "plan failed: %s\n",
                   plan.status().to_string().c_str());
      continue;
    }
    Database db(Executor::database_options(method));
    w.load_into(db);
    ExecutorOptions opts;
    opts.workers = 8;
    opts.op_delay_min_us = 100;
    opts.op_delay_max_us = 300;
    const ExecutorReport r = Executor::run(db, plan.value(), w.instances,
                                           opts);
    std::printf("%s\n", r.row().c_str());

    // Domain invariant: every committed booking took exactly one seat.
    Value seats_left = 0;
    for (std::size_t f = 0; f < cfg.flights; ++f) {
      seats_left += db.store().read_committed(airline_seats_key(f)).value();
    }
    std::size_t bookings = 0;
    for (const auto& inst : w.instances) {
      bookings += (w.types[inst.type_index].kind == TxnKind::Update);
    }
    const Value expected =
        cfg.seats_per_flight * Value(cfg.flights) - Value(bookings);
    if (seats_left != expected) {
      std::printf("  !! seat invariant violated: %.0f vs %.0f\n", seats_left,
                  expected);
    }
  }

  std::printf("\nall methods conserve the seat ledger; the DC rows trade\n"
              "bounded availability-query staleness for fewer lock waits.\n");
  return 0;
}
