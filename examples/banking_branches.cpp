// The paper's Section 4 scenario, end to end: a New-York/Los-Angeles bank
// moves money between branches while a distributed query sums both.
//
// Two sites run real service threads over a simulated WAN (10 ms one way).
// The same transfer executes twice:
//   * traditionally -- subtransactions + two-phase commit + a global
//     validation round;
//   * the paper's way -- chopped at the branch boundary, piece 1 commits
//     locally and hands piece 2 to Los Angeles through a recoverable queue;
// then Los Angeles crashes mid-stream and the run shows why the paper calls
// the chopped scheme "asynchronous": clients never notice.
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>

#include "dist/coordinator.h"
#include "dist/site.h"

using namespace atp;
using namespace std::chrono_literals;

namespace {

constexpr Key kNyAccount = 100;
constexpr Key kLaAccount = 200;

DistTxnSpec transfer(Value amount) {
  DistTxnSpec spec;
  spec.kind = TxnKind::Update;
  // The paper splits the $10,000 export budget evenly across the pieces.
  spec.piece_epsilon = 5000;
  spec.pieces = {DistPieceSpec{0, {Access::add(kNyAccount, -amount, amount)}},
                 DistPieceSpec{1, {Access::add(kLaAccount, +amount, amount)}}};
  return spec;
}

DistTxnSpec both_branch_sum() {
  DistTxnSpec spec;
  spec.kind = TxnKind::Query;
  spec.piece_epsilon = 5000;  // import budget per piece
  spec.pieces = {DistPieceSpec{0, {Access::read(kNyAccount)}},
                 DistPieceSpec{1, {Access::read(kLaAccount)}}};
  return spec;
}

}  // namespace

int main() {
  NetworkOptions n;
  n.one_way_latency = std::chrono::microseconds(10000);  // 10 ms coast-to-coast
  SimNetwork net(2, n);
  DatabaseOptions dbo;
  dbo.scheduler = SchedulerKind::DC;
  Site ny(0, net, dbo);
  Site la(1, net, dbo);
  ny.db().load(kNyAccount, 50000);
  la.db().load(kLaAccount, 50000);
  const std::vector<Site*> sites{&ny, &la};
  Coordinator::install_chop_handler(sites);
  ny.start();
  la.start();

  Coordinator coord(ny, sites);

  std::printf("== traditional: 2PC + global validation ==\n");
  {
    auto out = coord.run_2pc(transfer(1000));
    if (out.ok()) {
      std::printf("client saw commit after %.1f ms; all sites committed "
                  "after %.1f ms\n",
                  out.value().client_latency_us / 1000.0,
                  out.value().complete_latency_us / 1000.0);
    }
  }

  std::printf("\n== the paper's way: chopped + recoverable queues ==\n");
  {
    auto out = coord.run_chopped(transfer(1000), 5000ms);
    if (out.ok()) {
      std::printf("client saw commit after %.2f ms; LA piece landed after "
                  "%.1f ms (asynchronously)\n",
                  out.value().client_latency_us / 1000.0,
                  out.value().complete_latency_us / 1000.0);
    }
  }

  std::printf("\n== a distributed query runs the same way ==\n");
  {
    auto out = coord.run_chopped(both_branch_sum(), 5000ms);
    if (out.ok()) {
      std::printf("sum-of-branches query chopped across sites, complete in "
                  "%.1f ms\n",
                  out.value().complete_latency_us / 1000.0);
    }
  }

  std::printf("\n== Los Angeles crashes; New York keeps serving ==\n");
  la.crash();
  auto during = coord.run_chopped(transfer(2000), 50ms);
  if (during.ok()) {
    std::printf("transfer committed for the client in %.2f ms with LA DOWN\n",
                during.value().client_latency_us / 1000.0);
    std::printf("LA balance still %.0f (piece queued durably)\n",
                la.db().store().read_committed(kLaAccount).value());
    la.recover();
    if (ny.wait_done(during.value().gtid, 10000ms)) {
      std::printf("after recovery the queued piece applied: LA balance %.0f\n",
                  la.db().store().read_committed(kLaAccount).value());
    }
  }

  std::printf("\nfinal: NY=%.0f LA=%.0f (total conserved: %.0f)\n",
              ny.db().store().read_committed(kNyAccount).value(),
              la.db().store().read_committed(kLaAccount).value(),
              ny.db().store().read_committed(kNyAccount).value() +
                  la.db().store().read_committed(kLaAccount).value());

  ny.stop();
  la.stop();
  return 0;
}
