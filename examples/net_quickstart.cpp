// Net quickstart: a client/server round trip over real sockets.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/net_quickstart            # in-process server
//   ./build/examples/net_quickstart 7411       # dial an already-running atpd
//
// With no arguments this starts an in-process AtpServer on a kernel-assigned
// loopback port (exactly what atpd does).  With a port argument it connects
// to an external server instead -- CI uses that mode to drive a live atpd.
// Either way it connects three clients from different epsilon classes and
// shows the admission surface:
//   * a gold update transfers money serializably (eps = 0);
//   * a bronze query audits concurrently, importing bounded fuzziness;
//   * a gold client asking for a nonzero eps is refused -- a class cannot
//     buy consistency laxity it didn't pay for.
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "sched/database.h"
#include "server/client.h"
#include "server/server.h"
#include "server/transport.h"

using namespace atp;
using namespace atp::server;

int main(int argc, char** argv) {
  constexpr Key kChecking = 1, kSavings = 2;

  // Own a server only when no external port was given.
  std::unique_ptr<Database> db;
  std::unique_ptr<AtpServer> server;
  std::uint16_t port = 0;
  if (argc > 1) {
    port = std::uint16_t(std::atoi(argv[1]));
    std::printf("dialing external server on 127.0.0.1:%u\n", unsigned(port));
  } else {
    DatabaseOptions dbo;
    dbo.scheduler = SchedulerKind::DC;
    db = std::make_unique<Database>(dbo);
    db->load(kChecking, 1000);
    db->load(kSavings, 1000);
    auto transport = std::make_unique<TcpTransport>(/*port=*/0);
    server = std::make_unique<AtpServer>(*db, std::move(transport),
                                         ServerOptions{});
    if (!server->ok()) {
      std::fprintf(stderr, "server failed to start\n");
      return 1;
    }
    port = server->port();
    std::printf("server on 127.0.0.1:%u\n", unsigned(port));
  }

  auto dial = [&](const char* cls) {
    Client c(std::make_unique<TcpByteChannel>("127.0.0.1", port));
    const Status s = c.hello(cls);
    if (!s.ok()) std::fprintf(stderr, "hello: %s\n", s.to_string().c_str());
    return c;
  };

  // External servers pre-load their own keyspace; seed the two accounts so
  // the arithmetic below reads the same either way.
  {
    Client seeder = dial("gold");
    auto st = seeder.begin(TxnKind::Update);
    if (!st.ok()) return 1;
    seeder.write(st.value(), kChecking, 1000);
    seeder.write(st.value(), kSavings, 1000);
    if (!seeder.commit(st.value()).ok()) return 1;
  }

  // Gold: serializable transfer (class ceiling is eps = 0).
  Client teller = dial("gold");
  auto t = teller.begin(TxnKind::Update);
  if (!t.ok()) return 1;
  teller.add(t.value(), kChecking, -100);
  teller.add(t.value(), kSavings, +100);
  auto z = teller.commit(t.value());
  std::printf("gold transfer committed, fuzziness Z = %.1f\n",
              z.ok() ? double(z.value()) : -1.0);

  // Bronze: a query that may import fuzziness up to its class ceiling.
  Client auditor = dial("bronze");
  auto q = auditor.begin(TxnKind::Query, /*import_limit=*/200);
  if (q.ok()) {
    const auto a = auditor.read(q.value(), kChecking);
    const auto b = auditor.read(q.value(), kSavings);
    auto qz = auditor.commit(q.value());
    std::printf("bronze audit: checking=%.1f savings=%.1f (imported Z = %.1f)\n",
                a.value_or(-1), b.value_or(-1),
                qz.ok() ? double(qz.value()) : -1.0);
  }

  // Gold asking for eps = 50 is over its ceiling: admission refuses.
  auto over = teller.begin(TxnKind::Query, /*import_limit=*/50);
  if (!over.ok()) {
    std::printf("gold asking import=50 rejected: %s\n",
                over.status().to_string().c_str());
  }

  std::printf("granted class '%s' window=%llu\n",
              teller.class_info().name.c_str(),
              (unsigned long long)teller.class_info().window);
  if (server) server->stop();
  return 0;
}
