// Order processing, local and distributed: the workload shape chopping was
// invented for (multi-table new-order transactions), run two ways:
//
//   1. locally, comparing the SR baseline with Method 3 -- orders commute,
//      so ESR-chopping splits them finely even with a revenue report in the
//      job stream;
//   2. distributed, one district per site: new orders execute as chopped
//      pieces flowing through recoverable queues, and the stock ledger
//      balances exactly when the queues drain.
#include <cstdio>
#include <memory>

#include "dist/dist_executor.h"
#include "engine/executor.h"
#include "workload/orders.h"

using namespace atp;

namespace {

SiteId district_site(Key key) {
  // Stock keys encode the district; count/ytd keys likewise.
  if (key >= 7'000'000) return SiteId((key - 7'000'000) % 100'000);
  return SiteId((key - 6'000'000) / 10'000);
}

}  // namespace

int main() {
  OrdersConfig cfg;
  cfg.districts = 2;
  cfg.items_per_district = 24;
  cfg.lines_per_order = 3;
  cfg.report_fraction = 0.06;
  cfg.stock_query_fraction = 0.2;

  std::printf("== local: SR baseline vs Method 3 on the order mix ==\n");
  const Workload w = make_orders(cfg, 300, 1234);
  std::printf("%s\n", ExecutorReport::header().c_str());
  for (const MethodConfig method :
       {MethodConfig::baseline_sr(), MethodConfig::method3()}) {
    auto plan = ExecutionPlan::build(w.types, method);
    if (!plan.ok()) continue;
    Database db(Executor::database_options(method));
    w.load_into(db);
    ExecutorOptions opts;
    opts.workers = 8;
    opts.op_delay_min_us = 100;
    opts.op_delay_max_us = 300;
    const auto r = Executor::run(db, plan.value(), w.instances, opts);
    std::printf("%s\n", r.row().c_str());
  }

  std::printf("\n== distributed: one district per site, chopped pieces over "
              "recoverable queues ==\n");
  NetworkOptions n;
  n.one_way_latency = std::chrono::microseconds(3000);
  SimNetwork net(cfg.districts, n);
  DatabaseOptions dbo;
  dbo.scheduler = SchedulerKind::DC;
  std::vector<std::unique_ptr<Site>> owned;
  std::vector<Site*> sites;
  for (SiteId s = 0; s < cfg.districts; ++s) {
    owned.push_back(std::make_unique<Site>(s, net, dbo));
    sites.push_back(owned.back().get());
  }
  Coordinator::install_chop_handler(sites);
  const Workload wd = make_orders(cfg, 150, 4321);
  for (const auto& [key, value] : wd.initial_data) {
    sites[district_site(key)]->db().load(key, value);
  }
  for (Site* s : sites) s->start();

  const auto specs = to_dist_specs(wd, district_site);
  DistExecutorOptions dopts;
  dopts.clients = 4;
  dopts.use_chopping = true;
  const auto report = DistExecutor::run(sites, specs, dopts);
  std::printf("%s\n%s\n", DistExecutorReport::header().c_str(),
              report.row("chopped").c_str());

  // Ledger check across the fleet.
  Value stock = 0, count = 0;
  for (std::size_t d = 0; d < cfg.districts; ++d) {
    count +=
        sites[d]->db().store().read_committed(orders_count_key(d)).value();
    for (std::size_t i = 0; i < cfg.items_per_district; ++i) {
      stock += sites[d]
                   ->db()
                   .store()
                   .read_committed(orders_stock_key(d, i))
                   .value();
    }
  }
  std::printf("orders booked: %.0f; stock ledger consistent: %s\n", count,
              count > 0 && stock < cfg.initial_stock * Value(cfg.districts) *
                                       Value(cfg.items_per_district)
                  ? "yes"
                  : "no");
  for (Site* s : sites) s->stop();
  return 0;
}
