// Payroll raises with a compliance audit: the paper's "a payroll system may
// limit the salary raise for each employee per year" example.
//
// Raises move bounded amounts from department budgets into salary cells, so
// total compensation dollars are invariant -- the global report's exact
// serializable answer is known, making realized inconsistency measurable.
// The run compares static vs dynamic eps-spec distribution under Method 3,
// and dumps the chopping graph of the job stream as Graphviz DOT.
#include <cstdio>

#include "chop/analyzer.h"
#include "engine/executor.h"
#include "workload/payroll.h"

using namespace atp;

int main() {
  PayrollConfig cfg;
  cfg.departments = 4;
  cfg.employees_per_dept = 24;
  cfg.raise_cap = 3000;
  cfg.dept_report_fraction = 0.2;
  cfg.global_report_fraction = 0.08;
  cfg.update_epsilon = 30000;
  cfg.query_epsilon = 60000;
  const Workload w = make_payroll(cfg, 300, /*seed=*/7);

  std::printf("payroll: %zu departments x %zu employees; raises capped at "
              "%.0f\n\n",
              cfg.departments, cfg.employees_per_dept, cfg.raise_cap);

  std::printf("%s\n", ExecutorReport::header().c_str());
  for (const DistPolicy policy : {DistPolicy::Static, DistPolicy::Dynamic}) {
    const MethodConfig method = MethodConfig::method3(policy);
    auto plan = ExecutionPlan::build(w.types, method);
    if (!plan.ok()) {
      std::fprintf(stderr, "plan failed: %s\n",
                   plan.status().to_string().c_str());
      return 1;
    }
    Database db(Executor::database_options(method));
    w.load_into(db);
    ExecutorOptions opts;
    opts.workers = 8;
    opts.op_delay_min_us = 100;
    opts.op_delay_max_us = 300;
    const ExecutorReport r = Executor::run(db, plan.value(), w.instances,
                                           opts);
    std::printf("%s\n", r.row().c_str());

    Value total = 0;
    for (const auto& [k, v] : db.store().snapshot_committed()) total += v;
    std::printf("  total compensation: %.0f (loaded %.0f) -- %s\n", total,
                w.total_money, total == w.total_money ? "conserved" : "LOST");
  }

  std::printf("\nchopping graph of the payroll job stream (Graphviz DOT):\n");
  const Chopping chop = finest_esr_chopping(w.types);
  const PieceGraph g = build_chopping_graph(w.types, chop);
  std::printf("%s", g.to_dot().c_str());
  return 0;
}
