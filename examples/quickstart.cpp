// Quickstart: chop a transfer, run it with divergence control, watch an
// audit read boundedly-stale data.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The flow below is the library's core loop:
//   1. describe the job stream as TxnPrograms (off-line knowledge);
//   2. let ExecutionPlan chop it for a method (here Method 3: ESR-chopping
//      under divergence control) and budget the eps-specs;
//   3. execute instances through a Database with a PieceRunner.
#include <cstdio>

#include "engine/executor.h"
#include "engine/piece_runner.h"
#include "engine/plan.h"
#include "sched/database.h"

using namespace atp;

int main() {
  // --- 1. the job stream: a bounded transfer and a two-account audit ------
  constexpr Key kChecking = 1, kSavings = 2;
  const TxnProgram transfer = ProgramBuilder("transfer", TxnKind::Update)
                                  .add(kChecking, -100, /*bound=*/100)
                                  .add(kSavings, +100, /*bound=*/100)
                                  .epsilon(500)  // Limit_t: may export $500
                                  .build();
  const TxnProgram audit = ProgramBuilder("audit", TxnKind::Query)
                               .read(kChecking)
                               .read(kSavings)
                               .epsilon(500)  // Limit_t: may import $500
                               .build();

  // --- 2. chop it for Method 3 (ESR-chopping + divergence control) --------
  auto plan = ExecutionPlan::build({transfer, audit}, MethodConfig::method3());
  if (!plan.ok()) {
    std::fprintf(stderr, "plan failed: %s\n", plan.status().to_string().c_str());
    return 1;
  }
  const TxnTypePlan& transfer_plan = plan.value().types[0];
  const TxnTypePlan& audit_plan = plan.value().types[1];
  std::printf("transfer chopped into %zu piece(s); inter-sibling fuzziness "
              "Z^is = %.0f\n",
              transfer_plan.piece_ranges.size(), transfer_plan.z_is);
  std::printf("audit runs whole, import budget %.0f\n\n",
              audit_plan.plan_info.limit_total);

  // --- 3. execute against a database ---------------------------------------
  Database db(Executor::database_options(plan.value().method));
  db.load(kChecking, 1000);
  db.load(kSavings, 1000);

  Rng rng(1);
  PieceRunner runner(db, nullptr);

  TxnInstance xfer_inst;
  xfer_inst.type_index = 0;
  xfer_inst.ops = {Access::add(kChecking, -100, 100),
                   Access::add(kSavings, +100, 100)};
  const TxnRunResult xfer = runner.run(transfer_plan, xfer_inst,
                                       DistPolicy::Dynamic, rng);
  std::printf("transfer committed=%s  pieces resubmitted=%llu  Z_t=%.0f\n",
              xfer.committed ? "yes" : "no",
              (unsigned long long)xfer.resubmissions, xfer.z_restricted);

  TxnInstance audit_inst;
  audit_inst.type_index = 1;
  audit_inst.ops = {Access::read(kChecking), Access::read(kSavings)};
  audit_inst.has_expected_result = true;
  audit_inst.expected_result = 2000;  // transfers conserve the total
  const TxnRunResult result = runner.run(audit_plan, audit_inst,
                                         DistPolicy::Dynamic, rng);
  std::printf("audit read total = %.0f (truth 2000, error %.0f, "
              "accounted fuzziness %.0f)\n",
              result.observed_result,
              distance(result.observed_result, 2000.0), result.z_total);

  std::printf("\nfinal balances: checking=%.0f savings=%.0f\n",
              db.store().read_committed(kChecking).value(),
              db.store().read_committed(kSavings).value());
  return 0;
}
