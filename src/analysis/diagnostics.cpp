#include "analysis/diagnostics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <unordered_set>

namespace atp::analysis {
namespace {

const char* access_name(AccessType t) noexcept {
  switch (t) {
    case AccessType::Read: return "read";
    case AccessType::Add: return "add";
    case AccessType::Write: return "write";
  }
  return "?";
}

// JSON has no Infinity literal; clamp so the output always parses.
void put_number(std::ostream& out, double v) {
  if (std::isnan(v)) {
    out << 0;
    return;
  }
  if (std::isinf(v)) {
    out << (v > 0 ? "1e308" : "-1e308");
    return;
  }
  std::ostringstream s;
  s.precision(std::numeric_limits<double>::max_digits10);
  s << v;
  out << s.str();
}

void put_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void put_piece(std::ostream& out, const PieceId& p) {
  out << "{\"txn\":" << p.txn << ",\"piece\":" << p.piece << "}";
}

}  // namespace

const char* rule_id(Rule r) noexcept {
  switch (r) {
    case Rule::SC001: return "SC001";
    case Rule::SC002: return "SC002";
    case Rule::RB001: return "RB001";
    case Rule::EP001: return "EP001";
    case Rule::LM001: return "LM001";
    case Rule::LM002: return "LM002";
    case Rule::LM003: return "LM003";
    case Rule::LM004: return "LM004";
    case Rule::LM005: return "LM005";
    case Rule::TH001: return "TH001";
    case Rule::TH002: return "TH002";
    case Rule::TH003: return "TH003";
    case Rule::TH004: return "TH004";
    case Rule::TH005: return "TH005";
  }
  return "??";
}

const char* rule_summary(Rule r) noexcept {
  switch (r) {
    case Rule::SC001: return "chopping graph contains an SC-cycle";
    case Rule::SC002: return "SC-cycle through an update-update C edge";
    case Rule::RB001: return "rollback statement escapes piece 1";
    case Rule::EP001: return "inter-sibling fuzziness exceeds Limit_t";
    case Rule::LM001: return "restricted piece limits do not sum to Limit_t";
    case Rule::LM002: return "negative per-piece limit";
    case Rule::LM003: return "unrestricted piece assigned a finite limit";
    case Rule::LM004: return "malformed piece dependency graph";
    case Rule::LM005: return "leftover propagation loses or invents budget";
    case Rule::TH001: return "raw std locking primitive outside the allowlist";
    case Rule::TH002: return "OrderedMutex rank is not in the manifest";
    case Rule::TH003: return "lock acquisition inside a collector callback";
    case Rule::TH004: return "memory_order_relaxed without relaxed-ok comment";
    case Rule::TH005: return "bare lock()/unlock() where a guard belongs";
  }
  return "?";
}

const char* to_string(Severity s) noexcept {
  switch (s) {
    case Severity::Error: return "error";
    case Severity::Warning: return "warning";
    case Severity::Note: return "note";
  }
  return "?";
}

bool CycleWitness::has_update_update() const noexcept {
  return std::any_of(edges.begin(), edges.end(), [](const WitnessEdge& e) {
    return e.conflict && e.conflict->update_update;
  });
}

bool CycleWitness::verify(const PieceGraph& g,
                          bool require_update_update) const {
  if (edges.size() < 3) return false;  // simple graph: shortest cycle is 3
  std::size_t s_count = 0, c_count = 0, uu_count = 0;
  std::unordered_set<std::size_t> seen;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const WitnessEdge& we = edges[i];
    const WitnessEdge& next = edges[(i + 1) % edges.size()];
    if (we.to != next.from) return false;  // not a closed chain
    const std::size_t u = g.vertex_of(we.from.txn, we.from.piece);
    const std::size_t v = g.vertex_of(we.to.txn, we.to.piece);
    if (u == PieceGraph::npos || v == PieceGraph::npos) return false;
    if (!seen.insert(u).second) return false;  // vertex entered twice
    // The stated edge must exist in the graph with the stated kind.
    const bool found = std::any_of(
        g.edges().begin(), g.edges().end(), [&](const GraphEdge& e) {
          return e.kind == we.kind && ((e.u == u && e.v == v) ||
                                       (e.u == v && e.v == u));
        });
    if (!found) return false;
    if (we.kind == EdgeKind::S) {
      ++s_count;
    } else {
      ++c_count;
      if (g.vertices()[u].update && g.vertices()[v].update) ++uu_count;
    }
  }
  if (s_count == 0 || c_count == 0) return false;
  if (require_update_update && uu_count == 0) return false;
  return true;
}

std::string CycleWitness::to_string(
    const std::vector<TxnProgram>& programs) const {
  std::ostringstream out;
  auto piece_name = [&](const PieceId& p) {
    std::ostringstream s;
    if (p.txn < programs.size()) s << programs[p.txn].name;
    else s << "t" << p.txn;
    s << ".p" << p.piece + 1;
    return s.str();
  };
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const WitnessEdge& e = edges[i];
    out << piece_name(e.from);
    if (e.kind == EdgeKind::S) {
      out << " -S- ";
    } else {
      out << " -C[";
      if (e.conflict) {
        const ConflictProvenance& c = *e.conflict;
        out << "item " << c.item << ": op " << c.op_from << " "
            << access_name(c.type_from) << " / op " << c.op_to << " "
            << access_name(c.type_to);
        if (c.update_update) out << ", update-update";
      }
      out << "]- ";
    }
    if (i + 1 == edges.size()) out << piece_name(e.to);
  }
  return out.str();
}

std::size_t LintReport::error_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [](const Diagnostic& d) {
                      return d.severity == Severity::Error;
                    }));
}

void LintReport::merge(LintReport other) {
  diagnostics.insert(diagnostics.end(),
                     std::make_move_iterator(other.diagnostics.begin()),
                     std::make_move_iterator(other.diagnostics.end()));
}

std::string LintReport::to_text() const {
  std::ostringstream out;
  for (const Diagnostic& d : diagnostics) {
    out << rule_id(d.rule) << " [" << atp::analysis::to_string(d.severity)
        << "] ";
    if (!d.file.empty()) {
      out << d.file;
      if (d.line) out << ":" << *d.line;
      out << ": ";
    }
    out << d.message << "\n";
  }
  return out.str();
}

std::string LintReport::to_json() const {
  std::ostringstream out;
  out << "{\"diagnostics\":[";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    if (i) out << ",";
    out << "{\"rule\":\"" << rule_id(d.rule) << "\",\"severity\":\""
        << atp::analysis::to_string(d.severity) << "\",\"message\":";
    put_string(out, d.message);
    if (!d.txn.empty()) {
      out << ",\"txn\":";
      put_string(out, d.txn);
    }
    if (d.piece) {
      out << ",\"piece\":";
      put_piece(out, *d.piece);
    }
    if (d.op) out << ",\"op\":" << *d.op;
    if (!d.file.empty()) {
      out << ",\"file\":";
      put_string(out, d.file);
    }
    if (d.line) out << ",\"line\":" << *d.line;
    if (d.cycle) {
      out << ",\"cycle\":[";
      for (std::size_t j = 0; j < d.cycle->edges.size(); ++j) {
        const WitnessEdge& e = d.cycle->edges[j];
        if (j) out << ",";
        out << "{\"from\":";
        put_piece(out, e.from);
        out << ",\"to\":";
        put_piece(out, e.to);
        out << ",\"kind\":\"" << (e.kind == EdgeKind::S ? "S" : "C") << "\"";
        if (e.kind == EdgeKind::C) {
          out << ",\"weight\":";
          put_number(out, e.weight);
        }
        if (e.conflict) {
          const ConflictProvenance& c = *e.conflict;
          out << ",\"conflict\":{\"item\":" << c.item
              << ",\"opFrom\":" << c.op_from << ",\"opTo\":" << c.op_to
              << ",\"typeFrom\":\"" << access_name(c.type_from)
              << "\",\"typeTo\":\"" << access_name(c.type_to)
              << "\",\"updateUpdate\":"
              << (c.update_update ? "true" : "false") << "}";
        }
        out << "}";
      }
      out << "]";
    }
    out << "}";
  }
  out << "],\"errors\":" << error_count() << "}";
  return out.str();
}

}  // namespace atp::analysis
