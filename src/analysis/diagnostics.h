// atp-lint diagnostics: stable rule IDs, typed findings, and cycle witnesses
// for the off-line chopping analysis.
//
// The chopping validators in src/chop/ answer Theorem 1 / Definition 1 as
// Status values; this layer upgrades every rejection into an *actionable*
// finding: which rule fired, on which transaction/piece/statement, and -- for
// cycle rules -- a concrete minimal SC-cycle with op-level provenance (which
// two statements conflict on which data item, and whether each C edge joins
// two update pieces).  Rule IDs are stable across releases so CI gates and
// golden tests can match on them.
//
// Rule catalogue:
//   SC001  SR: the chopping graph contains an SC-cycle (Theorem 1)
//   SC002  ESR: an SC-cycle passes through an update-update C edge
//          (Definition 1, condition 2 -- permanent inconsistency)
//   RB001  a rollback statement escapes piece 1 (rollback-safety)
//   EP001  inter-sibling fuzziness Z^is_t exceeds Limit_t (Def. 1, cond. 3)
//   LM001  sum of Limit_p over restricted pieces != Limit_t (Condition 3)
//   LM002  a per-piece limit is negative
//   LM003  an unrestricted piece was assigned a finite limit
//   LM004  DG(CHOP(t)) is malformed (not a forest rooted at piece 1)
//   LM005  dynamic leftover propagation loses or invents budget (Figure 2)
//
// Thread rules (--mode=threads, src/analysis/thread_lint.h -- source-level
// scanner over src/ enforcing the locking discipline of common/lock_ranks.h):
//   TH001  raw std::mutex/shared_mutex/condition_variable outside allowlist
//   TH002  OrderedMutex instantiation names a rank not in the manifest
//   TH003  lock acquisition inside a metrics-collector callback
//   TH004  memory_order_relaxed without a `relaxed-ok:` justification
//   TH005  bare .lock()/.unlock() on a mutex where a guard should be used
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "chop/chopping.h"
#include "chop/graph.h"
#include "chop/program.h"

namespace atp::analysis {

enum class Rule : std::uint8_t {
  SC001,
  SC002,
  RB001,
  EP001,
  LM001,
  LM002,
  LM003,
  LM004,
  LM005,
  TH001,
  TH002,
  TH003,
  TH004,
  TH005,
};

[[nodiscard]] const char* rule_id(Rule r) noexcept;
[[nodiscard]] const char* rule_summary(Rule r) noexcept;

enum class Severity : std::uint8_t { Error, Warning, Note };

[[nodiscard]] const char* to_string(Severity s) noexcept;

/// Op-level provenance of one C edge: the two program statements that
/// conflict on one data item.
struct ConflictProvenance {
  Key item = 0;
  std::size_t op_from = 0;  ///< op index in the `from` piece's program
  std::size_t op_to = 0;    ///< op index in the `to` piece's program
  AccessType type_from = AccessType::Read;
  AccessType type_to = AccessType::Read;
  bool update_update = false;  ///< both endpoint pieces belong to update ETs
};

/// One edge of a cycle witness, oriented head-to-tail around the cycle.
struct WitnessEdge {
  PieceId from, to;
  EdgeKind kind = EdgeKind::C;
  Value weight = 0;                            ///< W_C (C edges only)
  std::optional<ConflictProvenance> conflict;  ///< C edges only
};

/// A concrete simple SC-cycle: a closed chain of witness edges
/// (edges[i].to == edges[i+1].from, last wraps to first) containing at least
/// one S and one C edge.  Produced by find_sc_cycle(); `verify` re-checks the
/// claim against a chopping graph, so tests (and sceptical users) never have
/// to trust the extraction.
struct CycleWitness {
  std::vector<WitnessEdge> edges;

  [[nodiscard]] bool has_update_update() const noexcept;

  /// Is this a genuine simple cycle of `g` -- every edge present with the
  /// stated kind, every vertex entered exactly once -- with >= 1 S and >= 1
  /// C edge (and, if required, >= 1 update-update C edge)?
  [[nodiscard]] bool verify(const PieceGraph& g,
                            bool require_update_update = false) const;

  /// "t0.p2 -S- t0.p1 -C[x: t0.op0 add / t1.op0 read]- t1.p1 -..."
  [[nodiscard]] std::string to_string(
      const std::vector<TxnProgram>& programs) const;
};

/// One finding.  `message` is a complete human-readable sentence; the typed
/// fields let tools localize without parsing it.
struct Diagnostic {
  Rule rule = Rule::SC001;
  Severity severity = Severity::Error;
  std::string message;
  std::string txn;                    ///< subject transaction name, if any
  std::optional<PieceId> piece;       ///< localization
  std::optional<std::size_t> op;      ///< offending statement (RB001)
  std::optional<CycleWitness> cycle;  ///< SC001 / SC002
  std::string file;                   ///< source path (TH rules)
  std::optional<std::size_t> line;    ///< 1-based source line (TH rules)
};

/// A lint run's findings, renderable as text or JSON.
struct LintReport {
  std::vector<Diagnostic> diagnostics;

  [[nodiscard]] bool ok() const noexcept { return error_count() == 0; }
  [[nodiscard]] std::size_t error_count() const noexcept;

  void add(Diagnostic d) { diagnostics.push_back(std::move(d)); }
  void merge(LintReport other);

  /// One line per finding: "<RULE> [<severity>] <message>".
  [[nodiscard]] std::string to_text() const;
  /// {"diagnostics":[...], "errors":N} -- see DESIGN.md for the schema.
  [[nodiscard]] std::string to_json() const;
};

}  // namespace atp::analysis
