#include "analysis/limit_check.h"

#include <cmath>
#include <sstream>

namespace atp::analysis {
namespace {

// Float-sum identity with a relative tolerance: limits are doubles and an
// even split of Limit_t over r pieces need not re-sum exactly.
bool sums_to(Value sum, Value total) {
  if (std::isinf(sum) || std::isinf(total)) return sum == total;
  return std::fabs(sum - total) <= 1e-9 * std::max<Value>(1, std::fabs(total));
}

Diagnostic make(Rule rule, std::string txn, std::string message) {
  Diagnostic d;
  d.rule = rule;
  d.txn = std::move(txn);
  d.message = std::move(message);
  return d;
}

std::string piece_label(const std::string& txn, std::size_t piece) {
  std::ostringstream s;
  s << "txn '" << txn << "' piece " << piece + 1;
  return s.str();
}

void check_grant(const ChopPlanInfo& info, std::size_t piece, Value limit,
                 const std::string& txn, std::size_t txn_index,
                 LintReport& report) {
  if (limit < 0) {
    Diagnostic d = make(Rule::LM002, txn,
                        piece_label(txn, piece) + ": negative limit " +
                            std::to_string(limit));
    d.piece = PieceId{txn_index, piece};
    report.add(std::move(d));
  }
  if (!info.restricted[piece] && !std::isinf(limit)) {
    Diagnostic d = make(
        Rule::LM003, txn,
        piece_label(txn, piece) +
            ": unrestricted piece must run at an infinite limit, got " +
            std::to_string(limit));
    d.piece = PieceId{txn_index, piece};
    report.add(std::move(d));
  }
}

}  // namespace

LintReport check_plan_structure(const ChopPlanInfo& info,
                                const std::string& txn,
                                std::size_t txn_index) {
  LintReport report;
  const std::size_t k = info.piece_count;
  if (info.restricted.size() != k || info.children.size() != k) {
    report.add(make(Rule::LM004, txn,
                    "txn '" + txn + "': per-piece marks sized " +
                        std::to_string(info.restricted.size()) + "/" +
                        std::to_string(info.children.size()) +
                        " for piece count " + std::to_string(k)));
    return report;  // nothing below is safe to index
  }
  std::vector<std::size_t> in_degree(k, 0);
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t child : info.children[p]) {
      if (child >= k || child <= p) {
        Diagnostic d = make(Rule::LM004, txn,
                            piece_label(txn, p) + ": dependent piece index " +
                                std::to_string(child) +
                                " is not a later piece");
        d.piece = PieceId{txn_index, p};
        report.add(std::move(d));
        continue;
      }
      ++in_degree[child];
    }
  }
  if (!report.ok()) return report;
  for (std::size_t p = 0; p < k; ++p) {
    const std::size_t expected = p == 0 ? 0 : 1;
    if (in_degree[p] != expected) {
      Diagnostic d = make(
          Rule::LM004, txn,
          piece_label(txn, p) + ": " + std::to_string(in_degree[p]) +
              " parents in DG(CHOP(t)) (piece 1 needs 0, later pieces 1)");
      d.piece = PieceId{txn_index, p};
      report.add(std::move(d));
    }
  }
  return report;
}

LintReport check_static_plan(const ChopPlanInfo& info,
                             const std::vector<Value>& limits,
                             const std::string& txn,
                             std::size_t txn_index) {
  LintReport report = check_plan_structure(info, txn, txn_index);
  if (!report.ok()) return report;
  if (limits.size() != info.piece_count) {
    report.add(make(Rule::LM004, txn,
                    "txn '" + txn + "': " + std::to_string(limits.size()) +
                        " limits for " + std::to_string(info.piece_count) +
                        " pieces"));
    return report;
  }
  Value sum = 0;
  std::size_t restricted = 0;
  for (std::size_t p = 0; p < info.piece_count; ++p) {
    check_grant(info, p, limits[p], txn, txn_index, report);
    if (info.restricted[p]) {
      sum += limits[p];
      ++restricted;
    }
  }
  if (restricted > 0 && !sums_to(sum, info.limit_total)) {
    std::ostringstream msg;
    msg << "txn '" << txn << "': restricted piece limits sum to " << sum
        << " but Limit_t = " << info.limit_total << " (pieces:";
    for (std::size_t p = 0; p < info.piece_count; ++p) {
      if (info.restricted[p]) msg << " p" << p + 1 << "=" << limits[p];
    }
    msg << ")";
    report.add(make(Rule::LM001, txn, msg.str()));
  }
  return report;
}

LintReport check_dynamic_plan(const ChopPlanInfo& info,
                              LimitDistributor& distributor,
                              const std::vector<Value>& consumed,
                              const std::string& txn,
                              std::size_t txn_index) {
  LintReport report = check_plan_structure(info, txn, txn_index);
  if (!report.ok()) return report;
  if (consumed.size() != info.piece_count) {
    report.add(make(Rule::LM004, txn,
                    "txn '" + txn + "': " + std::to_string(consumed.size()) +
                        " consumption entries for " +
                        std::to_string(info.piece_count) + " pieces"));
    return report;
  }
  if (info.piece_count == 0) return report;

  // Recompute Figure 2's expected assignments alongside the distributor.
  // DG children are always later pieces, so ascending piece order is a
  // topological order.
  std::vector<Value> expected(info.piece_count, 0);
  expected[0] = info.limit_total;
  for (std::size_t p = 0; p < info.piece_count; ++p) {
    const Value granted = distributor.limit_for(p);
    check_grant(info, p, granted, txn, txn_index, report);
    if (info.restricted[p] && !sums_to(granted, expected[p])) {
      Diagnostic d = make(Rule::LM005, txn,
                          piece_label(txn, p) + ": granted " +
                              std::to_string(granted) +
                              " but leftover propagation expects " +
                              std::to_string(expected[p]));
      d.piece = PieceId{txn_index, p};
      report.add(std::move(d));
    }
    // Leftover: restricted pieces consume; unrestricted pieces forward their
    // full assignment.
    Value leftover = expected[p];
    if (info.restricted[p]) {
      leftover -= consumed[p];
      if (leftover < 0) leftover = 0;
    }
    distributor.report_committed(p, consumed[p]);
    const auto& kids = info.children[p];
    if (!kids.empty()) {
      const Value each = leftover / static_cast<Value>(kids.size());
      for (std::size_t child : kids) expected[child] = each;
    }
  }
  return report;
}

LintReport check_limit_plans(const ChopPlanInfo& info, const std::string& txn,
                             std::size_t txn_index) {
  LintReport report = check_plan_structure(info, txn, txn_index);
  if (!report.ok()) return report;
  StaticDistribution stat(info);
  std::vector<Value> limits;
  limits.reserve(info.piece_count);
  for (std::size_t p = 0; p < info.piece_count; ++p) {
    limits.push_back(stat.limit_for(p));
  }
  report.merge(check_static_plan(info, limits, txn, txn_index));
  DynamicDistribution dyn(info);
  const std::vector<Value> zero(info.piece_count, 0);
  report.merge(check_dynamic_plan(info, dyn, zero, txn, txn_index));
  return report;
}

}  // namespace atp::analysis
