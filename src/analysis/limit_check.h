// Epsilon-limit plan checker (rules LM001..LM005).
//
// Divergence control is only sound if the per-piece limits respect the
// paper's Condition 3: over the restricted pieces CHOP_R(t) of each
// transaction, Sigma Limit_p = Limit_t -- with unrestricted pieces running
// at an infinite limit and nothing going negative.  The static policy
// (Section 2.2.1) must satisfy the sum identity outright; the dynamic policy
// (Section 2.2.2, Figure 2) must instead propagate leftovers consistently
// over the piece dependency graph DG(CHOP(t)): the first piece is scheduled
// with the whole Limit_t, and each completed piece passes Limit_p - Z_p
// (unrestricted pieces: their full assignment) split evenly among its
// dependents.  The checker validates both, with per-piece localization.
#pragma once

#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "limits/distribution.h"

namespace atp::analysis {

/// Structural sanity of DG(CHOP(t)) (rule LM004): per-piece marks sized to
/// the piece count, children a forest rooted at piece 1 (every other piece
/// exactly one parent, parent index < child index, all reachable).
[[nodiscard]] LintReport check_plan_structure(const ChopPlanInfo& info,
                                              const std::string& txn,
                                              std::size_t txn_index = 0);

/// Validate a static per-piece limit assignment: LM001 (restricted limits
/// must sum to Limit_t), LM002 (non-negativity), LM003 (unrestricted =>
/// infinite).  `limits[p]` is the limit piece p would run with.
[[nodiscard]] LintReport check_static_plan(const ChopPlanInfo& info,
                                           const std::vector<Value>& limits,
                                           const std::string& txn,
                                           std::size_t txn_index = 0);

/// Drive a distributor over DG(CHOP(t)) in dependency order, feeding it the
/// measured consumption `consumed[p]` of each committed piece, and verify
/// Figure 2 leftover propagation: piece 1 scheduled with the whole Limit_t,
/// every restricted dependent granted exactly its parent's leftover split
/// evenly (LM005), plus LM002/LM003 on every grant.
[[nodiscard]] LintReport check_dynamic_plan(const ChopPlanInfo& info,
                                            LimitDistributor& distributor,
                                            const std::vector<Value>& consumed,
                                            const std::string& txn,
                                            std::size_t txn_index = 0);

/// Convenience for the lint driver: build the repo's own StaticDistribution
/// and DynamicDistribution for `info` and run both checks (dynamic with zero
/// consumption).  A clean report certifies the plan the engine would run.
[[nodiscard]] LintReport check_limit_plans(const ChopPlanInfo& info,
                                           const std::string& txn,
                                           std::size_t txn_index = 0);

}  // namespace atp::analysis
