#include "analysis/lint.h"

#include <sstream>

namespace atp::analysis {
namespace {

Diagnostic cycle_diagnostic(Rule rule, CycleWitness witness,
                            const std::vector<TxnProgram>& programs) {
  Diagnostic d;
  d.rule = rule;
  std::ostringstream msg;
  msg << (rule == Rule::SC002 ? "SC-cycle through an update-update C edge: "
                              : "SC-cycle: ")
      << witness.to_string(programs);
  d.message = msg.str();
  d.cycle = std::move(witness);
  return d;
}

}  // namespace

const char* to_string(Mode m) noexcept {
  return m == Mode::Sr ? "SR" : "ESR";
}

LintReport lint_sr_chopping(const std::vector<TxnProgram>& programs,
                            const Chopping& chopping) {
  LintReport report;
  for (Diagnostic& d : rollback_violations(programs, chopping)) {
    report.add(std::move(d));
  }
  const PieceGraph g = build_chopping_graph(programs, chopping);
  if (g.has_sc_cycle()) {
    auto witness = find_sc_cycle(g, programs, chopping);
    // has_sc_cycle guarantees a witness exists; the search budget is the
    // only way to miss it, and that never fires on block-sized graphs.
    if (witness) {
      report.add(cycle_diagnostic(Rule::SC001, std::move(*witness), programs));
    }
  }
  return report;
}

LintReport lint_esr_chopping(const std::vector<TxnProgram>& programs,
                             const Chopping& chopping) {
  LintReport report;
  for (Diagnostic& d : rollback_violations(programs, chopping)) {
    report.add(std::move(d));
  }
  const PieceGraph g = build_chopping_graph(programs, chopping);
  if (g.has_update_update_sc_cycle()) {
    auto witness =
        find_sc_cycle(g, programs, chopping, /*require_update_update=*/true);
    if (witness) {
      report.add(cycle_diagnostic(Rule::SC002, std::move(*witness), programs));
    }
  }
  for (std::size_t t = 0; t < programs.size(); ++t) {
    const Value zis = g.inter_sibling_fuzziness(t);
    if (zis <= programs[t].epsilon_limit) continue;
    Diagnostic d;
    d.rule = Rule::EP001;
    d.txn = programs[t].name;
    std::ostringstream msg;
    msg << "txn '" << programs[t].name << "': inter-sibling fuzziness Z^is = "
        << zis << " exceeds Limit_t = " << programs[t].epsilon_limit;
    d.message = msg.str();
    report.add(std::move(d));
  }
  return report;
}

LintReport lint_chopping(const std::vector<TxnProgram>& programs,
                         const Chopping& chopping, Mode mode) {
  return mode == Mode::Sr ? lint_sr_chopping(programs, chopping)
                          : lint_esr_chopping(programs, chopping);
}

std::string MergeExplanation::to_string(
    const std::vector<TxnProgram>& programs) const {
  std::ostringstream out;
  std::string name;
  if (step.txn < programs.size()) {
    name = programs[step.txn].name;
  } else {
    // Built by append: `"t" + std::to_string(...)` trips GCC 12's
    // -Wrestrict false positive (PR105651) at -O2 under -Werror.
    name = "t";
    name += std::to_string(step.txn);
  }
  out << "round " << step.round + 1 << ": merged pieces "
      << step.first_piece + 1 << "-" << step.last_piece + 1 << " of txn '"
      << name << "' -- ";
  switch (step.cause) {
    case MergeCause::ScCycle:
      out << "SC-cycle";
      break;
    case MergeCause::UpdateUpdateScCycle:
      out << "SC-cycle through an update-update C edge";
      break;
    case MergeCause::LimitOverflow:
      out << "Z^is = " << step.zis << " > Limit_t = " << step.limit
          << " (heaviest S edge merged)";
      break;
  }
  if (witness) out << ": " << witness->to_string(programs);
  return out.str();
}

ExplainedChopping explain_finest_chopping(
    const std::vector<TxnProgram>& programs, Mode mode) {
  ExplainedChopping out;
  std::vector<MergeStep> log;
  out.chopping = mode == Mode::Sr ? finest_sr_chopping(programs, &log)
                                  : finest_esr_chopping(programs, &log);
  out.steps.reserve(log.size());
  for (MergeStep& step : log) {
    MergeExplanation ex;
    if (step.cause != MergeCause::LimitOverflow) {
      // Rebuild that round's graph and extract the cycle inside the block
      // that forced this very merge.
      const PieceGraph g = build_chopping_graph(programs, step.before);
      ex.witness = find_sc_cycle(
          g, programs, step.before,
          step.cause == MergeCause::UpdateUpdateScCycle, &step.block);
    }
    ex.step = std::move(step);
    out.steps.push_back(std::move(ex));
  }
  return out;
}

}  // namespace atp::analysis
