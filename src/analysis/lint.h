// atp-lint entry points: diagnostics-first validators and explained
// finest-chopping derivations.
//
// lint_sr_chopping / lint_esr_chopping are the witness-bearing upgrades of
// chop/analyzer.h's validate_* functions: instead of a bare Status they
// return every rule violation with its localization and, for cycle rules, a
// concrete minimal SC-cycle.  explain_finest_chopping runs the merge
// fixpoint with its log and attaches, to every coarsening step, the cycle
// (extracted from that round's graph, confined to the offending block) that
// forced it -- an auditable derivation of why the final chopping is no
// finer.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "analysis/witness.h"
#include "chop/analyzer.h"

namespace atp::analysis {

enum class Mode : std::uint8_t { Sr, Esr };

[[nodiscard]] const char* to_string(Mode m) noexcept;

/// Theorem 1 with witnesses: RB001 for every escaping rollback statement,
/// SC001 with a minimal cycle if the chopping graph has an SC-cycle.
[[nodiscard]] LintReport lint_sr_chopping(
    const std::vector<TxnProgram>& programs, const Chopping& chopping);

/// Definition 1 with witnesses: RB001, SC002 with a minimal cycle through an
/// update-update C edge, and EP001 per transaction whose Z^is_t > Limit_t.
[[nodiscard]] LintReport lint_esr_chopping(
    const std::vector<TxnProgram>& programs, const Chopping& chopping);

/// Mode dispatch for the two validators above.
[[nodiscard]] LintReport lint_chopping(const std::vector<TxnProgram>& programs,
                                       const Chopping& chopping, Mode mode);

/// One explained coarsening step of a finest-chopping search.
struct MergeExplanation {
  MergeStep step;
  /// Cycle causes: the SC-cycle (inside the offending block, at that round's
  /// graph) that forced the merge.  Empty for LimitOverflow steps.
  std::optional<CycleWitness> witness;

  /// "round 1: merged pieces 1-2 of txn 'transfer' -- SC-cycle: ..."
  [[nodiscard]] std::string to_string(
      const std::vector<TxnProgram>& programs) const;
};

/// A finest chopping plus the auditable derivation that produced it.
struct ExplainedChopping {
  Chopping chopping;
  std::vector<MergeExplanation> steps;
};

[[nodiscard]] ExplainedChopping explain_finest_chopping(
    const std::vector<TxnProgram>& programs, Mode mode);

}  // namespace atp::analysis
