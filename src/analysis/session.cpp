#include "analysis/session.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <sstream>

namespace atp::analysis {
namespace {

// Content signature of a program: everything the chopping analysis reads.
// (Deltas are runtime payloads the off-line analysis never looks at.)
std::string signature_of(const TxnProgram& p) {
  std::ostringstream s;
  s << p.name << '\x1e' << static_cast<int>(p.kind) << '\x1e'
    << p.epsilon_limit << '\x1e' << p.choppable;
  for (std::size_t r : p.rollback_after) s << '\x1e' << 'r' << r;
  for (const Access& a : p.ops) {
    s << '\x1e' << static_cast<int>(a.type) << ':' << a.item << ':' << a.bound;
  }
  return s.str();
}

// Do two types interact (a potential C edge between some of their pieces)?
bool types_conflict(const TxnProgram& a, const TxnProgram& b) {
  for (const Access& x : a.ops) {
    for (const Access& y : b.ops) {
      if (conflicts(x, y)) return true;
    }
  }
  return false;
}

struct UnionFind {
  std::vector<std::size_t> parent;
  explicit UnionFind(std::size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent[find(a)] = find(b); }
};

// Rewrite a component-local report (txn indices = member positions) into
// session ids.
LintReport remap_report(const LintReport& in,
                        const std::vector<std::size_t>& local_to_id) {
  LintReport out = in;
  for (Diagnostic& d : out.diagnostics) {
    if (d.piece) d.piece->txn = local_to_id[d.piece->txn];
    if (d.cycle) {
      for (WitnessEdge& e : d.cycle->edges) {
        e.from.txn = local_to_id[e.from.txn];
        e.to.txn = local_to_id[e.to.txn];
      }
    }
  }
  return out;
}

}  // namespace

std::size_t AnalysisSession::add_txn(TxnProgram program) {
  Slot slot;
  slot.signature = signature_of(program);
  slot.program = std::move(program);
  slot.live = true;
  slots_.push_back(std::move(slot));
  refresh();
  return slots_.size() - 1;
}

void AnalysisSession::remove_txn(std::size_t id) {
  if (!live(id)) return;
  slots_[id].live = false;
  refresh();
}

std::size_t AnalysisSession::live_count() const {
  return static_cast<std::size_t>(
      std::count_if(slots_.begin(), slots_.end(),
                    [](const Slot& s) { return s.live; }));
}

const TypeAnalysis& AnalysisSession::analysis(std::size_t id) const {
  assert(live(id));
  return slots_[id].analysis;
}

const TxnProgram& AnalysisSession::program(std::size_t id) const {
  assert(live(id));
  return slots_[id].program;
}

void AnalysisSession::refresh() {
  report_ = LintReport{};

  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].live) ids.push_back(i);
  }
  if (ids.empty()) return;

  // Components of the type conflict graph.
  UnionFind uf(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    for (std::size_t j = i + 1; j < ids.size(); ++j) {
      if (types_conflict(slots_[ids[i]].program, slots_[ids[j]].program)) {
        uf.unite(i, j);
      }
    }
  }
  std::map<std::size_t, std::vector<std::size_t>> components;  // root -> ids
  for (std::size_t i = 0; i < ids.size(); ++i) {
    components[uf.find(i)].push_back(ids[i]);
  }

  for (auto& [root, members] : components) {
    // Canonical member order: by content signature (ties by id), so the
    // cache key is independent of join order.
    std::sort(members.begin(), members.end(),
              [&](std::size_t a, std::size_t b) {
                return std::tie(slots_[a].signature, a) <
                       std::tie(slots_[b].signature, b);
              });
    std::string key = to_string(mode_);
    for (std::size_t id : members) {
      key += '\x1f';
      key += slots_[id].signature;
    }

    auto it = cache_.find(key);
    if (it == cache_.end()) {
      // Run the fixpoint for this component only.
      std::vector<TxnProgram> programs;
      programs.reserve(members.size());
      for (std::size_t id : members) programs.push_back(slots_[id].program);
      const Chopping chopping = mode_ == Mode::Sr
                                    ? finest_sr_chopping(programs)
                                    : finest_esr_chopping(programs);
      const PieceGraph g = build_chopping_graph(programs, chopping);
      ComponentResult result;
      result.members.resize(members.size());
      for (std::size_t local = 0; local < members.size(); ++local) {
        TypeAnalysis& ta = result.members[local];
        ta.piece_starts = chopping.starts()[local];
        ta.restricted.resize(chopping.piece_count(local));
        for (std::size_t p = 0; p < ta.restricted.size(); ++p) {
          ta.restricted[p] = g.restricted(g.vertex_of(local, p));
        }
        ta.zis = g.inter_sibling_fuzziness(local);
      }
      result.report = lint_chopping(programs, chopping, mode_);
      it = cache_.emplace(std::move(key), std::move(result)).first;
      ++recompute_count_;
    }

    const ComponentResult& result = it->second;
    for (std::size_t local = 0; local < members.size(); ++local) {
      slots_[members[local]].analysis = result.members[local];
    }
    report_.merge(remap_report(result.report, members));
  }
}

}  // namespace atp::analysis
