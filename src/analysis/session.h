// Incremental re-analysis for dynamic environments.
//
// The paper's chopping is computed off-line for a *known* job stream, and
// its dynamic-environment story is that transaction types join and leave the
// mix at runtime -- whereupon the chopping, restricted marks, and limits
// must be re-derived.  Recomputing the whole stream on every change is
// wasteful and, at production type counts, prohibitive.
//
// The key structural fact making incrementality exact: C edges only join
// pieces of transactions that access a common item with a non-commuting op
// pair, and S edges never leave a transaction.  The chopping graph therefore
// decomposes over the connected components of the *type conflict graph*
// (types as nodes, potential C edges as edges), and the finest chopping of
// the union stream is the union of the finest choppings per component --
// blocks, cycles, restricted marks, and Z^is are all component-local.
//
// AnalysisSession maintains that decomposition: add_txn/remove_txn rebuild
// only the components whose membership changed, and component results are
// cached by content signature, so a type re-joining a previously analyzed
// mix costs a lookup, not a fixpoint.  recompute_count() exposes how many
// component fixpoints have actually run -- tests pin incrementality with it.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "analysis/lint.h"
#include "chop/analyzer.h"

namespace atp::analysis {

/// The per-type slice of a component analysis.
struct TypeAnalysis {
  std::vector<std::size_t> piece_starts;  ///< op indices where pieces begin
  std::vector<bool> restricted;           ///< per piece
  Value zis = 0;                          ///< Z^is_t of this type
};

class AnalysisSession {
 public:
  explicit AnalysisSession(Mode mode = Mode::Esr) : mode_(mode) {}

  /// Register a transaction type with the running mix; returns a stable id.
  /// Triggers re-analysis of the affected component only.
  std::size_t add_txn(TxnProgram program);

  /// Remove a type from the mix.  The remainder of its component is
  /// re-analyzed (often a cache hit if that mix ran before).
  void remove_txn(std::size_t id);

  [[nodiscard]] bool live(std::size_t id) const {
    return id < slots_.size() && slots_[id].live;
  }
  [[nodiscard]] std::size_t live_count() const;

  /// Analysis of one live type under the current mix.
  [[nodiscard]] const TypeAnalysis& analysis(std::size_t id) const;
  [[nodiscard]] const TxnProgram& program(std::size_t id) const;

  /// Findings over the whole current mix (merged per-component reports with
  /// txn indices remapped to session ids).
  [[nodiscard]] const LintReport& report() const { return report_; }

  /// How many component fixpoints have run since construction.  Stays flat
  /// across changes that only touch cached or unaffected components.
  [[nodiscard]] std::size_t recompute_count() const {
    return recompute_count_;
  }

 private:
  struct Slot {
    TxnProgram program;
    std::string signature;  ///< content key (name, kind, eps, ops, ...)
    bool live = false;
    TypeAnalysis analysis;
  };
  struct ComponentResult {
    /// Per member, in the key's (signature-sorted) member order.
    std::vector<TypeAnalysis> members;
    LintReport report;  ///< txn indices are member positions
  };

  void refresh();

  Mode mode_;
  std::vector<Slot> slots_;
  std::map<std::string, ComponentResult> cache_;
  LintReport report_;
  std::size_t recompute_count_ = 0;
};

}  // namespace atp::analysis
