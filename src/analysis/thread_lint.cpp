#include "analysis/thread_lint.h"

// GCC 12 reports maybe-uninitialized false positives from <regex> internals
// (the std::function members of __detail::_State) when the regex automaton
// is built under -fsanitize=undefined (PR105562); the library is -Werror,
// so silence exactly that warning for this translation unit.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

namespace atp::analysis {
namespace {

/// A source file split into what the compiler sees (`code`) and what the
/// human sees (`comments`), line by line.  Literal contents are blanked in
/// `code` so patterns never match inside strings; comment text never leaks
/// into `code` and vice versa.
struct SplitSource {
  std::vector<std::string> code;
  std::vector<std::string> comments;
};

SplitSource split_source(std::string_view src) {
  SplitSource out;
  out.code.emplace_back();
  out.comments.emplace_back();
  enum class State { Code, LineComment, BlockComment, Str, Chr, RawStr };
  State st = State::Code;
  std::string raw_delim;  // the )delim" closer for the active raw string

  auto newline = [&] {
    out.code.emplace_back();
    out.comments.emplace_back();
  };

  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    if (c == '\n') {
      if (st == State::LineComment) st = State::Code;
      newline();
      continue;
    }
    switch (st) {
      case State::Code:
        if (c == '/' && next == '/') {
          st = State::LineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          st = State::BlockComment;
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   src[i - 1])) &&
                               src[i - 1] != '_'))) {
          // R"delim( ... )delim"
          std::size_t open = src.find('(', i + 2);
          if (open == std::string_view::npos) {
            out.code.back() += c;
            break;
          }
          raw_delim = ")";
          raw_delim += src.substr(i + 2, open - (i + 2));
          raw_delim += '"';
          st = State::RawStr;
          i = open;  // consumed through the opening parenthesis
          out.code.back() += ' ';
        } else if (c == '"') {
          st = State::Str;
          out.code.back() += ' ';
        } else if (c == '\'') {
          st = State::Chr;
          out.code.back() += ' ';
        } else {
          out.code.back() += c;
        }
        break;
      case State::LineComment:
        out.comments.back() += c;
        break;
      case State::BlockComment:
        if (c == '*' && next == '/') {
          st = State::Code;
          ++i;
        } else {
          out.comments.back() += c;
        }
        break;
      case State::Str:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          st = State::Code;
        }
        break;
      case State::Chr:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          st = State::Code;
        }
        break;
      case State::RawStr:
        if (src.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          st = State::Code;
        }
        break;
    }
  }
  return out;
}

bool allowlisted(const std::string& path, const ThreadLintOptions& opt) {
  return std::any_of(opt.allowlist.begin(), opt.allowlist.end(),
                     [&](const std::string& suffix) {
                       return path.size() >= suffix.size() &&
                              path.compare(path.size() - suffix.size(),
                                           suffix.size(), suffix) == 0;
                     });
}

Diagnostic th_diag(Rule rule, const std::string& path, std::size_t line,
                   std::string message) {
  Diagnostic d;
  d.rule = rule;
  d.severity = Severity::Error;
  d.message = std::move(message);
  d.file = path;
  d.line = line;
  return d;
}

// ------------------------------------------------------------- TH001 ------

void check_raw_primitives(const std::string& path, const SplitSource& s,
                          LintReport* report) {
  static const std::regex kRaw(
      R"(std\s*::\s*(recursive_timed_mutex|recursive_mutex|timed_mutex|shared_timed_mutex|shared_mutex|condition_variable_any|condition_variable|mutex)\b)");
  for (std::size_t i = 0; i < s.code.size(); ++i) {
    std::smatch m;
    std::string line = s.code[i];
    if (std::regex_search(line, m, kRaw)) {
      report->add(th_diag(
          Rule::TH001, path, i + 1,
          "raw std::" + m[1].str() +
              "; declare an atp::OrderedMutex<LockRank::...> "
              "(common/ordered_lock.h) or add the file to the allowlist"));
    }
  }
}

// ------------------------------------------------------------- TH002 ------

void check_ranks(const std::string& path, const SplitSource& s,
                 const std::vector<std::string>& ranks, LintReport* report) {
  static const std::regex kInst(R"(Ordered(?:Shared)?Mutex\s*<\s*([^>]*?)\s*>)");
  static const std::regex kRank(R"((?:atp\s*::\s*)?LockRank\s*::\s*(k\w+))");
  for (std::size_t i = 0; i < s.code.size(); ++i) {
    const std::string& line = s.code[i];
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kInst);
         it != std::sregex_iterator(); ++it) {
      const std::string arg = (*it)[1].str();
      std::smatch m;
      if (!std::regex_match(arg, m, kRank)) {
        report->add(th_diag(Rule::TH002, path, i + 1,
                            "OrderedMutex argument '" + arg +
                                "' is not a LockRank::k* manifest entry"));
        continue;
      }
      const std::string name = m[1].str();
      if (std::find(ranks.begin(), ranks.end(), name) == ranks.end()) {
        report->add(th_diag(Rule::TH002, path, i + 1,
                            "rank '" + name +
                                "' is not declared in common/lock_ranks.h"));
      }
    }
  }
}

// ------------------------------------------------------------- TH003 ------

void check_collector_bodies(const std::string& path, const SplitSource& s,
                            LintReport* report) {
  // Re-join the code lines so a collector body spanning lines is one span;
  // keep an offset->line map for reporting.
  std::string code;
  std::vector<std::size_t> line_of;  // per character, 1-based line
  for (std::size_t i = 0; i < s.code.size(); ++i) {
    for (const char c : s.code[i]) {
      code += c;
      line_of.push_back(i + 1);
    }
    code += '\n';
    line_of.push_back(i + 1);
  }

  static const std::regex kAcquire(
      R"(\b(lock_guard|unique_lock|scoped_lock|shared_lock)\b|[.\->]\s*lock(_shared)?\s*\()");

  auto balanced_span = [&code](std::size_t open, char lhs,
                               char rhs) -> std::size_t {
    std::size_t depth = 0;
    for (std::size_t i = open; i < code.size(); ++i) {
      if (code[i] == lhs) ++depth;
      if (code[i] == rhs && --depth == 0) return i;
    }
    return std::string::npos;
  };

  std::size_t pos = 0;
  while ((pos = code.find("add_collector", pos)) != std::string::npos) {
    pos += 13;  // strlen("add_collector")
    // Only registration calls matter: the callback is a lambda inside the
    // call's parentheses.  Declarations and the registry's own definition
    // have no brace in their parameter list and are skipped.
    std::size_t paren = pos;
    while (paren < code.size() &&
           std::isspace(static_cast<unsigned char>(code[paren]))) {
      ++paren;
    }
    if (paren >= code.size() || code[paren] != '(') continue;
    const std::size_t paren_close = balanced_span(paren, '(', ')');
    if (paren_close == std::string::npos) continue;
    const std::size_t open = code.find('{', paren);
    if (open == std::string::npos || open > paren_close) continue;
    const std::size_t close = balanced_span(open, '{', '}');
    if (close == std::string::npos || close > paren_close) continue;
    const std::string body = code.substr(open, close - open + 1);
    std::smatch m;
    if (std::regex_search(body, m, kAcquire)) {
      const std::size_t at = open + std::size_t(m.position(0));
      report->add(th_diag(
          Rule::TH003, path, line_of[at],
          "lock acquisition inside a metrics-collector callback (collectors "
          "run under the registry lock; read the component's thread-safe "
          "accessor instead)"));
    }
  }
}

// ------------------------------------------------------------- TH004 ------

void check_relaxed_justified(const std::string& path, const SplitSource& s,
                             LintReport* report) {
  bool in_block = false;
  std::vector<bool> justified(s.code.size(), false);
  for (std::size_t i = 0; i < s.code.size(); ++i) {
    const std::string& c = s.comments[i];
    if (c.find("relaxed-ok(begin)") != std::string::npos) in_block = true;
    const bool line_ok = c.find("relaxed-ok") != std::string::npos;
    justified[i] = in_block || line_ok;
    if (c.find("relaxed-ok(end)") != std::string::npos) in_block = false;
  }
  for (std::size_t i = 0; i < s.code.size(); ++i) {
    if (s.code[i].find("memory_order_relaxed") == std::string::npos) continue;
    bool ok = false;
    for (std::size_t back = 0; back <= 3 && back <= i; ++back) {
      if (justified[i - back]) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      report->add(th_diag(
          Rule::TH004, path, i + 1,
          "memory_order_relaxed without a '// relaxed-ok: <why>' "
          "justification (same line, the 3 lines above, or an enclosing "
          "relaxed-ok(begin)/(end) block)"));
    }
  }
}

// ------------------------------------------------------------- TH005 ------

bool mutexish(const std::string& name) {
  auto ends_with = [&](std::string_view sfx) {
    return name.size() >= sfx.size() &&
           name.compare(name.size() - sfx.size(), sfx.size(), sfx) == 0;
  };
  return name == "mu" || name == "mu_" || name == "mutex" ||
         name == "mutex_" || ends_with("_mu") || ends_with("_mu_") ||
         ends_with("_mutex") || ends_with("_mutex_");
}

void check_bare_lock_calls(const std::string& path, const SplitSource& s,
                           LintReport* report) {
  static const std::regex kCall(
      R"((\w+)\s*(?:\.|->)\s*(?:un)?lock(?:_shared)?\s*\(\s*\))");
  for (std::size_t i = 0; i < s.code.size(); ++i) {
    const std::string& line = s.code[i];
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kCall);
         it != std::sregex_iterator(); ++it) {
      const std::string name = (*it)[1].str();
      if (!mutexish(name)) continue;  // guards unlocking themselves are fine
      report->add(th_diag(
          Rule::TH005, path, i + 1,
          "bare lock()/unlock() on '" + name +
              "'; use std::lock_guard/std::unique_lock so the unlock "
              "survives early returns and exceptions"));
    }
  }
}

}  // namespace

std::vector<std::string> parse_rank_manifest(std::string_view manifest) {
  const SplitSource s = split_source(manifest);
  std::vector<std::string> ranks;
  static const std::regex kEntry(R"(\b(k[A-Z]\w*)\s*=\s*\d+)");
  for (const std::string& line : s.code) {
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kEntry);
         it != std::sregex_iterator(); ++it) {
      ranks.push_back((*it)[1].str());
    }
  }
  return ranks;
}

LintReport lint_thread_source(const std::string& path,
                              std::string_view content,
                              const std::vector<std::string>& ranks,
                              const ThreadLintOptions& opt) {
  const SplitSource s = split_source(content);
  LintReport report;
  if (!allowlisted(path, opt)) {
    check_raw_primitives(path, s, &report);
    check_bare_lock_calls(path, s, &report);
  }
  check_ranks(path, s, ranks, &report);
  check_collector_bodies(path, s, &report);
  check_relaxed_justified(path, s, &report);
  return report;
}

bool lint_thread_tree(const std::string& root, const ThreadLintOptions& opt,
                      LintReport* report, std::string* error) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    *error = "not a directory: " + root;
    return false;
  }
  std::vector<std::string> files;
  for (auto it = fs::recursive_directory_iterator(root, ec);
       it != fs::recursive_directory_iterator(); ++it) {
    if (!it->is_regular_file()) continue;
    const std::string ext = it->path().extension().string();
    if (ext == ".h" || ext == ".cpp" || ext == ".cc" || ext == ".hpp") {
      files.push_back(it->path().generic_string());
    }
  }
  std::sort(files.begin(), files.end());

  const auto manifest_it =
      std::find_if(files.begin(), files.end(), [](const std::string& f) {
        return f.size() >= 19 &&
               f.compare(f.size() - 19, 19, "common/lock_ranks.h") == 0;
      });
  if (manifest_it == files.end()) {
    *error = "no common/lock_ranks.h under " + root +
             " (the rank manifest is required for --mode=threads)";
    return false;
  }
  auto read = [](const std::string& p) -> std::string {
    std::ifstream in(p);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  const std::vector<std::string> ranks = parse_rank_manifest(read(*manifest_it));
  if (ranks.empty()) {
    *error = "manifest " + *manifest_it + " declares no ranks";
    return false;
  }
  for (const std::string& f : files) {
    report->merge(lint_thread_source(f, read(f), ranks, opt));
  }
  return true;
}

}  // namespace atp::analysis
