// atp-lint --mode=threads: source-level enforcement of the concurrency
// discipline (common/lock_ranks.h + common/ordered_lock.h).
//
// This is a tokenizer-level scanner, not a compiler plugin: it strips
// comments, string/char literals and raw strings, then pattern-matches the
// remaining code.  That keeps it dependency-free (no libclang) and fast
// enough to run as a CI gate, at the price of being a *discipline* check,
// not a soundness proof -- the runtime checker in ordered_lock.h is the
// soundness half.  Rules (stable IDs, diagnostics.h):
//
//   TH001  raw std::mutex / std::shared_mutex / std::condition_variable /
//          std::recursive_mutex / std::timed_mutex in src/ outside the
//          allowlist (the OrderedMutex implementation itself).
//   TH002  every OrderedMutex< / OrderedSharedMutex< instantiation names a
//          LockRank::k* entry present in the manifest enum.
//   TH003  no lock acquisition (guard construction or direct .lock()) in
//          the body of a MetricsRegistry::add_collector callback: collectors
//          run under the registry lock, so they must read a component's own
//          thread-safe accessors instead.
//   TH004  every memory_order_relaxed carries a justification: a
//          `// relaxed-ok: why` comment on the same line or within the
//          three lines above, or an enclosing `// relaxed-ok(begin): why`
//          ... `// relaxed-ok(end)` block for dense regions (seqlocks).
//   TH005  no bare IDENT.lock() / IDENT.unlock() on identifiers that look
//          like mutexes (mu, *_mu, mutex, *_mutex); use a guard so the
//          unlock cannot be skipped by an early return or exception.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostics.h"

namespace atp::analysis {

struct ThreadLintOptions {
  /// Suffix-matched paths where raw std primitives and bare lock()/unlock()
  /// are legal: exactly the files implementing the wrappers.
  std::vector<std::string> allowlist = {
      "common/ordered_lock.h",
      "common/ordered_lock.cpp",
  };
};

/// Extract the manifest rank names (kCamelCase) from lock_ranks.h content.
[[nodiscard]] std::vector<std::string> parse_rank_manifest(
    std::string_view manifest);

/// Lint one in-memory source file.  `path` is used for reporting and for
/// allowlist matching.
[[nodiscard]] LintReport lint_thread_source(
    const std::string& path, std::string_view content,
    const std::vector<std::string>& ranks,
    const ThreadLintOptions& opt = {});

/// Walk `root` recursively for .h/.cpp files, parse the manifest from the
/// common/lock_ranks.h found inside it, and lint every file.  On setup
/// failure (missing root or manifest) returns false and sets `error`;
/// findings land in `report`.
bool lint_thread_tree(const std::string& root, const ThreadLintOptions& opt,
                      LintReport* report, std::string* error);

}  // namespace atp::analysis
