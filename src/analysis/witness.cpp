#include "analysis/witness.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <queue>
#include <sstream>

namespace atp::analysis {
namespace {

using Adjacency = std::vector<std::vector<std::pair<std::size_t, std::size_t>>>;

/// Adjacency over the allowed vertex set only (allowed empty = all).
Adjacency build_adjacency(const PieceGraph& g,
                          const std::vector<bool>& allowed) {
  Adjacency adj(g.vertex_count());
  for (std::size_t e = 0; e < g.edges().size(); ++e) {
    const std::size_t u = g.edges()[e].u, v = g.edges()[e].v;
    if (!allowed[u] || !allowed[v]) continue;
    adj[u].emplace_back(v, e);
    adj[v].emplace_back(u, e);
  }
  return adj;
}

/// Shortest walk src -> dst avoiding edge `banned` and crossing >= 1 S edge,
/// via BFS over states (vertex, seen-S).  The projected walk can revisit a
/// vertex (once per layer); the caller must check simplicity.
std::vector<std::size_t> layered_bfs(const PieceGraph& g, const Adjacency& adj,
                                     std::size_t banned, std::size_t src,
                                     std::size_t dst) {
  const std::size_t n = g.vertex_count();
  constexpr std::size_t npos = PieceGraph::npos;
  std::vector<std::size_t> parent(2 * n, npos);  // previous state
  std::vector<bool> visited(2 * n, false);
  const std::size_t start = 2 * src;  // (src, no S yet)
  visited[start] = true;
  std::queue<std::size_t> q;
  q.push(start);
  const std::size_t goal = 2 * dst + 1;
  while (!q.empty()) {
    const std::size_t state = q.front();
    q.pop();
    if (state == goal) break;
    const std::size_t v = state / 2;
    const std::size_t seen_s = state % 2;
    for (const auto& [w, e] : adj[v]) {
      if (e == banned) continue;
      const std::size_t next =
          2 * w + (seen_s | (g.edges()[e].kind == EdgeKind::S ? 1u : 0u));
      if (visited[next]) continue;
      visited[next] = true;
      parent[next] = state;
      q.push(next);
    }
  }
  if (!visited[goal]) return {};
  std::vector<std::size_t> path;
  for (std::size_t s = goal; s != npos; s = parent[s]) path.push_back(s / 2);
  std::reverse(path.begin(), path.end());
  return path;
}

[[nodiscard]] bool is_simple(const std::vector<std::size_t>& path) {
  std::vector<std::size_t> sorted = path;
  std::sort(sorted.begin(), sorted.end());
  return std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end();
}

/// Exhaustive fallback: shortest *simple* src -> dst path avoiding `banned`
/// with >= 1 S edge, by pruned DFS.  Bounded by `budget` expansions; the
/// blocks this runs on are small, and existence is guaranteed by the
/// two-edges-one-cycle theorem, so the budget is a safety net only.
struct SimplePathSearch {
  const PieceGraph& g;
  const Adjacency& adj;
  std::size_t banned, dst;
  std::vector<bool> on_path;
  std::vector<std::size_t> path, best;
  std::size_t budget = 1'000'000;

  void dfs(std::size_t v, bool seen_s) {
    if (budget == 0) return;
    --budget;
    if (!best.empty() && path.size() + 1 >= best.size()) return;  // prune
    if (v == dst) {
      if (seen_s) best = path;
      return;
    }
    for (const auto& [w, e] : adj[v]) {
      if (e == banned || on_path[w]) continue;
      on_path[w] = true;
      path.push_back(w);
      dfs(w, seen_s || g.edges()[e].kind == EdgeKind::S);
      path.pop_back();
      on_path[w] = false;
    }
  }
};

std::vector<std::size_t> shortest_simple_path(const PieceGraph& g,
                                              const Adjacency& adj,
                                              std::size_t banned,
                                              std::size_t src,
                                              std::size_t dst) {
  std::vector<std::size_t> path = layered_bfs(g, adj, banned, src, dst);
  if (!path.empty() && is_simple(path)) return path;
  SimplePathSearch search{g, adj, banned, dst, {}, {}, {}, 1'000'000};
  search.on_path.assign(g.vertex_count(), false);
  search.on_path[src] = true;
  search.path.push_back(src);
  // dst may be re-entered: it terminates the path, it is not "on" it.
  search.dfs(src, false);
  return search.best;
}

/// First conflicting statement pair between two pieces (the op-level
/// provenance of their C edge).
std::optional<ConflictProvenance> resolve_conflict(
    const std::vector<TxnProgram>& programs, const Chopping& chopping,
    const PieceId& from, const PieceId& to) {
  const TxnProgram& pf = programs[from.txn];
  const TxnProgram& pt = programs[to.txn];
  const auto [fb, fe] = chopping.piece_range(from.txn, from.piece,
                                             pf.ops.size());
  const auto [tb, te] = chopping.piece_range(to.txn, to.piece, pt.ops.size());
  for (std::size_t i = fb; i < fe; ++i) {
    for (std::size_t j = tb; j < te; ++j) {
      if (!conflicts(pf.ops[i], pt.ops[j])) continue;
      ConflictProvenance c;
      c.item = pf.ops[i].item;
      c.op_from = i;
      c.op_to = j;
      c.type_from = pf.ops[i].type;
      c.type_to = pt.ops[j].type;
      c.update_update = pf.is_update() && pt.is_update();
      return c;
    }
  }
  return std::nullopt;
}

CycleWitness witness_from_cycle(const PieceGraph& g,
                                const std::vector<TxnProgram>& programs,
                                const Chopping& chopping,
                                const std::vector<std::size_t>& cycle) {
  // cycle: vertex sequence v0 v1 ... vk with the closing edge vk -> v0
  // implied.  Look up each consecutive edge for its kind and weight.
  std::map<std::pair<std::size_t, std::size_t>, const GraphEdge*> lookup;
  for (const GraphEdge& e : g.edges()) {
    lookup[std::minmax(e.u, e.v)] = &e;
  }
  CycleWitness w;
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    const std::size_t u = cycle[i];
    const std::size_t v = cycle[(i + 1) % cycle.size()];
    const GraphEdge* e = lookup.at(std::minmax(u, v));
    WitnessEdge we;
    we.from = g.piece_of(u);
    we.to = g.piece_of(v);
    we.kind = e->kind;
    we.weight = e->kind == EdgeKind::C ? e->weight : 0;
    if (e->kind == EdgeKind::C) {
      we.conflict = resolve_conflict(programs, chopping, we.from, we.to);
    }
    w.edges.push_back(std::move(we));
  }
  return w;
}

}  // namespace

std::optional<CycleWitness> find_sc_cycle(const PieceGraph& graph,
                                          const std::vector<TxnProgram>& programs,
                                          const Chopping& chopping,
                                          bool require_update_update,
                                          const std::vector<PieceId>* within) {
  if (require_update_update ? !graph.has_update_update_sc_cycle()
                            : !graph.has_sc_cycle()) {
    return std::nullopt;
  }
  std::vector<bool> allowed(graph.vertex_count(), within == nullptr);
  if (within) {
    for (const PieceId& p : *within) {
      const std::size_t v = graph.vertex_of(p.txn, p.piece);
      if (v != PieceGraph::npos) allowed[v] = true;
    }
  }
  const Adjacency adj = build_adjacency(graph, allowed);
  std::vector<std::size_t> best;  // vertex sequence, closing edge implied
  // Seed the search from every C edge proven to lie on an SC-cycle: the
  // cycle is that edge plus a simple S-crossing return path.
  for (std::size_t e = 0; e < graph.edges().size(); ++e) {
    const GraphEdge& edge = graph.edges()[e];
    if (edge.kind != EdgeKind::C || !graph.c_edge_on_sc_cycle(e)) continue;
    if (!allowed[edge.u] || !allowed[edge.v]) continue;
    if (require_update_update && !(graph.vertices()[edge.u].update &&
                                   graph.vertices()[edge.v].update)) {
      continue;
    }
    const std::vector<std::size_t> path =
        shortest_simple_path(graph, adj, e, edge.v, edge.u);
    if (path.empty()) continue;
    // Cycle: u -C- v, then the path v .. u (closing edge u -> v is path[0]).
    std::vector<std::size_t> cycle;
    cycle.push_back(edge.u);
    cycle.insert(cycle.end(), path.begin(), path.end() - 1);
    if (best.empty() || cycle.size() < best.size()) best = std::move(cycle);
    if (best.size() == 3) break;  // nothing shorter exists
  }
  if (best.empty()) return std::nullopt;
  return witness_from_cycle(graph, programs, chopping, best);
}

std::vector<Diagnostic> rollback_violations(
    const std::vector<TxnProgram>& programs, const Chopping& chopping) {
  std::vector<Diagnostic> out;
  for (std::size_t t = 0; t < programs.size(); ++t) {
    const TxnProgram& p = programs[t];
    for (std::size_t r : p.rollback_after) {
      // Find the piece whose op range contains the rollback point.
      for (std::size_t piece = 0; piece < chopping.piece_count(t); ++piece) {
        const auto [b, e] = chopping.piece_range(t, piece, p.ops.size());
        if (r < b || r >= e) continue;
        if (piece == 0) break;  // safe
        Diagnostic d;
        d.rule = Rule::RB001;
        d.txn = p.name;
        d.piece = PieceId{t, piece};
        d.op = r;
        std::ostringstream msg;
        msg << "txn '" << p.name << "': rollback statement after op " << r
            << " lands in piece " << piece + 1
            << " (rollback-safety requires piece 1)";
        d.message = msg.str();
        out.push_back(std::move(d));
        break;
      }
    }
  }
  return out;
}

}  // namespace atp::analysis
