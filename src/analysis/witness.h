// SC-cycle witness extraction.
//
// The block decomposition in chop/graph.h proves *existence* of SC-cycles;
// a diagnostic needs the cycle itself.  find_sc_cycle() turns the existence
// proof into a concrete minimal witness: for every C edge the blocks proved
// to lie on an SC-cycle, it searches the shortest simple return path that
// crosses at least one S edge (layered BFS over (vertex, seen-S); exhaustive
// DFS fallback when the layered path revisits a vertex), and keeps the
// shortest cycle found overall.  Every C edge of the witness carries op-level
// provenance: the two conflicting statements and their common data item.
//
// The theorem backing termination: in a biconnected block with >= 2 edges
// containing both an S and a C edge, any two edges lie on a common simple
// cycle -- so whenever the graph reports has_sc_cycle(), a witness exists
// and the search finds one.
#pragma once

#include <optional>
#include <vector>

#include "analysis/diagnostics.h"
#include "chop/analyzer.h"

namespace atp::analysis {

/// Extract a shortest-found simple SC-cycle from a finalized chopping graph.
/// With `require_update_update`, only cycles through an update-update C edge
/// qualify (Definition 1, condition 2 witnesses).  With `within` non-null,
/// the search is confined to that piece set (used to localize the cycle
/// inside one offending block).  Returns nullopt iff no qualifying cycle is
/// reachable.  `programs` and `chopping` supply the op-level provenance of
/// each C edge.
[[nodiscard]] std::optional<CycleWitness> find_sc_cycle(
    const PieceGraph& graph, const std::vector<TxnProgram>& programs,
    const Chopping& chopping, bool require_update_update = false,
    const std::vector<PieceId>* within = nullptr);

/// RB001 witnesses: every rollback statement that escapes piece 1, with the
/// exact program, op index, and the piece it landed in.
[[nodiscard]] std::vector<Diagnostic> rollback_violations(
    const std::vector<TxnProgram>& programs, const Chopping& chopping);

}  // namespace atp::analysis
