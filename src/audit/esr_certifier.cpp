#include "audit/esr_certifier.h"

#include <cmath>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace atp {
namespace {

// Float tolerance for re-summed ledgers: replay performs the same additions
// in the same order as the registry, so this only has to absorb noise from
// exporters that round-tripped values through text.
[[nodiscard]] bool over(Value accumulated, Value limit) noexcept {
  return accumulated > limit + 1e-9 * std::max<Value>(1, std::fabs(limit));
}

struct Account {
  Value imported = 0;
  Value exported = 0;
  // Worst overrun seen while live (reported only if the ET commits).
  bool import_over = false, export_over = false;
  EsrViolation import_viol, export_viol;
};

}  // namespace

std::string EsrReport::describe() const {
  std::ostringstream out;
  if (!complete) out << "[incomplete trace: events dropped] ";
  if (ok) {
    out << "ESR: OK (" << committed_ets << " committed ETs, " << charges
        << " ledger entries, all within eps-spec)";
    return out.str();
  }
  out << "ESR violation:";
  for (const EsrViolation& v : violations) {
    out << " [" << to_string(v.kind);
    if (audit_node_site(v.node) != 0) out << " site" << audit_node_site(v.node);
    out << " T" << audit_node_txn(v.node) << ": " << v.accumulated << " vs "
        << v.limit << " at seq " << v.seq << "]";
  }
  return out.str();
}

EsrReport certify_esr(const std::vector<TraceEvent>& events,
                      std::uint64_t dropped) {
  EsrReport report;
  report.complete = dropped == 0;

  std::unordered_map<AuditNode, Account> accounts;
  std::unordered_set<AuditNode> committed;

  for (const TraceEvent& e : events) {
    const AuditNode node = audit_node(e.site, e.txn);
    switch (e.kind) {
      case TraceKind::FuzzImport: {
        Account& acc = accounts[node];
        acc.imported += e.a;
        ++report.charges;
        if (!acc.import_over && over(acc.imported, e.b)) {
          acc.import_over = true;
          acc.import_viol = EsrViolation{EsrViolationKind::ImportOverrun, node,
                                         e.seq, acc.imported, e.b};
        }
        break;
      }
      case TraceKind::FuzzExport: {
        Account& acc = accounts[node];
        acc.exported += e.a;
        ++report.charges;
        if (!acc.export_over && over(acc.exported, e.b)) {
          acc.export_over = true;
          acc.export_viol = EsrViolation{EsrViolationKind::ExportOverrun, node,
                                         e.seq, acc.exported, e.b};
        }
        break;
      }
      case TraceKind::TxnCommit: {
        committed.insert(node);
        const Account& acc = accounts[node];  // zero account if never charged
        const Value replayed = acc.imported + acc.exported;
        // Cross-check the engine's commit-time Z against the replayed
        // ledger; identical addition order makes this near-exact.
        if (std::fabs(replayed - e.a) >
            1e-9 * std::max<Value>(1, std::fabs(replayed))) {
          report.violations.push_back(
              EsrViolation{EsrViolationKind::LedgerMismatch, node, e.seq,
                           replayed, e.a});
        }
        if (acc.import_over) report.violations.push_back(acc.import_viol);
        if (acc.export_over) report.violations.push_back(acc.export_viol);
        break;
      }
      default:
        break;
    }
  }

  report.committed_ets = committed.size();
  report.ok = report.violations.empty();
  return report;
}

}  // namespace atp
