// Online epsilon-serializability (ESR) certifier.
//
// Replays the fuzziness ledger captured in the trace -- every FuzzImport /
// FuzzExport increment, each stamped with the account's limit at charge time
// -- and verifies that no committed ET's accumulated import or export
// fuzziness ever exceeded its eps-spec (the Limit_t the divergence
// controller promised to enforce).  It also cross-checks the ledger against
// the engine's own accounting: the Z a transaction reported at commit must
// equal the replayed imported + exported total.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "audit/sr_certifier.h"  // AuditNode helpers
#include "trace/tracer.h"

namespace atp {

enum class EsrViolationKind : std::uint8_t {
  ImportOverrun,   ///< accumulated import exceeded the limit at charge time
  ExportOverrun,   ///< accumulated export exceeded the limit at charge time
  LedgerMismatch,  ///< commit-time Z disagrees with the replayed ledger
};

[[nodiscard]] inline const char* to_string(EsrViolationKind k) noexcept {
  switch (k) {
    case EsrViolationKind::ImportOverrun: return "import overrun";
    case EsrViolationKind::ExportOverrun: return "export overrun";
    case EsrViolationKind::LedgerMismatch: return "ledger mismatch";
  }
  return "?";
}

struct EsrViolation {
  EsrViolationKind kind = EsrViolationKind::ImportOverrun;
  AuditNode node = 0;          ///< offending ET
  std::uint64_t seq = 0;       ///< event where the account went over
  Value accumulated = 0;       ///< running total after the charge
  Value limit = 0;             ///< the limit in force at that charge
};

struct EsrReport {
  bool ok = false;
  bool complete = true;     ///< false when the tracer dropped events
  std::size_t charges = 0;  ///< ledger entries replayed
  std::size_t committed_ets = 0;
  std::vector<EsrViolation> violations;  ///< committed ETs only

  [[nodiscard]] std::string describe() const;
};

/// Certify `events` (seq-sorted, as from Tracer::collect()).  Only committed
/// ETs are judged: an in-flight overrun that the scheduler aborted is the
/// mechanism working, not a violation.  `dropped`: Tracer::dropped() at
/// collect time.
[[nodiscard]] EsrReport certify_esr(const std::vector<TraceEvent>& events,
                                    std::uint64_t dropped = 0);

}  // namespace atp
