#include "audit/online_certifier.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_set>

#include "obs/metrics_registry.h"

namespace atp {
namespace {

// Same float tolerance as the offline ESR replay (esr_certifier.cpp): the
// windowed ledger performs the identical additions in the identical order.
[[nodiscard]] bool over(Value accumulated, Value limit) noexcept {
  return accumulated > limit + 1e-9 * std::max<Value>(1, std::fabs(limit));
}

[[nodiscard]] DepKind dep_kind(bool from_write, bool to_write) noexcept {
  if (from_write && to_write) return DepKind::WW;
  if (from_write) return DepKind::WR;
  return DepKind::RW;
}

[[nodiscard]] std::string node_label(AuditNode n) {
  std::ostringstream out;
  if (audit_node_site(n) != 0) out << "site" << audit_node_site(n) << ":";
  out << "T" << audit_node_txn(n);
  return out.str();
}

// Readers lists compact once they pass this many entries (retired readers
// are dropped; their edges could never matter again).  Keeps a read-hot,
// write-cold key from accumulating one entry per reader forever.
constexpr std::size_t kReaderCompactThreshold = 16;

// Key-table garbage collection cadence, in pumps.  The sweep is O(keys), so
// it is amortized rather than run every cycle.
constexpr std::uint64_t kKeyGcPeriod = 256;

}  // namespace

OnlineCertifier::OnlineCertifier(Tracer& tracer, OnlineCertifierOptions opts)
    : tracer_(tracer), opts_(opts), sub_(tracer.subscribe()) {
  if (opts_.metrics != nullptr) {
    metrics_ = opts_.metrics;
    collector_id_ = metrics_->add_collector(
        [this](obs::SnapshotBuilder& b) { publish(b); });
  }
}

OnlineCertifier::~OnlineCertifier() {
  stop();
  if (metrics_ != nullptr) metrics_->remove_collector(collector_id_);
}

void OnlineCertifier::start() {
  std::lock_guard ctl(ctl_mu_);
  if (running_) return;
  stop_requested_.store(false);
  running_ = true;
  thread_ = std::thread([this] { run_loop(); });
}

void OnlineCertifier::run_loop() {
  while (!stop_requested_.load()) {
    pump();
    std::this_thread::sleep_for(opts_.poll_interval);
  }
}

void OnlineCertifier::stop() {
  std::lock_guard ctl(ctl_mu_);
  if (running_) {
    stop_requested_.store(true);
    thread_.join();
    running_ = false;
  }
  // Final pass: with recorders quiesced every ticketed seq is published, so
  // the horizon covers the whole history and the verdict is complete.
  std::lock_guard lock(mu_);
  pump_locked(/*final_pass=*/true);
}

void OnlineCertifier::pump() {
  std::lock_guard lock(mu_);
  pump_locked(/*final_pass=*/false);
}

void OnlineCertifier::pump_locked(bool final_pass) {
  TraceSubscription::Batch batch = sub_->drain();
  if (batch.dropped > 0) {
    stats_.dropped_events = batch.dropped;
    stats_.degraded = true;
  }

  // Merge the batch into the reorder buffer (both already seq-sorted).
  if (buffer_.empty()) {
    buffer_ = std::move(batch.events);
  } else if (!batch.events.empty()) {
    const std::size_t mid = buffer_.size();
    buffer_.insert(buffer_.end(), batch.events.begin(), batch.events.end());
    std::inplace_merge(buffer_.begin(), buffer_.begin() + mid, buffer_.end(),
                       [](const TraceEvent& x, const TraceEvent& y) {
                         return x.seq < y.seq;
                       });
  }

  // Consume the strictly-ordered prefix.  Events past the horizon may still
  // have unpublished predecessors, so they wait for the next pump; a final
  // pass (recorders quiesced) consumes everything.
  std::size_t n = 0;
  while (n < buffer_.size() &&
         (final_pass || buffer_[n].seq < batch.stable_before)) {
    process_event(buffer_[n]);
    ++n;
  }
  const bool processed_any = n > 0;
  if (processed_any) buffer_.erase(buffer_.begin(), buffer_.begin() + n);

  retire_sweep();
  if (++pump_count_ % kKeyGcPeriod == 0) gc_keys();

  const std::int64_t now = tracer_.now_us();
  std::int64_t lag = 0;
  if (!buffer_.empty()) {
    lag = now - buffer_.front().ts_us;  // oldest event still unprocessed
  } else if (processed_any) {
    lag = now - last_processed_ts_;  // caught up: last record-to-process
  }
  stats_.window_lag_us = std::max<std::int64_t>(0, lag);
  stats_.max_lag_us = std::max(stats_.max_lag_us, stats_.window_lag_us);
}

OnlineCertifier::TxnState& OnlineCertifier::ensure_txn(AuditNode node,
                                                       std::uint64_t seq,
                                                       SiteId site) {
  auto [it, inserted] = txns_.try_emplace(node);
  if (inserted) {
    it->second.site = site;
    it->second.first_seq = seq;
    it->second.last_seq = seq;
    ++stats_.live_txns;
  }
  return it->second;
}

void OnlineCertifier::process_event(const TraceEvent& e) {
  ++stats_.events_processed;
  last_processed_ts_ = e.ts_us;
  const AuditNode node = audit_node(e.site, e.txn);
  switch (e.kind) {
    case TraceKind::TxnBegin: {
      TxnState& t = ensure_txn(node, e.seq, e.site);
      if (e.key != 0) t.snapshot_plus1 = e.key;  // snapshot txn: key = snap+1
      break;
    }
    case TraceKind::Read:
    case TraceKind::Write: {
      if (!opts_.check_sr) break;  // no graph: ops need not queue
      TxnState& t = ensure_txn(node, e.seq, e.site);
      if (t.status != TxnState::Status::Live) break;  // late straggler
      t.last_seq = e.seq;
      const SiteKey sk{e.site, e.key};
      keys_[sk].pending.push_back(
          PendingOp{e.seq, node, e.key, e.kind == TraceKind::Write, e.aux});
      ++t.ops_pending;
      ++stats_.pending_ops;
      if (std::find(t.touched.begin(), t.touched.end(), sk) ==
          t.touched.end()) {
        t.touched.push_back(sk);
      }
      break;
    }
    case TraceKind::FuzzImport: {
      TxnState& t = ensure_txn(node, e.seq, e.site);
      t.imported += e.a;
      if (opts_.check_esr && !t.import_over && over(t.imported, e.b)) {
        t.import_over = true;
        t.import_viol = EsrViolation{EsrViolationKind::ImportOverrun, node,
                                     e.seq, t.imported, e.b};
      }
      break;
    }
    case TraceKind::FuzzExport: {
      TxnState& t = ensure_txn(node, e.seq, e.site);
      t.exported += e.a;
      if (opts_.check_esr && !t.export_over && over(t.exported, e.b)) {
        t.export_over = true;
        t.export_viol = EsrViolation{EsrViolationKind::ExportOverrun, node,
                                     e.seq, t.exported, e.b};
      }
      break;
    }
    case TraceKind::TxnCommit: {
      TxnState& t = ensure_txn(node, e.seq, e.site);
      if (t.status != TxnState::Status::Live) break;
      decide_commit(t, node, e);
      break;
    }
    case TraceKind::TxnAbort: {
      TxnState& t = ensure_txn(node, e.seq, e.site);
      if (t.status != TxnState::Status::Live) break;
      t.status = TxnState::Status::Aborted;
      --stats_.live_txns;
      std::vector<SiteKey> touched;
      touched.swap(t.touched);
      // The drains may erase this transaction (ops_pending hitting zero
      // frees an aborted entry), so `t` is dead past this point.
      for (const SiteKey& sk : touched) drain_key(sk);
      auto it = txns_.find(node);
      if (it != txns_.end() && it->second.ops_pending == 0) txns_.erase(it);
      break;
    }
    default:
      break;
  }
}

void OnlineCertifier::decide_commit(TxnState& t, AuditNode node,
                                    const TraceEvent& e) {
  t.last_seq = e.seq;
  t.commit_seq = e.aux;  // version stamp of this txn's installs (0: none)
  if (opts_.check_esr) {
    // Commit-time Z must equal the replayed ledger, and any overrun seen
    // while live now belongs to a *committed* ET: report it.
    const Value replayed = t.imported + t.exported;
    if (std::fabs(replayed - e.a) >
        1e-9 * std::max<Value>(1, std::fabs(replayed))) {
      record_esr_violation(EsrViolation{EsrViolationKind::LedgerMismatch,
                                        node, e.seq, replayed, e.a});
    }
    if (t.import_over) record_esr_violation(t.import_viol);
    if (t.export_over) record_esr_violation(t.export_viol);
  }
  t.status = TxnState::Status::Committed;
  --stats_.live_txns;
  ++stats_.window_nodes;
  stats_.window_nodes_peak =
      std::max(stats_.window_nodes_peak, stats_.window_nodes);
  std::vector<SiteKey> touched;
  touched.swap(t.touched);
  // Draining can grow edges and run cycle checks; `t` stays valid (commits
  // never erase their own entry), but drain via the key list, not `t`.
  for (const SiteKey& sk : touched) drain_key(sk);
}

void OnlineCertifier::drain_key(const SiteKey& sk) {
  auto kit = keys_.find(sk);
  if (kit == keys_.end()) return;
  KeyState& ks = kit->second;
  while (!ks.pending.empty()) {
    const PendingOp op = ks.pending.front();
    auto it = txns_.find(op.node);
    if (it == txns_.end()) {
      // Unreachable in a complete trace; tolerated under dropped events.
      ks.pending.pop_front();
      --stats_.pending_ops;
      continue;
    }
    TxnState& t = it->second;
    if (t.status == TxnState::Status::Live) break;  // head undecided: stall
    ks.pending.pop_front();
    --t.ops_pending;
    --stats_.pending_ops;
    if (t.status == TxnState::Status::Aborted) {
      if (t.ops_pending == 0) txns_.erase(it);
      continue;
    }
    apply_op(ks, op);
  }
}

void OnlineCertifier::apply_op(KeyState& ks, const PendingOp& op) {
  if (op.is_write) {
    const std::uint64_t cseq = txns_.at(op.node).commit_seq;
    if (!ks.writers.empty() && ks.writers.back().node != op.node) {
      add_edge(ks.writers.back(), /*from_write=*/true, op);
    }
    // Listed readers are exactly those with no successor version at their
    // apply time; writes apply in commit-seq order, so this write is every
    // listed reader's first successor (rw anti-dependency).
    for (const KeyRef& r : ks.readers) {
      if (r.node != op.node) add_edge(r, /*from_write=*/false, op);
    }
    ks.readers.clear();
    if (cseq == 0) {
      // Legacy trace: only the last writer can ever conflict again.
      ks.writers.clear();
    } else if (ks.writers.size() >= kReaderCompactThreshold) {
      compact_writers(ks);
    }
    ks.writers.push_back(KeyRef{op.node, op.seq, cseq});
    return;
  }
  if (op.version == ~std::uint64_t{0}) return;  // read of own staged write
  if (op.version != 0) {
    // Versioned read: arrival order is irrelevant; the version stamp names
    // the installer (wr) and pins the successor (rw).
    const std::uint64_t v = op.version - 1;
    const KeyRef* successor = nullptr;
    for (const KeyRef& w : ks.writers) {
      if (w.version == v && w.node != op.node) {
        add_edge(w, /*from_write=*/true, op);
      }
      if (w.version > v && successor == nullptr) successor = &w;
    }
    if (successor != nullptr) {
      // reader -> successor's installer, recorded from the reader's side:
      // swap roles so the edge points reader -> writer.
      if (successor->node != op.node) {
        const PendingOp as_write{successor->seq, successor->node, op.key,
                                 /*is_write=*/true, 0};
        add_edge(KeyRef{op.node, op.seq, op.version},
                 /*from_write=*/false, as_write);
      }
      return;  // anti-dependency resolved: no need to list the reader
    }
  } else {
    // Legacy read: conflicts with the last writer by arrival order.
    if (!ks.writers.empty() && ks.writers.back().node != op.node) {
      add_edge(ks.writers.back(), /*from_write=*/true, op);
    }
  }
  const bool known =
      std::any_of(ks.readers.begin(), ks.readers.end(),
                  [&](const KeyRef& r) { return r.node == op.node; });
  if (!known) {
    if (ks.readers.size() >= kReaderCompactThreshold) compact_readers(ks);
    ks.readers.push_back(KeyRef{op.node, op.seq, op.version});
  }
}

void OnlineCertifier::add_edge(const KeyRef& from, bool from_write,
                               const PendingOp& to) {
  auto fit = txns_.find(from.node);
  // A retired source is sound to skip: it retired as a graph *source*
  // (fully applied, zero in-degree), so no path can ever enter it and no
  // cycle can pass through it (see the header's retirement invariant).
  if (fit == txns_.end()) return;
  TxnState& f = fit->second;
  if (f.status != TxnState::Status::Committed) return;
  for (const OutEdge& e : f.out) {
    if (e.to == to.node) return;  // one witness per (from, to), like offline
  }
  auto tit = txns_.find(to.node);
  if (tit == txns_.end()) return;  // unreachable: `to` is mid-apply
  const OutEdge edge{to.node, to.key, dep_kind(from_write, to.is_write),
                     from.seq, to.seq};
  f.out.push_back(edge);
  ++tit->second.in_degree;
  ++stats_.edges_added;
  if (check_cycle(from.node, to.node, edge)) {
    // Report-and-drain: the witness is recorded, so drop the closing edge
    // to keep the graph acyclic -- the window keeps retiring after a
    // violation instead of pinning the cycle's members forever.
    f.out.pop_back();
    --tit->second.in_degree;
  }
}

bool OnlineCertifier::check_cycle(AuditNode from, AuditNode to,
                                  const OutEdge& closing) {
  // Only the new edge can close a cycle, and any such cycle contains the
  // path to -> ... -> from.  Iterative DFS over the committed window,
  // keeping the predecessor edge for witness reconstruction.
  struct Pred {
    AuditNode node = 0;
    const OutEdge* edge = nullptr;
  };
  std::unordered_map<AuditNode, Pred> pred;
  std::unordered_set<AuditNode> visited{to};
  std::vector<AuditNode> stack{to};
  bool found = false;
  while (!stack.empty() && !found) {
    const AuditNode n = stack.back();
    stack.pop_back();
    auto it = txns_.find(n);
    if (it == txns_.end()) continue;
    for (const OutEdge& e : it->second.out) {
      if (visited.count(e.to) != 0) continue;
      auto tit = txns_.find(e.to);
      if (tit == txns_.end() ||
          tit->second.status != TxnState::Status::Committed) {
        continue;
      }
      visited.insert(e.to);
      pred[e.to] = Pred{n, &e};
      if (e.to == from) {
        found = true;
        break;
      }
      stack.push_back(e.to);
    }
  }
  if (!found) return false;

  // Cycle: from -(closing)-> to -> ... -> from.  Walk predecessors back
  // from `from`, then render in forward order, offline describe() style.
  struct Hop {
    AuditNode src = 0;
    const OutEdge* edge = nullptr;
  };
  std::vector<Hop> hops;
  for (AuditNode cur = from; cur != to;) {
    const Pred& p = pred.at(cur);
    hops.push_back(Hop{p.node, p.edge});
    cur = p.node;
  }
  std::ostringstream out;
  out << "SR violation: " << node_label(from) << " -" << to_string(closing.kind)
      << "[key " << closing.key << "]-> ";
  for (auto it = hops.rbegin(); it != hops.rend(); ++it) {
    out << node_label(it->src) << " -" << to_string(it->edge->kind) << "[key "
        << it->edge->key << "]-> ";
  }
  out << node_label(from);
  ++stats_.sr_violations;
  record_violation(OnlineViolation{OnlineViolation::Kind::SrCycle, from,
                                   closing.to_seq, out.str()});
  return true;
}

void OnlineCertifier::record_violation(OnlineViolation v) {
  if (witnesses_.size() < opts_.max_witnesses) {
    witnesses_.push_back(std::move(v));
  }
}

void OnlineCertifier::record_esr_violation(const EsrViolation& v) {
  ++stats_.esr_violations;
  OnlineViolation::Kind kind = OnlineViolation::Kind::EsrLedgerMismatch;
  if (v.kind == EsrViolationKind::ImportOverrun) {
    kind = OnlineViolation::Kind::EsrImportOverrun;
  } else if (v.kind == EsrViolationKind::ExportOverrun) {
    kind = OnlineViolation::Kind::EsrExportOverrun;
  }
  std::ostringstream out;
  out << "ESR violation: [" << to_string(v.kind);
  if (audit_node_site(v.node) != 0) out << " site" << audit_node_site(v.node);
  out << " T" << audit_node_txn(v.node) << ": " << v.accumulated << " vs "
      << v.limit << " at seq " << v.seq << "]";
  record_violation(OnlineViolation{kind, v.node, v.seq, out.str()});
}

bool OnlineCertifier::retirable(const TxnState& t,
                                std::uint64_t snapshot_floor) noexcept {
  // Committed, every op applied (so no future *incoming* edge exists from
  // the node's own side -- an edge u -> n is otherwise only recorded when
  // one of n's own ops applies), and no recorded incoming edge left: a
  // graph source.  Nothing can ever enter such a node again, so it can
  // never join a cycle and is safe to drop.  Seq watermarks are
  // deliberately not consulted: a node can stay a key's last writer forever
  // and gain an outgoing edge from a transaction that begins arbitrarily
  // later, so no low-watermark frontier is sound.
  //
  // Versioned writers have one extra way to gain an incoming edge: a live
  // snapshot transaction older than their commit seq can still apply a
  // read that anti-depends on them (rw into the successor's installer).
  // Hold such writers until every live snapshot has caught up.
  return t.status == TxnState::Status::Committed && t.ops_pending == 0 &&
         t.in_degree == 0 &&
         (t.commit_seq == 0 || t.commit_seq <= snapshot_floor);
}

std::uint64_t OnlineCertifier::live_snapshot_floor() const noexcept {
  // Minimum snapshot over live snapshot transactions; no live snapshot
  // means nothing constrains writer retirement.
  std::uint64_t floor = ~std::uint64_t{0};
  for (const auto& [node, t] : txns_) {
    (void)node;
    if (t.status != TxnState::Status::Live || t.snapshot_plus1 == 0) continue;
    floor = std::min(floor, t.snapshot_plus1 - 1);
  }
  return floor;
}

void OnlineCertifier::retire_sweep() {
  // Drain the committed DAG from its sources, Kahn style: each retirement
  // removes the node's outgoing edges, which may expose its successors, so
  // the sweep cascades until no source is left.  On a clean (acyclic)
  // history this empties every decided prefix; nodes on a detected cycle
  // do not pin the window either, because check_cycle drops closing edges.
  const std::uint64_t floor = live_snapshot_floor();
  std::vector<AuditNode> ready;
  for (const auto& [node, t] : txns_) {
    if (retirable(t, floor)) ready.push_back(node);
  }
  while (!ready.empty()) {
    const AuditNode node = ready.back();
    ready.pop_back();
    auto it = txns_.find(node);
    if (it == txns_.end()) continue;
    for (const OutEdge& e : it->second.out) {
      auto tit = txns_.find(e.to);
      if (tit == txns_.end()) continue;
      TxnState& succ = tit->second;
      if (--succ.in_degree == 0 && retirable(succ, floor)) {
        ready.push_back(e.to);
      }
    }
    txns_.erase(it);
    ++stats_.retired_nodes;
    --stats_.window_nodes;
  }
}

void OnlineCertifier::compact_readers(KeyState& ks) {
  ks.readers.erase(std::remove_if(ks.readers.begin(), ks.readers.end(),
                                  [&](const KeyRef& r) {
                                    return txns_.count(r.node) == 0;
                                  }),
                   ks.readers.end());
}

void OnlineCertifier::compact_writers(KeyState& ks) {
  // Retired writers' edges no longer matter (nothing can reach a retired
  // node); drop their entries.  The relative commit-seq order of the
  // survivors is preserved.
  ks.writers.erase(std::remove_if(ks.writers.begin(), ks.writers.end(),
                                  [&](const KeyRef& w) {
                                    return txns_.count(w.node) == 0;
                                  }),
                   ks.writers.end());
}

void OnlineCertifier::gc_keys() {
  for (auto it = keys_.begin(); it != keys_.end();) {
    KeyState& ks = it->second;
    if (!ks.pending.empty()) {
      ++it;
      continue;
    }
    compact_readers(ks);
    compact_writers(ks);
    if (ks.readers.empty() && ks.writers.empty()) {
      it = keys_.erase(it);
    } else {
      ++it;
    }
  }
}

OnlineCertifierStats OnlineCertifier::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

std::vector<OnlineViolation> OnlineCertifier::violations() const {
  std::lock_guard lock(mu_);
  return witnesses_;
}

void OnlineCertifier::publish(obs::SnapshotBuilder& b) const {
  const OnlineCertifierStats s = stats();
  b.counter("audit.online.violations", double(s.violations()));
  b.counter("audit.online.sr_violations", double(s.sr_violations));
  b.counter("audit.online.esr_violations", double(s.esr_violations));
  b.counter("audit.online.events_processed", double(s.events_processed));
  b.counter("audit.online.edges", double(s.edges_added));
  b.counter("audit.online.retired_nodes", double(s.retired_nodes));
  b.counter("audit.online.dropped_events", double(s.dropped_events));
  b.gauge("audit.online.window_nodes", double(s.window_nodes));
  b.gauge("audit.online.live_txns", double(s.live_txns));
  b.gauge("audit.online.pending_ops", double(s.pending_ops));
  b.gauge("audit.online.window_lag_us", double(s.window_lag_us));
  b.gauge("audit.online.degraded", s.degraded ? 1.0 : 0.0);
}

}  // namespace atp
