// Always-on windowed online certification: streaming SR/ESR.
//
// The offline certifiers (sr_certifier.h, esr_certifier.h) replay a finished
// trace, so a production run gets no safety verdict until shutdown and the
// dependency graph grows without bound.  The OnlineCertifier turns the same
// checks into a live oracle: it drains the tracer incrementally through a
// TraceSubscription (trace/tracer.h), maintains the direct-serialization
// graph over a *window* of recent transactions, replays the fuzziness ledger
// as transactions commit, and publishes its health as first-class obs
// instruments (audit.online.*).
//
// Window + retirement invariant.  Per (site, key) the certifier keeps the
// ops of undecided transactions in arrival (seq) order and applies an op
// only once its transaction's outcome is known -- committed ops extend the
// graph, aborted ops vanish.  Because ops apply strictly in seq order per
// key, a committed node whose ops have all been applied has already received
// every incoming edge it will ever have (an edge u -> n is created when n's
// own, later op applies).  Retirement drains the graph from its *sources*:
// once such a fully-applied node's in-degree reaches zero, no path can ever
// enter it again, so it can never join a cycle -- nor sit on one -- and it
// is safe to drop, together with its outgoing edges and the per-key
// reader/writer entries that point at it (each drop may expose successors,
// so the sweep cascades in topological order).  Edges whose source has
// retired are skipped rather than recorded, which is sound for the same
// reason: nothing can ever reach a retired node.  Note that retirement
// deliberately does NOT key on sequence-number watermarks: a committed node
// can stay a key's last writer indefinitely and gain an outgoing edge from
// a transaction that begins arbitrarily later, closing a cycle through its
// already-recorded incoming edges -- so no seq low-watermark frontier is
// sound; only the absence of incoming edges is.
//
// Version-stamped traces (the multi-version store) add one wrinkle: a
// snapshot read can APPLY after the writer of its version's successor did,
// creating an rw edge INTO a node none of whose own ops are pending -- so
// "all ops applied" no longer implies "no future incoming edge" for
// writers.  Retirement therefore also requires a writer's commit seq to be
// at or below the minimum snapshot of every live transaction: once no live
// snapshot predates the writer's versions, no future read can anti-depend
// on it.  When a cycle IS found, the
// witness is recorded and the closing edge dropped ("report-and-drain"), so
// the graph stays acyclic and the window keeps retiring after a violation.
// Memory is therefore bounded by the live transactions plus the undrained
// suffix of the committed DAG, not by the length of the run.
//
// Equivalence with the offline certifiers: the offline SR check adds an edge
// for every conflicting pair of committed ops; the online graph keeps only
// the adjacent conflicts (last writer, readers since that write), but every
// skipped pair is bridged by a path through committed intermediate nodes, so
// cycle existence -- the verdict -- is identical.  The ESR replay is the
// same arithmetic, applied as commits stream past.  tests/audit_online_test
// asserts verdict equality on recorded concurrent traces.
//
// Confidence: if the subscription reports dropped events (ring overwritten
// before a drain), the window may be missing edges and the certifier raises
// a sticky degraded flag (audit.online.degraded) instead of silently
// certifying a partial history.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "audit/esr_certifier.h"
#include "audit/sr_certifier.h"
#include "trace/tracer.h"

#include "common/ordered_lock.h"

namespace atp {

namespace obs {
class MetricsRegistry;
class SnapshotBuilder;
}  // namespace obs

struct OnlineCertifierOptions {
  /// Check conflict-serializability.  On for CC-scheduled databases; leave
  /// off under DC/ODC, where fuzzy reads make ET-level SR cycles the
  /// *paid-for* divergence (ESR is the contract being certified there).
  bool check_sr = true;
  /// Replay the fuzziness ledger against each ET's eps-spec.
  bool check_esr = true;
  /// Background pump cadence for start(); pump() can also be driven by hand.
  std::chrono::milliseconds poll_interval{2};
  /// Witness strings retained for violations (counters keep counting past
  /// this; the first few witnesses are what an operator actually reads).
  std::size_t max_witnesses = 8;
  /// When set, publishes audit.online.* through a pull collector (removed
  /// on destruction; the registry must outlive the certifier).
  obs::MetricsRegistry* metrics = nullptr;
};

/// One detected violation with a rendered witness, offline-report style.
struct OnlineViolation {
  enum class Kind : std::uint8_t {
    SrCycle,
    EsrImportOverrun,
    EsrExportOverrun,
    EsrLedgerMismatch,
  };
  Kind kind = Kind::SrCycle;
  AuditNode node = 0;     ///< offending transaction (one cycle member for SR)
  std::uint64_t seq = 0;  ///< event seq at which it was detected
  std::string witness;    ///< e.g. "SR violation: T7 -rw[key 3]-> T9 ..."
};

struct OnlineCertifierStats {
  std::uint64_t events_processed = 0;
  std::uint64_t sr_violations = 0;
  std::uint64_t esr_violations = 0;
  std::uint64_t edges_added = 0;
  std::uint64_t retired_nodes = 0;   ///< cumulative
  std::uint64_t dropped_events = 0;  ///< subscription-level losses
  std::size_t window_nodes = 0;      ///< committed, not yet retired
  std::size_t window_nodes_peak = 0;
  std::size_t live_txns = 0;    ///< begun, outcome not yet seen
  std::size_t pending_ops = 0;  ///< ops queued behind undecided txns
  std::int64_t window_lag_us = 0;  ///< record-to-process latency, last pump
  std::int64_t max_lag_us = 0;
  bool degraded = false;  ///< sticky: events were dropped at some point

  [[nodiscard]] std::uint64_t violations() const {
    return sr_violations + esr_violations;
  }
};

class OnlineCertifier {
 public:
  /// Subscribes to `tracer` (which must outlive this object).  Nothing runs
  /// until start() or pump().
  explicit OnlineCertifier(Tracer& tracer, OnlineCertifierOptions opts = {});
  ~OnlineCertifier();
  OnlineCertifier(const OnlineCertifier&) = delete;
  OnlineCertifier& operator=(const OnlineCertifier&) = delete;

  /// Spawn the background pump thread (idempotent).  Safe to race with
  /// stop() from another control thread.
  void start();

  /// Join the pump thread and run one final drain.  Called after recorders
  /// have quiesced, this leaves a complete verdict over the whole run.
  /// Safe to race with start() from another control thread.
  void stop();

  /// One drain + ingest + retirement cycle.  Safe from any thread; tests
  /// drive it directly for determinism.
  void pump();

  [[nodiscard]] OnlineCertifierStats stats() const;

  /// Retained violation witnesses (at most options.max_witnesses).
  [[nodiscard]] std::vector<OnlineViolation> violations() const;

 private:
  struct SiteKey {
    SiteId site;
    Key key;
    bool operator==(const SiteKey&) const = default;
  };
  struct SiteKeyHash {
    std::size_t operator()(const SiteKey& k) const noexcept {
      return std::hash<std::uint64_t>()((std::uint64_t(k.site) << 48) ^
                                        k.key);
    }
  };

  /// An op waiting in a key's queue for its transaction's outcome.
  struct PendingOp {
    std::uint64_t seq = 0;
    AuditNode node = 0;
    Key key = 0;
    bool is_write = false;
    /// Read.aux from the trace: version seq + 1 for a versioned read, ~0
    /// for a read of the transaction's own staged write, 0 on legacy traces.
    std::uint64_t version = 0;
  };

  /// A committed op already applied to the key (conflict source).
  struct KeyRef {
    AuditNode node = 0;
    std::uint64_t seq = 0;
    /// For readers: the version seq read (0 on legacy traces).  For writers:
    /// the commit seq of the version installed (0 on legacy traces).
    std::uint64_t version = 0;
  };

  struct KeyState {
    std::deque<PendingOp> pending;  ///< seq order; head blocks on undecided
    /// Committed reads still awaiting their rw successor (versioned mode:
    /// no later version installed yet; legacy mode: since the last write).
    std::vector<KeyRef> readers;
    /// Installed versions, in commit-seq order.  Legacy traces keep exactly
    /// one entry (the last writer); versioned traces keep a history so a
    /// snapshot read that applies late still finds its version's installer
    /// (compacted as writers retire).
    std::vector<KeyRef> writers;
  };

  struct OutEdge {
    AuditNode to = 0;
    Key key = 0;
    DepKind kind = DepKind::WW;
    std::uint64_t from_seq = 0;
    std::uint64_t to_seq = 0;
  };

  struct TxnState {
    enum class Status : std::uint8_t { Live, Committed, Aborted };
    Status status = Status::Live;
    SiteId site = 0;
    std::uint64_t first_seq = 0;
    std::uint64_t last_seq = 0;
    std::uint64_t commit_seq = 0;     ///< TxnCommit.aux (0: read-only/legacy)
    std::uint64_t snapshot_plus1 = 0; ///< TxnBegin.key (0: not a snapshot txn)
    std::uint32_t ops_pending = 0;   ///< our ops still queued on keys
    std::uint32_t in_degree = 0;     ///< recorded edges pointing at us
    std::vector<SiteKey> touched;    ///< keys to drain when we decide
    // Windowed fuzziness ledger (mirrors the offline ESR account).
    Value imported = 0;
    Value exported = 0;
    bool import_over = false, export_over = false;
    EsrViolation import_viol, export_viol;
    std::vector<OutEdge> out;  ///< serialization-graph edges (committed)
  };

  void pump_locked(bool final_pass);
  void process_event(const TraceEvent& e);
  TxnState& ensure_txn(AuditNode node, std::uint64_t seq, SiteId site);
  void decide_commit(TxnState& t, AuditNode node, const TraceEvent& e);
  void drain_key(const SiteKey& sk);
  void apply_op(KeyState& ks, const PendingOp& op);
  void add_edge(const KeyRef& from, bool from_write, const PendingOp& to);
  /// New edge from -> to inserted: search for a path to -> ... -> from.
  /// Returns true (after recording the witness) when a cycle was found.
  bool check_cycle(AuditNode from, AuditNode to, const OutEdge& closing);
  void record_violation(OnlineViolation v);
  void record_esr_violation(const EsrViolation& v);
  [[nodiscard]] static bool retirable(const TxnState& t,
                                      std::uint64_t snapshot_floor) noexcept;
  [[nodiscard]] std::uint64_t live_snapshot_floor() const noexcept;
  void retire_sweep();
  void compact_readers(KeyState& ks);
  void compact_writers(KeyState& ks);
  void gc_keys();
  void publish(obs::SnapshotBuilder& b) const;
  void run_loop();

  Tracer& tracer_;
  const OnlineCertifierOptions opts_;
  std::unique_ptr<TraceSubscription> sub_;  // pump thread only (under mu_)

  mutable OrderedMutex<LockRank::kOnlineCert> mu_;  // rank kOnlineCert: window state; obs collector reads stats under it
  std::unordered_map<AuditNode, TxnState> txns_;    ///< live + window
  std::unordered_map<SiteKey, KeyState, SiteKeyHash> keys_;
  std::vector<TraceEvent> buffer_;  ///< past-horizon events awaiting order
  std::vector<OnlineViolation> witnesses_;
  OnlineCertifierStats stats_{};
  std::int64_t last_processed_ts_ = 0;
  std::uint64_t pump_count_ = 0;

  mutable OrderedMutex<LockRank::kOnlineCertCtl> ctl_mu_;  // rank kOnlineCertCtl: start/stop serialization; held across the join and the final drain (kOnlineCert)
  std::thread thread_;           // under ctl_mu_
  std::atomic<bool> stop_requested_{false};
  bool running_ = false;  // under ctl_mu_

  obs::MetricsRegistry* metrics_ = nullptr;
  std::uint64_t collector_id_ = 0;
};

}  // namespace atp
