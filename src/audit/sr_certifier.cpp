#include "audit/sr_certifier.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace atp {
namespace {

struct KeyedOp {
  AuditNode node = 0;  ///< resolved through the piece-merge map
  bool is_write = false;
  std::uint64_t seq = 0;
  AuditNode raw_node = 0;   ///< pre-merge node (commit seqs are per piece)
  std::uint64_t version = 0;  ///< Read.aux: version seq + 1, ~0 = own write
};

struct SiteKey {
  SiteId site;
  Key key;
  bool operator==(const SiteKey&) const = default;
};
struct SiteKeyHash {
  std::size_t operator()(const SiteKey& k) const noexcept {
    return std::hash<std::uint64_t>()((std::uint64_t(k.site) << 48) ^ k.key);
  }
};

[[nodiscard]] DepKind dep_kind(bool from_write, bool to_write) noexcept {
  if (from_write && to_write) return DepKind::WW;
  if (from_write) return DepKind::WR;
  return DepKind::RW;
}

[[nodiscard]] std::string node_label(AuditNode n) {
  std::ostringstream out;
  if (audit_node_site(n) != 0) out << "site" << audit_node_site(n) << ":";
  out << "T" << audit_node_txn(n);
  return out.str();
}

}  // namespace

std::string SrReport::describe() const {
  std::ostringstream out;
  if (!complete) out << "[incomplete trace: events dropped] ";
  if (serializable) {
    out << "SR: OK (" << committed_txns << " committed txns, " << edges
        << " dependency edges, no cycle)";
    return out.str();
  }
  out << "SR violation: ";
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    const SrEdge& e = cycle[i];
    out << node_label(e.from) << " -" << to_string(e.kind) << "[key " << e.key
        << "]-> ";
    if (i + 1 == cycle.size()) out << node_label(e.to);
  }
  return out.str();
}

std::unordered_map<AuditNode, AuditNode> piece_merge_map(
    const std::vector<TraceEvent>& events) {
  std::unordered_map<AuditNode, AuditNode> merge;
  for (const TraceEvent& e : events) {
    if (e.kind != TraceKind::PieceStart) continue;
    if (e.aux2 == 0) continue;
    merge[audit_node(e.site, e.txn)] = audit_node(e.site, e.aux2);
  }
  return merge;
}

SrReport certify_sr(const std::vector<TraceEvent>& events,
                    const std::unordered_map<AuditNode, AuditNode>* merge,
                    std::uint64_t dropped) {
  SrReport report;
  report.complete = dropped == 0;

  std::unordered_set<AuditNode> committed;
  // Per (site, txn): the commit sequence the store stamped on the versions
  // this transaction installed (TxnCommit.aux; 0 for read-only commits and
  // for legacy traces).
  std::unordered_map<AuditNode, std::uint64_t> commit_seq;
  bool versioned = false;
  for (const TraceEvent& e : events) {
    if (e.kind == TraceKind::TxnCommit) {
      committed.insert(audit_node(e.site, e.txn));
      if (e.aux != 0) {
        commit_seq[audit_node(e.site, e.txn)] = e.aux;
        versioned = true;
      }
    } else if (e.kind == TraceKind::Read && e.aux != 0) {
      versioned = true;
    }
  }

  auto resolve = [&](AuditNode n) -> AuditNode {
    if (merge != nullptr) {
      auto it = merge->find(n);
      if (it != merge->end()) return it->second;
    }
    return n;
  };

  // Chronological committed ops per (site, key).  `events` is seq-sorted.
  std::unordered_map<SiteKey, std::vector<KeyedOp>, SiteKeyHash> by_key;
  std::unordered_set<AuditNode> nodes;
  for (const TraceEvent& e : events) {
    if (e.kind != TraceKind::Read && e.kind != TraceKind::Write) continue;
    if (!committed.count(audit_node(e.site, e.txn))) continue;
    const AuditNode node = resolve(audit_node(e.site, e.txn));
    nodes.insert(node);
    by_key[SiteKey{e.site, e.key}].push_back(
        KeyedOp{node, e.kind == TraceKind::Write, e.seq,
                audit_node(e.site, e.txn), e.aux});
  }
  report.committed_txns = nodes.size();

  // First witness per (from, to) pair is kept for reporting.
  std::unordered_map<AuditNode, std::unordered_map<AuditNode, SrEdge>> adj;
  auto add_edge = [&](AuditNode from, AuditNode to, Key key, DepKind kind,
                      std::uint64_t from_seq, std::uint64_t to_seq) {
    if (from == to) return;
    auto& slot = adj[from];
    if (!slot.count(to)) {
      slot.emplace(to, SrEdge{from, to, key, kind, from_seq, to_seq});
    }
  };

  if (versioned) {
    // Multi-version serialization graph.  Each committed writer's versions
    // carry its commit sequence; each read names the version it observed
    // (Read.aux = seq + 1, ~0 = the reader's own staged write).  Edges:
    //   ww  consecutive installers of a key, in commit-sequence order
    //   wr  version's installer -> its reader
    //   rw  reader -> installer of the *successor* of the version it read
    // Event arrival order plays no role -- a snapshot read that lands after
    // a newer commit still serializes before it.
    for (const auto& [sk, ops] : by_key) {
      struct Installed {
        std::uint64_t cseq;
        AuditNode node;       // resolved
        std::uint64_t seq;    // witnessing Write event
      };
      std::vector<Installed> installs;
      for (const KeyedOp& op : ops) {
        if (!op.is_write) continue;
        auto cit = commit_seq.find(op.raw_node);
        if (cit == commit_seq.end()) continue;  // legacy/read-only: no stamp
        if (std::any_of(installs.begin(), installs.end(), [&](const Installed& w) {
              return w.cseq == cit->second && w.node == op.node;
            })) {
          continue;  // several writes, one installed version
        }
        installs.push_back(Installed{cit->second, op.node, op.seq});
      }
      std::sort(installs.begin(), installs.end(),
                [](const Installed& x, const Installed& y) {
                  return x.cseq < y.cseq;
                });
      for (std::size_t i = 0; i + 1 < installs.size(); ++i) {
        add_edge(installs[i].node, installs[i + 1].node, sk.key, DepKind::WW,
                 installs[i].seq, installs[i + 1].seq);
      }
      for (const KeyedOp& op : ops) {
        if (op.is_write) continue;
        if (op.version == ~std::uint64_t{0}) continue;  // own staged write
        if (op.version == 0) continue;  // unstamped read in a stamped trace
        const std::uint64_t v = op.version - 1;
        // wr: the version's installer (absent for pre-trace/loaded state).
        for (const Installed& w : installs) {
          if (w.cseq == v) {
            add_edge(w.node, op.node, sk.key, DepKind::WR, w.seq, op.seq);
            break;
          }
        }
        // rw: the first successor version's installer.  If the reader
        // itself installed it, the conflict is its own write (ww chain).
        for (const Installed& w : installs) {
          if (w.cseq > v) {
            add_edge(op.node, w.node, sk.key, DepKind::RW, op.seq, w.seq);
            break;
          }
        }
      }
    }
  } else {
    // Legacy single-version trace: edge a -> b for every conflicting pair
    // of ops of distinct nodes, ordered by event seq.
    for (const auto& [sk, ops] : by_key) {
      for (std::size_t i = 0; i < ops.size(); ++i) {
        for (std::size_t j = i + 1; j < ops.size(); ++j) {
          const KeyedOp& a = ops[i];
          const KeyedOp& b = ops[j];
          if (!a.is_write && !b.is_write) continue;
          add_edge(a.node, b.node, sk.key, dep_kind(a.is_write, b.is_write),
                   a.seq, b.seq);
        }
      }
    }
  }
  for (const auto& [from, outs] : adj) report.edges += outs.size();

  // Cycle search: iterative three-colour DFS keeping the explicit path so a
  // back edge yields the witnessing cycle.
  std::unordered_map<AuditNode, int> colour;  // 0 white, 1 grey, 2 black
  struct Frame {
    AuditNode node;
    std::vector<AuditNode> pending;  // unexplored neighbours
  };
  for (const auto& [start, outs_unused] : adj) {
    (void)outs_unused;
    if (colour[start] != 0) continue;
    std::vector<Frame> path;
    auto push = [&](AuditNode n) {
      colour[n] = 1;
      Frame f{n, {}};
      auto it = adj.find(n);
      if (it != adj.end()) {
        f.pending.reserve(it->second.size());
        for (const auto& [to, edge_unused] : it->second) {
          (void)edge_unused;
          f.pending.push_back(to);
        }
      }
      path.push_back(std::move(f));
    };
    push(start);
    while (!path.empty()) {
      Frame& top = path.back();
      if (top.pending.empty()) {
        colour[top.node] = 2;
        path.pop_back();
        continue;
      }
      const AuditNode next = top.pending.back();
      top.pending.pop_back();
      const int c = colour[next];
      if (c == 2) continue;
      if (c == 0) {
        push(next);
        continue;
      }
      // Back edge to a grey node: the path from `next` to the top of the
      // stack plus this edge is a cycle.
      std::size_t begin = 0;
      while (path[begin].node != next) ++begin;
      for (std::size_t i = begin; i < path.size(); ++i) {
        const AuditNode from = path[i].node;
        const AuditNode to =
            i + 1 < path.size() ? path[i + 1].node : next;
        report.cycle.push_back(adj[from].at(to));
      }
      report.serializable = false;
      return report;
    }
  }

  report.serializable = true;
  return report;
}

}  // namespace atp
