// Online serializability (SR) certifier.
//
// Independently re-checks what the scheduler only enforces constructively:
// given a captured trace, it rebuilds the direct-serialization graph over the
// committed transactions -- one node per committed ET (or per original
// transaction when a merge map collapses chopped pieces), one edge per
// ww/wr/rw dependency witnessed by the Read/Write events on each (site, key)
// -- and searches it for cycles.  An acyclic graph proves the committed
// projection is conflict-serializable (Theorem 1's guarantee for SC-cycle-
// free choppings); a cycle is reported with the offending transaction ids
// and the witnessing edges.
//
// Transactions at different sites never conflict (each site owns its keys
// and lock space), so nodes are (site, txn) pairs packed into one id.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/tracer.h"

namespace atp {

/// Graph node: a (site, txn) pair packed into 64 bits.  Txn ids are per-site
/// counters that stay far below 2^40 in any realistic run.
using AuditNode = std::uint64_t;

[[nodiscard]] inline AuditNode audit_node(SiteId site, TxnId txn) noexcept {
  return (static_cast<AuditNode>(site) << 40) | txn;
}
[[nodiscard]] inline SiteId audit_node_site(AuditNode n) noexcept {
  return static_cast<SiteId>(n >> 40);
}
[[nodiscard]] inline TxnId audit_node_txn(AuditNode n) noexcept {
  return n & ((std::uint64_t(1) << 40) - 1);
}

enum class DepKind : std::uint8_t {
  WW,  ///< write-write: to overwrote from's installed value
  WR,  ///< write-read: to read what from wrote
  RW,  ///< read-write (anti-dependency): to overwrote what from read
};

[[nodiscard]] inline const char* to_string(DepKind k) noexcept {
  switch (k) {
    case DepKind::WW: return "ww";
    case DepKind::WR: return "wr";
    case DepKind::RW: return "rw";
  }
  return "?";
}

/// One dependency edge, annotated with a witness (the earliest pair of
/// conflicting events that created it).
struct SrEdge {
  AuditNode from = 0;
  AuditNode to = 0;
  Key key = 0;
  DepKind kind = DepKind::WW;
  std::uint64_t from_seq = 0;  ///< seq of the earlier conflicting event
  std::uint64_t to_seq = 0;    ///< seq of the later conflicting event
};

struct SrReport {
  bool serializable = false;
  /// False when the tracer dropped events: the graph is built from a suffix
  /// of the true history, so "serializable" cannot be trusted.
  bool complete = true;
  std::size_t committed_txns = 0;
  std::size_t edges = 0;
  /// The witnessing cycle (edge list, closed: back to cycle.front().from)
  /// when not serializable; empty otherwise.
  std::vector<SrEdge> cycle;

  /// Human-readable verdict, e.g.
  /// "SR violation: T7 -rw[key 3]-> T9 -wr[key 5]-> T7".
  [[nodiscard]] std::string describe() const;
};

/// Certify the committed projection of `events` (sorted by seq, as returned
/// by Tracer::collect()).  `merge`: optional map collapsing piece nodes into
/// their original-transaction nodes, so the check runs at original-
/// transaction granularity (Section 2.1's "serializable with respect to the
/// original transactions").  `dropped`: Tracer::dropped() at collect time.
[[nodiscard]] SrReport certify_sr(
    const std::vector<TraceEvent>& events,
    const std::unordered_map<AuditNode, AuditNode>* merge = nullptr,
    std::uint64_t dropped = 0);

/// Build the piece -> original merge map from the PieceStart events of a
/// trace (the engine stamps each piece with its original transaction's id).
[[nodiscard]] std::unordered_map<AuditNode, AuditNode> piece_merge_map(
    const std::vector<TraceEvent>& events);

}  // namespace atp
