#include "chop/analyzer.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>

namespace atp {
namespace {

struct ItemAccess {
  std::size_t vertex;    // piece vertex id
  std::size_t op_index;  // position in the program (identity for weights)
  Access access;
};

}  // namespace

PieceGraph build_chopping_graph(const std::vector<TxnProgram>& programs,
                                const Chopping& chopping) {
  assert(programs.size() == chopping.txn_count());
  PieceGraph g;

  // Vertices, in (txn, piece) order.
  std::vector<std::vector<std::size_t>> vid(programs.size());
  for (std::size_t t = 0; t < programs.size(); ++t) {
    const std::size_t k = chopping.piece_count(t);
    vid[t].reserve(k);
    for (std::size_t p = 0; p < k; ++p) {
      vid[t].push_back(g.add_piece(t, programs[t].is_update()));
    }
  }

  // S edges: sibling clique within each transaction.
  for (std::size_t t = 0; t < programs.size(); ++t) {
    for (std::size_t p = 0; p < vid[t].size(); ++p) {
      for (std::size_t q = p + 1; q < vid[t].size(); ++q) {
        g.add_s_edge(vid[t][p], vid[t][q]);
      }
    }
  }

  // C edges: index accesses by item, then pair up across transactions.
  std::unordered_map<Key, std::vector<ItemAccess>> by_item;
  for (std::size_t t = 0; t < programs.size(); ++t) {
    for (std::size_t p = 0; p < chopping.piece_count(t); ++p) {
      const auto [begin, end] =
          chopping.piece_range(t, p, programs[t].ops.size());
      for (std::size_t i = begin; i < end; ++i) {
        const Access& a = programs[t].ops[i];
        by_item[a.item].push_back(ItemAccess{vid[t][p], i, a});
      }
    }
  }

  // W_C semantics: the potential fuzziness of a C edge is the total bounded
  // change its *mutations* can cause to commonly-accessed items -- each
  // mutation counts once per edge, no matter how many of the partner's
  // accesses it conflicts with (a class-level read scanned N times must not
  // inflate the weight N-fold).
  std::map<std::pair<std::size_t, std::size_t>,
           std::set<std::pair<std::size_t, std::size_t>>>
      edge_mutations;  // edge -> set of (vertex, op_index) mutations
  std::set<std::pair<std::size_t, std::size_t>> conflicting_pairs;
  const auto& vertices = g.vertices();
  for (const auto& [item, accesses] : by_item) {
    for (std::size_t i = 0; i < accesses.size(); ++i) {
      for (std::size_t j = i + 1; j < accesses.size(); ++j) {
        const auto& a = accesses[i];
        const auto& b = accesses[j];
        if (a.vertex == b.vertex) continue;
        if (vertices[a.vertex].txn == vertices[b.vertex].txn) continue;
        if (!conflicts(a.access, b.access)) continue;
        const auto key = std::minmax(a.vertex, b.vertex);
        const auto edge = std::make_pair(key.first, key.second);
        conflicting_pairs.insert(edge);
        auto& muts = edge_mutations[edge];
        if (a.access.is_mutation()) muts.insert({a.vertex, a.op_index});
        if (b.access.is_mutation()) muts.insert({b.vertex, b.op_index});
      }
    }
  }
  for (const auto& edge : conflicting_pairs) {
    Value w = 0;
    for (const auto& [vertex, op_index] : edge_mutations[edge]) {
      const std::size_t txn = vertices[vertex].txn;
      w += programs[txn].ops[op_index].bound;
    }
    g.add_c_edge(edge.first, edge.second, w);
  }

  g.finalize();
  return g;
}

Status validate_sr_chopping(const std::vector<TxnProgram>& programs,
                            const Chopping& chopping) {
  if (!chopping.rollback_safe(programs)) {
    return Status::InvalidArgument("chopping is not rollback-safe");
  }
  const PieceGraph g = build_chopping_graph(programs, chopping);
  if (g.has_sc_cycle()) {
    return Status::InvalidArgument("chopping graph contains an SC-cycle");
  }
  return Status::Ok();
}

std::vector<Value> inter_sibling_fuzziness(
    const std::vector<TxnProgram>& programs, const Chopping& chopping) {
  const PieceGraph g = build_chopping_graph(programs, chopping);
  std::vector<Value> z(programs.size(), 0);
  for (std::size_t t = 0; t < programs.size(); ++t) {
    z[t] = g.inter_sibling_fuzziness(t);
  }
  return z;
}

Status validate_esr_chopping(const std::vector<TxnProgram>& programs,
                             const Chopping& chopping) {
  if (!chopping.rollback_safe(programs)) {
    return Status::InvalidArgument("chopping is not rollback-safe");
  }
  const PieceGraph g = build_chopping_graph(programs, chopping);
  if (g.has_update_update_sc_cycle()) {
    return Status::InvalidArgument(
        "an SC-cycle contains a C edge joining two update pieces "
        "(would allow permanent database inconsistency)");
  }
  for (std::size_t t = 0; t < programs.size(); ++t) {
    const Value zis = g.inter_sibling_fuzziness(t);
    if (zis > programs[t].epsilon_limit) {
      return Status::InvalidArgument(
          "inter-sibling fuzziness " + std::to_string(zis) + " of txn " +
          programs[t].name + " exceeds Limit_t " +
          std::to_string(programs[t].epsilon_limit));
    }
  }
  return Status::Ok();
}

namespace {

// Merge, inside one offending block, the sibling group of one transaction.
// Returns the step record (cause/round filled in by the caller) or nullopt
// if no block holds >= 2 pieces of one transaction.  Piece indices come from
// graph vertices, which are invalidated by the merge -- callers must rebuild
// the graph.
std::optional<MergeStep> merge_one_sibling_group(
    const std::vector<std::vector<PieceId>>& blocks, Chopping& chopping) {
  for (const auto& block : blocks) {
    // Group block pieces by transaction (ordered map: deterministic choice).
    std::map<std::size_t, std::vector<std::size_t>> group;
    for (const PieceId& p : block) group[p.txn].push_back(p.piece);
    for (auto& [txn, pieces] : group) {
      if (pieces.size() < 2) continue;
      const auto [mn, mx] = std::minmax_element(pieces.begin(), pieces.end());
      MergeStep step;
      step.txn = txn;
      step.first_piece = *mn;
      step.last_piece = *mx;
      step.block = block;
      step.before = chopping;
      chopping.merge(txn, *mn, *mx);
      return step;
    }
  }
  return std::nullopt;
}

void record(std::vector<MergeStep>* log, MergeStep step, std::size_t round,
            MergeCause cause) {
  if (!log) return;
  step.round = round;
  step.cause = cause;
  log->push_back(std::move(step));
}

}  // namespace

Chopping finest_sr_chopping(const std::vector<TxnProgram>& programs,
                            std::vector<MergeStep>* merge_log) {
  Chopping chopping = Chopping::finest_candidate(programs);
  for (std::size_t round = 0;; ++round) {
    const PieceGraph g = build_chopping_graph(programs, chopping);
    if (!g.has_sc_cycle()) return chopping;
    auto step = merge_one_sibling_group(g.sc_cycle_blocks(), chopping);
    // An SC-cycle always involves >= 2 pieces of some transaction inside one
    // block (the block contains an S edge), so a merge must be possible.
    assert(step);
    if (!step) return chopping;  // defensive: avoid an infinite loop
    record(merge_log, std::move(*step), round, MergeCause::ScCycle);
  }
}

Chopping finest_esr_chopping(const std::vector<TxnProgram>& programs,
                             std::vector<MergeStep>* merge_log) {
  Chopping chopping = Chopping::finest_candidate(programs);
  for (std::size_t round = 0;; ++round) {
    const PieceGraph g = build_chopping_graph(programs, chopping);

    // Condition 2: update-update C edges may not sit on SC-cycles.  Merge
    // those blocks first, exactly as in the SR search.
    if (g.has_update_update_sc_cycle()) {
      auto step = merge_one_sibling_group(g.uu_sc_cycle_blocks(), chopping);
      assert(step);
      if (!step) return chopping;
      record(merge_log, std::move(*step), round,
             MergeCause::UpdateUpdateScCycle);
      continue;
    }

    // Condition 3: Z^is_t <= Limit_t.  Merge away the heaviest S edge of the
    // worst offender (greedy: it removes the largest weight contribution).
    std::size_t worst_txn = PieceGraph::npos;
    Value worst_over = 0;
    for (std::size_t t = 0; t < programs.size(); ++t) {
      const Value zis = g.inter_sibling_fuzziness(t);
      const Value over = zis - programs[t].epsilon_limit;
      if (over > worst_over) {
        worst_txn = t;
        worst_over = over;
      }
    }
    if (worst_txn == PieceGraph::npos) return chopping;  // all conditions met

    const GraphEdge* heaviest = nullptr;
    for (const auto& e : g.edges()) {
      if (e.kind != EdgeKind::S) continue;
      if (g.vertices()[e.u].txn != worst_txn) continue;
      if (!heaviest || e.weight > heaviest->weight) heaviest = &e;
    }
    assert(heaviest && heaviest->weight > 0);
    if (!heaviest) return chopping;  // defensive
    const std::size_t pu = g.vertices()[heaviest->u].piece;
    const std::size_t pv = g.vertices()[heaviest->v].piece;
    MergeStep step;
    step.txn = worst_txn;
    step.first_piece = std::min(pu, pv);
    step.last_piece = std::max(pu, pv);
    step.block = {g.piece_of(heaviest->u), g.piece_of(heaviest->v)};
    step.zis = g.inter_sibling_fuzziness(worst_txn);
    step.limit = programs[worst_txn].epsilon_limit;
    step.before = chopping;
    chopping.merge(worst_txn, step.first_piece, step.last_piece);
    record(merge_log, std::move(step), round, MergeCause::LimitOverflow);
  }
}

}  // namespace atp
