// Builds the chopping graph of a job stream + chopping (Section 1.2), and
// hosts the SR / ESR correctness validators and finest-chopping searches.
#pragma once

#include <memory>
#include <vector>

#include "chop/chopping.h"
#include "chop/graph.h"
#include "chop/program.h"
#include "common/status.h"

namespace atp {

/// Construct the chopping graph: one vertex per piece, S-edge cliques within
/// each transaction, one C edge per conflicting piece pair with weight
///
///   W_C(p,q) = sum over conflicting access pairs (a in p, b in q) of the
///              bounds of the write accesses involved,
///
/// infinity if any involved write bound is unknown.  This is the conservative
/// reading of the paper's "potential fuzziness that can be caused by a
/// conflict corresponding to the C-edge".
[[nodiscard]] PieceGraph build_chopping_graph(
    const std::vector<TxnProgram>& programs, const Chopping& chopping);

/// Theorem 1: a chopping is SR-correct iff it is rollback-safe and its
/// chopping graph contains no SC-cycle.
[[nodiscard]] Status validate_sr_chopping(
    const std::vector<TxnProgram>& programs, const Chopping& chopping);

/// Definition 1: a chopping is ESR-correct iff (1) rollback-safe, (2) no
/// SC-cycle contains a C edge joining two update pieces, and (3) for every
/// transaction the inter-sibling fuzziness Z^is_t <= Limit_t.
[[nodiscard]] Status validate_esr_chopping(
    const std::vector<TxnProgram>& programs, const Chopping& chopping);

/// Per-transaction inter-sibling fuzziness of a chopping (Z^is_t, Section 3).
[[nodiscard]] std::vector<Value> inter_sibling_fuzziness(
    const std::vector<TxnProgram>& programs, const Chopping& chopping);

/// Finest SR-chopping by merge-fixpoint: start from the finest rollback-safe
/// candidate; while an SC-cycle exists, merge -- within each offending block
/// -- all pieces that belong to the same transaction; repeat.  Terminates
/// (every round removes at least one piece) and yields an SR-correct
/// chopping.
[[nodiscard]] Chopping finest_sr_chopping(
    const std::vector<TxnProgram>& programs);

/// Finest ESR-chopping by merge-fixpoint: like finest_sr_chopping, but an
/// SC-cycle is tolerable when it has no update-update C edge and the
/// resulting Z^is_t fits within every transaction's Limit_t.  When Z^is_t
/// overflows, the heaviest S edge of the offending transaction is merged
/// away first (greedy).  With all C-edge weights unknown this degrades to
/// exactly the SR-chopping -- the paper's upward compatibility.
[[nodiscard]] Chopping finest_esr_chopping(
    const std::vector<TxnProgram>& programs);

}  // namespace atp
