// Builds the chopping graph of a job stream + chopping (Section 1.2), and
// hosts the SR / ESR correctness validators and finest-chopping searches.
#pragma once

#include <memory>
#include <vector>

#include "chop/chopping.h"
#include "chop/graph.h"
#include "chop/program.h"
#include "common/status.h"

namespace atp {

/// Construct the chopping graph: one vertex per piece, S-edge cliques within
/// each transaction, one C edge per conflicting piece pair with weight
///
///   W_C(p,q) = sum over conflicting access pairs (a in p, b in q) of the
///              bounds of the write accesses involved,
///
/// infinity if any involved write bound is unknown.  This is the conservative
/// reading of the paper's "potential fuzziness that can be caused by a
/// conflict corresponding to the C-edge".
[[nodiscard]] PieceGraph build_chopping_graph(
    const std::vector<TxnProgram>& programs, const Chopping& chopping);

/// Theorem 1: a chopping is SR-correct iff it is rollback-safe and its
/// chopping graph contains no SC-cycle.
[[nodiscard]] Status validate_sr_chopping(
    const std::vector<TxnProgram>& programs, const Chopping& chopping);

/// Definition 1: a chopping is ESR-correct iff (1) rollback-safe, (2) no
/// SC-cycle contains a C edge joining two update pieces, and (3) for every
/// transaction the inter-sibling fuzziness Z^is_t <= Limit_t.
[[nodiscard]] Status validate_esr_chopping(
    const std::vector<TxnProgram>& programs, const Chopping& chopping);

/// Per-transaction inter-sibling fuzziness of a chopping (Z^is_t, Section 3).
[[nodiscard]] std::vector<Value> inter_sibling_fuzziness(
    const std::vector<TxnProgram>& programs, const Chopping& chopping);

/// Why one coarsening step of a finest-chopping search merged pieces.
enum class MergeCause : std::uint8_t {
  ScCycle,              ///< SR search: the block witnessed an SC-cycle
  UpdateUpdateScCycle,  ///< ESR search: SC-cycle through an update-update C edge
  LimitOverflow,        ///< ESR search: Z^is_t > Limit_t; heaviest S edge merged
};

/// One step of the finest-chopping merge fixpoint: an auditable record of
/// which pieces merged and the evidence that forced it.  `before` is the
/// chopping the step acted on, so a diagnostics layer can rebuild that
/// round's graph and extract a concrete cycle witness.
struct MergeStep {
  std::size_t round = 0;
  MergeCause cause = MergeCause::ScCycle;
  std::size_t txn = 0;          ///< transaction whose pieces merged
  std::size_t first_piece = 0;  ///< merged range [first, last], pre-merge indices
  std::size_t last_piece = 0;
  /// Cycle causes: the offending SC-block.  LimitOverflow: the two endpoints
  /// of the S edge that was merged away.
  std::vector<PieceId> block;
  Value zis = 0;    ///< LimitOverflow: the overflowing Z^is_t
  Value limit = 0;  ///< LimitOverflow: the Limit_t it exceeded
  Chopping before;  ///< chopping state at the start of the step
};

/// Finest SR-chopping by merge-fixpoint: start from the finest rollback-safe
/// candidate; while an SC-cycle exists, merge -- within each offending block
/// -- all pieces that belong to the same transaction; repeat.  Terminates
/// (every round removes at least one piece) and yields an SR-correct
/// chopping.  With `merge_log` non-null, every coarsening step is appended:
/// the full derivation of why the result is no finer.
[[nodiscard]] Chopping finest_sr_chopping(
    const std::vector<TxnProgram>& programs,
    std::vector<MergeStep>* merge_log = nullptr);

/// Finest ESR-chopping by merge-fixpoint: like finest_sr_chopping, but an
/// SC-cycle is tolerable when it has no update-update C edge and the
/// resulting Z^is_t fits within every transaction's Limit_t.  When Z^is_t
/// overflows, the heaviest S edge of the offending transaction is merged
/// away first (greedy).  With all C-edge weights unknown this degrades to
/// exactly the SR-chopping -- the paper's upward compatibility.
[[nodiscard]] Chopping finest_esr_chopping(
    const std::vector<TxnProgram>& programs,
    std::vector<MergeStep>* merge_log = nullptr);

}  // namespace atp
