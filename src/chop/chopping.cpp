#include "chop/chopping.h"

#include <algorithm>
#include <cassert>

namespace atp {

Chopping Chopping::unchopped(const std::vector<TxnProgram>& programs) {
  std::vector<std::vector<std::size_t>> starts(programs.size(), {0});
  return Chopping(std::move(starts));
}

Chopping Chopping::finest_candidate(const std::vector<TxnProgram>& programs) {
  std::vector<std::vector<std::size_t>> starts;
  starts.reserve(programs.size());
  for (const TxnProgram& p : programs) {
    if (!p.choppable) {
      starts.push_back({0});
      continue;
    }
    // All ops up to (and including) the last rollback point belong to piece 1.
    std::size_t first_free = 0;
    for (std::size_t r : p.rollback_after) {
      first_free = std::max(first_free, r + 1);
    }
    std::vector<std::size_t> s{0};
    for (std::size_t i = std::max<std::size_t>(first_free, 1); i < p.ops.size();
         ++i) {
      s.push_back(i);
    }
    starts.push_back(std::move(s));
  }
  return Chopping(std::move(starts));
}

std::size_t Chopping::total_pieces() const {
  std::size_t n = 0;
  for (const auto& s : starts_) n += s.size();
  return n;
}

std::pair<std::size_t, std::size_t> Chopping::piece_range(
    std::size_t txn, std::size_t piece, std::size_t op_count) const {
  const auto& s = starts_[txn];
  const std::size_t begin = s[piece];
  const std::size_t end = piece + 1 < s.size() ? s[piece + 1] : op_count;
  return {begin, end};
}

void Chopping::merge(std::size_t txn, std::size_t first, std::size_t last) {
  assert(txn < starts_.size());
  auto& s = starts_[txn];
  assert(first <= last && last < s.size());
  if (first == last) return;
  // Remove the boundaries that begin pieces first+1 .. last.
  s.erase(s.begin() + static_cast<std::ptrdiff_t>(first) + 1,
          s.begin() + static_cast<std::ptrdiff_t>(last) + 1);
}

bool Chopping::rollback_safe(const std::vector<TxnProgram>& programs) const {
  assert(programs.size() == starts_.size());
  for (std::size_t t = 0; t < programs.size(); ++t) {
    const auto& s = starts_[t];
    // End of piece 1 (exclusive).
    const std::size_t p1_end = s.size() > 1 ? s[1] : programs[t].ops.size();
    for (std::size_t r : programs[t].rollback_after) {
      if (r >= p1_end) return false;
    }
  }
  return true;
}

}  // namespace atp
