// A chopping: a partition CHOP(T) of every transaction's op sequence into
// consecutive pieces (Section 1.2).
//
// We restrict pieces to *contiguous* op ranges.  Shasha's formalism permits
// arbitrary partitions respecting program-text dependencies; contiguous
// ranges are the common practical case (each piece is a prefix-to-suffix
// split of the program) and merging contiguous ranges is always a correct
// coarsening, so the finest-chopping search below stays sound.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "chop/program.h"
#include "common/status.h"

namespace atp {

/// Identifies one piece: transaction index within the job stream + piece
/// index within that transaction's partition.  The typed handle every
/// chopping-graph query hands out, so tools never reverse-engineer vertex
/// numbering.
struct PieceId {
  std::size_t txn = 0;
  std::size_t piece = 0;
  friend bool operator==(const PieceId&, const PieceId&) = default;
  friend auto operator<=>(const PieceId&, const PieceId&) = default;
};

class Chopping {
 public:
  /// The trivial chopping: one piece per transaction.
  [[nodiscard]] static Chopping unchopped(const std::vector<TxnProgram>& programs);

  /// The finest rollback-safe candidate: every op its own piece, except that
  /// all ops up to the last rollback statement stay in piece 1.  This is the
  /// starting point of the finest-chopping fixpoint searches.
  [[nodiscard]] static Chopping finest_candidate(
      const std::vector<TxnProgram>& programs);

  /// Empty chopping (no transactions); useful as a value-type default.
  Chopping() = default;

  /// Explicit construction: starts[t] = sorted op indices at which pieces of
  /// transaction t begin; starts[t].front() must be 0.
  explicit Chopping(std::vector<std::vector<std::size_t>> starts)
      : starts_(std::move(starts)) {}

  [[nodiscard]] std::size_t txn_count() const noexcept { return starts_.size(); }
  [[nodiscard]] std::size_t piece_count(std::size_t txn) const {
    return starts_[txn].size();
  }
  [[nodiscard]] std::size_t total_pieces() const;

  /// [begin, end) op range of piece `p` of transaction `t`.  `end` for the
  /// last piece is the program's op count, supplied by the caller.
  [[nodiscard]] std::pair<std::size_t, std::size_t> piece_range(
      std::size_t txn, std::size_t piece, std::size_t op_count) const;

  /// Merge pieces [first..last] of `txn` into one piece (covering range).
  void merge(std::size_t txn, std::size_t first, std::size_t last);

  /// Is every rollback statement of every program inside its first piece?
  [[nodiscard]] bool rollback_safe(const std::vector<TxnProgram>& programs) const;

  [[nodiscard]] const std::vector<std::vector<std::size_t>>& starts() const noexcept {
    return starts_;
  }

  friend bool operator==(const Chopping&, const Chopping&) = default;

 private:
  std::vector<std::vector<std::size_t>> starts_;
};

}  // namespace atp
