#include "chop/graph.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace atp {

std::vector<std::size_t> biconnected_components(
    std::size_t n_vertices,
    const std::vector<std::pair<std::size_t, std::size_t>>& edges,
    std::vector<std::size_t>& block_edge_count) {
  constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::vector<std::size_t> comp(edges.size(), npos);
  block_edge_count.clear();

  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> adj(n_vertices);
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const auto [u, v] = edges[e];
    adj[u].emplace_back(v, e);
    adj[v].emplace_back(u, e);
  }

  std::vector<std::size_t> disc(n_vertices, npos), low(n_vertices, 0);
  std::size_t timer = 0;

  struct Frame {
    std::size_t u;
    std::size_t next = 0;          // next adjacency index to explore
    std::size_t parent_edge = npos;
  };

  std::vector<Frame> frames;
  std::vector<std::size_t> edge_stack;

  for (std::size_t root = 0; root < n_vertices; ++root) {
    if (disc[root] != npos) continue;
    frames.push_back(Frame{root, 0, npos});
    disc[root] = low[root] = timer++;

    while (!frames.empty()) {
      Frame& f = frames.back();
      const std::size_t u = f.u;
      if (f.next < adj[u].size()) {
        const auto [w, eid] = adj[u][f.next++];
        if (eid == f.parent_edge) continue;
        if (disc[w] == npos) {
          edge_stack.push_back(eid);
          frames.push_back(Frame{w, 0, eid});
          disc[w] = low[w] = timer++;
        } else if (disc[w] < disc[u]) {
          edge_stack.push_back(eid);  // back edge
          low[u] = std::min(low[u], disc[w]);
        }
        // disc[w] > disc[u]: the edge was handled from w's side.
      } else {
        const std::size_t parent_edge = f.parent_edge;
        const std::size_t lu = low[u];
        frames.pop_back();
        if (frames.empty()) break;
        Frame& pf = frames.back();
        low[pf.u] = std::min(low[pf.u], lu);
        if (lu >= disc[pf.u]) {
          // pf.u is an articulation point (or the root) for this subtree:
          // everything down to and including parent_edge is one block.
          const std::size_t block = block_edge_count.size();
          block_edge_count.push_back(0);
          for (;;) {
            assert(!edge_stack.empty());
            const std::size_t e = edge_stack.back();
            edge_stack.pop_back();
            comp[e] = block;
            ++block_edge_count[block];
            if (e == parent_edge) break;
          }
        }
      }
    }
    assert(edge_stack.empty());
  }
  return comp;
}

std::size_t PieceGraph::add_piece(std::size_t txn, bool update_piece) {
  assert(!finalized_);
  const std::size_t id = vertices_.size();
  // Pieces of one transaction must arrive in order.
  assert([&] {
    std::size_t last = npos;
    for (const auto& v : vertices_) {
      if (v.txn == txn) last = v.piece;
    }
    return last == npos || true;  // piece index assigned below, always next
  }());
  std::size_t piece = 0;
  for (const auto& v : vertices_) {
    if (v.txn == txn) ++piece;
  }
  vertices_.push_back(PieceVertex{txn, piece, update_piece});
  return id;
}

void PieceGraph::add_c_edge(std::size_t u, std::size_t v, Value weight) {
  assert(!finalized_ && u < vertices_.size() && v < vertices_.size());
  assert(vertices_[u].txn != vertices_[v].txn && "C edges join different txns");
  edges_.push_back(GraphEdge{u, v, EdgeKind::C, weight});
}

void PieceGraph::add_s_edge(std::size_t u, std::size_t v) {
  assert(!finalized_ && u < vertices_.size() && v < vertices_.size());
  assert(vertices_[u].txn == vertices_[v].txn && "S edges join siblings");
  edges_.push_back(GraphEdge{u, v, EdgeKind::S, 0});
}

void PieceGraph::finalize() {
  assert(!finalized_);
  finalized_ = true;
  const std::size_t n = vertices_.size();
  restricted_.assign(n, false);
  on_sc_cycle_.assign(edges_.size(), false);
  has_sc_cycle_ = false;
  has_uu_sc_cycle_ = false;

  // --- full-graph blocks: SC-cycle questions -----------------------------
  {
    std::vector<std::pair<std::size_t, std::size_t>> plain;
    plain.reserve(edges_.size());
    for (const auto& e : edges_) plain.emplace_back(e.u, e.v);
    std::vector<std::size_t> block_sizes;
    const auto block_of = biconnected_components(n, plain, block_sizes);

    std::vector<std::size_t> s_in_block(block_sizes.size(), 0);
    std::vector<std::size_t> c_in_block(block_sizes.size(), 0);
    for (std::size_t e = 0; e < edges_.size(); ++e) {
      if (edges_[e].kind == EdgeKind::S) ++s_in_block[block_of[e]];
      else ++c_in_block[block_of[e]];
    }
    std::vector<bool> block_is_sc(block_sizes.size(), false);
    std::vector<bool> block_has_uu(block_sizes.size(), false);
    for (std::size_t b = 0; b < block_sizes.size(); ++b) {
      if (block_sizes[b] >= 2 && s_in_block[b] > 0 && c_in_block[b] > 0) {
        has_sc_cycle_ = true;
        block_is_sc[b] = true;
      }
    }
    for (std::size_t e = 0; e < edges_.size(); ++e) {
      if (edges_[e].kind != EdgeKind::C) continue;
      const std::size_t b = block_of[e];
      on_sc_cycle_[e] = block_sizes[b] >= 2 && s_in_block[b] > 0;
      if (on_sc_cycle_[e] && vertices_[edges_[e].u].update &&
          vertices_[edges_[e].v].update) {
        has_uu_sc_cycle_ = true;
        block_has_uu[b] = true;
      }
    }
    // Collect vertex sets of the offending blocks.
    std::vector<std::vector<std::size_t>> block_vertices(block_sizes.size());
    for (std::size_t e = 0; e < edges_.size(); ++e) {
      const std::size_t b = block_of[e];
      if (!block_is_sc[b]) continue;
      block_vertices[b].push_back(edges_[e].u);
      block_vertices[b].push_back(edges_[e].v);
    }
    for (std::size_t b = 0; b < block_sizes.size(); ++b) {
      if (!block_is_sc[b]) continue;
      auto& vs = block_vertices[b];
      std::sort(vs.begin(), vs.end());
      vs.erase(std::unique(vs.begin(), vs.end()), vs.end());
      std::vector<PieceId> pieces;
      pieces.reserve(vs.size());
      for (std::size_t v : vs) pieces.push_back(piece_of(v));
      std::sort(pieces.begin(), pieces.end());
      sc_blocks_.push_back(pieces);
      if (block_has_uu[b]) uu_sc_blocks_.push_back(std::move(pieces));
    }
  }

  // --- C-only blocks: restricted pieces (C-cycle membership) -------------
  {
    std::vector<std::pair<std::size_t, std::size_t>> c_edges;
    std::vector<std::size_t> c_index;  // back-map into edges_
    for (std::size_t e = 0; e < edges_.size(); ++e) {
      if (edges_[e].kind == EdgeKind::C) {
        c_edges.emplace_back(edges_[e].u, edges_[e].v);
        c_index.push_back(e);
      }
    }
    std::vector<std::size_t> block_sizes;
    const auto block_of = biconnected_components(n, c_edges, block_sizes);
    for (std::size_t i = 0; i < c_edges.size(); ++i) {
      if (block_sizes[block_of[i]] >= 2) {
        restricted_[c_edges[i].first] = true;
        restricted_[c_edges[i].second] = true;
      }
    }
  }

  // --- Eq. 4: W_S(s) = sum of W_C over CE(s) ------------------------------
  {
    std::vector<std::vector<std::size_t>> incident_c(n);
    for (std::size_t e = 0; e < edges_.size(); ++e) {
      if (edges_[e].kind != EdgeKind::C) continue;
      incident_c[edges_[e].u].push_back(e);
      incident_c[edges_[e].v].push_back(e);
    }
    for (auto& e : edges_) {
      if (e.kind != EdgeKind::S) continue;
      Value w = 0;
      auto accumulate = [&](std::size_t vertex) {
        for (std::size_t c : incident_c[vertex]) {
          if (on_sc_cycle_[c]) w += edges_[c].weight;
        }
      };
      accumulate(e.u);
      accumulate(e.v);
      e.weight = w;
    }
  }
}

Value PieceGraph::inter_sibling_fuzziness(std::size_t txn) const {
  assert(finalized_);
  Value z = 0;
  for (const auto& e : edges_) {
    if (e.kind == EdgeKind::S && vertices_[e.u].txn == txn) z += e.weight;
  }
  return z;
}

std::size_t PieceGraph::vertex_of(std::size_t txn, std::size_t piece) const {
  for (std::size_t v = 0; v < vertices_.size(); ++v) {
    if (vertices_[v].txn == txn && vertices_[v].piece == piece) return v;
  }
  return npos;
}

std::string PieceGraph::to_dot() const {
  std::ostringstream out;
  out << "graph chopping {\n  node [shape=box];\n";
  for (std::size_t v = 0; v < vertices_.size(); ++v) {
    const auto& pv = vertices_[v];
    out << "  v" << v << " [label=\"t" << pv.txn << ".p" << pv.piece
        << (pv.update ? " (U)" : " (Q)") << "\"";
    if (finalized_ && restricted_[v]) out << ", style=filled, fillcolor=gray85";
    out << "];\n";
  }
  for (const auto& e : edges_) {
    out << "  v" << e.u << " -- v" << e.v;
    if (e.kind == EdgeKind::S) {
      out << " [style=dashed, label=\"S\"]";
    } else {
      out << " [label=\"C";
      if (e.weight == kInfiniteLimit) out << " w=inf";
      else out << " w=" << e.weight;
      out << "\"]";
    }
    out << ";\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace atp
