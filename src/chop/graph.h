// Chopping graph and its cycle analyses (Sections 1.2, 2.2, 3.1).
//
// Vertices are pieces; edges are C edges (conflicts across transactions,
// optionally weighted with the conflict's maximum fuzziness) and S edges
// (sibling pieces of one transaction; the paper's definition makes siblings a
// clique).  All the correctness questions the paper asks reduce to cycle
// membership, which we answer with one classic tool:
//
//   Two edges of an undirected graph lie on a common simple cycle  iff
//   they belong to the same biconnected component (block), and a block
//   contains any cycle iff it has >= 2 edges (a 1-edge block is a bridge).
//
// Hence:
//   * an SC-cycle exists                 iff some block with >= 2 edges
//                                            contains both an S and a C edge;
//   * a C edge lies on an SC-cycle       iff its (full-graph) block has >= 2
//                                            edges and contains an S edge;
//   * a piece is *restricted* (lies on a C-cycle, Section 2.2)
//                                        iff some incident C edge lies in a
//                                            block of the C-only subgraph
//                                            with >= 2 edges.
//
// We deliberately do NOT use the "two pieces of one transaction in the same
// C-connected component" shortcut: it misses SC-cycles that traverse S edges
// of *other* transactions (e.g. p1-C-q1-S-q2-C-p2-S-p1), which are just as
// non-serializable.  The block decomposition is exact.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "chop/chopping.h"
#include "common/types.h"

namespace atp {

enum class EdgeKind : std::uint8_t { S, C };

struct PieceVertex {
  std::size_t txn = 0;    ///< transaction index in the job stream
  std::size_t piece = 0;  ///< piece index within the transaction
  bool update = false;    ///< piece of an update ET?
};

struct GraphEdge {
  std::size_t u = 0, v = 0;
  EdgeKind kind = EdgeKind::C;
  Value weight = 0;  ///< W_C for C edges; computed W_S for S edges
};

class PieceGraph {
 public:
  /// Add the next piece of transaction `txn`; returns the vertex id.
  /// Pieces of one transaction must be added in piece order.
  std::size_t add_piece(std::size_t txn, bool update_piece);

  void add_c_edge(std::size_t u, std::size_t v, Value weight);
  void add_s_edge(std::size_t u, std::size_t v);

  /// Run the block decompositions and derived analyses (Eq. 4 weights,
  /// restricted marks).  Must be called after construction, before queries.
  void finalize();

  // --- Theorem 1 / Definition 1 machinery -------------------------------

  [[nodiscard]] bool has_sc_cycle() const noexcept { return has_sc_cycle_; }

  /// Does some SC-cycle contain a C edge joining two update pieces
  /// (Definition 1, condition 2)?
  [[nodiscard]] bool has_update_update_sc_cycle() const noexcept {
    return has_uu_sc_cycle_;
  }

  /// Is this piece on a cycle of C edges only ("associated with C-cycles",
  /// i.e. restricted in the Section 2.2 sense)?
  [[nodiscard]] bool restricted(std::size_t vertex) const {
    return restricted_[vertex];
  }

  /// Does this C edge lie on some SC-cycle?  (Defines CE(s) membership.)
  [[nodiscard]] bool c_edge_on_sc_cycle(std::size_t edge_index) const {
    return on_sc_cycle_[edge_index];
  }

  /// W_S of an S edge (Eq. 4): sum of W_C over C edges incident to either
  /// endpoint and on an SC-cycle.
  [[nodiscard]] Value s_edge_weight(std::size_t edge_index) const {
    return edges_[edge_index].weight;
  }

  /// Z^is_t: sum of W_S over all S edges of transaction `txn`.
  [[nodiscard]] Value inter_sibling_fuzziness(std::size_t txn) const;

  /// Piece sets of the blocks that witness an SC-cycle (>= 2 edges, both an
  /// S and a C edge), as typed {txn, piece} handles sorted by (txn, piece).
  /// The finest-chopping searches merge sibling groups inside these.
  [[nodiscard]] const std::vector<std::vector<PieceId>>& sc_cycle_blocks()
      const noexcept {
    return sc_blocks_;
  }

  /// Piece sets of SC-cycle blocks that additionally contain a C edge
  /// joining two update pieces (Definition 1, condition 2 violations).
  [[nodiscard]] const std::vector<std::vector<PieceId>>& uu_sc_cycle_blocks()
      const noexcept {
    return uu_sc_blocks_;
  }

  // --- introspection ------------------------------------------------------

  [[nodiscard]] std::size_t vertex_count() const noexcept {
    return vertices_.size();
  }
  [[nodiscard]] const std::vector<PieceVertex>& vertices() const noexcept {
    return vertices_;
  }
  [[nodiscard]] const std::vector<GraphEdge>& edges() const noexcept {
    return edges_;
  }
  /// Vertex id of (txn, piece), or npos if absent.
  [[nodiscard]] std::size_t vertex_of(std::size_t txn, std::size_t piece) const;
  /// Typed handle of a vertex id.
  [[nodiscard]] PieceId piece_of(std::size_t vertex) const {
    return PieceId{vertices_[vertex].txn, vertices_[vertex].piece};
  }

  /// Graphviz dump: S edges dashed, C edges solid with weights, restricted
  /// pieces shaded.
  [[nodiscard]] std::string to_dot() const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  std::vector<PieceVertex> vertices_;
  std::vector<GraphEdge> edges_;
  bool finalized_ = false;

  bool has_sc_cycle_ = false;
  bool has_uu_sc_cycle_ = false;
  std::vector<bool> restricted_;   // per vertex
  std::vector<bool> on_sc_cycle_;  // per edge (meaningful for C edges)
  std::vector<std::vector<PieceId>> sc_blocks_;
  std::vector<std::vector<PieceId>> uu_sc_blocks_;
};

/// Biconnected-component decomposition of an undirected simple graph.
/// Returns, for each input edge, its block id (0-based); `block_edge_count`
/// receives the number of edges per block.  Standalone so tests can hit it
/// with random graphs.
std::vector<std::size_t> biconnected_components(
    std::size_t n_vertices,
    const std::vector<std::pair<std::size_t, std::size_t>>& edges,
    std::vector<std::size_t>& block_edge_count);

}  // namespace atp
