#include "chop/parser.h"

#include <sstream>

namespace atp {
namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) {
    if (tok[0] == '#') break;  // comment to end of line
    tokens.push_back(tok);
  }
  return tokens;
}

// "key=value" -> value, or empty if the prefix does not match.
std::string arg_value(const std::string& token, const std::string& key) {
  const std::string prefix = key + "=";
  if (token.rfind(prefix, 0) != 0) return {};
  return token.substr(prefix.size());
}

Status parse_error(std::size_t line_no, const std::string& what) {
  return Status::InvalidArgument("line " + std::to_string(line_no) + ": " +
                                 what);
}

}  // namespace

Result<ParsedStream> parse_job_stream(const std::string& text) {
  ParsedStream out;
  Key next_key = 1;
  auto intern = [&](const std::string& name) {
    auto [it, inserted] = out.item_names.emplace(name, next_key);
    if (inserted) ++next_key;
    return it->second;
  };

  TxnProgram* current = nullptr;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;

    if (tokens[0] == "txn") {
      if (tokens.size() < 3) {
        return parse_error(line_no, "txn needs: txn <name> update|query ...");
      }
      TxnProgram p;
      p.name = tokens[1];
      if (tokens[2] == "update") {
        p.kind = TxnKind::Update;
      } else if (tokens[2] == "query") {
        p.kind = TxnKind::Query;
      } else {
        return parse_error(line_no, "kind must be 'update' or 'query', got '" +
                                        tokens[2] + "'");
      }
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        if (auto v = arg_value(tokens[i], "eps"); !v.empty()) {
          p.epsilon_limit = std::stod(v);
        } else if (auto r = arg_value(tokens[i], "rollback_after");
                   !r.empty()) {
          p.rollback_after.push_back(std::stoul(r));
        } else if (tokens[i] == "whole") {
          p.choppable = false;
        } else {
          return parse_error(line_no, "unknown txn option '" + tokens[i] + "'");
        }
      }
      out.programs.push_back(std::move(p));
      current = &out.programs.back();
      continue;
    }

    if (current == nullptr) {
      return parse_error(line_no, "operation before any 'txn' directive");
    }

    if (tokens[0] == "read") {
      if (tokens.size() != 2) return parse_error(line_no, "read <item>");
      current->ops.push_back(Access::read(intern(tokens[1])));
      continue;
    }
    if (tokens[0] == "add" || tokens[0] == "write") {
      if (tokens.size() < 2) {
        return parse_error(line_no, tokens[0] + " <item> [bound=<B>]");
      }
      Value bound = kUnknownBound;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        if (auto v = arg_value(tokens[i], "bound"); !v.empty()) {
          bound = std::stod(v);
        } else {
          return parse_error(line_no, "unknown op option '" + tokens[i] + "'");
        }
      }
      const Key item = intern(tokens[1]);
      if (tokens[0] == "add") {
        current->ops.push_back(Access::add(item, 0, bound));
      } else {
        current->ops.push_back(Access::write(item, 0, bound));
      }
      continue;
    }
    if (tokens[0] == "rollback") {
      if (current->ops.empty()) {
        return parse_error(line_no, "rollback before any operation");
      }
      current->rollback_after.push_back(current->ops.size() - 1);
      continue;
    }
    return parse_error(line_no, "unknown directive '" + tokens[0] + "'");
  }

  // Validate rollback indices.
  for (const auto& p : out.programs) {
    for (std::size_t r : p.rollback_after) {
      if (r >= p.ops.size()) {
        return Status::InvalidArgument("txn " + p.name +
                                       ": rollback_after index out of range");
      }
    }
  }
  if (out.programs.empty()) {
    return Status::InvalidArgument("no transactions in input");
  }
  return out;
}

}  // namespace atp
