// Text format for job streams, so the chopping toolchain is usable as the
// off-line administrator tool the paper describes (chopping "simply asks
// database users to restructure transactions off-line").
//
// Format (one directive per line, '#' comments):
//
//   txn <name> update|query eps=<limit> [rollback_after=<op-index>] [whole]
//     read <item>
//     add <item> bound=<B>
//     write <item> bound=<B>
//
// Items are arbitrary identifiers, interned to keys.  `whole` marks the
// transaction non-choppable.  Example:
//
//   txn transfer update eps=500
//     add checking bound=100
//     add savings bound=100
//   txn audit query eps=250 whole
//     read checking
//     read savings
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "chop/program.h"
#include "common/status.h"

namespace atp {

struct ParsedStream {
  std::vector<TxnProgram> programs;
  std::unordered_map<std::string, Key> item_names;  ///< identifier -> key
};

/// Parse a job-stream description.  Errors carry the line number.
[[nodiscard]] Result<ParsedStream> parse_job_stream(const std::string& text);

}  // namespace atp
