// Transaction-program intermediate representation for off-line chopping
// analysis (Section 1.2).
//
// The chopping technique assumes the database user knows, off-line, (1) all
// transaction programs that will run during some interval and (2) where every
// rollback statement is.  A TxnProgram captures exactly that knowledge: an
// ordered list of read/write accesses to abstract data items, the positions
// of rollback statements, the ET kind, and the transaction's eps-spec.
//
// Writes carry a `bound`: the maximum |delta| the write can cause ("a bank
// customer may withdraw at most $500.00 per day", Section 3).  Bounds feed
// the C-edge weights of ESR-chopping; kUnknownBound (= infinity) degrades an
// ESR-chopping to an SR-chopping for the affected edges, which is the paper's
// upward-compatibility story.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.h"
#include "txn/epsilon.h"

namespace atp {

constexpr Value kUnknownBound = kInfiniteLimit;

/// Access kinds, distinguished by commutativity: the paper (after Shasha)
/// defines a C edge by operations that "do not commute".  Balance increments
/// (Add) commute with each other -- two transfers may interleave freely and
/// reach the same final state -- but not with reads or absolute writes.
/// At runtime every mutation still takes an exclusive lock; commutativity
/// only sharpens the *off-line* conflict analysis.
enum class AccessType : std::uint8_t {
  Read,   ///< observe the value
  Add,    ///< value += delta (commutes with other Adds on the same item)
  Write,  ///< value = delta (absolute; commutes only with nothing)
};

struct Access {
  AccessType type = AccessType::Read;
  Key item = 0;        ///< abstract data item (account, seat block, ...)
  Value bound = 0;     ///< max |delta| a mutation can cause; 0 for reads
  /// Executable payload: Add runs as `item += delta`, Write as `item = delta`.
  /// The chopping analysis never looks at delta (only at bound); |delta| must
  /// be <= bound for the off-line weights to be honest.
  Value delta = 0;

  [[nodiscard]] static Access read(Key item) noexcept {
    return {AccessType::Read, item, 0, 0};
  }
  [[nodiscard]] static Access add(Key item, Value delta,
                                  Value bound = kUnknownBound) noexcept {
    return {AccessType::Add, item, bound, delta};
  }
  [[nodiscard]] static Access write(Key item, Value value,
                                    Value bound = kUnknownBound) noexcept {
    return {AccessType::Write, item, bound, value};
  }

  [[nodiscard]] bool is_mutation() const noexcept {
    return type != AccessType::Read;
  }
};

/// Do two accesses conflict (same item, non-commuting op pair)?
[[nodiscard]] constexpr bool conflicts(const Access& a, const Access& b) noexcept {
  if (a.item != b.item) return false;
  if (a.type == AccessType::Read && b.type == AccessType::Read) return false;
  if (a.type == AccessType::Add && b.type == AccessType::Add) return false;
  return true;
}

struct TxnProgram {
  std::string name;
  TxnKind kind = TxnKind::Update;
  std::vector<Access> ops;  ///< program order
  /// Op indices *after which* a rollback statement may execute.  A chopping
  /// is rollback-safe only if every such index lands inside the first piece.
  std::vector<std::size_t> rollback_after;
  /// Limit_t: the transaction's eps-spec (import side for query ETs, export
  /// side for update ETs).
  Value epsilon_limit = 0;
  /// Administrator's choice: programs marked non-choppable always run as a
  /// single piece (the finest-chopping searches leave them whole).
  bool choppable = true;

  [[nodiscard]] bool is_update() const noexcept {
    return kind == TxnKind::Update;
  }
};

/// One runtime execution of a transaction type: the type's ops re-bound to
/// concrete keys/deltas.  The chopping is computed once per *type* (the job
/// stream the administrator knows off-line); instances reuse its piece
/// boundaries, so ops.size() must equal the type's ops.size() and access i
/// must conflict no more broadly than the type's access i.
struct TxnInstance {
  std::size_t type_index = 0;
  std::vector<Access> ops;
  /// Ground truth for query ETs whose correct (serializable) answer is known
  /// a priori (e.g. an audit sum over accounts whose total is invariant).
  /// The executor reports |observed - expected| as the realized inconsistency.
  bool has_expected_result = false;
  Value expected_result = 0;
  /// Pre-sampled decision: take the programmed rollback when reaching the
  /// type's rollback point (piece 1 only; rollback-safety).
  bool take_rollback = false;
};

/// Fluent builder so tests and workloads read like the paper's examples.
class ProgramBuilder {
 public:
  ProgramBuilder(std::string name, TxnKind kind) {
    p_.name = std::move(name);
    p_.kind = kind;
  }
  ProgramBuilder& read(Key item) {
    p_.ops.push_back(Access::read(item));
    return *this;
  }
  ProgramBuilder& add(Key item, Value delta, Value bound = kUnknownBound) {
    p_.ops.push_back(Access::add(item, delta, bound));
    return *this;
  }
  ProgramBuilder& write(Key item, Value value, Value bound = kUnknownBound) {
    p_.ops.push_back(Access::write(item, value, bound));
    return *this;
  }
  /// Record a rollback statement at the current position.
  ProgramBuilder& rollback_point() {
    p_.rollback_after.push_back(p_.ops.empty() ? 0 : p_.ops.size() - 1);
    return *this;
  }
  ProgramBuilder& epsilon(Value limit) {
    p_.epsilon_limit = limit;
    return *this;
  }
  ProgramBuilder& not_choppable() {
    p_.choppable = false;
    return *this;
  }
  [[nodiscard]] TxnProgram build() { return std::move(p_); }

 private:
  TxnProgram p_;
};

}  // namespace atp
