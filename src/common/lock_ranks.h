// Central lock-rank manifest: every mutex in src/ is declared as an
// OrderedMutex<Rank> (see common/ordered_lock.h) naming exactly one entry of
// this enum.  A thread may only acquire locks in strictly increasing rank
// order; in ATP_LOCK_CHECK builds any out-of-order acquisition aborts with a
// witness (the held ranks plus their acquisition sites), and the observed
// acquired-while-holding edges feed a global lock-order graph whose cycles
// dump as minimal witnesses, SC-cycle style.
//
// Reading the table: lower rank = acquired EARLIER (outer lock), higher rank
// = acquired LATER (inner lock).  The numbers are spaced by 10 so a new lock
// can usually slot between two existing ranks without renumbering.
//
// How to add a lock:
//   1. Find every path that holds an existing lock while taking yours, and
//      every path that holds yours while taking an existing one.  Your rank
//      must sit strictly between them.
//   2. Add the enum entry here, with a comment naming the owning declaration
//      (atp-lint --mode=threads cross-checks that every OrderedMutex
//      instantiation names a manifest rank: rule TH002).
//   3. Declare the member as atp::OrderedMutex<LockRank::kYourRank> and
//      run the tier-1 suite under ATP_LOCK_CHECK=ON (the default); a wrong
//      rank aborts the first test that exercises the nesting.
//
// The ordering below is derived from the code's actual nesting chains, the
// load-bearing ones being:
//   server stop    -> sessions -> session close -> db locks      (10<20<140+)
//   obs snapshot   -> component stats locks (stripe, txn, net)   (70<140+)
//   site dispatch  -> subtxn commit -> db locks                  (80<140+)
//   queue endpoint -> wal append / net send                      (100<210/240)
//   lock stripe    -> waits-for graph                            (140<150)
//   lock stripe    -> store commit / store / registry / tracer   (140<165+)
//   txn struct     -> txn charge ("struct then charge")          (190<200)
//   net inbox      -> net state ("inbox then state")             (240<250)
//   trace registry -> trace ring (record and collect paths)      (270<280)
#pragma once

#include <cstdint>

namespace atp {

enum class LockRank : std::uint16_t {
  /// AtpServer::stop_mu_ — serializes stop(); held across thread joins and
  /// the whole session teardown, so it is the outermost lock in the system.
  kServerStop = 10,
  /// AtpServer::sessions_mu_ — connection table; held across Session::close
  /// during shutdown (which aborts transactions, taking db locks).
  kServerSessions = 20,
  /// AtpServer::queue_mu_ — worker ready-queue (leaf in practice, but ranked
  /// under the server umbrella for clarity).
  kServerQueue = 30,
  /// Session::mu_ — per-session frame decoder + pipeline state.
  kSession = 40,
  /// TcpTransport::mu_ / SimTransport::mu_ — connection map / open set.
  kTransport = 50,
  /// obs::ObsServer::registry_mu_ — exporter's registry pointer; held while
  /// snapshotting the registry (rank kObsRegistry).
  kObsExporter = 60,
  /// obs::MetricsRegistry::mu_ — instrument map; snapshot() runs collector
  /// callbacks under it, and those read component stats (stripes, txn
  /// registry, net state...), so this ranks BELOW all db-layer locks.
  kObsRegistry = 70,
  /// OnlineCertifier::ctl_mu_ — serializes start()/stop(); held across the
  /// pump-thread join and across the final drain, which takes kOnlineCert.
  kOnlineCertCtl = 72,
  /// OnlineCertifier::mu_ — streaming certifier window state.  Below the
  /// db layer because nothing db-side is taken under it, and above
  /// kObsRegistry because the metrics collector reads certifier stats while
  /// holding the registry lock; the pump thread holds it while draining the
  /// trace subscription (kTraceRegistry/kTraceRing, far higher).
  kOnlineCert = 75,
  /// Site::mu_ — per-site executor state; held while stashed subtransactions
  /// commit or abort (taking db locks).
  kSite = 80,
  /// Database::crash_mu_ — serializes crash/recover against each other.
  kDbCrash = 90,
  /// RecoverableQueue Endpoint::mu_ — queue state; transmit_locked appends
  /// to the WAL and sends on the network while holding it.
  kQueueEndpoint = 100,
  /// Executor WorkerQueue::mu (engine/executor.cpp) — per-worker deque.
  kExecutorQueue = 110,
  /// PieceAccountant::mu (engine/piece_runner.cpp) — epsilon budget split.
  kPieceAccount = 120,
  /// DistExecutor pending_mu (dist/dist_executor.cpp) — coordinator inbox.
  kDistPending = 130,
  /// LockManager Stripe::mu — the 16 lock-table stripes; the heart of the
  /// db layer.  Holds kWaitsFor, kStoreMap, kTxnStruct, kTraceRing chains
  /// while granting/denying.
  kLockStripe = 140,
  /// LockManager::wait_mu_ — global waits-for graph ("stripe then wait,
  /// never the reverse").
  kWaitsFor = 150,
  /// Store::commit_mu_ — commit-sequence allocation, version publication and
  /// the live-snapshot registry; held across map/stripe lookups while a
  /// commit publishes its version chain entries.
  kStoreCommit = 165,
  /// Store::map_mu_ — key->cell map (shared for lookups, exclusive for
  /// crash/snapshot).
  kStoreMap = 170,
  /// Store per-cell stripes_ — value mutation under a held map lock.
  kStoreStripe = 180,
  /// EtRegistry::struct_mu_ — ET table structure ("struct_mu_ (shared) then
  /// charge_mu_").
  kTxnStruct = 190,
  /// EtRegistry::charge_mu_ — epsilon charge serialization.
  kTxnCharge = 200,
  /// GroupCommitter::mu_ — flush-leader election + durable-LSN waiters; the
  /// leader reads the log's durable frontier (rank kWal) while holding it.
  kWalGroup = 205,
  /// LogDevice::mu_ — WAL append serialization.
  kWal = 210,
  /// HistoryRecorder::mu_ — certifier event log.
  kHistory = 220,
  /// AdmissionController::mu_ — epsilon-class admission ledger.
  kAdmission = 230,
  /// SimNetwork Inbox::mu — per-site delivery queue ("inbox then state").
  kNetInbox = 240,
  /// SimNetwork::state_mu_ — site up/down + partition matrix.
  kNetState = 250,
  /// FaultInjector::mu_ — fault schedule table (leaf under net/wal paths).
  kFault = 260,
  /// Tracer::registry_mu_ — per-thread ring registry; collect() drains the
  /// rings (rank kTraceRing) under it.
  kTraceRegistry = 270,
  /// Tracer Ring::mu — per-thread event ring (leaf; emit runs under stripe
  /// and inbox locks).
  kTraceRing = 280,
  /// Histogram::mu_ — sample reservoirs; recorded/summarized at the very
  /// bottom of any chain (e.g. stripe stats under a stripe lock).
  kHistogram = 290,
};

/// Manifest name for witnesses and reports.
[[nodiscard]] constexpr const char* to_string(LockRank r) noexcept {
  switch (r) {
    case LockRank::kServerStop: return "kServerStop";
    case LockRank::kServerSessions: return "kServerSessions";
    case LockRank::kServerQueue: return "kServerQueue";
    case LockRank::kSession: return "kSession";
    case LockRank::kTransport: return "kTransport";
    case LockRank::kObsExporter: return "kObsExporter";
    case LockRank::kObsRegistry: return "kObsRegistry";
    case LockRank::kOnlineCertCtl: return "kOnlineCertCtl";
    case LockRank::kOnlineCert: return "kOnlineCert";
    case LockRank::kSite: return "kSite";
    case LockRank::kDbCrash: return "kDbCrash";
    case LockRank::kQueueEndpoint: return "kQueueEndpoint";
    case LockRank::kExecutorQueue: return "kExecutorQueue";
    case LockRank::kPieceAccount: return "kPieceAccount";
    case LockRank::kDistPending: return "kDistPending";
    case LockRank::kLockStripe: return "kLockStripe";
    case LockRank::kWaitsFor: return "kWaitsFor";
    case LockRank::kStoreCommit: return "kStoreCommit";
    case LockRank::kStoreMap: return "kStoreMap";
    case LockRank::kStoreStripe: return "kStoreStripe";
    case LockRank::kTxnStruct: return "kTxnStruct";
    case LockRank::kTxnCharge: return "kTxnCharge";
    case LockRank::kWalGroup: return "kWalGroup";
    case LockRank::kWal: return "kWal";
    case LockRank::kHistory: return "kHistory";
    case LockRank::kAdmission: return "kAdmission";
    case LockRank::kNetInbox: return "kNetInbox";
    case LockRank::kNetState: return "kNetState";
    case LockRank::kFault: return "kFault";
    case LockRank::kTraceRegistry: return "kTraceRegistry";
    case LockRank::kTraceRing: return "kTraceRing";
    case LockRank::kHistogram: return "kHistogram";
  }
  return "kUnknownRank";
}

}  // namespace atp
