// Thread-safe counters and latency histograms used by the executor and the
// benchmark harness to report the rows the paper's evaluation talks about:
// throughput, abort/rollback counts, response time, accumulated fuzziness.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/ordered_lock.h"

namespace atp {

/// Relaxed atomic counter.  Sum-only; per-thread sharding is overkill here
/// because the engine's critical sections dominate.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);  // relaxed-ok: monotone tally
  }
  [[nodiscard]] std::uint64_t get() const noexcept {
    return value_.load(std::memory_order_relaxed);  // relaxed-ok: stat read
  }
  void reset() noexcept {
    value_.store(0, std::memory_order_relaxed);  // relaxed-ok: quiescent reset
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Simple summary of a set of samples.
struct StatSummary {
  std::uint64_t count = 0;
  double min = 0, max = 0, mean = 0, p50 = 0, p95 = 0, p99 = 0, sum = 0;
};

/// Interpolated percentile over an already-sorted, non-empty sample set.
/// Linear interpolation between closest ranks (the "C = 1" convention):
/// percentile q in [0, 1] sits at fractional rank q*(n-1).  This is the one
/// percentile definition used everywhere (Histogram, the bench harness, the
/// JSON emitters, the obs snapshots) so numbers are comparable across
/// reports.  Every edge case -- q outside [0, 1], n == 1, an exact top
/// rank -- funnels through the single clamped interpolation below rather
/// than early-return special cases, so no caller can disagree with another
/// about the boundaries.
[[nodiscard]] inline double percentile_of(const std::vector<double>& sorted,
                                          double q) {
  if (sorted.empty()) return 0;
  const double rank =
      std::clamp(q, 0.0, 1.0) * double(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - double(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

/// Mutex-guarded sample recorder with bounded memory: count/sum/min/max are
/// tracked exactly, while percentiles come from a fixed-size reservoir
/// (Vitter's Algorithm R -- each sample survives with probability cap/n, so
/// the reservoir is a uniform sample of the whole stream).  Below the cap the
/// reservoir holds every sample and summarize() is exact.
class Histogram {
 public:
  static constexpr std::size_t kDefaultReservoir = 4096;

  explicit Histogram(std::size_t reservoir_capacity = kDefaultReservoir)
      : capacity_(std::max<std::size_t>(1, reservoir_capacity)) {}

  void record(double sample) {
    std::lock_guard lock(mu_);
    ++count_;
    sum_ += sample;
    min_ = count_ == 1 ? sample : std::min(min_, sample);
    max_ = count_ == 1 ? sample : std::max(max_, sample);
    if (samples_.size() < capacity_) {
      samples_.push_back(sample);
      return;
    }
    // Algorithm R: replace a uniformly-random slot with probability cap/n.
    const std::uint64_t slot = next_random() % count_;
    if (slot < capacity_) samples_[slot] = sample;
  }

  [[nodiscard]] StatSummary summarize() const {
    std::lock_guard lock(mu_);
    StatSummary s;
    if (count_ == 0) return s;
    s.count = count_;
    s.min = min_;
    s.max = max_;
    s.sum = sum_;
    s.mean = sum_ / double(count_);
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    s.p50 = percentile_of(sorted, 0.50);
    s.p95 = percentile_of(sorted, 0.95);
    s.p99 = percentile_of(sorted, 0.99);
    return s;
  }

  /// Samples currently held for percentile estimation (<= the capacity the
  /// histogram was built with).
  [[nodiscard]] std::size_t reservoir_size() const {
    std::lock_guard lock(mu_);
    return samples_.size();
  }

  /// Fold `other` into this histogram without re-recording samples.
  /// Count/sum/min/max merge exactly.  The reservoirs merge reservoir-aware:
  /// when both sides still hold their complete streams the samples simply
  /// concatenate (merge stays exact below the cap); otherwise the merged
  /// reservoir draws each slot from one side with probability proportional
  /// to the *stream* sizes behind the reservoirs (not the reservoir sizes),
  /// so it remains an approximately uniform sample of the combined stream.
  /// This is what lets per-thread histograms aggregate into one snapshot at
  /// collection time.  Thread-safe against concurrent record()s on either
  /// side; `other` is snapshotted first, so merging a histogram into itself
  /// behaves as merging an identical copy.
  void merge(const Histogram& other) {
    std::uint64_t o_count;
    double o_sum, o_min, o_max;
    std::vector<double> o_samples;
    {
      std::lock_guard lock(other.mu_);
      o_count = other.count_;
      o_sum = other.sum_;
      o_min = other.min_;
      o_max = other.max_;
      o_samples = other.samples_;
    }
    if (o_count == 0) return;
    std::lock_guard lock(mu_);
    if (count_ == 0) {
      min_ = o_min;
      max_ = o_max;
    } else {
      min_ = std::min(min_, o_min);
      max_ = std::max(max_, o_max);
    }
    const bool both_complete =
        samples_.size() == count_ && o_samples.size() == o_count;
    if (both_complete && samples_.size() + o_samples.size() <= capacity_) {
      samples_.insert(samples_.end(), o_samples.begin(), o_samples.end());
    } else {
      // Weighted draw without replacement: slot by slot, pick side A (ours)
      // with probability rem_a / (rem_a + rem_b), where the remainders start
      // at the stream counts and scale down as each side's reservoir drains.
      std::vector<double> merged;
      const std::size_t m =
          std::min(capacity_, samples_.size() + o_samples.size());
      merged.reserve(m);
      // Per-sample stream weight: how many stream elements one reservoir
      // sample stands for.
      const double w_a =
          samples_.empty() ? 0 : double(count_) / double(samples_.size());
      const double w_b =
          o_samples.empty() ? 0 : double(o_count) / double(o_samples.size());
      std::size_t ia = 0, ib = 0;
      while (merged.size() < m) {
        const double rem_a = w_a * double(samples_.size() - ia);
        const double rem_b = w_b * double(o_samples.size() - ib);
        if (rem_a + rem_b <= 0) break;
        const double pick =
            double(next_random() % (1u << 24)) / double(1u << 24);
        if (ia < samples_.size() &&
            (ib >= o_samples.size() || pick * (rem_a + rem_b) < rem_a)) {
          merged.push_back(samples_[ia++]);
        } else {
          merged.push_back(o_samples[ib++]);
        }
      }
      samples_ = std::move(merged);
    }
    count_ += o_count;
    sum_ += o_sum;
  }

  void reset() {
    std::lock_guard lock(mu_);
    samples_.clear();
    count_ = 0;
    sum_ = 0;
    min_ = 0;
    max_ = 0;
  }

 private:
  // xorshift64*: cheap, seeded deterministically so summaries of identical
  // streams agree run to run.
  std::uint64_t next_random() {
    rng_state_ ^= rng_state_ >> 12;
    rng_state_ ^= rng_state_ << 25;
    rng_state_ ^= rng_state_ >> 27;
    return rng_state_ * 0x2545F4914F6CDD1DULL;
  }

  const std::size_t capacity_;
  mutable OrderedMutex<LockRank::kHistogram> mu_;  ///< rank kHistogram: leaf
  std::vector<double> samples_;  ///< the reservoir
  std::uint64_t count_ = 0;
  double sum_ = 0, min_ = 0, max_ = 0;
  std::uint64_t rng_state_ = 0x9e3779b97f4a7c15ULL;
};

/// Everything an executor run reports.  One instance per run.
struct RunMetrics {
  Counter committed_txns;       // original transactions fully committed
  Counter committed_pieces;     // pieces committed (== txns when unchopped)
  Counter aborts_deadlock;      // aborts due to deadlock victimhood
  Counter aborts_epsilon;       // aborts/rollbacks due to fuzziness overrun
  Counter aborts_rollback;      // programmed rollback statements taken
  Counter resubmissions;        // piece re-runs by the process handler
  Counter lock_waits;           // times a request had to block
  Counter fuzzy_grants;         // DC grants that plain 2PL would have blocked
  Histogram txn_latency_us;     // whole original-transaction response time
  Histogram piece_latency_us;   // per-piece response time
  Histogram txn_fuzziness;      // Z_t of committed query ETs
  Histogram query_error;        // |observed - serial ground truth| for audits

  void reset() {
    committed_txns.reset();
    committed_pieces.reset();
    aborts_deadlock.reset();
    aborts_epsilon.reset();
    aborts_rollback.reset();
    resubmissions.reset();
    lock_waits.reset();
    fuzzy_grants.reset();
    txn_latency_us.reset();
    piece_latency_us.reset();
    txn_fuzziness.reset();
    query_error.reset();
  }
};

}  // namespace atp
