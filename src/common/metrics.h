// Thread-safe counters and latency histograms used by the executor and the
// benchmark harness to report the rows the paper's evaluation talks about:
// throughput, abort/rollback counts, response time, accumulated fuzziness.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace atp {

/// Relaxed atomic counter.  Sum-only; per-thread sharding is overkill here
/// because the engine's critical sections dominate.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t get() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Simple summary of a set of samples.
struct StatSummary {
  std::uint64_t count = 0;
  double min = 0, max = 0, mean = 0, p50 = 0, p95 = 0, p99 = 0, sum = 0;
};

/// Mutex-guarded sample recorder.  Fine for bench-scale sample counts.
class Histogram {
 public:
  void record(double sample) {
    std::lock_guard lock(mu_);
    samples_.push_back(sample);
  }

  [[nodiscard]] StatSummary summarize() const {
    std::lock_guard lock(mu_);
    StatSummary s;
    if (samples_.empty()) return s;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    s.count = sorted.size();
    s.min = sorted.front();
    s.max = sorted.back();
    for (double v : sorted) s.sum += v;
    s.mean = s.sum / double(s.count);
    auto pct = [&](double q) {
      const auto idx = static_cast<std::size_t>(q * double(sorted.size() - 1));
      return sorted[idx];
    };
    s.p50 = pct(0.50);
    s.p95 = pct(0.95);
    s.p99 = pct(0.99);
    return s;
  }

  void reset() {
    std::lock_guard lock(mu_);
    samples_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::vector<double> samples_;
};

/// Everything an executor run reports.  One instance per run.
struct RunMetrics {
  Counter committed_txns;       // original transactions fully committed
  Counter committed_pieces;     // pieces committed (== txns when unchopped)
  Counter aborts_deadlock;      // aborts due to deadlock victimhood
  Counter aborts_epsilon;       // aborts/rollbacks due to fuzziness overrun
  Counter aborts_rollback;      // programmed rollback statements taken
  Counter resubmissions;        // piece re-runs by the process handler
  Counter lock_waits;           // times a request had to block
  Counter fuzzy_grants;         // DC grants that plain 2PL would have blocked
  Histogram txn_latency_us;     // whole original-transaction response time
  Histogram piece_latency_us;   // per-piece response time
  Histogram txn_fuzziness;      // Z_t of committed query ETs
  Histogram query_error;        // |observed - serial ground truth| for audits

  void reset() {
    committed_txns.reset();
    committed_pieces.reset();
    aborts_deadlock.reset();
    aborts_epsilon.reset();
    aborts_rollback.reset();
    resubmissions.reset();
    lock_waits.reset();
    fuzzy_grants.reset();
    txn_latency_us.reset();
    piece_latency_us.reset();
    txn_fuzziness.reset();
    query_error.reset();
  }
};

}  // namespace atp
