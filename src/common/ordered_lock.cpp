#include "common/ordered_lock.h"

#if defined(ATP_LOCK_CHECK)

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <unordered_set>
#include <utility>

namespace atp::lockcheck {

namespace {

// The checker's own serialization.  This is the one deliberately raw
// std::mutex in src/ (allowlisted for TH001): it is a strict leaf -- nothing
// is ever acquired under it -- and routing it through OrderedMutex would
// recurse.
struct Graph {
  std::mutex mu;
  struct Rec {
    const char* from_file;
    unsigned from_line;
    const char* to_file;
    unsigned to_line;
    std::uint64_t count;
  };
  std::map<std::pair<std::uint16_t, std::uint16_t>, Rec> edges;
  // Bumped by reset_for_testing() so other threads' dedup caches invalidate.
  std::atomic<std::uint64_t> gen{0};
  std::atomic<ViolationHandler> handler{nullptr};
};

Graph& graph() {
  static Graph g;
  return g;
}

thread_local std::vector<HeldLock> t_held;

// Per-thread seen-edge cache so steady-state acquisition never touches the
// global graph mutex.
thread_local std::unordered_set<std::uint32_t> t_seen;
thread_local std::uint64_t t_seen_gen = 0;

std::uint16_t raw(LockRank r) noexcept {
  return static_cast<std::uint16_t>(r);
}

void record_edge(const HeldLock& held, LockRank to, const char* to_file,
                 unsigned to_line) {
  Graph& g = graph();
  const std::uint64_t gen = g.gen.load(std::memory_order_acquire);
  if (t_seen_gen != gen) {
    t_seen.clear();
    t_seen_gen = gen;
  }
  const std::uint32_t key =
      (std::uint32_t(raw(held.rank)) << 16) | raw(to);
  if (!t_seen.insert(key).second) return;  // already recorded by this thread
  std::lock_guard lock(g.mu);
  auto [it, fresh] = g.edges.try_emplace(
      std::make_pair(raw(held.rank), raw(to)),
      Graph::Rec{held.file, held.line, to_file, to_line, 0});
  it->second.count += 1;
  (void)fresh;
}

std::string site(const char* file, unsigned line) {
  std::string s = file != nullptr ? file : "?";
  // Witnesses print the path from src/ on, not the build machine's prefix.
  const auto pos = s.rfind("/src/");
  if (pos != std::string::npos) s = s.substr(pos + 1);
  s += ":";
  s += std::to_string(line);
  return s;
}

[[noreturn]] void abort_with_witness(const ViolationReport& report) {
  std::string msg = report.to_string();
  const std::vector<Edge> cycle = find_cycle();
  if (!cycle.empty()) msg += cycle_witness(cycle);
  std::fprintf(stderr, "%s", msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace

std::string ViolationReport::to_string() const {
  std::string out = "lock-order violation: acquiring ";
  out += atp::to_string(attempted);
  out += attempted_shared ? " (shared)" : " (exclusive)";
  out += " at ";
  out += site(file, line);
  out += "\n  while holding (outermost first):\n";
  for (const HeldLock& h : held) {
    out += "    ";
    out += atp::to_string(h.rank);
    out += h.shared ? " (shared)" : " (exclusive)";
    out += " acquired at ";
    out += site(h.file, h.line);
    out += "\n";
  }
  return out;
}

ViolationHandler set_violation_handler(ViolationHandler h) noexcept {
  return graph().handler.exchange(h);
}

std::vector<Edge> observed_edges() {
  Graph& g = graph();
  std::vector<Edge> out;
  std::lock_guard lock(g.mu);
  out.reserve(g.edges.size());
  for (const auto& [key, rec] : g.edges) {
    out.push_back(Edge{LockRank(key.first), LockRank(key.second),
                       rec.from_file, rec.from_line, rec.to_file, rec.to_line,
                       rec.count});
  }
  return out;
}

std::vector<Edge> find_cycle() {
  const std::vector<Edge> edges = observed_edges();
  // Shortest cycle through any edge: for each edge u->v, BFS the shortest
  // path v->...->u; the winner plus its closing edge is the minimal witness.
  // The graph has at most ~30 nodes, so brute force is plenty.
  auto bfs_path = [&edges](LockRank from,
                           LockRank to) -> std::vector<const Edge*> {
    std::map<std::uint16_t, const Edge*> parent_edge;  // node -> edge used
    std::vector<LockRank> frontier{from};
    parent_edge[raw(from)] = nullptr;
    while (!frontier.empty()) {
      std::vector<LockRank> next;
      for (const LockRank u : frontier) {
        for (const Edge& e : edges) {
          if (e.from != u) continue;
          if (parent_edge.count(raw(e.to)) != 0) continue;
          parent_edge[raw(e.to)] = &e;
          if (e.to == to) {
            std::vector<const Edge*> path;
            for (const Edge* step = &e; step != nullptr;
                 step = parent_edge[raw(step->from)]) {
              path.insert(path.begin(), step);
            }
            return path;
          }
          next.push_back(e.to);
        }
      }
      frontier = std::move(next);
    }
    return {};
  };

  std::vector<Edge> best;
  for (const Edge& e : edges) {
    const std::vector<const Edge*> back = bfs_path(e.to, e.from);
    if (back.empty() && e.to != e.from) continue;
    std::vector<Edge> cycle{e};
    for (const Edge* step : back) cycle.push_back(*step);
    if (best.empty() || cycle.size() < best.size()) best = std::move(cycle);
  }
  return best;
}

std::string cycle_witness(const std::vector<Edge>& cycle) {
  if (cycle.empty()) return "";
  std::string out = "  lock-order cycle (" + std::to_string(cycle.size()) +
                    " edge" + (cycle.size() == 1 ? "" : "s") + "):\n";
  for (const Edge& e : cycle) {
    out += "    ";
    out += atp::to_string(e.from);
    out += " -> ";
    out += atp::to_string(e.to);
    out += "  [held at ";
    out += site(e.from_file, e.from_line);
    out += ", acquired at ";
    out += site(e.to_file, e.to_line);
    out += "]\n";
  }
  return out;
}

std::size_t held_count() noexcept { return t_held.size(); }

void reset_for_testing() {
  Graph& g = graph();
  std::lock_guard lock(g.mu);
  g.edges.clear();
  g.gen.fetch_add(1, std::memory_order_release);
}

void on_acquire(LockRank r, const void* mu, bool shared, const char* file,
                unsigned line) {
  (void)mu;
  bool bad = false;
  for (const HeldLock& h : t_held) {
    record_edge(h, r, file, line);
    if (h.rank >= r) bad = true;
  }
  if (!bad) return;
  ViolationReport report{r, shared, file, line, t_held};
  if (ViolationHandler h = graph().handler.load()) {
    h(report);
    throw LockOrderViolation(std::move(report));
  }
  abort_with_witness(report);
}

void on_acquired(LockRank r, const void* mu, bool shared, const char* file,
                 unsigned line) {
  t_held.push_back(HeldLock{r, mu, shared, file, line});
}

void on_release(const void* mu) noexcept {
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->mutex == mu) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
  // Unlocking something we never saw locked: broken bookkeeping.
  std::fprintf(stderr, "lock-order checker: unlock of untracked mutex\n");
  std::abort();
}

}  // namespace atp::lockcheck

#endif  // ATP_LOCK_CHECK
