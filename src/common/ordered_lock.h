// Rank-checked mutex wrappers enforcing the lock ordering declared in
// common/lock_ranks.h.
//
// Every mutex in src/ is an OrderedMutex<LockRank::kSomething> (atp-lint
// --mode=threads rule TH001 bans raw std::mutex outside an allowlist, TH002
// requires the rank to come from the manifest).  The wrappers are drop-in:
// lock_guard, unique_lock, shared_lock and OrderedCondVar all work unchanged.
//
// ATP_LOCK_CHECK builds (the default; -DATP_LOCK_CHECK=OFF to disable): each
// thread tracks its held-lock stack, and acquiring a lock whose rank is not
// strictly greater than every held rank aborts with a witness naming the
// attempted lock, the held locks, and all acquisition sites.  Every
// acquired-while-holding pair also feeds a process-wide lock-order graph;
// when a violation fires, the shortest rank cycle through the graph is
// rendered SC-cycle style.  Tests install a violation handler instead
// (lockcheck::set_violation_handler): the handler sees the report, then the
// acquisition is abandoned by throwing LockOrderViolation, so a true
// would-be deadlock never actually blocks the test.
//
// Non-check builds: the wrappers are type aliases for the std primitives --
// zero code, zero storage, zero overhead (EXPERIMENTS.md spot-checks the
// lock-acquire hot path at <= 1% vs the unwrapped seed).
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/lock_ranks.h"

#if defined(ATP_LOCK_CHECK)

#include <cstdint>
#include <source_location>
#include <stdexcept>
#include <string>
#include <vector>

namespace atp::lockcheck {

/// One lock currently held by the reporting thread.
struct HeldLock {
  LockRank rank;
  const void* mutex;
  bool shared;
  const char* file;  ///< acquisition site (static storage, from source_location)
  unsigned line;
};

/// Everything a rank-order violation knows about itself.
struct ViolationReport {
  LockRank attempted;
  bool attempted_shared;
  const char* file;  ///< attempted acquisition site
  unsigned line;
  std::vector<HeldLock> held;  ///< the thread's held stack, outermost first
  [[nodiscard]] std::string to_string() const;
};

/// Thrown to abandon an out-of-order acquisition when a violation handler is
/// installed (tests); without a handler the process aborts instead.
class LockOrderViolation : public std::runtime_error {
 public:
  explicit LockOrderViolation(ViolationReport r)
      : std::runtime_error(r.to_string()), report(std::move(r)) {}
  ViolationReport report;
};

/// One observed acquired-while-holding edge `from -> to` with the first
/// sites that produced it.
struct Edge {
  LockRank from;
  LockRank to;
  const char* from_file;
  unsigned from_line;
  const char* to_file;
  unsigned to_line;
  std::uint64_t count;
};

using ViolationHandler = void (*)(const ViolationReport&);

/// Install a handler called on violation instead of aborting; after it
/// returns, the acquisition throws LockOrderViolation.  Pass nullptr to
/// restore abort-with-witness.  Returns the previous handler.
ViolationHandler set_violation_handler(ViolationHandler h) noexcept;

/// Snapshot of the process-wide lock-order graph (legal edges included).
[[nodiscard]] std::vector<Edge> observed_edges();

/// Shortest rank cycle in the observed graph, as the edge list walking it;
/// empty when the graph is acyclic (the healthy state).
[[nodiscard]] std::vector<Edge> find_cycle();

/// Render a cycle the way SC-cycle reports do: one edge per line with both
/// acquisition sites.
[[nodiscard]] std::string cycle_witness(const std::vector<Edge>& cycle);

/// Locks currently held by the calling thread (tests use this to check
/// condvar wait re-acquisition bookkeeping).
[[nodiscard]] std::size_t held_count() noexcept;

/// Drop all recorded edges (including other threads' dedup caches, via a
/// generation bump).  Test isolation only.
void reset_for_testing();

// Internal hooks the wrappers call; not for direct use.
void on_acquire(LockRank r, const void* mu, bool shared, const char* file,
                unsigned line);
void on_acquired(LockRank r, const void* mu, bool shared, const char* file,
                 unsigned line);
void on_release(const void* mu) noexcept;

}  // namespace atp::lockcheck

namespace atp {

/// std::mutex + rank checking.  The rank is a template parameter (not a
/// constructor argument) so arrays of striped mutexes stay declarable.
template <LockRank R>
class OrderedMutex {
 public:
  OrderedMutex() = default;
  OrderedMutex(const OrderedMutex&) = delete;
  OrderedMutex& operator=(const OrderedMutex&) = delete;

  void lock(std::source_location loc = std::source_location::current()) {
    lockcheck::on_acquire(R, this, false, loc.file_name(), loc.line());
    mu_.lock();
    lockcheck::on_acquired(R, this, false, loc.file_name(), loc.line());
  }
  bool try_lock(std::source_location loc = std::source_location::current()) {
    lockcheck::on_acquire(R, this, false, loc.file_name(), loc.line());
    if (!mu_.try_lock()) return false;
    lockcheck::on_acquired(R, this, false, loc.file_name(), loc.line());
    return true;
  }
  void unlock() {
    lockcheck::on_release(this);
    mu_.unlock();
  }

  static constexpr LockRank rank() noexcept { return R; }

 private:
  std::mutex mu_;
};

/// std::shared_mutex + rank checking.  Shared and exclusive acquisitions
/// obey the same rank: readers and writers sit at one place in the order.
template <LockRank R>
class OrderedSharedMutex {
 public:
  OrderedSharedMutex() = default;
  OrderedSharedMutex(const OrderedSharedMutex&) = delete;
  OrderedSharedMutex& operator=(const OrderedSharedMutex&) = delete;

  void lock(std::source_location loc = std::source_location::current()) {
    lockcheck::on_acquire(R, this, false, loc.file_name(), loc.line());
    mu_.lock();
    lockcheck::on_acquired(R, this, false, loc.file_name(), loc.line());
  }
  bool try_lock(std::source_location loc = std::source_location::current()) {
    lockcheck::on_acquire(R, this, false, loc.file_name(), loc.line());
    if (!mu_.try_lock()) return false;
    lockcheck::on_acquired(R, this, false, loc.file_name(), loc.line());
    return true;
  }
  void unlock() {
    lockcheck::on_release(this);
    mu_.unlock();
  }

  void lock_shared(
      std::source_location loc = std::source_location::current()) {
    lockcheck::on_acquire(R, this, true, loc.file_name(), loc.line());
    mu_.lock_shared();
    lockcheck::on_acquired(R, this, true, loc.file_name(), loc.line());
  }
  bool try_lock_shared(
      std::source_location loc = std::source_location::current()) {
    lockcheck::on_acquire(R, this, true, loc.file_name(), loc.line());
    if (!mu_.try_lock_shared()) return false;
    lockcheck::on_acquired(R, this, true, loc.file_name(), loc.line());
    return true;
  }
  void unlock_shared() {
    lockcheck::on_release(this);
    mu_.unlock_shared();
  }

  static constexpr LockRank rank() noexcept { return R; }

 private:
  std::shared_mutex mu_;
};

/// Condition variable usable with any OrderedMutex rank.  wait() unlocks and
/// re-locks through the wrapper, so the held-stack bookkeeping stays exact
/// across blocking waits.
using OrderedCondVar = std::condition_variable_any;

}  // namespace atp

#else  // !ATP_LOCK_CHECK: plain std primitives, zero overhead.

namespace atp {

template <LockRank>
using OrderedMutex = std::mutex;

template <LockRank>
using OrderedSharedMutex = std::shared_mutex;

// OrderedMutex<R> IS std::mutex here, so the native condvar lines up.
using OrderedCondVar = std::condition_variable;

}  // namespace atp

#endif  // ATP_LOCK_CHECK
