#include "common/rng.h"

#include <cmath>

namespace atp {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: seeds the xoshiro state from a single word.
std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double zeta(std::uint64_t n, double theta) {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(double(i), theta);
  return sum;
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t x = seed;
  for (auto& w : s_) w = splitmix64(x);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t n) noexcept {
  if (n == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t x;
  do {
    x = next();
  } while (x >= limit);
  return x % n;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  return lo + static_cast<std::int64_t>(
                  uniform(static_cast<std::uint64_t>(hi - lo + 1)));
}

double Rng::uniform01() noexcept {
  return double(next() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::uniform_real(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

bool Rng::chance(double p) noexcept { return uniform01() < p; }

Rng Rng::split() noexcept { return Rng(next() ^ 0xa5a5a5a5a5a5a5a5ULL); }

Zipf::Zipf(std::uint64_t n, double theta)
    : n_(n), theta_(theta), alpha_(1.0 / (1.0 - theta)), zetan_(zeta(n, theta)) {
  const double zeta2 = zeta(2, theta);
  eta_ = (1.0 - std::pow(2.0 / double(n), 1.0 - theta)) / (1.0 - zeta2 / zetan_);
}

std::uint64_t Zipf::sample(Rng& rng) const noexcept {
  if (theta_ == 0.0) return rng.uniform(n_);
  const double u = rng.uniform01();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  auto v = static_cast<std::uint64_t>(
      double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

}  // namespace atp
