// Deterministic pseudo-random generators for workloads and property tests.
//
// Benchmarks and tests need reproducible job streams (the chopping technique
// assumes the job stream is known in advance), so every generator is seeded
// explicitly and never touches global state.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace atp {

/// xoshiro256** -- fast, high-quality, tiny state.  Not cryptographic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Uniform over [0, 2^64).
  std::uint64_t next() noexcept;

  /// Uniform over [0, n).  Unbiased via rejection.
  std::uint64_t uniform(std::uint64_t n) noexcept;

  /// Uniform over [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform real in [0, 1).
  double uniform01() noexcept;

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi) noexcept;

  /// Bernoulli(p).
  bool chance(double p) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = uniform(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Split off an independent stream (for per-worker RNGs).
  Rng split() noexcept;

 private:
  std::uint64_t s_[4];
};

/// Zipfian distribution over [0, n) with skew theta (0 = uniform, ~0.99 =
/// typical hot-spot).  Standard Gray et al. "quickly generating..." method.
class Zipf {
 public:
  Zipf(std::uint64_t n, double theta);

  std::uint64_t sample(Rng& rng) const noexcept;

  [[nodiscard]] std::uint64_t n() const noexcept { return n_; }
  [[nodiscard]] double theta() const noexcept { return theta_; }

 private:
  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

}  // namespace atp
