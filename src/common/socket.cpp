#include "common/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace atp {

ListenSocket::ListenSocket(std::uint16_t port, int backlog) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    std::perror("socket: socket");
    return;
  }
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd_, backlog) < 0) {
    std::fprintf(stderr, "socket: cannot listen on 127.0.0.1:%u: %s\n",
                 unsigned(port), std::strerror(errno));
    ::close(fd_);
    fd_ = -1;
    return;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
}

ListenSocket::~ListenSocket() {
  if (fd_ >= 0) ::close(fd_);
}

int ListenSocket::accept_with_timeout(int timeout_ms) const {
  if (fd_ < 0) return -1;
  pollfd pfd{fd_, POLLIN, 0};
  if (::poll(&pfd, 1, timeout_ms) <= 0) return -1;
  return ::accept(fd_, nullptr, nullptr);
}

int connect_tcp(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host == "localhost" ? "127.0.0.1" : host.c_str(),
                  &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += std::size_t(n);
  }
  return true;
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace atp
