// Shared loopback-socket plumbing: the one accept/listen/connect
// implementation in the tree.
//
// Two consumers with the same needs grew the same hand-rolled code twice --
// the obs HTTP exporter (obs/http_exporter.cpp) and the server front-end's
// TCP transport (server/transport.cpp).  Both bind 127.0.0.1, accept with a
// poll timeout so their serve loops can notice shutdown, and push whole
// buffers through partial-write-looping sends.  That common floor lives
// here; everything protocol-shaped (HTTP parsing, wire framing, epoll
// readiness loops) stays with its owner.
//
// All listeners bind loopback only: this is an in-machine surface (metrics
// scrapes, bench clients, tests), not an exposed service.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace atp {

/// RAII loopback listener.  Binds 127.0.0.1:`port` (0 = kernel-assigned) and
/// listens; a failed bind leaves the object !ok() rather than aborting, so a
/// taken port degrades the feature, not the host process.
class ListenSocket {
 public:
  ListenSocket(std::uint16_t port, int backlog);
  ~ListenSocket();
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  [[nodiscard]] bool ok() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Actual bound port (after port-0 auto-assign); 0 when !ok().
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Wait up to `timeout_ms` for a connection, then accept it.  Returns the
  /// connected fd, or -1 on timeout / error / !ok().
  [[nodiscard]] int accept_with_timeout(int timeout_ms) const;

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Blocking connect to `host`:`port` ("localhost" is rewritten to
/// 127.0.0.1; anything else must be a dotted quad).  Returns the connected
/// fd, or -1.
[[nodiscard]] int connect_tcp(const std::string& host, std::uint16_t port);

/// Write all of `data`, looping over partial sends.  False on any send
/// failure (the peer went away mid-write).
bool send_all(int fd, std::string_view data);

/// Switch `fd` to O_NONBLOCK.  False on fcntl failure.
bool set_nonblocking(int fd);

}  // namespace atp
