// Lightweight Status / Result types.  The engine uses these instead of
// exceptions on hot paths (aborts are normal control flow in a TP system).
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace atp {

enum class ErrorCode : int {
  kOk = 0,
  kAborted,          // transaction aborted (deadlock victim, rollback stmt)
  kDeadlock,         // aborted specifically as a deadlock victim
  kEpsilonExceeded,  // divergence control: fuzziness budget exhausted
  kTimeout,          // lock wait timed out
  kNotFound,         // key or object missing
  kInvalidArgument,  // caller bug
  kFailedPrecondition,  // state machine misuse (e.g. op on committed txn)
  kUnavailable,      // site down / link down
  kConflict,         // optimistic validation failure
};

[[nodiscard]] constexpr const char* to_string(ErrorCode c) noexcept {
  switch (c) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kAborted: return "aborted";
    case ErrorCode::kDeadlock: return "deadlock";
    case ErrorCode::kEpsilonExceeded: return "epsilon-exceeded";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kNotFound: return "not-found";
    case ErrorCode::kInvalidArgument: return "invalid-argument";
    case ErrorCode::kFailedPrecondition: return "failed-precondition";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kConflict: return "conflict";
  }
  return "unknown";
}

/// Error status with optional message.  Cheap to copy when OK.
class Status {
 public:
  Status() noexcept = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status Ok() noexcept { return {}; }
  [[nodiscard]] static Status Aborted(std::string m = "") {
    return {ErrorCode::kAborted, std::move(m)};
  }
  [[nodiscard]] static Status Deadlock(std::string m = "") {
    return {ErrorCode::kDeadlock, std::move(m)};
  }
  [[nodiscard]] static Status EpsilonExceeded(std::string m = "") {
    return {ErrorCode::kEpsilonExceeded, std::move(m)};
  }
  [[nodiscard]] static Status Timeout(std::string m = "") {
    return {ErrorCode::kTimeout, std::move(m)};
  }
  [[nodiscard]] static Status NotFound(std::string m = "") {
    return {ErrorCode::kNotFound, std::move(m)};
  }
  [[nodiscard]] static Status InvalidArgument(std::string m = "") {
    return {ErrorCode::kInvalidArgument, std::move(m)};
  }
  [[nodiscard]] static Status FailedPrecondition(std::string m = "") {
    return {ErrorCode::kFailedPrecondition, std::move(m)};
  }
  [[nodiscard]] static Status Unavailable(std::string m = "") {
    return {ErrorCode::kUnavailable, std::move(m)};
  }
  [[nodiscard]] static Status Conflict(std::string m = "") {
    return {ErrorCode::kConflict, std::move(m)};
  }

  [[nodiscard]] bool ok() const noexcept { return code_ == ErrorCode::kOk; }
  [[nodiscard]] ErrorCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// Any flavour of transaction abort (plain, deadlock, epsilon, timeout).
  [[nodiscard]] bool is_abort() const noexcept {
    return code_ == ErrorCode::kAborted || code_ == ErrorCode::kDeadlock ||
           code_ == ErrorCode::kEpsilonExceeded || code_ == ErrorCode::kTimeout;
  }

  [[nodiscard]] std::string to_string() const {
    std::string s = atp::to_string(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

/// Result<T>: either a value or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result from OK status needs a value");
  }

  [[nodiscard]] bool ok() const noexcept { return value_.has_value(); }
  [[nodiscard]] const Status& status() const noexcept { return status_; }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace atp
