// Monotonic stopwatch for latency measurement (real-time engine paths).
#pragma once

#include <chrono>
#include <cstdint>

namespace atp {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  [[nodiscard]] std::int64_t elapsed_us() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  [[nodiscard]] double elapsed_ms() const {
    return double(elapsed_us()) / 1000.0;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace atp
