// Core identifier and value types shared across the ATP library.
//
// The paper (Hseush & Pu, ICDCS'95) defines epsilon serializability over
// database state spaces with a distance measure.  We fix the canonical metric
// space used throughout this reproduction to be the reals (account balances,
// seat counts, salaries), with distance(x, y) = |x - y|.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace atp {

/// Identifies a data item (account, seat block, salary cell...).
using Key = std::uint64_t;

/// Value stored for a data item.  A metric space: distance(a,b) = |a-b|.
using Value = double;

/// Globally unique transaction identifier.  Monotonically increasing; used as
/// the age tiebreak by the deadlock victim picker (youngest aborts).
using TxnId = std::uint64_t;

/// Identifies a site in the distributed layer.
using SiteId = std::uint32_t;

/// Virtual time, in microseconds, used by the discrete-event distributed
/// simulator.  Local (threaded) execution uses real time instead.
using SimTime = std::int64_t;

constexpr TxnId kInvalidTxn = 0;

/// Distance function of the canonical metric space.
inline Value distance(Value a, Value b) noexcept { return a > b ? a - b : b - a; }

/// "Infinite" fuzziness limit: pieces proven unable to join a conflict cycle
/// are assigned this so divergence control never blocks them (Section 2.2).
constexpr Value kInfiniteLimit = std::numeric_limits<Value>::infinity();

/// Whether a transaction may write.  Query ETs may import fuzziness; update
/// ETs may export it (Section 1.1: updates stay serializable among
/// themselves, queries may see bounded inconsistency).
enum class TxnKind : std::uint8_t { Query, Update };

inline const char* to_string(TxnKind k) noexcept {
  return k == TxnKind::Query ? "query" : "update";
}

}  // namespace atp
