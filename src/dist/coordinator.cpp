#include "dist/coordinator.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstring>
#include <functional>
#include <thread>

#include "common/stopwatch.h"
#include "fault/retry.h"

namespace atp {
namespace {

std::atomic<std::uint64_t> g_next_gtid{1};

// --- codec primitives (little-endian fixed width) --------------------------

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(char((v >> (8 * i)) & 0xff));
}

void put_f64(std::string& out, Value v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v, "Value must be a 64-bit double");
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

bool get_u64(std::string_view& in, std::uint64_t& v) {
  if (in.size() < 8) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= std::uint64_t(std::uint8_t(in[std::size_t(i)])) << (8 * i);
  }
  in.remove_prefix(8);
  return true;
}

bool get_f64(std::string_view& in, Value& v) {
  std::uint64_t bits;
  if (!get_u64(in, bits)) return false;
  std::memcpy(&v, &bits, sizeof v);
  return true;
}

bool get_u8(std::string_view& in, std::uint8_t& v) {
  if (in.empty()) return false;
  v = std::uint8_t(in.front());
  in.remove_prefix(1);
  return true;
}

constexpr const char* kChopQueueUpdate = "chop.update";
constexpr const char* kChopQueueQuery = "chop.query";

const char* chop_queue_for(TxnKind kind) {
  return kind == TxnKind::Query ? kChopQueueQuery : kChopQueueUpdate;
}

TxnKind kind_of_chop_queue(const std::string& queue) {
  return queue == kChopQueueQuery ? TxnKind::Query : TxnKind::Update;
}

// Execute one piece's ops on an open transaction.  OK status or the failure.
Status execute_ops(Txn& txn, const std::vector<Access>& ops) {
  for (const Access& op : ops) {
    switch (op.type) {
      case AccessType::Read: {
        Result<Value> v = txn.read(op.item);
        if (!v.ok()) return v.status();
        break;
      }
      case AccessType::Add: {
        Status s = txn.add(op.item, op.delta);
        if (!s.ok()) return s;
        break;
      }
      case AccessType::Write: {
        Status s = txn.write(op.item, op.delta);
        if (!s.ok()) return s;
        break;
      }
    }
  }
  return Status::Ok();
}

/// Commit-round outcome telemetry, pushed into the home site's registry (the
/// coordinator has no instruments of its own; protocol rounds dominate, so a
/// name lookup per outcome is noise).
void dist_count(Site& home, const std::string& name) {
  if (obs::MetricsRegistry* reg = home.db().metrics(); reg != nullptr) {
    reg->counter(name).add();
  }
}

void dist_record(Site& home, const std::string& name, double v) {
  if (obs::MetricsRegistry* reg = home.db().metrics(); reg != nullptr) {
    reg->histogram(name).record(v);
  }
}

}  // namespace

std::string encode_chop(const ChopContinuation& cont) {
  std::string out;
  put_u64(out, cont.gtid);
  put_f64(out, cont.piece_epsilon);
  out.push_back(cont.dynamic_epsilon ? 1 : 0);
  put_u64(out, cont.next);
  put_u64(out, cont.origin);
  put_u64(out, cont.pieces.size());
  for (const DistPieceSpec& p : cont.pieces) {
    put_u64(out, p.site);
    put_u64(out, p.ops.size());
    for (const Access& a : p.ops) {
      out.push_back(char(std::uint8_t(a.type)));
      put_u64(out, a.item);
      put_f64(out, a.bound);
      put_f64(out, a.delta);
    }
  }
  return out;
}

std::optional<ChopContinuation> decode_chop(std::string_view bytes) {
  ChopContinuation cont;
  std::uint64_t u = 0;
  std::uint8_t b = 0;
  if (!get_u64(bytes, cont.gtid)) return std::nullopt;
  if (!get_f64(bytes, cont.piece_epsilon)) return std::nullopt;
  if (!get_u8(bytes, b)) return std::nullopt;
  cont.dynamic_epsilon = b != 0;
  if (!get_u64(bytes, u)) return std::nullopt;
  cont.next = std::size_t(u);
  if (!get_u64(bytes, u)) return std::nullopt;
  cont.origin = SiteId(u);
  std::uint64_t npieces = 0;
  if (!get_u64(bytes, npieces)) return std::nullopt;
  for (std::uint64_t i = 0; i < npieces; ++i) {
    DistPieceSpec p;
    if (!get_u64(bytes, u)) return std::nullopt;
    p.site = SiteId(u);
    std::uint64_t nops = 0;
    if (!get_u64(bytes, nops)) return std::nullopt;
    for (std::uint64_t j = 0; j < nops; ++j) {
      Access a;
      if (!get_u8(bytes, b)) return std::nullopt;
      if (b > std::uint8_t(AccessType::Write)) return std::nullopt;
      a.type = AccessType(b);
      if (!get_u64(bytes, a.item)) return std::nullopt;
      if (!get_f64(bytes, a.bound)) return std::nullopt;
      if (!get_f64(bytes, a.delta)) return std::nullopt;
      p.ops.push_back(a);
    }
    cont.pieces.push_back(std::move(p));
  }
  if (!bytes.empty()) return std::nullopt;  // trailing garbage
  return cont;
}

std::string encode_gtid(std::uint64_t gtid) {
  std::string out;
  put_u64(out, gtid);
  return out;
}

std::optional<std::uint64_t> decode_gtid(std::string_view bytes) {
  std::uint64_t gtid = 0;
  if (!get_u64(bytes, gtid) || !bytes.empty()) return std::nullopt;
  return gtid;
}

Coordinator::Coordinator(Site& home, std::vector<Site*> sites)
    : home_(home), sites_(std::move(sites)) {}

Result<DistOutcome> Coordinator::run_2pc(
    const DistTxnSpec& spec, bool validation_round,
    std::chrono::milliseconds decision_timeout) {
  assert(!spec.pieces.empty());
  const std::uint64_t gtid = g_next_gtid.fetch_add(1);
  Stopwatch clock;

  // --- execution phase: one subtransaction per site ------------------------
  // (ops run in-process against each remote Database; the network is charged
  // only for protocol rounds, which favours the baseline).
  std::vector<SiteId> participants;  // remote sites, home excluded
  std::vector<Txn> txns;
  txns.reserve(spec.pieces.size());
  for (const DistPieceSpec& piece : spec.pieces) {
    Site* site = sites_[piece.site];
    Txn txn = site->db().begin(spec.kind,
                               spec_for(spec.kind, spec.piece_epsilon));
    Status s = execute_ops(txn, piece.ops);
    if (!s.ok()) {
      txn.abort();
      for (Txn& t : txns) t.abort();
      dist_count(home_, "dist.2pc.aborted");
      return s;
    }
    if (piece.site != home_.id()) participants.push_back(piece.site);
    txns.push_back(std::move(txn));
  }
  // Hand remote subtransactions to their sites (they commit on decision).
  for (std::size_t i = 0; i < spec.pieces.size(); ++i) {
    if (spec.pieces[i].site == home_.id()) continue;
    sites_[spec.pieces[i].site]->stash_subtransaction(gtid,
                                                      std::move(txns[i]));
  }

  auto round = [&](const char* type,
                   std::chrono::milliseconds timeout) -> bool {
    // One round trip to every participant, retransmitting to the silent
    // ones until the decision timeout.  A lost or delayed message is NOT a
    // vote: only an explicit NO (or the deadline) fails the round.  The
    // per-try wait starts well above a healthy round trip, so retransmits
    // fire only when something was actually lost.
    const RetryPolicy policy = RetryPolicy::protocol_round();
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    std::vector<std::uint64_t> correlations(participants.size(), 0);
    std::vector<bool> replied(participants.size(), false);
    std::size_t missing = participants.size();
    for (std::uint64_t attempt = 0; missing > 0; ++attempt) {
      for (std::size_t i = 0; i < participants.size(); ++i) {
        if (replied[i]) continue;
        Message m;
        m.from = home_.id();
        m.to = participants[i];
        m.type = type;
        m.gtid = gtid;
        correlations[i] = home_.net().send(std::move(m));
        if (attempt > 0) dist_count(home_, "retry.2pc.retransmits");
      }
      const auto per_try = std::max<std::chrono::milliseconds>(
          std::chrono::milliseconds(1),
          std::chrono::duration_cast<std::chrono::milliseconds>(
              policy.delay(attempt + 1, gtid)));
      for (std::size_t i = 0; i < participants.size(); ++i) {
        if (replied[i]) continue;
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) return false;
        const auto wait = std::min(
            per_try, std::chrono::duration_cast<std::chrono::milliseconds>(
                         deadline - now));
        auto reply =
            home_.net().receive_reply(home_.id(), correlations[i], wait);
        if (!reply) continue;  // retransmit on the next pass
        if (reply->type == "vote" && reply->value == 0) return false;
        replied[i] = true;
        --missing;
      }
      if (std::chrono::steady_clock::now() >= deadline && missing > 0) {
        return false;
      }
    }
    return true;
  };

  // --- prepare round --------------------------------------------------------
  if (!round("prepare", decision_timeout)) {
    // Abort everywhere (best effort; participants also time out locally).
    round("abort", decision_timeout);
    for (Txn& t : txns) t.abort();  // aborts the home piece (moved-out remote
                                    // handles are inert)
    dist_count(home_, "dist.2pc.aborted");
    return Status::Aborted("2pc prepare failed or timed out");
  }

  // --- global validation round (the baseline's serialization-order check) --
  if (validation_round && !round("validate", decision_timeout)) {
    round("abort", decision_timeout);
    for (Txn& t : txns) t.abort();
    dist_count(home_, "dist.2pc.validation_failed");
    dist_count(home_, "dist.2pc.aborted");
    return Status::Aborted("2pc validation failed or timed out");
  }

  // Decision is logged at the coordinator: the client can be told "committed"
  // here, but participant locks release only as commit messages arrive.
  DistOutcome out;
  out.gtid = gtid;
  out.client_latency_us = double(clock.elapsed_us());

  // Commit the home piece locally.
  for (std::size_t i = 0; i < spec.pieces.size(); ++i) {
    if (spec.pieces[i].site != home_.id()) continue;
    Status s = txns[i].commit();
    assert(s.ok());
    (void)s;
  }

  // --- commit round: retry until every participant acknowledges ------------
  // (this is where 2PC *blocks* when a participant is down).
  std::vector<bool> acked(participants.size(), participants.empty());
  for (std::uint64_t attempt = 0;; ++attempt) {
    bool all = true;
    for (std::size_t i = 0; i < participants.size(); ++i) {
      if (acked[i]) continue;
      Message m;
      m.from = home_.id();
      m.to = participants[i];
      m.type = "commit";
      m.gtid = gtid;
      const std::uint64_t corr = home_.net().send(std::move(m));
      if (attempt > 0) dist_count(home_, "retry.2pc.commit_retransmits");
      // Per-try wait generously above a WAN round trip so healthy links do
      // not see spurious duplicate decisions.
      auto reply = home_.net().receive_reply(home_.id(), corr,
                                             std::chrono::milliseconds(250));
      if (reply) {
        acked[i] = true;
      } else {
        all = false;
      }
    }
    if (all) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  out.complete_latency_us = double(clock.elapsed_us());
  out.completed = true;
  dist_count(home_, "dist.2pc.committed");
  dist_record(home_, "dist.2pc.client_us", out.client_latency_us);
  dist_record(home_, "dist.2pc.complete_us", out.complete_latency_us);
  return out;
}

Result<DistOutcome> Coordinator::run_chopped(
    const DistTxnSpec& spec, std::chrono::milliseconds completion_timeout) {
  assert(!spec.pieces.empty());
  assert(spec.pieces[0].site == home_.id() &&
         "piece 1 must run at the coordinator's home site");
  const std::uint64_t gtid = g_next_gtid.fetch_add(1);
  Stopwatch clock;

  // --- piece 1: a plain local transaction ----------------------------------
  // Static pre-division gives each piece its share; dynamic distribution
  // (Figure 2 over the wire) hands piece 1 the whole Limit_t and ships the
  // measured leftover along with the continuation.
  const Value first_budget =
      spec.dynamic_epsilon
          ? spec.piece_epsilon * static_cast<Value>(spec.pieces.size())
          : spec.piece_epsilon;
  Txn txn = home_.db().begin(spec.kind, spec_for(spec.kind, first_budget));
  Status s = execute_ops(txn, spec.pieces[0].ops);
  if (!s.ok()) {
    txn.abort();
    dist_count(home_, "dist.chopped.aborted");
    return s;  // piece 1 may abort freely: nothing committed yet
  }
  if (spec.pieces.size() > 1) {
    ChopContinuation cont;
    cont.gtid = gtid;
    cont.dynamic_epsilon = spec.dynamic_epsilon;
    // Leftover computed after the last op; a conflict charging this txn in
    // the microscopic window before commit makes the shipped leftover a
    // slight over-allowance, bounded by that one conflict's delta.
    cont.piece_epsilon =
        spec.dynamic_epsilon
            ? std::max<Value>(0, first_budget - txn.fuzziness())
            : spec.piece_epsilon;
    cont.pieces = spec.pieces;
    cont.next = 1;
    cont.origin = home_.id();
    home_.queues().enqueue(txn, spec.pieces[1].site,
                           chop_queue_for(spec.kind), encode_chop(cont));
  }
  Status c = txn.commit();
  if (!c.ok()) {
    // The home site crashed under us (crash-epoch guard): nothing committed,
    // nothing was forwarded.  Piece 1 may abort freely -- report it.
    dist_count(home_, "dist.chopped.aborted");
    return c;
  }

  DistOutcome out;
  out.gtid = gtid;
  // The client-visible commit: one local commit, zero protocol rounds.
  out.client_latency_us = double(clock.elapsed_us());
  dist_count(home_, "dist.chopped.started");
  dist_record(home_, "dist.chopped.client_us", out.client_latency_us);

  if (spec.pieces.size() == 1) {
    out.complete_latency_us = out.client_latency_us;
    out.completed = true;
    dist_count(home_, "dist.chopped.completed");
    dist_record(home_, "dist.chopped.complete_us", out.complete_latency_us);
    return out;
  }
  out.completed = home_.wait_done(gtid, completion_timeout);
  out.complete_latency_us = double(clock.elapsed_us());
  if (out.completed) {
    dist_count(home_, "dist.chopped.completed");
    dist_record(home_, "dist.chopped.complete_us", out.complete_latency_us);
  }
  return out;
}

void Coordinator::install_chop_handler(const std::vector<Site*>& sites) {
  auto handler = [](Site& site, const std::string& queue) {
    const TxnKind kind = kind_of_chop_queue(queue);
    // Rollback-safety (Theorem 1): once piece 1 committed, this piece must
    // retry until it commits -- backing off between attempts, never giving
    // up.  The only exits are success, a concurrent worker winning the
    // dequeue, or a site crash (the durable queue redelivers afterwards).
    const RetryPolicy policy = RetryPolicy::chop_handler();
    const std::uint64_t backoff_seed =
        fault_mix64(std::uint64_t(site.id()) ^
                    std::hash<std::string>{}(queue));
    for (std::uint64_t attempt = 0;; ++attempt) {
      if (!site.up()) return;  // crash: the durable queue redelivers later
      if (attempt > 0) {
        if (obs::MetricsRegistry* reg = site.db().metrics(); reg != nullptr) {
          reg->counter("retry.chop.attempts").add();
        }
        std::this_thread::sleep_for(policy.delay(attempt, backoff_seed));
      }
      // Kind comes from the queue name so the transaction can be opened
      // before the payload is known; the eps budget is applied right after
      // the (lock-free) dequeue, before any data access.
      Txn txn = site.db().begin(kind, EpsilonSpec::unlimited());
      auto payload = site.queues().try_dequeue(txn, queue);
      if (!payload) {
        txn.abort();
        return;  // consumed by a concurrent worker
      }
      const std::optional<ChopContinuation> decoded = decode_chop(*payload);
      assert(decoded.has_value() && decoded->next < decoded->pieces.size());
      if (!decoded.has_value() || decoded->next >= decoded->pieces.size()) {
        txn.abort();  // poison message: consuming it would lose the chain
        return;
      }
      const ChopContinuation* cont = &*decoded;
      site.db().registry().set_spec(txn.id(),
                                    spec_for(kind, cont->piece_epsilon));
      Status s = execute_ops(txn, cont->pieces[cont->next].ops);
      if (!s.ok()) {
        txn.abort();  // claim reverts; retry until commit (process handler)
        continue;
      }
      if (cont->next + 1 < cont->pieces.size()) {
        ChopContinuation next = *cont;
        ++next.next;
        if (next.dynamic_epsilon) {
          // Figure 2 over the wire: forward this piece's leftover.
          next.piece_epsilon =
              std::max<Value>(0, next.piece_epsilon - txn.fuzziness());
        }
        const SiteId dest = next.pieces[next.next].site;
        site.queues().enqueue(txn, dest, queue, encode_chop(next));
      } else {
        site.queues().enqueue(txn, cont->origin, kDoneQueue,
                              encode_gtid(cont->gtid));
      }
      Status c = txn.commit();
      if (!c.ok()) {
        // Crash-epoch guard tripped: the site crashed between our dequeue
        // and this commit.  The staged writes are gone and -- crucially --
        // the continuation was NOT forwarded (commit hooks never ran); the
        // message is back in the durable queue for redelivery after
        // recovery.  Committing blindly here used to forward the
        // continuation for work that never happened, double-running every
        // later piece.
        return;
      }
      return;
    }
  };
  for (Site* site : sites) site->set_queue_handler(handler);
}

}  // namespace atp
