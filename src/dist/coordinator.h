// Distributed transaction execution, both ways the paper compares
// (Section 4):
//
//   * run_2pc       -- the traditional approach: subtransactions at every
//     site, a prepare round, an optional global-validation round, and a
//     commit round.  Locks at every participant are held until its commit
//     message arrives; a participant or coordinator failure between prepare
//     and commit blocks.
//
//   * run_chopped   -- the paper's approach: the first piece commits locally
//     and hands the rest of the transaction to the next site through a
//     recoverable queue.  No commit protocol, no global validation: the
//     client sees commit after ONE local commit; remaining pieces commit
//     asynchronously, retried by the process handler until they succeed,
//     surviving site failures via the queues' durability.
//
// Subtransaction data operations execute by direct in-process calls to the
// remote site's Database (generous to the 2PC baseline: it pays network
// latency only for protocol rounds, never for data shipping).
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "chop/program.h"
#include "common/status.h"
#include "dist/site.h"

namespace atp {

struct DistPieceSpec {
  SiteId site = 0;
  std::vector<Access> ops;
};

struct DistTxnSpec {
  TxnKind kind = TxnKind::Update;
  /// Per-piece eps budget: the paper pre-divides Limit_t across sites
  /// (e.g. $10,000 split $5,000 + $5,000 in the NY/LA example).
  Value piece_epsilon = 0;
  /// Dynamic distribution across the distributed chain (Figure 2 ported to
  /// Section 4): piece 1 runs with the WHOLE budget `piece_epsilon *
  /// pieces.size()`, and each continuation carries the measured leftover
  /// `Limit - Z_p` to the next site.  Static pre-division when false.
  bool dynamic_epsilon = false;
  /// Chain order; pieces[0] runs at the coordinator's home site.
  std::vector<DistPieceSpec> pieces;
};

struct DistOutcome {
  std::uint64_t gtid = 0;
  double client_latency_us = 0;    ///< when the client observes commit
  double complete_latency_us = 0;  ///< when every piece has committed
  bool completed = false;          ///< completion confirmed (chopped mode)
};

class Coordinator {
 public:
  /// `sites[i]` must be the site with id i; `home` one of them.
  Coordinator(Site& home, std::vector<Site*> sites);

  /// Traditional distributed commit.  `validation_round` adds the global
  /// serialization-order check the paper says the baseline needs.
  /// `decision_timeout` bounds the prepare/vote wait (vote timeout aborts).
  [[nodiscard]] Result<DistOutcome> run_2pc(
      const DistTxnSpec& spec, bool validation_round = true,
      std::chrono::milliseconds decision_timeout =
          std::chrono::milliseconds(2000));

  /// Chopped execution over recoverable queues.  Returns after piece 1
  /// commits (the client-visible moment); waits up to `completion_timeout`
  /// for the all-pieces-done notice to measure completion latency.
  [[nodiscard]] Result<DistOutcome> run_chopped(
      const DistTxnSpec& spec,
      std::chrono::milliseconds completion_timeout =
          std::chrono::milliseconds(10000));

  /// Install the chopped-piece continuation handler on every site.  Call
  /// once per site fleet before any run_chopped.
  static void install_chop_handler(const std::vector<Site*>& sites);

 private:
  Site& home_;
  std::vector<Site*> sites_;
};

/// Payload forwarded from piece to piece through the recoverable queues.
struct ChopContinuation {
  std::uint64_t gtid = 0;
  Value piece_epsilon = 0;  ///< this piece's budget (leftover when dynamic)
  bool dynamic_epsilon = false;
  std::vector<DistPieceSpec> pieces;  ///< the full chain
  std::size_t next = 0;               ///< index of the piece to run
  SiteId origin = 0;                  ///< home site, for the done notice
};

/// Queue-payload codec: flat little-endian fixed-width bytes.  What travels
/// through a recoverable queue is exactly what hits the WAL and the wire --
/// no erased types anywhere on the durable path.
[[nodiscard]] std::string encode_chop(const ChopContinuation& cont);
/// nullopt on a truncated or malformed buffer.
[[nodiscard]] std::optional<ChopContinuation> decode_chop(
    std::string_view bytes);

/// Done-notice payload: the gtid as 8 little-endian bytes.
[[nodiscard]] std::string encode_gtid(std::uint64_t gtid);
[[nodiscard]] std::optional<std::uint64_t> decode_gtid(std::string_view bytes);

}  // namespace atp
