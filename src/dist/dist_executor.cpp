#include "dist/dist_executor.h"

#include <atomic>
#include <iomanip>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/stopwatch.h"
#include "fault/retry.h"

#include "common/ordered_lock.h"

namespace atp {

std::string DistExecutorReport::header() {
  std::ostringstream out;
  out << std::left << std::setw(20) << "scheme" << std::right  //
      << std::setw(9) << "commit"                              //
      << std::setw(9) << "abort"                               //
      << std::setw(10) << "complete"                           //
      << std::setw(11) << "tps"                                //
      << std::setw(14) << "cli p50(ms)"                        //
      << std::setw(14) << "cli p95(ms)"                        //
      << std::setw(14) << "cmp p95(ms)"                        //
      << std::setw(10) << "msgs";
  return out.str();
}

std::string DistExecutorReport::row(const char* label) const {
  std::ostringstream out;
  out << std::left << std::setw(20) << label << std::right      //
      << std::setw(9) << committed                              //
      << std::setw(9) << aborted                                //
      << std::setw(10) << completed                             //
      << std::setw(11) << std::fixed << std::setprecision(1)
      << throughput_tps                                         //
      << std::setw(14) << std::setprecision(2)
      << client_latency_ms.p50                                  //
      << std::setw(14) << client_latency_ms.p95                 //
      << std::setw(14) << complete_latency_ms.p95               //
      << std::setw(10) << net.sent;
  return out.str();
}

DistExecutorReport DistExecutor::run(const std::vector<Site*>& sites,
                                     const std::vector<DistTxnSpec>& stream,
                                     const DistExecutorOptions& options) {
  DistExecutorReport report;
  Histogram client_ms, complete_ms;
  std::atomic<std::size_t> next{0};
  std::atomic<std::uint64_t> committed{0}, aborted{0}, completed{0};
  // Chopped mode: completion notices are awaited after the client loop, so
  // the client threads measure pure client-visible latency.
  OrderedMutex<LockRank::kDistPending> pending_mu;  // rank kDistPending
  std::vector<std::pair<SiteId, std::uint64_t>> pending;  // (home, gtid)

  sites[0]->net().reset_stats();
  Stopwatch wall;
  std::vector<std::thread> clients;
  clients.reserve(options.clients);
  for (std::size_t c = 0; c < options.clients; ++c) {
    clients.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);  // relaxed-ok: work ticket; RMW atomicity dedups
        if (i >= stream.size()) break;
        const DistTxnSpec& spec = stream[i];
        Site* home = sites[spec.pieces[0].site];
        Coordinator coord(*home, sites);

        if (options.use_chopping) {
          // Piece-1 conflicts retry like any local transaction -- but with
          // backoff, so an aborting hot-key transaction stops hammering the
          // very locks it is losing to.
          const RetryPolicy policy = RetryPolicy::chop_handler();
          for (std::uint64_t attempt = 0;; ++attempt) {
            if (attempt > 0) {
              std::this_thread::sleep_for(policy.delay(attempt, i));
            }
            auto out = coord.run_chopped(spec, std::chrono::milliseconds(0));
            if (out.ok()) {
              committed.fetch_add(1, std::memory_order_relaxed);  // relaxed-ok: tally read after join
              client_ms.record(out.value().client_latency_us / 1000.0);
              if (out.value().completed) {
                // Single-piece transactions finish inline; there is no done
                // notice to await.
                completed.fetch_add(1, std::memory_order_relaxed);  // relaxed-ok: tally read after join
                complete_ms.record(out.value().complete_latency_us / 1000.0);
              } else {
                std::lock_guard lock(pending_mu);
                pending.emplace_back(spec.pieces[0].site, out.value().gtid);
              }
              break;
            }
          }
        } else {
          bool done = false;
          const RetryPolicy policy = RetryPolicy::protocol_round();
          for (int attempt = 0; attempt < 16 && !done; ++attempt) {
            if (attempt > 0) {
              std::this_thread::sleep_for(
                  policy.delay(std::uint64_t(attempt), i));
            }
            auto out = coord.run_2pc(spec, options.validation_round,
                                     options.decision_timeout);
            if (out.ok()) {
              committed.fetch_add(1, std::memory_order_relaxed);  // relaxed-ok: tally read after join
              completed.fetch_add(1, std::memory_order_relaxed);  // relaxed-ok: tally read after join
              client_ms.record(out.value().client_latency_us / 1000.0);
              complete_ms.record(out.value().complete_latency_us / 1000.0);
              done = true;
            }
          }
          if (!done) aborted.fetch_add(1, std::memory_order_relaxed);  // relaxed-ok: tally read after join
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  const double client_seconds = double(wall.elapsed_us()) / 1e6;

  if (options.use_chopping) {
    // Drain completions; their latency is measured from the run's start
    // (an upper bound -- individual start times belong to the client loop).
    for (const auto& [home, gtid] : pending) {
      if (sites[home]->wait_done(gtid, options.completion_timeout)) {
        completed.fetch_add(1, std::memory_order_relaxed);  // relaxed-ok: tally read after join
      }
    }
    complete_ms.record(double(wall.elapsed_us()) / 1000.0);
  }

  report.committed = committed.load();
  report.aborted = aborted.load();
  report.completed = completed.load();
  report.wall_seconds = client_seconds;
  report.throughput_tps =
      client_seconds > 0 ? double(report.committed) / client_seconds : 0;
  report.client_latency_ms = client_ms.summarize();
  report.complete_latency_ms = complete_ms.summarize();
  report.net = sites[0]->net().stats();
  return report;
}

std::vector<DistTxnSpec> to_dist_specs(
    const Workload& workload, const std::function<SiteId(Key)>& site_of) {
  std::vector<DistTxnSpec> specs;
  specs.reserve(workload.instances.size());
  for (const TxnInstance& inst : workload.instances) {
    const TxnProgram& type = workload.types[inst.type_index];
    DistTxnSpec spec;
    spec.kind = type.kind;
    // Group ops into per-site pieces in first-touch order.
    for (const Access& op : inst.ops) {
      const SiteId site = site_of(op.item);
      DistPieceSpec* piece = nullptr;
      for (auto& p : spec.pieces) {
        if (p.site == site) piece = &p;
      }
      if (piece == nullptr) {
        spec.pieces.push_back(DistPieceSpec{site, {}});
        piece = &spec.pieces.back();
      }
      piece->ops.push_back(op);
    }
    const std::size_t n = spec.pieces.empty() ? 1 : spec.pieces.size();
    spec.piece_epsilon = type.epsilon_limit / static_cast<Value>(n);
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace atp
