// Multi-client distributed executor: drives a stream of distributed
// transactions through a site fleet under either commit scheme (2PC with
// global validation, or the paper's chopped pieces over recoverable queues)
// and reports throughput and latency distributions.
//
// This is the throughput-side companion of the Section 4 latency bench: the
// saved message rounds translate into client capacity, because a client
// thread is occupied for the whole protocol under 2PC but only for one
// local commit under chopping.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/metrics.h"
#include "dist/coordinator.h"
#include "dist/site.h"
#include "workload/workload.h"

namespace atp {

struct DistExecutorOptions {
  std::size_t clients = 4;      ///< concurrent coordinator threads
  bool use_chopping = true;     ///< chopped+queues vs 2PC
  bool validation_round = true; ///< 2PC only: add the global-validation RTT
  std::chrono::milliseconds completion_timeout{20000};
  std::chrono::milliseconds decision_timeout{2000};
};

struct DistExecutorReport {
  std::uint64_t committed = 0;   ///< client-visible commits
  std::uint64_t aborted = 0;     ///< gave up after retries (2PC only)
  std::uint64_t completed = 0;   ///< all pieces confirmed applied
  double wall_seconds = 0;
  double throughput_tps = 0;     ///< client-visible commits per second
  StatSummary client_latency_ms;
  StatSummary complete_latency_ms;
  NetStats net;

  [[nodiscard]] static std::string header();
  [[nodiscard]] std::string row(const char* label) const;
};

class DistExecutor {
 public:
  /// Run `stream` against `sites` (sites[i] has id i, all started).  Each
  /// spec's pieces[0].site is the client's home.  Blocks until every
  /// transaction's completion notice arrives (or times out).
  [[nodiscard]] static DistExecutorReport run(
      const std::vector<Site*>& sites, const std::vector<DistTxnSpec>& stream,
      const DistExecutorOptions& options);
};

/// Map a local Workload onto a site fleet: each instance's ops are grouped
/// into per-site pieces by `site_of(key)`, in first-touch order, with the
/// transaction's eps divided evenly across pieces (the paper's $10,000/2
/// pre-division).
[[nodiscard]] std::vector<DistTxnSpec> to_dist_specs(
    const Workload& workload, const std::function<SiteId(Key)>& site_of);

}  // namespace atp
