#include "dist/site.h"

#include <cassert>

#include "dist/coordinator.h"  // decode_gtid (done-notice payload codec)

namespace atp {

Site::Site(SiteId id, SimNetwork& net, DatabaseOptions db_options)
    : id_(id), net_(net), db_(db_options), queues_(id, net) {
  // One tracer serves the whole site: the database options carry it to the
  // scheduler/locks/registry, and the queue endpoint shares it.
  queues_.set_tracer(db_options.tracer);
  // Likewise one metrics registry: the Database registered its own eps/lock
  // collector; the site adds the queue-endpoint and network views under a
  // site-scoped prefix (many sites may share one registry).
  if (obs::MetricsRegistry* reg = db_.metrics(); reg != nullptr) {
    const std::string p = "site" + std::to_string(id_) + ".";
    collector_id_ = reg->add_collector([this, p](obs::SnapshotBuilder& b) {
      const QueueStats qs = queues_.stats();
      b.counter(p + "queue.enqueued", double(qs.enqueued));
      b.counter(p + "queue.transmitted", double(qs.transmitted));
      b.counter(p + "queue.delivered", double(qs.delivered));
      b.counter(p + "queue.duplicates", double(qs.duplicates));
      b.counter(p + "queue.consumed", double(qs.consumed));
      b.counter(p + "queue.redelivered", double(qs.redelivered));
      b.gauge(p + "queue.backlog", double(queues_.outbound_backlog()));
      // Site-prefixed though the network is shared: sample names must be
      // unique when several sites publish into one registry.
      const NetStats ns = net_.stats();
      b.counter(p + "net.sent", double(ns.sent));
      b.counter(p + "net.delivered", double(ns.delivered));
      b.counter(p + "net.dropped", double(ns.dropped));
    });
  }
}

Site::~Site() {
  stop();
  if (obs::MetricsRegistry* reg = db_.metrics(); reg != nullptr) {
    reg->remove_collector(collector_id_);
  }
}

void Site::start() {
  if (running_.exchange(true)) return;
  handler_thread_ = std::thread([this] { handler_loop(); });
  daemon_thread_ = std::thread([this] { daemon_loop(); });
  for (std::size_t i = 0; i < kWorkers; ++i) {
    worker_threads_.emplace_back([this] { worker_loop(); });
  }
}

void Site::stop() {
  if (!running_.exchange(false)) return;
  work_cv_.notify_all();
  done_cv_.notify_all();
  if (handler_thread_.joinable()) handler_thread_.join();
  if (daemon_thread_.joinable()) daemon_thread_.join();
  for (auto& t : worker_threads_) {
    if (t.joinable()) t.join();
  }
  worker_threads_.clear();
}

void Site::set_queue_handler(QueueHandler handler) {
  std::lock_guard lock(mu_);
  queue_handler_ = std::move(handler);
}

void Site::stash_subtransaction(std::uint64_t gtid, Txn txn) {
  std::lock_guard lock(mu_);
  subtxns_.emplace(gtid, std::move(txn));
}

bool Site::prepare_subtransaction(std::uint64_t gtid) {
  std::lock_guard lock(mu_);
  if (!subtxns_.count(gtid)) return false;
  prepared_.insert(gtid);
  return true;
}

bool Site::wait_done(std::uint64_t gtid, std::chrono::milliseconds timeout) {
  std::unique_lock lock(mu_);
  return done_cv_.wait_for(lock, timeout,
                           [&] { return done_.count(gtid) > 0; });
}

void Site::crash() {
  Tracer::emit(db_.tracer(), TraceKind::SiteCrash, id_);
  up_.store(false, std::memory_order_release);
  net_.set_site_up(id_, false);

  std::lock_guard lock(mu_);
  // Prepared subtransactions were force-logged before voting: their staged
  // writes survive.  Everything else dirty is lost.
  std::unordered_set<TxnId> survivors;
  for (std::uint64_t gtid : prepared_) {
    auto it = subtxns_.find(gtid);
    if (it != subtxns_.end()) survivors.insert(it->second.id());
  }
  db_.crash(&survivors);
  for (auto it = subtxns_.begin(); it != subtxns_.end();) {
    if (prepared_.count(it->first)) {
      ++it;
      continue;
    }
    it->second.abort();  // store already cleared; releases locks + registry
    it = subtxns_.erase(it);
  }
  queues_.crash();
  // Queued-but-unstarted piece work dies with the process; recover()'s scan
  // of the durable queues re-triggers it.
  pending_work_.clear();
}

void Site::recover() {
  Tracer::emit(db_.tracer(), TraceKind::SiteRecover, id_);
  net_.set_site_up(id_, true);
  up_.store(true, std::memory_order_release);
  // Re-trigger handlers for everything still sitting in the durable queues.
  for (const std::string& queue : queues_.nonempty_queues()) {
    const std::size_t n = queues_.depth(queue);
    for (std::size_t i = 0; i < n; ++i) process_queue_message(queue);
  }
}

void Site::handler_loop() {
  while (running_.load(std::memory_order_acquire)) {
    if (!up()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    auto msg = net_.receive_request(id_, std::chrono::milliseconds(5));
    if (!msg) continue;
    if (!up()) continue;  // crashed while the message was in flight
    handle(std::move(*msg));
  }
}

void Site::daemon_loop() {
  while (running_.load(std::memory_order_acquire)) {
    if (up()) queues_.pump();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

void Site::worker_loop() {
  while (running_.load(std::memory_order_acquire)) {
    std::function<void()> work;
    {
      std::unique_lock lock(mu_);
      work_cv_.wait_for(lock, std::chrono::milliseconds(20), [&] {
        return !pending_work_.empty() ||
               !running_.load(std::memory_order_acquire);
      });
      if (pending_work_.empty()) continue;
      work = std::move(pending_work_.front());
      pending_work_.pop_front();
    }
    work();
  }
}

void Site::process_queue_message(const std::string& queue) {
  if (queue == kDoneQueue) {
    // Completion notice: consume transactionally and record.
    Txn txn = db_.begin(TxnKind::Update, EpsilonSpec::unlimited());
    auto payload = queues_.try_dequeue(txn, queue);
    Status s = txn.commit();
    if (!s.ok()) return;  // crash raced the consume; redelivery re-runs this
    if (payload) {
      if (const std::optional<std::uint64_t> gtid = decode_gtid(*payload)) {
        std::lock_guard lock(mu_);
        done_.insert(*gtid);
        done_cv_.notify_all();
      }
    }
    return;
  }

  // Application queue: hand to a worker so a long (or lock-blocked) piece
  // never stalls 2PC participation.
  QueueHandler handler;
  {
    std::lock_guard lock(mu_);
    handler = queue_handler_;
  }
  if (!handler) return;
  {
    std::lock_guard lock(mu_);
    pending_work_.push_back([this, handler, queue] { handler(*this, queue); });
  }
  work_cv_.notify_one();
}

void Site::handle(Message msg) {
  if (msg.type == "prepare") {
    const bool ok = prepare_subtransaction(msg.gtid);
    Message vote;
    vote.from = id_;
    vote.to = msg.from;
    vote.correlation = msg.id;
    vote.type = "vote";
    vote.gtid = msg.gtid;
    vote.value = ok ? 1 : 0;
    net_.send(std::move(vote));
    return;
  }

  if (msg.type == "commit" || msg.type == "abort") {
    {
      std::lock_guard lock(mu_);
      auto it = subtxns_.find(msg.gtid);
      if (it != subtxns_.end()) {
        if (msg.type == "commit") {
          Status s = it->second.commit();
          assert(s.ok());
          (void)s;
        } else {
          it->second.abort();
        }
        subtxns_.erase(it);
        prepared_.erase(msg.gtid);
      }
      // Unknown gtid: the decision was already applied (retransmission);
      // ack idempotently.
    }
    Message ack;
    ack.from = id_;
    ack.to = msg.from;
    ack.correlation = msg.id;
    ack.type = "ack";
    ack.gtid = msg.gtid;
    net_.send(std::move(ack));
    return;
  }

  if (msg.type == "validate") {
    // Global-validation round of the baseline protocol: confirm this site's
    // serialization order (trivially consistent here -- the round trip's
    // latency is what the comparison charges the baseline for).
    Message ack;
    ack.from = id_;
    ack.to = msg.from;
    ack.correlation = msg.id;
    ack.type = "ack";
    ack.gtid = msg.gtid;
    net_.send(std::move(ack));
    return;
  }

  if (msg.type == "qack") {
    queues_.handle_ack(msg);
    return;
  }

  if (msg.type == "qdata") {
    const bool is_new = queues_.deliver(msg);
    if (!is_new) return;
    const auto* envelope =
        std::any_cast<std::pair<std::string, std::string>>(&msg.payload);
    if (envelope == nullptr) return;
    process_queue_message(envelope->first);
    return;
  }
}

}  // namespace atp
