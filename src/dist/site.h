// A site: one Database + one recoverable-queue endpoint + service threads.
//
// Each site runs
//   * a handler thread serving requests off the network: 2PC participant
//     messages (prepare / commit / abort), recoverable-queue traffic (qdata /
//     qack), and completion notices;
//   * a daemon thread pumping the queue endpoint (retransmissions);
//   * a small worker pool executing application queue handlers (chopped
//     pieces), so a lock-blocked piece never stalls 2PC participation.
//
// Queue handlers are invoked once per deliverable message on the named
// queue; the handler must itself try_dequeue within its transaction and
// retry until the transaction commits (the chopped-piece contract).  After a
// crash, recover() re-triggers handlers for every message still sitting in
// the durable queues.
//
// Crash semantics (Section 4's failure model):
//   * crash(): the network drops the site, its inbox is lost, dirty database
//     state evaporates EXCEPT transactions in the prepared state (2PC's
//     force-logged vote), and in-flight queue claims revert.
//   * recover(): the site rejoins; durable queue state resumes pumping;
//     prepared transactions await the coordinator's decision.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/network.h"
#include "queue/recoverable_queue.h"
#include "sched/database.h"

#include "common/ordered_lock.h"

namespace atp {

/// Reserved queue carrying distributed-transaction completion notices.
inline constexpr const char* kDoneQueue = "__done";

class Site {
 public:
  /// Invoked (on a site worker thread) once per deliverable message on a
  /// named application queue.  Must consume via queues().try_dequeue inside
  /// a transaction and retry until commit.
  using QueueHandler = std::function<void(Site& self, const std::string& queue)>;

  Site(SiteId id, SimNetwork& net, DatabaseOptions db_options);
  ~Site();
  Site(const Site&) = delete;
  Site& operator=(const Site&) = delete;

  void start();
  void stop();

  [[nodiscard]] SiteId id() const noexcept { return id_; }
  [[nodiscard]] Database& db() noexcept { return db_; }
  [[nodiscard]] QueueEndpoint& queues() noexcept { return queues_; }
  [[nodiscard]] SimNetwork& net() noexcept { return net_; }

  void set_queue_handler(QueueHandler handler);

  /// 2PC participant: adopt a locally-executed subtransaction, to be
  /// committed/aborted when the coordinator's decision message arrives.
  /// (The coordinator executed the ops in-process; ownership transfer models
  /// the subtransaction living at this site.)
  void stash_subtransaction(std::uint64_t gtid, Txn txn);

  /// Mark a stashed subtransaction prepared (force-logged): it survives a
  /// crash.  Returns false if the subtransaction is unknown (site crashed).
  bool prepare_subtransaction(std::uint64_t gtid);

  /// Completion registry: coordinators block here for "done" notices of
  /// chopped distributed transactions.  Returns false on timeout.
  bool wait_done(std::uint64_t gtid, std::chrono::milliseconds timeout);

  void crash();
  void recover();
  [[nodiscard]] bool up() const noexcept {
    return up_.load(std::memory_order_acquire);
  }

 private:
  static constexpr std::size_t kWorkers = 2;

  void handler_loop();
  void daemon_loop();
  void worker_loop();
  void handle(Message msg);
  /// Dispatch one deliverable message on `queue`: done-notice bookkeeping or
  /// an application handler job.
  void process_queue_message(const std::string& queue);

  SiteId id_;
  SimNetwork& net_;
  Database db_;
  QueueEndpoint queues_;
  obs::MetricsRegistry::CollectorId collector_id_ = 0;

  std::atomic<bool> running_{false};
  std::atomic<bool> up_{true};
  std::thread handler_thread_;
  std::thread daemon_thread_;
  std::vector<std::thread> worker_threads_;

  OrderedMutex<LockRank::kSite> mu_;  ///< rank kSite: held while stashed subtxns commit/abort (db locks inside)
  QueueHandler queue_handler_;
  std::unordered_map<std::uint64_t, Txn> subtxns_;  // volatile until prepared
  std::unordered_set<std::uint64_t> prepared_;      // force-logged gtids
  std::unordered_set<std::uint64_t> done_;          // completed gtids
  OrderedCondVar done_cv_;
  std::deque<std::function<void()>> pending_work_;
  OrderedCondVar work_cv_;
};

}  // namespace atp
