#include "engine/executor.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <deque>
#include <iomanip>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "engine/piece_runner.h"
#include "obs/metrics_registry.h"

#include "common/ordered_lock.h"

namespace atp {

std::string ExecutorReport::header() {
  std::ostringstream out;
  out << std::left << std::setw(22) << "method" << std::right  //
      << std::setw(10) << "commit"                             //
      << std::setw(9) << "rollbk"                              //
      << std::setw(9) << "resub"                               //
      << std::setw(9) << "dlock"                               //
      << std::setw(9) << "eps"                                 //
      << std::setw(11) << "tps"                                //
      << std::setw(12) << "p50(us)"                            //
      << std::setw(12) << "p95(us)"                            //
      << std::setw(12) << "p99(us)"                            //
      << std::setw(12) << "meanZ"                              //
      << std::setw(12) << "maxErr";
  return out.str();
}

std::string ExecutorReport::row() const {
  std::ostringstream out;
  out << std::left << std::setw(22) << method_name << std::right  //
      << std::setw(10) << committed                               //
      << std::setw(9) << rolled_back                              //
      << std::setw(9) << resubmissions                            //
      << std::setw(9) << deadlock_aborts                          //
      << std::setw(9) << epsilon_aborts                           //
      << std::setw(11) << std::fixed << std::setprecision(1)
      << throughput_tps                                           //
      << std::setw(12) << std::setprecision(0) << latency_us.p50  //
      << std::setw(12) << latency_us.p95                          //
      << std::setw(12) << latency_us.p99                          //
      << std::setw(12) << std::setprecision(2) << txn_fuzziness.mean  //
      << std::setw(12) << query_error.max;
  return out.str();
}

DatabaseOptions Executor::database_options(const MethodConfig& method,
                                           std::chrono::milliseconds timeout,
                                           bool record_history) {
  DatabaseOptions opts;
  opts.scheduler = method.sched;
  opts.lock_timeout = timeout;
  opts.record_history = record_history;
  return opts;
}

namespace {

/// One worker's run queue.  The owner pops batches from the front; thieves
/// pop from the back, so contention on the mutex is the only interaction
/// and it is short.  Padded so neighbouring queues never share a line.
struct alignas(64) WorkerQueue {
  mutable OrderedMutex<LockRank::kExecutorQueue> mu;  // rank kExecutorQueue: only ever one queue locked at a time
  std::deque<std::size_t> q;  // indices into the instance stream

  // Collector-facing accessor: the metrics collector must not acquire locks
  // in its own body (TH003 -- it runs under the registry lock), so the queue
  // exposes its depth the same way other components expose stats().
  [[nodiscard]] std::size_t depth() const {
    std::lock_guard lock(mu);
    return q.size();
  }
};

}  // namespace

ExecutorReport Executor::run(Database& db, const ExecutionPlan& plan,
                             const std::vector<TxnInstance>& instances,
                             const ExecutorOptions& opts) {
  assert(db.scheduler() == plan.method.sched &&
         "database scheduler must match the method");

  RunMetrics metrics;
  std::atomic<std::uint64_t> budget_violations{0};
  std::atomic<std::uint64_t> steals{0};
  Rng seeder(opts.seed);

  const std::size_t workers = std::max<std::size_t>(1, opts.workers);
  const std::size_t batch_size =
      opts.dequeue_batch > 0 ? opts.dequeue_batch : kDequeueBatch;

  // Round-robin partition keeps each worker's slice spread across the whole
  // stream (a contiguous split would serialize the workload's phases).
  std::vector<std::unique_ptr<WorkerQueue>> queues;
  queues.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    queues.push_back(std::make_unique<WorkerQueue>());
  }
  for (std::size_t i = 0; i < instances.size(); ++i) {
    queues[i % workers]->q.push_back(i);
  }

  std::vector<Rng> worker_rngs;
  worker_rngs.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) worker_rngs.push_back(seeder.split());

  // Observability: one pull collector over the run's own metrics + queues.
  // The hot loops pay nothing extra -- the collector reads the counters the
  // run maintains anyway, at snapshot time, from the snapshotting thread.
  obs::MetricsRegistry* reg = db.metrics();
  obs::MetricsRegistry::CollectorId cid = 0;
  if (reg != nullptr) {
    cid = reg->add_collector([&](obs::SnapshotBuilder& b) {
      std::size_t depth = 0;
      for (const auto& wq : queues) depth += wq->depth();
      b.gauge("exec.queue_depth", double(depth));
      b.gauge("exec.workers", double(workers));
      b.counter("exec.committed", double(metrics.committed_txns.get()));
      b.counter("exec.committed_pieces",
                double(metrics.committed_pieces.get()));
      b.counter("exec.resubmissions", double(metrics.resubmissions.get()));
      b.counter("exec.deadlock_aborts", double(metrics.aborts_deadlock.get()));
      b.counter("exec.epsilon_aborts", double(metrics.aborts_epsilon.get()));
      b.counter("exec.rollbacks", double(metrics.aborts_rollback.get()));
      b.counter("exec.steals",  // relaxed-ok: monotone stat snapshot
                double(steals.load(std::memory_order_relaxed)));
      b.histogram("exec.piece_us", metrics.piece_latency_us.summarize());
      b.histogram("exec.txn_us", metrics.txn_latency_us.summarize());
    });
  }

  Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      PieceRunner runner(db, &metrics, opts.op_delay_min_us,
                         opts.op_delay_max_us, opts.parallel_pieces,
                         opts.commit_wait);
      Rng& rng = worker_rngs[w];
      std::vector<std::size_t> batch;
      batch.reserve(batch_size);

      auto dequeue_own = [&] {
        WorkerQueue& wq = *queues[w];
        std::lock_guard lock(wq.mu);
        while (batch.size() < batch_size && !wq.q.empty()) {
          batch.push_back(wq.q.front());
          wq.q.pop_front();
        }
        return !batch.empty();
      };
      auto steal_from = [&](std::size_t victim) {
        WorkerQueue& wq = *queues[victim];
        std::lock_guard lock(wq.mu);
        // Take at most half the victim's remainder (leave it work) and at
        // most one batch, from the back -- opposite end from the owner.
        std::size_t take =
            std::min(batch_size, (wq.q.size() + 1) / 2);
        while (take-- > 0 && !wq.q.empty()) {
          batch.push_back(wq.q.back());
          wq.q.pop_back();
        }
        if (batch.empty()) return false;
        // Back-popping reversed the stolen run; restore stream order.
        std::reverse(batch.begin(), batch.end());
        steals.fetch_add(1, std::memory_order_relaxed);  // relaxed-ok: stat tally
        return true;
      };

      for (;;) {
        batch.clear();
        if (!dequeue_own()) {
          // Own queue dry: sweep victims from a random offset.  Queues only
          // drain, so one full empty sweep means the run is over.
          const std::size_t start = workers > 1 ? rng.uniform(workers) : 0;
          for (std::size_t k = 0; k < workers && batch.empty(); ++k) {
            const std::size_t victim = (start + k) % workers;
            if (victim == w) continue;
            steal_from(victim);
          }
          if (batch.empty()) break;  // everything everywhere is done
        }
        for (const std::size_t i : batch) {
          const TxnInstance& inst = instances[i];
          assert(inst.type_index < plan.types.size());
          const TxnTypePlan& tp = plan.types[inst.type_index];
          const TxnRunResult r = runner.run(tp, inst, plan.method.dist, rng);
          // Runtime check of Condition 2: a committed transaction's
          // restricted fuzziness must fit within its Limit_t (tiny float
          // tolerance).
          if (r.committed &&
              r.z_restricted > tp.type.epsilon_limit * (1 + 1e-9) + 1e-9) {
            budget_violations.fetch_add(1, std::memory_order_relaxed);  // relaxed-ok: tally read after join
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double seconds = double(wall.elapsed_us()) / 1e6;
  // The collector captures this frame's locals; detach it before they die.
  // (remove_collector returns only after any in-flight snapshot finishes.)
  if (reg != nullptr) reg->remove_collector(cid);

  ExecutorReport report;
  report.method_name = plan.method.name();
  report.committed = metrics.committed_txns.get();
  report.rolled_back = metrics.aborts_rollback.get();
  report.committed_pieces = metrics.committed_pieces.get();
  report.resubmissions = metrics.resubmissions.get();
  report.deadlock_aborts = metrics.aborts_deadlock.get();
  report.epsilon_aborts = metrics.aborts_epsilon.get();
  report.budget_violations = budget_violations.load();
  report.steals = steals.load();
  report.lock_stats = db.locks().stats();
  report.wall_seconds = seconds;
  report.throughput_tps = seconds > 0 ? double(report.committed) / seconds : 0;
  report.latency_us = metrics.txn_latency_us.summarize();
  report.piece_latency_us = metrics.piece_latency_us.summarize();
  report.txn_fuzziness = metrics.txn_fuzziness.summarize();
  report.query_error = metrics.query_error.summarize();
  return report;
}

}  // namespace atp
