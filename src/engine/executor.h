// Multi-worker executor: runs a stream of transaction instances through a
// Database under one of the paper's method configurations, and reports the
// rows the evaluation benches print (throughput, aborts, latency, realized
// inconsistency).
//
// Scheduling: each worker owns a run queue seeded with a round-robin slice
// of the instance stream.  Workers dequeue in batches from the front of
// their own queue (one mutex acquisition amortized over kDequeueBatch
// transactions) and, when empty, steal a batch from the *back* of a victim's
// queue -- the classic deque discipline: owner and thieves touch opposite
// ends, so a steal almost never contends with the owner's hot path.  Queues
// only drain (no transaction spawns another), so "every queue empty" is a
// complete termination condition and no handshake is needed.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "chop/program.h"
#include "common/metrics.h"
#include "common/status.h"
#include "engine/method.h"
#include "engine/plan.h"
#include "sched/database.h"

namespace atp {

struct ExecutorOptions {
  std::size_t workers = 4;
  std::uint64_t seed = 1;
  /// Per-transaction think time bounds (microseconds of simulated work
  /// between ops; stretches resource holding time, which is exactly what
  /// chopping attacks).  0/0 disables.
  std::uint64_t op_delay_min_us = 0;
  std::uint64_t op_delay_max_us = 0;
  /// Run independent sibling pieces on parallel threads (Figure 2's
  /// Schedule(S, ...) "for all p in S in parallel").
  bool parallel_pieces = false;
  /// Transactions a worker claims per dequeue/steal (0 = default).
  std::size_t dequeue_batch = 0;
  /// Commit durability mode for every transaction the run begins (WAL-backed
  /// databases only; ignored without a WAL).  kAsync measures the
  /// group-commit fast path: success at append, durability at the next
  /// group flush.
  CommitWait commit_wait = CommitWait::kSync;
};

struct ExecutorReport {
  std::string method_name;
  std::uint64_t committed = 0;
  std::uint64_t rolled_back = 0;       ///< programmed rollbacks taken
  std::uint64_t committed_pieces = 0;
  std::uint64_t resubmissions = 0;     ///< piece re-runs by the handler
  std::uint64_t deadlock_aborts = 0;
  std::uint64_t epsilon_aborts = 0;
  std::uint64_t budget_violations = 0;  ///< committed txns with Z_t > Limit_t
  std::uint64_t steals = 0;             ///< batches taken from another worker
  LockStats lock_stats;
  double wall_seconds = 0;
  double throughput_tps = 0;
  StatSummary latency_us;
  StatSummary piece_latency_us;
  StatSummary txn_fuzziness;  ///< restricted-piece Z_t of committed txns
  StatSummary query_error;    ///< |observed - ground truth| for audit queries

  /// One aligned table row (pair with print_header()).
  [[nodiscard]] std::string row() const;
  [[nodiscard]] static std::string header();
};

class Executor {
 public:
  /// Default batch size for dequeue and steal.  Small enough that stealing
  /// rebalances a skewed tail, large enough to amortize queue mutexes.
  static constexpr std::size_t kDequeueBatch = 8;

  /// Run all `instances` (per-worker run queues with batched dequeue and
  /// work stealing) with `workers` threads.  `db`'s scheduler must match
  /// `plan.method.sched`; data for the instances' keys must be loaded.
  [[nodiscard]] static ExecutorReport run(Database& db,
                                          const ExecutionPlan& plan,
                                          const std::vector<TxnInstance>& instances,
                                          const ExecutorOptions& opts = {});

  /// Convenience: DatabaseOptions matching a method.
  [[nodiscard]] static DatabaseOptions database_options(
      const MethodConfig& method,
      std::chrono::milliseconds lock_timeout = std::chrono::milliseconds(2000),
      bool record_history = false);
};

}  // namespace atp
