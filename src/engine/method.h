// The paper's method matrix (Table 1).
//
//                      On-line
//   Off-line           CC                     DC
//   ------------------------------------------------------------
//   no chopping        SR baseline            DC baseline
//   SR-chopping        SR (Shasha)            ESR^1  = Method 1
//   ESR-chopping       ESR^2 = Method 2       ESR^3  = Method 3
#pragma once

#include <cstdint>
#include <string>

#include "sched/database.h"

namespace atp {

enum class ChopMode : std::uint8_t { None, SR, ESR };

inline const char* to_string(ChopMode m) noexcept {
  switch (m) {
    case ChopMode::None: return "none";
    case ChopMode::SR: return "SR-chop";
    case ChopMode::ESR: return "ESR-chop";
  }
  return "?";
}

enum class DistPolicy : std::uint8_t { Static, Dynamic };

inline const char* to_string(DistPolicy p) noexcept {
  return p == DistPolicy::Static ? "static" : "dynamic";
}

struct MethodConfig {
  ChopMode chop = ChopMode::None;
  SchedulerKind sched = SchedulerKind::CC;
  DistPolicy dist = DistPolicy::Static;  ///< eps-spec distribution (DC only)

  [[nodiscard]] static MethodConfig baseline_sr() noexcept {
    return {ChopMode::None, SchedulerKind::CC, DistPolicy::Static};
  }
  [[nodiscard]] static MethodConfig baseline_dc() noexcept {
    return {ChopMode::None, SchedulerKind::DC, DistPolicy::Static};
  }
  /// Optimistic divergence control ablation: lock-free queries validated at
  /// commit, 2PL updates.
  [[nodiscard]] static MethodConfig baseline_odc() noexcept {
    return {ChopMode::None, SchedulerKind::ODC, DistPolicy::Static};
  }
  /// Shasha et al.: SR-chopping under plain concurrency control.
  [[nodiscard]] static MethodConfig sr_chop_cc() noexcept {
    return {ChopMode::SR, SchedulerKind::CC, DistPolicy::Static};
  }
  /// Method 1: SR-chopping under divergence control (ESR^1).
  [[nodiscard]] static MethodConfig method1(
      DistPolicy d = DistPolicy::Static) noexcept {
    return {ChopMode::SR, SchedulerKind::DC, d};
  }
  /// Method 2: ESR-chopping under concurrency control (ESR^2).
  [[nodiscard]] static MethodConfig method2() noexcept {
    return {ChopMode::ESR, SchedulerKind::CC, DistPolicy::Static};
  }
  /// Method 3: ESR-chopping under divergence control (ESR^3).
  [[nodiscard]] static MethodConfig method3(
      DistPolicy d = DistPolicy::Static) noexcept {
    return {ChopMode::ESR, SchedulerKind::DC, d};
  }

  [[nodiscard]] std::string name() const {
    std::string s = to_string(chop);
    s += "+";
    s += to_string(sched);
    if (sched == SchedulerKind::DC && chop != ChopMode::None) {
      s += "/";
      s += to_string(dist);
    }
    return s;
  }
};

}  // namespace atp
