#include "engine/piece_runner.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/stopwatch.h"

#include "common/ordered_lock.h"

namespace atp {
namespace {

[[nodiscard]] bool rollback_point_after(const TxnProgram& type,
                                        std::size_t op_index) noexcept {
  return std::find(type.rollback_after.begin(), type.rollback_after.end(),
                   op_index) != type.rollback_after.end();
}

}  // namespace

struct PieceRunner::PieceOutcome {
  bool rolled_back = false;
  Value z_p = 0;
  Value reads = 0;
  std::uint64_t resubmissions = 0;
};

// Run piece `p` as an independent transaction, resubmitting until it commits
// (or takes the programmed rollback, piece 1 only).
PieceRunner::PieceOutcome PieceRunner::run_one_piece(
    const TxnTypePlan& plan, const TxnInstance& instance, std::size_t p,
    Value limit, Rng& rng, TxnId original) {
  PieceOutcome out;
  const auto [begin, end] = plan.piece_ranges[p];
  const TxnKind kind = plan.type.kind;
  Tracer* const tracer = db_.tracer();
  const SiteId site = db_.site_id();

  for (std::uint64_t attempt = 0;; ++attempt) {
    if (attempt > 0) {
      ++out.resubmissions;
      if (metrics_) metrics_->resubmissions.add();
      Tracer::emit(tracer, TraceKind::PieceResubmit, site, kInvalidTxn, p, 0,
                   0, attempt, original);
      if (attempt >= kMaxResubmit) {
        // Pathological livelock guard; callers treat this as a test bug.
        assert(false && "piece resubmission cap reached");
        return out;
      }
      // Jittered backoff so colliding retries de-synchronize.
      const auto backoff = std::chrono::microseconds(
          50 + rng.uniform(200) * std::min<std::uint64_t>(attempt, 8));
      std::this_thread::sleep_for(backoff);
    }

    Stopwatch piece_clock;
    Txn txn = db_.begin(kind, spec_for(kind, limit), kInvalidTxn,
                        TxnOptions{commit_wait_});
    Tracer::emit(tracer, TraceKind::PieceStart, site, txn.id(), p, limit, 0,
                 attempt, original);
    Status failure = Status::Ok();
    Value piece_reads = 0;
    bool programmed_rollback = false;

    for (std::size_t i = begin; i < end; ++i) {
      if (op_delay_max_us_ > 0 && i > begin) {
        std::this_thread::sleep_for(std::chrono::microseconds(
            op_delay_min_us_ +
            rng.uniform(op_delay_max_us_ - op_delay_min_us_ + 1)));
      }
      const Access& op = instance.ops[i];
      if (op.type == AccessType::Read) {
        Result<Value> v = txn.read(op.item);
        if (!v.ok()) {
          failure = v.status();
          break;
        }
        piece_reads += v.value();
      } else if (op.type == AccessType::Add) {
        Status s = txn.add(op.item, op.delta);
        if (!s.ok()) {
          failure = s;
          break;
        }
      } else {
        Status s = txn.write(op.item, op.delta);
        if (!s.ok()) {
          failure = s;
          break;
        }
      }
      // Programmed rollback statements live in piece 1 (rollback-safety);
      // taking one abandons the whole original transaction, no retries.
      if (p == 0 && instance.take_rollback &&
          rollback_point_after(plan.type, i)) {
        programmed_rollback = true;
        break;
      }
    }

    if (programmed_rollback) {
      txn.abort();
      if (metrics_) metrics_->aborts_rollback.add();
      out.rolled_back = true;
      return out;
    }

    if (failure.ok()) {
      Status c = txn.commit();
      if (!c.ok()) {
        // Optimistic divergence control may refuse at validation time;
        // treat like any other abort and resubmit.
        assert(c.is_abort());
        if (metrics_ && c.code() == ErrorCode::kEpsilonExceeded) {
          metrics_->aborts_epsilon.add();
        }
        txn.abort();  // no-op if commit() already aborted
        continue;
      }
      out.z_p = txn.fuzziness();
      out.reads = piece_reads;
      Tracer::emit(tracer, TraceKind::PieceFinish, site, txn.id(), p, out.z_p,
                   0, attempt, original);
      if (metrics_) {
        metrics_->committed_pieces.add();
        metrics_->piece_latency_us.record(double(piece_clock.elapsed_us()));
      }
      return out;
    }

    txn.abort();
    if (metrics_) {
      switch (failure.code()) {
        case ErrorCode::kDeadlock:
          metrics_->aborts_deadlock.add();
          break;
        case ErrorCode::kEpsilonExceeded:
          metrics_->aborts_epsilon.add();
          break;
        default:
          break;  // timeouts counted via lock stats
      }
    }
    // Lock-conflict/deadlock/epsilon aborts: resubmit until commit (the
    // paper's process-handler behaviour).
  }
}

TxnRunResult PieceRunner::run(const TxnTypePlan& plan,
                              const TxnInstance& instance, DistPolicy policy,
                              Rng& rng) {
  assert(instance.ops.size() == plan.type.ops.size());
  TxnRunResult result;
  Stopwatch txn_clock;

  // The original transaction never runs itself, but the trace needs a stable
  // id to hang its pieces off (and the SR certifier to merge them under).
  // Allocate one only when tracing so id sequences are unchanged otherwise.
  Tracer* const tracer = db_.tracer();
  const SiteId site = db_.site_id();
  const TxnId original = tracer ? db_.registry().allocate_id() : kInvalidTxn;
  Tracer::emit(tracer, TraceKind::RunBegin, site, original, 0,
               double(plan.piece_ranges.size()));

  std::unique_ptr<LimitDistributor> distributor;
  if (policy == DistPolicy::Dynamic) {
    distributor = std::make_unique<DynamicDistribution>(plan.plan_info);
  } else {
    distributor = std::make_unique<StaticDistribution>(plan.plan_info);
  }

  // Shared accumulation (the parallel scheduler touches these from sibling
  // threads; the distributor is not internally thread-safe either).
  OrderedMutex<LockRank::kPieceAccount> mu;  // rank kPieceAccount
  auto account = [&](std::size_t p, const PieceOutcome& out) {
    std::lock_guard lock(mu);
    distributor->report_committed(p, out.z_p);
    result.z_total += out.z_p;
    if (plan.restricted[p]) result.z_restricted += out.z_p;
    result.observed_result += out.reads;
    result.resubmissions += out.resubmissions;
  };
  auto limit_of = [&](std::size_t p) {
    std::lock_guard lock(mu);
    return distributor->limit_for(p);
  };

  // Piece 1 first: it alone may take the programmed rollback, and nothing
  // else starts until it commits (rollback-safety).
  {
    const PieceOutcome first =
        run_one_piece(plan, instance, 0, limit_of(0), rng, original);
    if (first.rolled_back) {
      result.rolled_back = true;
      result.resubmissions += first.resubmissions;
      result.latency_us = double(txn_clock.elapsed_us());
      Tracer::emit(tracer, TraceKind::RunRollback, site, original);
      return result;
    }
    account(0, first);
  }

  const auto& children = plan.plan_info.children;
  if (!parallel_pieces_) {
    // Sequential topological order: parents always precede children in
    // piece index order (the dependency derivation guarantees parent < p).
    for (std::size_t p = 1; p < plan.piece_ranges.size(); ++p) {
      const PieceOutcome out =
          run_one_piece(plan, instance, p, limit_of(p), rng, original);
      account(p, out);
    }
  } else {
    // Figure 2's Schedule(): when a piece commits, its dependents run in
    // parallel.  A chain continues on the current thread; fan-out spawns.
    const std::uint64_t base_seed = rng.next();
    std::function<void(std::size_t)> exec = [&](std::size_t p) {
      Rng piece_rng(base_seed ^ (0x9e3779b97f4a7c15ULL * (p + 1)));
      const PieceOutcome out =
          run_one_piece(plan, instance, p, limit_of(p), piece_rng, original);
      account(p, out);
      const auto& kids = children[p];
      if (kids.size() == 1) {
        exec(kids[0]);
      } else if (!kids.empty()) {
        std::vector<std::thread> threads;
        threads.reserve(kids.size());
        for (std::size_t k : kids) threads.emplace_back(exec, k);
        for (auto& t : threads) t.join();
      }
    };
    const auto& roots = children[0];
    if (roots.size() == 1) {
      exec(roots[0]);
    } else if (!roots.empty()) {
      std::vector<std::thread> threads;
      threads.reserve(roots.size());
      for (std::size_t k : roots) threads.emplace_back(exec, k);
      for (auto& t : threads) t.join();
    }
  }

  result.committed = true;
  result.latency_us = double(txn_clock.elapsed_us());
  Tracer::emit(tracer, TraceKind::RunCommit, site, original, 0,
               result.z_restricted, result.z_total);
  if (metrics_) {
    metrics_->committed_txns.add();
    metrics_->txn_latency_us.record(result.latency_us);
    metrics_->txn_fuzziness.record(result.z_restricted);
    if (instance.has_expected_result) {
      metrics_->query_error.record(
          distance(result.observed_result, instance.expected_result));
    }
  }
  return result;
}

}  // namespace atp
