// Runs one original transaction as its chopped pieces (Sections 2, 4).
//
// Pieces execute in dependency order, each as an independent ET against the
// Database.  The chopping contract is enforced here:
//
//   * piece 1 may take the programmed rollback -> the original transaction
//     is abandoned and no later piece runs (rollback-safety);
//   * any piece aborted for a lock conflict / deadlock / fuzziness overrun
//     is resubmitted (with jittered backoff) until it commits -- once piece 1
//     commits, the original transaction MUST eventually commit;
//   * the eps-spec each piece runs with comes from the LimitDistributor
//     (static even split or Figure 2's dynamic leftover propagation), and a
//     committed piece reports its measured Z_p back so leftovers flow.
//
// The runner also separates the two fuzziness totals the paper cares about:
// the restricted-piece total (what Condition 3 actually bounds by Limit_t)
// and the raw total over all pieces (which includes the divergence control's
// over-estimation on unrestricted pieces -- Section 2.2's point).
#pragma once

#include <cstdint>

#include "chop/program.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "engine/plan.h"
#include "sched/database.h"

namespace atp {

struct TxnRunResult {
  bool committed = false;     ///< all pieces committed
  bool rolled_back = false;   ///< programmed rollback taken in piece 1
  Value z_restricted = 0;     ///< sum of Z_p over restricted pieces
  Value z_total = 0;          ///< sum of Z_p over all pieces (over-estimate)
  Value observed_result = 0;  ///< sum of values read (query ETs)
  std::uint64_t resubmissions = 0;
  double latency_us = 0;
};

class PieceRunner {
 public:
  /// `metrics` may be nullptr (tests that only want the return value).
  /// Non-zero op delays insert jittered think time between operations,
  /// stretching lock/resource holding time (what chopping attacks).
  /// `parallel_pieces` enables Figure 2's Schedule(): dependent pieces with
  /// a common parent run on sibling threads instead of sequentially.
  PieceRunner(Database& db, RunMetrics* metrics,
              std::uint64_t op_delay_min_us = 0,
              std::uint64_t op_delay_max_us = 0,
              bool parallel_pieces = false,
              CommitWait commit_wait = CommitWait::kSync) noexcept
      : db_(db),
        metrics_(metrics),
        op_delay_min_us_(op_delay_min_us),
        op_delay_max_us_(op_delay_max_us),
        parallel_pieces_(parallel_pieces),
        commit_wait_(commit_wait) {}

  /// Execute `instance` according to `plan` (its type's chopping) under the
  /// given distribution policy.  Blocks until the transaction either fully
  /// commits or takes its programmed rollback.
  TxnRunResult run(const TxnTypePlan& plan, const TxnInstance& instance,
                   DistPolicy policy, Rng& rng);

  /// Cap on per-piece resubmissions before giving up (defends tests against
  /// livelock; the paper's process handler retries forever).
  static constexpr std::uint64_t kMaxResubmit = 100000;

 private:
  struct PieceOutcome;

  /// `original`: trace id of the original transaction the piece belongs to
  /// (kInvalidTxn when tracing is off).
  PieceOutcome run_one_piece(const TxnTypePlan& plan,
                             const TxnInstance& instance, std::size_t piece,
                             Value limit, Rng& rng, TxnId original);

  Database& db_;
  RunMetrics* metrics_;
  std::uint64_t op_delay_min_us_ = 0;
  std::uint64_t op_delay_max_us_ = 0;
  bool parallel_pieces_ = false;
  CommitWait commit_wait_ = CommitWait::kSync;
};

}  // namespace atp
