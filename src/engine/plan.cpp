#include "engine/plan.h"

#include <algorithm>
#include <cassert>

namespace atp {
namespace {

// Derive DG(CHOP(t)) from the program text, as the paper assumes: piece j
// depends on the latest earlier piece touching a common data item (the
// dataflow proxy -- "p2 depends on p1" in the transfer example because the
// amount flows through).  Pieces sharing nothing hang directly off piece 1,
// which must commit first anyway (rollback-safety), so independent siblings
// may be scheduled in parallel and Figure 2's fan-out split applies.
std::vector<std::size_t> derive_dependency_parents(
    const TxnProgram& program,
    const std::vector<std::pair<std::size_t, std::size_t>>& piece_ranges) {
  const std::size_t k = piece_ranges.size();
  std::vector<std::size_t> parent(k, 0);
  auto items_of = [&](std::size_t p) {
    std::vector<Key> items;
    for (std::size_t i = piece_ranges[p].first; i < piece_ranges[p].second;
         ++i) {
      items.push_back(program.ops[i].item);
    }
    return items;
  };
  for (std::size_t j = 1; j < k; ++j) {
    const auto ij = items_of(j);
    for (std::size_t i = j; i-- > 1;) {  // latest earlier piece, piece 0 last
      const auto ii = items_of(i);
      bool shared = false;
      for (Key a : ij) {
        for (Key b : ii) {
          if (a == b) shared = true;
        }
      }
      if (shared) {
        parent[j] = i;
        break;
      }
    }
  }
  return parent;
}

// Intersect the piece-boundary sets of two contiguous partitions of the same
// op sequence.  The result is a common coarsening -- and coarsening a valid
// chopping (merging pieces) can only remove S edges / SC-cycles, never add
// them, so validity is preserved.
std::vector<std::size_t> intersect_boundaries(
    const std::vector<std::size_t>& a, const std::vector<std::size_t>& b) {
  std::vector<std::size_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  assert(!out.empty() && out.front() == 0);
  return out;
}

}  // namespace

Result<ExecutionPlan> ExecutionPlan::build(std::vector<TxnProgram> type_stream,
                                           MethodConfig method) {
  const std::size_t n = type_stream.size();

  // Two concurrent *instances* of the same type conflict wherever the type
  // conflicts with itself, which a single-copy stream cannot express.  We
  // analyze a doubled stream (Shasha's standard device) and then symmetrize:
  // each type's final chopping is the common coarsening of its two copies'
  // choppings, which keeps the doubled-stream validity.
  std::vector<TxnProgram> doubled = type_stream;
  doubled.insert(doubled.end(), type_stream.begin(), type_stream.end());

  Chopping raw = [&] {
    switch (method.chop) {
      case ChopMode::None: return Chopping::unchopped(doubled);
      case ChopMode::SR: return finest_sr_chopping(doubled);
      case ChopMode::ESR: return finest_esr_chopping(doubled);
    }
    return Chopping::unchopped(doubled);
  }();

  std::vector<std::vector<std::size_t>> starts;
  starts.reserve(2 * n);
  for (std::size_t t = 0; t < n; ++t) {
    starts.push_back(
        intersect_boundaries(raw.starts()[t], raw.starts()[t + n]));
  }
  for (std::size_t t = 0; t < n; ++t) starts.push_back(starts[t]);
  Chopping chopping(std::move(starts));

  // Validate what the search + symmetrization promise (cheap insurance).
  if (method.chop == ChopMode::SR) {
    if (Status s = validate_sr_chopping(doubled, chopping); !s.ok()) return s;
  } else if (method.chop == ChopMode::ESR) {
    if (Status s = validate_esr_chopping(doubled, chopping); !s.ok()) return s;
  }

  const PieceGraph graph = build_chopping_graph(doubled, chopping);

  ExecutionPlan plan;
  plan.method = method;
  plan.types.reserve(n);
  for (std::size_t t = 0; t < n; ++t) {
    TxnTypePlan tp;
    tp.type = type_stream[t];
    const std::size_t k = chopping.piece_count(t);
    tp.piece_ranges.reserve(k);
    tp.restricted.reserve(k);
    for (std::size_t p = 0; p < k; ++p) {
      tp.piece_ranges.push_back(chopping.piece_range(t, p, tp.type.ops.size()));
      const std::size_t v = graph.vertex_of(t, p);
      assert(v != PieceGraph::npos);
      tp.restricted.push_back(graph.restricted(v));
    }
    tp.z_is = graph.inter_sibling_fuzziness(t);

    // Eq. 6: under divergence control (pessimistic or optimistic), the
    // budget handed to the scheduler must reserve Z^is for the fuzziness the
    // ESR-chopping itself admits.
    Value dc_limit = tp.type.epsilon_limit;
    if (method.sched != SchedulerKind::CC && method.chop == ChopMode::ESR) {
      dc_limit -= tp.z_is;
      if (dc_limit < 0) dc_limit = 0;  // Def. 1 cond 3 guarantees >= 0
    }
    tp.plan_info = ChopPlanInfo::tree(
        tp.restricted, derive_dependency_parents(tp.type, tp.piece_ranges),
        tp.type.kind, dc_limit);
    plan.types.push_back(std::move(tp));
  }
  return plan;
}

std::size_t ExecutionPlan::total_pieces() const {
  std::size_t n = 0;
  for (const auto& t : types) n += t.piece_ranges.size();
  return n;
}

}  // namespace atp
