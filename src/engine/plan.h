// Off-line execution plan: chopping + restriction marks + eps-spec budgets
// for a job stream of transaction *types*.
//
// Built once per (type set, method); instances executed at runtime reuse the
// per-type piece boundaries.  This mirrors the paper's workflow: the
// administrator chops the known job stream off-line, then the unmodified TP
// system runs the pieces.
#pragma once

#include <vector>

#include "chop/analyzer.h"
#include "chop/chopping.h"
#include "chop/program.h"
#include "common/status.h"
#include "engine/method.h"
#include "limits/distribution.h"

namespace atp {

struct TxnTypePlan {
  TxnProgram type;
  /// [begin, end) op ranges of the pieces.
  std::vector<std::pair<std::size_t, std::size_t>> piece_ranges;
  /// Per piece: associated with a C-cycle (gets a finite share of Limit_t)?
  std::vector<bool> restricted;
  /// Inter-sibling fuzziness Z^is of this type's chopping (0 for SR chops).
  Value z_is = 0;
  /// Distribution input; limit_total is Limit_t, reduced to Limit_t - Z^is
  /// under Method 3 (Eq. 6).
  ChopPlanInfo plan_info;
};

struct ExecutionPlan {
  MethodConfig method;
  std::vector<TxnTypePlan> types;

  /// Chop the type stream per the method's ChopMode, mark restricted pieces,
  /// compute Z^is, and budget the eps-specs.  Fails if an ESR chop cannot
  /// satisfy Definition 1 (should not happen: the finest-chopping searches
  /// return validated choppings).
  [[nodiscard]] static Result<ExecutionPlan> build(
      std::vector<TxnProgram> type_stream, MethodConfig method);

  /// Total pieces across all types (diagnostics).
  [[nodiscard]] std::size_t total_pieces() const;
};

}  // namespace atp
