#include "fault/fault.h"

#include <functional>

#include "fault/retry.h"

namespace atp {

namespace {

/// Hash → uniform double in [0, 1).
double unit(std::uint64_t h) noexcept {
  return double(h >> 11) / double(1ULL << 53);
}

/// Stable identity of a message for fault purposes: who, to whom, what.
/// Message::id is deliberately excluded -- it differs per transmission, and
/// retransmissions of one logical message must be separate attempts of ONE
/// identity, not fresh identities.
std::uint64_t message_identity(std::uint64_t seed, const Message& m) {
  std::uint64_t h = seed;
  h = fault_mix64(h ^ (std::uint64_t(m.from) * 0x9e3779b97f4a7c15ULL));
  h = fault_mix64(h ^ (std::uint64_t(m.to) * 0xc2b2ae3d27d4eb4fULL));
  h = fault_mix64(h ^ m.gtid);
  h = fault_mix64(h ^ std::hash<std::string>{}(m.type));
  h = fault_mix64(h ^ m.correlation);
  return h;
}

std::uint64_t event_digest(const FaultEvent& e) {
  std::uint64_t h = fault_mix64(std::uint64_t(e.kind) * 0xff51afd7ed558ccdULL);
  h = fault_mix64(h ^ (std::uint64_t(e.from) << 32) ^ std::uint64_t(e.to));
  h = fault_mix64(h ^ e.gtid);
  h = fault_mix64(h ^ e.attempt);
  h = fault_mix64(h ^ std::uint64_t(e.delay_us));
  h = fault_mix64(h ^ std::hash<std::string>{}(e.msg_type));
  return h;
}

}  // namespace

std::string FaultEvent::describe() const {
  std::string out = "#" + std::to_string(seq) + " " + to_string(kind);
  out += " site " + std::to_string(from);
  if (kind == FaultKind::NetDrop || kind == FaultKind::NetDuplicate ||
      kind == FaultKind::NetDelay) {
    out += "->" + std::to_string(to) + " " + msg_type + " gtid " +
           std::to_string(gtid) + " attempt " + std::to_string(attempt);
    if (delay_us > 0) out += " +" + std::to_string(delay_us) + "us";
  }
  return out;
}

NetFault FaultInjector::on_send(const Message& msg) {
  NetFault fault;
  const std::uint64_t identity = message_identity(seed_, msg);
  std::uint64_t attempt;
  {
    std::lock_guard lock(mu_);
    attempt = send_attempts_[identity]++;
  }
  const std::uint64_t h = fault_mix64(identity ^ (attempt * 0xd1342543de82ef95ULL));
  // Three independent draws from one hash via distinct salts.
  fault.drop = unit(fault_mix64(h ^ 0x1111)) < spec_.drop;
  fault.duplicate = !fault.drop && unit(fault_mix64(h ^ 0x2222)) < spec_.duplicate;
  const bool delayed =
      !fault.drop && spec_.max_extra_delay.count() > 0 &&
      unit(fault_mix64(h ^ 0x3333)) < spec_.delay;
  if (delayed) {
    fault.extra_delay = std::chrono::microseconds(std::int64_t(
        unit(fault_mix64(h ^ 0x4444)) * double(spec_.max_extra_delay.count())));
  }

  if (fault.drop) {
    record({0, FaultKind::NetDrop, msg.from, msg.to, msg.gtid, attempt, 0,
            msg.type});
  }
  if (fault.duplicate) {
    record({0, FaultKind::NetDuplicate, msg.from, msg.to, msg.gtid, attempt, 0,
            msg.type});
  }
  if (delayed) {
    record({0, FaultKind::NetDelay, msg.from, msg.to, msg.gtid, attempt,
            fault.extra_delay.count(), msg.type});
  }
  return fault;
}

bool FaultInjector::fsync_fails(SiteId site) {
  if (spec_.fsync_fail <= 0) return false;
  std::uint64_t attempt;
  std::uint32_t consecutive;
  {
    std::lock_guard lock(mu_);
    attempt = fsync_attempts_[site]++;
    consecutive = fsync_consecutive_[site];
  }
  const std::uint64_t h = fault_mix64(
      seed_ ^ fault_mix64(std::uint64_t(site) * 0xacd5ad43274593b9ULL) ^
      (attempt * 0x6a09e667f3bcc909ULL));
  const bool fail = consecutive < spec_.max_consecutive_fsync_fails &&
                    unit(h) < spec_.fsync_fail;
  {
    std::lock_guard lock(mu_);
    fsync_consecutive_[site] = fail ? consecutive + 1 : 0;
  }
  if (fail) {
    record({0, FaultKind::FsyncFail, site, 0, 0, attempt, 0, {}});
  }
  return fail;
}

void FaultInjector::note_crash(SiteId site) {
  record({0, FaultKind::SiteCrash, site, 0, 0, 0, 0, {}});
}

void FaultInjector::note_recover(SiteId site) {
  record({0, FaultKind::SiteRecover, site, 0, 0, 0, 0, {}});
}

std::chrono::milliseconds FaultInjector::storm_up_for(
    SiteId site, std::uint64_t cycle) const {
  const auto lo = spec_.storm_min_up.count();
  const auto hi = spec_.storm_max_up.count();
  const std::uint64_t h = fault_mix64(
      seed_ ^ fault_mix64(std::uint64_t(site) + 0x5151) ^ (cycle * 2 + 0));
  return std::chrono::milliseconds(
      lo + std::int64_t(unit(h) * double(std::max<std::int64_t>(1, hi - lo))));
}

std::chrono::milliseconds FaultInjector::storm_down_for(
    SiteId site, std::uint64_t cycle) const {
  const auto lo = spec_.storm_min_down.count();
  const auto hi = spec_.storm_max_down.count();
  const std::uint64_t h = fault_mix64(
      seed_ ^ fault_mix64(std::uint64_t(site) + 0x5151) ^ (cycle * 2 + 1));
  return std::chrono::milliseconds(
      lo + std::int64_t(unit(h) * double(std::max<std::int64_t>(1, hi - lo))));
}

std::vector<FaultEvent> FaultInjector::trace() const {
  std::lock_guard lock(mu_);
  return trace_;
}

std::uint64_t FaultInjector::fingerprint() const {
  std::lock_guard lock(mu_);
  // XOR of per-event digests: insensitive to record order, so concurrent
  // runs that injected the same fault multiset agree.
  std::uint64_t fp = 0xa0761d6478bd642fULL;
  for (const FaultEvent& e : trace_) fp ^= event_digest(e);
  return fp;
}

void FaultInjector::attach_metrics(obs::MetricsRegistry* reg) {
  if (reg == nullptr) return;
  ctr_drop_ = &reg->counter("fault.net.dropped");
  ctr_dup_ = &reg->counter("fault.net.duplicated");
  ctr_delay_ = &reg->counter("fault.net.delayed");
  ctr_fsync_ = &reg->counter("fault.wal.fsync_failed");
  ctr_crash_ = &reg->counter("fault.site.crashes");
  ctr_recover_ = &reg->counter("fault.site.recoveries");
}

void FaultInjector::record(FaultEvent ev) {
  obs::ShardedCounter* ctr = nullptr;
  switch (ev.kind) {
    case FaultKind::NetDrop: ctr = ctr_drop_; break;
    case FaultKind::NetDuplicate: ctr = ctr_dup_; break;
    case FaultKind::NetDelay: ctr = ctr_delay_; break;
    case FaultKind::FsyncFail: ctr = ctr_fsync_; break;
    case FaultKind::SiteCrash: ctr = ctr_crash_; break;
    case FaultKind::SiteRecover: ctr = ctr_recover_; break;
  }
  if (ctr != nullptr) ctr->add();
  std::lock_guard lock(mu_);
  ev.seq = next_seq_++;
  trace_.push_back(std::move(ev));
}

FaultSchedule FaultSchedule::named(const std::string& name) {
  FaultSchedule s;
  s.name = name;
  if (name == "drop") {
    // Pure message loss: retransmission paths carry the run.
    s.spec.drop = 0.25;
  } else if (name == "duplicate_reorder") {
    // Every dedupe and correlation path under stress: copies with fresh
    // ids, plus delays long enough to overtake several later sends.
    s.spec.duplicate = 0.30;
    s.spec.delay = 0.30;
    s.spec.max_extra_delay = std::chrono::microseconds(4000);
  } else if (name == "crash_storm") {
    // Sites flap while traffic flows; a little loss keeps timing honest.
    s.spec.crash_storm = true;
    s.spec.drop = 0.05;
  } else if (name == "torn_wal_tail") {
    // Crash storm plus WAL tail loss and transient fsync failures: the
    // recovery path must rebuild consistent state from the durable prefix.
    s.spec.crash_storm = true;
    s.spec.torn_wal_tail = true;
    s.spec.fsync_fail = 0.20;
    s.spec.storm_min_up = std::chrono::milliseconds(15);
    s.spec.storm_max_up = std::chrono::milliseconds(60);
  } else {
    s.name = "none";
  }
  return s;
}

std::vector<std::string> FaultSchedule::known_names() {
  return {"drop", "duplicate_reorder", "crash_storm", "torn_wal_tail"};
}

}  // namespace atp
