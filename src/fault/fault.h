// Deterministic fault injection (the chaos layer under chaos_test).
//
// Exercising the paper's correctness story needs faults on demand: Theorem
// 1's rollback-safety ("once the first piece commits, later pieces are
// retried until they commit, never rolled back") is only testable when
// messages are lost, duplicated and reordered, sites crash mid-chain, and
// the WAL tears at the un-fsynced tail.  This module injects exactly those
// faults, reproducibly:
//
//   * every decision is a PURE FUNCTION of (seed, fault identity, attempt
//     number) -- no shared RNG stream -- so thread interleavings cannot
//     perturb which transmission of which message gets which fate, and a
//     rerun with the same seed injects the identical fault set;
//   * every decision is recorded in a fault trace (and counted through the
//     obs registry as fault.* when attached), so a failing chaos run prints
//     what was injected and the seed reproduces it.
//
// Hook points: SimNetwork::send consults on_send() for drop / duplicate /
// extra-delay verdicts; LogDevice::fsync consults fsync_fails(); the chaos
// harness's crash-storm driver reports crash/recover transitions through
// note_crash()/note_recover() so they land in the same trace.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "net/message.h"
#include "obs/metrics_registry.h"

#include "common/ordered_lock.h"

namespace atp {

/// What to inject, with what probability.  All probabilities independent.
struct FaultSpec {
  double drop = 0;       ///< P(message vanishes in flight)
  double duplicate = 0;  ///< P(message delivered twice, fresh id on the copy)
  double delay = 0;      ///< P(message held back by an extra random delay)
  std::chrono::microseconds max_extra_delay{0};  ///< cap for `delay` holds
  double fsync_fail = 0;  ///< P(one fsync attempt fails transiently)
  /// A real device recovers eventually; force success after this many
  /// consecutive failures per log so retry loops provably terminate.
  std::uint32_t max_consecutive_fsync_fails = 8;

  // Crash-storm shape (consumed by the chaos harness, not SimNetwork).
  bool crash_storm = false;
  std::chrono::milliseconds storm_min_up{10}, storm_max_up{45};
  std::chrono::milliseconds storm_min_down{5}, storm_max_down{30};
  /// Tear the crashed site's WAL back to its durable LSN on every crash
  /// (models losing the un-fsynced tail of the log with the process).
  bool torn_wal_tail = false;
};

enum class FaultKind : std::uint8_t {
  NetDrop,
  NetDuplicate,
  NetDelay,
  FsyncFail,
  SiteCrash,
  SiteRecover,
};

[[nodiscard]] inline const char* to_string(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::NetDrop: return "net.drop";
    case FaultKind::NetDuplicate: return "net.duplicate";
    case FaultKind::NetDelay: return "net.delay";
    case FaultKind::FsyncFail: return "wal.fsync_fail";
    case FaultKind::SiteCrash: return "site.crash";
    case FaultKind::SiteRecover: return "site.recover";
  }
  return "?";
}

/// One injected fault, as recorded in the trace.
struct FaultEvent {
  std::uint64_t seq = 0;  ///< record order (monotone per injector)
  FaultKind kind = FaultKind::NetDrop;
  SiteId from = 0;            ///< sender / crashing site / fsyncing site
  SiteId to = 0;              ///< receiver (network faults only)
  std::uint64_t gtid = 0;     ///< the message's gtid (network faults)
  std::uint64_t attempt = 0;  ///< which transmission/fsync of this identity
  std::int64_t delay_us = 0;  ///< extra delay injected (NetDelay only)
  std::string msg_type;       ///< message type (network faults)

  [[nodiscard]] std::string describe() const;
};

/// Verdict for one network send.
struct NetFault {
  bool drop = false;
  bool duplicate = false;
  std::chrono::microseconds extra_delay{0};
};

class FaultInjector {
 public:
  FaultInjector(std::uint64_t seed, FaultSpec spec)
      : seed_(seed), spec_(spec) {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Decide the fate of one transmission.  The decision keys on the
  /// message's stable identity (from, to, type, gtid) plus how many times
  /// that identity has been sent, NOT on global call order: the k-th
  /// retransmission of a given message meets the same fault in every run.
  [[nodiscard]] NetFault on_send(const Message& msg);

  /// Decide whether this fsync attempt of `site`'s log fails (transient).
  [[nodiscard]] bool fsync_fails(SiteId site);

  /// Crash-storm bookkeeping: record the transition in the fault trace.
  void note_crash(SiteId site);
  void note_recover(SiteId site);

  /// Deterministic storm dwell times: how long `site` stays up before its
  /// `cycle`-th crash, and down after it.  Pure in (seed, site, cycle).
  [[nodiscard]] std::chrono::milliseconds storm_up_for(SiteId site,
                                                       std::uint64_t cycle) const;
  [[nodiscard]] std::chrono::milliseconds storm_down_for(
      SiteId site, std::uint64_t cycle) const;

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] const FaultSpec& spec() const noexcept { return spec_; }

  /// Everything injected so far, in record order.
  [[nodiscard]] std::vector<FaultEvent> trace() const;

  /// Order-independent digest of the injected fault multiset: two runs that
  /// injected the same faults (regardless of thread interleaving) agree.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// Publish fault.* counters into `reg` (drop/duplicate/delay/fsync_fail/
  /// crash/recover).  Call before injecting; `reg` must outlive this.
  void attach_metrics(obs::MetricsRegistry* reg);

 private:
  void record(FaultEvent ev);  // assigns seq, appends, counts

  std::uint64_t seed_;
  FaultSpec spec_;

  mutable OrderedMutex<LockRank::kFault> mu_;  ///< rank kFault: leaf under net/wal paths
  std::unordered_map<std::uint64_t, std::uint64_t> send_attempts_;
  std::unordered_map<SiteId, std::uint64_t> fsync_attempts_;
  std::unordered_map<SiteId, std::uint32_t> fsync_consecutive_;
  std::vector<FaultEvent> trace_;
  std::uint64_t next_seq_ = 1;

  obs::ShardedCounter* ctr_drop_ = nullptr;
  obs::ShardedCounter* ctr_dup_ = nullptr;
  obs::ShardedCounter* ctr_delay_ = nullptr;
  obs::ShardedCounter* ctr_fsync_ = nullptr;
  obs::ShardedCounter* ctr_crash_ = nullptr;
  obs::ShardedCounter* ctr_recover_ = nullptr;
};

/// A named, seeded fault configuration -- the vocabulary chaos_test and the
/// README speak ("run the crash-storm schedule under seed 7").
struct FaultSchedule {
  std::string name;
  FaultSpec spec;

  /// The shipped schedules: "drop", "duplicate_reorder", "crash_storm",
  /// "torn_wal_tail".  Unknown names return a fault-free schedule named
  /// "none".
  [[nodiscard]] static FaultSchedule named(const std::string& name);
  [[nodiscard]] static std::vector<std::string> known_names();
};

}  // namespace atp
