#include "fault/retry.h"

#include <algorithm>
#include <cmath>

namespace atp {

std::uint64_t fault_mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::chrono::microseconds RetryPolicy::delay(std::uint64_t attempt,
                                             std::uint64_t seed) const noexcept {
  if (attempt == 0) return std::chrono::microseconds(0);
  // initial * multiplier^(attempt-1), saturated at max_delay.
  double us = double(initial.count());
  for (std::uint64_t i = 1; i < attempt && us < double(max_delay.count());
       ++i) {
    us *= multiplier;
  }
  us = std::min(us, double(max_delay.count()));
  if (jitter_fraction > 0) {
    // Deterministic jitter in [-jitter_fraction, +jitter_fraction] * us,
    // a pure function of (seed, attempt).
    const std::uint64_t h = fault_mix64(seed ^ (attempt * 0xd1342543de82ef95ULL));
    const double unit = double(h >> 11) / double(1ULL << 53);  // [0, 1)
    us *= 1.0 + jitter_fraction * (2.0 * unit - 1.0);
  }
  return std::chrono::microseconds(std::int64_t(std::max(0.0, us)));
}

}  // namespace atp
