// RetryPolicy: bounded exponential backoff with deterministic jitter.
//
// The paper's rollback-safety rule (Theorem 1) turns "retry until commit"
// into a correctness obligation: once the first piece of a chopped
// transaction commits, every later piece must be re-executed until it
// commits, never rolled back.  The layers that honour that obligation --
// the chopped-piece process handler, the 2PC protocol rounds, the WAL
// force-at-commit loop -- all share this policy object so their backoff
// behaviour is uniform, bounded, and (given a seed) exactly reproducible.
//
// Jitter is a pure function of (seed, attempt): no shared RNG state, so
// concurrent retry loops never perturb each other's schedules and a rerun
// with the same seed waits the same intervals.
#pragma once

#include <chrono>
#include <cstdint>

namespace atp {

struct RetryPolicy {
  /// Delay before the first retry (attempt 1).  Attempt 0 never waits.
  std::chrono::microseconds initial{200};
  /// Geometric growth factor per attempt.
  double multiplier = 2.0;
  /// Ceiling on any single delay (keeps crash-storm recovery prompt).
  std::chrono::microseconds max_delay{50000};
  /// Fraction of the computed delay drawn as +/- jitter (0 = none, 0.5 =
  /// up to half the delay added or removed).
  double jitter_fraction = 0.25;
  /// Give up after this many attempts; 0 = retry forever (the chopped-piece
  /// contract).  "Attempts" counts executions, so 3 means try, retry, retry.
  std::uint64_t max_attempts = 0;

  /// Backoff before executing `attempt` (1-based for retries; attempt 0
  /// returns zero).  Deterministic in (seed, attempt).
  [[nodiscard]] std::chrono::microseconds delay(
      std::uint64_t attempt, std::uint64_t seed = 0) const noexcept;

  /// May `attempt` (0-based execution counter) run at all?
  [[nodiscard]] bool allowed(std::uint64_t attempt) const noexcept {
    return max_attempts == 0 || attempt < max_attempts;
  }

  /// Policies the shipped wirings default to.
  [[nodiscard]] static RetryPolicy chop_handler() noexcept {
    // Unbounded: rollback-safety forbids giving up on a non-first piece.
    return RetryPolicy{std::chrono::microseconds(100), 2.0,
                       std::chrono::microseconds(20000), 0.25, 0};
  }
  [[nodiscard]] static RetryPolicy protocol_round() noexcept {
    // Bounded per round by the decision timeout; the first per-try wait must
    // comfortably exceed a healthy round trip so clean links never see
    // duplicate protocol messages.
    return RetryPolicy{std::chrono::microseconds(25000), 2.0,
                       std::chrono::microseconds(250000), 0.0, 0};
  }
  [[nodiscard]] static RetryPolicy wal_fsync() noexcept {
    // Transient device failures: retry quickly, forever (a commit may not
    // report success until its records are stable).
    return RetryPolicy{std::chrono::microseconds(50), 2.0,
                       std::chrono::microseconds(5000), 0.25, 0};
  }
};

/// SplitMix64 finalizer: the pure hash both RetryPolicy jitter and the
/// fault injector's per-event decisions are built on.
[[nodiscard]] std::uint64_t fault_mix64(std::uint64_t x) noexcept;

}  // namespace atp
