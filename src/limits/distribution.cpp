#include "limits/distribution.h"

#include <cassert>

namespace atp {

ChopPlanInfo ChopPlanInfo::chain(std::vector<bool> restricted_marks,
                                 TxnKind kind, Value limit_total) {
  ChopPlanInfo info;
  info.piece_count = restricted_marks.size();
  info.restricted = std::move(restricted_marks);
  info.children.resize(info.piece_count);
  for (std::size_t p = 0; p + 1 < info.piece_count; ++p) {
    info.children[p].push_back(p + 1);
  }
  info.kind = kind;
  info.limit_total = limit_total;
  return info;
}

ChopPlanInfo ChopPlanInfo::tree(std::vector<bool> restricted_marks,
                                const std::vector<std::size_t>& parent,
                                TxnKind kind, Value limit_total) {
  ChopPlanInfo info;
  info.piece_count = restricted_marks.size();
  info.restricted = std::move(restricted_marks);
  info.children.resize(info.piece_count);
  for (std::size_t p = 1; p < info.piece_count; ++p) {
    assert(parent[p] < p && "DG(CHOP(t)) must be rooted at piece 1");
    info.children[parent[p]].push_back(p);
  }
  info.kind = kind;
  info.limit_total = limit_total;
  return info;
}

std::size_t ChopPlanInfo::restricted_count() const {
  std::size_t n = 0;
  for (bool r : restricted) n += r ? 1 : 0;
  return n;
}

StaticDistribution::StaticDistribution(const ChopPlanInfo& info) {
  const std::size_t r = info.restricted_count();
  limits_.resize(info.piece_count, kInfiniteLimit);
  if (r == 0) return;
  const Value each = info.limit_total / static_cast<Value>(r);
  for (std::size_t p = 0; p < info.piece_count; ++p) {
    if (info.restricted[p]) limits_[p] = each;
  }
}

Value StaticDistribution::limit_for(std::size_t piece) {
  assert(piece < limits_.size());
  return limits_[piece];
}

void StaticDistribution::report_committed(std::size_t, Value) {}

DynamicDistribution::DynamicDistribution(const ChopPlanInfo& info)
    : info_(info), assigned_(info.piece_count, 0) {
  // DynamicExecution (Figure 2): the first piece is scheduled with the whole
  // Limit_t.
  if (!assigned_.empty()) assigned_[0] = info_.limit_total;
}

Value DynamicDistribution::limit_for(std::size_t piece) {
  assert(piece < assigned_.size());
  // Unrestricted pieces execute with an infinite limit: they can never be
  // part of a runtime conflict cycle, so divergence control must not catch
  // them on immediate conflicts.
  if (!info_.restricted[piece]) return kInfiniteLimit;
  return assigned_[piece];
}

void DynamicDistribution::report_committed(std::size_t piece, Value z_p) {
  assert(piece < assigned_.size());
  // Leftover: a restricted piece consumed z_p of its quota; an unrestricted
  // piece consumed nothing and forwards what it was scheduled with.
  Value leftover = assigned_[piece];
  if (info_.restricted[piece]) {
    leftover -= z_p;
    if (leftover < 0) leftover = 0;  // defensive: DC should enforce Z <= L
  }
  const auto& kids = info_.children[piece];
  if (kids.empty()) return;
  const Value each = leftover / static_cast<Value>(kids.size());
  for (std::size_t child : kids) assigned_[child] = each;
}

}  // namespace atp
