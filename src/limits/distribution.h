// Epsilon-spec distribution over chopped pieces (Section 2.2).
//
// Given CHOP(t) and Limit_t, divergence control needs a per-piece Limit_p
// such that  "Z_p <= Limit_p for all p  implies  Z_t <= Limit_t"
// (Condition 2).  With Lemma 1 (Z_t = sum Z_p) the correct split is
//
//     sum over *restricted* pieces of Limit_p  =  Limit_t        (Cond. 3)
//
// where a piece is restricted iff it is associated with a C-cycle of the
// chopping graph; unrestricted pieces can never join a runtime conflict
// cycle, cause no real inconsistency, and receive an INFINITE limit so that
// the (conservative, immediate-conflict-counting) divergence control never
// blocks or rolls them back.
//
// Two policies:
//   * StaticDistribution  -- off-line even split of Limit_t over the
//     restricted pieces (the paper's simple-weights case).
//   * DynamicDistribution -- Figure 2: the first piece gets the whole
//     Limit_t; each completed piece passes its *leftover* LO_p = Limit - Z_p
//     to its dependents along the program-text dependency tree DG(CHOP(t)),
//     split evenly among parallel dependents.  Unrestricted pieces consume
//     nothing and forward their full assigned limit.
//
// These objects are consumed by the engine's PieceRunner, which asks for the
// limit to run a piece with and reports back the piece's measured Z_p.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "txn/epsilon.h"

namespace atp {

/// Off-line facts about one transaction's chopping that both policies need.
struct ChopPlanInfo {
  std::size_t piece_count = 0;
  std::vector<bool> restricted;          ///< per piece
  /// Dependency tree DG(CHOP(t)): children[p] = pieces that may start only
  /// after p completes.  Piece 0 is the root (it must commit first for
  /// rollback-safety).  A simple chain 0 -> 1 -> ... is the default.
  std::vector<std::vector<std::size_t>> children;
  TxnKind kind = TxnKind::Update;
  Value limit_total = 0;  ///< Limit_t (optionally reduced by Z^is, Eq. 6)

  /// Chain dependency 0 -> 1 -> ... -> k-1 with the given restriction marks.
  [[nodiscard]] static ChopPlanInfo chain(std::vector<bool> restricted_marks,
                                          TxnKind kind, Value limit_total);

  /// Tree dependency from an explicit parent array: parent[0] is ignored
  /// (piece 0 is the root); parent[j] < j for j > 0.
  [[nodiscard]] static ChopPlanInfo tree(std::vector<bool> restricted_marks,
                                         const std::vector<std::size_t>& parent,
                                         TxnKind kind, Value limit_total);

  [[nodiscard]] std::size_t restricted_count() const;
};

/// Interface the PieceRunner drives.  One instance per *execution* of one
/// original transaction (dynamic state lives here).
class LimitDistributor {
 public:
  virtual ~LimitDistributor() = default;

  /// Limit_p for running piece `p` now.  kInfiniteLimit for unrestricted
  /// pieces under both policies.
  [[nodiscard]] virtual Value limit_for(std::size_t piece) = 0;

  /// Report the measured fuzziness of a *committed* piece, so leftovers can
  /// propagate (dynamic policy; no-op for static).
  virtual void report_committed(std::size_t piece, Value z_p) = 0;
};

/// Static even split (Section 2.2.1): Limit_p = Limit_t / |CHOP_R(t)|.
class StaticDistribution final : public LimitDistributor {
 public:
  explicit StaticDistribution(const ChopPlanInfo& info);
  [[nodiscard]] Value limit_for(std::size_t piece) override;
  void report_committed(std::size_t piece, Value z_p) override;

 private:
  std::vector<Value> limits_;
};

/// Dynamic leftover propagation (Section 2.2.2, Figure 2).
class DynamicDistribution final : public LimitDistributor {
 public:
  explicit DynamicDistribution(const ChopPlanInfo& info);
  [[nodiscard]] Value limit_for(std::size_t piece) override;
  void report_committed(std::size_t piece, Value z_p) override;

 private:
  ChopPlanInfo info_;
  std::vector<Value> assigned_;  ///< limit scheduled for each piece
};

}  // namespace atp
