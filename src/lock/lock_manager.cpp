#include "lock/lock_manager.h"

#include <algorithm>
#include <cassert>

namespace atp {

LockManager::LockManager(std::chrono::milliseconds default_timeout)
    : timeout_(default_timeout) {}

Status LockManager::acquire(TxnId txn, Key key, LockMode mode,
                            ConflictResolver& resolver) {
  std::unique_lock lock(mu_);
  Queue& q = queues_[key];

  // Re-entrancy: already covered?
  for (const LockHolder& h : q.holders) {
    if (h.txn == txn &&
        (h.mode == LockMode::Exclusive || mode == LockMode::Shared)) {
      return Status::Ok();
    }
  }

  Waiter self{txn, mode, /*cancelled=*/false, {}};
  bool queued = false;
  bool counted_wait = false;
  const auto deadline = std::chrono::steady_clock::now() + timeout_;

  auto cleanup = [&] {
    if (queued) q.waiters.remove(&self);
    waiting_.erase(txn);
  };

  for (;;) {
    if (self.cancelled) {
      cleanup();
      return Status::Aborted("lock wait cancelled");
    }
    self.waits_for.clear();
    // Always pass &self: before queueing, every queued waiter counts as
    // "ahead", and the waits-for edges must land in self for the deadlock
    // DFS that runs right after.
    if (evaluate(txn, key, mode, resolver, q, &self) == Decision::Granted) {
      cleanup();
      return Status::Ok();
    }
    if (!queued) {
      q.waiters.push_back(&self);
      queued = true;
    }
    waiting_[txn] = &self;
    if (creates_deadlock(txn)) {
      ++stats_.deadlocks;
      Tracer::emit(tracer_, TraceKind::LockDeadlock, site_, txn, key, 0, 0,
                   mode == LockMode::Exclusive ? kTraceModeExclusive : 0);
      cleanup();
      return Status::Deadlock("waits-for cycle through txn " +
                              std::to_string(txn));
    }
    if (!counted_wait) {
      ++stats_.waits;
      counted_wait = true;
      Tracer::emit(tracer_, TraceKind::LockWait, site_, txn, key, 0, 0,
                   mode == LockMode::Exclusive ? kTraceModeExclusive : 0,
                   self.waits_for.empty() ? 0 : *self.waits_for.begin());
    }
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      // Re-evaluate once after timeout in case a grant raced the clock.
      self.waits_for.clear();
      if (evaluate(txn, key, mode, resolver, q, &self) == Decision::Granted) {
        cleanup();
        return Status::Ok();
      }
      ++stats_.timeouts;
      Tracer::emit(tracer_, TraceKind::LockTimeout, site_, txn, key, 0, 0,
                   mode == LockMode::Exclusive ? kTraceModeExclusive : 0);
      cleanup();
      return Status::Timeout("lock wait on key " + std::to_string(key));
    }
  }
}

LockManager::Decision LockManager::evaluate(TxnId txn, Key key, LockMode mode,
                                            ConflictResolver& resolver,
                                            Queue& q, Waiter* self) {
  const bool holds_any =
      std::any_of(q.holders.begin(), q.holders.end(),
                  [&](const LockHolder& h) { return h.txn == txn; });

  std::unordered_set<TxnId>* waits_for = self ? &self->waits_for : nullptr;
  std::unordered_set<TxnId> scratch;
  if (!waits_for) waits_for = &scratch;

  // FIFO fairness: a request must not overtake an incompatible waiter that
  // arrived earlier -- unless the pair is fuzzy-eligible (divergence control
  // should never queue a query behind an update it could pass), or the
  // requester is upgrading (it holds the lock the waiter needs anyway).
  bool blocked = false;
  if (!holds_any) {
    for (const Waiter* w : q.waiters) {
      if (w == self) break;  // only waiters ahead of us
      if (w->txn == txn) continue;
      if (compatible(w->mode, mode)) continue;
      if (resolver.eligible_pair(txn, mode, w->txn, w->mode)) continue;
      blocked = true;
      waits_for->insert(w->txn);
    }
  }

  std::vector<LockHolder> conflicting;
  for (const LockHolder& h : q.holders) {
    if (h.txn == txn) continue;  // own S lock never blocks own upgrade
    if (!compatible(h.mode, mode)) conflicting.push_back(h);
  }

  if (blocked) {
    for (const LockHolder& h : conflicting) waits_for->insert(h.txn);
    return Decision::Blocked;
  }
  if (conflicting.empty()) {
    grant(txn, key, mode, /*fuzzy=*/false, q);
    return Decision::Granted;
  }
  if (resolver.try_fuzzy_grant(txn, mode, key, conflicting)) {
    ++stats_.fuzzy_grants;
    grant(txn, key, mode, /*fuzzy=*/true, q);
    return Decision::Granted;
  }
  for (const LockHolder& h : conflicting) waits_for->insert(h.txn);
  return Decision::Blocked;
}

bool LockManager::creates_deadlock(TxnId from) const {
  // DFS through wait edges looking for a path back to `from`.
  std::vector<TxnId> stack;
  std::unordered_set<TxnId> visited;
  auto it = waiting_.find(from);
  if (it == waiting_.end()) return false;
  for (TxnId t : it->second->waits_for) stack.push_back(t);
  while (!stack.empty()) {
    const TxnId t = stack.back();
    stack.pop_back();
    if (t == from) return true;
    if (!visited.insert(t).second) continue;
    auto wit = waiting_.find(t);
    if (wit == waiting_.end()) continue;  // not waiting: sink
    for (TxnId next : wit->second->waits_for) stack.push_back(next);
  }
  return false;
}

void LockManager::grant(TxnId txn, Key key, LockMode mode, bool fuzzy,
                        Queue& q) {
  Tracer::emit(tracer_, TraceKind::LockAcquire, site_, txn, key, 0, 0,
               (mode == LockMode::Exclusive ? kTraceModeExclusive : 0) |
                   (fuzzy ? kTraceGrantFuzzy : 0));
  for (LockHolder& h : q.holders) {
    if (h.txn == txn) {  // upgrade in place
      h.mode = LockMode::Exclusive;
      h.fuzzy = h.fuzzy || fuzzy;
      return;
    }
  }
  q.holders.push_back(LockHolder{txn, mode, fuzzy});
  held_keys_[txn].insert(key);
}

void LockManager::release_all(TxnId txn) {
  std::lock_guard lock(mu_);
  auto held = held_keys_.find(txn);
  if (held != held_keys_.end()) {
    Tracer::emit(tracer_, TraceKind::LockRelease, site_, txn);
    for (Key key : held->second) {
      auto qit = queues_.find(key);
      if (qit == queues_.end()) continue;
      auto& holders = qit->second.holders;
      std::erase_if(holders,
                    [&](const LockHolder& h) { return h.txn == txn; });
    }
    held_keys_.erase(held);
  }
  // Cancel an in-flight wait (cross-thread abort path).
  auto wit = waiting_.find(txn);
  if (wit != waiting_.end()) wit->second->cancelled = true;
  cv_.notify_all();
}

bool LockManager::holds(TxnId txn, Key key, LockMode mode) const {
  std::lock_guard lock(mu_);
  auto qit = queues_.find(key);
  if (qit == queues_.end()) return false;
  for (const LockHolder& h : qit->second.holders) {
    if (h.txn == txn &&
        (h.mode == LockMode::Exclusive || mode == LockMode::Shared)) {
      return true;
    }
  }
  return false;
}

std::vector<LockHolder> LockManager::holders_of(Key key) const {
  std::lock_guard lock(mu_);
  auto qit = queues_.find(key);
  if (qit == queues_.end()) return {};
  return qit->second.holders;
}

LockStats LockManager::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace atp
