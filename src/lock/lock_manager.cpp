#include "lock/lock_manager.h"

#include <algorithm>
#include <cassert>

namespace atp {

LockManager::LockManager(std::chrono::milliseconds default_timeout,
                         std::size_t stripes)
    : timeout_(default_timeout) {
  const std::size_t n = std::max<std::size_t>(1, stripes);
  stripes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

Status LockManager::acquire(TxnId txn, Key key, LockMode mode,
                            ConflictResolver& resolver) {
  Stripe& s = stripe_of(key);
#if defined(ATP_OBS_ENABLED)
  // Sampled latency probe: the acquires counter doubles as the sampling
  // clock.  Timed acquires pay two steady_clock reads and one histogram
  // record; the other 63 of 64 pay a single relaxed fetch_add.
  const std::uint64_t n =  // relaxed-ok: sampling clock + stat; no ordering needed
      s.acquires.fetch_add(1, std::memory_order_relaxed);
  if ((n & ((1u << kLatencySampleShift) - 1)) == 0) {
    const auto t0 = std::chrono::steady_clock::now();
    const Status st = acquire_impl(txn, key, mode, resolver, s);
    const auto dt = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - t0);
    s.acquire_us.record(double(dt.count()) / 1e3);
    return st;
  }
#endif
  return acquire_impl(txn, key, mode, resolver, s);
}

Status LockManager::acquire_impl(TxnId txn, Key key, LockMode mode,
                                 ConflictResolver& resolver, Stripe& s) {
  std::unique_lock lock(s.mu);
  Queue& q = s.queues[key];

  // Re-entrancy: already covered?
  for (const LockHolder& h : q.holders) {
    if (h.txn == txn &&
        (h.mode == LockMode::Exclusive || mode == LockMode::Shared)) {
      return Status::Ok();
    }
  }

  Waiter self{txn, mode, /*cancelled=*/false, {}};
  bool queued = false;
  bool counted_wait = false;
  const auto deadline = std::chrono::steady_clock::now() + timeout_;

  auto cleanup = [&] {
    if (queued) q.waiters.remove(&self);
    s.waiting.erase(txn);
    retract_wait_edges(txn);
  };

  for (;;) {
    if (self.cancelled) {
      cleanup();
      return Status::Aborted("lock wait cancelled");
    }
    self.waits_for.clear();
    // Always pass &self: before queueing, every queued waiter counts as
    // "ahead", and the waits-for edges must land in self for the deadlock
    // DFS that runs right after.
    if (evaluate(txn, key, mode, resolver, s, q, &self) == Decision::Granted) {
      cleanup();
      return Status::Ok();
    }
    if (!queued) {
      q.waiters.push_back(&self);
      queued = true;
    }
    s.waiting[txn] = &self;
    s.max_waiters = std::max<std::uint64_t>(s.max_waiters, s.waiting.size());
    if (publish_and_check_deadlock(txn, self)) {
      ++s.stats.deadlocks;
      Tracer::emit(tracer_, TraceKind::LockDeadlock, site_, txn, key, 0, 0,
                   mode == LockMode::Exclusive ? kTraceModeExclusive : 0);
      cleanup();
      return Status::Deadlock("waits-for cycle through txn " +
                              std::to_string(txn));
    }
    if (!counted_wait) {
      ++s.stats.waits;
      counted_wait = true;
      Tracer::emit(tracer_, TraceKind::LockWait, site_, txn, key, 0, 0,
                   mode == LockMode::Exclusive ? kTraceModeExclusive : 0,
                   self.waits_for.empty() ? 0 : *self.waits_for.begin());
    }
    if (s.cv.wait_until(lock, deadline) == std::cv_status::timeout) {
      // Re-evaluate once after timeout in case a grant raced the clock.
      self.waits_for.clear();
      if (evaluate(txn, key, mode, resolver, s, q, &self) ==
          Decision::Granted) {
        cleanup();
        return Status::Ok();
      }
      ++s.stats.timeouts;
      Tracer::emit(tracer_, TraceKind::LockTimeout, site_, txn, key, 0, 0,
                   mode == LockMode::Exclusive ? kTraceModeExclusive : 0);
      cleanup();
      return Status::Timeout("lock wait on key " + std::to_string(key));
    }
  }
}

LockManager::Decision LockManager::evaluate(TxnId txn, Key key, LockMode mode,
                                            ConflictResolver& resolver,
                                            Stripe& s, Queue& q,
                                            Waiter* self) {
  const bool holds_any =
      std::any_of(q.holders.begin(), q.holders.end(),
                  [&](const LockHolder& h) { return h.txn == txn; });

  std::unordered_set<TxnId>* waits_for = self ? &self->waits_for : nullptr;
  std::unordered_set<TxnId> scratch;
  if (!waits_for) waits_for = &scratch;

  // FIFO fairness: a request must not overtake an incompatible waiter that
  // arrived earlier -- unless the pair is fuzzy-eligible (divergence control
  // should never queue a query behind an update it could pass), or the
  // requester is upgrading (it holds the lock the waiter needs anyway).
  bool blocked = false;
  if (!holds_any) {
    for (const Waiter* w : q.waiters) {
      if (w == self) break;  // only waiters ahead of us
      if (w->txn == txn) continue;
      if (compatible(w->mode, mode)) continue;
      if (resolver.eligible_pair(txn, mode, w->txn, w->mode)) continue;
      blocked = true;
      waits_for->insert(w->txn);
    }
  }

  std::vector<LockHolder> conflicting;
  for (const LockHolder& h : q.holders) {
    if (h.txn == txn) continue;  // own S lock never blocks own upgrade
    if (!compatible(h.mode, mode)) conflicting.push_back(h);
  }

  if (blocked) {
    for (const LockHolder& h : conflicting) waits_for->insert(h.txn);
    return Decision::Blocked;
  }
  if (conflicting.empty()) {
    grant(txn, key, mode, /*fuzzy=*/false, s, q);
    return Decision::Granted;
  }
  if (resolver.try_fuzzy_grant(txn, mode, key, conflicting)) {
    ++s.stats.fuzzy_grants;
    grant(txn, key, mode, /*fuzzy=*/true, s, q);
    return Decision::Granted;
  }
  for (const LockHolder& h : conflicting) waits_for->insert(h.txn);
  return Decision::Blocked;
}

bool LockManager::publish_and_check_deadlock(TxnId from, const Waiter& self) {
  std::lock_guard lock(wait_mu_);
  wait_edges_[from] = self.waits_for;  // republish the fresh snapshot

  // DFS through the published wait edges looking for a path back to `from`.
  std::vector<TxnId> stack;
  std::unordered_set<TxnId> visited;
  for (TxnId t : self.waits_for) stack.push_back(t);
  while (!stack.empty()) {
    const TxnId t = stack.back();
    stack.pop_back();
    if (t == from) return true;
    if (!visited.insert(t).second) continue;
    auto it = wait_edges_.find(t);
    if (it == wait_edges_.end()) continue;  // not waiting: sink
    for (TxnId next : it->second) stack.push_back(next);
  }
  return false;
}

void LockManager::retract_wait_edges(TxnId txn) {
  std::lock_guard lock(wait_mu_);
  wait_edges_.erase(txn);
}

void LockManager::grant(TxnId txn, Key key, LockMode mode, bool fuzzy,
                        Stripe& s, Queue& q) {
  Tracer::emit(tracer_, TraceKind::LockAcquire, site_, txn, key, 0, 0,
               (mode == LockMode::Exclusive ? kTraceModeExclusive : 0) |
                   (fuzzy ? kTraceGrantFuzzy : 0));
  for (LockHolder& h : q.holders) {
    if (h.txn == txn) {  // upgrade in place
      h.mode = LockMode::Exclusive;
      h.fuzzy = h.fuzzy || fuzzy;
      return;
    }
  }
  q.holders.push_back(LockHolder{txn, mode, fuzzy});
  s.held_keys[txn].insert(key);
}

void LockManager::release_all(TxnId txn) {
  bool held_anything = false;
  for (auto& sp : stripes_) {
    Stripe& s = *sp;
    std::lock_guard lock(s.mu);
    bool touched = false;
    auto held = s.held_keys.find(txn);
    if (held != s.held_keys.end()) {
      held_anything = true;
      touched = true;
      for (Key key : held->second) {
        auto qit = s.queues.find(key);
        if (qit == s.queues.end()) continue;
        auto& holders = qit->second.holders;
        std::erase_if(holders,
                      [&](const LockHolder& h) { return h.txn == txn; });
      }
      s.held_keys.erase(held);
    }
    // Cancel an in-flight wait (cross-thread abort path).  The waiter owns
    // its global wait edges and retracts them when it wakes.
    auto wit = s.waiting.find(txn);
    if (wit != s.waiting.end()) {
      wit->second->cancelled = true;
      touched = true;
    }
    if (touched) s.cv.notify_all();
  }
  if (held_anything) {
    Tracer::emit(tracer_, TraceKind::LockRelease, site_, txn);
  }
}

bool LockManager::holds(TxnId txn, Key key, LockMode mode) const {
  Stripe& s = stripe_of(key);
  std::lock_guard lock(s.mu);
  auto qit = s.queues.find(key);
  if (qit == s.queues.end()) return false;
  for (const LockHolder& h : qit->second.holders) {
    if (h.txn == txn &&
        (h.mode == LockMode::Exclusive || mode == LockMode::Shared)) {
      return true;
    }
  }
  return false;
}

std::vector<LockHolder> LockManager::holders_of(Key key) const {
  Stripe& s = stripe_of(key);
  std::lock_guard lock(s.mu);
  auto qit = s.queues.find(key);
  if (qit == s.queues.end()) return {};
  return qit->second.holders;
}

LockStats LockManager::stats() const {
  LockStats total;
  for (const auto& sp : stripes_) {
    std::lock_guard lock(sp->mu);
    total.waits += sp->stats.waits;
    total.deadlocks += sp->stats.deadlocks;
    total.timeouts += sp->stats.timeouts;
    total.fuzzy_grants += sp->stats.fuzzy_grants;
  }
  return total;
}

std::vector<LockStripeSnapshot> LockManager::stripe_stats() const {
  std::vector<LockStripeSnapshot> out;
  out.reserve(stripes_.size());
  for (const auto& sp : stripes_) {
    LockStripeSnapshot snap;
    {
      std::lock_guard lock(sp->mu);
      snap.stats = sp->stats;
      snap.waiters_now = sp->waiting.size();
      snap.max_waiters = sp->max_waiters;
    }
    // Read outside the stripe mutex: both are self-consistent on their own
    // (relaxed atomic / histogram-internal lock), and the heatmap does not
    // need them to be from the same instant as the mutexed fields.
    snap.acquires = sp->acquires.load(std::memory_order_relaxed);  // relaxed-ok: heatmap stat
    snap.acquire_us = sp->acquire_us.summarize();
    out.push_back(std::move(snap));
  }
  return out;
}

}  // namespace atp
