// Two-phase-locking lock manager with pluggable conflict resolution,
// sharded into independently-locked stripes.
//
// Classic strict 2PL concurrency control and 2PL divergence control (Wu, Yu,
// Pu, ICDE'92) differ *only* in how they handle read-write conflicts between
// query ETs and update ETs: CC always blocks; DC may grant anyway while
// charging import/export fuzziness, blocking only when an epsilon budget
// would be exceeded.  We factor that single decision into a ConflictResolver
// so one lock manager serves both schedulers.
//
// Scalability: the lock table is partitioned into N stripes keyed by
// hash(key) % N.  Each stripe owns its mutex, condition variable, wait
// queues, per-transaction held-key index and wait/timeout statistics, so
// acquires and releases on different stripes never contend.  What cannot be
// striped is the waits-for relation: a transaction blocked in stripe A may
// wait for a transaction blocked in stripe B, so deadlock cycles cross
// stripes.  Wait edges are therefore *published* to one global wait graph
// (its own small mutex, ordered strictly after any stripe mutex) and the
// deadlock DFS runs there.  Publication happens before the DFS under the
// same wait-graph lock, so a cycle formed by concurrent blockers in
// different stripes is always visible to whichever blocker publishes last --
// no deadlock goes undetected that the single-mutex design would have
// caught.  The converse race (a just-granted waiter whose edges linger for a
// moment) can produce a rare *spurious* victim under heavy contention;
// aborting a transaction is always safe (the piece runner resubmits), and
// the wait timeout backstops anything else.
//
// Deadlocks are detected eagerly: every time a request is about to block,
// the waits-for DFS runs through the new wait edges; if the requester closes
// a cycle the acquire fails with kDeadlock and the caller aborts (youngest-
// ish victim: the transaction that *created* the cycle dies, which is always
// sufficient to break it because cycles can only appear when a new edge is
// added).  A wait timeout backstops anything the DFS cannot see (e.g. waits
// induced outside this lock manager).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/types.h"
#include "trace/tracer.h"

#include "common/ordered_lock.h"

namespace atp {

enum class LockMode : std::uint8_t { Shared, Exclusive };

[[nodiscard]] constexpr bool compatible(LockMode a, LockMode b) noexcept {
  return a == LockMode::Shared && b == LockMode::Shared;
}

[[nodiscard]] constexpr const char* to_string(LockMode m) noexcept {
  return m == LockMode::Shared ? "S" : "X";
}

/// A granted lock on one key.
struct LockHolder {
  TxnId txn = kInvalidTxn;
  LockMode mode = LockMode::Shared;
  bool fuzzy = false;  ///< granted past a conflict by divergence control
};

/// Decides whether a mode-incompatible request may be granted anyway.
///
/// Implementations: CC returns false everywhere (pure 2PL); DC grants
/// query/update read-write conflicts within epsilon budgets (and performs the
/// fuzziness charging as a side effect of try_fuzzy_grant).
class ConflictResolver {
 public:
  virtual ~ConflictResolver() = default;

  /// May `requester` (wanting `mode` on `key`) be granted despite the
  /// conflicting holders?  Called with the key's stripe mutex held; must not
  /// call back into the lock manager.  On true, any fuzziness charges have
  /// been applied atomically.
  virtual bool try_fuzzy_grant(TxnId requester, LockMode mode, Key key,
                               std::span<const LockHolder> conflicting) = 0;

  /// Is the (requester, other) pair *eligible in principle* for a fuzzy
  /// grant (i.e. a query/update read-write pair)?  Used to decide whether a
  /// conflicting waiter ahead in the queue should block this request for
  /// fairness; no charging happens.
  virtual bool eligible_pair(TxnId requester, LockMode requester_mode,
                             TxnId other, LockMode other_mode) = 0;
};

/// Pure 2PL: never grant past a conflict.
class NeverFuzzyResolver final : public ConflictResolver {
 public:
  bool try_fuzzy_grant(TxnId, LockMode, Key,
                       std::span<const LockHolder>) override {
    return false;
  }
  bool eligible_pair(TxnId, LockMode, TxnId, LockMode) override {
    return false;
  }
};

struct LockStats {
  std::uint64_t waits = 0;        // requests that blocked at least once
  std::uint64_t deadlocks = 0;    // requests refused as deadlock victims
  std::uint64_t timeouts = 0;     // requests that timed out waiting
  std::uint64_t fuzzy_grants = 0; // conflicts granted by the resolver
};

/// Per-stripe observability snapshot (stripe_stats()): the contention
/// heatmap's raw material.  `acquire_us` is a sampled latency distribution
/// (one in kLatencySampleShift-th of acquires is timed end to end), so its
/// count is a fraction of `acquires`.
struct LockStripeSnapshot {
  LockStats stats;
  std::uint64_t acquires = 0;     ///< acquire() calls routed to this stripe
  std::uint64_t waiters_now = 0;  ///< transactions blocked right now
  std::uint64_t max_waiters = 0;  ///< high-water mark of concurrent waiters
  StatSummary acquire_us;         ///< sampled end-to-end acquire latency
};

class LockManager {
 public:
  /// Default stripe count: enough that a handful of workers rarely collide
  /// on stripe mutexes for uniformly-hashed keys, small enough that
  /// release_all's full-stripe sweep stays cheap.
  static constexpr std::size_t kDefaultStripes = 16;

  explicit LockManager(std::chrono::milliseconds default_timeout =
                           std::chrono::milliseconds(2000),
                       std::size_t stripes = kDefaultStripes);
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Acquire `mode` on `key` for `txn`.  Blocks (honouring FIFO fairness and
  /// the resolver) until granted, deadlock, or timeout.  Re-entrant: if txn
  /// already holds a mode covering the request this is a no-op; S->X upgrade
  /// is supported.
  Status acquire(TxnId txn, Key key, LockMode mode, ConflictResolver& resolver);

  /// Release every lock txn holds and cancel any pending wait.  Idempotent.
  void release_all(TxnId txn);

  /// Does txn hold at least `mode` on key?
  [[nodiscard]] bool holds(TxnId txn, Key key, LockMode mode) const;

  /// Snapshot of current holders of `key` (diagnostics / DC write charging).
  [[nodiscard]] std::vector<LockHolder> holders_of(Key key) const;

  /// Aggregated over all stripes.
  [[nodiscard]] LockStats stats() const;

  /// Per-stripe counters + sampled acquire latency, in stripe order -- the
  /// obs layer renders this as the contention heatmap.
  [[nodiscard]] std::vector<LockStripeSnapshot> stripe_stats() const;

  [[nodiscard]] std::size_t stripe_count() const noexcept {
    return stripes_.size();
  }

  void set_timeout(std::chrono::milliseconds t) { timeout_ = t; }

  /// Attach a tracer: grants (with conflict type), waits, deadlocks,
  /// timeouts and releases are recorded as structured events.
  void set_trace(Tracer* tracer, SiteId site) noexcept {
    tracer_ = tracer;
    site_ = site;
  }

 private:
  struct Waiter {
    TxnId txn;
    LockMode mode;
    bool cancelled = false;  // guarded by the owning stripe's mutex
    // Txns this waiter currently waits for (holders + conflicting waiters
    // ahead); refreshed on each blocking evaluation under the stripe mutex,
    // then copied into the global wait graph.
    std::unordered_set<TxnId> waits_for;
  };

  struct Queue {
    std::vector<LockHolder> holders;
    std::list<Waiter*> waiters;  // FIFO
  };

  /// One shard of the lock table.  Everything inside is guarded by mu --
  /// except the observability fields at the bottom, which are updated
  /// outside the stripe mutex (see acquire()) and therefore atomic / self-
  /// locking.  cv is broadcast on any release/cancel affecting the stripe.
  struct Stripe {
    mutable OrderedMutex<LockRank::kLockStripe> mu;  ///< rank kLockStripe: taken before waits-for/delta/store/txn locks
    OrderedCondVar cv;
    std::unordered_map<Key, Queue> queues;
    std::unordered_map<TxnId, std::unordered_set<Key>> held_keys;
    // One outstanding request per txn at a time (the piece runner
    // guarantees it), so at most one entry per txn across ALL stripes.
    std::unordered_map<TxnId, Waiter*> waiting;
    LockStats stats;
    std::uint64_t max_waiters = 0;  // guarded by mu (updated when queueing)
    // Observability: total acquires (relaxed atomic -- also the sampling
    // clock for the latency histogram, bumped after the stripe mutex is
    // released) and the sampled end-to-end acquire latency.
    std::atomic<std::uint64_t> acquires{0};
    Histogram acquire_us{256};
  };

  /// 1-in-2^kLatencySampleShift acquires are timed end to end.  Sampling
  /// keeps the steady_clock reads and the histogram's mutex off most of the
  /// hot path while still populating a faithful latency distribution.
  /// 1-in-64: at 1-in-8 the amortized clock reads were the dominant term of
  /// the instrumentation overhead on an uncontended acquire (~40-100ns per
  /// sampled pair vs a ~270ns acquire); 64 pushes that under 2ns amortized
  /// while a bench run still collects thousands of samples per stripe.
  static constexpr std::uint64_t kLatencySampleShift = 6;

  // The un-instrumented acquire body (acquire() wraps it with the sampled
  // latency probe).
  Status acquire_impl(TxnId txn, Key key, LockMode mode,
                      ConflictResolver& resolver, Stripe& s);

  [[nodiscard]] Stripe& stripe_of(Key key) const noexcept {
    // Multiplicative hash: workload keys are clustered (branch*1e6 + index),
    // so identity % N would put whole branches on few stripes.
    return *stripes_[(key * 0x9E3779B97F4A7C15ULL >> 32) % stripes_.size()];
  }

  enum class Decision { Granted, Blocked };

  // Evaluate whether the request can be granted now.  Fills waits_for with
  // the blockers when not.  Caller holds the stripe mutex.
  Decision evaluate(TxnId txn, Key key, LockMode mode,
                    ConflictResolver& resolver, Stripe& s, Queue& q,
                    Waiter* self);

  // Publish `self`'s current wait edges to the global graph and check
  // whether they close a cycle back to `txn`.  Caller holds the stripe
  // mutex; takes wait_mu_ (stripe -> wait order, never the reverse).
  [[nodiscard]] bool publish_and_check_deadlock(TxnId txn, const Waiter& self);

  // Remove txn's published wait edges (after grant/deadlock/timeout/cancel).
  void retract_wait_edges(TxnId txn);

  void grant(TxnId txn, Key key, LockMode mode, bool fuzzy, Stripe& s,
             Queue& q);

  std::vector<std::unique_ptr<Stripe>> stripes_;

  // Global waits-for graph for cross-stripe deadlock detection.  Lock order:
  // any stripe mutex, then wait_mu_.  Values are snapshots of each blocked
  // txn's waits_for set, republished on every blocking evaluation.
  mutable OrderedMutex<LockRank::kWaitsFor> wait_mu_;  ///< rank kWaitsFor: stripe then wait, never the reverse
  std::unordered_map<TxnId, std::unordered_set<TxnId>> wait_edges_;

  std::chrono::milliseconds timeout_;
  Tracer* tracer_ = nullptr;
  SiteId site_ = 0;
};

}  // namespace atp
