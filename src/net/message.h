// Messages exchanged between sites in the simulated network.
//
// Payloads are carried as std::any: the sites live in one process, so we
// skip serialization (a real deployment would wire-encode here).  Everything
// the protocols key on -- correlation ids, global transaction ids, queue
// sequence numbers -- travels in plain scalar fields so that the message
// accounting (what the Section 4 bench counts) is faithful.
#pragma once

#include <any>
#include <cstdint>
#include <string>

#include "common/types.h"

namespace atp {

struct Message {
  std::uint64_t id = 0;           ///< unique, assigned by the network on send
  std::uint64_t correlation = 0;  ///< request id this replies to (0 = request)
  SiteId from = 0;
  SiteId to = 0;
  std::string type;               ///< "prepare", "commit", "qdata", ...
  std::uint64_t gtid = 0;         ///< global transaction / queue-message id
  Value value = 0;                ///< small scalar payload
  std::any payload;               ///< in-process payload (not serialized)

  [[nodiscard]] bool is_reply() const noexcept { return correlation != 0; }
};

}  // namespace atp
