#include "net/network.h"

#include <cassert>
#include <memory>

namespace atp {

SimNetwork::SimNetwork(std::size_t n_sites, NetworkOptions options)
    : options_(options),
      site_up_(n_sites, true),
      link_up_(n_sites, std::vector<bool>(n_sites, true)) {
  inboxes_.reserve(n_sites);
  for (std::size_t i = 0; i < n_sites; ++i) {
    inboxes_.push_back(std::make_unique<Inbox>());
  }
}

std::uint64_t SimNetwork::send(Message msg) {
  Clock::time_point deliver_at;
  std::uint64_t id;
  {
    std::lock_guard lock(state_mu_);
    id = next_id_++;
    ++stats_.sent;
    const bool deliverable = site_up_[msg.to] && site_up_[msg.from] &&
                             link_up_[msg.from][msg.to];
    if (!deliverable) {
      ++stats_.dropped;
      Tracer::emit(tracer_, TraceKind::NetDrop, msg.from, kInvalidTxn, msg.to,
                   0, 0, id);
      return id;
    }
    Tracer::emit(tracer_, TraceKind::NetSend, msg.from, kInvalidTxn, msg.to, 0,
                 0, id);
    auto delay = options_.one_way_latency;
    if (options_.jitter.count() > 0) {
      // xorshift for cheap deterministic-ish jitter
      jitter_state_ ^= jitter_state_ << 13;
      jitter_state_ ^= jitter_state_ >> 7;
      jitter_state_ ^= jitter_state_ << 17;
      delay += std::chrono::microseconds(
          jitter_state_ % std::uint64_t(options_.jitter.count() + 1));
    }
    deliver_at = Clock::now() + delay;
  }
  msg.id = id;
  Inbox& inbox = *inboxes_[msg.to];
  {
    std::lock_guard lock(inbox.mu);
    inbox.messages.push_back(Pending{deliver_at, std::move(msg)});
  }
  inbox.cv.notify_all();
  return id;
}

std::optional<Message> SimNetwork::receive_matching(
    SiteId site, std::chrono::milliseconds timeout,
    const std::function<bool(const Message&)>& pred) {
  assert(site < inboxes_.size());
  Inbox& inbox = *inboxes_[site];
  const auto deadline = Clock::now() + timeout;
  std::unique_lock lock(inbox.mu);
  for (;;) {
    const auto now = Clock::now();
    Clock::time_point earliest = deadline;
    for (auto it = inbox.messages.begin(); it != inbox.messages.end(); ++it) {
      if (!pred(it->msg)) continue;
      if (it->deliver_at <= now) {
        Message m = std::move(it->msg);
        inbox.messages.erase(it);
        {
          std::lock_guard slock(state_mu_);
          ++stats_.delivered;
        }
        Tracer::emit(tracer_, TraceKind::NetDeliver, site, kInvalidTxn, m.from,
                     0, 0, m.id);
        return m;
      }
      if (it->deliver_at < earliest) earliest = it->deliver_at;
    }
    if (now >= deadline) return std::nullopt;
    inbox.cv.wait_until(lock, earliest);
  }
}

std::optional<Message> SimNetwork::receive_request(
    SiteId site, std::chrono::milliseconds timeout) {
  return receive_matching(site, timeout,
                          [](const Message& m) { return !m.is_reply(); });
}

std::optional<Message> SimNetwork::receive_reply(
    SiteId site, std::uint64_t correlation, std::chrono::milliseconds timeout) {
  return receive_matching(site, timeout, [correlation](const Message& m) {
    return m.correlation == correlation;
  });
}

void SimNetwork::set_site_up(SiteId site, bool up) {
  {
    std::lock_guard lock(state_mu_);
    site_up_[site] = up;
  }
  if (!up) {
    // A crashed process loses its in-flight inbox.
    Inbox& inbox = *inboxes_[site];
    std::lock_guard lock(inbox.mu);
    inbox.messages.clear();
  }
  inboxes_[site]->cv.notify_all();
}

bool SimNetwork::site_up(SiteId site) const {
  std::lock_guard lock(state_mu_);
  return site_up_[site];
}

void SimNetwork::set_link_up(SiteId a, SiteId b, bool up) {
  std::lock_guard lock(state_mu_);
  link_up_[a][b] = up;
  link_up_[b][a] = up;
}

bool SimNetwork::link_up(SiteId a, SiteId b) const {
  std::lock_guard lock(state_mu_);
  return link_up_[a][b];
}

NetStats SimNetwork::stats() const {
  std::lock_guard lock(state_mu_);
  return stats_;
}

void SimNetwork::reset_stats() {
  std::lock_guard lock(state_mu_);
  stats_ = NetStats{};
}

}  // namespace atp
