#include "net/network.h"

#include <cassert>
#include <memory>

#include "fault/fault.h"

namespace atp {

SimNetwork::SimNetwork(std::size_t n_sites, NetworkOptions options)
    : options_(options),
      site_up_(n_sites, true),
      link_up_(n_sites, std::vector<bool>(n_sites, true)),
      jitter_rng_(options.jitter_seed) {
  inboxes_.reserve(n_sites);
  for (std::size_t i = 0; i < n_sites; ++i) {
    inboxes_.push_back(std::make_unique<Inbox>());
  }
}

SimNetwork::~SimNetwork() { attach_metrics(nullptr); }

void SimNetwork::attach_metrics(obs::MetricsRegistry* reg) {
  if (metrics_ != nullptr) {
    metrics_->remove_collector(collector_id_);
    metrics_ = nullptr;
    collector_id_ = 0;
  }
  if (reg == nullptr) return;
  metrics_ = reg;
  collector_id_ = reg->add_collector([this](obs::SnapshotBuilder& b) {
    const NetStats s = stats();
    b.counter("net.sim.sent", double(s.sent));
    b.counter("net.sim.delivered", double(s.delivered));
    b.counter("net.sim.dropped", double(s.dropped));
  });
}

std::uint64_t SimNetwork::send(Message msg) {
  Inbox& inbox = *inboxes_[msg.to];
  // The inbox lock is held across the liveness check AND the publish (lock
  // order: inbox.mu before state_mu_, matching the receive path).  A
  // concurrent set_site_up(to, false) therefore cannot clear the inbox
  // between our check and our push: a "crashed" site never observes a
  // message whose send raced its crash.
  std::unique_lock ilock(inbox.mu);
  std::uint64_t id;
  bool deliverable;
  auto delay = options_.one_way_latency;
  {
    std::lock_guard slock(state_mu_);
    id = next_id_++;
    ++stats_.sent;
    deliverable = site_up_[msg.to] && site_up_[msg.from] &&
                  link_up_[msg.from][msg.to];
    if (!deliverable) {
      ++stats_.dropped;
    } else if (options_.jitter.count() > 0) {
      // Unbiased uniform draw over [0, jitter] (Rng::uniform rejects).
      delay += std::chrono::microseconds(
          jitter_rng_.uniform(std::uint64_t(options_.jitter.count()) + 1));
    }
  }
  if (!deliverable) {
    ilock.unlock();
    Tracer::emit(tracer_, TraceKind::NetDrop, msg.from, kInvalidTxn, msg.to, 0,
                 0, id);
    return id;
  }

  NetFault fault;  // injector keeps its own lock; decisions are pure hashes
  if (fault_ != nullptr) fault = fault_->on_send(msg);
  if (fault.drop) {
    {
      std::lock_guard slock(state_mu_);
      ++stats_.dropped;
    }
    ilock.unlock();
    Tracer::emit(tracer_, TraceKind::NetDrop, msg.from, kInvalidTxn, msg.to, 0,
                 0, id);
    return id;
  }

  const auto now = Clock::now();
  Tracer::emit(tracer_, TraceKind::NetSend, msg.from, kInvalidTxn, msg.to, 0,
               0, id);
  if (fault.duplicate) {
    // The copy travels under a FRESH id (and its own jitter draw): reply
    // correlation keys on the id of one specific transmission, and two
    // in-flight messages sharing an id would break that assumption.
    Message copy = msg;
    auto dup_delay = options_.one_way_latency + fault.extra_delay;
    {
      std::lock_guard slock(state_mu_);
      copy.id = next_id_++;
      ++stats_.sent;
      if (options_.jitter.count() > 0) {
        dup_delay += std::chrono::microseconds(
            jitter_rng_.uniform(std::uint64_t(options_.jitter.count()) + 1));
      }
    }
    Tracer::emit(tracer_, TraceKind::NetSend, copy.from, kInvalidTxn, copy.to,
                 0, 0, copy.id);
    inbox.messages.push_back(Pending{now + dup_delay, std::move(copy)});
  }
  msg.id = id;
  inbox.messages.push_back(Pending{now + delay + fault.extra_delay,
                                   std::move(msg)});
  ilock.unlock();
  inbox.cv.notify_all();
  return id;
}

std::optional<Message> SimNetwork::receive_matching(
    SiteId site, std::chrono::milliseconds timeout,
    const std::function<bool(const Message&)>& pred) {
  assert(site < inboxes_.size());
  Inbox& inbox = *inboxes_[site];
  const auto deadline = Clock::now() + timeout;
  std::unique_lock lock(inbox.mu);
  for (;;) {
    const auto now = Clock::now();
    Clock::time_point earliest = deadline;
    for (auto it = inbox.messages.begin(); it != inbox.messages.end(); ++it) {
      if (!pred(it->msg)) continue;
      if (it->deliver_at <= now) {
        Message m = std::move(it->msg);
        inbox.messages.erase(it);
        {
          std::lock_guard slock(state_mu_);
          ++stats_.delivered;
        }
        Tracer::emit(tracer_, TraceKind::NetDeliver, site, kInvalidTxn, m.from,
                     0, 0, m.id);
        return m;
      }
      if (it->deliver_at < earliest) earliest = it->deliver_at;
    }
    if (now >= deadline) return std::nullopt;
    inbox.cv.wait_until(lock, earliest);
  }
}

std::optional<Message> SimNetwork::receive_request(
    SiteId site, std::chrono::milliseconds timeout) {
  return receive_matching(site, timeout,
                          [](const Message& m) { return !m.is_reply(); });
}

std::optional<Message> SimNetwork::receive_reply(
    SiteId site, std::uint64_t correlation, std::chrono::milliseconds timeout) {
  return receive_matching(site, timeout, [correlation](const Message& m) {
    return m.correlation == correlation;
  });
}

void SimNetwork::set_site_up(SiteId site, bool up) {
  {
    std::lock_guard lock(state_mu_);
    site_up_[site] = up;
  }
  if (!up) {
    // A crashed process loses its in-flight inbox.
    Inbox& inbox = *inboxes_[site];
    std::lock_guard lock(inbox.mu);
    inbox.messages.clear();
  }
  inboxes_[site]->cv.notify_all();
}

bool SimNetwork::site_up(SiteId site) const {
  std::lock_guard lock(state_mu_);
  return site_up_[site];
}

void SimNetwork::set_link_up(SiteId a, SiteId b, bool up) {
  std::lock_guard lock(state_mu_);
  link_up_[a][b] = up;
  link_up_[b][a] = up;
}

bool SimNetwork::link_up(SiteId a, SiteId b) const {
  std::lock_guard lock(state_mu_);
  return link_up_[a][b];
}

NetStats SimNetwork::stats() const {
  std::lock_guard lock(state_mu_);
  return stats_;
}

void SimNetwork::reset_stats() {
  std::lock_guard lock(state_mu_);
  stats_ = NetStats{};
}

}  // namespace atp
