// Simulated point-to-point network between sites.
//
// Delivery pays a configurable one-way latency (+ jitter); this is what makes
// the Section 4 comparison meaningful -- 2PC pays two or three round trips of
// it per distributed commit, the chopped/recoverable-queue path pays one
// one-way hop off the client's critical path.
//
// Failure injection: sites and links can be marked down.  Messages to a down
// site or across a down link are silently dropped (as a crashed process
// would), and a site's in-flight inbox is discarded when it crashes.
// Reliability on top of this (acks, retransmission, dedupe) is the
// recoverable-queue layer's job, mirroring the real protocol stack.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "net/message.h"
#include "obs/metrics_registry.h"
#include "trace/tracer.h"

#include "common/ordered_lock.h"

namespace atp {

class FaultInjector;

struct NetworkOptions {
  std::chrono::microseconds one_way_latency{500};
  std::chrono::microseconds jitter{0};  ///< uniform extra delay in [0, jitter]
  std::uint64_t jitter_seed = 0x9e3779b97f4a7c15ULL;
};

struct NetStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;  ///< destination/site/link down at send time
};

class SimNetwork {
 public:
  SimNetwork(std::size_t n_sites, NetworkOptions options);
  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;
  ~SimNetwork();

  /// Queue `msg` for delivery after the simulated latency.  Assigns and
  /// returns the message id.  Dropped (id still returned) if the destination
  /// site or the link is down.
  std::uint64_t send(Message msg);

  /// Next deliverable *request* (correlation == 0) addressed to `site`.
  /// Blocks up to `timeout`; replies are left in place for receive_reply.
  std::optional<Message> receive_request(SiteId site,
                                         std::chrono::milliseconds timeout);

  /// Next deliverable *reply* to request id `correlation` addressed to
  /// `site`.  Other messages are left queued.
  std::optional<Message> receive_reply(SiteId site, std::uint64_t correlation,
                                       std::chrono::milliseconds timeout);

  void set_site_up(SiteId site, bool up);
  [[nodiscard]] bool site_up(SiteId site) const;

  /// Symmetric link control.
  void set_link_up(SiteId a, SiteId b, bool up);
  [[nodiscard]] bool link_up(SiteId a, SiteId b) const;

  [[nodiscard]] NetStats stats() const;
  void reset_stats();

  /// Attach a tracer: every send, drop, and delivery is recorded (site =
  /// sender for send/drop, receiver for delivery; key = the peer site).
  void set_tracer(Tracer* tracer) noexcept { tracer_ = tracer; }

  /// Attach a fault injector: every otherwise-deliverable send consults it
  /// for a drop / duplicate / extra-delay verdict (fault/fault.h).  Injected
  /// duplicates are delivered under FRESH message ids, so reply correlation
  /// (keyed on the id of a specific transmission) stays unambiguous.  Owned
  /// by the caller; must outlive the network or be detached with nullptr.
  void set_fault_injector(FaultInjector* injector) noexcept {
    fault_ = injector;
  }

  [[nodiscard]] std::size_t site_count() const noexcept {
    return inboxes_.size();
  }

  /// Publish the traffic tallies into `reg` as a pull collector
  /// (net.sim.sent / net.sim.delivered / net.sim.dropped).  The registry
  /// must outlive the network (the destructor unregisters).  nullptr
  /// detaches.
  void attach_metrics(obs::MetricsRegistry* reg);

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    Clock::time_point deliver_at;
    Message msg;
  };

  struct Inbox {
    mutable OrderedMutex<LockRank::kNetInbox> mu;  ///< rank kNetInbox: taken before state_mu_
    OrderedCondVar cv;
    std::list<Pending> messages;
  };

  // Wait until a message matching `pred` is deliverable; pop and return it.
  std::optional<Message> receive_matching(
      SiteId site, std::chrono::milliseconds timeout,
      const std::function<bool(const Message&)>& pred);

  // Lock order: an inbox's mu is ALWAYS taken before state_mu_ (send nests
  // the liveness check + id assignment inside the destination inbox lock;
  // the receive path nests its stats update the same way).  set_site_up
  // follows the same order, which is what closes the crash/send race: a
  // send either observes the site down, or completes its publish before the
  // crash clears the inbox -- never a push into an already-cleared inbox.
  NetworkOptions options_;
  std::vector<std::unique_ptr<Inbox>> inboxes_;
  mutable OrderedMutex<LockRank::kNetState> state_mu_;  // rank kNetState; site/link up-ness + stats + ids + jitter
  std::vector<bool> site_up_;
  std::vector<std::vector<bool>> link_up_;
  NetStats stats_;
  std::uint64_t next_id_ = 1;
  Rng jitter_rng_{0};  // re-seeded from options in the constructor
  Tracer* tracer_ = nullptr;
  FaultInjector* fault_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::MetricsRegistry::CollectorId collector_id_ = 0;
};

}  // namespace atp
