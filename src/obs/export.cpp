#include "obs/export.h"

#include <cmath>
#include <cstdio>

namespace atp::obs {

namespace {

/// Shortest round-trippable-enough representation: plain %.17g prints
/// 0.1-style doubles with noise digits; %.12g is exact for every value the
/// metrics layer produces (counts, microseconds, fuzziness budgets).
std::string num(double v) {
  if (std::isnan(v) || std::isinf(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

std::string prom_name(const std::string& name) {
  std::string out = "atp_";
  out.reserve(name.size() + 4);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

std::string snapshot_to_json(const MetricsSnapshot& snap) {
  std::string out = "{\n";
  out += "  \"epoch\": " + std::to_string(snap.epoch) + ",\n";
  out += "  \"steady_us\": " + std::to_string(snap.steady_us) + ",\n";
  out += "  \"samples\": [\n";
  for (std::size_t i = 0; i < snap.samples.size(); ++i) {
    const Sample& s = snap.samples[i];
    out += "    {\"name\": \"" + json_escape(s.name) + "\", ";
    switch (s.kind) {
      case Sample::Kind::Counter:
        out += "\"kind\": \"counter\", \"value\": " + num(s.value);
        break;
      case Sample::Kind::Gauge:
        out += "\"kind\": \"gauge\", \"value\": " + num(s.value);
        break;
      case Sample::Kind::Histogram:
        out += "\"kind\": \"histogram\", \"count\": " +
               std::to_string(s.summary.count) +
               ", \"min\": " + num(s.summary.min) +
               ", \"max\": " + num(s.summary.max) +
               ", \"mean\": " + num(s.summary.mean) +
               ", \"p50\": " + num(s.summary.p50) +
               ", \"p95\": " + num(s.summary.p95) +
               ", \"p99\": " + num(s.summary.p99);
        break;
    }
    out += "}";
    if (i + 1 < snap.samples.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string snapshot_to_prometheus(const MetricsSnapshot& snap) {
  std::string out;
  out.reserve(snap.samples.size() * 48);
  for (const Sample& s : snap.samples) {
    const std::string base = prom_name(s.name);
    switch (s.kind) {
      case Sample::Kind::Counter:
        out += "# TYPE " + base + " counter\n";
        out += base + " " + num(s.value) + "\n";
        break;
      case Sample::Kind::Gauge:
        out += "# TYPE " + base + " gauge\n";
        out += base + " " + num(s.value) + "\n";
        break;
      case Sample::Kind::Histogram:
        out += "# TYPE " + base + " summary\n";
        out += base + "_count " + std::to_string(s.summary.count) + "\n";
        out += base + "_sum " + num(s.summary.sum) + "\n";
        out += base + "_min " + num(s.summary.min) + "\n";
        out += base + "_max " + num(s.summary.max) + "\n";
        out += base + "_mean " + num(s.summary.mean) + "\n";
        out += base + "_p50 " + num(s.summary.p50) + "\n";
        out += base + "_p95 " + num(s.summary.p95) + "\n";
        out += base + "_p99 " + num(s.summary.p99) + "\n";
        break;
    }
  }
  return out;
}

}  // namespace atp::obs
