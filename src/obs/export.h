// Snapshot exposition: one JSON document and one Prometheus text page per
// MetricsSnapshot.  Both are pure functions of the snapshot so the HTTP
// endpoint, the signal-dump path, bench_driver's embedded metrics block and
// atp-top all render identical data.
#pragma once

#include <string>

#include "obs/metrics_registry.h"

namespace atp::obs {

/// JSON document:
/// {
///   "epoch": 3, "steady_us": 123,
///   "samples": [
///     {"name": "db.commits", "kind": "counter", "value": 42},
///     {"name": "exec.piece_us", "kind": "histogram", "count": 9,
///      "min": ..., "max": ..., "mean": ..., "p50": ..., "p95": ..., "p99": ...},
///     ...
///   ]
/// }
/// Samples are sorted by name; atp-top and the bench driver key off the
/// dotted name prefixes (eps., lock.stripe.<i>., exec., queue., net., dist.).
[[nodiscard]] std::string snapshot_to_json(const MetricsSnapshot& snap);

/// Prometheus text exposition (version 0.0.4).  Dots and dashes in names
/// become underscores and everything is prefixed "atp_"; histograms are
/// flattened to _count/_sum/_min/_max/_mean/_p50/_p95/_p99 gauges.
[[nodiscard]] std::string snapshot_to_prometheus(const MetricsSnapshot& snap);

/// Minimal JSON string escaping for emitters (quotes, backslashes, newlines).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace atp::obs
