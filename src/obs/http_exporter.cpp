#include "obs/http_exporter.h"

#include <csignal>
#include <fstream>
#include <sys/socket.h>
#include <unistd.h>

#include "common/socket.h"
#include "obs/export.h"

namespace atp::obs {

namespace {

/// Signal handlers can only touch lock-free globals; the serve loop polls
/// this every tick.
std::atomic<bool> g_dump_requested{false};

extern "C" void obs_dump_signal_handler(int) {
  g_dump_requested.store(true, std::memory_order_relaxed);  // relaxed-ok: polled flag
}

std::string http_response(const char* status, const char* content_type,
                          const std::string& body) {
  std::string out = "HTTP/1.1 ";
  out += status;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

ObsServer::ObsServer(MetricsRegistry* registry, std::uint16_t port)
    : registry_(registry) {
  listener_ = std::make_unique<ListenSocket>(port, /*backlog=*/4);
  if (!listener_->ok()) {
    listener_.reset();
    return;
  }
  port_ = listener_->port();
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
}

ObsServer::~ObsServer() {
  running_.store(false, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

void ObsServer::set_registry(MetricsRegistry* registry) {
  std::lock_guard lock(registry_mu_);
  registry_ = registry;
}

MetricsSnapshot ObsServer::take_snapshot() {
  std::lock_guard lock(registry_mu_);
  return registry_ ? registry_->snapshot() : MetricsSnapshot{};
}

bool ObsServer::dump_json(const std::string& path) {
  const MetricsSnapshot snap = take_snapshot();
  std::ofstream f(path);
  if (!f) return false;
  f << snapshot_to_json(snap);
  return bool(f);
}

void ObsServer::enable_signal_dump(const std::string& path_prefix, int signo) {
  dump_prefix_ = path_prefix;
  struct sigaction sa{};
  sa.sa_handler = obs_dump_signal_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(signo, &sa, nullptr);
}

void ObsServer::serve_loop() {
  while (running_.load(std::memory_order_acquire)) {
    if (g_dump_requested.exchange(false,  // relaxed-ok: flag only; the snapshot has its own sync
                                  std::memory_order_relaxed) &&
        !dump_prefix_.empty()) {
      const MetricsSnapshot snap = take_snapshot();
      const std::string path =
          dump_prefix_ + "." + std::to_string(snap.epoch) + ".json";
      std::ofstream f(path);
      if (f) f << snapshot_to_json(snap);
    }
    const int fd = listener_->accept_with_timeout(/*timeout_ms=*/100);
    if (fd < 0) continue;
    handle_connection(fd);
    ::close(fd);
  }
}

void ObsServer::handle_connection(int fd) {
  // Read until the end of the request head (we never expect a body).
  std::string req;
  char buf[1024];
  while (req.find("\r\n\r\n") == std::string::npos && req.size() < 8192) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    req.append(buf, std::size_t(n));
  }
  const std::size_t sp1 = req.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos ? sp1 : req.find(' ', sp1 + 1);
  if (sp2 == std::string::npos || req.compare(0, 3, "GET") != 0) {
    send_all(fd, http_response("400 Bad Request", "text/plain", "bad request\n"));
    return;
  }
  const std::string path = req.substr(sp1 + 1, sp2 - sp1 - 1);
  if (path == "/metrics") {
    send_all(fd, http_response("200 OK", "text/plain; version=0.0.4",
                               snapshot_to_prometheus(take_snapshot())));
  } else if (path == "/snapshot.json" || path == "/snapshot") {
    send_all(fd, http_response("200 OK", "application/json",
                               snapshot_to_json(take_snapshot())));
  } else if (path == "/healthz") {
    send_all(fd, http_response("200 OK", "text/plain", "ok\n"));
  } else {
    send_all(fd, http_response("404 Not Found", "text/plain", "not found\n"));
  }
}

bool http_get(const std::string& host, std::uint16_t port,
              const std::string& path, std::string* body_out) {
  const int fd = connect_tcp(host, port);
  if (fd < 0) return false;
  const std::string req = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                          "\r\nConnection: close\r\n\r\n";
  send_all(fd, req);
  std::string resp;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    resp.append(buf, std::size_t(n));
  }
  ::close(fd);
  const std::size_t head_end = resp.find("\r\n\r\n");
  if (head_end == std::string::npos) return false;
  if (resp.compare(0, 12, "HTTP/1.1 200") != 0 &&
      resp.compare(0, 12, "HTTP/1.0 200") != 0) {
    return false;
  }
  if (body_out) *body_out = resp.substr(head_end + 4);
  return true;
}

}  // namespace atp::obs
