// Tiny blocking HTTP exposition endpoint + snapshot dump plumbing.
//
// ObsServer runs one thread: a poll()-timeout accept loop serving
//   GET /metrics        -> Prometheus text (0.0.4)
//   GET /snapshot.json  -> the JSON snapshot document (export.h)
//   GET /healthz        -> "ok"
// one request per connection (Connection: close).  It is deliberately not a
// real HTTP server -- one synchronous client at a time (atp-top or a scrape)
// is the design point, and the snapshot itself is where the cost is.
//
// The snapshot source is swappable at runtime (set_registry): long-lived
// drivers like bench_driver keep one server up across many short-lived
// databases, pointing it at the current run's registry.
//
// Dump paths: dump_json() writes the current snapshot to a file
// programmatically; enable_signal_dump() installs a signal handler (SIGUSR1
// by default) that makes the server thread write
// <prefix>.<epoch>.json on the next loop tick -- the handler itself only
// sets an atomic flag, so it is async-signal-safe.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics_registry.h"

#include "common/ordered_lock.h"

namespace atp {
class ListenSocket;
}

namespace atp::obs {

class ObsServer {
 public:
  /// Binds 127.0.0.1:port (port 0 = kernel-assigned, see port()) and starts
  /// the serving thread.  `registry` may be nullptr until set_registry().
  ObsServer(MetricsRegistry* registry, std::uint16_t port);
  ~ObsServer();
  ObsServer(const ObsServer&) = delete;
  ObsServer& operator=(const ObsServer&) = delete;

  /// Did the socket bind?  (A taken port logs to stderr and leaves the
  /// server inert rather than aborting the host process.)
  [[nodiscard]] bool ok() const noexcept { return listener_ != nullptr; }

  /// Actual bound port (after port-0 auto-assign).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Swap the snapshot source; nullptr serves an empty snapshot.
  void set_registry(MetricsRegistry* registry);

  /// Write the current snapshot JSON to `path`; false on I/O error or no
  /// registry.
  bool dump_json(const std::string& path);

  /// Arrange for `signo` (default SIGUSR1) to dump <prefix>.<epoch>.json
  /// from the server thread.  One server per process may use this (the
  /// handler targets a process-global flag).
  void enable_signal_dump(const std::string& path_prefix, int signo);

 private:
  void serve_loop();
  void handle_connection(int fd);
  [[nodiscard]] MetricsSnapshot take_snapshot();

  std::unique_ptr<ListenSocket> listener_;  ///< null when the bind failed
  std::uint16_t port_ = 0;
  OrderedMutex<LockRank::kObsExporter> registry_mu_;  ///< rank kObsExporter: taken before the registry lock
  MetricsRegistry* registry_ = nullptr;
  std::atomic<bool> running_{false};
  std::string dump_prefix_;
  std::thread thread_;
};

/// Minimal HTTP/1.1 GET for atp-top and tests: fetches
/// http://host:port/path and returns the response body, or empty optional on
/// connect/protocol failure.
[[nodiscard]] bool http_get(const std::string& host, std::uint16_t port,
                            const std::string& path, std::string* body_out);

}  // namespace atp::obs
