// Hot-path metric instruments: the write side of the observability layer.
//
// Everything the engine's hot paths touch lives here and costs at most one
// relaxed atomic RMW per event -- no locks, no allocation, no syscalls.  The
// read side (aggregation into snapshots) is in metrics_registry.h and pays
// all the consistency cost instead.
//
// Compile-time gate: the root CMake option ATP_OBS (default ON) defines
// ATP_OBS_ENABLED.  When the option is OFF, the ATP_OBS_ONLY(...) macro
// compiles instrumentation statements out entirely so the overhead of the
// metrics layer on the hot paths is exactly zero -- this is what the
// EXPERIMENTS.md "instrumentation overhead" comparison builds.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace atp::obs {

#if defined(ATP_OBS_ENABLED)
#define ATP_OBS_ONLY(...) __VA_ARGS__
#else
#define ATP_OBS_ONLY(...)
#endif

/// Monotonic counter sharded across cache-line-padded per-thread slots:
/// add() is one relaxed fetch_add on the calling thread's home slot, so
/// concurrent writers on different cores never bounce a line between them.
/// value() sums the slots (monotone: slots only grow, and a reader that sums
/// twice can only see values >= the first pass).
class ShardedCounter {
 public:
  static constexpr std::size_t kSlots = 16;

  void add(std::uint64_t n = 1) noexcept {
#if defined(ATP_OBS_ENABLED)
    slots_[slot_index()].v.fetch_add(n, std::memory_order_relaxed);  // relaxed-ok: sharded monotone counter
#else
    (void)n;
#endif
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const Slot& s : slots_) {
      sum += s.v.load(std::memory_order_relaxed);  // relaxed-ok: torn sums tolerated (monotone)
    }
    return sum;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> v{0};
  };

  /// Each thread gets a stable slot index on first use (round-robin over
  /// kSlots); collisions just share a fetch_add target, which stays correct.
  static std::size_t slot_index() noexcept {
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t mine =
        next.fetch_add(1, std::memory_order_relaxed) % kSlots;  // relaxed-ok: slot pick; collisions just share
    return mine;
  }

  std::array<Slot, kSlots> slots_{};
};

/// Last-value-wins gauge (queue depth, live-ET count, ...).  Double-valued so
/// fuzziness budgets fit; stores are relaxed (the snapshot only needs *a*
/// recent value, not a serialization point).
class Gauge {
 public:
  void set(double v) noexcept {
    ATP_OBS_ONLY(value_.store(v, std::memory_order_relaxed);)  // relaxed-ok: last-value-wins gauge
    (void)v;
  }
  void add(double d) noexcept {
#if defined(ATP_OBS_ENABLED)
    // relaxed-ok: fetch_add on atomic<double> (C++20); only the sum matters.
    value_.fetch_add(d, std::memory_order_relaxed);
#else
    (void)d;
#endif
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);  // relaxed-ok: gauge snapshot
  }

 private:
  std::atomic<double> value_{0};
};

}  // namespace atp::obs
