#include "obs/metrics_registry.h"

#include <algorithm>
#include <chrono>

namespace atp::obs {

const Sample* MetricsSnapshot::find(const std::string& name) const {
  for (const Sample& s : samples) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

ShardedCounter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<ShardedCounter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::size_t reservoir) {
  std::lock_guard lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(reservoir);
  return *slot;
}

MetricsRegistry::CollectorId MetricsRegistry::add_collector(Collector fn) {
  std::lock_guard lock(mu_);
  const CollectorId id = next_collector_++;
  collectors_.emplace(id, std::move(fn));
  return id;
}

void MetricsRegistry::remove_collector(CollectorId id) {
  std::lock_guard lock(mu_);
  collectors_.erase(id);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mu_);
  MetricsSnapshot snap;
  snap.epoch = ++epoch_;
  snap.steady_us = std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now().time_since_epoch())
                       .count();
  SnapshotBuilder b;
  for (const auto& [name, c] : counters_) {
    b.counter(name, double(c->value()));
  }
  for (const auto& [name, g] : gauges_) b.gauge(name, g->value());
  for (const auto& [name, h] : histograms_) b.histogram(name, h->summarize());
  for (const auto& kv : collectors_) kv.second(b);
  snap.samples = std::move(b.samples_);
  std::stable_sort(
      snap.samples.begin(), snap.samples.end(),
      [](const Sample& a, const Sample& c) { return a.name < c.name; });
  return snap;
}

}  // namespace atp::obs
