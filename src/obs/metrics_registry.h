// MetricsRegistry: the always-on metrics hub every subsystem registers into.
//
// Two registration styles, matching two kinds of state:
//
//   * push instruments -- counter()/gauge()/histogram() hand out stable
//     references to named instruments (instruments.h, common/metrics.h).
//     Hot paths hold the reference and pay one relaxed atomic per event.
//   * pull collectors  -- add_collector() registers a callback that reads a
//     component's own thread-safe state (EtRegistry::snapshot_all,
//     LockManager::stripe_stats, QueueEndpoint::stats, ...) and appends
//     samples at snapshot time.  Components that already keep consistent
//     internal stats expose them this way for free, and a component's owner
//     unregisters the collector before the component dies.
//
// snapshot() produces an epoch-consistent MetricsSnapshot: each snapshot
// carries a strictly-increasing epoch and a steady-clock timestamp, every
// sample in it was read after the previous snapshot's samples (the snapshot
// mutex orders them), counters are monotone between epochs, and any
// multi-value invariant a collector needs (e.g. the registry's
// import == export pairing) is taken under that component's own consistency
// protocol (the EtRegistry seqlock), so no torn pairs can appear.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "obs/instruments.h"

#include "common/ordered_lock.h"

namespace atp::obs {

/// One aggregated data point in a snapshot.
struct Sample {
  enum class Kind : std::uint8_t { Counter, Gauge, Histogram };
  std::string name;
  Kind kind = Kind::Counter;
  double value = 0;     ///< counter/gauge value (histograms: count)
  StatSummary summary;  ///< populated for histograms only
};

/// Passed to collectors so they can append samples without seeing the
/// registry's internals.
class SnapshotBuilder {
 public:
  void counter(std::string name, double value) {
    samples_.push_back({std::move(name), Sample::Kind::Counter, value, {}});
  }
  void gauge(std::string name, double value) {
    samples_.push_back({std::move(name), Sample::Kind::Gauge, value, {}});
  }
  void histogram(std::string name, const StatSummary& s) {
    samples_.push_back(
        {std::move(name), Sample::Kind::Histogram, double(s.count), s});
  }

 private:
  friend class MetricsRegistry;
  std::vector<Sample> samples_;
};

struct MetricsSnapshot {
  std::uint64_t epoch = 0;       ///< strictly increasing per registry
  std::int64_t steady_us = 0;    ///< steady-clock capture time
  std::vector<Sample> samples;   ///< sorted by name

  /// First sample with this exact name, or nullptr.
  [[nodiscard]] const Sample* find(const std::string& name) const;
};

class MetricsRegistry {
 public:
  using Collector = std::function<void(SnapshotBuilder&)>;
  using CollectorId = std::uint64_t;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Named push instruments.  First call creates; later calls return the
  /// same object, whose address is stable for the registry's lifetime.
  ShardedCounter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::size_t reservoir = kHistogramReservoir);

  /// Register/unregister a pull collector.  The callback must stay valid
  /// until remove_collector returns; it runs under the snapshot mutex with
  /// no registry locks its component could also want.
  CollectorId add_collector(Collector fn);
  void remove_collector(CollectorId id);

  /// Aggregate everything into one epoch-stamped snapshot.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Smaller default reservoir than common/metrics.h: registries can hold
  /// many histograms (one per lock stripe), and the exposition layer only
  /// reads p50/p95/p99.
  static constexpr std::size_t kHistogramReservoir = 512;

 private:
  mutable OrderedMutex<LockRank::kObsRegistry> mu_;  // rank kObsRegistry: snapshot() runs collectors (and their component stats locks) under it
  // std::map: stable iteration order gives deterministically-sorted samples.
  std::map<std::string, std::unique_ptr<ShardedCounter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<CollectorId, Collector> collectors_;
  CollectorId next_collector_ = 1;
  mutable std::uint64_t epoch_ = 0;
};

}  // namespace atp::obs
