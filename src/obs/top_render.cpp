#include "obs/top_render.h"

// This file concatenates many `"literal" + temporary-std::string` pairs;
// GCC 12's -Wrestrict fires a false positive inside the inlined
// operator+(const char*, string&&) at -O2 (GCC PR105651).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wrestrict"
#endif

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace atp::obs {

namespace {

// --- JSON scanning helpers (for our own emitter's one-sample-per-line
// layout; see snapshot_to_json) ---

/// Value of `"key": <number>` inside `line`, or fallback.
double scan_number(const std::string& line, const std::string& key,
                   double fallback = 0) {
  const std::string needle = "\"" + key + "\": ";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return fallback;
  return std::strtod(line.c_str() + pos + needle.size(), nullptr);
}

/// Value of `"key": "<string>"` inside `line`, or empty.
std::string scan_string(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\": \"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return {};
  const auto start = pos + needle.size();
  const auto end = line.find('"', start);
  if (end == std::string::npos) return {};
  return line.substr(start, end - start);
}

std::string fmt(const char* f, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, f, v);
  return buf;
}

/// `[#####.....]  42.3%` -- `frac` clamped to [0,1].
std::string bar(double frac, std::size_t cells) {
  frac = std::clamp(frac, 0.0, 1.0);
  const std::size_t fill = std::size_t(std::lround(frac * double(cells)));
  std::string out = "[";
  out.append(fill, '#');
  out.append(cells - fill, '.');
  out += "] " + fmt("%5.1f%%", frac * 100);
  return out;
}

double value_of(const MetricsSnapshot& s, const std::string& name) {
  const Sample* p = s.find(name);
  return p == nullptr ? 0 : p->value;
}

/// Delta of a counter against the previous frame (total when prev is null).
double delta_of(const MetricsSnapshot& now, const MetricsSnapshot* prev,
                const std::string& name) {
  const double d =
      value_of(now, name) - (prev == nullptr ? 0 : value_of(*prev, name));
  return std::max(0.0, d);  // registry swaps can step counters backwards
}

/// One epsilon-budget line: used/limit across live + retired ETs of a class.
std::string eps_line(const MetricsSnapshot& s, const char* label,
                     const std::string& cls, std::size_t bar_cells) {
  const double used = value_of(s, "eps.live." + cls + ".used") +
                      value_of(s, "eps.retired." + cls + ".used");
  const double limit = value_of(s, "eps.live." + cls + ".limit") +
                       value_of(s, "eps.retired." + cls + ".limit");
  const double unlimited = value_of(s, "eps.live." + cls + ".unlimited") +
                           value_of(s, "eps.retired." + cls + ".unlimited");
  const double count = value_of(s, "eps.live." + cls + ".count") +
                       value_of(s, "eps.retired." + cls + ".count");
  std::string out = "  ";
  out += label;
  out += ' ';
  out += bar(limit > 0 ? used / limit : 0, bar_cells);
  out += "  used ";
  out += fmt("%.6g", used);
  out += " / ";
  out += fmt("%.6g", limit);
  out += "  ets ";
  out += fmt("%.0f", count);
  if (unlimited > 0) {
    out += " (";
    out += fmt("%.0f", unlimited);
    out += " unlimited)";
  }
  out += '\n';
  return out;
}

}  // namespace

bool parse_snapshot_json(const std::string& json, MetricsSnapshot* out) {
  if (json.find("\"samples\"") == std::string::npos) return false;
  MetricsSnapshot snap;
  snap.epoch = std::uint64_t(scan_number(json, "epoch", -1));
  snap.steady_us = std::int64_t(scan_number(json, "steady_us", 0));
  if (scan_number(json, "epoch", -1) < 0) return false;

  // One sample object per line (the emitter guarantees it).
  std::size_t start = 0;
  while (start < json.size()) {
    std::size_t end = json.find('\n', start);
    if (end == std::string::npos) end = json.size();
    const std::string line = json.substr(start, end - start);
    start = end + 1;
    if (line.find("\"name\"") == std::string::npos) continue;

    Sample s;
    s.name = scan_string(line, "name");
    const std::string kind = scan_string(line, "kind");
    if (s.name.empty() || kind.empty()) return false;
    if (kind == "counter") {
      s.kind = Sample::Kind::Counter;
      s.value = scan_number(line, "value");
    } else if (kind == "gauge") {
      s.kind = Sample::Kind::Gauge;
      s.value = scan_number(line, "value");
    } else if (kind == "histogram") {
      s.kind = Sample::Kind::Histogram;
      s.summary.count = std::uint64_t(scan_number(line, "count"));
      s.summary.min = scan_number(line, "min");
      s.summary.max = scan_number(line, "max");
      s.summary.mean = scan_number(line, "mean");
      s.summary.p50 = scan_number(line, "p50");
      s.summary.p95 = scan_number(line, "p95");
      s.summary.p99 = scan_number(line, "p99");
      s.value = double(s.summary.count);
    } else {
      return false;
    }
    snap.samples.push_back(std::move(s));
  }
  *out = std::move(snap);
  return true;
}

std::string render_top(const MetricsSnapshot& now, const MetricsSnapshot* prev,
                       const TopOptions& opts) {
  const std::size_t width = std::max<std::size_t>(opts.width, 40);
  const std::size_t bar_cells = std::min<std::size_t>(30, width / 3);
  const double dt_s =
      prev == nullptr
          ? 0
          : double(now.steady_us - prev->steady_us) / 1e6;
  const bool rates = dt_s > 1e-6;
  auto rate = [&](const std::string& name) {
    const double d = delta_of(now, prev, name);
    return rates ? d / dt_s : d;
  };
  const char* unit = rates ? "/s" : " total";

  std::string out;
  out += "atp-top  epoch " + std::to_string(now.epoch);
  if (rates) out += "  interval " + fmt("%.1fs", dt_s);
  out += "\n\n";

  // --- Throughput ---
  out += "throughput\n";
  out += "  commits " + fmt("%10.6g", rate("db.commits")) + unit;
  out += "   aborts " + fmt("%.6g", rate("db.aborts")) + unit;
  out += "   live ets " + fmt("%.0f", value_of(now, "db.live_ets"));
  out += "\n\n";

  // --- Epsilon budgets ---
  out += "epsilon budgets (used/limit, live + retired)\n";
  out += eps_line(now, "query  import", "query", bar_cells);
  out += eps_line(now, "update export", "update", bar_cells);
  out += "  charges " + fmt("%.6g", rate("eps.charges_ok")) + unit;
  out += "   rejected imp/exp/adm " +
         fmt("%.6g", rate("eps.rejected_import")) + "/" +
         fmt("%.6g", rate("eps.rejected_export")) + "/" +
         fmt("%.6g", rate("eps.rejected_admission"));
  out += "   fuzz imported " + fmt("%.6g", value_of(now, "eps.import_charged"));
  out += "\n\n";

  // --- Lock stripe heatmap ---
  const auto stripes = std::size_t(value_of(now, "lock.stripes"));
  if (stripes > 0) {
    static const char kShades[] = " .:-=+*#%@";  // 10 intensity levels
    std::vector<double> heat(stripes, 0);
    double peak = 0;
    std::size_t hottest = 0;
    for (std::size_t i = 0; i < stripes; ++i) {
      const std::string p = "lock.stripe." + std::to_string(i) + ".";
      heat[i] = delta_of(now, prev, p + "acquires");
      if (heat[i] > peak) {
        peak = heat[i];
        hottest = i;
      }
    }
    out += "lock stripes (acquire heat";
    out += rates ? ", this interval)\n" : ", total)\n";
    out += "  [";
    for (std::size_t i = 0; i < stripes; ++i) {
      const double frac = peak > 0 ? heat[i] / peak : 0;
      out += kShades[std::size_t(std::lround(frac * 9))];
    }
    out += "]  peak stripe " + std::to_string(hottest) + ": " +
           fmt("%.6g", peak) + " acquires\n";

    const std::string hp = "lock.stripe." + std::to_string(hottest) + ".";
    const Sample* lat = now.find(hp + "acquire_us");
    out += "  waits " + fmt("%.6g", rate("lock.stripe." +
                                         std::to_string(hottest) + ".waits")) +
           unit + "  deadlocks " + fmt("%.6g", delta_of(now, prev,
                                                        hp + "deadlocks")) +
           "  timeouts " + fmt("%.6g", delta_of(now, prev, hp + "timeouts")) +
           "  fuzzy grants " +
           fmt("%.6g", delta_of(now, prev, hp + "fuzzy_grants"));
    if (lat != nullptr && lat->summary.count > 0) {
      out += "  acq p50/p95 " + fmt("%.3g", lat->summary.p50) + "/" +
             fmt("%.3g", lat->summary.p95) + "us";
    }
    out += "\n\n";
  }

  // --- Executor / queue / dist (present only when those layers report) ---
  if (now.find("exec.committed") != nullptr) {
    out += "executor\n";
    out += "  committed " + fmt("%.6g", rate("exec.committed")) + unit;
    out += "  pieces " + fmt("%.6g", rate("exec.committed_pieces")) + unit;
    out += "  resubmits " + fmt("%.6g", rate("exec.resubmissions"));
    out += "  steals " + fmt("%.6g", rate("exec.steals"));
    out += "  queue depth " + fmt("%.0f", value_of(now, "exec.queue_depth"));
    const Sample* pu = now.find("exec.piece_us");
    if (pu != nullptr && pu->summary.count > 0) {
      out += "  piece p50/p95 " + fmt("%.3g", pu->summary.p50) + "/" +
             fmt("%.3g", pu->summary.p95) + "us";
    }
    out += "\n";
  }

  // --- Server front-end (present only when an AtpServer publishes) ---
  if (now.find("srv.sessions.accepted") != nullptr) {
    out += "server front-end\n";
    out += "  sessions " + fmt("%.0f", value_of(now, "srv.sessions.active")) +
           " active  accepted " + fmt("%.6g", rate("srv.sessions.accepted")) +
           unit + "  closed " + fmt("%.6g", rate("srv.sessions.closed")) +
           unit;
    out += "  requests " + fmt("%.6g", rate("srv.requests")) + unit;
    out += "\n";
    out += "  txns " + fmt("%.6g", rate("srv.txn.committed")) + unit +
           " committed  " + fmt("%.6g", rate("srv.txn.aborted")) + unit +
           " aborted  proto errs " +
           fmt("%.6g", delta_of(now, prev, "srv.protocol_errors")) +
           "  window rejects " +
           fmt("%.6g", delta_of(now, prev, "srv.window_rejects"));
    out += "\n";
    // One admission line per class, discovered from the sample names.
    const std::string granted_prefix = "srv.admission.granted.";
    for (const Sample& s : now.samples) {
      if (s.name.rfind(granted_prefix, 0) != 0) continue;
      const std::string cls = s.name.substr(granted_prefix.size());
      out += "  admission " + cls + ": granted " +
             fmt("%.6g", rate(granted_prefix + cls)) + unit + "  rejected " +
             fmt("%.6g", rate("srv.admission.rejected." + cls)) + unit;
      out += "\n";
    }
    // Per-class request latency (queued + execute), from the worker-side
    // histograms.
    const std::string latency_prefix = "srv.request_latency.";
    for (const Sample& s : now.samples) {
      if (s.name.rfind(latency_prefix, 0) != 0) continue;
      if (s.summary.count == 0) continue;
      out += "  latency " + s.name.substr(latency_prefix.size()) +
             ": p50/p99 " + fmt("%.3g", s.summary.p50) + "/" +
             fmt("%.3g", s.summary.p99) + "us  mean " +
             fmt("%.3g", s.summary.mean) + "us  n " +
             fmt("%.0f", double(s.summary.count));
      out += "\n";
    }
    if (now.find("srv.slow_requests") != nullptr) {
      const double slow = delta_of(now, prev, "srv.slow_requests");
      if (slow > 0) {
        out += "  slow requests " + fmt("%.6g", slow) +
               (rates ? " this interval" : " total");
        out += "\n";
      }
    }
    if (now.find("net.sim.sent") != nullptr) {
      out += "  simnet sent/delivered/dropped " +
             fmt("%.6g", rate("net.sim.sent")) + "/" +
             fmt("%.6g", rate("net.sim.delivered")) + "/" +
             fmt("%.6g", rate("net.sim.dropped")) + unit;
      out += "\n";
    }
    out += "\n";
  }

  // --- Online certification (present only when an OnlineCertifier
  // publishes audit.online.*) ---
  if (now.find("audit.online.events_processed") != nullptr) {
    const double violations = value_of(now, "audit.online.violations");
    const bool degraded = value_of(now, "audit.online.degraded") > 0;
    out += "online certification";
    if (violations > 0) {
      out += "  !! " + fmt("%.0f", violations) + " VIOLATIONS";
    } else {
      out += degraded ? "  DEGRADED (events dropped)" : "  ok";
    }
    out += "\n";
    out += "  violations sr/esr " +
           fmt("%.6g", value_of(now, "audit.online.sr_violations")) + "/" +
           fmt("%.6g", value_of(now, "audit.online.esr_violations"));
    out += "  window " + fmt("%.0f", value_of(now, "audit.online.window_nodes")) +
           " nodes  live " + fmt("%.0f", value_of(now, "audit.online.live_txns"));
    out += "  retired " + fmt("%.6g", rate("audit.online.retired_nodes")) + unit;
    out += "\n";
    out += "  lag " + fmt("%.6g", value_of(now, "audit.online.window_lag_us")) +
           "us  events " + fmt("%.6g", rate("audit.online.events_processed")) +
           unit + "  edges " + fmt("%.6g", rate("audit.online.edges")) + unit +
           "  dropped " +
           fmt("%.6g", value_of(now, "audit.online.dropped_events"));
    out += "\n\n";
  }

  // --- Faults & retries (present only when an injector / retry layer
  // publishes; fault.* comes from FaultInjector::attach_metrics, retry.*
  // from the coordinator and chop-handler wirings) ---
  const bool have_faults = now.find("fault.net.dropped") != nullptr ||
                           now.find("fault.wal.fsync_failed") != nullptr;
  const bool have_retries = now.find("retry.2pc.retransmits") != nullptr ||
                            now.find("retry.chop.attempts") != nullptr;
  if (have_faults || have_retries) {
    out += "faults & retries\n";
    if (have_faults) {
      out += "  injected: drop " + fmt("%.6g", rate("fault.net.dropped")) +
             unit + "  dup " + fmt("%.6g", rate("fault.net.duplicated")) +
             unit + "  delay " + fmt("%.6g", rate("fault.net.delayed")) +
             unit + "  fsync fail " +
             fmt("%.6g", rate("fault.wal.fsync_failed")) + unit +
             "  crash/recover " +
             fmt("%.6g", delta_of(now, prev, "fault.site.crashes")) + "/" +
             fmt("%.6g", delta_of(now, prev, "fault.site.recoveries"));
      out += "\n";
    }
    if (have_retries) {
      out += "  retries: 2pc rexmit " +
             fmt("%.6g", rate("retry.2pc.retransmits")) + unit +
             "  commit rexmit " +
             fmt("%.6g", rate("retry.2pc.commit_retransmits")) + unit +
             "  chop attempts " + fmt("%.6g", rate("retry.chop.attempts")) +
             unit;
      out += "\n";
    }
  }
  return out;
}

}  // namespace atp::obs
