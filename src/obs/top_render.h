// atp-top's engine room: parse a snapshot JSON document back into a
// MetricsSnapshot and render one terminal frame from it.
//
// Factored out of tools/atp_top.cpp so the epsilon-utilization math, the
// stripe-heatmap intensity mapping and the rate computation are plain
// functions with unit tests (tests/obs_test.cpp); the tool itself is just
// fetch/poll/clear-screen glue.
#pragma once

#include <string>

#include "obs/metrics_registry.h"

namespace atp::obs {

/// Parse the document produced by snapshot_to_json() (export.h).  Returns
/// false (leaving *out untouched) on anything that does not look like our
/// own emitter's output; this is a parser for the sibling format, not a
/// general JSON parser.
[[nodiscard]] bool parse_snapshot_json(const std::string& json,
                                       MetricsSnapshot* out);

struct TopOptions {
  std::size_t width = 80;  ///< terminal columns the frame may use
};

/// Render one atp-top frame: epsilon-budget utilization bars (live +
/// retired, per ET class), the per-stripe lock contention heatmap, and
/// commit/abort/charge throughput.  `prev` supplies the deltas for rates;
/// pass nullptr on the first frame (rates show as totals).
[[nodiscard]] std::string render_top(const MetricsSnapshot& now,
                                     const MetricsSnapshot* prev,
                                     const TopOptions& opts = {});

}  // namespace atp::obs
