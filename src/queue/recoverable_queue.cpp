#include "queue/recoverable_queue.h"

#include <thread>
#include <utility>

#include "fault/retry.h"

namespace atp {

QueueEndpoint::QueueEndpoint(SiteId site, SimNetwork& net)
    : site_(site), net_(net) {}

void QueueEndpoint::enqueue(Txn& txn, SiteId dest, std::string queue,
                            std::string payload) {
  // Global message id: site in the high bits so ids never collide across
  // endpoints (the receiver dedupes on them).
  std::uint64_t qmsg_id;
  {
    std::lock_guard lock(mu_);
    qmsg_id = (std::uint64_t(site_) << 40) | next_qmsg_++;
  }
  if (wal_ != nullptr) {
    // Staged under the transaction: the record takes effect at recovery
    // only if txn's commit record follows (no extra force needed -- the
    // commit's fsync covers it).
    LogRecord r;
    r.type = LogRecordType::kQueueEnqueue;
    r.txn = txn.id();
    r.qmsg_id = qmsg_id;
    r.queue = queue;
    r.peer = dest;
    r.payload = payload;
    wal_->append(std::move(r));
  }
  // Stage: the message joins the durable outbound set only when the
  // transaction commits ("messages sent through a recoverable queue are
  // parts of transaction effects").
  txn.on_commit([this, qmsg_id, dest, txn_id = txn.id(),
                 queue = std::move(queue),
                 payload = std::move(payload)]() mutable {
    std::lock_guard lock(mu_);
    ++stats_.enqueued;
    Tracer::emit(tracer_, TraceKind::QueueEnqueue, site_, txn_id, 0, 0, 0,
                 qmsg_id, dest);
    Outbound out;
    out.qmsg_id = qmsg_id;
    out.dest = dest;
    out.queue = std::move(queue);
    out.payload = std::move(payload);
    outbound_.push_back(std::move(out));
    transmit_locked(outbound_.back());
  });
}

std::optional<std::string> QueueEndpoint::try_dequeue(
    Txn& txn, const std::string& queue) {
  std::lock_guard lock(mu_);
  auto it = inbound_.find(queue);
  if (it == inbound_.end() || it->second.empty()) return std::nullopt;
  Delivered d = std::move(it->second.front());
  it->second.pop_front();
  if (wal_ != nullptr) {
    // Staged consume: effective at recovery only if txn commits.
    LogRecord r;
    r.type = LogRecordType::kQueueConsume;
    r.txn = txn.id();
    r.qmsg_id = d.qmsg_id;
    r.queue = queue;
    wal_->append(std::move(r));
  }
  const std::uint64_t token = next_claim_++;
  std::string payload = d.payload;  // copy returned to the caller
  Tracer::emit(tracer_, TraceKind::QueueDequeue, site_, txn.id(), 0, 0, 0,
               d.qmsg_id);
  claims_.emplace(token, std::make_pair(queue, std::move(d)));

  txn.on_commit([this, token] {
    std::lock_guard lock(mu_);
    if (claims_.erase(token) > 0) ++stats_.consumed;
  });
  txn.on_abort([this, token, txn_id = txn.id()] {
    std::lock_guard lock(mu_);
    auto cit = claims_.find(token);
    if (cit == claims_.end()) return;
    // Redelivery rule: the aborting consumer's message returns to the front.
    Tracer::emit(tracer_, TraceKind::QueueRedeliver, site_, txn_id, 0, 0, 0,
                 cit->second.second.qmsg_id);
    inbound_[cit->second.first].push_front(std::move(cit->second.second));
    claims_.erase(cit);
    ++stats_.redelivered;
  });
  return payload;
}

void QueueEndpoint::transmit_locked(Outbound& out) {
  Message m;
  m.from = site_;
  m.to = out.dest;
  m.type = "qdata";
  m.gtid = out.qmsg_id;
  // The queue name rides in the payload envelope.
  m.payload = std::make_pair(out.queue, out.payload);
  net_.send(std::move(m));
  out.last_sent = Clock::now();
  out.sent_once = true;
  ++stats_.transmitted;
}

void QueueEndpoint::pump() {
  std::lock_guard lock(mu_);
  const auto now = Clock::now();
  for (auto& out : outbound_) {
    if (!out.sent_once || now - out.last_sent >= retry_interval_) {
      transmit_locked(out);
    }
  }
}

bool QueueEndpoint::deliver(const Message& msg) {
  bool is_new = false;
  {
    std::lock_guard lock(mu_);
    if (seen_.insert(msg.gtid).second) {
      is_new = true;
      ++stats_.delivered;
      Tracer::emit(tracer_, TraceKind::QueueDeliver, site_, kInvalidTxn, 0, 1,
                   0, msg.gtid, msg.from);
      const auto* envelope =
          std::any_cast<std::pair<std::string, std::string>>(&msg.payload);
      if (envelope != nullptr) {
        inbound_[envelope->first].push_back(
            Delivered{msg.gtid, envelope->second});
        if (wal_ != nullptr) {
          // The ack promises durability: force the delivery record before
          // the sender is told to stop retransmitting.
          LogRecord r;
          r.type = LogRecordType::kQueueDeliver;
          r.qmsg_id = msg.gtid;
          r.queue = envelope->first;
          r.peer = msg.from;
          r.payload = envelope->second;
          wal_->append(std::move(r));
          // Retry failed fsyncs before acking: the ack IS the durability
          // promise, so it must not outrun the record.  (The injector caps
          // consecutive failures, so this terminates.)
          const RetryPolicy policy = RetryPolicy::wal_fsync();
          for (std::uint64_t attempt = 1; !wal_->fsync(); ++attempt) {
            std::this_thread::sleep_for(policy.delay(attempt, msg.gtid));
          }
        }
      }
    } else {
      ++stats_.duplicates;
    }
  }
  // Acknowledge in either case: the sender may have missed the first ack.
  Message ack;
  ack.from = site_;
  ack.to = msg.from;
  ack.type = "qack";
  ack.gtid = msg.gtid;
  net_.send(std::move(ack));
  return is_new;
}

void QueueEndpoint::handle_ack(const Message& msg) {
  std::lock_guard lock(mu_);
  const auto removed = std::erase_if(
      outbound_, [&](const Outbound& o) { return o.qmsg_id == msg.gtid; });
  if (removed > 0 && wal_ != nullptr) {
    LogRecord r;
    r.type = LogRecordType::kQueueAck;
    r.qmsg_id = msg.gtid;
    wal_->append(std::move(r));
  }
}

void QueueEndpoint::restore_from(const RecoveryResult& recovery) {
  std::lock_guard lock(mu_);
  outbound_.clear();
  inbound_.clear();
  seen_ = recovery.seen_qmsgs;
  claims_.clear();
  for (const auto& m : recovery.outbound) {
    Outbound out;
    out.qmsg_id = m.qmsg_id;
    out.dest = m.peer;
    out.queue = m.queue;
    out.payload = m.payload;
    outbound_.push_back(std::move(out));
  }
  for (const auto& m : recovery.inbound) {
    inbound_[m.queue].push_back(Delivered{m.qmsg_id, m.payload});
  }
  // Resume the id counter above anything ever logged so dedupe stays sound.
  const std::uint64_t mask = (std::uint64_t(1) << 40) - 1;
  if ((recovery.max_qmsg_id >> 40) == site_) {
    next_qmsg_ = std::max(next_qmsg_, (recovery.max_qmsg_id & mask) + 1);
  }
}

void QueueEndpoint::crash() {
  std::lock_guard lock(mu_);
  // Claims are volatile: the claiming transactions died with the site, so
  // their messages return to their queues.
  for (auto& [token, entry] : claims_) {
    Tracer::emit(tracer_, TraceKind::QueueRedeliver, site_, kInvalidTxn, 0, 0,
                 0, entry.second.qmsg_id);
    inbound_[entry.first].push_front(std::move(entry.second));
    ++stats_.redelivered;
  }
  claims_.clear();
  // outbound_, inbound_, seen_ are durable and survive.
}

std::size_t QueueEndpoint::depth(const std::string& queue) const {
  std::lock_guard lock(mu_);
  auto it = inbound_.find(queue);
  return it == inbound_.end() ? 0 : it->second.size();
}

std::vector<std::string> QueueEndpoint::nonempty_queues() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> names;
  for (const auto& [name, q] : inbound_) {
    if (!q.empty()) names.push_back(name);
  }
  return names;
}

std::size_t QueueEndpoint::outbound_backlog() const {
  std::lock_guard lock(mu_);
  return outbound_.size();
}

QueueStats QueueEndpoint::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace atp
