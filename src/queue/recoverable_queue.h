// Recoverable queues (Section 4; Bernstein, Hsu & Mann, SIGMOD'90).
//
// The paper replaces the commit protocol between chopped pieces with
// transactional, persistent inter-site channels:
//
//   * a message enqueued by a transaction becomes deliverable only when the
//     transaction commits, and is discarded if it aborts;
//   * a deliverable message must be consumed by a transaction that
//     eventually commits; if the consuming transaction aborts, the message
//     returns to the queue;
//   * messages survive site failures and link failures.
//
// One QueueEndpoint lives at each site.  The durable state is:
//   outbound_ -- committed, not-yet-acknowledged outgoing messages.  A pump
//                (the site's daemon thread) retransmits these until the
//                destination acknowledges; survives crashes.
//   inbound_  -- delivered messages per named local queue, deduplicated by
//                message id; survives crashes.
// Volatile state (lost on crash): enqueues staged under uncommitted
// transactions, and in-flight dequeue claims (their transactions die with
// the site, so the claims revert -- exactly the redelivery-on-abort rule).
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/network.h"
#include "sched/database.h"
#include "trace/tracer.h"
#include "wal/log.h"
#include "wal/recovery.h"

#include "common/ordered_lock.h"

namespace atp {

struct QueueStats {
  std::uint64_t enqueued = 0;     ///< committed enqueues
  std::uint64_t transmitted = 0;  ///< qdata sends (incl. retransmissions)
  std::uint64_t delivered = 0;    ///< distinct messages accepted inbound
  std::uint64_t duplicates = 0;   ///< retransmissions deduplicated
  std::uint64_t consumed = 0;     ///< committed dequeues
  std::uint64_t redelivered = 0;  ///< claims returned by aborting consumers
};

class QueueEndpoint {
 public:
  QueueEndpoint(SiteId site, SimNetwork& net);

  /// Stage `payload` (serialized bytes; see e.g. encode_chop) for queue
  /// `queue` at site `dest`, as part of `txn`'s effects: nothing is sent
  /// unless txn commits.
  void enqueue(Txn& txn, SiteId dest, std::string queue,
               std::string payload);

  /// Claim the head of local queue `queue` under `txn`: consumed if txn
  /// commits, returned to the queue (front) if it aborts.  Empty optional if
  /// the queue is empty.
  std::optional<std::string> try_dequeue(Txn& txn,
                                         const std::string& queue);

  /// Retransmit unacknowledged outbound messages older than the retry
  /// interval.  Call periodically (the site daemon does).
  void pump();

  /// Handle an inbound "qdata" message: dedupe, store durably, acknowledge.
  /// Returns true if the message was new (callers dispatch application
  /// handlers only for new messages).
  bool deliver(const Message& msg);

  /// Handle an inbound "qack": the destination has durably accepted the
  /// outbound message; stop retransmitting it.
  void handle_ack(const Message& msg);

  /// Site failure: volatile claims revert; durable outbound/inbound survive.
  void crash();

  /// Number of deliverable messages in a local queue.
  [[nodiscard]] std::size_t depth(const std::string& queue) const;

  /// Names of local queues with deliverable messages (crash-recovery scan).
  [[nodiscard]] std::vector<std::string> nonempty_queues() const;

  /// Unacknowledged outbound messages (drained == all delivered).
  [[nodiscard]] std::size_t outbound_backlog() const;

  [[nodiscard]] QueueStats stats() const;

  void set_retry_interval(std::chrono::milliseconds interval) {
    retry_interval_ = interval;
  }

  /// Attach a write-ahead log: enqueue/consume records are staged under
  /// their transactions, deliveries are force-logged before they are
  /// acknowledged.  Makes restore_from() after a total-loss crash possible.
  void attach_wal(LogDevice* wal) { wal_ = wal; }

  /// Rebuild the endpoint's durable state from a recovery report (clears
  /// everything volatile first).
  void restore_from(const RecoveryResult& recovery);

  /// Attach a tracer: queue lifecycle events (commit-time enqueue, dequeue
  /// claims, inbound deliveries, abort/crash redeliveries) are recorded.
  void set_tracer(Tracer* tracer) noexcept { tracer_ = tracer; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Outbound {
    std::uint64_t qmsg_id = 0;
    SiteId dest = 0;
    std::string queue;
    std::string payload;
    Clock::time_point last_sent{};
    bool sent_once = false;
  };

  struct Delivered {
    std::uint64_t qmsg_id = 0;
    std::string payload;
  };

  void transmit_locked(Outbound& out);

  SiteId site_;
  SimNetwork& net_;
  LogDevice* wal_ = nullptr;
  Tracer* tracer_ = nullptr;
  std::chrono::milliseconds retry_interval_{20};

  mutable OrderedMutex<LockRank::kQueueEndpoint> mu_;  ///< rank kQueueEndpoint: WAL append + net send happen under it
  std::uint64_t next_qmsg_ = 1;
  std::vector<Outbound> outbound_;                        // durable
  std::unordered_map<std::string, std::deque<Delivered>> inbound_;  // durable
  std::unordered_set<std::uint64_t> seen_;                // durable dedupe
  // claim token -> (queue, message); volatile (reverts on crash)
  std::unordered_map<std::uint64_t, std::pair<std::string, Delivered>> claims_;
  std::uint64_t next_claim_ = 1;
  QueueStats stats_;
};

}  // namespace atp
