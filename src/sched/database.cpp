#include "sched/database.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "fault/retry.h"
#include "obs/http_exporter.h"

namespace atp {

namespace {

/// Force the log, retrying failed fsyncs until the records are durable.
/// A failed fsync (injected; real disks return EIO) made NOTHING durable,
/// so the only correct move on a commit-critical path is to try again --
/// returning success early would break the write-ahead contract.
void force_log(LogDevice* wal, std::uint64_t seed) {
  const RetryPolicy policy = RetryPolicy::wal_fsync();
  for (std::uint64_t attempt = 1; !wal->fsync(); ++attempt) {
    std::this_thread::sleep_for(policy.delay(attempt, seed));
  }
}

/// Database pull collector: epsilon-budget telemetry from the ET registry
/// plus the per-stripe lock contention heatmap.  Runs at snapshot time only;
/// the hot paths pay nothing for it.
void collect_db_samples(const EtRegistry& registry, const LockManager& locks,
                        obs::SnapshotBuilder& out) {
  const EtRegistry::ChargeStats cs = registry.charge_stats();
  out.counter("eps.charges_ok", double(cs.charges_ok));
  out.counter("eps.rejected_import", double(cs.rejected_import));
  out.counter("eps.rejected_export", double(cs.rejected_export));
  out.counter("eps.rejected_admission", double(cs.rejected_admission));
  out.counter("eps.import_charged", cs.import_charged);
  out.counter("eps.export_charged", cs.export_charged);
  out.counter("eps.retired.query.count", double(cs.retired_query_count));
  out.counter("eps.retired.query.unlimited",
              double(cs.retired_query_unlimited));
  out.counter("eps.retired.query.used", cs.retired_query_used);
  out.counter("eps.retired.query.limit", cs.retired_query_limit);
  out.counter("eps.retired.update.count", double(cs.retired_update_count));
  out.counter("eps.retired.update.unlimited",
              double(cs.retired_update_unlimited));
  out.counter("eps.retired.update.used", cs.retired_update_used);
  out.counter("eps.retired.update.limit", cs.retired_update_limit);

  // Live ETs: per-kind roll-up of budget consumption (finite limits only --
  // infinite budgets would make the utilization ratio meaningless).
  double live_q_used = 0, live_q_limit = 0, live_u_used = 0, live_u_limit = 0;
  std::uint64_t live_q = 0, live_u = 0, live_q_inf = 0, live_u_inf = 0;
  for (const EtRegistry::Entry& e : registry.snapshot_all()) {
    if (e.kind == TxnKind::Query) {
      ++live_q;
      if (std::isinf(double(e.spec.import_limit))) {
        ++live_q_inf;
      } else {
        live_q_used += double(e.imported);
        live_q_limit += double(e.spec.import_limit);
      }
    } else {
      ++live_u;
      if (std::isinf(double(e.spec.export_limit))) {
        ++live_u_inf;
      } else {
        live_u_used += double(e.exported);
        live_u_limit += double(e.spec.export_limit);
      }
    }
  }
  out.gauge("eps.live.query.count", double(live_q));
  out.gauge("eps.live.query.unlimited", double(live_q_inf));
  out.gauge("eps.live.query.used", live_q_used);
  out.gauge("eps.live.query.limit", live_q_limit);
  out.gauge("eps.live.update.count", double(live_u));
  out.gauge("eps.live.update.unlimited", double(live_u_inf));
  out.gauge("eps.live.update.used", live_u_used);
  out.gauge("eps.live.update.limit", live_u_limit);
  out.gauge("db.live_ets", double(live_q + live_u));

  // Per-stripe contention heatmap.
  const auto stripes = locks.stripe_stats();
  out.gauge("lock.stripes", double(stripes.size()));
  for (std::size_t i = 0; i < stripes.size(); ++i) {
    const LockStripeSnapshot& s = stripes[i];
    const std::string p = "lock.stripe." + std::to_string(i) + ".";
    out.counter(p + "acquires", double(s.acquires));
    out.counter(p + "waits", double(s.stats.waits));
    out.counter(p + "deadlocks", double(s.stats.deadlocks));
    out.counter(p + "timeouts", double(s.stats.timeouts));
    out.counter(p + "fuzzy_grants", double(s.stats.fuzzy_grants));
    out.gauge(p + "waiters", double(s.waiters_now));
    out.counter(p + "max_waiters", double(s.max_waiters));
    out.histogram(p + "acquire_us", s.acquire_us);
  }
}

}  // namespace

Database::Database(DatabaseOptions opts)
    : opts_(opts),
      locks_(opts.lock_timeout, opts.lock_stripes > 0
                                    ? opts.lock_stripes
                                    : LockManager::kDefaultStripes),
      dc_resolver_(registry_, store_) {
  history_.set_enabled(opts.record_history);
  locks_.set_trace(opts.tracer, opts.site_id);
  registry_.set_trace(opts.tracer, opts.site_id);

  metrics_ = opts_.metrics;
  if (metrics_ == nullptr && opts_.metrics_port != 0) {
    // Endpoint requested without a registry: own a private one.
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  if (metrics_ != nullptr) {
    commit_counter_ = &metrics_->counter("db.commits");
    abort_counter_ = &metrics_->counter("db.aborts");
    collector_id_ = metrics_->add_collector([this](obs::SnapshotBuilder& b) {
      collect_db_samples(registry_, locks_, b);
    });
    if (opts_.metrics_port != 0) {
      server_ = std::make_unique<obs::ObsServer>(metrics_, opts_.metrics_port);
    }
  }
}

Database::~Database() {
  server_.reset();  // join the serve thread before the registry can go
  if (metrics_ != nullptr && collector_id_ != 0) {
    metrics_->remove_collector(collector_id_);
  }
}

void Database::load(Key key, Value value) { store_.load(key, value); }

Txn Database::begin(TxnKind kind, EpsilonSpec spec, TxnId parent) {
  const TxnId id = registry_.begin(kind, spec, parent);
  Tracer::emit(opts_.tracer, TraceKind::TxnBegin, opts_.site_id, id, 0,
               spec.import_limit, spec.export_limit,
               kind == TxnKind::Update ? 1 : 0, parent);
  Txn t(this, id, kind);
  t.state_ = Txn::State::Active;
  t.crash_epoch_ = crash_epoch();
  return t;
}

ConflictResolver& Database::resolver() noexcept {
  if (opts_.scheduler == SchedulerKind::DC) return dc_resolver_;
  return cc_resolver_;
}

void Database::crash(const std::unordered_set<TxnId>* survivors) {
  {
    std::lock_guard lock(crash_mu_);
    crash_survivors_.clear();
    if (survivors != nullptr) crash_survivors_ = *survivors;
  }
  crash_epoch_.fetch_add(1, std::memory_order_acq_rel);
  store_.crash(survivors);
}

void Database::checkpoint() {
  LogDevice* wal = opts_.wal;
  if (wal == nullptr) return;
  const auto snapshot = store_.snapshot_committed();
  std::uint64_t first_kv = wal->next_lsn();
  for (const auto& [key, value] : snapshot) {
    LogRecord r;
    r.type = LogRecordType::kCheckpointKv;
    r.key = key;
    r.value = value;
    wal->append(std::move(r));
  }
  LogRecord marker;
  marker.type = LogRecordType::kCheckpoint;
  marker.qmsg_id = first_kv;  // start of this checkpoint's kv run
  wal->append(std::move(marker));
  force_log(wal, first_kv);

  // Truncation point: the checkpoint covers committed state ONLY.  Records
  // the snapshot cannot stand in for must survive, however old they are:
  //   * every record of an undecided transaction (no kCommit/kAbort yet) --
  //     in-doubt 2PC participants' kWrite/kPrepare, or a concurrent ET's
  //     staged writes;
  //   * a committed kQueueEnqueue not yet acknowledged (retransmit source);
  //   * a kQueueDeliver not yet consumed by a committed transaction
  //     (redelivery source + dedupe evidence).
  // Dropping any of these (the old behavior truncated at first_kv flat) made
  // a post-checkpoint crash forget in-doubt staged writes and pending queue
  // traffic -- exactly the state recovery exists to reinstate.
  const std::vector<LogRecord> records = wal->records();
  std::unordered_set<TxnId> decided;
  std::unordered_set<std::uint64_t> acked;
  std::unordered_set<std::uint64_t> consumed;  // by a committed txn
  std::unordered_set<TxnId> winners;
  for (const LogRecord& r : records) {
    if (r.type == LogRecordType::kCommit) {
      decided.insert(r.txn);
      winners.insert(r.txn);
    } else if (r.type == LogRecordType::kAbort) {
      decided.insert(r.txn);
    } else if (r.type == LogRecordType::kQueueAck) {
      acked.insert(r.qmsg_id);
    }
  }
  for (const LogRecord& r : records) {
    if (r.type == LogRecordType::kQueueConsume &&
        (r.txn == kInvalidTxn || winners.count(r.txn))) {
      consumed.insert(r.qmsg_id);
    }
  }
  std::uint64_t keep_from = first_kv;
  for (const LogRecord& r : records) {
    bool needed = false;
    switch (r.type) {
      case LogRecordType::kBegin:
      case LogRecordType::kWrite:
      case LogRecordType::kPrepare:
        needed = !decided.count(r.txn);
        break;
      case LogRecordType::kQueueEnqueue:
        // Pending (txn undecided) or committed-but-unacked: both needed.
        needed = !acked.count(r.qmsg_id) &&
                 (r.txn == kInvalidTxn || !decided.count(r.txn) ||
                  winners.count(r.txn));
        break;
      case LogRecordType::kQueueDeliver:
        needed = !consumed.count(r.qmsg_id);
        break;
      case LogRecordType::kQueueConsume:
        // A pending consume (its txn undecided) must keep its record so a
        // post-crash redo neither replays nor forgets the claim wrongly.
        needed = r.txn != kInvalidTxn && !decided.count(r.txn);
        break;
      default:
        break;
    }
    if (needed) {
      keep_from = std::min(keep_from, r.lsn);
      break;  // records() is LSN-ordered: the first hit is the oldest
    }
  }
  wal->truncate_before(keep_from);
}

RecoveryResult Database::recover_from_wal() {
  assert(opts_.wal != nullptr && "recover_from_wal requires options().wal");
  return recover_from_log(*opts_.wal, store_);
}

// ---------------------------------------------------------------------------
// Txn

Txn& Txn::operator=(Txn&& other) noexcept {
  assert(state_ != State::Active && "moving over an active transaction");
  db_ = other.db_;
  id_ = other.id_;
  kind_ = other.kind_;
  crash_epoch_ = other.crash_epoch_;
  state_ = other.state_;
  final_fuzziness_ = other.final_fuzziness_;
  write_set_ = std::move(other.write_set_);
  read_log_ = std::move(other.read_log_);
  commit_hooks_ = std::move(other.commit_hooks_);
  abort_hooks_ = std::move(other.abort_hooks_);
  other.state_ = State::Invalid;
  other.db_ = nullptr;
  return *this;
}

Txn::~Txn() {
  if (state_ == State::Active) abort();
}

bool Txn::optimistic() const noexcept {
  return db_ != nullptr && db_->opts_.scheduler == SchedulerKind::ODC &&
         kind_ == TxnKind::Query;
}

Result<Value> Txn::read(Key key) {
  if (state_ != State::Active)
    return Status::FailedPrecondition("read on inactive txn");
  if (optimistic()) {
    // Optimistic divergence control: no lock, read the last committed value
    // and log it; commit() validates the accumulated drift against the
    // import limit.
    Result<Value> v = db_->store_.read_committed(key);
    if (v.ok()) {
      read_log_.emplace_back(key, v.value());
      db_->history_.record(id_, OpType::Read, key, v.value());
      Tracer::emit(db_->opts_.tracer, TraceKind::Read, db_->opts_.site_id, id_,
                   key, v.value());
    }
    return v;
  }
  Status s = db_->locks_.acquire(id_, key, LockMode::Shared, db_->resolver());
  if (!s.ok()) return s;
  // Under DC a fuzzy S grant may coexist with an uncommitted writer; the
  // value observed is the dirty one, whose divergence was charged at grant.
  Result<Value> v = db_->store_.read_latest(key);
  if (v.ok()) {
    db_->history_.record(id_, OpType::Read, key, v.value());
    Tracer::emit(db_->opts_.tracer, TraceKind::Read, db_->opts_.site_id, id_,
                 key, v.value());
  }
  return v;
}

Status Txn::write(Key key, Value value) {
  if (state_ != State::Active)
    return Status::FailedPrecondition("write on inactive txn");
  if (kind_ != TxnKind::Update)
    return Status::InvalidArgument("query ETs are read-only");

  const bool dc = db_->opts_.scheduler == SchedulerKind::DC;
  if (dc) {
    // Announce the impending delta so an X fuzzy grant can peek feasibility.
    const Value before = db_->store_.read_latest(key).value_or(0);
    db_->dc_resolver_.announce_write_delta(id_, distance(value, before));
  }
  Status s =
      db_->locks_.acquire(id_, key, LockMode::Exclusive, db_->resolver());
  if (dc) db_->dc_resolver_.clear_write_delta(id_);
  if (!s.ok()) return s;

  // We hold X; the previous latest value is stable (only we may write).
  const Value old_latest = db_->store_.read_latest(key).value_or(0);
  Status w = db_->store_.write(id_, key, value);
  if (!w.ok()) return w;
  write_set_.insert(key);
  db_->history_.record(id_, OpType::Write, key, value);
  Tracer::emit(db_->opts_.tracer, TraceKind::Write, db_->opts_.site_id, id_,
               key, value);

  // Incremental fuzziness charge to every query ET currently sharing the
  // key (they were fuzzy-granted past our X, or we were granted past their
  // S).  This is where divergence control's export/import accounts are
  // actually debited.  When a budget cannot absorb the charge the update is
  // "blocked as it is handled in the two-phase locking concurrency control"
  // (Section 1.1): we wait for the conflicting queries to finish rather than
  // abort, bounded by the lock timeout (deadlocks formed outside the lock
  // manager resolve through the queries' own lock timeouts).
  const Value incr = distance(value, old_latest);
  if (incr > 0) {
    const auto deadline =
        std::chrono::steady_clock::now() + db_->opts_.lock_timeout;
    for (;;) {
      std::vector<TxnId> queries;
      for (const LockHolder& h : db_->locks_.holders_of(key)) {
        if (h.txn == id_) continue;
        if (h.mode == LockMode::Shared &&
            db_->registry_.kind_of(h.txn) == TxnKind::Query) {
          queries.push_back(h.txn);
        }
      }
      if (queries.empty() ||
          db_->registry_.try_charge_multi(queries, id_, incr)) {
        break;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        return Status::EpsilonExceeded(
            "write of delta " + std::to_string(incr) +
            " would exceed an epsilon budget");
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  return Status::Ok();
}

Status Txn::add(Key key, Value delta) {
  if (state_ != State::Active)
    return Status::FailedPrecondition("add on inactive txn");
  if (kind_ != TxnKind::Update)
    return Status::InvalidArgument("query ETs are read-only");

  const bool dc = db_->opts_.scheduler == SchedulerKind::DC;
  if (dc) db_->dc_resolver_.announce_write_delta(id_, distance(delta, 0));
  Status s =
      db_->locks_.acquire(id_, key, LockMode::Exclusive, db_->resolver());
  if (dc) db_->dc_resolver_.clear_write_delta(id_);
  if (!s.ok()) return s;

  Result<Value> old_latest = db_->store_.read_latest(key);
  if (!old_latest.ok()) return old_latest.status();
  db_->history_.record(id_, OpType::Read, key, old_latest.value());
  Tracer::emit(db_->opts_.tracer, TraceKind::Read, db_->opts_.site_id, id_,
               key, old_latest.value());
  // Delegate to write() for the staged write + fuzziness charging.  The X
  // lock is already held, so the inner acquire is a re-entrant no-op.
  return write(key, old_latest.value() + delta);
}

Status Txn::commit() {
  if (state_ != State::Active)
    return Status::FailedPrecondition("commit on inactive txn");
  // Crash-epoch guard: if the site crashed since begin, our staged writes
  // are gone -- committing now would apply nothing while still firing the
  // commit hooks (forwarding queue continuations for work that never
  // happened).  Prepared 2PC survivors are the one legitimate exception.
  if (crash_epoch_ != db_->crash_epoch()) {
    bool survivor;
    {
      std::lock_guard lock(db_->crash_mu_);
      survivor = db_->crash_survivors_.count(id_) > 0;
    }
    if (!survivor) {
      abort();
      return Status::Aborted("site crashed after this transaction began");
    }
  }
  if (optimistic() && !read_log_.empty()) {
    // Optimistic validation: total drift between what was read and what is
    // committed now is the fuzziness this query imported.  Within limit ->
    // charge and commit; beyond -> abort (the caller retries).
    Value drift = 0;
    for (const auto& [key, seen] : read_log_) {
      drift += distance(db_->store_.read_committed(key).value_or(seen), seen);
    }
    if (!db_->registry_.try_self_import(id_, drift)) {
      abort();
      return Status::EpsilonExceeded(
          "optimistic validation: drift " + std::to_string(drift) +
          " exceeds the import limit");
    }
  }
  // Write-ahead discipline: after-images + the commit record reach stable
  // storage before any effect applies.  (Queue enqueue/consume records were
  // staged earlier, tagged with this txn id; the commit record is what
  // activates them at recovery.)
  if (LogDevice* wal = db_->opts_.wal; wal != nullptr) {
    for (Key k : write_set_) {
      LogRecord r;
      r.type = LogRecordType::kWrite;
      r.txn = id_;
      r.key = k;
      r.value = db_->store_.read_latest(k).value_or(0);
      wal->append(std::move(r));
    }
    LogRecord c;
    c.type = LogRecordType::kCommit;
    c.txn = id_;
    wal->append(std::move(c));
    force_log(wal, id_);
  }
  for (Key k : write_set_) db_->store_.commit_key(id_, k);
  // Commit hooks make external effects (recoverable-queue sends/claims)
  // atomic with the data writes, before any lock is released.
  for (auto& hook : commit_hooks_) hook();
  commit_hooks_.clear();
  abort_hooks_.clear();
  final_fuzziness_ = db_->registry_.end_commit(id_);
  if (db_->commit_counter_ != nullptr) db_->commit_counter_->add();
  db_->history_.mark_committed(id_);
  Tracer::emit(db_->opts_.tracer, TraceKind::TxnCommit, db_->opts_.site_id,
               id_, 0, final_fuzziness_);
  db_->locks_.release_all(id_);
  state_ = State::Committed;
  return Status::Ok();
}

void Txn::log_prepare() {
  if (state_ != State::Active) return;
  LogDevice* wal = db_->opts_.wal;
  if (wal == nullptr) return;
  for (Key k : write_set_) {
    LogRecord r;
    r.type = LogRecordType::kWrite;
    r.txn = id_;
    r.key = k;
    r.value = db_->store_.read_latest(k).value_or(0);
    wal->append(std::move(r));
  }
  LogRecord p;
  p.type = LogRecordType::kPrepare;
  p.txn = id_;
  wal->append(std::move(p));
  force_log(wal, id_);
}

void Txn::abort() {
  if (state_ != State::Active) return;
  if (LogDevice* wal = db_->opts_.wal; wal != nullptr) {
    LogRecord a;
    a.type = LogRecordType::kAbort;
    a.txn = id_;
    wal->append(std::move(a));
  }
  for (Key k : write_set_) db_->store_.abort_key(id_, k);
  for (auto& hook : abort_hooks_) hook();
  commit_hooks_.clear();
  abort_hooks_.clear();
  db_->registry_.end_abort(id_);
  if (db_->abort_counter_ != nullptr) db_->abort_counter_->add();
  Tracer::emit(db_->opts_.tracer, TraceKind::TxnAbort, db_->opts_.site_id,
               id_);
  db_->locks_.release_all(id_);
  state_ = State::Aborted;
}

Value Txn::fuzziness() const {
  if (state_ == State::Active) return db_->registry_.fuzziness_of(id_);
  return final_fuzziness_;
}

}  // namespace atp
