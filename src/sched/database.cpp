#include "sched/database.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "fault/retry.h"
#include "obs/http_exporter.h"

namespace atp {

namespace {

/// Force the log, retrying failed fsyncs until the records are durable.
/// A failed fsync (injected; real disks return EIO) made NOTHING durable,
/// so the only correct move on a commit-critical path is to try again --
/// returning success early would break the write-ahead contract.  Commits
/// go through the GroupCommitter instead; this is the checkpoint path.
void force_log(LogDevice* wal, std::uint64_t seed) {
  const RetryPolicy policy = RetryPolicy::wal_fsync();
  for (std::uint64_t attempt = 1; !wal->fsync(); ++attempt) {
    std::this_thread::sleep_for(policy.delay(attempt, seed));
  }
}

/// Database pull collector: epsilon-budget telemetry from the ET registry,
/// the per-stripe lock contention heatmap, the version store's mvcc.*
/// counters and the group committer's wal.group.* family.  Runs at snapshot
/// time only; the hot paths pay nothing for it.
void collect_db_samples(const EtRegistry& registry, const LockManager& locks,
                        const Store& store, const LogDevice* wal,
                        const GroupCommitter* group,
                        obs::SnapshotBuilder& out) {
  const EtRegistry::ChargeStats cs = registry.charge_stats();
  out.counter("eps.charges_ok", double(cs.charges_ok));
  out.counter("eps.rejected_import", double(cs.rejected_import));
  out.counter("eps.rejected_export", double(cs.rejected_export));
  out.counter("eps.rejected_admission", double(cs.rejected_admission));
  out.counter("eps.import_charged", cs.import_charged);
  out.counter("eps.export_charged", cs.export_charged);
  out.counter("eps.retired.query.count", double(cs.retired_query_count));
  out.counter("eps.retired.query.unlimited",
              double(cs.retired_query_unlimited));
  out.counter("eps.retired.query.used", cs.retired_query_used);
  out.counter("eps.retired.query.limit", cs.retired_query_limit);
  out.counter("eps.retired.update.count", double(cs.retired_update_count));
  out.counter("eps.retired.update.unlimited",
              double(cs.retired_update_unlimited));
  out.counter("eps.retired.update.used", cs.retired_update_used);
  out.counter("eps.retired.update.limit", cs.retired_update_limit);

  // Live ETs: per-kind roll-up of budget consumption (finite limits only --
  // infinite budgets would make the utilization ratio meaningless).
  double live_q_used = 0, live_q_limit = 0, live_u_used = 0, live_u_limit = 0;
  std::uint64_t live_q = 0, live_u = 0, live_q_inf = 0, live_u_inf = 0;
  for (const EtRegistry::Entry& e : registry.snapshot_all()) {
    if (e.kind == TxnKind::Query) {
      ++live_q;
      if (std::isinf(double(e.spec.import_limit))) {
        ++live_q_inf;
      } else {
        live_q_used += double(e.imported);
        live_q_limit += double(e.spec.import_limit);
      }
    } else {
      ++live_u;
      if (std::isinf(double(e.spec.export_limit))) {
        ++live_u_inf;
      } else {
        live_u_used += double(e.exported);
        live_u_limit += double(e.spec.export_limit);
      }
    }
  }
  out.gauge("eps.live.query.count", double(live_q));
  out.gauge("eps.live.query.unlimited", double(live_q_inf));
  out.gauge("eps.live.query.used", live_q_used);
  out.gauge("eps.live.query.limit", live_q_limit);
  out.gauge("eps.live.update.count", double(live_u));
  out.gauge("eps.live.update.unlimited", double(live_u_inf));
  out.gauge("eps.live.update.used", live_u_used);
  out.gauge("eps.live.update.limit", live_u_limit);
  out.gauge("db.live_ets", double(live_q + live_u));

  // Per-stripe contention heatmap.
  const auto stripes = locks.stripe_stats();
  out.gauge("lock.stripes", double(stripes.size()));
  for (std::size_t i = 0; i < stripes.size(); ++i) {
    const LockStripeSnapshot& s = stripes[i];
    const std::string p = "lock.stripe." + std::to_string(i) + ".";
    out.counter(p + "acquires", double(s.acquires));
    out.counter(p + "waits", double(s.stats.waits));
    out.counter(p + "deadlocks", double(s.stats.deadlocks));
    out.counter(p + "timeouts", double(s.stats.timeouts));
    out.counter(p + "fuzzy_grants", double(s.stats.fuzzy_grants));
    out.gauge(p + "waiters", double(s.waiters_now));
    out.counter(p + "max_waiters", double(s.max_waiters));
    out.histogram(p + "acquire_us", s.acquire_us);
  }

  // Version store.
  const MvccStats ms = store.mvcc_stats();
  out.counter("mvcc.commit_seq", double(ms.commit_seq));
  out.counter("mvcc.versions_published", double(ms.versions_published));
  out.counter("mvcc.gc_reclaimed", double(ms.gc_reclaimed));
  out.counter("mvcc.snapshot_too_old", double(ms.snapshot_too_old));
  out.counter("mvcc.snapshots_acquired", double(ms.snapshots_acquired));
  out.gauge("mvcc.live_snapshots", double(ms.live_snapshots));

  // Group commit (WAL-attached databases only).
  if (group != nullptr) {
    const GroupCommitStats gs = group->stats();
    const double commits = double(gs.sync_commits + gs.async_commits);
    out.counter("wal.group.commits_sync", double(gs.sync_commits));
    out.counter("wal.group.commits_async", double(gs.async_commits));
    out.counter("wal.group.flushes", double(gs.flushes));
    out.counter("wal.group.batched", double(gs.batched));
    out.counter("wal.group.async_self_flushes",
                double(gs.async_self_flushes));
    out.gauge("wal.group.fsyncs_per_commit",
              commits > 0 ? double(gs.flushes) / commits : 0.0);
    out.gauge("wal.group.durable_lsn", double(wal->durable_lsn()));
  }
}

}  // namespace

Database::Database(DatabaseOptions opts)
    : opts_(opts),
      locks_(opts.lock_timeout, opts.lock_stripes > 0
                                    ? opts.lock_stripes
                                    : LockManager::kDefaultStripes),
      dc_resolver_(registry_, store_) {
  history_.set_enabled(opts.record_history);
  locks_.set_trace(opts.tracer, opts.site_id);
  registry_.set_trace(opts.tracer, opts.site_id);
  if (opts_.wal != nullptr) {
    group_ = std::make_unique<GroupCommitter>(*opts_.wal);
  }

  metrics_ = opts_.metrics;
  if (metrics_ == nullptr && opts_.metrics_port != 0) {
    // Endpoint requested without a registry: own a private one.
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  if (metrics_ != nullptr) {
    commit_counter_ = &metrics_->counter("db.commits");
    abort_counter_ = &metrics_->counter("db.aborts");
    collector_id_ = metrics_->add_collector([this](obs::SnapshotBuilder& b) {
      collect_db_samples(registry_, locks_, store_, opts_.wal, group_.get(),
                         b);
    });
    if (opts_.metrics_port != 0) {
      server_ = std::make_unique<obs::ObsServer>(metrics_, opts_.metrics_port);
    }
  }
}

Database::~Database() {
  server_.reset();  // join the serve thread before the registry can go
  if (metrics_ != nullptr && collector_id_ != 0) {
    metrics_->remove_collector(collector_id_);
  }
}

void Database::load(Key key, Value value) {
  const Status s = store_.load(key, value);
  // Bulk load is a setup-time operation; loading over a key some live
  // transaction is writing is a harness bug, not a runtime condition.
  assert(s.ok() && "Database::load over a key with an in-flight writer");
  (void)s;
}

Txn Database::begin(TxnKind kind, EpsilonSpec spec, TxnId parent,
                    TxnOptions topts) {
  const TxnId id = registry_.begin(kind, spec, parent);
  Txn t(this, id, kind);
  t.topts_ = topts;
  t.state_ = Txn::State::Active;
  t.crash_epoch_ = crash_epoch();
  // Query ETs under CC/DC read versions at a snapshot pinned here; ODC
  // queries stay optimistic (latest committed + drift validation) and
  // update ETs read through their locks, so neither registers one.
  const bool versioned_reader =
      kind == TxnKind::Query && opts_.scheduler != SchedulerKind::ODC;
  if (versioned_reader) {
    t.snapshot_ = store_.snapshot_acquire([&](std::uint64_t snap) {
      // Emitted inside the store's commit mutex: the trace interleaves
      // begins with commit publications in true commit-sequence order,
      // which is what lets the version-aware certifiers reason about
      // snapshot visibility.  TxnBegin.key carries snapshot+1 (0 = no
      // snapshot).
      Tracer::emit(opts_.tracer, TraceKind::TxnBegin, opts_.site_id, id,
                   snap + 1, spec.import_limit, spec.export_limit, 0, parent);
    });
    t.has_snapshot_ = true;
  } else {
    Tracer::emit(opts_.tracer, TraceKind::TxnBegin, opts_.site_id, id, 0,
                 spec.import_limit, spec.export_limit,
                 kind == TxnKind::Update ? 1 : 0, parent);
  }
  return t;
}

ConflictResolver& Database::resolver() noexcept {
  if (opts_.scheduler == SchedulerKind::DC) return dc_resolver_;
  return cc_resolver_;
}

void Database::crash(const std::unordered_set<TxnId>* survivors) {
  {
    std::lock_guard lock(crash_mu_);
    crash_survivors_.clear();
    if (survivors != nullptr) crash_survivors_ = *survivors;
  }
  crash_epoch_.fetch_add(1, std::memory_order_acq_rel);
  store_.crash(survivors);
}

void Database::checkpoint() {
  LogDevice* wal = opts_.wal;
  if (wal == nullptr) return;
  const auto snapshot = store_.snapshot_committed();
  std::uint64_t first_kv = wal->next_lsn();
  for (const auto& [key, value] : snapshot) {
    LogRecord r;
    r.type = LogRecordType::kCheckpointKv;
    r.key = key;
    r.value = value;
    wal->append(std::move(r));
  }
  LogRecord marker;
  marker.type = LogRecordType::kCheckpoint;
  marker.qmsg_id = first_kv;  // start of this checkpoint's kv run
  wal->append(std::move(marker));
  force_log(wal, first_kv);

  // Truncation point: the checkpoint covers committed state ONLY.  Records
  // the snapshot cannot stand in for must survive, however old they are:
  //   * every record of an undecided transaction (no kCommit/kAbort yet) --
  //     in-doubt 2PC participants' kWrite/kPrepare, or a concurrent ET's
  //     staged writes;
  //   * a committed kQueueEnqueue not yet acknowledged (retransmit source);
  //   * a kQueueDeliver not yet consumed by a committed transaction
  //     (redelivery source + dedupe evidence).
  // Dropping any of these (the old behavior truncated at first_kv flat) made
  // a post-checkpoint crash forget in-doubt staged writes and pending queue
  // traffic -- exactly the state recovery exists to reinstate.
  const std::vector<LogRecord> records = read_log_chunked(*wal);
  std::unordered_set<TxnId> decided;
  std::unordered_set<std::uint64_t> acked;
  std::unordered_set<std::uint64_t> consumed;  // by a committed txn
  std::unordered_set<TxnId> winners;
  for (const LogRecord& r : records) {
    if (r.type == LogRecordType::kCommit) {
      decided.insert(r.txn);
      winners.insert(r.txn);
    } else if (r.type == LogRecordType::kAbort) {
      decided.insert(r.txn);
    } else if (r.type == LogRecordType::kQueueAck) {
      acked.insert(r.qmsg_id);
    }
  }
  for (const LogRecord& r : records) {
    if (r.type == LogRecordType::kQueueConsume &&
        (r.txn == kInvalidTxn || winners.count(r.txn))) {
      consumed.insert(r.qmsg_id);
    }
  }
  std::uint64_t keep_from = first_kv;
  for (const LogRecord& r : records) {
    bool needed = false;
    switch (r.type) {
      case LogRecordType::kBegin:
      case LogRecordType::kWrite:
      case LogRecordType::kPrepare:
        needed = !decided.count(r.txn);
        break;
      case LogRecordType::kQueueEnqueue:
        // Pending (txn undecided) or committed-but-unacked: both needed.
        needed = !acked.count(r.qmsg_id) &&
                 (r.txn == kInvalidTxn || !decided.count(r.txn) ||
                  winners.count(r.txn));
        break;
      case LogRecordType::kQueueDeliver:
        needed = !consumed.count(r.qmsg_id);
        break;
      case LogRecordType::kQueueConsume:
        // A pending consume (its txn undecided) must keep its record so a
        // post-crash redo neither replays nor forgets the claim wrongly.
        needed = r.txn != kInvalidTxn && !decided.count(r.txn);
        break;
      default:
        break;
    }
    if (needed) {
      keep_from = std::min(keep_from, r.lsn);
      break;  // records are LSN-ordered: the first hit is the oldest
    }
  }
  wal->truncate_before(keep_from);
}

RecoveryResult Database::recover_from_wal() {
  assert(opts_.wal != nullptr && "recover_from_wal requires options().wal");
  return recover_from_log(*opts_.wal, store_);
}

// ---------------------------------------------------------------------------
// Txn

Txn& Txn::operator=(Txn&& other) noexcept {
  assert(state_ != State::Active && "moving over an active transaction");
  db_ = other.db_;
  id_ = other.id_;
  kind_ = other.kind_;
  topts_ = other.topts_;
  crash_epoch_ = other.crash_epoch_;
  state_ = other.state_;
  final_fuzziness_ = other.final_fuzziness_;
  commit_lsn_ = other.commit_lsn_;
  snapshot_ = other.snapshot_;
  has_snapshot_ = other.has_snapshot_;
  dc_charged_ = std::move(other.dc_charged_);
  write_set_ = std::move(other.write_set_);
  read_log_ = std::move(other.read_log_);
  commit_hooks_ = std::move(other.commit_hooks_);
  abort_hooks_ = std::move(other.abort_hooks_);
  other.state_ = State::Invalid;
  other.db_ = nullptr;
  other.has_snapshot_ = false;  // the snapshot registration moved with us
  return *this;
}

Txn::~Txn() {
  if (state_ == State::Active) abort();
}

bool Txn::optimistic() const noexcept {
  return db_ != nullptr && db_->opts_.scheduler == SchedulerKind::ODC &&
         kind_ == TxnKind::Query;
}

void Txn::release_snapshot() noexcept {
  if (has_snapshot_ && db_ != nullptr) {
    db_->store_.snapshot_release(snapshot_);
  }
  has_snapshot_ = false;
}

Result<Value> Txn::read(Key key) {
  if (state_ != State::Active)
    return Status::FailedPrecondition("read on inactive txn");
  if (optimistic()) {
    // Optimistic divergence control: no lock, read the newest committed
    // version and log it; commit() validates the accumulated drift against
    // the import limit.
    Result<VersionRead> v = db_->store_.read_latest_versioned(key);
    if (!v.ok()) return v.status();
    read_log_.emplace_back(key, v.value().value);
    db_->history_.record(id_, OpType::Read, key, v.value().value);
    Tracer::emit(db_->opts_.tracer, TraceKind::Read, db_->opts_.site_id, id_,
                 key, v.value().value, 0, v.value().seq + 1);
    return v.value().value;
  }
  if (kind_ == TxnKind::Query) {
    // Lock-free versioned read.  CC queries see exactly their snapshot (a
    // read-only snapshot transaction is serializable -- it serializes at
    // the snapshot point); DC queries read the freshest version their
    // import budget absorbs (DcResolver).  kAborted = snapshot too old:
    // the caller retries the whole ET on a fresh snapshot.
    Result<VersionRead> v =
        db_->opts_.scheduler == SchedulerKind::DC
            ? db_->dc_resolver_.read_fresh(id_, key, snapshot_, dc_charged_)
            : db_->store_.read_snapshot(key, snapshot_);
    if (!v.ok()) return v.status();
    db_->history_.record(id_, OpType::Read, key, v.value().value);
    Tracer::emit(db_->opts_.tracer, TraceKind::Read, db_->opts_.site_id, id_,
                 key, v.value().value, 0, v.value().seq + 1);
    return v.value().value;
  }
  // Update ET: S lock, strict 2PL among updates.
  Status s = db_->locks_.acquire(id_, key, LockMode::Shared, db_->resolver());
  if (!s.ok()) return s;
  // Holding S excludes every foreign writer, so a dirty value here can only
  // be our own staged write (we hold X too); it is traced with the own-write
  // sentinel instead of a version sequence.
  if (db_->store_.dirty_writer(key) == std::optional<TxnId>(id_)) {
    Result<Value> v = db_->store_.read_latest(key);
    if (v.ok()) {
      db_->history_.record(id_, OpType::Read, key, v.value());
      Tracer::emit(db_->opts_.tracer, TraceKind::Read, db_->opts_.site_id,
                   id_, key, v.value(), 0, ~std::uint64_t{0});
    }
    return v;
  }
  Result<VersionRead> v = db_->store_.read_latest_versioned(key);
  if (!v.ok()) return v.status();
  db_->history_.record(id_, OpType::Read, key, v.value().value);
  Tracer::emit(db_->opts_.tracer, TraceKind::Read, db_->opts_.site_id, id_,
               key, v.value().value, 0, v.value().seq + 1);
  return v.value().value;
}

Status Txn::write(Key key, Value value) {
  if (state_ != State::Active)
    return Status::FailedPrecondition("write on inactive txn");
  if (kind_ != TxnKind::Update)
    return Status::InvalidArgument("query ETs are read-only");
  // Plain strict 2PL: X conflicts only with other updates now that queries
  // read versions.  No divergence is exported at write time -- a query that
  // wants to see past our commit pays from its own import budget when it
  // reads (DcResolver::read_fresh), priced off version timestamps.
  Status s =
      db_->locks_.acquire(id_, key, LockMode::Exclusive, db_->resolver());
  if (!s.ok()) return s;
  Status w = db_->store_.write(id_, key, value);
  if (!w.ok()) return w;
  write_set_.insert(key);
  db_->history_.record(id_, OpType::Write, key, value);
  Tracer::emit(db_->opts_.tracer, TraceKind::Write, db_->opts_.site_id, id_,
               key, value);
  return Status::Ok();
}

Status Txn::add(Key key, Value delta) {
  if (state_ != State::Active)
    return Status::FailedPrecondition("add on inactive txn");
  if (kind_ != TxnKind::Update)
    return Status::InvalidArgument("query ETs are read-only");

  Status s =
      db_->locks_.acquire(id_, key, LockMode::Exclusive, db_->resolver());
  if (!s.ok()) return s;

  Result<Value> old_latest = db_->store_.read_latest(key);
  if (!old_latest.ok()) return old_latest.status();
  // Version stamp for the trace: our own staged value (re-add on a key we
  // already wrote) gets the own-write sentinel, otherwise the committed
  // version we are basing the increment on.
  std::uint64_t read_aux = ~std::uint64_t{0};
  if (db_->store_.dirty_writer(key) != std::optional<TxnId>(id_)) {
    Result<VersionRead> vr = db_->store_.read_latest_versioned(key);
    if (vr.ok()) read_aux = vr.value().seq + 1;
  }
  db_->history_.record(id_, OpType::Read, key, old_latest.value());
  Tracer::emit(db_->opts_.tracer, TraceKind::Read, db_->opts_.site_id, id_,
               key, old_latest.value(), 0, read_aux);
  // Delegate to write() for the staged write.  The X lock is already held,
  // so the inner acquire is a re-entrant no-op.
  return write(key, old_latest.value() + delta);
}

Status Txn::commit() {
  if (state_ != State::Active)
    return Status::FailedPrecondition("commit on inactive txn");
  // Crash-epoch guard: if the site crashed since begin, our staged writes
  // are gone -- committing now would apply nothing while still firing the
  // commit hooks (forwarding queue continuations for work that never
  // happened).  Prepared 2PC survivors are the one legitimate exception.
  if (crash_epoch_ != db_->crash_epoch()) {
    bool survivor;
    {
      std::lock_guard lock(db_->crash_mu_);
      survivor = db_->crash_survivors_.count(id_) > 0;
    }
    if (!survivor) {
      abort();
      return Status::Aborted("site crashed after this transaction began");
    }
  }
  if (optimistic() && !read_log_.empty()) {
    // Optimistic validation: total drift between what was read and what is
    // committed now is the fuzziness this query imported.  Within limit ->
    // charge and commit; beyond -> abort (the caller retries).
    Value drift = 0;
    for (const auto& [key, seen] : read_log_) {
      drift += distance(db_->store_.read_committed(key).value_or(seen), seen);
    }
    if (!db_->registry_.try_self_import(id_, drift)) {
      abort();
      return Status::EpsilonExceeded(
          "optimistic validation: drift " + std::to_string(drift) +
          " exceeds the import limit");
    }
  }
  // Write-ahead discipline: after-images + the commit record are appended
  // before any effect applies, and durability is a GROUP affair.  A sync
  // commit waits until the flush leader's fsync covers its commit record;
  // an async commit reports success now and is covered by the next flush
  // (a crash in the window loses it -- the contract the caller chose).
  // Queue enqueue/consume records were staged earlier, tagged with this
  // txn id; the commit record is what activates them at recovery.
  if (LogDevice* wal = db_->opts_.wal; wal != nullptr) {
    for (Key k : write_set_) {
      LogRecord r;
      r.type = LogRecordType::kWrite;
      r.txn = id_;
      r.key = k;
      r.value = db_->store_.read_latest(k).value_or(0);
      wal->append(std::move(r));
    }
    LogRecord c;
    c.type = LogRecordType::kCommit;
    c.txn = id_;
    commit_lsn_ = wal->append(std::move(c));
    if (topts_.wait == CommitWait::kSync) {
      db_->group_->wait_durable(commit_lsn_, id_);
    } else {
      db_->group_->note_async(commit_lsn_, id_);
    }
  }
  // Publish the staged writes as one version-chain generation.  TxnCommit
  // is emitted inside the store's commit mutex (aux = commit sequence), so
  // trace order equals commit-sequence order -- what the version-aware
  // certifiers replay against.
  const Value z = db_->registry_.fuzziness_of(id_);
  if (!write_set_.empty()) {
    db_->store_.commit_publish(id_, write_set_, [&](std::uint64_t seq) {
      Tracer::emit(db_->opts_.tracer, TraceKind::TxnCommit, db_->opts_.site_id,
                   id_, 0, z, 0, seq);
    });
  } else {
    Tracer::emit(db_->opts_.tracer, TraceKind::TxnCommit, db_->opts_.site_id,
                 id_, 0, z);
  }
  // Commit hooks make external effects (recoverable-queue sends/claims)
  // atomic with the data writes, before any lock is released.
  for (auto& hook : commit_hooks_) hook();
  commit_hooks_.clear();
  abort_hooks_.clear();
  final_fuzziness_ = db_->registry_.end_commit(id_);
  if (db_->commit_counter_ != nullptr) db_->commit_counter_->add();
  db_->history_.mark_committed(id_);
  release_snapshot();
  db_->locks_.release_all(id_);
  state_ = State::Committed;
  return Status::Ok();
}

void Txn::log_prepare() {
  if (state_ != State::Active) return;
  LogDevice* wal = db_->opts_.wal;
  if (wal == nullptr) return;
  std::uint64_t last = 0;
  for (Key k : write_set_) {
    LogRecord r;
    r.type = LogRecordType::kWrite;
    r.txn = id_;
    r.key = k;
    r.value = db_->store_.read_latest(k).value_or(0);
    last = wal->append(std::move(r));
  }
  LogRecord p;
  p.type = LogRecordType::kPrepare;
  p.txn = id_;
  last = wal->append(std::move(p));
  // The vote must be stable before it is cast; prepares batch through the
  // group committer like any other force point.
  db_->group_->wait_durable(last, id_);
}

void Txn::abort() {
  if (state_ != State::Active) return;
  if (LogDevice* wal = db_->opts_.wal; wal != nullptr) {
    LogRecord a;
    a.type = LogRecordType::kAbort;
    a.txn = id_;
    wal->append(std::move(a));
  }
  for (Key k : write_set_) db_->store_.abort_key(id_, k);
  for (auto& hook : abort_hooks_) hook();
  commit_hooks_.clear();
  abort_hooks_.clear();
  db_->registry_.end_abort(id_);
  if (db_->abort_counter_ != nullptr) db_->abort_counter_->add();
  Tracer::emit(db_->opts_.tracer, TraceKind::TxnAbort, db_->opts_.site_id,
               id_);
  release_snapshot();
  db_->locks_.release_all(id_);
  state_ = State::Aborted;
}

Value Txn::fuzziness() const {
  if (state_ == State::Active) return db_->registry_.fuzziness_of(id_);
  return final_fuzziness_;
}

}  // namespace atp
