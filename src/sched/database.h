// Database facade: storage + lock manager + ET registry + scheduler policy.
//
// One Database instance is a "site" in the distributed layer or the whole
// system in the centralized benches.  The scheduler policy (CC or DC) is
// fixed at construction; it decides nothing except how read-write conflicts
// between query and update ETs are resolved (see DcResolver).
//
// Transactions are driven through the Txn handle:
//
//   Txn t = db.begin(TxnKind::Update, EpsilonSpec::exporting(100));
//   t.add(kAccountX, -50);   // X-lock, read-modify-write
//   t.add(kAccountY, +50);
//   Status s = t.commit();   // or t.abort()
//
// Any op may fail with an abort-class status (deadlock victim, lock timeout,
// epsilon exceeded); the caller must then call abort().  Commit applies the
// staged writes, rolls the piece's fuzziness Z_p up into its parent's Z_t
// (Lemma 1), and releases all locks (strict 2PL).
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/types.h"
#include "lock/lock_manager.h"
#include "obs/metrics_registry.h"
#include "sched/dc_resolver.h"
#include "sched/history.h"
#include "storage/store.h"
#include "trace/tracer.h"
#include "txn/epsilon.h"
#include "txn/registry.h"
#include "wal/group_commit.h"
#include "wal/recovery.h"

#include "common/ordered_lock.h"

namespace atp {

namespace obs {
class ObsServer;
}

enum class SchedulerKind : std::uint8_t {
  CC,   ///< strict two-phase locking concurrency control (serializable)
  DC,   ///< two-phase locking divergence control (epsilon serializable)
  ODC,  ///< optimistic divergence control for query ETs: queries read
        ///< committed values without locks and validate at commit that the
        ///< total drift |committed_now - read| fits the import limit,
        ///< aborting (to retry) otherwise.  Update ETs run plain 2PL.
        ///< One of the "various divergence control algorithms" of the DC
        ///< papers the paper builds on; included as an ablation.
};

inline const char* to_string(SchedulerKind k) noexcept {
  switch (k) {
    case SchedulerKind::CC: return "CC";
    case SchedulerKind::DC: return "DC";
    case SchedulerKind::ODC: return "ODC";
  }
  return "?";
}

struct DatabaseOptions {
  SchedulerKind scheduler = SchedulerKind::CC;
  std::chrono::milliseconds lock_timeout{2000};
  /// Stripe count of the sharded lock table (see LockManager); 0 = default.
  std::size_t lock_stripes = 0;
  bool record_history = false;
  /// Optional write-ahead log.  When set, commits append after-images + a
  /// commit record before applying (redo-only, no-steal discipline) and a
  /// GroupCommitter batches the commit fsyncs: sync commits wait for the
  /// group flush covering their LSN, async commits (TxnOptions) return at
  /// append.  Database::recover_from_wal() rebuilds the store after a
  /// total-loss crash.  Owned by the caller and must outlive the Database
  /// (it is the "disk").
  class LogDevice* wal = nullptr;
  /// Optional structured-event tracer (trace/tracer.h).  When set, the full
  /// transaction lifecycle -- begin/commit/abort, reads/writes, lock
  /// traffic, fuzziness charges -- is recorded for the audit certifiers.
  /// Owned by the caller; must outlive the Database.
  Tracer* tracer = nullptr;
  /// Site id stamped on every traced event (multi-site simulations give each
  /// Database its own id so transaction ids never collide in a shared trace).
  SiteId site_id = 0;
  /// Optional metrics registry (obs/metrics_registry.h).  When set, the
  /// Database registers a pull collector that publishes epsilon-budget
  /// telemetry (eps.*), the per-stripe lock contention heatmap
  /// (lock.stripe.<i>.*) and commit/abort counters (db.*) into every
  /// snapshot.  Owned by the caller; must outlive the Database.
  obs::MetricsRegistry* metrics = nullptr;
  /// When nonzero, serve metrics over HTTP on 127.0.0.1:<metrics_port>
  /// (GET /metrics = Prometheus text, /snapshot.json = JSON; port 0 with a
  /// registry set means no server).  If `metrics` is null the Database owns
  /// a private registry so the endpoint still works.  Off by default.
  std::uint16_t metrics_port = 0;
};

class Database;

/// Commit durability flavor (meaningful only with a WAL attached).
enum class CommitWait : std::uint8_t {
  kSync,   ///< commit() returns only after durable_lsn covers the commit
           ///< record (a group flush, not a private fsync)
  kAsync,  ///< commit() returns at append; durability arrives at the next
           ///< group flush.  A crash in the window loses the commit -- the
           ///< caller opted into that by choosing async.
};

/// Per-transaction knobs, fixed at begin().
struct TxnOptions {
  CommitWait wait = CommitWait::kSync;
};

/// Handle for one in-flight epsilon transaction (or chopped piece).
/// Move-only; outstanding handles must be committed or aborted before the
/// Database is destroyed.
class Txn {
 public:
  Txn() = default;
  Txn(Txn&& other) noexcept { *this = std::move(other); }
  Txn& operator=(Txn&& other) noexcept;
  Txn(const Txn&) = delete;
  Txn& operator=(const Txn&) = delete;
  ~Txn();

  /// Read a key.  Query ETs under CC/DC read versions at their snapshot
  /// (DC upgrades to the freshest version when the import budget absorbs
  /// the divergence) and never touch the lock manager; update ETs take an
  /// S lock (2PL).  kAborted = snapshot too old: abort and retry the ET.
  Result<Value> read(Key key);

  /// Overwrite a key (X lock; update ETs only).
  Status write(Key key, Value value);

  /// Read-modify-write: value += delta.  Takes X directly (no upgrade).
  Status add(Key key, Value delta);

  /// Commit: install writes, roll Z_p up to the parent, release locks.
  /// Returns the piece's accumulated fuzziness via fuzziness() afterwards.
  Status commit();

  /// Abort: discard staged writes, drop fuzziness, release locks.
  void abort();

  /// Register a hook to run inside commit(), after writes are installed but
  /// before locks release.  Recoverable queues use this to make message
  /// sends/claims part of the transaction's effects (Section 4: "messages
  /// sent through a recoverable queue are parts of transaction effects").
  void on_commit(std::function<void()> hook) {
    commit_hooks_.push_back(std::move(hook));
  }
  /// Register a hook to run inside abort() (e.g. unclaim dequeued messages).
  void on_abort(std::function<void()> hook) {
    abort_hooks_.push_back(std::move(hook));
  }

  /// 2PC participant vote: force-log the staged after-images plus a PREPARE
  /// record, so this transaction survives a total-loss crash as in-doubt.
  /// No-op without a WAL.
  void log_prepare();

  [[nodiscard]] TxnId id() const noexcept { return id_; }
  [[nodiscard]] TxnKind kind() const noexcept { return kind_; }
  [[nodiscard]] bool active() const noexcept { return state_ == State::Active; }

  /// Z_p accumulated so far (live) or at commit (after commit()).
  [[nodiscard]] Value fuzziness() const;

  /// LSN of this transaction's commit record (0 until commit() with a WAL).
  /// An async commit is durable once LogDevice::durable_lsn() covers it.
  [[nodiscard]] std::uint64_t commit_lsn() const noexcept {
    return commit_lsn_;
  }

  /// Version-store snapshot this ET reads at (query ETs under CC/DC only;
  /// nullopt otherwise).
  [[nodiscard]] std::optional<std::uint64_t> snapshot() const noexcept {
    if (!has_snapshot_) return std::nullopt;
    return snapshot_;
  }

 private:
  friend class Database;
  enum class State : std::uint8_t { Invalid, Active, Committed, Aborted };

  Txn(Database* db, TxnId id, TxnKind kind) : db_(db), id_(id), kind_(kind) {}

  /// Is this transaction an optimistic (lock-free) reader?
  [[nodiscard]] bool optimistic() const noexcept;

  /// Drop the registered store snapshot, if any (commit/abort/move-out).
  void release_snapshot() noexcept;

  Database* db_ = nullptr;
  TxnId id_ = kInvalidTxn;
  TxnKind kind_ = TxnKind::Update;
  TxnOptions topts_;
  /// Database crash epoch captured at begin.  commit() refuses (returns
  /// Aborted) if the site crashed in between -- the staged writes were
  /// already wiped, so "committing" would silently apply nothing while the
  /// caller's commit hooks (queue forwards!) fired as if it had.  Prepared
  /// 2PC survivors are exempt: their staged writes were force-logged and
  /// reinstated, and they legitimately commit on the coordinator's decision.
  std::uint64_t crash_epoch_ = 0;
  State state_ = State::Invalid;
  Value final_fuzziness_ = 0;
  std::uint64_t commit_lsn_ = 0;
  /// Registered version-store snapshot (query ETs under CC/DC).
  std::uint64_t snapshot_ = 0;
  bool has_snapshot_ = false;
  /// DC only: divergence already imported per key (see DcResolver).
  std::unordered_map<Key, Value> dc_charged_;
  std::unordered_set<Key> write_set_;
  /// Optimistic read log: (key, value observed).  Validated at commit.
  std::vector<std::pair<Key, Value>> read_log_;
  std::vector<std::function<void()>> commit_hooks_;
  std::vector<std::function<void()>> abort_hooks_;
};

class Database {
 public:
  explicit Database(DatabaseOptions opts = {});
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  ~Database();

  /// Bulk-load a committed value (setup, not transactional).
  void load(Key key, Value value);

  /// Start an ET.  `parent` links a chopped piece to its original
  /// transaction for fuzziness roll-up.  Query ETs under CC/DC register a
  /// version-store snapshot here (released at commit/abort).
  [[nodiscard]] Txn begin(TxnKind kind, EpsilonSpec spec,
                          TxnId parent = kInvalidTxn, TxnOptions topts = {});

  [[nodiscard]] SchedulerKind scheduler() const noexcept {
    return opts_.scheduler;
  }

  Store& store() noexcept { return store_; }
  const Store& store() const noexcept { return store_; }
  /// The WAL's group committer (null without a WAL).
  [[nodiscard]] GroupCommitter* group_committer() noexcept {
    return group_.get();
  }
  EtRegistry& registry() noexcept { return registry_; }
  LockManager& locks() noexcept { return locks_; }
  HistoryRecorder& history() noexcept { return history_; }
  Tracer* tracer() const noexcept { return opts_.tracer; }
  [[nodiscard]] SiteId site_id() const noexcept { return opts_.site_id; }

  /// The metrics registry this Database publishes into: the caller's
  /// (options().metrics), a private one (metrics_port set with no registry),
  /// or null when observability is not configured.
  [[nodiscard]] obs::MetricsRegistry* metrics() const noexcept {
    return metrics_;
  }
  /// The embedded HTTP exporter, if metrics_port was set (null otherwise).
  [[nodiscard]] obs::ObsServer* metrics_server() const noexcept {
    return server_.get();
  }

  /// Simulated site failure: dirty data lost; live ETs must be abandoned by
  /// their drivers (their handles abort as no-ops afterwards).  `survivors`
  /// lists transactions whose staged writes persist -- 2PC participants in
  /// the *prepared* state, which a real system has force-logged.  Bumps the
  /// crash epoch: a Txn begun before the crash can no longer commit (it
  /// gets Status::Aborted) unless listed as a survivor.
  void crash(const std::unordered_set<TxnId>* survivors = nullptr);

  /// Current crash epoch (starts at 0, +1 per crash()).
  [[nodiscard]] std::uint64_t crash_epoch() const noexcept {
    return crash_epoch_.load(std::memory_order_acquire);
  }

  /// Quiescent checkpoint: snapshot every committed value into the WAL and
  /// truncate the log before it.  Caller guarantees no transactions or
  /// unacknowledged queue traffic are in flight.  No-op without a WAL.
  void checkpoint();

  /// Total-loss recovery: clear the store and rebuild it from the WAL.
  /// Returns the recovery report (in-doubt 2PC transactions, queue state to
  /// reinstate).  Requires options().wal.
  [[nodiscard]] RecoveryResult recover_from_wal();

  [[nodiscard]] const DatabaseOptions& options() const noexcept {
    return opts_;
  }

 private:
  friend class Txn;

  ConflictResolver& resolver() noexcept;

  DatabaseOptions opts_;
  Store store_;
  LockManager locks_;
  EtRegistry registry_;
  HistoryRecorder history_;
  NeverFuzzyResolver cc_resolver_;
  DcResolver dc_resolver_;
  std::unique_ptr<GroupCommitter> group_;  // iff opts_.wal != nullptr

  // Crash-epoch guard state (see Txn::crash_epoch_).  The survivor set
  // holds the prepared transactions of the LATEST crash only; earlier
  // epochs' survivors have long since resolved by the next crash.
  std::atomic<std::uint64_t> crash_epoch_{0};
  mutable OrderedMutex<LockRank::kDbCrash> crash_mu_;  ///< rank kDbCrash
  std::unordered_set<TxnId> crash_survivors_;

  // --- Observability (all null/zero when unconfigured) ---
  // Declaration order matters: owned_metrics_ must outlive server_ (the
  // server reads the registry from its serve thread until joined).
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::unique_ptr<obs::ObsServer> server_;
  obs::MetricsRegistry::CollectorId collector_id_ = 0;
  // Commit/abort tallies, push-incremented by Txn::commit/abort.  Pointers
  // into the registry's stable counter storage; null without a registry.
  obs::ShardedCounter* commit_counter_ = nullptr;
  obs::ShardedCounter* abort_counter_ = nullptr;
};

}  // namespace atp
