#include "sched/dc_resolver.h"

#include <vector>

namespace atp {

void DcResolver::announce_write_delta(TxnId txn, Value delta) {
  DeltaStripe& s = delta_stripe_of(txn);
  std::lock_guard lock(s.mu);
  s.pending[txn] = delta < 0 ? -delta : delta;
}

void DcResolver::clear_write_delta(TxnId txn) {
  DeltaStripe& s = delta_stripe_of(txn);
  std::lock_guard lock(s.mu);
  s.pending.erase(txn);
}

Value DcResolver::pending_delta_of(TxnId txn) {
  DeltaStripe& s = delta_stripe_of(txn);
  std::lock_guard lock(s.mu);
  auto it = s.pending.find(txn);
  return it == s.pending.end() ? 0 : it->second;
}

bool DcResolver::try_fuzzy_grant(TxnId requester, LockMode mode, Key key,
                                 std::span<const LockHolder> conflicting) {
  const TxnKind req_kind = registry_.kind_of(requester);

  if (req_kind == TxnKind::Query && mode == LockMode::Shared) {
    // Query reading past an update's exclusive lock.  The fuzziness it
    // imports is the update's staged-but-uncommitted delta on this key.
    // An S request only conflicts with X holders, and update-update X
    // conflicts never fuzzy-grant, so at most one X holder exists.
    if (conflicting.size() != 1) return false;
    const LockHolder& h = conflicting.front();
    if (h.mode != LockMode::Exclusive ||
        registry_.kind_of(h.txn) != TxnKind::Update) {
      return false;
    }
    const Value delta = store_.pending_delta(key);
    const TxnId qs[] = {requester};
    // delta == 0 (X held, nothing staged yet): block like plain 2PL.  There
    // is no inconsistency to import yet, and admitting the read would only
    // turn the update into the waiter once its write cannot charge -- slow
    // queries would then stall fast updates, the inverse of what divergence
    // control is for.  The window is tiny (updates write right after
    // locking), so queries lose almost nothing.
    return delta > 0 && charge_queries(qs, h.txn, delta);
  }

  if (req_kind == TxnKind::Update && mode == LockMode::Exclusive) {
    // Update writing past query ETs' shared locks.  Every conflicting holder
    // must be a query ET with S; each imports the announced write delta.
    std::vector<TxnId> queries;
    queries.reserve(conflicting.size());
    for (const LockHolder& h : conflicting) {
      if (h.mode != LockMode::Shared ||
          registry_.kind_of(h.txn) != TxnKind::Query) {
        return false;  // update-update or upgrade conflict: pure 2PL applies
      }
      queries.push_back(h.txn);
    }
    // Feasibility peek only: the write that follows performs the real
    // incremental charge (Database::write), so charging here too would
    // double-count.  If budgets slip between grant and write, the write
    // fails with kEpsilonExceeded and the update rolls back -- the paper's
    // "a proper action (blocked or rolled back) must be taken".
    const Value delta = pending_delta_of(requester);
    return delta == 0 || registry_.can_charge_multi(queries, requester, delta);
  }

  return false;
}

bool DcResolver::eligible_pair(TxnId requester, LockMode requester_mode,
                               TxnId other, LockMode other_mode) {
  // Deliberately no fairness bypass.  Letting query/update pairs overtake
  // each other in the waiter queue sounds like free concurrency, but when
  // budgets are tight the overtaking request is refused at the resolver
  // anyway, and the skipped FIFO edge blinds the deadlock detector: readers
  // endlessly starve queued writers and the workload degenerates into a
  // deadlock-abort livelock (observed: ~20k deadlock aborts at eps = 0 where
  // plain 2PL sees ~90).  2PL-DC semantics only require relaxing conflicts
  // at *grant* time against holders, which try_fuzzy_grant already does.
  (void)requester;
  (void)requester_mode;
  (void)other;
  (void)other_mode;
  return false;
}

bool DcResolver::charge_queries(std::span<const TxnId> queries, TxnId update,
                                Value amount) {
  return registry_.try_charge_multi(queries, update, amount);
}

}  // namespace atp
