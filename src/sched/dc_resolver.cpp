#include "sched/dc_resolver.h"

namespace atp {

bool DcResolver::try_fuzzy_grant(TxnId requester, LockMode mode, Key key,
                                 std::span<const LockHolder> conflicting) {
  // Queries read versions, not locks; everything left in the lock table is
  // update-vs-update, which divergence control never relaxes.
  (void)requester;
  (void)mode;
  (void)key;
  (void)conflicting;
  return false;
}

bool DcResolver::eligible_pair(TxnId requester, LockMode requester_mode,
                               TxnId other, LockMode other_mode) {
  (void)requester;
  (void)requester_mode;
  (void)other;
  (void)other_mode;
  return false;
}

Result<VersionRead> DcResolver::read_fresh(
    TxnId query_et, Key key, std::uint64_t snapshot,
    std::unordered_map<Key, Value>& charged) {
  const Result<VersionRead> snap = store_.read_snapshot(key, snapshot);
  if (!snap.ok()) return snap.status();
  const Result<VersionRead> latest = store_.read_latest_versioned(key);
  if (!latest.ok() || latest.value().seq <= snap.value().seq) {
    return snap.value();  // nothing newer: consistent for free
  }
  // The key moved since the snapshot.  Import the divergence (only the
  // increase over what this ET already paid for the key) to read fresh.
  const Value delta = distance(latest.value().value, snap.value().value);
  Value& paid = charged[key];
  if (delta <= paid) return latest.value();
  if (registry_.try_self_import(query_et, delta - paid)) {
    paid = delta;
    return latest.value();
  }
  // Budget exhausted: stay on the snapshot version, consistent and free.
  return snap.value();
}

}  // namespace atp
