// Two-phase-locking divergence control (2PL-DC), after Wu, Yu & Pu (ICDE'92)
// as summarized in Section 1.1 of the paper -- reformulated over the
// multi-version store.
//
// Update ETs run plain strict 2PL among themselves (they stay serializable,
// Section 1.1).  Query ETs never enter the lock manager at all: each query
// pins a snapshot sequence at begin and resolves every read through
// `read_fresh`, which charges import fuzziness from *version timestamps*:
//
//   * the newest committed version equals the snapshot version -> the read
//     is consistent, nothing is charged;
//   * the key moved since the snapshot -> the divergence the query would
//     observe by reading fresh is |v_latest - v_snapshot|; if the query's
//     import budget absorbs it (atomic check-and-charge in the registry,
//     recorded as a FuzzImport ledger event), the query reads the freshest
//     version; otherwise it falls back to its snapshot version, staying
//     consistent for free.
//
// Per-key charges are monotone (a re-read charges only the *increase* in
// divergence), so the total imported fuzziness bounds the distance between
// the state the query observed and the serializable snapshot state -- the
// epsilon-serializability contract the ESR certifier replays.  The old
// lock-time accounting (fuzzy S/X grants, announced write deltas, pending-
// delta charges) is gone with the dirty-read path: a query can no longer
// observe uncommitted state at all, so updates never export and never block
// on query budgets.
#pragma once

#include <unordered_map>

#include "lock/lock_manager.h"
#include "storage/store.h"
#include "txn/registry.h"

namespace atp {

class DcResolver final : public ConflictResolver {
 public:
  DcResolver(EtRegistry& registry, Store& store)
      : registry_(registry), store_(store) {}

  /// Lock-table conflicts are never fuzzy-granted any more: queries bypass
  /// the lock manager entirely, and update-update conflicts are pure 2PL.
  bool try_fuzzy_grant(TxnId requester, LockMode mode, Key key,
                       std::span<const LockHolder> conflicting) override;

  bool eligible_pair(TxnId requester, LockMode requester_mode, TxnId other,
                     LockMode other_mode) override;

  /// Freshest-within-budget read for a DC query ET pinned at `snapshot`.
  /// `charged` is the transaction's per-key divergence ledger (owned by the
  /// Txn, single-threaded); re-reads charge only increases.  Returns the
  /// version actually observed (the trace records its sequence).  Errors
  /// pass through from the store (kAborted = snapshot too old: retry the
  /// ET).
  [[nodiscard]] Result<VersionRead> read_fresh(
      TxnId query_et, Key key, std::uint64_t snapshot,
      std::unordered_map<Key, Value>& charged);

 private:
  EtRegistry& registry_;
  Store& store_;
};

}  // namespace atp
