// Two-phase-locking divergence control (2PL-DC), after Wu, Yu & Pu (ICDE'92)
// as summarized in Section 1.1 of the paper.
//
// 2PL-DC behaves exactly like strict 2PL except at read-write conflicts
// between a *query* ET and an *update* ET.  There, instead of blocking, the
// conflict may be granted while fuzziness is charged to both sides:
//
//   * query requests S over an update's X   -> query *imports* the update's
//     pending (uncommitted) delta on the key; update *exports* the same.
//   * update requests X over queries' S     -> each query imports the delta
//     the update is about to write; the update exports it once per query.
//     The X grant itself only *peeks* budget feasibility; the real charge is
//     applied incrementally at write time by Database::write so multiple
//     writes and late-arriving readers are accounted exactly once.
//
// A grant succeeds only if every affected account stays within its limit
// (the registry's pair/multi charge is atomic all-or-nothing).  Otherwise the
// requester blocks, exactly as it would under plain 2PL -- this is the
// "blocked as it is handled in the two-phase locking concurrency control"
// behaviour the paper describes.
//
// Because the lock manager consults the resolver *before* the write's value
// is known, the scheduler deposits the impending write's |delta| in
// `announce_write_delta` before acquiring the X lock.  Later writes to an
// already-X-locked key charge incrementally at write time (see Database).
#pragma once

#include <array>
#include <mutex>
#include <span>
#include <unordered_map>

#include "lock/lock_manager.h"
#include "storage/store.h"
#include "txn/registry.h"

#include "common/ordered_lock.h"

namespace atp {

class DcResolver final : public ConflictResolver {
 public:
  DcResolver(EtRegistry& registry, Store& store)
      : registry_(registry), store_(store) {}

  /// Deposit the |delta| of the write `txn` is about to perform, so an X-lock
  /// fuzzy grant can charge the correct amount.  Cleared automatically after
  /// the grant decision; call again before each write.
  void announce_write_delta(TxnId txn, Value delta);
  void clear_write_delta(TxnId txn);

  bool try_fuzzy_grant(TxnId requester, LockMode mode, Key key,
                       std::span<const LockHolder> conflicting) override;

  bool eligible_pair(TxnId requester, LockMode requester_mode, TxnId other,
                     LockMode other_mode) override;

  /// All-or-nothing multi charge used both here and by write-time incremental
  /// charging: every query imports `amount`, the update exports `amount` per
  /// query.
  bool charge_queries(std::span<const TxnId> queries, TxnId update,
                      Value amount);

 private:
  EtRegistry& registry_;
  Store& store_;
  // Announced deltas are per-transaction and single-writer (each txn's
  // driver announces its own), so the map is striped by txn hash: announce /
  // clear / peek traffic from workers on different lock stripes never meets
  // on one mutex.
  static constexpr std::size_t kDeltaStripes = 16;
  struct alignas(64) DeltaStripe {
    OrderedMutex<LockRank::kDcDelta> mu;  ///< rank kDcDelta: consulted under a lock stripe
    std::unordered_map<TxnId, Value> pending;
  };
  std::array<DeltaStripe, kDeltaStripes> delta_stripes_;

  [[nodiscard]] DeltaStripe& delta_stripe_of(TxnId txn) noexcept {
    return delta_stripes_[txn % kDeltaStripes];
  }

  [[nodiscard]] Value pending_delta_of(TxnId txn);
};

}  // namespace atp
