#include "sched/history.h"

#include <algorithm>

namespace atp {

void HistoryRecorder::record(TxnId txn, OpType op, Key key, Value value) {
  if (!enabled()) return;
  const std::uint64_t seq =  // relaxed-ok: events() sorts by seq; append order is free
      seq_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(mu_);
  events_.push_back(HistoryEvent{seq, txn, op, key, value});
}

void HistoryRecorder::mark_committed(TxnId txn) {
  if (!enabled()) return;
  std::lock_guard lock(mu_);
  committed_.insert(txn);
}

std::vector<HistoryEvent> HistoryRecorder::events() const {
  std::lock_guard lock(mu_);
  std::vector<HistoryEvent> sorted = events_;
  std::sort(sorted.begin(), sorted.end(),
            [](const HistoryEvent& a, const HistoryEvent& b) {
              return a.seq < b.seq;
            });
  return sorted;
}

std::unordered_set<TxnId> HistoryRecorder::committed() const {
  std::lock_guard lock(mu_);
  return committed_;
}

bool HistoryRecorder::committed_projection_serializable(
    const std::unordered_map<TxnId, TxnId>* merge_by_parent) const {
  const auto evs = events();
  const auto done = committed();

  auto node_of = [&](TxnId t) -> TxnId {
    if (merge_by_parent) {
      auto it = merge_by_parent->find(t);
      if (it != merge_by_parent->end() && it->second != kInvalidTxn)
        return it->second;
    }
    return t;
  };

  // Precedence edges: for each key, between consecutive conflicting ops of
  // different (merged) transactions, ordered by seq.
  std::unordered_map<Key, std::vector<const HistoryEvent*>> by_key;
  for (const auto& e : evs) {
    if (!done.count(e.txn)) continue;
    by_key[e.key].push_back(&e);
  }

  std::unordered_map<TxnId, std::unordered_set<TxnId>> adj;
  for (auto& [key, ops] : by_key) {
    for (std::size_t i = 0; i < ops.size(); ++i) {
      for (std::size_t j = i + 1; j < ops.size(); ++j) {
        const auto& a = *ops[i];
        const auto& b = *ops[j];
        if (a.op == OpType::Read && b.op == OpType::Read) continue;
        const TxnId na = node_of(a.txn);
        const TxnId nb = node_of(b.txn);
        if (na == nb) continue;
        adj[na].insert(nb);
      }
    }
  }

  // Cycle check: iterative three-colour DFS.
  std::unordered_map<TxnId, int> colour;  // 0 white, 1 grey, 2 black
  for (const auto& [start, _] : adj) {
    if (colour[start] != 0) continue;
    // stack of (node, next-neighbour snapshot index)
    std::vector<std::pair<TxnId, std::vector<TxnId>>> stack;
    auto push = [&](TxnId n) {
      colour[n] = 1;
      std::vector<TxnId> nbrs;
      auto it = adj.find(n);
      if (it != adj.end()) nbrs.assign(it->second.begin(), it->second.end());
      stack.emplace_back(n, std::move(nbrs));
    };
    push(start);
    while (!stack.empty()) {
      auto& [node, nbrs] = stack.back();
      if (nbrs.empty()) {
        colour[node] = 2;
        stack.pop_back();
        continue;
      }
      const TxnId next = nbrs.back();
      nbrs.pop_back();
      const int c = colour[next];
      if (c == 1) return false;  // back edge: cycle
      if (c == 0) push(next);
    }
  }
  return true;
}

void HistoryRecorder::clear() {
  std::lock_guard lock(mu_);
  events_.clear();
  committed_.clear();
  seq_.store(0, std::memory_order_relaxed);  // relaxed-ok: under mu_
}

}  // namespace atp
