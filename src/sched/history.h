// Execution-history recorder and conflict-serializability checker.
//
// Tests use this as the correctness oracle: a CC run must produce a history
// whose committed projection is conflict-serializable; a DC run may violate
// that, but only by interleavings whose fuzziness stays within every ET's
// eps-spec.  The checker builds the classic precedence graph (edges between
// committed transactions with conflicting operations, ordered by the global
// apply sequence) and tests it for cycles.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.h"

#include "common/ordered_lock.h"

namespace atp {

enum class OpType : std::uint8_t { Read, Write };

struct HistoryEvent {
  std::uint64_t seq = 0;  ///< global apply order
  TxnId txn = kInvalidTxn;
  OpType op = OpType::Read;
  Key key = 0;
  Value value = 0;  ///< value observed (read) or installed (write)
};

class HistoryRecorder {
 public:
  /// Enable/disable recording (off by default; benches leave it off).
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);  // relaxed-ok: gating flag
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);  // relaxed-ok: gating flag
  }

  void record(TxnId txn, OpType op, Key key, Value value);

  /// Mark the transaction's outcome; only committed txns join the precedence
  /// graph.
  void mark_committed(TxnId txn);

  [[nodiscard]] std::vector<HistoryEvent> events() const;
  [[nodiscard]] std::unordered_set<TxnId> committed() const;

  /// Is the committed projection conflict-serializable?
  /// `merge_by_parent`: if provided, maps piece -> original transaction so the
  /// check runs at original-transaction granularity (serializable *with
  /// respect to the original transactions*, Section 2.1).
  [[nodiscard]] bool committed_projection_serializable(
      const std::unordered_map<TxnId, TxnId>* merge_by_parent = nullptr) const;

  void clear();

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> seq_{0};
  mutable OrderedMutex<LockRank::kHistory> mu_;  ///< rank kHistory: leaf under commit paths
  std::vector<HistoryEvent> events_;
  std::unordered_set<TxnId> committed_;
};

}  // namespace atp
