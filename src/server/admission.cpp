#include "server/admission.h"

#include <cmath>
#include <cstdlib>

namespace atp::server {

std::vector<ClassPolicy> default_classes() {
  return {
      {"gold", 0, 0, kInfiniteLimit, 64},
      {"silver", 500, 500, /*concurrent_budget=*/4000, 32},
      {"bronze", 100000, 100000, kInfiniteLimit, 16},
  };
}

bool parse_class_policy(const std::string& spec, ClassPolicy* out) {
  ClassPolicy p;
  std::size_t start = 0;
  std::vector<std::string> parts;
  while (start <= spec.size()) {
    const std::size_t colon = spec.find(':', start);
    if (colon == std::string::npos) {
      parts.push_back(spec.substr(start));
      break;
    }
    parts.push_back(spec.substr(start, colon - start));
    start = colon + 1;
  }
  if (parts.size() < 3 || parts.size() > 5 || parts[0].empty()) return false;
  auto num = [](const std::string& s, double* v) {
    if (s == "inf") {
      *v = double(kInfiniteLimit);
      return true;
    }
    char* end = nullptr;
    *v = std::strtod(s.c_str(), &end);
    return end != nullptr && *end == '\0' && !s.empty() && *v >= 0;
  };
  p.name = parts[0];
  double imp_lim = 0, exp_lim = 0;
  if (!num(parts[1], &imp_lim) || !num(parts[2], &exp_lim)) return false;
  p.import_ceiling = imp_lim;
  p.export_ceiling = exp_lim;
  if (parts.size() >= 4) {
    double budget = 0;
    if (!num(parts[3], &budget)) return false;
    p.concurrent_budget = budget;
  }
  if (parts.size() == 5) {
    double window = 0;
    if (!num(parts[4], &window) || window < 1 || window > 4096 ||
        std::isinf(window)) {
      return false;
    }
    p.window = std::size_t(window);
  }
  *out = p;
  return true;
}

AdmissionController::AdmissionController(std::vector<ClassPolicy> classes)
    : classes_(std::move(classes)) {}

const ClassPolicy* AdmissionController::find(const std::string& name) const {
  for (const ClassPolicy& c : classes_) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

Value AdmissionController::cost_of(const EpsilonSpec& spec) noexcept {
  Value cost = 0;
  if (!std::isinf(spec.import_limit)) cost += spec.import_limit;
  if (!std::isinf(spec.export_limit)) cost += spec.export_limit;
  return cost;
}

AdmissionController::Grant AdmissionController::admit(const ClassPolicy& cls,
                                                      TxnKind kind,
                                                      double req_import,
                                                      double req_export) {
  Grant g;
  // Negative request = "give me the class default".  NaN is a hostile wire
  // value; treat it as a default request rather than letting it poison the
  // comparisons below.
  const Value imp_lim = (req_import < 0 || std::isnan(req_import))
                            ? cls.import_ceiling
                            : Value(req_import);
  const Value exp_lim = (req_export < 0 || std::isnan(req_export))
                            ? cls.export_ceiling
                            : Value(req_export);
  if (imp_lim > cls.import_ceiling || exp_lim > cls.export_ceiling) {
    g.status = Status::EpsilonExceeded(
        "class '" + cls.name + "' ceiling import=" +
        std::to_string(double(cls.import_ceiling)) +
        " export=" + std::to_string(double(cls.export_ceiling)));
    return g;
  }
  // The granted spec follows the paper's sides: queries import, updates
  // export (spec_for); granting both sides as requested keeps symmetric
  // classes simple while the kind picks which side divergence control uses.
  EpsilonSpec spec;
  spec.import_limit = kind == TxnKind::Query ? imp_lim : 0;
  spec.export_limit = kind == TxnKind::Update ? exp_lim : 0;

  const Value cost = cost_of(spec);
  {
    std::lock_guard lock(mu_);
    Value& out = outstanding_[cls.name];
    if (!std::isinf(double(cls.concurrent_budget)) &&
        out + cost > cls.concurrent_budget) {
      g.status = Status::Unavailable(
          "class '" + cls.name + "' concurrent eps budget exhausted (" +
          std::to_string(double(out)) + " of " +
          std::to_string(double(cls.concurrent_budget)) + " outstanding)");
      return g;
    }
    out += cost;
  }
  g.admitted = true;
  g.spec = spec;
  g.status = Status::Ok();
  return g;
}

void AdmissionController::release(const ClassPolicy& cls,
                                  const EpsilonSpec& granted) {
  const Value cost = cost_of(granted);
  if (cost == 0) return;
  std::lock_guard lock(mu_);
  Value& out = outstanding_[cls.name];
  out = out > cost ? out - cost : 0;
}

Value AdmissionController::outstanding(const std::string& cls) const {
  std::lock_guard lock(mu_);
  auto it = outstanding_.find(cls);
  return it == outstanding_.end() ? 0 : it->second;
}

}  // namespace atp::server
