// Admission control: client classes buy epsilon budget.
//
// The paper's knob -- an ET pays for throughput with bounded inconsistency
// (its eps-spec) -- becomes the server's QoS surface here.  Every session
// authenticates as a *class*, and the class policy decides what its
// transactions may ask of divergence control:
//
//   * per-transaction ceilings: the largest import/export limits a Begin may
//     request.  A "gold" class with ceiling 0 is the serializable special
//     case (eps = 0); a "bronze" class with a huge ceiling runs almost
//     unblocked by DC and gets the Section 1.1 throughput win in exchange
//     for fuzziness.  A Begin asking beyond its ceiling is REJECTED -- a
//     client cannot buy consistency laxity its class didn't pay for.
//
//   * a concurrent budget: the summed finite eps granted to the class's
//     in-flight transactions.  When exhausted, further Begins are rejected
//     (kUnavailable -- retry later), which bounds the total fuzziness the
//     class can have outstanding at once.  Rejections are counted per class
//     through the obs registry (srv.admission.rejected.<class>).
//
//   * a per-session in-flight window: how many parsed-but-unfinished
//     requests one connection may pipeline (session.h enforces it).
//
// Thread safety: admit/release run from server worker threads; one mutex
// serializes the budget ledger (admissions are orders of magnitude rarer
// than ops, so this is nowhere near the hot path).
#pragma once

#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "txn/epsilon.h"

#include "common/ordered_lock.h"

namespace atp::server {

struct ClassPolicy {
  std::string name;
  Value import_ceiling = 0;  ///< max import limit a Begin may request
  Value export_ceiling = 0;  ///< max export limit a Begin may request
  /// Cap on summed finite eps granted to concurrently-live transactions of
  /// this class; kInfiniteLimit = unmetered.
  Value concurrent_budget = kInfiniteLimit;
  std::size_t window = 32;   ///< per-session in-flight request window
};

/// The stock tiering: pay less consistency, get admitted more freely.
///   gold    eps 0 (serializable), unmetered -- the classic-transaction tier
///   silver  moderate ceilings under a finite concurrent budget
///   bronze  huge ceilings, unmetered -- the "throughput at eps" tier
[[nodiscard]] std::vector<ClassPolicy> default_classes();

/// Parse "name:import:export[:budget[:window]]" (atpd --class flag).
/// Returns false on malformed input.
bool parse_class_policy(const std::string& spec, ClassPolicy* out);

class AdmissionController {
 public:
  explicit AdmissionController(std::vector<ClassPolicy> classes);

  /// nullptr when no class of that name exists (the session handshake
  /// fails).  Pointers stay valid for the controller's lifetime.
  [[nodiscard]] const ClassPolicy* find(const std::string& name) const;

  struct Grant {
    bool admitted = false;
    EpsilonSpec spec;  ///< granted eps-spec (valid when admitted)
    Status status;     ///< rejection reason otherwise
  };

  /// Decide a Begin from class `cls`: requested limits < 0 mean "class
  /// default" (the ceiling); anything above the ceiling or beyond the
  /// class's remaining concurrent budget is rejected.
  [[nodiscard]] Grant admit(const ClassPolicy& cls, TxnKind kind,
                            double req_import, double req_export);

  /// Return a granted spec's budget (transaction ended or session died).
  void release(const ClassPolicy& cls, const EpsilonSpec& granted);

  /// Finite eps currently granted to live transactions of `cls` (tests).
  [[nodiscard]] Value outstanding(const std::string& cls) const;

  [[nodiscard]] const std::vector<ClassPolicy>& classes() const noexcept {
    return classes_;
  }

 private:
  /// The budget cost of a granted spec: its finite components (an infinite
  /// side is unmetered -- only classes with finite ceilings are metered).
  [[nodiscard]] static Value cost_of(const EpsilonSpec& spec) noexcept;

  std::vector<ClassPolicy> classes_;
  mutable OrderedMutex<LockRank::kAdmission> mu_;  ///< rank kAdmission: leaf (no lock taken while held)
  std::unordered_map<std::string, Value> outstanding_;
};

}  // namespace atp::server
