#include "server/client.h"

#include <cerrno>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

#include "common/socket.h"

namespace atp::server {

// ---------------------------------------------------------------- TCP -----

TcpByteChannel::TcpByteChannel(const std::string& host, std::uint16_t port)
    : fd_(connect_tcp(host, port)) {}

TcpByteChannel::~TcpByteChannel() { close(); }

bool TcpByteChannel::send_bytes(std::string_view bytes) {
  if (fd_ < 0) return false;
  if (!send_all(fd_, bytes)) {
    close();
    return false;
  }
  return true;
}

std::optional<std::string> TcpByteChannel::recv(
    std::chrono::milliseconds timeout) {
  if (fd_ < 0) return std::nullopt;
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  for (;;) {
    const int r =
        ::poll(&pfd, 1, int(std::max<std::int64_t>(0, timeout.count())));
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) return std::nullopt;  // timeout or poll failure
    break;
  }
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n > 0) return std::string(buf, std::size_t(n));
    if (n < 0 && errno == EINTR) continue;
    close();  // orderly EOF or hard error
    return std::nullopt;
  }
}

void TcpByteChannel::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// ------------------------------------------------------------- Client -----

Client::Client(std::unique_ptr<ByteChannel> channel,
               std::chrono::milliseconds timeout)
    : channel_(std::move(channel)), timeout_(timeout) {}

Status Client::status_from_error(const WireMessage& reply) {
  if (reply.op == 0 || reply.op > std::uint8_t(ErrorCode::kConflict)) {
    return Status::Unavailable("malformed error reply: " + reply.text);
  }
  return {ErrorCode(reply.op), reply.text};
}

Result<WireMessage> Client::call(WireMessage req) {
  if (!ok()) return Status::Unavailable("channel closed");
  req.seq = next_seq_++;
  if (!channel_->send_bytes(encode_frame(req))) {
    return Status::Unavailable("send failed");
  }
  const auto deadline = std::chrono::steady_clock::now() + timeout_;
  for (;;) {
    std::optional<WireMessage> reply = reader_.next();
    if (reader_.bad()) {
      channel_->close();
      return Status::Unavailable("malformed reply stream");
    }
    if (reply.has_value()) {
      // A synchronous client has one request outstanding; anything with a
      // stale seq is a leftover (e.g. a window-reject raced a reply) and is
      // skipped rather than trusted.
      if (reply->seq != req.seq) continue;
      return std::move(*reply);
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return Status::Timeout("no reply within timeout");
    const auto wait =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    std::optional<std::string> bytes =
        channel_->recv(std::max(wait, std::chrono::milliseconds(1)));
    if (!bytes.has_value()) {
      if (!channel_->ok()) return Status::Unavailable("connection closed");
      return Status::Timeout("no reply within timeout");
    }
    reader_.feed(*bytes);
  }
}

Status Client::hello(const std::string& client_class) {
  WireMessage req;
  req.kind = MsgKind::kHello;
  req.text = client_class;
  Result<WireMessage> r = call(std::move(req));
  if (!r.ok()) return r.status();
  const WireMessage& reply = r.value();
  if (reply.kind == MsgKind::kError) return status_from_error(reply);
  if (reply.kind != MsgKind::kHelloOk) {
    return Status::Unavailable("unexpected handshake reply");
  }
  info_.name = reply.text;
  info_.import_ceiling = reply.value;
  info_.export_ceiling = reply.value2;
  info_.window = reply.key;
  return Status::Ok();
}

Result<std::uint64_t> Client::begin(TxnKind kind, double import_limit,
                                    double export_limit) {
  WireMessage req;
  req.kind = MsgKind::kBegin;
  req.txn = next_txn_++;
  req.op = std::uint8_t(kind);
  req.value = import_limit;
  req.value2 = export_limit;
  const std::uint64_t handle = req.txn;
  Result<WireMessage> r = call(std::move(req));
  if (!r.ok()) return r.status();
  if (r.value().kind == MsgKind::kError) return status_from_error(r.value());
  return handle;
}

Result<Value> Client::read(std::uint64_t txn, Key key) {
  WireMessage req;
  req.kind = MsgKind::kOp;
  req.txn = txn;
  req.op = std::uint8_t(OpCode::kRead);
  req.key = key;
  Result<WireMessage> r = call(std::move(req));
  if (!r.ok()) return r.status();
  if (r.value().kind == MsgKind::kError) return status_from_error(r.value());
  if (r.value().kind != MsgKind::kValue) {
    return Status::Unavailable("unexpected read reply");
  }
  return Value(r.value().value);
}

Status Client::write(std::uint64_t txn, Key key, Value value) {
  WireMessage req;
  req.kind = MsgKind::kOp;
  req.txn = txn;
  req.op = std::uint8_t(OpCode::kWrite);
  req.key = key;
  req.value = double(value);
  Result<WireMessage> r = call(std::move(req));
  if (!r.ok()) return r.status();
  if (r.value().kind == MsgKind::kError) return status_from_error(r.value());
  return Status::Ok();
}

Status Client::add(std::uint64_t txn, Key key, Value delta) {
  WireMessage req;
  req.kind = MsgKind::kOp;
  req.txn = txn;
  req.op = std::uint8_t(OpCode::kAdd);
  req.key = key;
  req.value = double(delta);
  Result<WireMessage> r = call(std::move(req));
  if (!r.ok()) return r.status();
  if (r.value().kind == MsgKind::kError) return status_from_error(r.value());
  return Status::Ok();
}

Result<Value> Client::commit(std::uint64_t txn) {
  WireMessage req;
  req.kind = MsgKind::kCommit;
  req.txn = txn;
  Result<WireMessage> r = call(std::move(req));
  if (!r.ok()) return r.status();
  if (r.value().kind == MsgKind::kError) return status_from_error(r.value());
  return Value(r.value().value);  // committed fuzziness Z
}

Status Client::abort(std::uint64_t txn) {
  WireMessage req;
  req.kind = MsgKind::kAbort;
  req.txn = txn;
  Result<WireMessage> r = call(std::move(req));
  if (!r.ok()) return r.status();
  if (r.value().kind == MsgKind::kError) return status_from_error(r.value());
  return Status::Ok();
}

Status Client::ping() {
  WireMessage req;
  req.kind = MsgKind::kPing;
  Result<WireMessage> r = call(std::move(req));
  if (!r.ok()) return r.status();
  if (r.value().kind == MsgKind::kError) return status_from_error(r.value());
  return Status::Ok();
}

void Client::close() {
  if (channel_) channel_->close();
}

}  // namespace atp::server
