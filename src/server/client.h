// Client library: the other end of the wire protocol.
//
// A Client drives transactions on a remote atpd over any ByteChannel -- the
// real TCP socket (TcpByteChannel) or the deterministic simulated network
// (SimByteChannel) -- so tests and tools exercise the exact frames a
// production client would send.  The API mirrors the in-process Txn handle
// (begin/read/write/add/commit/abort) with the server's additions: the
// class handshake (hello) and per-Begin eps requests.
//
// The client is synchronous and single-threaded: one request in flight at a
// time, each call blocks until its reply (matched by seq) or the timeout.
// Not thread-safe -- give each thread its own Client (bench_net does).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "common/status.h"
#include "common/types.h"
#include "net/network.h"
#include "server/protocol.h"
#include "server/transport.h"

namespace atp::server {

/// Blocking byte-stream the Client speaks frames over.
class ByteChannel {
 public:
  virtual ~ByteChannel() = default;
  [[nodiscard]] virtual bool ok() const = 0;
  virtual bool send_bytes(std::string_view bytes) = 0;
  /// Next chunk of server bytes; std::nullopt on timeout or channel death.
  virtual std::optional<std::string> recv(
      std::chrono::milliseconds timeout) = 0;
  virtual void close() = 0;
};

/// Production channel: one blocking loopback TCP connection.
class TcpByteChannel final : public ByteChannel {
 public:
  TcpByteChannel(const std::string& host, std::uint16_t port);
  ~TcpByteChannel() override;

  [[nodiscard]] bool ok() const override { return fd_ >= 0; }
  bool send_bytes(std::string_view bytes) override;
  std::optional<std::string> recv(std::chrono::milliseconds timeout) override;
  void close() override;

 private:
  int fd_ = -1;
};

/// Deterministic channel over SimNetwork (wraps SimClientChannel and
/// announces the connection at construction).
class SimByteChannel final : public ByteChannel {
 public:
  SimByteChannel(SimNetwork& net, SiteId client_site, SiteId server_site)
      : ch_(net, client_site, server_site) {
    ch_.connect();
  }

  [[nodiscard]] bool ok() const override { return !ch_.closed_by_server(); }
  bool send_bytes(std::string_view bytes) override {
    return ch_.send_bytes(bytes);
  }
  std::optional<std::string> recv(std::chrono::milliseconds timeout) override {
    return ch_.recv(timeout);
  }
  void close() override { ch_.close(); }

 private:
  SimClientChannel ch_;
};

/// What the server granted at hello time.
struct ClassInfo {
  std::string name;
  double import_ceiling = 0;
  double export_ceiling = 0;
  std::uint64_t window = 0;  ///< per-session in-flight request window
};

class Client {
 public:
  explicit Client(std::unique_ptr<ByteChannel> channel,
                  std::chrono::milliseconds timeout =
                      std::chrono::milliseconds(5000));

  [[nodiscard]] bool ok() const { return channel_ && channel_->ok(); }

  /// Handshake into a client class.  Must be the first call.
  Status hello(const std::string& client_class);

  /// Ceilings/window the server granted (valid after hello()).
  [[nodiscard]] const ClassInfo& class_info() const noexcept { return info_; }

  /// Open a transaction; returns the client-side handle used in every later
  /// call.  Negative limits mean "class default" (the ceiling).
  [[nodiscard]] Result<std::uint64_t> begin(TxnKind kind,
                                            double import_limit = -1,
                                            double export_limit = -1);

  [[nodiscard]] Result<Value> read(std::uint64_t txn, Key key);
  Status write(std::uint64_t txn, Key key, Value value);
  Status add(std::uint64_t txn, Key key, Value delta);

  /// Commit; the value is the transaction's accumulated fuzziness Z.
  [[nodiscard]] Result<Value> commit(std::uint64_t txn);
  Status abort(std::uint64_t txn);

  /// Liveness probe / pipeline fence.
  Status ping();

  void close();

 private:
  /// Send `req` (seq assigned here) and block for the matching reply.
  [[nodiscard]] Result<WireMessage> call(WireMessage req);
  [[nodiscard]] static Status status_from_error(const WireMessage& reply);

  std::unique_ptr<ByteChannel> channel_;
  std::chrono::milliseconds timeout_;
  FrameReader reader_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_txn_ = 1;
  ClassInfo info_;
};

}  // namespace atp::server
