#include "server/protocol.h"

#include <cstring>

namespace atp::server {

namespace {

// Fixed payload record: seq(8) + txn(8) + op(1) + key(8) + value(8) +
// value2(8) + text_len(2) = 43 bytes before the text.
constexpr std::size_t kFixedPayload = 43;
// Frame body = version(1) + kind(1) + payload.
constexpr std::size_t kBodyOverhead = 2;

void put_u16(std::string* out, std::uint16_t v) {
  out->push_back(char(v & 0xff));
  out->push_back(char((v >> 8) & 0xff));
}

void put_u32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(char((v >> (8 * i)) & 0xff));
}

void put_u64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(char((v >> (8 * i)) & 0xff));
}

void put_f64(std::string* out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

std::uint16_t get_u16(const unsigned char* p) {
  return std::uint16_t(p[0]) | std::uint16_t(p[1]) << 8;
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

double get_f64(const unsigned char* p) {
  const std::uint64_t bits = get_u64(p);
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

bool known_kind(std::uint8_t k) {
  switch (MsgKind(k)) {
    case MsgKind::kHello:
    case MsgKind::kBegin:
    case MsgKind::kOp:
    case MsgKind::kCommit:
    case MsgKind::kAbort:
    case MsgKind::kPing:
    case MsgKind::kHelloOk:
    case MsgKind::kOk:
    case MsgKind::kValue:
    case MsgKind::kError:
      return true;
  }
  return false;
}

}  // namespace

const char* to_string(MsgKind k) noexcept {
  switch (k) {
    case MsgKind::kHello: return "hello";
    case MsgKind::kBegin: return "begin";
    case MsgKind::kOp: return "op";
    case MsgKind::kCommit: return "commit";
    case MsgKind::kAbort: return "abort";
    case MsgKind::kPing: return "ping";
    case MsgKind::kHelloOk: return "hello-ok";
    case MsgKind::kOk: return "ok";
    case MsgKind::kValue: return "value";
    case MsgKind::kError: return "error";
  }
  return "?";
}

void encode_frame(const WireMessage& msg, std::string* out) {
  const std::size_t text_len = msg.text.size();
  // Callers never legitimately build oversized text; truncate defensively so
  // the length fields can't lie about each other.
  const std::uint16_t tl =
      std::uint16_t(text_len > 0xffff ? 0xffff : text_len);
  put_u32(out, std::uint32_t(kBodyOverhead + kFixedPayload + tl));
  out->push_back(char(kProtocolVersion));
  out->push_back(char(msg.kind));
  put_u64(out, msg.seq);
  put_u64(out, msg.txn);
  out->push_back(char(msg.op));
  put_u64(out, msg.key);
  put_f64(out, msg.value);
  put_f64(out, msg.value2);
  put_u16(out, tl);
  out->append(msg.text.data(), tl);
}

std::string encode_frame(const WireMessage& msg) {
  std::string out;
  out.reserve(4 + kBodyOverhead + kFixedPayload + msg.text.size());
  encode_frame(msg, &out);
  return out;
}

DecodeStatus decode_frame(std::string_view data, WireMessage* out,
                          std::size_t* consumed) {
  const auto* p = reinterpret_cast<const unsigned char*>(data.data());
  if (data.size() < 4) return DecodeStatus::kNeedMore;
  const std::uint32_t len = get_u32(p);
  if (len > kMaxFrameBytes || len < kBodyOverhead + kFixedPayload) {
    return DecodeStatus::kBad;
  }
  if (data.size() < 4 + std::size_t(len)) return DecodeStatus::kNeedMore;
  const unsigned char* body = p + 4;
  if (body[0] != kProtocolVersion) return DecodeStatus::kBad;
  if (!known_kind(body[1])) return DecodeStatus::kBad;
  const unsigned char* f = body + kBodyOverhead;
  const std::uint16_t text_len = get_u16(f + 41);
  if (std::size_t(len) != kBodyOverhead + kFixedPayload + text_len) {
    return DecodeStatus::kBad;  // the two length fields disagree
  }
  WireMessage m;
  m.kind = MsgKind(body[1]);
  m.seq = get_u64(f);
  m.txn = get_u64(f + 8);
  m.op = f[16];
  m.key = get_u64(f + 17);
  m.value = get_f64(f + 25);
  m.value2 = get_f64(f + 33);
  m.text.assign(reinterpret_cast<const char*>(f + 43), text_len);
  *out = std::move(m);
  *consumed = 4 + std::size_t(len);
  return DecodeStatus::kOk;
}

std::optional<WireMessage> FrameReader::next() {
  if (bad_ || buf_.empty()) return std::nullopt;
  WireMessage m;
  std::size_t consumed = 0;
  switch (decode_frame(buf_, &m, &consumed)) {
    case DecodeStatus::kOk:
      buf_.erase(0, consumed);
      return m;
    case DecodeStatus::kNeedMore:
      return std::nullopt;
    case DecodeStatus::kBad:
      bad_ = true;
      buf_.clear();
      buf_.shrink_to_fit();
      return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace atp::server
