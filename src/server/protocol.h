// Binary wire protocol of the server front-end.
//
// This is the process boundary the rest of the tree never had: inside the
// engine, messages carry std::any payloads (net/message.h) because every
// site lives in one address space.  A client, by definition, does not -- so
// everything that crosses a Transport is one of these frames:
//
//   [u32 length][u8 version][u8 kind][payload ...]
//
// `length` counts everything after the length field itself (version + kind +
// payload), little-endian.  Payload layout is the same fixed record for
// every kind -- unused fields encode as zero -- which keeps the decoder a
// single bounds-checked path and makes round-trip testing exhaustive:
//
//   [u64 seq][u64 txn][u8 op][u64 key][f64 value][f64 value2][u16 len][text]
//
//   seq    client-chosen request sequence number, echoed on the reply --
//          the correlation id of the protocol
//   txn    client-side transaction handle (client-chosen on Begin, echoed
//          everywhere else)
//   op     OpCode on kOp requests; ErrorCode on kError replies
//   key    data item (kOp)
//   value  op delta / written value / read result / granted import limit
//   value2 requested/granted eps limit second component
//   text   client class (kHello), error message (kError)
//
// Doubles travel as IEEE-754 bit patterns (memcpy through u64); every
// integer is little-endian regardless of host order.  The decoder rejects --
// without crashing, allocating unboundedly, or reading out of bounds -- bad
// magic versions, unknown kinds, frames above kMaxFrameBytes, and payloads
// whose size disagrees with the fixed record (tests/protocol_test.cpp runs
// the malformed-input matrix under ATP_SANITIZE).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/types.h"

namespace atp::server {

constexpr std::uint8_t kProtocolVersion = 1;

/// Hard ceiling on one frame (length field value).  Nothing the protocol
/// carries is remotely this large; anything bigger is a corrupt or hostile
/// stream and the connection is dropped.
constexpr std::uint32_t kMaxFrameBytes = 1 << 16;

enum class MsgKind : std::uint8_t {
  // Requests (client -> server).
  kHello = 1,   ///< handshake: text = client class name
  kBegin = 2,   ///< open txn `txn`; op = TxnKind, value/value2 = requested
                ///< import/export limits (negative = class default)
  kOp = 3,      ///< op on txn `txn`: OpCode in `op`, key, value
  kCommit = 4,  ///< commit txn `txn`
  kAbort = 5,   ///< abort txn `txn`
  kPing = 6,    ///< liveness probe / fence

  // Replies (server -> client).
  kHelloOk = 64,  ///< text = granted class; value/value2 = class import/
                  ///< export ceilings; key = per-session in-flight window
  kOk = 65,       ///< request `seq` done (begin/commit/abort/ping)
  kValue = 66,    ///< read result in `value`
  kError = 67,    ///< request failed: ErrorCode in `op`, text = message
};

[[nodiscard]] const char* to_string(MsgKind k) noexcept;

/// Client-visible op codes inside a transaction (kOp requests).
enum class OpCode : std::uint8_t {
  kRead = 1,   ///< value <- db[key]
  kWrite = 2,  ///< db[key] <- value
  kAdd = 3,    ///< db[key] += value
};

/// One decoded frame.  Unused fields are zero / empty; see the layout note
/// above for which kinds use which fields.
struct WireMessage {
  MsgKind kind = MsgKind::kPing;
  std::uint64_t seq = 0;
  std::uint64_t txn = 0;
  std::uint8_t op = 0;
  Key key = 0;
  double value = 0;
  double value2 = 0;
  std::string text;

  friend bool operator==(const WireMessage&, const WireMessage&) = default;
};

/// Append the encoded frame for `msg` to `out`.
void encode_frame(const WireMessage& msg, std::string* out);

/// Convenience: the encoded frame as a fresh string.
[[nodiscard]] std::string encode_frame(const WireMessage& msg);

enum class DecodeStatus : std::uint8_t {
  kOk,        ///< one frame decoded; *consumed bytes were eaten
  kNeedMore,  ///< prefix of a valid frame; feed more bytes
  kBad,       ///< malformed (bad version/kind/length); drop the connection
};

/// Decode one frame from the front of `data`.  On kOk fills *out and sets
/// *consumed to the frame's total size.  Never reads past `data.size()`.
[[nodiscard]] DecodeStatus decode_frame(std::string_view data,
                                        WireMessage* out,
                                        std::size_t* consumed);

/// Incremental stream decoder: feed bytes as they arrive, pop frames as they
/// complete.  One per connection (session read path, client reply path).
class FrameReader {
 public:
  /// Append raw bytes from the stream.  Once the stream has gone bad the
  /// bytes are discarded -- an owner slow to drop the connection must not
  /// let a hostile peer grow the buffer unboundedly.
  void feed(std::string_view bytes) {
    if (bad_) return;
    buf_.append(bytes);
  }

  /// Next complete frame, if any.  Returns std::nullopt when the buffer
  /// holds only a partial frame; sets bad() and returns std::nullopt when
  /// the stream is malformed (the owner must drop the connection -- framing
  /// can't resynchronize after a corrupt length).
  std::optional<WireMessage> next();

  [[nodiscard]] bool bad() const noexcept { return bad_; }

  /// Bytes buffered but not yet consumed (tests).
  [[nodiscard]] std::size_t buffered() const noexcept { return buf_.size(); }

 private:
  std::string buf_;
  bool bad_ = false;
};

}  // namespace atp::server
