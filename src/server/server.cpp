#include "server/server.h"

#include <algorithm>

namespace atp::server {

AtpServer::AtpServer(Database& db, std::unique_ptr<Transport> transport,
                     ServerOptions opts)
    : db_(db),
      transport_(std::move(transport)),
      opts_(std::move(opts)),
      admission_(opts_.classes.empty() ? default_classes()
                                       : std::move(opts_.classes)) {
  if (obs::MetricsRegistry* m = opts_.metrics; m != nullptr) {
    counters_.requests = &m->counter("srv.requests");
    counters_.protocol_errors = &m->counter("srv.protocol_errors");
    counters_.window_rejects = &m->counter("srv.window_rejects");
    counters_.committed = &m->counter("srv.txn.committed");
    counters_.aborted = &m->counter("srv.txn.aborted");
    sessions_accepted_ = &m->counter("srv.sessions.accepted");
    sessions_closed_ = &m->counter("srv.sessions.closed");
    sessions_active_ = &m->gauge("srv.sessions.active");
    for (const ClassPolicy& c : admission_.classes()) {
      counters_.admission_granted[c.name] =
          &m->counter("srv.admission.granted." + c.name);
      counters_.admission_rejected[c.name] =
          &m->counter("srv.admission.rejected." + c.name);
    }
  }
  if (!transport_ || !transport_->ok()) return;
  poll_thread_ = std::thread([this] { poll_loop(); });
  const std::size_t n = std::max<std::size_t>(1, opts_.workers);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

AtpServer::~AtpServer() { stop(); }

bool AtpServer::ok() const { return transport_ && transport_->ok(); }

std::uint16_t AtpServer::port() const {
  return transport_ ? transport_->port() : 0;
}

std::size_t AtpServer::active_sessions() const {
  std::lock_guard lock(sessions_mu_);
  return sessions_.size();
}

void AtpServer::stop() {
  // Serialize the whole shutdown: join() on the same std::thread from two
  // callers is UB, so a second stop() blocks here until the first finishes
  // and then sees stopping_ already set.
  std::lock_guard stop_lock(stop_mu_);
  if (stopping_.exchange(true)) return;
  queue_cv_.notify_all();
  if (poll_thread_.joinable()) poll_thread_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  // No threads left: close every session (aborts its live transactions and
  // returns its admission grants) before the database can go away.
  std::lock_guard lock(sessions_mu_);
  for (auto& [conn, s] : sessions_) s->close();
  sessions_.clear();
  if (sessions_active_ != nullptr) sessions_active_->set(0);
}

void AtpServer::schedule(std::shared_ptr<Session> s) {
  {
    std::lock_guard lock(queue_mu_);
    ready_.push_back(std::move(s));
  }
  queue_cv_.notify_one();
}

void AtpServer::drop_session(ConnId conn) {
  std::shared_ptr<Session> victim;
  {
    std::lock_guard lock(sessions_mu_);
    auto it = sessions_.find(conn);
    if (it == sessions_.end()) return;
    victim = std::move(it->second);
    sessions_.erase(it);
    if (sessions_active_ != nullptr) {
      sessions_active_->set(double(sessions_.size()));
    }
  }
  ServerCounters::bump(sessions_closed_);
  // If a worker is mid-execute, close() defers transaction teardown to that
  // worker's finish_one(); the shared_ptr it holds keeps the object alive.
  victim->close();
}

void AtpServer::poll_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const std::vector<TransportEvent> events =
        transport_->poll(opts_.poll_interval);
    for (const TransportEvent& ev : events) {
      switch (ev.kind) {
        case TransportEvent::Kind::kAccept: {
          std::shared_ptr<Session> s;
          {
            std::lock_guard lock(sessions_mu_);
            if (sessions_.size() < opts_.max_sessions) {
              s = std::make_shared<Session>(ev.conn, db_, admission_,
                                            counters_);
              sessions_.emplace(ev.conn, s);
              if (sessions_active_ != nullptr) {
                sessions_active_->set(double(sessions_.size()));
              }
            }
          }
          if (!s) {  // over max_sessions: refuse at accept
            transport_->close(ev.conn);
            break;
          }
          ServerCounters::bump(sessions_accepted_);
          break;
        }
        case TransportEvent::Kind::kData: {
          std::shared_ptr<Session> s;
          {
            std::lock_guard lock(sessions_mu_);
            auto it = sessions_.find(ev.conn);
            if (it != sessions_.end()) s = it->second;
          }
          if (!s) break;
          Session::FeedResult fed = s->feed(ev.data);
          if (!fed.immediate_replies.empty()) {
            transport_->send(ev.conn, fed.immediate_replies);
          }
          if (fed.fatal) {
            transport_->close(ev.conn);
            drop_session(ev.conn);
            break;
          }
          schedule(std::move(s));
          break;
        }
        case TransportEvent::Kind::kClosed:
          drop_session(ev.conn);
          break;
      }
    }
  }
}

void AtpServer::worker_loop() {
  for (;;) {
    std::shared_ptr<Session> s;
    {
      std::unique_lock lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) || !ready_.empty();
      });
      if (stopping_.load(std::memory_order_acquire)) return;
      s = std::move(ready_.front());
      ready_.pop_front();
    }
    const std::optional<WireMessage> req = s->take_next();
    if (!req.has_value()) continue;
    const std::string reply = s->execute(*req);
    transport_->send(s->conn(), reply);
    // Re-queue instead of looping here so one chatty pipeliner cannot
    // monopolize a worker while other sessions wait.
    if (s->finish_one()) schedule(std::move(s));
  }
}

}  // namespace atp::server
