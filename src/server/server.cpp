#include "server/server.h"

#include <algorithm>
#include <cstdio>

namespace atp::server {

AtpServer::AtpServer(Database& db, std::unique_ptr<Transport> transport,
                     ServerOptions opts)
    : db_(db),
      transport_(std::move(transport)),
      opts_(std::move(opts)),
      admission_(opts_.classes.empty() ? default_classes()
                                       : std::move(opts_.classes)) {
  if (obs::MetricsRegistry* m = opts_.metrics; m != nullptr) {
    counters_.requests = &m->counter("srv.requests");
    counters_.protocol_errors = &m->counter("srv.protocol_errors");
    counters_.window_rejects = &m->counter("srv.window_rejects");
    counters_.committed = &m->counter("srv.txn.committed");
    counters_.aborted = &m->counter("srv.txn.aborted");
    counters_.slow_requests = &m->counter("srv.slow_requests");
    sessions_accepted_ = &m->counter("srv.sessions.accepted");
    sessions_closed_ = &m->counter("srv.sessions.closed");
    sessions_active_ = &m->gauge("srv.sessions.active");
    for (const ClassPolicy& c : admission_.classes()) {
      counters_.admission_granted[c.name] =
          &m->counter("srv.admission.granted." + c.name);
      counters_.admission_rejected[c.name] =
          &m->counter("srv.admission.rejected." + c.name);
      counters_.request_latency[c.name] =
          &m->histogram("srv.request_latency." + c.name);
    }
  }
  if (!transport_ || !transport_->ok()) return;
  poll_thread_ = std::thread([this] { poll_loop(); });
  const std::size_t n = std::max<std::size_t>(1, opts_.workers);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

AtpServer::~AtpServer() { stop(); }

bool AtpServer::ok() const { return transport_ && transport_->ok(); }

std::uint16_t AtpServer::port() const {
  return transport_ ? transport_->port() : 0;
}

std::size_t AtpServer::active_sessions() const {
  std::lock_guard lock(sessions_mu_);
  return sessions_.size();
}

void AtpServer::stop() {
  // Serialize the whole shutdown: join() on the same std::thread from two
  // callers is UB, so a second stop() blocks here until the first finishes
  // and then sees stopping_ already set.
  std::lock_guard stop_lock(stop_mu_);
  if (stopping_.exchange(true)) return;
  queue_cv_.notify_all();
  if (poll_thread_.joinable()) poll_thread_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  // No threads left: close every session (aborts its live transactions and
  // returns its admission grants) before the database can go away.
  std::lock_guard lock(sessions_mu_);
  for (auto& [conn, s] : sessions_) s->close();
  sessions_.clear();
  if (sessions_active_ != nullptr) sessions_active_->set(0);
}

void AtpServer::schedule(std::shared_ptr<Session> s) {
  {
    std::lock_guard lock(queue_mu_);
    ready_.push_back(std::move(s));
  }
  queue_cv_.notify_one();
}

void AtpServer::drop_session(ConnId conn) {
  std::shared_ptr<Session> victim;
  {
    std::lock_guard lock(sessions_mu_);
    auto it = sessions_.find(conn);
    if (it == sessions_.end()) return;
    victim = std::move(it->second);
    sessions_.erase(it);
    if (sessions_active_ != nullptr) {
      sessions_active_->set(double(sessions_.size()));
    }
  }
  ServerCounters::bump(sessions_closed_);
  // If a worker is mid-execute, close() defers transaction teardown to that
  // worker's finish_one(); the shared_ptr it holds keeps the object alive.
  victim->close();
}

void AtpServer::poll_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const std::vector<TransportEvent> events =
        transport_->poll(opts_.poll_interval);
    for (const TransportEvent& ev : events) {
      switch (ev.kind) {
        case TransportEvent::Kind::kAccept: {
          std::shared_ptr<Session> s;
          {
            std::lock_guard lock(sessions_mu_);
            if (sessions_.size() < opts_.max_sessions) {
              s = std::make_shared<Session>(ev.conn, db_, admission_,
                                            counters_);
              sessions_.emplace(ev.conn, s);
              if (sessions_active_ != nullptr) {
                sessions_active_->set(double(sessions_.size()));
              }
            }
          }
          if (!s) {  // over max_sessions: refuse at accept
            transport_->close(ev.conn);
            break;
          }
          ServerCounters::bump(sessions_accepted_);
          break;
        }
        case TransportEvent::Kind::kData: {
          std::shared_ptr<Session> s;
          {
            std::lock_guard lock(sessions_mu_);
            auto it = sessions_.find(ev.conn);
            if (it != sessions_.end()) s = it->second;
          }
          if (!s) break;
          Session::FeedResult fed = s->feed(ev.data);
          if (!fed.immediate_replies.empty()) {
            transport_->send(ev.conn, fed.immediate_replies);
          }
          if (fed.fatal) {
            transport_->close(ev.conn);
            drop_session(ev.conn);
            break;
          }
          schedule(std::move(s));
          break;
        }
        case TransportEvent::Kind::kClosed:
          drop_session(ev.conn);
          break;
      }
    }
  }
}

void AtpServer::worker_loop() {
  for (;;) {
    std::shared_ptr<Session> s;
    {
      std::unique_lock lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) || !ready_.empty();
      });
      if (stopping_.load(std::memory_order_acquire)) return;
      s = std::move(ready_.front());
      ready_.pop_front();
    }
    const std::optional<Session::NextRequest> req = s->take_next();
    if (!req.has_value()) continue;
    const auto exec_start = std::chrono::steady_clock::now();
    Session::ExecInfo info;
    const std::string reply = s->execute(req->msg, &info);
    const std::int64_t exec_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - exec_start)
            .count();
    transport_->send(s->conn(), reply);
    record_request(*s, *req, info, exec_us);
    // Re-queue instead of looping here so one chatty pipeliner cannot
    // monopolize a worker while other sessions wait.
    if (s->finish_one()) schedule(std::move(s));
  }
}

void AtpServer::record_request(const Session& s,
                               const Session::NextRequest& req,
                               const Session::ExecInfo& info,
                               std::int64_t exec_us) {
  const ClassPolicy* cls = s.client_class();
  const std::int64_t total_us = req.queued_us + exec_us;
  if (cls != nullptr) {
    auto it = counters_.request_latency.find(cls->name);
    if (it != counters_.request_latency.end()) {
      it->second->record(double(total_us));
    }
  }
  const std::int64_t threshold = opts_.slow_request_threshold.count();
  if (threshold <= 0 || total_us < threshold) return;
  ServerCounters::bump(counters_.slow_requests);
  SlowRequest slow;
  slow.conn = s.conn();
  slow.client_class = cls != nullptr ? cls->name : "-";
  slow.txn = req.msg.txn;
  slow.request = to_string(req.msg.kind);
  slow.outcome = to_string(info.reply_kind);
  slow.error_code = info.error_code;
  slow.queued_us = req.queued_us;
  slow.exec_us = exec_us;
  if (opts_.slow_log) {
    opts_.slow_log(slow);
    return;
  }
  std::fprintf(stderr,
               "atpd: slow request conn=%llu class=%s txn=%llu req=%s "
               "outcome=%s err=%u queued=%lldus exec=%lldus total=%lldus\n",
               static_cast<unsigned long long>(slow.conn),
               slow.client_class.c_str(),
               static_cast<unsigned long long>(slow.txn), slow.request,
               slow.outcome, unsigned(slow.error_code),
               static_cast<long long>(slow.queued_us),
               static_cast<long long>(slow.exec_us),
               static_cast<long long>(total_us));
}

}  // namespace atp::server
