// AtpServer: the network front-end tying transport, sessions, admission,
// and the database together.
//
// One poll thread owns the Transport: it accepts connections into Session
// objects, feeds incoming bytes through each session's frame decoder, and
// drops sessions whose connection died or went bad.  Parsed requests are
// executed by a small worker pool -- never the poll thread, because a
// request may legitimately block for the full lock timeout (2s by default)
// and the accept/read loop must keep breathing under that.  Each session is
// executed by at most one worker at a time (Session::take_next marks it
// busy), so per-connection request order is preserved while different
// connections run genuinely in parallel.  Workers reply straight through
// Transport::send, which is thread-safe on both backends.
//
// The same object runs over TcpTransport (atpd, bench_net) or SimTransport
// (deterministic tests, fault schedules) -- it never inspects which.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics_registry.h"
#include "sched/database.h"
#include "server/admission.h"
#include "server/session.h"
#include "server/transport.h"

#include "common/ordered_lock.h"

namespace atp::server {

/// One request that crossed the slow threshold, with its phase breakdown.
struct SlowRequest {
  ConnId conn = 0;
  std::string client_class;  ///< "-" before Hello
  std::uint64_t txn = 0;     ///< client-side transaction handle
  const char* request = "";  ///< request kind name
  const char* outcome = "";  ///< reply kind name
  std::uint8_t error_code = 0;  ///< ErrorCode when the reply was an error
  std::int64_t queued_us = 0;   ///< time waiting behind earlier requests
  std::int64_t exec_us = 0;     ///< time inside execute()
};

struct ServerOptions {
  /// Worker threads executing requests (>= 1; each can block on locks).
  std::size_t workers = 4;
  /// Client classes; empty = default_classes().
  std::vector<ClassPolicy> classes;
  /// Optional registry: srv.* counters, session gauge, admission tallies.
  obs::MetricsRegistry* metrics = nullptr;
  /// Poll-loop wakeup cadence (also the stop() latency bound).
  std::chrono::milliseconds poll_interval{50};
  /// Connections past this are closed at accept.
  std::size_t max_sessions = 1024;
  /// Requests whose queued + execute time reaches this are logged (atpd
  /// --slow-ms).  Zero disables the slow-request log.
  std::chrono::microseconds slow_request_threshold{0};
  /// Sink for slow requests; when unset they go to stderr as one line.
  std::function<void(const SlowRequest&)> slow_log;
};

class AtpServer {
 public:
  /// Takes ownership of the transport; `db` must outlive the server.
  AtpServer(Database& db, std::unique_ptr<Transport> transport,
            ServerOptions opts = {});
  ~AtpServer();
  AtpServer(const AtpServer&) = delete;
  AtpServer& operator=(const AtpServer&) = delete;

  /// False when the transport failed to come up (port in use, no epoll).
  [[nodiscard]] bool ok() const;

  /// TCP listen port (0 on the sim backend).
  [[nodiscard]] std::uint16_t port() const;

  /// Stop threads and tear down every session (aborting live transactions).
  /// Idempotent; the destructor calls it.
  void stop();

  [[nodiscard]] std::size_t active_sessions() const;
  [[nodiscard]] const AdmissionController& admission() const {
    return admission_;
  }

 private:
  void poll_loop();
  void worker_loop();
  /// Latency histogram + slow-request log for one finished request.
  void record_request(const Session& s, const Session::NextRequest& req,
                      const Session::ExecInfo& info, std::int64_t exec_us);
  /// Queue `s` for worker execution (duplicates are harmless: take_next
  /// refuses a session that is already executing or empty).
  void schedule(std::shared_ptr<Session> s);
  /// Poll thread: tear down and forget the session for `conn`.
  void drop_session(ConnId conn);

  Database& db_;
  std::unique_ptr<Transport> transport_;
  ServerOptions opts_;
  AdmissionController admission_;
  ServerCounters counters_;

  obs::ShardedCounter* sessions_accepted_ = nullptr;
  obs::ShardedCounter* sessions_closed_ = nullptr;
  obs::Gauge* sessions_active_ = nullptr;

  mutable OrderedMutex<LockRank::kServerSessions> sessions_mu_;  ///< rank kServerSessions: held across Session::close at shutdown
  std::unordered_map<ConnId, std::shared_ptr<Session>> sessions_;

  OrderedMutex<LockRank::kServerQueue> queue_mu_;  ///< rank kServerQueue
  OrderedCondVar queue_cv_;
  std::deque<std::shared_ptr<Session>> ready_;

  std::atomic<bool> stopping_{false};
  OrderedMutex<LockRank::kServerStop> stop_mu_;  ///< rank kServerStop (outermost); serializes stop(): join() is not join()-concurrent-safe
  std::thread poll_thread_;
  std::vector<std::thread> workers_;
};

}  // namespace atp::server
