#include "server/session.h"

namespace atp::server {

namespace {

/// Requests a connection may queue before it has even said Hello.
constexpr std::size_t kPreHelloWindow = 8;

}  // namespace

WireMessage Session::error_reply(const WireMessage& req, const Status& s) {
  WireMessage r;
  r.kind = MsgKind::kError;
  r.seq = req.seq;
  r.txn = req.txn;
  r.op = std::uint8_t(s.code());
  r.text = s.message();
  return r;
}

WireMessage Session::ok_reply(const WireMessage& req) {
  WireMessage r;
  r.kind = MsgKind::kOk;
  r.seq = req.seq;
  r.txn = req.txn;
  return r;
}

Session::FeedResult Session::feed(std::string_view bytes) {
  FeedResult result;
  reader_.feed(bytes);
  for (;;) {
    std::optional<WireMessage> msg = reader_.next();
    if (!msg.has_value()) break;
    ServerCounters::bump(counters_.requests);
    std::lock_guard lock(mu_);
    if (state_ == State::Closed) continue;
    const std::size_t window =
        cls_ != nullptr ? cls_->window : kPreHelloWindow;
    if (pending_.size() + (executing_ ? 1 : 0) >= window) {
      // Backpressure: the class's in-flight window is full.  Answer now
      // (from the poll thread) rather than queueing unboundedly.
      ServerCounters::bump(counters_.window_rejects);
      encode_frame(error_reply(*msg, Status::Unavailable(
                                         "in-flight window full")),
                   &result.immediate_replies);
      continue;
    }
    pending_.push_back(
        Pending{std::move(*msg), std::chrono::steady_clock::now()});
  }
  if (reader_.bad()) {
    ServerCounters::bump(counters_.protocol_errors);
    result.fatal = true;
  }
  return result;
}

std::optional<Session::NextRequest> Session::take_next() {
  std::lock_guard lock(mu_);
  if (state_ == State::Closed || executing_ || pending_.empty()) {
    return std::nullopt;
  }
  Pending p = std::move(pending_.front());
  pending_.pop_front();
  executing_ = true;
  NextRequest next{std::move(p.msg),
                   std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now() - p.enqueued)
                       .count()};
  return next;
}

bool Session::finish_one() {
  bool cleanup = false;
  bool more = false;
  {
    std::lock_guard lock(mu_);
    executing_ = false;
    if (state_ == State::Closed) {
      if (!cleaned_) {
        cleaned_ = true;
        cleanup = true;
      }
    } else {
      more = !pending_.empty();
    }
  }
  if (cleanup) teardown();
  return more;
}

void Session::close() {
  {
    std::lock_guard lock(mu_);
    state_ = State::Closed;
    pending_.clear();
    // A worker is mid-execute: it observes Closed in finish_one() and runs
    // the teardown itself -- Txn handles are never touched concurrently.
    if (executing_ || cleaned_) return;
    cleaned_ = true;
  }
  teardown();
}

void Session::teardown() {
  for (auto& [handle, lt] : txns_) kill_txn(lt);
  txns_.clear();
}

void Session::kill_txn(LiveTxn& lt) {
  lt.txn.abort();
  ServerCounters::bump(counters_.aborted);
  if (cls_ != nullptr) admission_.release(*cls_, lt.grant);
}

std::string Session::execute(const WireMessage& req, ExecInfo* info) {
  const WireMessage reply = handle(req);
  if (info != nullptr) {
    info->reply_kind = reply.kind;
    info->error_code = reply.kind == MsgKind::kError ? reply.op : 0;
  }
  return encode_frame(reply);
}

WireMessage Session::handle(const WireMessage& req) {
  switch (req.kind) {
    case MsgKind::kHello:
      return handle_hello(req);
    case MsgKind::kBegin:
      return handle_begin(req);
    case MsgKind::kOp:
      return handle_op(req);
    case MsgKind::kCommit:
      return handle_end(req, /*commit=*/true);
    case MsgKind::kAbort:
      return handle_end(req, /*commit=*/false);
    case MsgKind::kPing:
      return ok_reply(req);
    default:
      // A reply kind sent as a request is a confused or hostile client.
      ServerCounters::bump(counters_.protocol_errors);
      return error_reply(req,
                         Status::InvalidArgument("not a request kind"));
  }
}

WireMessage Session::handle_hello(const WireMessage& req) {
  const ClassPolicy* cls = admission_.find(req.text);
  if (cls == nullptr) {
    return error_reply(
        req, Status::NotFound("unknown client class '" + req.text + "'"));
  }
  {
    std::lock_guard lock(mu_);
    if (state_ != State::AwaitHello) {
      return error_reply(req,
                         Status::FailedPrecondition("already said hello"));
    }
    cls_ = cls;
    state_ = State::Ready;
  }
  WireMessage r;
  r.kind = MsgKind::kHelloOk;
  r.seq = req.seq;
  r.text = cls->name;
  r.value = double(cls->import_ceiling);
  r.value2 = double(cls->export_ceiling);
  r.key = cls->window;
  return r;
}

WireMessage Session::handle_begin(const WireMessage& req) {
  const ClassPolicy* cls;
  {
    std::lock_guard lock(mu_);
    if (state_ != State::Ready) {
      return error_reply(req, Status::FailedPrecondition("hello first"));
    }
    cls = cls_;
  }
  if (txns_.count(req.txn) != 0) {
    return error_reply(
        req, Status::FailedPrecondition("transaction handle in use"));
  }
  const TxnKind kind =
      req.op == std::uint8_t(TxnKind::Query) ? TxnKind::Query : TxnKind::Update;
  const AdmissionController::Grant grant =
      admission_.admit(*cls, kind, req.value, req.value2);
  if (!grant.admitted) {
    auto it = counters_.admission_rejected.find(cls->name);
    if (it != counters_.admission_rejected.end()) {
      ServerCounters::bump(it->second);
    }
    return error_reply(req, grant.status);
  }
  auto it = counters_.admission_granted.find(cls->name);
  if (it != counters_.admission_granted.end()) ServerCounters::bump(it->second);
  LiveTxn lt{db_.begin(kind, grant.spec), grant.spec};
  txns_.emplace(req.txn, std::move(lt));
  return ok_reply(req);
}

WireMessage Session::handle_op(const WireMessage& req) {
  auto it = txns_.find(req.txn);
  if (it == txns_.end()) {
    return error_reply(req, Status::NotFound("no such transaction"));
  }
  LiveTxn& lt = it->second;
  Status s;
  WireMessage reply;
  switch (OpCode(req.op)) {
    case OpCode::kRead: {
      const Result<Value> r = lt.txn.read(req.key);
      if (r.ok()) {
        reply = ok_reply(req);
        reply.kind = MsgKind::kValue;
        reply.value = double(r.value());
        return reply;
      }
      s = r.status();
      break;
    }
    case OpCode::kWrite:
      s = lt.txn.write(req.key, Value(req.value));
      break;
    case OpCode::kAdd:
      s = lt.txn.add(req.key, Value(req.value));
      break;
    default:
      ServerCounters::bump(counters_.protocol_errors);
      return error_reply(req, Status::InvalidArgument("unknown op code"));
  }
  if (s.ok()) return ok_reply(req);
  // Abort-class failures (deadlock victim, eps exhausted, lock timeout)
  // end the transaction server-side: the engine contract says the caller
  // must abort, and the client learns the outcome from the error code.
  kill_txn(lt);
  txns_.erase(it);
  return error_reply(req, s);
}

WireMessage Session::handle_end(const WireMessage& req, bool commit) {
  auto it = txns_.find(req.txn);
  if (it == txns_.end()) {
    return error_reply(req, Status::NotFound("no such transaction"));
  }
  LiveTxn& lt = it->second;
  if (!commit) {
    kill_txn(lt);
    txns_.erase(it);
    return ok_reply(req);
  }
  const Status s = lt.txn.commit();
  if (s.ok()) {
    ServerCounters::bump(counters_.committed);
    if (cls_ != nullptr) admission_.release(*cls_, lt.grant);
    WireMessage r = ok_reply(req);
    r.value = double(lt.txn.fuzziness());  // the committed piece's Z
    txns_.erase(it);
    return r;
  }
  kill_txn(lt);
  txns_.erase(it);
  return error_reply(req, s);
}

}  // namespace atp::server
