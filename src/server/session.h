// Session: one connected client's request lifecycle.
//
// A Session owns everything the server knows about one connection: the
// handshake state (a connection must Hello into a class before anything
// else), the incremental frame decoder, the parsed-but-unexecuted request
// queue, and -- most importantly -- the in-flight transactions, each paired
// with the eps grant admission control charged for it.  Whatever path ends
// the session (clean Abort, commit, mid-transaction disconnect, protocol
// error, backpressure eviction), teardown is the same: every live Txn is
// aborted (strict 2PL releases its locks) and every grant is returned to
// the class budget.  Nothing leaks because teardown is owned by the object
// whose lifetime matches the connection's.
//
// Backpressure: the class window caps parsed-but-unfinished requests; past
// it, feed() answers kUnavailable immediately instead of queueing.  A
// synchronous client never notices; a pipelining client gets pushback
// proportional to what its class bought.
//
// Threading: feed()/take_next() run on the server poll thread; execute()
// runs on one worker at a time (the server's per-session serial-dispatch
// guarantee); the internal mutex covers the small shared state between
// them.  Txn objects themselves are touched only inside execute() and
// close(), which the server never overlaps.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/metrics.h"
#include "obs/instruments.h"
#include "sched/database.h"
#include "server/admission.h"
#include "server/protocol.h"
#include "server/transport.h"

#include "common/ordered_lock.h"

namespace atp::server {

/// Push instruments the server publishes (server.h wires them; null-safe
/// when no registry is configured).
struct ServerCounters {
  obs::ShardedCounter* requests = nullptr;
  obs::ShardedCounter* protocol_errors = nullptr;
  obs::ShardedCounter* window_rejects = nullptr;
  obs::ShardedCounter* committed = nullptr;
  obs::ShardedCounter* aborted = nullptr;
  obs::ShardedCounter* slow_requests = nullptr;
  /// Per-class admission outcome counters, keyed by class name.
  std::unordered_map<std::string, obs::ShardedCounter*> admission_granted;
  std::unordered_map<std::string, obs::ShardedCounter*> admission_rejected;
  /// Per-class request latency (srv.request_latency.<class>), recorded by
  /// the worker as queued + execute time in microseconds.
  std::unordered_map<std::string, Histogram*> request_latency;

  static void bump(obs::ShardedCounter* c) {
    if (c != nullptr) c->add();
  }
};

class Session {
 public:
  Session(ConnId conn, Database& db, AdmissionController& admission,
          ServerCounters& counters)
      : conn_(conn), db_(db), admission_(admission), counters_(counters) {}
  ~Session() { close(); }
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  [[nodiscard]] ConnId conn() const noexcept { return conn_; }

  /// Outcome of feeding bytes: replies the poll thread must send now
  /// (window pushback), and whether the connection must be dropped.
  struct FeedResult {
    std::string immediate_replies;  ///< encoded frames; may be empty
    bool fatal = false;             ///< protocol error: drop the connection
  };

  /// Parse incoming bytes into the request queue (poll thread).
  [[nodiscard]] FeedResult feed(std::string_view bytes);

  /// A dequeued request plus how long it sat behind earlier requests --
  /// the "queued" phase of the latency breakdown.
  struct NextRequest {
    WireMessage msg;
    std::int64_t queued_us = 0;
  };

  /// Next queued request for a worker, marking the session executing.
  /// Returns std::nullopt (and does not mark) when the queue is empty, the
  /// session is closed, or another worker is already executing it.
  [[nodiscard]] std::optional<NextRequest> take_next();

  /// What execute() replied with, for latency/slow-request accounting.
  struct ExecInfo {
    MsgKind reply_kind = MsgKind::kOk;
    std::uint8_t error_code = 0;  ///< ErrorCode when reply_kind == kError
  };

  /// Execute one request against the database; returns the encoded reply.
  /// Worker thread; the server guarantees one execute() at a time.
  [[nodiscard]] std::string execute(const WireMessage& req,
                                    ExecInfo* info = nullptr);

  /// Done executing; true when more requests are queued (re-schedule me).
  [[nodiscard]] bool finish_one();

  /// Tear down: abort live transactions, release grants.  Idempotent.
  /// Poll thread, or worker via server (never concurrently with execute --
  /// the server only closes a session it has unscheduled).
  void close();

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mu_);
    return state_ == State::Closed;
  }

  /// Live transaction count (tests).
  [[nodiscard]] std::size_t live_txns() const {
    std::lock_guard lock(mu_);
    return txns_.size();
  }

  [[nodiscard]] const ClassPolicy* client_class() const {
    std::lock_guard lock(mu_);
    return cls_;
  }

 private:
  enum class State : std::uint8_t { AwaitHello, Ready, Closed };

  struct LiveTxn {
    Txn txn;
    EpsilonSpec grant;  ///< what admission charged; released at end
  };

  [[nodiscard]] WireMessage handle(const WireMessage& req);
  [[nodiscard]] WireMessage handle_hello(const WireMessage& req);
  [[nodiscard]] WireMessage handle_begin(const WireMessage& req);
  [[nodiscard]] WireMessage handle_op(const WireMessage& req);
  [[nodiscard]] WireMessage handle_end(const WireMessage& req, bool commit);
  /// Abort `lt` and release its grant (txns_ erase is the caller's job).
  void kill_txn(LiveTxn& lt);
  /// Abort every live transaction and release every grant (once).
  void teardown();

  static WireMessage error_reply(const WireMessage& req, const Status& s);
  static WireMessage ok_reply(const WireMessage& req);

  const ConnId conn_;
  Database& db_;
  AdmissionController& admission_;
  ServerCounters& counters_;

  struct Pending {
    WireMessage msg;
    std::chrono::steady_clock::time_point enqueued;
  };

  mutable OrderedMutex<LockRank::kSession> mu_;  // rank kSession; guards state_/cls_/pending_/executing_
  State state_ = State::AwaitHello;
  const ClassPolicy* cls_ = nullptr;
  FrameReader reader_;                 // poll thread only
  std::deque<Pending> pending_;
  bool executing_ = false;
  bool cleaned_ = false;  ///< teardown already ran (close is idempotent)

  // Worker-side state: only execute()/close() touch these, never
  // concurrently (see threading note above).
  std::unordered_map<std::uint64_t, LiveTxn> txns_;
};

}  // namespace atp::server
