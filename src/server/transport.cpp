#include "server/transport.h"

#include <cerrno>
#include <cstring>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

namespace atp::server {

namespace {

constexpr std::uint64_t kListenerTag = 1;

/// Message types SimTransport speaks over the simulated network.
constexpr const char* kSimConnect = "srv.conn";
constexpr const char* kSimData = "srv.data";
constexpr const char* kSimClose = "srv.close";

}  // namespace

// ---------------------------------------------------------------- TCP -----

TcpTransport::TcpTransport(std::uint16_t port)
    : listener_(port, /*backlog=*/64) {
  if (!listener_.ok()) return;
  // The accept drain loop relies on EAGAIN to stop; a blocking listener
  // would park the poll thread inside accept4 instead.
  if (!set_nonblocking(listener_.fd())) return;
  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) return;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listener_.fd(), &ev) < 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
}

TcpTransport::~TcpTransport() {
  std::lock_guard lock(mu_);
  for (auto& [id, c] : conns_) ::close(c.fd);
  conns_.clear();
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

bool TcpTransport::ok() const { return listener_.ok() && epoll_fd_ >= 0; }

std::uint16_t TcpTransport::port() const { return listener_.port(); }

std::vector<TransportEvent> TcpTransport::poll(
    std::chrono::milliseconds timeout) {
  std::vector<TransportEvent> out;
  if (!ok()) return out;

  {  // Reap connections send() evicted for backpressure.
    std::lock_guard lock(mu_);
    for (const ConnId id : reap_) {
      if (conns_.count(id) == 0) continue;
      destroy_locked(id);
      out.push_back({TransportEvent::Kind::kClosed, id, {}});
    }
    reap_.clear();
  }

  epoll_event events[64];
  const int n = ::epoll_wait(epoll_fd_, events, 64,
                             int(std::max<std::int64_t>(0, timeout.count())));
  for (int i = 0; i < n; ++i) {
    const std::uint64_t tag = events[i].data.u64;
    if (tag == kListenerTag) {
      accept_ready(&out);
      continue;
    }
    const ConnId id = tag;
    if (events[i].events & (EPOLLERR | EPOLLHUP)) {
      std::lock_guard lock(mu_);
      if (conns_.count(id) != 0) {
        destroy_locked(id);
        out.push_back({TransportEvent::Kind::kClosed, id, {}});
      }
      continue;
    }
    if (events[i].events & EPOLLOUT) {
      std::lock_guard lock(mu_);
      auto it = conns_.find(id);
      if (it != conns_.end()) {
        if (!flush_locked(id, it->second)) {
          destroy_locked(id);
          out.push_back({TransportEvent::Kind::kClosed, id, {}});
          continue;
        }
        if (it->second.write_buf.empty()) {
          arm_epollout_locked(id, it->second, false);
        }
      }
    }
    if (events[i].events & EPOLLIN) read_ready(id, &out);
  }
  return out;
}

void TcpTransport::accept_ready(std::vector<TransportEvent>* out) {
  for (;;) {
    const int fd = ::accept4(listener_.fd(), nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) return;  // EAGAIN: drained
    std::lock_guard lock(mu_);
    const ConnId id = next_id_++;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    Conn c;
    c.fd = fd;
    conns_.emplace(id, std::move(c));
    out->push_back({TransportEvent::Kind::kAccept, id, {}});
  }
}

void TcpTransport::read_ready(ConnId id, std::vector<TransportEvent>* out) {
  std::string data;
  bool closed = false;
  int fd;
  {
    std::lock_guard lock(mu_);
    auto it = conns_.find(id);
    if (it == conns_.end()) return;  // died earlier in this batch
    fd = it->second.fd;
  }
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n > 0) {
      data.append(buf, std::size_t(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    closed = true;  // orderly EOF or hard error
    break;
  }
  if (!data.empty()) {
    out->push_back({TransportEvent::Kind::kData, id, std::move(data)});
  }
  if (closed) {
    std::lock_guard lock(mu_);
    if (conns_.count(id) != 0) {
      destroy_locked(id);
      out->push_back({TransportEvent::Kind::kClosed, id, {}});
    }
  }
}

bool TcpTransport::flush_locked(ConnId, Conn& c) {
  while (!c.write_buf.empty()) {
    const ssize_t n = ::send(c.fd, c.write_buf.data(), c.write_buf.size(),
                             MSG_NOSIGNAL);
    if (n > 0) {
      c.write_buf.erase(0, std::size_t(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

void TcpTransport::arm_epollout_locked(ConnId id, Conn& c, bool want) {
  if (c.epollout_armed == want) return;
  epoll_event ev{};
  ev.events = want ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
  ev.data.u64 = id;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev) == 0) {
    c.epollout_armed = want;
  }
}

void TcpTransport::destroy_locked(ConnId id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second.fd, nullptr);
  ::close(it->second.fd);
  conns_.erase(it);
}

bool TcpTransport::send(ConnId conn, std::string_view bytes) {
  std::lock_guard lock(mu_);
  auto it = conns_.find(conn);
  if (it == conns_.end() || it->second.doomed) return false;
  Conn& c = it->second;
  std::size_t off = 0;
  if (c.write_buf.empty()) {
    // Fast path: hand the kernel as much as it will take right now.
    while (off < bytes.size()) {
      const ssize_t n = ::send(c.fd, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (n > 0) {
        off += std::size_t(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      // Hard send error: let the poll thread reap it.
      c.doomed = true;
      reap_.push_back(conn);
      return false;
    }
    if (off == bytes.size()) return true;
  }
  c.write_buf.append(bytes.data() + off, bytes.size() - off);
  if (c.write_buf.size() > kMaxWriteBuffer) {
    // The peer stopped reading; buffering forever is how servers die.
    c.doomed = true;
    reap_.push_back(conn);
    return false;
  }
  arm_epollout_locked(conn, c, true);
  return true;
}

void TcpTransport::close(ConnId conn) {
  std::lock_guard lock(mu_);
  destroy_locked(conn);
}

// ---------------------------------------------------------------- Sim -----

SimTransport::SimTransport(SimNetwork& net, SiteId server_site)
    : net_(net), site_(server_site) {}

std::vector<TransportEvent> SimTransport::poll(
    std::chrono::milliseconds timeout) {
  std::vector<TransportEvent> out;
  // First receive waits out the timeout; the rest drain what is ready.
  auto wait = timeout;
  for (;;) {
    std::optional<Message> msg = net_.receive_request(site_, wait);
    if (!msg.has_value()) break;
    wait = std::chrono::milliseconds(0);
    const ConnId conn = msg->from;
    if (msg->type == kSimConnect) {
      std::lock_guard lock(mu_);
      if (open_.insert(conn).second) {
        out.push_back({TransportEvent::Kind::kAccept, conn, {}});
      }
    } else if (msg->type == kSimData) {
      // A data message from an unknown conn means the connect announcement
      // was dropped (fault schedules do that); treat data as the connect.
      {
        std::lock_guard lock(mu_);
        if (open_.insert(conn).second) {
          out.push_back({TransportEvent::Kind::kAccept, conn, {}});
        }
      }
      auto* bytes = std::any_cast<std::string>(&msg->payload);
      if (bytes != nullptr && !bytes->empty()) {
        out.push_back(
            {TransportEvent::Kind::kData, conn, std::move(*bytes)});
      }
    } else if (msg->type == kSimClose) {
      std::lock_guard lock(mu_);
      if (open_.erase(conn) != 0) {
        out.push_back({TransportEvent::Kind::kClosed, conn, {}});
      }
    }
    // Anything else on this site is not ours; drop it.
  }
  return out;
}

bool SimTransport::send(ConnId conn, std::string_view bytes) {
  {
    std::lock_guard lock(mu_);
    if (open_.count(conn) == 0) return false;
  }
  Message msg;
  msg.from = site_;
  msg.to = SiteId(conn);
  msg.type = kSimData;
  msg.payload = std::string(bytes);
  net_.send(std::move(msg));
  return true;
}

void SimTransport::close(ConnId conn) {
  {
    std::lock_guard lock(mu_);
    if (open_.erase(conn) == 0) return;
  }
  Message msg;
  msg.from = site_;
  msg.to = SiteId(conn);
  msg.type = kSimClose;
  net_.send(std::move(msg));
}

// ------------------------------------------------------ Sim client side ---

void SimClientChannel::connect() {
  Message msg;
  msg.from = site_;
  msg.to = server_;
  msg.type = kSimConnect;
  net_.send(std::move(msg));
}

bool SimClientChannel::send_bytes(std::string_view bytes) {
  if (server_closed_) return false;
  Message msg;
  msg.from = site_;
  msg.to = server_;
  msg.type = kSimData;
  msg.payload = std::string(bytes);
  net_.send(std::move(msg));
  return true;
}

std::optional<std::string> SimClientChannel::recv(
    std::chrono::milliseconds timeout) {
  if (server_closed_) return std::nullopt;
  std::optional<Message> msg = net_.receive_request(site_, timeout);
  if (!msg.has_value()) return std::nullopt;
  if (msg->type == kSimClose) {
    server_closed_ = true;
    return std::nullopt;
  }
  if (msg->type != kSimData) return std::nullopt;
  auto* bytes = std::any_cast<std::string>(&msg->payload);
  if (bytes == nullptr) return std::nullopt;
  return std::move(*bytes);
}

void SimClientChannel::close() {
  Message msg;
  msg.from = site_;
  msg.to = server_;
  msg.type = kSimClose;
  net_.send(std::move(msg));
}

}  // namespace atp::server
