// Transport: the byte-stream boundary between clients and the server loop.
//
// The server front-end (server.h) is written against this interface and
// genuinely does not know which backend it is on:
//
//   * TcpTransport -- the production path.  One epoll instance drives a
//     non-blocking accept/read/write loop over real loopback sockets:
//     accepts are drained until EAGAIN, reads gather whatever the kernel
//     has, writes try inline first and fall back to a bounded per-connection
//     queue flushed on EPOLLOUT readiness.  A connection that buffers more
//     than kMaxWriteBuffer (a client that stopped reading) is closed --
//     backpressure by eviction, never unbounded memory.
//
//   * SimTransport -- the same interface over the deterministic SimNetwork,
//     which stays byte-for-byte unchanged for the chaos/replay suites.  Wire
//     frames travel as std::string payloads inside net/message.h Messages
//     ("srv.conn"/"srv.data"/"srv.close" types), so the exact bytes a TCP
//     client would send cross the simulated network instead -- message.h
//     payloads finally carry real serialization at the process boundary, and
//     every session/admission test can run deterministically (and under the
//     fault injector) without a socket.
//
// Threading contract: poll() and close() belong to one thread (the server
// loop); send() may be called from any thread (worker pools reply directly).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/socket.h"
#include "net/network.h"

#include "common/ordered_lock.h"

namespace atp::server {

using ConnId = std::uint64_t;

struct TransportEvent {
  enum class Kind : std::uint8_t {
    kAccept,  ///< new connection
    kData,    ///< bytes arrived (data)
    kClosed,  ///< peer gone (EOF, error, or evicted for backpressure)
  };
  Kind kind = Kind::kData;
  ConnId conn = 0;
  std::string data;  ///< kData only
};

class Transport {
 public:
  virtual ~Transport() = default;

  [[nodiscard]] virtual bool ok() const = 0;

  /// Block up to `timeout` for activity; drain everything ready into events.
  /// Returns an empty vector on timeout.
  [[nodiscard]] virtual std::vector<TransportEvent> poll(
      std::chrono::milliseconds timeout) = 0;

  /// Queue `bytes` toward `conn`.  Thread-safe.  False when the connection
  /// is gone (the caller's session will see kClosed on the next poll).
  virtual bool send(ConnId conn, std::string_view bytes) = 0;

  /// Drop `conn` (poll-thread only).  No kClosed event is emitted for a
  /// locally-initiated close.
  virtual void close(ConnId conn) = 0;

  /// TCP: the bound listen port.  Sim: 0.
  [[nodiscard]] virtual std::uint16_t port() const { return 0; }
};

/// Production backend: epoll over loopback TCP.
class TcpTransport final : public Transport {
 public:
  /// Listens on 127.0.0.1:`port` (0 = kernel-assigned).
  explicit TcpTransport(std::uint16_t port);
  ~TcpTransport() override;

  [[nodiscard]] bool ok() const override;
  [[nodiscard]] std::vector<TransportEvent> poll(
      std::chrono::milliseconds timeout) override;
  bool send(ConnId conn, std::string_view bytes) override;
  void close(ConnId conn) override;
  [[nodiscard]] std::uint16_t port() const override;

  /// A connection whose unflushed write queue passes this is evicted.
  static constexpr std::size_t kMaxWriteBuffer = 4u << 20;

 private:
  struct Conn {
    int fd = -1;
    std::string write_buf;  ///< bytes the kernel would not take yet
    bool epollout_armed = false;
    bool doomed = false;    ///< evicted for backpressure; reaped next poll
  };

  void accept_ready(std::vector<TransportEvent>* out);
  void read_ready(ConnId id, std::vector<TransportEvent>* out);
  /// Drain write_buf into the socket; false when the connection must die.
  bool flush_locked(ConnId id, Conn& c);
  void arm_epollout_locked(ConnId id, Conn& c, bool want);
  void destroy_locked(ConnId id);

  ListenSocket listener_;
  int epoll_fd_ = -1;
  ConnId next_id_ = 2;   // 1 tags the listener in epoll data
  // One lock for the map and all Conn state: every critical section is a
  // memcpy plus at most one non-blocking syscall, so worker reply threads
  // and the poll thread contend only briefly.  epoll_wait itself runs
  // unlocked.
  mutable OrderedMutex<LockRank::kTransport> mu_;  ///< rank kTransport
  std::unordered_map<ConnId, Conn> conns_;
  std::vector<ConnId> reap_;  ///< doomed by send(); poll emits kClosed
};

/// Deterministic backend over SimNetwork.  The server occupies
/// `server_site`; each client channel occupies its own site, and that site
/// id doubles as the ConnId.
class SimTransport final : public Transport {
 public:
  SimTransport(SimNetwork& net, SiteId server_site);

  [[nodiscard]] bool ok() const override { return true; }
  [[nodiscard]] std::vector<TransportEvent> poll(
      std::chrono::milliseconds timeout) override;
  bool send(ConnId conn, std::string_view bytes) override;
  void close(ConnId conn) override;

 private:
  SimNetwork& net_;
  SiteId site_;
  // send() is thread-safe per the Transport contract, so the open-connection
  // set the poll thread mutates must be guarded (mirrors TcpTransport::mu_).
  mutable OrderedMutex<LockRank::kTransport> mu_;  ///< rank kTransport
  std::unordered_set<ConnId> open_;
};

/// Client side of SimTransport: a blocking byte channel speaking the same
/// "srv.*" message types from its own site.  Tests drive sessions through
/// this for determinism; the TCP equivalent lives in client.h.
class SimClientChannel {
 public:
  SimClientChannel(SimNetwork& net, SiteId client_site, SiteId server_site)
      : net_(net), site_(client_site), server_(server_site) {}

  /// Announce the connection to the server (kAccept on its next poll).
  void connect();

  bool send_bytes(std::string_view bytes);

  /// Next chunk of server bytes; std::nullopt on timeout or server close.
  std::optional<std::string> recv(std::chrono::milliseconds timeout);

  void close();

  [[nodiscard]] bool closed_by_server() const noexcept {
    return server_closed_;
  }

 private:
  SimNetwork& net_;
  SiteId site_;
  SiteId server_;
  bool server_closed_ = false;
};

}  // namespace atp::server
