#include "storage/store.h"

namespace atp {

// ---------------------------------------------------------------------------
// Lock-free slot reads
//
// Publication protocol (single publisher at a time, under commit_mu_):
//   seq.store(kSeqWriting, release)
//   value.store(v, release)
//   seq.store(final_seq, release)
// A reader loads seq / value / seq with acquire ordering; equal non-sentinel
// seqs on both sides prove the value load saw that version whole (the second
// seq load is ordered after the value load, and the publisher's first store
// to seq precedes any new value).

std::optional<VersionRead> Store::try_read_slot(const VersionSlot& slot) {
  const std::uint64_t s1 = slot.seq.load(std::memory_order_acquire);
  if (s1 == kSeqEmpty || s1 == kSeqWriting) return std::nullopt;
  const Value v = slot.value.load(std::memory_order_acquire);
  const std::uint64_t s2 = slot.seq.load(std::memory_order_acquire);
  if (s1 != s2) return std::nullopt;  // torn: publication in flight
  return VersionRead{v, s1};
}

void Store::push_version_locked(Cell& cell, std::uint64_t seq, Value value) {
  const std::uint32_t head =  // relaxed-ok: single publisher under the cell stripe owns head
      cell.head.load(std::memory_order_relaxed);
  const std::uint32_t next = (head + 1) % kVersionDepth;
  VersionSlot& slot = cell.versions[next];
  // relaxed-ok: stat decision only; the slot's own stores below order it
  if (slot.seq.load(std::memory_order_relaxed) != kSeqEmpty) {
    // Ring full: the oldest version is overwritten.  A snapshot that still
    // needed it will observe "too old" and retry -- epoch GC keeps this rare
    // by pruning only what no registered snapshot can reach.
    stats_gc_reclaimed_.fetch_add(1, std::memory_order_relaxed);  // relaxed-ok: stat
  }
  slot.seq.store(kSeqWriting, std::memory_order_release);
  slot.value.store(value, std::memory_order_release);
  slot.seq.store(seq, std::memory_order_release);
  cell.head.store(next, std::memory_order_release);
  cell.pushes.fetch_add(1, std::memory_order_release);
  stats_versions_.fetch_add(1, std::memory_order_relaxed);  // relaxed-ok: stat
}

std::uint64_t Store::min_live_snapshot_locked() const {
  return live_snapshots_.empty() ? last_commit_seq_ : *live_snapshots_.begin();
}

void Store::gc_cell_locked(Cell& cell) {
  // A version is unreachable once its *successor* is visible to the oldest
  // registered snapshot: every snapshot read then resolves at the successor
  // or newer.  Walk the ring oldest -> newest and empty such slots.
  const std::uint64_t floor = min_live_snapshot_locked();
  // relaxed-ok(begin): runs under the cell stripe, the only writer context;
  // reclamation is published by the kSeqEmpty release store at the end.
  const std::uint32_t head = cell.head.load(std::memory_order_relaxed);
  std::uint64_t successor_seq = kSeqEmpty;  // seq of the next-newer version
  for (std::size_t i = 1; i < kVersionDepth; ++i) {
    // Positions head+1 .. head+depth-1 are oldest -> second-newest; walk
    // newest -> oldest so each slot sees its successor's seq.
    const std::size_t idx = (head + kVersionDepth - i) % kVersionDepth;
    VersionSlot& slot = cell.versions[idx];
    const std::uint64_t s = slot.seq.load(std::memory_order_relaxed);
    if (s == kSeqEmpty || s == kSeqWriting) continue;
    const std::uint64_t succ =
        successor_seq == kSeqEmpty
            ? cell.versions[head].seq.load(std::memory_order_relaxed)
            : successor_seq;
    successor_seq = s;
    if (succ != kSeqEmpty && succ != kSeqWriting && succ <= floor) {
      slot.seq.store(kSeqEmpty, std::memory_order_release);
      stats_gc_reclaimed_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // relaxed-ok(end)
}

void Store::publish_key_locked(TxnId txn, Key key, std::uint64_t seq) {
  std::shared_lock map_lock(map_mu_);
  auto it = cells_.find(key);
  if (it == cells_.end()) return;
  Cell& cell = it->second;
  std::lock_guard cell_lock(stripe_for(key));
  if (cell.dirty_owner != txn) return;
  const Value value = cell.dirty;
  cell.dirty_owner.reset();
  push_version_locked(cell, seq, value);
  gc_cell_locked(cell);
  stats_commit_seq_.store(seq, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Public API

Status Store::load(Key key, Value value) {
  std::lock_guard commit_lock(commit_mu_);
  std::unique_lock map_lock(map_mu_);
  Cell& cell = cells_[key];
  if (cell.dirty_owner.has_value()) {
    // Silently resetting the owner would orphan the in-flight writer: its
    // commit_key would no-op and the update would vanish.
    return Status::FailedPrecondition(
        "bulk-load over key " + std::to_string(key) + " with dirty writer " +
        std::to_string(*cell.dirty_owner));
  }
  // Reset the chain to this single committed value at the current frontier.
  for (VersionSlot& s : cell.versions) {
    s.seq.store(kSeqEmpty, std::memory_order_release);
  }
  cell.head.store(0, std::memory_order_release);
  cell.born_seq = last_commit_seq_;
  push_version_locked(cell, last_commit_seq_, value);
  return Status::Ok();
}

Result<Value> Store::read_committed(Key key) const {
  Result<VersionRead> r = read_latest_versioned(key);
  if (!r.ok()) return r.status();
  return r.value().value;
}

Result<VersionRead> Store::read_latest_versioned(Key key) const {
  std::shared_lock map_lock(map_mu_);
  auto it = cells_.find(key);
  if (it == cells_.end()) return Status::NotFound("key " + std::to_string(key));
  const Cell& cell = it->second;
  for (;;) {
    const std::uint32_t head = cell.head.load(std::memory_order_acquire);
    if (auto r = try_read_slot(cell.versions[head])) return *r;
    // Torn head is only transient (head advances after the slot completes);
    // an empty head means the cell exists but holds no version yet.
    if (cell.versions[head].seq.load(std::memory_order_acquire) == kSeqEmpty &&
        cell.head.load(std::memory_order_acquire) == head) {
      return Status::NotFound("key " + std::to_string(key));
    }
  }
}

Result<VersionRead> Store::read_snapshot(Key key,
                                         std::uint64_t snapshot) const {
  std::shared_lock map_lock(map_mu_);
  auto it = cells_.find(key);
  if (it == cells_.end()) return Status::NotFound("key " + std::to_string(key));
  const Cell& cell = it->second;
  // Bounded validated scan: if publications land while we walk the ring, a
  // slot we already passed may have held the true newest-at-snapshot version,
  // so the result is only accepted when the push counter held still.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const std::uint64_t pushes = cell.pushes.load(std::memory_order_acquire);
    const std::uint32_t head = cell.head.load(std::memory_order_acquire);
    std::optional<VersionRead> found;
    bool saw_version = false;
    for (std::size_t i = 0; i < kVersionDepth; ++i) {
      const std::size_t idx = (head + kVersionDepth - i) % kVersionDepth;
      const auto r = try_read_slot(cell.versions[idx]);
      if (!r) continue;
      saw_version = true;
      if (r->seq <= snapshot) {
        found = *r;
        break;
      }
    }
    if (cell.pushes.load(std::memory_order_acquire) != pushes) continue;
    if (found) return *found;
    if (!saw_version || snapshot < cell.born_seq) {
      return Status::NotFound("key " + std::to_string(key) +
                              " absent at snapshot " +
                              std::to_string(snapshot));
    }
    stats_too_old_.fetch_add(1, std::memory_order_relaxed);  // relaxed-ok: stat
    return Status::Aborted("snapshot " + std::to_string(snapshot) +
                           " too old for key " + std::to_string(key));
  }
  stats_too_old_.fetch_add(1, std::memory_order_relaxed);  // relaxed-ok: stat
  return Status::Aborted("snapshot scan starved on key " +
                         std::to_string(key));
}

Result<Value> Store::read_latest(Key key) const {
  {
    std::shared_lock map_lock(map_mu_);
    auto it = cells_.find(key);
    if (it != cells_.end()) {
      std::lock_guard cell_lock(stripe_for(key));
      const Cell& c = it->second;
      if (c.dirty_owner) return c.dirty;
    } else {
      return Status::NotFound("key " + std::to_string(key));
    }
  }
  return read_committed(key);
}

std::optional<TxnId> Store::dirty_writer(Key key) const {
  std::shared_lock map_lock(map_mu_);
  auto it = cells_.find(key);
  if (it == cells_.end()) return std::nullopt;
  std::lock_guard cell_lock(stripe_for(key));
  return it->second.dirty_owner;
}

Value Store::pending_delta(Key key) const {
  Value dirty = 0;
  {
    std::shared_lock map_lock(map_mu_);
    auto it = cells_.find(key);
    if (it == cells_.end()) return 0;
    std::lock_guard cell_lock(stripe_for(key));
    const Cell& c = it->second;
    if (!c.dirty_owner) return 0;
    dirty = c.dirty;
  }
  return distance(dirty, read_committed(key).value_or(0));
}

Status Store::write(TxnId txn, Key key, Value value) {
  {
    std::shared_lock map_lock(map_mu_);
    auto it = cells_.find(key);
    if (it != cells_.end()) {
      std::lock_guard cell_lock(stripe_for(key));
      Cell& c = it->second;
      if (c.dirty_owner && *c.dirty_owner != txn) {
        return Status::FailedPrecondition("dirty slot owned by txn " +
                                          std::to_string(*c.dirty_owner));
      }
      c.dirty_owner = txn;
      c.dirty = value;
      return Status::Ok();
    }
  }
  // Slow path: create the cell (born at the current frontier, no versions
  // until the writer commits).
  std::lock_guard commit_lock(commit_mu_);
  std::unique_lock map_lock(map_mu_);
  Cell& c = cells_[key];
  if (c.dirty_owner && *c.dirty_owner != txn) {
    return Status::FailedPrecondition("dirty slot owned by txn " +
                                      std::to_string(*c.dirty_owner));
  }
  // relaxed-ok: under commit_mu_ + exclusive map_mu_, no concurrent publisher
  if (c.pushes.load(std::memory_order_relaxed) == 0) {
    c.born_seq = last_commit_seq_;
  }
  c.dirty_owner = txn;
  c.dirty = value;
  return Status::Ok();
}

std::uint64_t Store::snapshot_acquire(
    const std::function<void(std::uint64_t)>& under_lock) {
  std::lock_guard commit_lock(commit_mu_);
  const std::uint64_t snap = last_commit_seq_;
  live_snapshots_.insert(snap);
  stats_snapshots_.fetch_add(1, std::memory_order_relaxed);  // relaxed-ok: stat
  if (under_lock) under_lock(snap);
  return snap;
}

void Store::snapshot_release(std::uint64_t snapshot) {
  std::lock_guard commit_lock(commit_mu_);
  auto it = live_snapshots_.find(snapshot);
  if (it != live_snapshots_.end()) live_snapshots_.erase(it);
}

void Store::commit_key(TxnId txn, Key key) {
  const Key keys[] = {key};
  (void)commit_publish(txn, keys);
}

void Store::abort_key(TxnId txn, Key key) {
  std::shared_lock map_lock(map_mu_);
  auto it = cells_.find(key);
  if (it == cells_.end()) return;
  std::lock_guard cell_lock(stripe_for(key));
  Cell& c = it->second;
  if (c.dirty_owner == txn) c.dirty_owner.reset();
}

std::unordered_map<Key, Value> Store::snapshot_committed() const {
  std::unique_lock map_lock(map_mu_);  // exclusive: freeze structure + cells
  std::unordered_map<Key, Value> snap;
  snap.reserve(cells_.size());
  for (const auto& [k, c] : cells_) {
    const std::uint32_t head = c.head.load(std::memory_order_acquire);
    if (const auto r = try_read_slot(c.versions[head])) snap.emplace(k, r->value);
  }
  return snap;
}

void Store::crash(const std::unordered_set<TxnId>* survivors) {
  std::unique_lock map_lock(map_mu_);
  for (auto& [k, c] : cells_) {
    if (c.dirty_owner && survivors && survivors->count(*c.dirty_owner)) {
      continue;
    }
    c.dirty_owner.reset();
  }
}

void Store::clear() {
  std::lock_guard commit_lock(commit_mu_);
  std::unique_lock map_lock(map_mu_);
  cells_.clear();
  // last_commit_seq_ keeps climbing: snapshots acquired before the loss can
  // never alias post-recovery versions.
}

std::size_t Store::size() const {
  std::shared_lock map_lock(map_mu_);
  return cells_.size();
}

std::size_t Store::versions_retained(Key key) const {
  std::shared_lock map_lock(map_mu_);
  auto it = cells_.find(key);
  if (it == cells_.end()) return 0;
  std::size_t n = 0;
  for (const VersionSlot& s : it->second.versions) {
    const std::uint64_t seq = s.seq.load(std::memory_order_acquire);
    if (seq != kSeqEmpty && seq != kSeqWriting) ++n;
  }
  return n;
}

MvccStats Store::mvcc_stats() const {
  MvccStats s;
  s.commit_seq = stats_commit_seq_.load(std::memory_order_acquire);
  // relaxed-ok(begin): monotone counters for metrics; no ordering needed
  s.versions_published = stats_versions_.load(std::memory_order_relaxed);
  s.gc_reclaimed = stats_gc_reclaimed_.load(std::memory_order_relaxed);
  s.snapshot_too_old = stats_too_old_.load(std::memory_order_relaxed);
  s.snapshots_acquired = stats_snapshots_.load(std::memory_order_relaxed);
  // relaxed-ok(end)
  {
    std::lock_guard commit_lock(commit_mu_);
    s.live_snapshots = live_snapshots_.size();
  }
  return s;
}

}  // namespace atp
