#include "storage/store.h"

namespace atp {

void Store::load(Key key, Value value) {
  std::unique_lock map_lock(map_mu_);
  Cell& cell = cells_[key];
  cell.committed = value;
  cell.dirty_owner.reset();
}

Result<Value> Store::read_committed(Key key) const {
  std::shared_lock map_lock(map_mu_);
  auto it = cells_.find(key);
  if (it == cells_.end()) return Status::NotFound("key " + std::to_string(key));
  std::lock_guard cell_lock(stripe_for(key));
  return it->second.committed;
}

Result<Value> Store::read_latest(Key key) const {
  std::shared_lock map_lock(map_mu_);
  auto it = cells_.find(key);
  if (it == cells_.end()) return Status::NotFound("key " + std::to_string(key));
  std::lock_guard cell_lock(stripe_for(key));
  const Cell& c = it->second;
  return c.dirty_owner ? c.dirty : c.committed;
}

std::optional<TxnId> Store::dirty_writer(Key key) const {
  std::shared_lock map_lock(map_mu_);
  auto it = cells_.find(key);
  if (it == cells_.end()) return std::nullopt;
  std::lock_guard cell_lock(stripe_for(key));
  return it->second.dirty_owner;
}

Value Store::pending_delta(Key key) const {
  std::shared_lock map_lock(map_mu_);
  auto it = cells_.find(key);
  if (it == cells_.end()) return 0;
  std::lock_guard cell_lock(stripe_for(key));
  const Cell& c = it->second;
  return c.dirty_owner ? distance(c.dirty, c.committed) : 0;
}

Status Store::write(TxnId txn, Key key, Value value) {
  {
    std::shared_lock map_lock(map_mu_);
    auto it = cells_.find(key);
    if (it != cells_.end()) {
      std::lock_guard cell_lock(stripe_for(key));
      Cell& c = it->second;
      if (c.dirty_owner && *c.dirty_owner != txn) {
        return Status::FailedPrecondition("dirty slot owned by txn " +
                                          std::to_string(*c.dirty_owner));
      }
      c.dirty_owner = txn;
      c.dirty = value;
      return Status::Ok();
    }
  }
  // Slow path: create the cell.
  std::unique_lock map_lock(map_mu_);
  Cell& c = cells_[key];
  if (c.dirty_owner && *c.dirty_owner != txn) {
    return Status::FailedPrecondition("dirty slot owned by txn " +
                                      std::to_string(*c.dirty_owner));
  }
  c.dirty_owner = txn;
  c.dirty = value;
  return Status::Ok();
}

void Store::commit_key(TxnId txn, Key key) {
  std::shared_lock map_lock(map_mu_);
  auto it = cells_.find(key);
  if (it == cells_.end()) return;
  std::lock_guard cell_lock(stripe_for(key));
  Cell& c = it->second;
  if (c.dirty_owner == txn) {
    c.committed = c.dirty;
    c.dirty_owner.reset();
  }
}

void Store::abort_key(TxnId txn, Key key) {
  std::shared_lock map_lock(map_mu_);
  auto it = cells_.find(key);
  if (it == cells_.end()) return;
  std::lock_guard cell_lock(stripe_for(key));
  Cell& c = it->second;
  if (c.dirty_owner == txn) c.dirty_owner.reset();
}

std::unordered_map<Key, Value> Store::snapshot_committed() const {
  std::unique_lock map_lock(map_mu_);  // exclusive: freeze structure + cells
  std::unordered_map<Key, Value> snap;
  snap.reserve(cells_.size());
  for (const auto& [k, c] : cells_) snap.emplace(k, c.committed);
  return snap;
}

void Store::crash(const std::unordered_set<TxnId>* survivors) {
  std::unique_lock map_lock(map_mu_);
  for (auto& [k, c] : cells_) {
    if (c.dirty_owner && survivors && survivors->count(*c.dirty_owner)) {
      continue;
    }
    c.dirty_owner.reset();
  }
}

void Store::clear() {
  std::unique_lock map_lock(map_mu_);
  cells_.clear();
}

std::size_t Store::size() const {
  std::shared_lock map_lock(map_mu_);
  return cells_.size();
}

}  // namespace atp
