// In-memory multi-version record store over the canonical metric space.
//
// Each cell keeps a fixed-depth ring of committed *versions*, every version
// stamped with the global commit sequence that published it, plus at most one
// *dirty* value owned by an in-flight update transaction.  Two-phase-locking
// guarantees at most one uncommitted writer per key (update ETs remain
// serializable among themselves under both CC and DC -- Section 1.1), so one
// dirty slot still suffices; what the version ring adds is a lock-free
// *snapshot read path*: a query ET acquires a snapshot sequence, reads the
// newest version at or below it with a seqlock-validated scan, and never
// touches the lock manager at all.
//
// Commit publication and snapshot lifetime are serialized by one commit
// mutex (rank kStoreCommit): commit_publish allocates the next commit
// sequence, moves every staged dirty value into its key's ring, and prunes
// versions no live snapshot can reach (epoch GC -- a version is reclaimable
// once its *successor* is visible to the oldest live snapshot).  The ring
// overwrites its oldest entry when full regardless; a reader whose snapshot
// predates the oldest retained version gets kAborted ("snapshot too old")
// and retries with a fresh snapshot.
//
// Divergence-control reads charge fuzziness from version timestamps: the
// distance between the freshest version and the snapshot version of a key is
// exactly the inconsistency a query imports by reading fresh (see
// DcResolver).  `crash()` models a site failure: all dirty state is lost,
// committed state survives -- this is what the recoverable-queue layer
// relies on.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <set>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>

#include "common/status.h"
#include "common/types.h"

#include "common/ordered_lock.h"

namespace atp {

/// One committed version observed by a read: its value and the commit
/// sequence that published it (0 for bulk-loaded primordial state).
struct VersionRead {
  Value value = 0;
  std::uint64_t seq = 0;
};

/// Lifetime counters for the obs layer (mvcc.* instruments).  Monotonic;
/// read lock-free.
struct MvccStats {
  std::uint64_t commit_seq = 0;        ///< last allocated commit sequence
  std::uint64_t versions_published = 0;
  std::uint64_t gc_reclaimed = 0;      ///< versions pruned by epoch GC
  std::uint64_t snapshot_too_old = 0;  ///< reads refused past the ring tail
  std::uint64_t snapshots_acquired = 0;
  std::uint64_t live_snapshots = 0;    ///< currently registered snapshots
};

class Store {
 public:
  /// Versions retained per key.  Deep enough that epoch GC (not ring
  /// overflow) is the common reclaim path under realistic query lifetimes.
  static constexpr std::size_t kVersionDepth = 12;

  Store() = default;
  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  /// Create or overwrite a key with a committed value (bulk load, no txn).
  /// Resets the key's version chain to that single value.  Fails with
  /// FailedPrecondition over a cell with an in-flight writer: silently
  /// resetting the dirty owner would orphan that transaction (its later
  /// commit_key would no-op and the update would vanish).
  Status load(Key key, Value value);

  /// Last committed value (the newest version).
  [[nodiscard]] Result<Value> read_committed(Key key) const;

  /// Newest committed version together with its commit sequence.  Lock-free
  /// against concurrent publication.
  [[nodiscard]] Result<VersionRead> read_latest_versioned(Key key) const;

  /// Newest version with seq <= `snapshot`, seqlock-validated and lock-free.
  /// kAborted when the ring no longer retains a version that old ("snapshot
  /// too old" -- the caller retries on a fresh snapshot); kNotFound when the
  /// key did not exist at the snapshot.
  [[nodiscard]] Result<VersionRead> read_snapshot(Key key,
                                                  std::uint64_t snapshot) const;

  /// Dirty value if a writer is in flight, else the committed value.  Used
  /// by 2PL reads under X/S coexistence (an update re-reading its own staged
  /// write) -- divergence-control queries use read_snapshot instead.
  [[nodiscard]] Result<Value> read_latest(Key key) const;

  /// The in-flight writer of `key`, if any.
  [[nodiscard]] std::optional<TxnId> dirty_writer(Key key) const;

  /// Pending uncommitted delta on `key` (|dirty - committed|), 0 if clean.
  [[nodiscard]] Value pending_delta(Key key) const;

  /// Stage an uncommitted write.  Fails with FailedPrecondition if another
  /// transaction's dirty value is present (X-locking above this layer should
  /// make that impossible).  Creates the cell (born at the current commit
  /// sequence, value 0) if absent.
  Status write(TxnId txn, Key key, Value value);

  /// Register a live snapshot at the current commit frontier and return its
  /// sequence.  Epoch GC never reclaims a version still reachable from a
  /// registered snapshot.  `under_lock`, when set, runs inside the commit
  /// mutex -- callers use it to trace-order the acquisition consistently
  /// with commit publication.  Pair with snapshot_release.
  std::uint64_t snapshot_acquire(
      const std::function<void(std::uint64_t)>& under_lock = nullptr);
  void snapshot_release(std::uint64_t snapshot);

  /// Promote every staged dirty value of `txn` on `keys` to a new version,
  /// all stamped with one freshly allocated commit sequence.  Runs epoch GC
  /// on the touched cells and invokes `under_lock(seq)` inside the commit
  /// mutex (trace emission: the event order matches publication order).
  /// Returns the commit sequence (0 when `keys` is empty).
  template <typename KeyRange>
  std::uint64_t commit_publish(
      TxnId txn, const KeyRange& keys,
      const std::function<void(std::uint64_t)>& under_lock = nullptr) {
    std::lock_guard commit_lock(commit_mu_);
    std::uint64_t seq = 0;
    for (const Key k : keys) {
      if (seq == 0) seq = ++last_commit_seq_;
      publish_key_locked(txn, k, seq);
    }
    if (under_lock) under_lock(seq);
    return seq;
  }

  /// Single-key commit (compatibility wrapper): allocates its own sequence.
  void commit_key(TxnId txn, Key key);

  /// Discard txn's dirty value on `key`.  No-op if absent or foreign.
  void abort_key(TxnId txn, Key key);

  /// Consistent point-in-time copy of all committed values (serial oracles).
  [[nodiscard]] std::unordered_map<Key, Value> snapshot_committed() const;

  /// Simulated site failure: every dirty value is lost, except those of
  /// `survivors` (prepared 2PC participants, whose staged state a real
  /// system has force-logged before voting).  Committed versions survive.
  void crash(const std::unordered_set<TxnId>* survivors = nullptr);

  /// Drop everything -- the total-loss crash model used when a write-ahead
  /// log is the source of truth (wal/recovery rebuilds the contents).  The
  /// commit sequence keeps climbing so stale snapshots can never alias
  /// post-recovery versions.
  void clear();

  [[nodiscard]] std::size_t size() const;

  /// Current commit frontier (sequence of the newest published version).
  [[nodiscard]] std::uint64_t commit_seq() const {
    return stats_commit_seq_.load(std::memory_order_acquire);
  }

  [[nodiscard]] MvccStats mvcc_stats() const;

  /// Versions currently retained for `key` (tests: depth cap, GC reclaim).
  [[nodiscard]] std::size_t versions_retained(Key key) const;

 private:
  /// Seq sentinels: a slot is empty until first published; kWriting marks a
  /// slot mid-publication so the seqlock scan skips/retries it.
  static constexpr std::uint64_t kSeqEmpty = ~std::uint64_t{0};
  static constexpr std::uint64_t kSeqWriting = ~std::uint64_t{0} - 1;

  /// One version.  Published under commit_mu_ (single writer at a time), read
  /// lock-free: seq is stored kWriting -> value/writer -> final seq, all
  /// release; a reader's acquire loads of (seq, value, seq) detect torn
  /// slots and retry.
  struct VersionSlot {
    std::atomic<std::uint64_t> seq{kSeqEmpty};
    std::atomic<Value> value{0};
  };

  struct Cell {
    VersionSlot versions[kVersionDepth];
    std::atomic<std::uint32_t> head{0};  ///< index of the newest version
    std::atomic<std::uint64_t> pushes{0};  ///< publications ever (scan guard)
    std::uint64_t born_seq = 0;  ///< commit frontier when the cell appeared
    std::optional<TxnId> dirty_owner;    ///< under the stripe mutex
    Value dirty = 0;                     ///< under the stripe mutex
  };

  // map_mu_ (shared_mutex) guards map *structure*; per-stripe mutexes guard
  // dirty-slot contents.  Version slots are atomics published under
  // commit_mu_ and read with seqlock validation (no lock on the read path
  // beyond the shared map lookup).
  static constexpr std::size_t kStripes = 64;
  [[nodiscard]] OrderedMutex<LockRank::kStoreStripe>& stripe_for(Key key) const {
    return stripes_[key % kStripes];
  }

  /// Append one version to `cell` (commit_mu_ held).
  void push_version_locked(Cell& cell, std::uint64_t seq, Value value);
  /// Move txn's staged dirty value on `key` into a version (commit_mu_ held).
  void publish_key_locked(TxnId txn, Key key, std::uint64_t seq);
  /// Epoch GC over one cell: drop versions whose successor is already
  /// visible to every registered snapshot (commit_mu_ held).
  void gc_cell_locked(Cell& cell);
  [[nodiscard]] std::uint64_t min_live_snapshot_locked() const;

  /// Seqlock-validated read of one slot; nullopt when torn/empty/writing.
  [[nodiscard]] static std::optional<VersionRead> try_read_slot(
      const VersionSlot& slot);

  // Commit publication + snapshot registry.  Ordered strictly before the map
  // and stripe locks: commit_publish holds it across the per-key lookups.
  mutable OrderedMutex<LockRank::kStoreCommit> commit_mu_;  ///< rank kStoreCommit: seq allocation, publication, snapshot registry
  std::uint64_t last_commit_seq_ = 0;     // under commit_mu_
  std::multiset<std::uint64_t> live_snapshots_;  // under commit_mu_

  mutable OrderedSharedMutex<LockRank::kStoreMap> map_mu_;  ///< rank kStoreMap: shared for lookups, exclusive for crash/snapshot
  mutable OrderedMutex<LockRank::kStoreStripe> stripes_[kStripes];  ///< rank kStoreStripe: under a held map lock
  std::unordered_map<Key, Cell> cells_;

  // mvcc.* counters (mutated under commit_mu_; read lock-free by obs).
  std::atomic<std::uint64_t> stats_commit_seq_{0};
  std::atomic<std::uint64_t> stats_versions_{0};
  std::atomic<std::uint64_t> stats_gc_reclaimed_{0};
  mutable std::atomic<std::uint64_t> stats_too_old_{0};
  std::atomic<std::uint64_t> stats_snapshots_{0};
};

}  // namespace atp
