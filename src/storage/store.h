// In-memory record store over the canonical metric space.
//
// Each cell keeps its last *committed* value plus at most one *dirty* value
// owned by an in-flight update transaction.  Two-phase-locking guarantees at
// most one uncommitted writer per key (update ETs remain serializable among
// themselves under both CC and DC -- Section 1.1), so one dirty slot suffices.
//
// Divergence control reads may observe the dirty value; plain concurrency
// control reads never do (the lock manager prevents the interleaving).
// `crash()` models a site failure: all dirty state is lost, committed state
// survives -- this is what the recoverable-queue layer relies on.
#pragma once

#include <mutex>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>

#include "common/status.h"
#include "common/types.h"

#include "common/ordered_lock.h"

namespace atp {

class Store {
 public:
  Store() = default;
  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  /// Create or overwrite a key with a committed value (bulk load, no txn).
  void load(Key key, Value value);

  /// Last committed value.
  [[nodiscard]] Result<Value> read_committed(Key key) const;

  /// Dirty value if a writer is in flight, else the committed value.  Used by
  /// divergence-control reads, which may see bounded inconsistency.
  [[nodiscard]] Result<Value> read_latest(Key key) const;

  /// The in-flight writer of `key`, if any.
  [[nodiscard]] std::optional<TxnId> dirty_writer(Key key) const;

  /// Pending uncommitted delta on `key` (|dirty - committed|), 0 if clean.
  /// This is the fuzziness a conflicting read would import.
  [[nodiscard]] Value pending_delta(Key key) const;

  /// Stage an uncommitted write.  Fails with FailedPrecondition if another
  /// transaction's dirty value is present (X-locking above this layer should
  /// make that impossible).  Creates the cell (committed value 0) if absent.
  Status write(TxnId txn, Key key, Value value);

  /// Promote txn's dirty value on `key` to committed.  No-op if absent or
  /// owned by a different transaction.
  void commit_key(TxnId txn, Key key);

  /// Discard txn's dirty value on `key`.  No-op if absent or foreign.
  void abort_key(TxnId txn, Key key);

  /// Consistent point-in-time copy of all committed values (serial oracles).
  [[nodiscard]] std::unordered_map<Key, Value> snapshot_committed() const;

  /// Simulated site failure: every dirty value is lost, except those of
  /// `survivors` (prepared 2PC participants, whose staged state a real
  /// system has force-logged before voting).
  void crash(const std::unordered_set<TxnId>* survivors = nullptr);

  /// Drop everything -- the total-loss crash model used when a write-ahead
  /// log is the source of truth (wal/recovery rebuilds the contents).
  void clear();

  [[nodiscard]] std::size_t size() const;

 private:
  struct Cell {
    Value committed = 0;
    std::optional<TxnId> dirty_owner;
    Value dirty = 0;
  };

  // map_mu_ (shared_mutex) guards map *structure*; per-stripe mutexes guard
  // cell *contents*.  Lookups take map_mu_ shared + the stripe lock; inserts
  // take map_mu_ exclusive.
  static constexpr std::size_t kStripes = 64;
  [[nodiscard]] OrderedMutex<LockRank::kStoreStripe>& stripe_for(Key key) const {
    return stripes_[key % kStripes];
  }

  mutable OrderedSharedMutex<LockRank::kStoreMap> map_mu_;  ///< rank kStoreMap: shared for lookups, exclusive for crash/snapshot
  mutable OrderedMutex<LockRank::kStoreStripe> stripes_[kStripes];  ///< rank kStoreStripe: under a held map lock
  std::unordered_map<Key, Cell> cells_;
};

}  // namespace atp
