#include "trace/export.h"

#include <cmath>
#include <limits>
#include <sstream>
#include <unordered_map>

namespace atp {
namespace {

// JSON has no Infinity/NaN literals; clamp so the file always parses.
void put_number(std::ostream& out, double v) {
  if (std::isnan(v)) {
    out << 0;
    return;
  }
  if (std::isinf(v)) {
    out << (v > 0 ? "1e308" : "-1e308");
    return;
  }
  std::ostringstream s;
  s.precision(std::numeric_limits<double>::max_digits10);
  s << v;
  out << s.str();
}

void put_args(std::ostream& out, const TraceEvent& e) {
  out << "{\"seq\":" << e.seq << ",\"txn\":" << e.txn << ",\"key\":" << e.key
      << ",\"a\":";
  put_number(out, e.a);
  out << ",\"b\":";
  put_number(out, e.b);
  out << ",\"aux\":" << e.aux << ",\"aux2\":" << e.aux2 << "}";
}

void put_common(std::ostream& out, const TraceEvent& e, const char* name,
                const char* cat) {
  out << "\"name\":\"" << name << "\",\"cat\":\"" << cat << "\",\"pid\":"
      << e.site << ",\"tid\":" << e.tid << ",\"ts\":" << e.ts_us;
}

// Category for the instant track; also used to pick span kinds.
const char* category_of(TraceKind k) {
  switch (k) {
    case TraceKind::TxnBegin:
    case TraceKind::TxnCommit:
    case TraceKind::TxnAbort:
    case TraceKind::Read:
    case TraceKind::Write:
      return "txn";
    case TraceKind::RunBegin:
    case TraceKind::RunCommit:
    case TraceKind::RunRollback:
    case TraceKind::PieceStart:
    case TraceKind::PieceFinish:
    case TraceKind::PieceResubmit:
      return "engine";
    case TraceKind::LockWait:
    case TraceKind::LockAcquire:
    case TraceKind::LockRelease:
    case TraceKind::LockDeadlock:
    case TraceKind::LockTimeout:
      return "lock";
    case TraceKind::FuzzImport:
    case TraceKind::FuzzExport:
      return "epsilon";
    case TraceKind::QueueEnqueue:
    case TraceKind::QueueDequeue:
    case TraceKind::QueueDeliver:
    case TraceKind::QueueRedeliver:
      return "queue";
    case TraceKind::NetSend:
    case TraceKind::NetDeliver:
    case TraceKind::NetDrop:
      return "net";
    case TraceKind::SiteCrash:
    case TraceKind::SiteRecover:
      return "site";
  }
  return "?";
}

struct SpanKey {
  SiteId site;
  TxnId txn;
  bool operator==(const SpanKey&) const = default;
};
struct SpanKeyHash {
  std::size_t operator()(const SpanKey& k) const noexcept {
    return std::hash<std::uint64_t>()((std::uint64_t(k.site) << 48) ^ k.txn);
  }
};

}  // namespace

void write_chrome_trace(const std::vector<TraceEvent>& events,
                        std::ostream& out) {
  // Pair begin/end events into complete ("X") spans.  Events arrive sorted
  // by seq, so the first matching end closes the open span.
  using SpanMap = std::unordered_map<SpanKey, const TraceEvent*, SpanKeyHash>;
  SpanMap open_txns, open_runs, open_pieces;

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n";
  };

  auto emit_span = [&](const TraceEvent& begin, const TraceEvent& end,
                       const std::string& name) {
    sep();
    out << "{\"name\":\"" << name << "\",\"cat\":\""
        << category_of(begin.kind) << "\",\"ph\":\"X\",\"pid\":" << begin.site
        << ",\"tid\":" << begin.tid << ",\"ts\":" << begin.ts_us
        << ",\"dur\":" << (end.ts_us - begin.ts_us) << ",\"args\":";
    put_args(out, end);
    out << "}";
  };

  for (const TraceEvent& e : events) {
    const SpanKey key{e.site, e.txn};
    switch (e.kind) {
      case TraceKind::TxnBegin:
        open_txns[key] = &e;
        continue;
      case TraceKind::TxnCommit:
      case TraceKind::TxnAbort:
        if (auto it = open_txns.find(key); it != open_txns.end()) {
          const char* outcome =
              e.kind == TraceKind::TxnCommit ? "commit" : "abort";
          emit_span(*it->second, e,
                    "txn " + std::to_string(e.txn) + " " + outcome);
          open_txns.erase(it);
          continue;
        }
        break;  // unmatched end: fall through to an instant
      case TraceKind::RunBegin:
        open_runs[key] = &e;
        continue;
      case TraceKind::RunCommit:
      case TraceKind::RunRollback:
        if (auto it = open_runs.find(key); it != open_runs.end()) {
          const char* outcome =
              e.kind == TraceKind::RunCommit ? "commit" : "rollback";
          emit_span(*it->second, e,
                    "run " + std::to_string(e.txn) + " " + outcome);
          open_runs.erase(it);
          continue;
        }
        break;
      case TraceKind::PieceStart:
        open_pieces[key] = &e;
        continue;
      case TraceKind::PieceFinish:
        if (auto it = open_pieces.find(key); it != open_pieces.end()) {
          emit_span(*it->second, e,
                    "piece " + std::to_string(e.key) + " of run " +
                        std::to_string(e.aux2));
          open_pieces.erase(it);
          continue;
        }
        break;
      default:
        break;
    }
    sep();
    out << "{";
    put_common(out, e, to_string(e.kind), category_of(e.kind));
    out << ",\"ph\":\"i\",\"s\":\"t\",\"args\":";
    put_args(out, e);
    out << "}";
  }

  // Spans still open when the trace ended (in-flight transactions): emit
  // their begin markers as instants so nothing is silently lost.
  auto flush_open = [&](const SpanMap& spans) {
    for (const auto& [key, begin] : spans) {
      sep();
      out << "{";
      put_common(out, *begin, to_string(begin->kind),
                 category_of(begin->kind));
      out << ",\"ph\":\"i\",\"s\":\"t\",\"args\":";
      put_args(out, *begin);
      out << "}";
    }
  };
  flush_open(open_txns);
  flush_open(open_runs);
  flush_open(open_pieces);

  out << "\n]}\n";
}

void write_ndjson(const std::vector<TraceEvent>& events, std::ostream& out) {
  for (const TraceEvent& e : events) {
    out << "{\"seq\":" << e.seq << ",\"ts_us\":" << e.ts_us
        << ",\"tid\":" << e.tid << ",\"site\":" << e.site << ",\"kind\":\""
        << to_string(e.kind) << "\",\"txn\":" << e.txn << ",\"key\":" << e.key
        << ",\"a\":";
    put_number(out, e.a);
    out << ",\"b\":";
    put_number(out, e.b);
    out << ",\"aux\":" << e.aux << ",\"aux2\":" << e.aux2 << "}\n";
  }
}

}  // namespace atp
