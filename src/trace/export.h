// Trace exporters.
//
// write_chrome_trace() emits the Chrome trace_event JSON object format
// ({"traceEvents": [...]}), loadable in chrome://tracing and Perfetto.
// Transactions, original (chopped) runs and pieces become complete ("X")
// duration events on the recording thread's track; everything else becomes
// an instant ("i") event.  pid = site, tid = the tracer's dense thread index.
//
// write_ndjson() emits one JSON object per line per event with every raw
// field, for jq/python scripting.
#pragma once

#include <ostream>
#include <vector>

#include "trace/tracer.h"

namespace atp {

void write_chrome_trace(const std::vector<TraceEvent>& events,
                        std::ostream& out);

void write_ndjson(const std::vector<TraceEvent>& events, std::ostream& out);

}  // namespace atp
