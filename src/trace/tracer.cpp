#include "trace/tracer.h"

#include <algorithm>

#include "obs/metrics_registry.h"

namespace atp {

const char* to_string(TraceKind kind) noexcept {
  switch (kind) {
    case TraceKind::TxnBegin: return "txn_begin";
    case TraceKind::TxnCommit: return "txn_commit";
    case TraceKind::TxnAbort: return "txn_abort";
    case TraceKind::Read: return "read";
    case TraceKind::Write: return "write";
    case TraceKind::RunBegin: return "run_begin";
    case TraceKind::RunCommit: return "run_commit";
    case TraceKind::RunRollback: return "run_rollback";
    case TraceKind::PieceStart: return "piece_start";
    case TraceKind::PieceFinish: return "piece_finish";
    case TraceKind::PieceResubmit: return "piece_resubmit";
    case TraceKind::LockWait: return "lock_wait";
    case TraceKind::LockAcquire: return "lock_acquire";
    case TraceKind::LockRelease: return "lock_release";
    case TraceKind::LockDeadlock: return "lock_deadlock";
    case TraceKind::LockTimeout: return "lock_timeout";
    case TraceKind::FuzzImport: return "fuzz_import";
    case TraceKind::FuzzExport: return "fuzz_export";
    case TraceKind::QueueEnqueue: return "queue_enqueue";
    case TraceKind::QueueDequeue: return "queue_dequeue";
    case TraceKind::QueueDeliver: return "queue_deliver";
    case TraceKind::QueueRedeliver: return "queue_redeliver";
    case TraceKind::NetSend: return "net_send";
    case TraceKind::NetDeliver: return "net_deliver";
    case TraceKind::NetDrop: return "net_drop";
    case TraceKind::SiteCrash: return "site_crash";
    case TraceKind::SiteRecover: return "site_recover";
  }
  return "?";
}

namespace {
std::atomic<std::uint64_t> next_tracer_id{1};
}  // namespace

Tracer::Tracer(std::size_t per_thread_capacity)
    : id_(next_tracer_id.fetch_add(  // relaxed-ok: unique id only
          1, std::memory_order_relaxed)),
      capacity_(std::max<std::size_t>(1, per_thread_capacity)),
      epoch_(std::chrono::steady_clock::now()) {}

Tracer::~Tracer() {
  if (metrics_ != nullptr) metrics_->remove_collector(collector_id_);
}

void Tracer::attach_metrics(obs::MetricsRegistry* registry) {
  if (metrics_ != nullptr) metrics_->remove_collector(collector_id_);
  metrics_ = registry;
  if (registry == nullptr) return;
  collector_id_ = registry->add_collector([this](obs::SnapshotBuilder& b) {
    b.counter("trace.dropped_events", double(dropped()));
    b.gauge("trace.retained_events", double(size()));
  });
}

Tracer::Ring* Tracer::ring_for_current_thread() {
  // One-entry cache keyed by the tracer's never-reused id -- NOT its address:
  // a dead tracer's storage can be reused by a new one, and an address match
  // would then hand back a ring freed with the old tracer.  A thread
  // alternating between live tracers gets a fresh ring per switch (the old
  // ring stays in rings_, so its events still reach collect()).
  struct Cache {
    std::uint64_t tracer_id = 0;
    Ring* ring = nullptr;
  };
  static thread_local Cache cache;
  if (cache.tracer_id == id_) return cache.ring;

  std::lock_guard lock(registry_mu_);
  rings_.push_back(std::make_unique<Ring>());
  cache.tracer_id = id_;
  cache.ring = rings_.back().get();
  return cache.ring;
}

void Tracer::record(TraceKind kind, SiteId site, TxnId txn, Key key, double a,
                    double b, std::uint64_t aux, std::uint64_t aux2) {
  TraceEvent ev;
  ev.ts_us = std::chrono::duration_cast<std::chrono::microseconds>(
                 std::chrono::steady_clock::now() - epoch_)
                 .count();
  ev.site = site;
  ev.kind = kind;
  ev.txn = txn;
  ev.key = key;
  ev.a = a;
  ev.b = b;
  ev.aux = aux;
  ev.aux2 = aux2;

  Ring* ring = ring_for_current_thread();
  std::lock_guard lock(ring->mu);
  // The seq ticket is taken INSIDE the ring critical section: a drain pass
  // that reads next_seq_ and then locks this ring is guaranteed every event
  // numbered below that reading is already published in some ring -- the
  // stable-horizon contract of TraceSubscription::drain().
  ev.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);  // relaxed-ok: ring mutex publishes the slot; consumers order by seq
  if (ring->slots.size() < capacity_) {
    ring->slots.push_back(ev);
  } else {
    // (written - base) counts events since the last clear(), so this cycles
    // through the slots oldest-first regardless of clears.
    ring->slots[(ring->written - ring->base) % capacity_] = ev;
  }
  ++ring->written;
}

std::vector<TraceEvent> Tracer::collect() const {
  std::vector<TraceEvent> all;
  {
    std::lock_guard registry_lock(registry_mu_);
    for (std::size_t i = 0; i < rings_.size(); ++i) {
      const Ring& ring = *rings_[i];
      std::lock_guard lock(ring.mu);
      for (TraceEvent ev : ring.slots) {
        ev.tid = static_cast<std::uint32_t>(i);
        all.push_back(ev);
      }
    }
  }
  std::sort(all.begin(), all.end(),
            [](const TraceEvent& x, const TraceEvent& y) {
              return x.seq < y.seq;
            });
  return all;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard registry_lock(registry_mu_);
  std::uint64_t lost = 0;
  for (const auto& ring : rings_) {
    std::lock_guard lock(ring->mu);
    const std::uint64_t live = ring->written - ring->base;
    if (live > capacity_) lost += live - capacity_;
  }
  return lost;
}

std::size_t Tracer::size() const {
  std::lock_guard registry_lock(registry_mu_);
  std::size_t n = 0;
  for (const auto& ring : rings_) {
    std::lock_guard lock(ring->mu);
    n += ring->slots.size();
  }
  return n;
}

void Tracer::clear() {
  std::lock_guard registry_lock(registry_mu_);
  for (const auto& ring : rings_) {
    std::lock_guard lock(ring->mu);
    ring->slots.clear();
    ring->base = ring->written;
  }
}

TraceSubscription::TraceSubscription(const Tracer& tracer) : tracer_(tracer) {
  // Start every existing ring's cursor at its oldest *retained* event:
  // whatever was overwritten or clear()ed before this subscription existed
  // is history, not a post-subscription loss, and must not count toward
  // `dropped` (it would permanently flip consumers' degraded flags).
  std::lock_guard registry_lock(tracer_.registry_mu_);
  consumed_.reserve(tracer_.rings_.size());
  for (const auto& ring : tracer_.rings_) {
    std::lock_guard lock(ring->mu);
    consumed_.push_back(ring->written - ring->slots.size());
  }
}

TraceSubscription::Batch TraceSubscription::drain() {
  Batch batch;
  // The horizon is read BEFORE any ring lock: seq tickets are issued inside
  // ring critical sections (see record()), so after the sweep below every
  // event numbered under this reading has been copied out, consumed earlier,
  // or charged to `dropped`.  Anything at or past it may still be mid-record.
  batch.stable_before =
      tracer_.next_seq_.load(std::memory_order_acquire);
  {
    std::lock_guard registry_lock(tracer_.registry_mu_);
    if (consumed_.size() < tracer_.rings_.size()) {
      consumed_.resize(tracer_.rings_.size(), 0);
    }
    for (std::size_t i = 0; i < tracer_.rings_.size(); ++i) {
      const Tracer::Ring& ring = *tracer_.rings_[i];
      std::lock_guard lock(ring.mu);
      // Retained logical write indices are [written - slots.size(), written);
      // anything below that was overwritten or clear()ed before we got here.
      const std::uint64_t oldest = ring.written - ring.slots.size();
      std::uint64_t& cursor = consumed_[i];
      if (cursor < oldest) {
        dropped_ += oldest - cursor;
        cursor = oldest;
      }
      for (; cursor < ring.written; ++cursor) {
        TraceEvent ev =
            ring.slots[(cursor - ring.base) % tracer_.capacity_];
        ev.tid = static_cast<std::uint32_t>(i);
        batch.events.push_back(ev);
      }
    }
  }
  std::sort(batch.events.begin(), batch.events.end(),
            [](const TraceEvent& x, const TraceEvent& y) {
              return x.seq < y.seq;
            });
  batch.dropped = dropped_;
  return batch;
}

}  // namespace atp
