// Structured event tracing for the whole transaction lifecycle.
//
// The Tracer is a low-overhead, thread-safe recorder: each recording thread
// writes into its own fixed-size ring buffer (one uncontended mutex per ring,
// taken only by the owner thread and by collect()), and events carry a global
// sequence number so collect() can merge the rings into one totally ordered
// span stream.  When tracing is off every instrumented call site costs a
// single null-pointer check.
//
// The captured history is the input to the audit layer (src/audit/): the SR
// certifier rebuilds the direct-serialization graph from Read/Write events,
// and the ESR certifier replays the FuzzImport/FuzzExport ledger.  The
// exporters (trace/export.h) turn the same events into Chrome trace_event
// JSON (chrome://tracing, Perfetto) and newline-delimited JSON.
//
// Rings overwrite their oldest events when full (the recorder never blocks
// and never allocates after a ring fills); dropped() reports how many events
// were lost so an auditor can refuse to certify an incomplete trace.
//
// Live consumption: subscribe() returns a TraceSubscription whose drain()
// incrementally copies every ring's new events without disturbing them --
// per-ring cursors, one short lock per ring per drain, recorders never wait
// on the consumer.  Each drained batch carries a stable-seq horizon: every
// event numbered below it has been delivered (in this batch or an earlier
// one) or counted as dropped, so a consumer such as the online certifier
// (audit/online_certifier.h) can process a strictly seq-ordered prefix and
// buffer the rest.  attach_metrics() additionally publishes ring health
// (trace.dropped_events, trace.retained_events) into an obs registry.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/types.h"

#include "common/ordered_lock.h"

namespace atp {

namespace obs {
class MetricsRegistry;
}  // namespace obs

/// What happened.  Field conventions per kind are documented inline; unused
/// fields are zero.
enum class TraceKind : std::uint8_t {
  // Epsilon-transaction (ET) lifecycle -- sched/.
  TxnBegin,    ///< txn; a=import limit, b=export limit; aux=1 if update ET;
               ///< aux2=parent id (0 when unchopped)
  TxnCommit,   ///< txn; a=final fuzziness Z (imported+exported)
  TxnAbort,    ///< txn
  Read,        ///< txn, key; a=value observed
  Write,       ///< txn, key; a=value installed
  // Original (chopped) transaction + piece lifecycle -- engine/.
  RunBegin,     ///< txn=original id
  RunCommit,    ///< txn=original id; a=Z restricted, b=Z total
  RunRollback,  ///< txn=original id (programmed rollback taken)
  PieceStart,   ///< txn=piece ET id; key=piece index; a=piece Limit;
                ///< aux2=original id
  PieceFinish,  ///< txn=piece ET id; key=piece index; a=Z_p; aux2=original id
  PieceResubmit,  ///< key=piece index; aux=attempt; aux2=original id
  // Lock manager -- lock/.  aux bit0 = exclusive mode, bit1 = fuzzy grant.
  LockWait,      ///< txn, key; aux=mode; aux2=one blocking txn
  LockAcquire,   ///< txn, key; aux=mode|fuzzy<<1
  LockRelease,   ///< txn (release_all: every key at once)
  LockDeadlock,  ///< txn, key; aux=mode (refused as deadlock victim)
  LockTimeout,   ///< txn, key; aux=mode
  // Divergence-control fuzziness ledger -- txn/.
  FuzzImport,  ///< txn=query ET; a=amount; b=import limit at charge time;
               ///< aux2=counterpart update ET (0 for ODC self-import)
  FuzzExport,  ///< txn=update ET; a=amount; b=export limit at charge time;
               ///< aux2=counterpart query ET
  // Recoverable queues -- queue/.
  QueueEnqueue,    ///< txn; aux=qmsg id; aux2=destination site
  QueueDequeue,    ///< txn; aux=qmsg id (claim staged under txn)
  QueueDeliver,    ///< aux=qmsg id; aux2=sender site; a=1 new, 0 duplicate
  QueueRedeliver,  ///< aux=qmsg id (claim returned by an aborting consumer)
  // Simulated network -- net/.  site=sender for Send/Drop, receiver for
  // Deliver; key carries the peer site id.
  NetSend,     ///< site=from, key=to, aux=message id
  NetDeliver,  ///< site=to, key=from, aux=message id
  NetDrop,     ///< site=from, key=to, aux=message id
  // Site failure injection -- dist/.
  SiteCrash,    ///< site
  SiteRecover,  ///< site
};

[[nodiscard]] const char* to_string(TraceKind kind) noexcept;

/// One recorded event.  POD on purpose: recording must not allocate.
struct TraceEvent {
  std::uint64_t seq = 0;   ///< global total order (assigned at record time)
  std::int64_t ts_us = 0;  ///< microseconds since the tracer's epoch
  std::uint32_t tid = 0;   ///< dense per-tracer thread index
  SiteId site = 0;         ///< site the event happened at (0 when single-site)
  TraceKind kind = TraceKind::TxnBegin;
  TxnId txn = kInvalidTxn;
  Key key = 0;
  double a = 0;  ///< primary scalar payload (value, amount, Z, ...)
  double b = 0;  ///< secondary scalar payload (limit, Z total, ...)
  std::uint64_t aux = 0;   ///< small integer payload (mode bits, msg id, ...)
  std::uint64_t aux2 = 0;  ///< second integer payload (parent, peer, ...)
};

/// Lock-mode bits carried in `aux` of the Lock* events.
inline constexpr std::uint64_t kTraceModeExclusive = 1;
inline constexpr std::uint64_t kTraceGrantFuzzy = 2;

class Tracer;

/// Incremental consumer of one Tracer's streams (Tracer::subscribe()).
///
/// drain() copies everything recorded since the previous drain() and returns
/// it with a *stable horizon*: seq numbers are handed out inside each ring's
/// critical section, so once drain() has visited every ring, any event with
/// `seq < stable_before` is either in this batch, was in an earlier batch, or
/// has been counted in `dropped` (overwritten or clear()ed before the cursor
/// reached it).  Events at or past the horizon may still be mid-record on
/// some thread; a strict-order consumer buffers them for the next drain.
///
/// Not thread-safe (one draining thread per subscription); the subscription
/// must not outlive its Tracer.
class TraceSubscription {
 public:
  struct Batch {
    std::vector<TraceEvent> events;   ///< new events, sorted by seq
    std::uint64_t stable_before = 0;  ///< every seq below this is final
    std::uint64_t dropped = 0;        ///< cumulative events lost to this
                                      ///< subscription (overwrites + clears)
  };

  /// Collect everything new.  One short lock per ring; never blocks a
  /// recorder for longer than one slot copy.
  [[nodiscard]] Batch drain();

 private:
  friend class Tracer;
  /// Snapshots each existing ring's oldest retained index so events lost
  /// BEFORE the subscription (overwrites, clear()s) are not charged to
  /// `dropped`; rings that appear later start at their birth (index 0).
  explicit TraceSubscription(const Tracer& tracer);

  const Tracer& tracer_;
  std::vector<std::uint64_t> consumed_;  ///< per-ring cursor, `written` units
  std::uint64_t dropped_ = 0;
};

class Tracer {
 public:
  /// `per_thread_capacity`: ring size, in events, of each recording thread.
  explicit Tracer(std::size_t per_thread_capacity = kDefaultCapacity);
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Record one event.  Thread-safe; assigns seq/ts/tid.  Never blocks on
  /// other recorders (each thread owns its ring).
  void record(TraceKind kind, SiteId site, TxnId txn = kInvalidTxn,
              Key key = 0, double a = 0, double b = 0, std::uint64_t aux = 0,
              std::uint64_t aux2 = 0);

  /// Null-safe convenience for instrumented call sites: one pointer check
  /// when tracing is off.
  static void emit(Tracer* tracer, TraceKind kind, SiteId site,
                   TxnId txn = kInvalidTxn, Key key = 0, double a = 0,
                   double b = 0, std::uint64_t aux = 0,
                   std::uint64_t aux2 = 0) {
    if (tracer != nullptr) tracer->record(kind, site, txn, key, a, b, aux, aux2);
  }

  /// Merge every thread's ring into one stream ordered by seq.
  /// Non-destructive: events stay in their rings until overwritten.
  [[nodiscard]] std::vector<TraceEvent> collect() const;

  /// Events lost to ring overwrites since the last clear().  A nonzero value
  /// means collect() is a suffix of the true history; certifiers report such
  /// traces as incomplete.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Events currently retained across all rings.
  [[nodiscard]] std::size_t size() const;

  /// Drop all retained events and reset the drop counters.  The seq counter
  /// keeps climbing so pre-clear stragglers can never alias post-clear order.
  /// Live subscriptions see cleared-but-undrained events as dropped.
  void clear();

  /// New live consumer; starts at the oldest events still retained.  The
  /// subscription must not outlive the tracer.
  [[nodiscard]] std::unique_ptr<TraceSubscription> subscribe() const {
    return std::unique_ptr<TraceSubscription>(new TraceSubscription(*this));
  }

  /// Microseconds since this tracer's epoch -- same clock as
  /// TraceEvent::ts_us, so consumers can compute event-to-now lag.
  [[nodiscard]] std::int64_t now_us() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Publish ring health into `registry` as trace.dropped_events (counter)
  /// and trace.retained_events (gauge).  The registry must outlive the
  /// tracer (the destructor unregisters).  At most one registry at a time.
  void attach_metrics(obs::MetricsRegistry* registry);

  static constexpr std::size_t kDefaultCapacity = 1 << 16;

 private:
  struct Ring {
    mutable OrderedMutex<LockRank::kTraceRing> mu;  ///< rank kTraceRing: leaf (emit runs under stripe/inbox locks)
    std::vector<TraceEvent> slots;  ///< grows to capacity, then wraps
    std::uint64_t written = 0;      ///< total events ever written
    std::uint64_t base = 0;         ///< events discarded by clear()
  };

  friend class TraceSubscription;

  [[nodiscard]] Ring* ring_for_current_thread();

  const std::uint64_t id_;  ///< process-unique, never reused (cache key)
  const std::size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::uint64_t> next_seq_{1};
  mutable OrderedMutex<LockRank::kTraceRegistry> registry_mu_;  ///< rank kTraceRegistry: taken before each Ring::mu
  std::vector<std::unique_ptr<Ring>> rings_;
  obs::MetricsRegistry* metrics_ = nullptr;  ///< attach_metrics target
  std::uint64_t collector_id_ = 0;
};

}  // namespace atp
