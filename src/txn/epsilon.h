// Epsilon-specification types (Section 1.1).
//
// Each epsilon transaction (ET) carries an eps-spec: an *import* inconsistency
// limit if it is a query ET (how much fuzziness it may observe) and an
// *export* inconsistency limit if it is an update ET (how much fuzziness its
// uncommitted writes may leak to concurrent queries).  Classic serializable
// transactions are the special case eps = 0; unrestricted chopped pieces use
// eps = infinity to bypass divergence control entirely (Section 2.2).
#pragma once

#include "common/types.h"

namespace atp {

struct EpsilonSpec {
  Value import_limit = 0;  ///< max fuzziness a query ET may accumulate
  Value export_limit = 0;  ///< max fuzziness an update ET may leak

  [[nodiscard]] static EpsilonSpec serializable() noexcept { return {0, 0}; }
  [[nodiscard]] static EpsilonSpec unlimited() noexcept {
    return {kInfiniteLimit, kInfiniteLimit};
  }
  [[nodiscard]] static EpsilonSpec symmetric(Value eps) noexcept {
    return {eps, eps};
  }
  [[nodiscard]] static EpsilonSpec importing(Value eps) noexcept {
    return {eps, 0};
  }
  [[nodiscard]] static EpsilonSpec exporting(Value eps) noexcept {
    return {0, eps};
  }

  friend bool operator==(const EpsilonSpec&, const EpsilonSpec&) = default;
};

/// The eps-spec a `kind` ET runs with when its Limit is `limit`: query ETs
/// import, update ETs export (Section 1.1).
[[nodiscard]] inline EpsilonSpec spec_for(TxnKind kind, Value limit) noexcept {
  return kind == TxnKind::Query ? EpsilonSpec::importing(limit)
                                : EpsilonSpec::exporting(limit);
}

}  // namespace atp
