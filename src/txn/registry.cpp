#include "txn/registry.h"

#include <cassert>

namespace atp {

TxnId EtRegistry::begin(TxnKind kind, EpsilonSpec spec, TxnId parent) {
  const TxnId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(mu_);
  live_.emplace(id, Entry{id, kind, parent, spec, 0, 0});
  return id;
}

bool EtRegistry::try_charge_pair(TxnId query_et, TxnId update_et,
                                 Value amount) {
  if (amount < 0) return false;
  std::lock_guard lock(mu_);
  auto qit = live_.find(query_et);
  auto uit = live_.find(update_et);
  if (qit == live_.end() || uit == live_.end()) return false;
  Entry& q = qit->second;
  Entry& u = uit->second;
  if (q.imported + amount > q.spec.import_limit) return false;
  if (u.exported + amount > u.spec.export_limit) return false;
  q.imported += amount;
  u.exported += amount;
  Tracer::emit(tracer_, TraceKind::FuzzImport, site_, query_et, 0, amount,
               q.spec.import_limit, 0, update_et);
  Tracer::emit(tracer_, TraceKind::FuzzExport, site_, update_et, 0, amount,
               u.spec.export_limit, 0, query_et);
  return true;
}

bool EtRegistry::try_charge_multi(std::span<const TxnId> queries,
                                  TxnId update_et, Value amount) {
  if (amount < 0) return false;
  if (amount == 0) return true;
  std::lock_guard lock(mu_);
  auto uit = live_.find(update_et);
  if (uit == live_.end()) return false;
  Entry& u = uit->second;

  std::vector<Entry*> qs;
  qs.reserve(queries.size());
  for (TxnId q : queries) {
    auto qit = live_.find(q);
    if (qit == live_.end()) continue;  // ended query: lock gone or going
    qs.push_back(&qit->second);
  }
  if (u.exported + amount * double(qs.size()) > u.spec.export_limit)
    return false;
  for (Entry* q : qs) {
    if (q->imported + amount > q->spec.import_limit) return false;
  }
  for (Entry* q : qs) {
    q->imported += amount;
    Tracer::emit(tracer_, TraceKind::FuzzImport, site_, q->id, 0, amount,
                 q->spec.import_limit, 0, update_et);
    Tracer::emit(tracer_, TraceKind::FuzzExport, site_, update_et, 0, amount,
                 u.spec.export_limit, 0, q->id);
  }
  u.exported += amount * double(qs.size());
  return true;
}

bool EtRegistry::can_charge_multi(std::span<const TxnId> queries,
                                  TxnId update_et, Value amount) const {
  if (amount < 0) return false;
  if (amount == 0) return true;
  std::lock_guard lock(mu_);
  auto uit = live_.find(update_et);
  if (uit == live_.end()) return false;
  const Entry& u = uit->second;
  std::size_t n = 0;
  for (TxnId q : queries) {
    auto qit = live_.find(q);
    if (qit == live_.end()) continue;
    if (qit->second.imported + amount > qit->second.spec.import_limit)
      return false;
    ++n;
  }
  return u.exported + amount * double(n) <= u.spec.export_limit;
}

bool EtRegistry::try_self_import(TxnId query_et, Value amount) {
  if (amount < 0) return false;
  std::lock_guard lock(mu_);
  auto it = live_.find(query_et);
  if (it == live_.end()) return false;
  Entry& q = it->second;
  if (q.imported + amount > q.spec.import_limit) return false;
  q.imported += amount;
  Tracer::emit(tracer_, TraceKind::FuzzImport, site_, query_et, 0, amount,
               q.spec.import_limit, 0, kInvalidTxn);
  return true;
}

std::optional<EtRegistry::Entry> EtRegistry::get(TxnId id) const {
  std::lock_guard lock(mu_);
  auto it = live_.find(id);
  if (it == live_.end()) return std::nullopt;
  return it->second;
}

TxnKind EtRegistry::kind_of(TxnId id) const {
  std::lock_guard lock(mu_);
  auto it = live_.find(id);
  // Ended/unknown ETs are treated as updates: the conservative choice -- an
  // unknown partner never justifies a fuzzy grant.
  return it == live_.end() ? TxnKind::Update : it->second.kind;
}

Value EtRegistry::fuzziness_of(TxnId id) const {
  std::lock_guard lock(mu_);
  auto it = live_.find(id);
  if (it == live_.end()) return 0;
  return it->second.imported + it->second.exported;
}

void EtRegistry::set_spec(TxnId id, EpsilonSpec spec) {
  std::lock_guard lock(mu_);
  auto it = live_.find(id);
  if (it != live_.end()) it->second.spec = spec;
}

Value EtRegistry::end_commit(TxnId id) {
  std::lock_guard lock(mu_);
  auto it = live_.find(id);
  if (it == live_.end()) return 0;
  const Value z = it->second.imported + it->second.exported;
  if (it->second.parent != kInvalidTxn) parent_z_[it->second.parent] += z;
  live_.erase(it);
  return z;
}

void EtRegistry::end_abort(TxnId id) {
  std::lock_guard lock(mu_);
  live_.erase(id);
}

Value EtRegistry::parent_fuzziness(TxnId parent) const {
  std::lock_guard lock(mu_);
  auto it = parent_z_.find(parent);
  return it == parent_z_.end() ? 0 : it->second;
}

void EtRegistry::forget_parent(TxnId parent) {
  std::lock_guard lock(mu_);
  parent_z_.erase(parent);
}

std::size_t EtRegistry::live_count() const {
  std::lock_guard lock(mu_);
  return live_.size();
}

}  // namespace atp
