#include "txn/registry.h"

#include <cassert>
#include <cmath>

namespace atp {

// relaxed-ok(begin): every relaxed access in this file is one of three
// audited patterns.  (1) Slot budget fields (imported/exported and the
// limits) are mutated only under charge_mu_ inside a write_begin() /
// write_end() epoch window -- both acq_rel RMWs, so the odd-epoch store
// cannot sink below them nor the data stores hoist above; lock-free readers
// go through epoch_consistent(), which pairs an acquire fence with an
// even-epoch recheck, so a torn read is detected and retried, never used.
// (2) ChargeCounters telemetry cells are mutated under charge_mu_ or
// struct_mu_ and read as statistics where torn totals are tolerated.
// (3) next_id_ tickets need the RMW's atomicity only (uniqueness, not
// ordering).

namespace {
/// Relaxed add on an atomic<double> telemetry cell (mutations are already
/// serialized by the caller's lock; the atomic is for lock-free readers).
inline void stat_add(std::atomic<double>& cell, double v) {
  cell.fetch_add(v, std::memory_order_relaxed);
}
inline void stat_inc(std::atomic<std::uint64_t>& cell) {
  cell.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

TxnId EtRegistry::begin(TxnKind kind, EpsilonSpec spec, TxnId parent) {
  const TxnId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  auto slot = std::make_unique<Slot>();
  slot->id = id;
  slot->kind = kind;
  slot->parent = parent;
  slot->import_limit.store(spec.import_limit, std::memory_order_relaxed);
  slot->export_limit.store(spec.export_limit, std::memory_order_relaxed);
  std::unique_lock lock(struct_mu_);
  live_.emplace(id, std::move(slot));
  return id;
}

bool EtRegistry::try_charge_pair(TxnId query_et, TxnId update_et,
                                 Value amount) {
  if (amount < 0) return false;
  std::shared_lock slock(struct_mu_);
  Slot* q = find(query_et);
  Slot* u = find(update_et);
  if (!q || !u) return false;
  std::lock_guard clock(charge_mu_);
  const Value q_imp = q->imported.load(std::memory_order_relaxed);
  const Value u_exp = u->exported.load(std::memory_order_relaxed);
  const Value q_lim = q->import_limit.load(std::memory_order_relaxed);
  const Value u_lim = u->export_limit.load(std::memory_order_relaxed);
  if (q_imp + amount > q_lim) {
    stat_inc(charge_counters_.rejected_import);
    return false;
  }
  if (u_exp + amount > u_lim) {
    stat_inc(charge_counters_.rejected_export);
    return false;
  }
  write_begin();
  q->imported.store(q_imp + amount, std::memory_order_relaxed);
  u->exported.store(u_exp + amount, std::memory_order_relaxed);
  write_end();
  stat_inc(charge_counters_.charges_ok);
  stat_add(charge_counters_.import_charged, amount);
  stat_add(charge_counters_.export_charged, amount);
  Tracer::emit(tracer_, TraceKind::FuzzImport, site_, query_et, 0, amount,
               q_lim, 0, update_et);
  Tracer::emit(tracer_, TraceKind::FuzzExport, site_, update_et, 0, amount,
               u_lim, 0, query_et);
  return true;
}

bool EtRegistry::try_charge_multi(std::span<const TxnId> queries,
                                  TxnId update_et, Value amount) {
  if (amount < 0) return false;
  if (amount == 0) return true;
  std::shared_lock slock(struct_mu_);
  Slot* u = find(update_et);
  if (!u) return false;

  std::vector<Slot*> qs;
  qs.reserve(queries.size());
  for (TxnId q : queries) {
    Slot* s = find(q);
    if (!s) continue;  // ended query: lock gone or going
    qs.push_back(s);
  }
  std::lock_guard clock(charge_mu_);
  const Value u_exp = u->exported.load(std::memory_order_relaxed);
  const Value u_lim = u->export_limit.load(std::memory_order_relaxed);
  if (u_exp + amount * double(qs.size()) > u_lim) {
    stat_inc(charge_counters_.rejected_export);
    return false;
  }
  for (Slot* q : qs) {
    if (q->imported.load(std::memory_order_relaxed) + amount >
        q->import_limit.load(std::memory_order_relaxed)) {
      stat_inc(charge_counters_.rejected_import);
      return false;
    }
  }
  write_begin();
  for (Slot* q : qs) {
    q->imported.store(q->imported.load(std::memory_order_relaxed) + amount,
                      std::memory_order_relaxed);
  }
  u->exported.store(u_exp + amount * double(qs.size()),
                    std::memory_order_relaxed);
  write_end();
  stat_inc(charge_counters_.charges_ok);
  stat_add(charge_counters_.import_charged, amount * double(qs.size()));
  stat_add(charge_counters_.export_charged, amount * double(qs.size()));
  for (Slot* q : qs) {
    Tracer::emit(tracer_, TraceKind::FuzzImport, site_, q->id, 0, amount,
                 q->import_limit.load(std::memory_order_relaxed), 0,
                 update_et);
    Tracer::emit(tracer_, TraceKind::FuzzExport, site_, update_et, 0, amount,
                 u_lim, 0, q->id);
  }
  return true;
}

bool EtRegistry::can_charge_multi(std::span<const TxnId> queries,
                                  TxnId update_et, Value amount) const {
  if (amount < 0) return false;
  if (amount == 0) return true;
  std::shared_lock slock(struct_mu_);
  const Slot* u = find(update_et);
  if (!u) return false;
  // Epoch-consistent feasibility check: every (counter, limit) pair is read
  // inside one even epoch, so a concurrent charge can never make us compare
  // a pre-charge counter against a post-charge limit (or vice versa).
  const bool feasible = epoch_consistent([&]() -> bool {
    std::size_t n = 0;
    for (TxnId q : queries) {
      const Slot* s = find(q);
      if (!s) continue;
      if (s->imported.load(std::memory_order_relaxed) + amount >
          s->import_limit.load(std::memory_order_relaxed)) {
        return false;
      }
      ++n;
    }
    return u->exported.load(std::memory_order_relaxed) + amount * double(n) <=
           u->export_limit.load(std::memory_order_relaxed);
  });
  if (!feasible) stat_inc(charge_counters_.rejected_admission);
  return feasible;
}

bool EtRegistry::try_self_import(TxnId query_et, Value amount) {
  if (amount < 0) return false;
  std::shared_lock slock(struct_mu_);
  Slot* q = find(query_et);
  if (!q) return false;
  std::lock_guard clock(charge_mu_);
  const Value imp = q->imported.load(std::memory_order_relaxed);
  const Value lim = q->import_limit.load(std::memory_order_relaxed);
  if (imp + amount > lim) {
    stat_inc(charge_counters_.rejected_import);
    return false;
  }
  write_begin();
  q->imported.store(imp + amount, std::memory_order_relaxed);
  write_end();
  stat_inc(charge_counters_.charges_ok);
  stat_add(charge_counters_.import_charged, amount);
  Tracer::emit(tracer_, TraceKind::FuzzImport, site_, query_et, 0, amount,
               lim, 0, kInvalidTxn);
  return true;
}

std::optional<EtRegistry::Entry> EtRegistry::get(TxnId id) const {
  std::shared_lock lock(struct_mu_);
  const Slot* s = find(id);
  if (!s) return std::nullopt;
  return epoch_consistent([&]() -> Entry {
    Entry e;
    e.id = s->id;
    e.kind = s->kind;
    e.parent = s->parent;
    e.spec.import_limit = s->import_limit.load(std::memory_order_relaxed);
    e.spec.export_limit = s->export_limit.load(std::memory_order_relaxed);
    e.imported = s->imported.load(std::memory_order_relaxed);
    e.exported = s->exported.load(std::memory_order_relaxed);
    return e;
  });
}

TxnKind EtRegistry::kind_of(TxnId id) const {
  std::shared_lock lock(struct_mu_);
  const Slot* s = find(id);
  // Ended/unknown ETs are treated as updates: the conservative choice -- an
  // unknown partner never justifies a fuzzy grant.
  return s ? s->kind : TxnKind::Update;
}

Value EtRegistry::fuzziness_of(TxnId id) const {
  std::shared_lock lock(struct_mu_);
  const Slot* s = find(id);
  if (!s) return 0;
  return epoch_consistent([&]() -> Value {
    return s->imported.load(std::memory_order_relaxed) +
           s->exported.load(std::memory_order_relaxed);
  });
}

void EtRegistry::set_spec(TxnId id, EpsilonSpec spec) {
  std::shared_lock slock(struct_mu_);
  Slot* s = find(id);
  if (!s) return;
  std::lock_guard clock(charge_mu_);
  write_begin();
  s->import_limit.store(spec.import_limit, std::memory_order_relaxed);
  s->export_limit.store(spec.export_limit, std::memory_order_relaxed);
  write_end();
}

Value EtRegistry::end_commit(TxnId id) {
  std::unique_lock lock(struct_mu_);
  auto it = live_.find(id);
  if (it == live_.end()) return 0;
  // Exclusive struct lock: no charge holds the shared lock, so the counters
  // are quiescent and plain relaxed loads are the final values.
  const Slot& s = *it->second;
  const Value z = s.imported.load(std::memory_order_relaxed) +
                  s.exported.load(std::memory_order_relaxed);
  if (s.parent != kInvalidTxn) parent_z_[s.parent] += z;
  // Retirement roll-up for the obs layer: fold the ET's budget consumption
  // into the per-kind cumulative telemetry (its own slot is about to go).
  // Infinite limits are tallied apart so utilization ratios stay meaningful.
  if (s.kind == TxnKind::Query) {
    const Value lim = s.import_limit.load(std::memory_order_relaxed);
    stat_inc(charge_counters_.retired_query_count);
    if (std::isinf(lim)) {
      stat_inc(charge_counters_.retired_query_unlimited);
    } else {
      stat_add(charge_counters_.retired_query_used,
               s.imported.load(std::memory_order_relaxed));
      stat_add(charge_counters_.retired_query_limit, lim);
    }
  } else {
    const Value lim = s.export_limit.load(std::memory_order_relaxed);
    stat_inc(charge_counters_.retired_update_count);
    if (std::isinf(lim)) {
      stat_inc(charge_counters_.retired_update_unlimited);
    } else {
      stat_add(charge_counters_.retired_update_used,
               s.exported.load(std::memory_order_relaxed));
      stat_add(charge_counters_.retired_update_limit, lim);
    }
  }
  live_.erase(it);
  return z;
}

void EtRegistry::end_abort(TxnId id) {
  std::unique_lock lock(struct_mu_);
  live_.erase(id);
}

Value EtRegistry::parent_fuzziness(TxnId parent) const {
  std::shared_lock lock(struct_mu_);
  auto it = parent_z_.find(parent);
  return it == parent_z_.end() ? 0 : it->second;
}

void EtRegistry::forget_parent(TxnId parent) {
  std::unique_lock lock(struct_mu_);
  parent_z_.erase(parent);
}

std::size_t EtRegistry::live_count() const {
  std::shared_lock lock(struct_mu_);
  return live_.size();
}

std::vector<EtRegistry::Entry> EtRegistry::snapshot_all() const {
  std::shared_lock lock(struct_mu_);
  return epoch_consistent([&]() -> std::vector<Entry> {
    std::vector<Entry> out;
    out.reserve(live_.size());
    for (const auto& kv : live_) {
      const Slot& s = *kv.second;
      Entry e;
      e.id = s.id;
      e.kind = s.kind;
      e.parent = s.parent;
      e.spec.import_limit = s.import_limit.load(std::memory_order_relaxed);
      e.spec.export_limit = s.export_limit.load(std::memory_order_relaxed);
      e.imported = s.imported.load(std::memory_order_relaxed);
      e.exported = s.exported.load(std::memory_order_relaxed);
      out.push_back(e);
    }
    return out;
  });
}

EtRegistry::ChargeStats EtRegistry::charge_stats() const {
  const ChargeCounters& c = charge_counters_;
  ChargeStats s;
  s.charges_ok = c.charges_ok.load(std::memory_order_relaxed);
  s.rejected_import = c.rejected_import.load(std::memory_order_relaxed);
  s.rejected_export = c.rejected_export.load(std::memory_order_relaxed);
  s.rejected_admission = c.rejected_admission.load(std::memory_order_relaxed);
  s.import_charged = c.import_charged.load(std::memory_order_relaxed);
  s.export_charged = c.export_charged.load(std::memory_order_relaxed);
  s.retired_query_count = c.retired_query_count.load(std::memory_order_relaxed);
  s.retired_query_unlimited =
      c.retired_query_unlimited.load(std::memory_order_relaxed);
  s.retired_query_used = c.retired_query_used.load(std::memory_order_relaxed);
  s.retired_query_limit = c.retired_query_limit.load(std::memory_order_relaxed);
  s.retired_update_count =
      c.retired_update_count.load(std::memory_order_relaxed);
  s.retired_update_unlimited =
      c.retired_update_unlimited.load(std::memory_order_relaxed);
  s.retired_update_used = c.retired_update_used.load(std::memory_order_relaxed);
  s.retired_update_limit =
      c.retired_update_limit.load(std::memory_order_relaxed);
  return s;
}

// relaxed-ok(end)

}  // namespace atp
