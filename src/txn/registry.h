// Registry of live epsilon transactions and their fuzziness accounts.
//
// Divergence control needs, at every read-write conflict, an atomic check-
// and-charge across *two* budgets: the query side's import account and the
// update side's export account (Section 1.1).  The registry owns both and
// performs the pair charge under one mutex so budgets can never be
// overcommitted by racing conflicts.
//
// Pieces of a chopped transaction register with a `parent` id; committed
// fuzziness rolls up into per-parent totals so the engine can verify
// Lemma 1 (Z_t = sum of Z_p) and Condition 2 at runtime.
#pragma once

#include <atomic>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "trace/tracer.h"
#include "txn/epsilon.h"

namespace atp {

class EtRegistry {
 public:
  struct Entry {
    TxnId id = kInvalidTxn;
    TxnKind kind = TxnKind::Update;
    TxnId parent = kInvalidTxn;  ///< original transaction, if a chopped piece
    EpsilonSpec spec;
    Value imported = 0;  ///< fuzziness observed so far (query side)
    Value exported = 0;  ///< fuzziness leaked so far (update side)
  };

  /// Register a new ET and return its id.  `parent` links a chopped piece to
  /// its original transaction (kInvalidTxn for unchopped ETs).
  TxnId begin(TxnKind kind, EpsilonSpec spec, TxnId parent = kInvalidTxn);

  /// Allocate a fresh id without registering an ET -- used as the `parent`
  /// handle of a chopped original transaction, which never runs itself.
  TxnId allocate_id() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Atomically charge `amount` of fuzziness to the query ET's import
  /// account and the update ET's export account.  Returns false -- with no
  /// state change -- if either account would exceed its limit.
  bool try_charge_pair(TxnId query_et, TxnId update_et, Value amount);

  /// Multi-query variant: each query imports `amount`; the update exports
  /// `amount` once per query (one read-write conflict per pair).  All-or-
  /// nothing under one mutex.  Queries absent from the registry (already
  /// ended) are skipped -- their S locks are gone or going.
  bool try_charge_multi(std::span<const TxnId> queries, TxnId update_et,
                        Value amount);

  /// Feasibility peek: would try_charge_multi succeed right now?  No state
  /// change.  Used by the DC resolver to admit an update's X lock whose
  /// write will be charged (for real) at write time.
  [[nodiscard]] bool can_charge_multi(std::span<const TxnId> queries,
                                      TxnId update_et, Value amount) const;

  /// Charge `amount` to the query ET's own import account with no export
  /// counterpart -- optimistic divergence control validates against
  /// already-committed updates, whose export accounts are gone.  All-or-
  /// nothing against the import limit.
  bool try_self_import(TxnId query_et, Value amount);

  /// Snapshot of an entry (copies; absent if ended).
  [[nodiscard]] std::optional<Entry> get(TxnId id) const;

  [[nodiscard]] TxnKind kind_of(TxnId id) const;

  /// Total fuzziness of the ET: imported + exported (for a piece, its Z_p).
  [[nodiscard]] Value fuzziness_of(TxnId id) const;

  /// Replace the ET's epsilon spec (dynamic limit distribution adjusts piece
  /// budgets between executions).
  void set_spec(TxnId id, EpsilonSpec spec);

  /// Commit-side roll-up: fold the piece's accumulated fuzziness into its
  /// parent's running Z_t, then drop the entry.  Returns the piece's Z_p.
  Value end_commit(TxnId id);

  /// Abort-side teardown: the piece's fuzziness evaporates with it (the
  /// paper: "the piece rolls back and resets Z to zero, and retries").
  void end_abort(TxnId id);

  /// Accumulated Z_t of an original transaction (sum over committed pieces).
  [[nodiscard]] Value parent_fuzziness(TxnId parent) const;

  /// Drop the parent accumulator (after the original txn fully commits).
  void forget_parent(TxnId parent);

  [[nodiscard]] std::size_t live_count() const;

  /// Attach a tracer: every successful import/export charge is recorded as a
  /// fuzziness-ledger event (amount + the limit in force), which is what the
  /// ESR certifier replays.
  void set_trace(Tracer* tracer, SiteId site) noexcept {
    tracer_ = tracer;
    site_ = site;
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<TxnId, Entry> live_;
  std::unordered_map<TxnId, Value> parent_z_;  // Z_t accumulators
  std::atomic<TxnId> next_id_{1};
  Tracer* tracer_ = nullptr;
  SiteId site_ = 0;
};

}  // namespace atp
