// Registry of live epsilon transactions and their fuzziness accounts.
//
// Divergence control needs, at every read-write conflict, an atomic check-
// and-charge across *two* budgets: the query side's import account and the
// update side's export account (Section 1.1).  The registry performs the
// pair/multi charge all-or-nothing under one charge mutex so budgets can
// never be overcommitted by racing conflicts.
//
// Hot-path layout: with the lock table sharded (lock/lock_manager.h), fuzzy
// grants on different stripes reach this ledger concurrently, so the per-ET
// import/export counters live in cache-line-padded atomics.  Mutations stay
// serialized behind charge_mu_, but the *read* paths divergence control hits
// on every conflict evaluation -- the can_charge_multi feasibility peek,
// kind_of, fuzziness_of -- never take it.  Readers get a consistent
// (counter, limit) snapshot via an epoch counter (seqlock discipline): a
// charge bumps the epoch to odd, applies its stores, bumps back to even;
// a reader retries until it sees the same even epoch on both sides of its
// loads.  Torn eps-spec checks (counter from before a charge, limit from
// after) are therefore impossible, which is what keeps the DC admission
// decision sound under cross-stripe concurrency -- see DESIGN.md section 7.
//
// Pieces of a chopped transaction register with a `parent` id; committed
// fuzziness rolls up into per-parent totals so the engine can verify
// Lemma 1 (Z_t = sum of Z_p) and Condition 2 at runtime.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "trace/tracer.h"
#include "txn/epsilon.h"

#include "common/ordered_lock.h"

// ThreadSanitizer does not model standalone fences (GCC hard-errors on
// atomic_thread_fence under -fsanitize=thread); the seqlock read below
// substitutes an instrumented RMW when TSan is active.
#if defined(__SANITIZE_THREAD__)
#define ATP_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ATP_TSAN 1
#endif
#endif

namespace atp {

class EtRegistry {
 public:
  /// Read-only snapshot of a live ET (epoch-consistent copy).
  struct Entry {
    TxnId id = kInvalidTxn;
    TxnKind kind = TxnKind::Update;
    TxnId parent = kInvalidTxn;  ///< original transaction, if a chopped piece
    EpsilonSpec spec;
    Value imported = 0;  ///< fuzziness observed so far (query side)
    Value exported = 0;  ///< fuzziness leaked so far (update side)
  };

  /// Register a new ET and return its id.  `parent` links a chopped piece to
  /// its original transaction (kInvalidTxn for unchopped ETs).
  TxnId begin(TxnKind kind, EpsilonSpec spec, TxnId parent = kInvalidTxn);

  /// Allocate a fresh id without registering an ET -- used as the `parent`
  /// handle of a chopped original transaction, which never runs itself.
  TxnId allocate_id() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);  // relaxed-ok: uniqueness, not ordering
  }

  /// Atomically charge `amount` of fuzziness to the query ET's import
  /// account and the update ET's export account.  Returns false -- with no
  /// state change -- if either account would exceed its limit.
  bool try_charge_pair(TxnId query_et, TxnId update_et, Value amount);

  /// Multi-query variant: each query imports `amount`; the update exports
  /// `amount` once per query (one read-write conflict per pair).  All-or-
  /// nothing under one mutex.  Queries absent from the registry (already
  /// ended) are skipped -- their S locks are gone or going.
  bool try_charge_multi(std::span<const TxnId> queries, TxnId update_et,
                        Value amount);

  /// Feasibility peek: would try_charge_multi succeed right now?  No state
  /// change and no charge-mutex acquisition (epoch-consistent reads only).
  /// Used by the DC resolver to admit an update's X lock whose write will be
  /// charged (for real) at write time.
  [[nodiscard]] bool can_charge_multi(std::span<const TxnId> queries,
                                      TxnId update_et, Value amount) const;

  /// Charge `amount` to the query ET's own import account with no export
  /// counterpart -- optimistic divergence control validates against
  /// already-committed updates, whose export accounts are gone.  All-or-
  /// nothing against the import limit.
  bool try_self_import(TxnId query_et, Value amount);

  /// Cumulative charge/rejection telemetry plus roll-ups of ended ETs,
  /// maintained inline (relaxed atomics, all mutated under existing locks)
  /// so the obs layer can report epsilon budgets as an operational quantity.
  /// "used"/"limit" are per-kind: a query's budget is its import side, an
  /// update's its export side; ETs whose limit on that side is infinite are
  /// counted in `*_unlimited` and excluded from the used/limit sums so a
  /// utilization ratio stays meaningful.
  struct ChargeStats {
    std::uint64_t charges_ok = 0;          ///< successful charge operations
    std::uint64_t rejected_import = 0;     ///< refusals: import limit hit
    std::uint64_t rejected_export = 0;     ///< refusals: export limit hit
    std::uint64_t rejected_admission = 0;  ///< DC feasibility peeks refused
    double import_charged = 0;             ///< total fuzziness imported
    double export_charged = 0;             ///< total fuzziness exported
    std::uint64_t retired_query_count = 0;
    std::uint64_t retired_query_unlimited = 0;
    double retired_query_used = 0;
    double retired_query_limit = 0;
    std::uint64_t retired_update_count = 0;
    std::uint64_t retired_update_unlimited = 0;
    double retired_update_used = 0;
    double retired_update_limit = 0;
  };

  [[nodiscard]] ChargeStats charge_stats() const;

  /// Snapshot of an entry (copies; absent if ended).
  [[nodiscard]] std::optional<Entry> get(TxnId id) const;

  /// Epoch-consistent copy of every live ET -- the obs layer's bulk read.
  /// All (counter, limit) pairs are captured inside one even seqlock epoch,
  /// so a concurrent all-or-nothing charge is either fully visible in the
  /// result or not at all (no torn epsilon-budget pairs).
  [[nodiscard]] std::vector<Entry> snapshot_all() const;

  [[nodiscard]] TxnKind kind_of(TxnId id) const;

  /// Total fuzziness of the ET: imported + exported (for a piece, its Z_p).
  [[nodiscard]] Value fuzziness_of(TxnId id) const;

  /// Replace the ET's epsilon spec (dynamic limit distribution adjusts piece
  /// budgets between executions).
  void set_spec(TxnId id, EpsilonSpec spec);

  /// Commit-side roll-up: fold the piece's accumulated fuzziness into its
  /// parent's running Z_t, then drop the entry.  Returns the piece's Z_p.
  Value end_commit(TxnId id);

  /// Abort-side teardown: the piece's fuzziness evaporates with it (the
  /// paper: "the piece rolls back and resets Z to zero, and retries").
  void end_abort(TxnId id);

  /// Accumulated Z_t of an original transaction (sum over committed pieces).
  [[nodiscard]] Value parent_fuzziness(TxnId parent) const;

  /// Drop the parent accumulator (after the original txn fully commits).
  void forget_parent(TxnId parent);

  [[nodiscard]] std::size_t live_count() const;

  /// Attach a tracer: every successful import/export charge is recorded as a
  /// fuzziness-ledger event (amount + the limit in force), which is what the
  /// ESR certifier replays.
  void set_trace(Tracer* tracer, SiteId site) noexcept {
    tracer_ = tracer;
    site_ = site;
  }

 private:
  /// Live ET record.  One cache line per ET: the import/export counters are
  /// the write-hot fields, and padding keeps two ETs charged from different
  /// lock stripes from false-sharing.  id/kind/parent are immutable after
  /// begin(); the limits and counters are atomics mutated only under
  /// charge_mu_ inside an epoch window, and read lock-free under the epoch
  /// protocol.
  struct alignas(64) Slot {
    TxnId id = kInvalidTxn;
    TxnKind kind = TxnKind::Update;
    TxnId parent = kInvalidTxn;
    std::atomic<Value> import_limit{0};
    std::atomic<Value> export_limit{0};
    std::atomic<Value> imported{0};
    std::atomic<Value> exported{0};
  };

  /// Begin an epoch-write window (caller holds charge_mu_).
  void write_begin() noexcept {
    epoch_.fetch_add(1, std::memory_order_acq_rel);  // now odd
  }
  void write_end() noexcept {
    epoch_.fetch_add(1, std::memory_order_acq_rel);  // even again
  }

  /// Run `read` until it executes entirely inside one even epoch.
  template <typename F>
  auto epoch_consistent(F&& read) const {
    for (;;) {
      const std::uint64_t e1 = epoch_.load(std::memory_order_acquire);
      if (e1 & 1) {  // charge in flight
        std::this_thread::yield();
        continue;
      }
      auto result = read();
#if defined(ATP_TSAN)
      // Fence-free variant: a seq_cst RMW on the epoch orders the data loads
      // above before the recheck and is fully TSan-instrumented.
      if (epoch_.fetch_add(0, std::memory_order_seq_cst) == e1) return result;
#else
      std::atomic_thread_fence(std::memory_order_acquire);
      if (epoch_.load(std::memory_order_acquire) == e1) return result;
#endif
    }
  }

  [[nodiscard]] const Slot* find(TxnId id) const {
    auto it = live_.find(id);
    return it == live_.end() ? nullptr : it->second.get();
  }
  [[nodiscard]] Slot* find(TxnId id) {
    auto it = live_.find(id);
    return it == live_.end() ? nullptr : it->second.get();
  }

  // Guards the maps themselves (insert/erase/lookup), NOT the counters:
  // lookups take it shared, begin/end take it unique.  Slots are heap-
  // allocated so pointers stay stable while a shared holder works on them.
  mutable OrderedSharedMutex<LockRank::kTxnStruct> struct_mu_;  ///< rank kTxnStruct
  std::unordered_map<TxnId, std::unique_ptr<Slot>> live_;
  std::unordered_map<TxnId, Value> parent_z_;  // Z_t accumulators

  // Serializes all counter/limit mutations (all-or-nothing multi charges).
  // Lock order: struct_mu_ (shared) then charge_mu_.
  mutable OrderedMutex<LockRank::kTxnCharge> charge_mu_;  ///< rank kTxnCharge: struct_mu_ (shared) then charge_mu_
  /// Seqlock epoch; odd = write in flight.  Mutable: the TSan-friendly
  /// read path re-checks it with a (value-preserving) RMW from const reads.
  mutable std::atomic<std::uint64_t> epoch_{0};

  std::atomic<TxnId> next_id_{1};
  Tracer* tracer_ = nullptr;
  SiteId site_ = 0;

  /// ChargeStats backing store.  Mutations happen under charge_mu_ (charges)
  /// or the unique struct_mu_ (retirement), so the relaxed atomics are only
  /// for lock-free reads by charge_stats().
  struct ChargeCounters {
    std::atomic<std::uint64_t> charges_ok{0};
    std::atomic<std::uint64_t> rejected_import{0};
    std::atomic<std::uint64_t> rejected_export{0};
    std::atomic<std::uint64_t> rejected_admission{0};
    std::atomic<double> import_charged{0};
    std::atomic<double> export_charged{0};
    std::atomic<std::uint64_t> retired_query_count{0};
    std::atomic<std::uint64_t> retired_query_unlimited{0};
    std::atomic<double> retired_query_used{0};
    std::atomic<double> retired_query_limit{0};
    std::atomic<std::uint64_t> retired_update_count{0};
    std::atomic<std::uint64_t> retired_update_unlimited{0};
    std::atomic<double> retired_update_used{0};
    std::atomic<double> retired_update_limit{0};
  };
  mutable ChargeCounters charge_counters_;
};

}  // namespace atp
