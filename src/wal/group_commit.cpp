#include "wal/group_commit.h"

#include <thread>

#include "fault/retry.h"

namespace atp {

void GroupCommitter::lead_flush_locked(
    std::unique_lock<OrderedMutex<LockRank::kWalGroup>>& lock,
    std::uint64_t seed) {
  leader_active_ = true;
  ++stats_.flushes;
  async_backlog_ = 0;  // the flush covers every async record appended so far
  lock.unlock();
  // The device sync runs outside mu_ so the next group accumulates behind
  // it.  A failed (injected) fsync made nothing durable: retry until true,
  // same contract as the single-commit force path.
  const RetryPolicy policy = RetryPolicy::wal_fsync();
  for (std::uint64_t attempt = 1; !wal_.fsync(); ++attempt) {
    std::this_thread::sleep_for(policy.delay(attempt, seed));
  }
  lock.lock();
  leader_active_ = false;
  cv_.notify_all();
}

void GroupCommitter::wait_durable(std::uint64_t lsn, std::uint64_t seed) {
  std::unique_lock lock(mu_);
  ++stats_.sync_commits;
  bool led = false;
  while (wal_.durable_lsn() < lsn) {
    if (leader_active_) {
      cv_.wait(lock);  // follow: the in-flight flush (or the next) covers us
    } else {
      led = true;
      lead_flush_locked(lock, seed);
    }
  }
  if (!led) ++stats_.batched;
}

void GroupCommitter::note_async(std::uint64_t lsn, std::uint64_t seed) {
  std::unique_lock lock(mu_);
  ++stats_.async_commits;
  if (wal_.durable_lsn() >= lsn) {
    ++stats_.batched;
    return;  // already covered by an earlier group
  }
  ++async_backlog_;
  if (async_backlog_ >= kAsyncFlushBacklog && !leader_active_) {
    ++stats_.async_self_flushes;
    lead_flush_locked(lock, seed);
  }
}

void GroupCommitter::flush(std::uint64_t seed) {
  std::unique_lock lock(mu_);
  const std::uint64_t target = wal_.next_lsn() - 1;
  while (wal_.durable_lsn() < target) {
    if (leader_active_) {
      cv_.wait(lock);
    } else {
      lead_flush_locked(lock, seed);
    }
  }
}

GroupCommitStats GroupCommitter::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace atp
