// Group commit: amortize the per-commit fsync across concurrent committers.
//
// The classic discipline forces the log once per commit -- correct, but the
// fsync becomes the throughput ceiling the moment commits outnumber what the
// device can sync per second.  Group commit batches: committing workers
// queue their commit-record LSNs behind a single *flush leader*, which
// issues one fsync for the whole group; followers just wait until the
// durable frontier covers their LSN.  One device sync then retires many
// commits, and the fsyncs/commit ratio drops toward 1/group-size.
//
// Two commit flavors ride the same machinery (TxnOptions::wait):
//
//   * sync  -- wait_durable(lsn): the transaction does not report success
//     until durable_lsn >= lsn.  Full write-ahead guarantee.
//   * async -- note_async(lsn): the transaction reports success at append;
//     durability arrives at the next group flush (piggybacking on a sync
//     leader, or a self-flush once the async backlog crosses a threshold).
//     A crash in the window loses exactly the not-yet-durable async
//     commits -- the documented contract, exercised by the torn-tail tests.
//
// Leadership never migrates mid-flush: one leader runs its fsync outside
// the committer mutex while followers accumulate, then wakes everyone and
// whoever still isn't covered elects the next leader.  Injected fsync
// failures are retried by the leader (a failed sync made nothing durable).
#pragma once

#include <cstdint>
#include <mutex>

#include "common/ordered_lock.h"
#include "wal/log.h"

namespace atp {

struct GroupCommitStats {
  std::uint64_t sync_commits = 0;   ///< wait_durable calls
  std::uint64_t async_commits = 0;  ///< note_async calls
  std::uint64_t flushes = 0;        ///< group fsyncs issued (leader elections)
  std::uint64_t batched = 0;        ///< commits that piggybacked on a flush
                                    ///< they did not lead
  std::uint64_t async_self_flushes = 0;  ///< flushes forced by async backlog
};

class GroupCommitter {
 public:
  /// Async commits accumulate until a sync committer leads a flush or the
  /// backlog reaches this many records, whichever comes first.
  static constexpr std::uint64_t kAsyncFlushBacklog = 16;

  explicit GroupCommitter(LogDevice& wal) : wal_(wal) {}
  GroupCommitter(const GroupCommitter&) = delete;
  GroupCommitter& operator=(const GroupCommitter&) = delete;

  /// Block until durable_lsn >= lsn (sync commit).  The first uncovered
  /// waiter becomes the flush leader; the rest follow.  `seed` salts the
  /// leader's fsync-failure retry backoff.
  void wait_durable(std::uint64_t lsn, std::uint64_t seed);

  /// Record an async commit at `lsn`.  Returns immediately; flushes the
  /// backlog itself (blocking this caller) only when kAsyncFlushBacklog is
  /// reached with no flush in flight.
  void note_async(std::uint64_t lsn, std::uint64_t seed);

  /// Force everything appended so far durable (shutdown / test barrier).
  void flush(std::uint64_t seed);

  [[nodiscard]] GroupCommitStats stats() const;

 private:
  /// Run one group flush as leader.  Called with `lock` held on mu_;
  /// releases it around the device fsync and reacquires before returning.
  void lead_flush_locked(std::unique_lock<OrderedMutex<LockRank::kWalGroup>>& lock,
                         std::uint64_t seed);

  LogDevice& wal_;
  mutable OrderedMutex<LockRank::kWalGroup> mu_;  ///< rank kWalGroup: leader election + waiters; reads the wal frontier (kWal) under it
  OrderedCondVar cv_;
  bool leader_active_ = false;     // under mu_
  std::uint64_t async_backlog_ = 0;  // async commits noted since last flush
  GroupCommitStats stats_;         // under mu_
};

}  // namespace atp
