#include "wal/log.h"

#include <algorithm>

#include "fault/fault.h"

namespace atp {

std::uint64_t LogDevice::append(LogRecord record) {
  std::lock_guard lock(mu_);
  record.lsn = next_lsn_++;
  records_.push_back(std::move(record));
  return records_.back().lsn;
}

bool LogDevice::fsync() {
  // The injector's verdict is drawn outside mu_ (it has its own lock, and
  // the decision depends only on seed + per-site attempt count).
  FaultInjector* fault;
  SiteId site;
  {
    std::lock_guard lock(mu_);
    fault = fault_;
    site = fault_site_;
  }
  if (fault != nullptr && fault->fsync_fails(site)) {
    std::lock_guard lock(mu_);
    ++fsync_failures_;
    return false;
  }
  std::lock_guard lock(mu_);
  ++fsyncs_;
  durable_lsn_ = next_lsn_ - 1;
  return true;
}

void LogDevice::set_fault_injector(FaultInjector* injector, SiteId site) {
  std::lock_guard lock(mu_);
  fault_ = injector;
  fault_site_ = site;
}

std::uint64_t LogDevice::fsync_count() const {
  std::lock_guard lock(mu_);
  return fsyncs_;
}

std::uint64_t LogDevice::fsync_failures() const {
  std::lock_guard lock(mu_);
  return fsync_failures_;
}

std::uint64_t LogDevice::durable_lsn() const {
  std::lock_guard lock(mu_);
  return durable_lsn_;
}

std::uint64_t LogDevice::next_lsn() const {
  std::lock_guard lock(mu_);
  return next_lsn_;
}

std::vector<LogRecord> LogDevice::records() const {
  std::lock_guard lock(mu_);
  return records_;
}

void LogDevice::truncate_before(std::uint64_t lsn) {
  std::lock_guard lock(mu_);
  std::erase_if(records_,
                [lsn](const LogRecord& r) { return r.lsn < lsn; });
}

void LogDevice::tear_to_durable() {
  std::lock_guard lock(mu_);
  std::erase_if(records_, [this](const LogRecord& r) {
    return r.lsn > durable_lsn_;
  });
}

std::size_t LogDevice::size() const {
  std::lock_guard lock(mu_);
  return records_.size();
}

}  // namespace atp
