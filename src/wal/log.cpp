#include "wal/log.h"

#include <algorithm>

namespace atp {

std::uint64_t LogDevice::append(LogRecord record) {
  std::lock_guard lock(mu_);
  record.lsn = next_lsn_++;
  records_.push_back(std::move(record));
  return records_.back().lsn;
}

void LogDevice::fsync() {
  std::lock_guard lock(mu_);
  ++fsyncs_;
}

std::uint64_t LogDevice::fsync_count() const {
  std::lock_guard lock(mu_);
  return fsyncs_;
}

std::uint64_t LogDevice::next_lsn() const {
  std::lock_guard lock(mu_);
  return next_lsn_;
}

std::vector<LogRecord> LogDevice::records() const {
  std::lock_guard lock(mu_);
  return records_;
}

void LogDevice::truncate_before(std::uint64_t lsn) {
  std::lock_guard lock(mu_);
  std::erase_if(records_,
                [lsn](const LogRecord& r) { return r.lsn < lsn; });
}

std::size_t LogDevice::size() const {
  std::lock_guard lock(mu_);
  return records_.size();
}

}  // namespace atp
