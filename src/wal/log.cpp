#include "wal/log.h"

#include <algorithm>
#include <thread>

#include "fault/fault.h"

namespace atp {

std::uint64_t LogDevice::append(LogRecord record) {
  std::lock_guard lock(mu_);
  record.lsn = next_lsn_++;
  records_.push_back(std::move(record));
  return records_.back().lsn;
}

bool LogDevice::fsync() {
  // Snapshot the target LSN up front: this sync covers what was appended
  // before it started.  The latency sleep and the injector's verdict happen
  // outside mu_ (the injector has its own lock, and the decision depends
  // only on seed + per-site attempt count), so concurrent appenders queue
  // up behind the NEXT sync instead of this one -- the behavior group
  // commit batches against.
  FaultInjector* fault;
  SiteId site;
  std::chrono::microseconds latency;
  std::uint64_t target;
  {
    std::lock_guard lock(mu_);
    fault = fault_;
    site = fault_site_;
    latency = fsync_latency_;
    target = next_lsn_ - 1;
  }
  if (latency.count() > 0) std::this_thread::sleep_for(latency);
  if (fault != nullptr && fault->fsync_fails(site)) {
    std::lock_guard lock(mu_);
    ++fsync_failures_;
    return false;
  }
  std::lock_guard lock(mu_);
  ++fsyncs_;
  durable_lsn_ = std::max(durable_lsn_, target);
  return true;
}

void LogDevice::set_fsync_latency(std::chrono::microseconds latency) {
  std::lock_guard lock(mu_);
  fsync_latency_ = latency;
}

void LogDevice::set_fault_injector(FaultInjector* injector, SiteId site) {
  std::lock_guard lock(mu_);
  fault_ = injector;
  fault_site_ = site;
}

std::uint64_t LogDevice::fsync_count() const {
  std::lock_guard lock(mu_);
  return fsyncs_;
}

std::uint64_t LogDevice::fsync_failures() const {
  std::lock_guard lock(mu_);
  return fsync_failures_;
}

std::uint64_t LogDevice::durable_lsn() const {
  std::lock_guard lock(mu_);
  return durable_lsn_;
}

std::uint64_t LogDevice::next_lsn() const {
  std::lock_guard lock(mu_);
  return next_lsn_;
}

std::optional<std::uint64_t> LogDevice::read_from(
    std::uint64_t from, std::size_t max, std::vector<LogRecord>& out) const {
  std::lock_guard lock(mu_);
  // records_ stays LSN-sorted: appends are monotone and truncation keeps
  // order, so the cursor position is a binary search away.
  auto it = std::lower_bound(
      records_.begin(), records_.end(), from,
      [](const LogRecord& r, std::uint64_t lsn) { return r.lsn < lsn; });
  if (it == records_.end()) return std::nullopt;
  std::size_t n = 0;
  for (; it != records_.end() && n < max; ++it, ++n) out.push_back(*it);
  return it == records_.end() ? next_lsn_ : it->lsn;
}

std::vector<LogRecord> LogDevice::records() const {
  std::lock_guard lock(mu_);
  return records_;
}

void LogDevice::truncate_before(std::uint64_t lsn) {
  std::lock_guard lock(mu_);
  std::erase_if(records_,
                [lsn](const LogRecord& r) { return r.lsn < lsn; });
}

void LogDevice::tear_to_durable() {
  std::lock_guard lock(mu_);
  std::erase_if(records_, [this](const LogRecord& r) {
    return r.lsn > durable_lsn_;
  });
}

std::size_t LogDevice::size() const {
  std::lock_guard lock(mu_);
  return records_.size();
}

}  // namespace atp
