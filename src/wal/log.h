// Write-ahead log: the durability substrate under the engine's crash story.
//
// The rest of the library models durability abstractly ("committed state
// survives, dirty state evaporates").  This module makes that concrete with
// redo-only value logging, the discipline a no-steal buffer pool affords:
//
//   * every transactional write appends an after-image BEFORE commit;
//   * commit appends a commit record; sync commits wait for the group
//     committer (wal/group_commit.h) to cover the record's LSN with an
//     fsync, async commits return at append and become durable at the next
//     group flush;
//   * 2PC participants append a PREPARE record when voting (the force-log
//     the paper's failure model relies on);
//   * recovery replays the log from the last checkpoint: writes of
//     committed transactions redo in LSN order; PREPAREd-but-undecided
//     transactions are reinstated as in-doubt (staged writes + lock
//     ownership are the caller's to restore);
//   * recoverable-queue state (committed enqueues, deliveries, consumes)
//     rides the same log, which is what makes exactly-once across crashes
//     more than an assertion.
//
// "Disk" is a LogDevice: an append-only record vector that survives
// Database/Site crashes (it lives outside them), with fsync counting so
// tests can assert the force-at-commit discipline, and an optional simulated
// fsync latency so group-commit batching behaves like a real device.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"

#include "common/ordered_lock.h"

namespace atp {

class FaultInjector;

enum class LogRecordType : std::uint8_t {
  kBegin,         // txn started (informational)
  kWrite,         // after-image: txn staged value for key
  kCommit,        // txn committed
  kAbort,         // txn aborted (informational; redo ignores its writes)
  kPrepare,       // 2PC participant force-logged its vote
  kCheckpoint,    // full committed snapshot begins at this record
  kCheckpointKv,  // one (key, value) pair of the running checkpoint
  kQueueEnqueue,  // durable outbound queue message (sender side)
  kQueueAck,      // outbound message acknowledged (sender side)
  kQueueDeliver,  // durable inbound queue message (receiver side)
  kQueueConsume,  // inbound message consumed by a committed transaction
};

struct LogRecord {
  std::uint64_t lsn = 0;
  LogRecordType type = LogRecordType::kBegin;
  TxnId txn = kInvalidTxn;
  Key key = 0;
  Value value = 0;
  /// Queue records: message id and queue name.
  std::uint64_t qmsg_id = 0;
  std::string queue;
  SiteId peer = 0;
  /// Queue message payload, serialized to bytes.  What goes to "disk" is
  /// exactly what comes back at recovery -- no erased types on the log.
  std::string payload;
};

/// The append-only "disk".  Survives crashes of everything above it.
class LogDevice {
 public:
  /// Append a record; assigns and returns its LSN.
  std::uint64_t append(LogRecord record);

  /// Force to stable storage: every record appended before the call becomes
  /// durable.  A no-op for memory, but counted: tests assert the
  /// force-at-commit discipline through this number.  Returns false if an
  /// attached fault injector failed this attempt (nothing became durable);
  /// callers on commit-critical paths must retry until true before
  /// reporting success.  With a nonzero simulated latency the call sleeps
  /// outside the device mutex, so concurrent appends proceed -- records
  /// appended DURING the sync are not covered by it.
  bool fsync();

  /// Simulated device latency per fsync (default 0).  Group commit exists
  /// because this is the expensive step; benches set it to realistic
  /// microseconds so batching has something to amortize.
  void set_fsync_latency(std::chrono::microseconds latency);

  /// fsync failures are injected through here (fault/fault.h).  `site`
  /// names this device's owner in the injector's per-site schedules.
  /// Caller-owned; must outlive the device or be detached with nullptr.
  void set_fault_injector(FaultInjector* injector, SiteId site);

  [[nodiscard]] std::uint64_t fsync_count() const;
  [[nodiscard]] std::uint64_t fsync_failures() const;
  [[nodiscard]] std::uint64_t next_lsn() const;

  /// Highest LSN made durable by a successful fsync (0 = none yet).
  /// Records above it exist only in the volatile tail.
  [[nodiscard]] std::uint64_t durable_lsn() const;

  /// Cursor read: append up to `max` records with lsn >= `from` to `out`,
  /// in LSN order.  Returns the cursor for the next chunk (one past the
  /// last LSN returned), or nullopt when the cursor is past the end.  This
  /// is the recovery/checkpoint scan path: each chunk holds the device
  /// mutex only for its own copy, so appenders are never stalled behind a
  /// whole-log clone.
  [[nodiscard]] std::optional<std::uint64_t> read_from(
      std::uint64_t from, std::size_t max, std::vector<LogRecord>& out) const;

  /// Whole-log snapshot (tests and small tools; prefer read_from on any
  /// path that can race live appenders).
  [[nodiscard]] std::vector<LogRecord> records() const;

  /// Drop records before `lsn` (checkpoint truncation).
  void truncate_before(std::uint64_t lsn);

  /// Simulate a torn tail at crash: records never covered by a successful
  /// fsync vanish.  LSNs are not reused -- next_lsn_ keeps counting.
  void tear_to_durable();

  [[nodiscard]] std::size_t size() const;

 private:
  mutable OrderedMutex<LockRank::kWal> mu_;  ///< rank kWal: inner to queue endpoints; fsync verdicts and latency sleeps happen outside
  std::vector<LogRecord> records_;
  std::uint64_t next_lsn_ = 1;
  std::uint64_t durable_lsn_ = 0;
  std::uint64_t fsyncs_ = 0;
  std::uint64_t fsync_failures_ = 0;
  std::chrono::microseconds fsync_latency_{0};
  FaultInjector* fault_ = nullptr;
  SiteId fault_site_ = 0;
};

}  // namespace atp
