#include "wal/recovery.h"

#include <map>

#include "storage/store.h"

namespace atp {

std::vector<LogRecord> read_log_chunked(const LogDevice& log) {
  constexpr std::size_t kChunk = 256;  // records copied per lock hold
  std::vector<LogRecord> out;
  std::uint64_t cursor = 0;
  while (const auto next = log.read_from(cursor, kChunk, out)) {
    cursor = *next;
  }
  return out;
}

RecoveryResult recover_from_log(const LogDevice& log, Store& store) {
  const std::vector<LogRecord> records = read_log_chunked(log);  // LSN order
  RecoveryResult result;
  store.clear();

  // --- find the last complete checkpoint ---------------------------------
  const LogRecord* checkpoint = nullptr;
  for (const auto& r : records) {
    if (r.type == LogRecordType::kCheckpoint) checkpoint = &r;
  }
  std::uint64_t horizon = 0;
  if (checkpoint != nullptr) {
    horizon = checkpoint->lsn;
    const std::uint64_t first_kv = checkpoint->qmsg_id;  // lsn of first kv
    for (const auto& r : records) {
      if (r.type == LogRecordType::kCheckpointKv && r.lsn >= first_kv &&
          r.lsn < checkpoint->lsn) {
        store.load(r.key, r.value);
      }
    }
  }

  // --- analysis: winners, losers, in-doubt -------------------------------
  std::unordered_map<TxnId, std::uint64_t> winners;  // txn -> commit LSN
  std::unordered_set<TxnId> losers, prepared;
  for (const auto& r : records) {
    switch (r.type) {
      case LogRecordType::kCommit: winners.emplace(r.txn, r.lsn); break;
      case LogRecordType::kAbort: losers.insert(r.txn); break;
      case LogRecordType::kPrepare: prepared.insert(r.txn); break;
      default: break;
    }
  }
  result.committed_txns = winners.size();

  // --- redo winners; collect in-doubt staged images ----------------------
  // The checkpoint snapshot reflects exactly the transactions whose COMMIT
  // precedes the checkpoint record, so that is the horizon test: a winner
  // that committed after the checkpoint redoes ALL its writes, even ones
  // whose kWrite LSN predates it (no-steal keeps staged writes out of the
  // snapshot until commit).  In-doubt staged images are collected with no
  // LSN filter at all -- a prepared-but-undecided transaction is never in
  // the snapshot, wherever its writes fall relative to the checkpoint.
  std::map<TxnId, InDoubtTxn> in_doubt;
  for (const auto& r : records) {
    if (r.type != LogRecordType::kWrite) continue;
    auto win = winners.find(r.txn);
    if (win != winners.end()) {
      if (win->second <= horizon) continue;  // already in the snapshot
      store.load(r.key, r.value);  // after-image redo, LSN order
      ++result.redone_writes;
    } else if (prepared.count(r.txn) && !losers.count(r.txn)) {
      auto& idt = in_doubt[r.txn];
      idt.txn = r.txn;
      idt.staged.emplace_back(r.key, r.value);
    }
  }
  for (auto& [txn, idt] : in_doubt) result.in_doubt.push_back(std::move(idt));

  // --- recoverable-queue state --------------------------------------------
  // Enqueue/consume records are written at staging time, tagged with their
  // transaction: they take effect only if that transaction committed (this
  // is what makes queue operations atomic with the data writes without a
  // second log force).  Deliver/ack records are non-transactional.
  const auto effective = [&](const LogRecord& r) {
    return r.txn == kInvalidTxn || winners.count(r.txn) > 0;
  };
  std::unordered_set<std::uint64_t> acked, consumed;
  for (const auto& r : records) {
    if (r.qmsg_id > result.max_qmsg_id) result.max_qmsg_id = r.qmsg_id;
    if (r.type == LogRecordType::kQueueAck) acked.insert(r.qmsg_id);
    if (r.type == LogRecordType::kQueueConsume && effective(r)) {
      consumed.insert(r.qmsg_id);
    }
  }
  for (const auto& r : records) {
    if (r.type == LogRecordType::kQueueEnqueue && effective(r) &&
        !acked.count(r.qmsg_id)) {
      result.outbound.push_back(
          RecoveredQueueMessage{r.qmsg_id, r.queue, r.peer, r.payload});
    }
    if (r.type == LogRecordType::kQueueDeliver) {
      result.seen_qmsgs.insert(r.qmsg_id);
      if (!consumed.count(r.qmsg_id)) {
        result.inbound.push_back(
            RecoveredQueueMessage{r.qmsg_id, r.queue, r.peer, r.payload});
      }
    }
  }
  return result;
}

}  // namespace atp
