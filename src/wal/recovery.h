// Log-driven recovery (redo-only, no-steal discipline).
//
// Analysis + redo in one pass over the stable log:
//   1. find the latest complete checkpoint; seed the rebuilt state from its
//      kv records;
//   2. collect the winner set: transactions with a kCommit record;
//   3. redo winners' kWrite after-images in LSN order;
//   4. surface PREPAREd-but-undecided transactions (in-doubt) with their
//      staged after-images so a 2PC participant can reinstate them;
//   5. rebuild recoverable-queue durable state: outbound = enqueued - acked,
//      inbound = delivered - consumed (per queue, in delivery order).
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "wal/log.h"

namespace atp {

class Store;

struct InDoubtTxn {
  TxnId txn = kInvalidTxn;
  std::vector<std::pair<Key, Value>> staged;  // after-images, in LSN order
};

struct RecoveredQueueMessage {
  std::uint64_t qmsg_id = 0;
  std::string queue;
  SiteId peer = 0;  // destination (outbound) / source (inbound)
  std::string payload;  // serialized bytes, exactly as logged
};

struct RecoveryResult {
  std::size_t committed_txns = 0;
  std::size_t redone_writes = 0;
  std::vector<InDoubtTxn> in_doubt;  // prepared, no decision logged
  std::vector<RecoveredQueueMessage> outbound;  // to retransmit
  std::vector<RecoveredQueueMessage> inbound;   // still deliverable locally
  std::unordered_set<std::uint64_t> seen_qmsgs;  // dedupe set to restore
  /// Highest queue-message id observed anywhere in the log; the endpoint's
  /// id counter resumes above it so dedupe stays sound across restarts.
  std::uint64_t max_qmsg_id = 0;
};

/// Rebuild `store` (cleared first) from the stable log.  Returns what else
/// the caller must reinstate (in-doubt 2PC state, queue state).
RecoveryResult recover_from_log(const LogDevice& log, Store& store);

/// Copy the whole log through the chunked cursor (LogDevice::read_from), so
/// no caller ever clones the log in one critical section.  The scan paths
/// (recovery, checkpoint truncation analysis) all go through this.
[[nodiscard]] std::vector<LogRecord> read_log_chunked(const LogDevice& log);

}  // namespace atp
