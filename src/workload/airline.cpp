#include "workload/airline.h"

#include <cassert>

#include "common/rng.h"

namespace atp {

Workload make_airline(const AirlineConfig& cfg, std::size_t n_instances,
                      std::uint64_t seed) {
  assert(cfg.flights >= 2);
  Workload w;
  Rng rng(seed);

  for (std::size_t f = 0; f < cfg.flights; ++f) {
    w.initial_data.emplace_back(airline_seats_key(f), cfg.seats_per_flight);
    w.initial_data.emplace_back(airline_revenue_key(f), 0);
  }
  w.total_money = 0;  // revenue grows; no invariant ground truth

  // --- types --------------------------------------------------------------
  enum TypeIx : std::size_t { kReserve = 0, kAvailability = 1, kReport = 2 };
  {
    ProgramBuilder pb("reserve", TxnKind::Update);
    pb.add(airline_seats_class(), -1, 1);
    if (cfg.rollback_probability > 0) pb.rollback_point();  // sold out
    pb.add(airline_revenue_class(), +1, cfg.price_cap);
    pb.epsilon(cfg.update_epsilon);
    w.types.push_back(pb.build());
  }
  {
    ProgramBuilder pb("availability", TxnKind::Query);
    for (std::size_t i = 0; i < cfg.availability_scan; ++i) {
      pb.read(airline_seats_class());
    }
    pb.epsilon(cfg.query_epsilon);
    pb.not_choppable();
    w.types.push_back(pb.build());
  }
  {
    // Books-balance report: every seat count and every revenue cell.
    ProgramBuilder pb("report", TxnKind::Query);
    for (std::size_t f = 0; f < cfg.flights; ++f) {
      pb.read(airline_seats_class());
    }
    for (std::size_t f = 0; f < cfg.flights; ++f) {
      pb.read(airline_revenue_class());
    }
    pb.epsilon(cfg.query_epsilon);
    pb.not_choppable();
    w.types.push_back(pb.build());
  }

  // --- instances ----------------------------------------------------------
  Zipf flight_dist(cfg.flights, cfg.zipf_theta);
  w.instances.reserve(n_instances);
  for (std::size_t i = 0; i < n_instances; ++i) {
    const double roll = rng.uniform01();
    TxnInstance inst;
    if (roll < cfg.report_fraction) {
      inst.type_index = kReport;
      for (std::size_t f = 0; f < cfg.flights; ++f) {
        inst.ops.push_back(Access::read(airline_seats_key(f)));
      }
      for (std::size_t f = 0; f < cfg.flights; ++f) {
        inst.ops.push_back(Access::read(airline_revenue_key(f)));
      }
    } else if (roll < cfg.report_fraction + cfg.availability_fraction) {
      inst.type_index = kAvailability;
      for (std::size_t k = 0; k < cfg.availability_scan; ++k) {
        inst.ops.push_back(
            Access::read(airline_seats_key(flight_dist.sample(rng))));
      }
    } else {
      inst.type_index = kReserve;
      const std::size_t f = flight_dist.sample(rng);
      const Value fare = 50 + Value(rng.uniform(std::uint64_t(cfg.price_cap) - 49));
      inst.ops.push_back(Access::add(airline_seats_key(f), -1, 1));
      inst.ops.push_back(Access::add(airline_revenue_key(f), fare, cfg.price_cap));
      inst.take_rollback = rng.chance(cfg.rollback_probability);
    }
    w.instances.push_back(std::move(inst));
  }
  return w;
}

}  // namespace atp
