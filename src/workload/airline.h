// Airline reservation workload (the paper's second motivating domain:
// "airline reservation systems often require a limit for each reservation").
//
//   * reserve ETs take one seat on a flight and post the fare to the revenue
//     ledger: add(seats_f, -1) ; add(revenue_f, +fare).  The fare is bounded
//     by the route's price cap -- the off-line C-edge weight.
//   * availability queries scan the seat counts of a sample of flights.
//   * revenue reports read every revenue cell; their serializable ground
//     truth is not invariant (reservations create revenue), so reports carry
//     no expected result -- they exercise the fuzziness accounting, not the
//     error oracle.
//   * a seat+revenue consistency check ("books balance": seats sold x mean
//     fare vs ledger) is modelled as a global query over both item classes,
//     creating the SC-cycle that separates SR- from ESR-chopping, exactly
//     like banking's global audit.
#pragma once

#include <cstdint>

#include "workload/workload.h"

namespace atp {

struct AirlineConfig {
  std::size_t flights = 32;
  Value seats_per_flight = 200;
  Value price_cap = 500;         ///< max fare (C-edge weight)
  double availability_fraction = 0.2;  ///< of instances
  double report_fraction = 0.05;       ///< of instances (global query)
  std::size_t availability_scan = 8;   ///< flights per availability query
  double zipf_theta = 0.6;       ///< popular-flight skew
  Value update_epsilon = 1000;   ///< Limit_t of reservations (export)
  Value query_epsilon = 2000;    ///< Limit_t of queries (import)
  double rollback_probability = 0.0;   ///< sold-out rollbacks
};

[[nodiscard]] constexpr Key airline_seats_key(std::size_t flight) noexcept {
  return 2'000'000 + static_cast<Key>(flight);
}
[[nodiscard]] constexpr Key airline_revenue_key(std::size_t flight) noexcept {
  return 3'000'000 + static_cast<Key>(flight);
}
[[nodiscard]] constexpr Key airline_seats_class() noexcept {
  return 900'100'000;
}
[[nodiscard]] constexpr Key airline_revenue_class() noexcept {
  return 900'100'001;
}

[[nodiscard]] Workload make_airline(const AirlineConfig& config,
                                    std::size_t n_instances,
                                    std::uint64_t seed);

}  // namespace atp
