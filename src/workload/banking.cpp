#include "workload/banking.h"

#include <cassert>
#include <string>

#include "common/rng.h"

namespace atp {
namespace {

struct TypeCatalog {
  // type_index lookup tables
  std::vector<std::vector<std::size_t>> cross;  // [b1][b2] -> type index
  std::vector<std::size_t> intra;               // [b] -> type index
  std::vector<std::size_t> audit;               // [b] -> type index
  std::size_t global_audit = 0;
  bool has_intra = false, has_audit = false, has_global = false;
};

}  // namespace

Workload make_banking(const BankingConfig& cfg, std::size_t n_instances,
                      std::uint64_t seed) {
  assert(cfg.branches >= 1 && cfg.accounts_per_branch >= 2);
  assert((cfg.branches > 1 || cfg.intra_branch_fraction > 0) &&
         "single-branch config needs intra-branch transfers");
  Workload w;
  Rng rng(seed);

  // --- initial data -------------------------------------------------------
  for (std::size_t b = 0; b < cfg.branches; ++b) {
    for (std::size_t i = 0; i < cfg.accounts_per_branch; ++i) {
      w.initial_data.emplace_back(banking_account_key(b, i),
                                  cfg.initial_balance);
    }
  }
  w.total_money = cfg.initial_balance *
                  static_cast<Value>(cfg.branches * cfg.accounts_per_branch);

  // --- type stream (what gets chopped off-line) ---------------------------
  TypeCatalog cat;
  const bool rollbacks = cfg.rollback_probability > 0;

  const std::size_t hops = std::max<std::size_t>(1, cfg.hops);
  auto transfer_type = [&](std::size_t b1, std::size_t b2) {
    ProgramBuilder pb("xfer_" + std::to_string(b1) + "_" + std::to_string(b2),
                      TxnKind::Update);
    // Each hop debits b1 and credits b2 (alternating direction for
    // multi-hop so both classes stay loaded).
    for (std::size_t h = 0; h < hops; ++h) {
      const std::size_t from = (h % 2 == 0) ? b1 : b2;
      const std::size_t to = (h % 2 == 0) ? b2 : b1;
      pb.add(banking_branch_class(from), -1, cfg.max_transfer);
      if (h == 0 && rollbacks) pb.rollback_point();  // "insufficient funds"
      pb.add(banking_branch_class(to), +1, cfg.max_transfer);
    }
    pb.epsilon(cfg.update_epsilon);
    return pb.build();
  };

  cat.cross.assign(cfg.branches, std::vector<std::size_t>(cfg.branches, 0));
  for (std::size_t b1 = 0; b1 < cfg.branches; ++b1) {
    for (std::size_t b2 = 0; b2 < cfg.branches; ++b2) {
      if (b1 == b2) continue;
      cat.cross[b1][b2] = w.types.size();
      w.types.push_back(transfer_type(b1, b2));
    }
  }
  if (cfg.intra_branch_fraction > 0) {
    cat.has_intra = true;
    cat.intra.resize(cfg.branches);
    for (std::size_t b = 0; b < cfg.branches; ++b) {
      cat.intra[b] = w.types.size();
      w.types.push_back(transfer_type(b, b));
    }
  }
  if (cfg.branch_audit_fraction > 0) {
    cat.has_audit = true;
    cat.audit.resize(cfg.branches);
    for (std::size_t b = 0; b < cfg.branches; ++b) {
      cat.audit[b] = w.types.size();
      ProgramBuilder pb("audit_" + std::to_string(b), TxnKind::Query);
      for (std::size_t i = 0; i < cfg.audit_scan; ++i) {
        pb.read(banking_branch_class(b));
      }
      pb.epsilon(cfg.query_epsilon);
      if (!cfg.chop_audits) pb.not_choppable();
      w.types.push_back(pb.build());
    }
  }
  if (cfg.global_audit_fraction > 0) {
    cat.has_global = true;
    cat.global_audit = w.types.size();
    ProgramBuilder pb("global_audit", TxnKind::Query);
    for (std::size_t b = 0; b < cfg.branches; ++b) {
      for (std::size_t i = 0; i < cfg.accounts_per_branch; ++i) {
        pb.read(banking_branch_class(b));
      }
    }
    pb.epsilon(cfg.query_epsilon);
    if (!cfg.chop_audits) pb.not_choppable();
    w.types.push_back(pb.build());
  }

  // --- instance stream ----------------------------------------------------
  Zipf account_dist(cfg.accounts_per_branch, cfg.zipf_theta);
  auto pick_account = [&](std::size_t branch) {
    return banking_account_key(branch, account_dist.sample(rng));
  };

  w.instances.reserve(n_instances);
  for (std::size_t i = 0; i < n_instances; ++i) {
    const double roll = rng.uniform01();
    TxnInstance inst;

    if (cat.has_global && roll < cfg.global_audit_fraction) {
      inst.type_index = cat.global_audit;
      for (std::size_t b = 0; b < cfg.branches; ++b) {
        for (std::size_t a = 0; a < cfg.accounts_per_branch; ++a) {
          inst.ops.push_back(Access::read(banking_account_key(b, a)));
        }
      }
      inst.has_expected_result = true;
      inst.expected_result = w.total_money;
    } else if (cat.has_audit &&
               roll < cfg.global_audit_fraction + cfg.branch_audit_fraction) {
      const std::size_t b = rng.uniform(cfg.branches);
      inst.type_index = cat.audit[b];
      for (std::size_t k = 0; k < cfg.audit_scan; ++k) {
        inst.ops.push_back(Access::read(pick_account(b)));
      }
    } else {
      // A transfer.  Intra- vs cross-branch per configuration.
      const bool intra =
          cat.has_intra && (cfg.branches == 1 ||
                            rng.uniform01() < cfg.intra_branch_fraction);
      std::size_t b1 = rng.uniform(cfg.branches);
      std::size_t b2 = b1;
      if (!intra) {
        while (b2 == b1 && cfg.branches > 1) b2 = rng.uniform(cfg.branches);
      }
      inst.type_index = intra ? cat.intra[b1] : cat.cross[b1][b2];
      for (std::size_t h = 0; h < hops; ++h) {
        const std::size_t from = (h % 2 == 0) ? b1 : b2;
        const std::size_t to = (h % 2 == 0) ? b2 : b1;
        const Value amount =
            1 + Value(rng.uniform(std::uint64_t(cfg.max_transfer)));
        Key src = pick_account(from);
        Key dst = pick_account(to);
        while (dst == src) dst = pick_account(to);
        inst.ops.push_back(Access::add(src, -amount, cfg.max_transfer));
        inst.ops.push_back(Access::add(dst, +amount, cfg.max_transfer));
      }
      inst.take_rollback = rng.chance(cfg.rollback_probability);
    }
    w.instances.push_back(std::move(inst));
  }
  return w;
}

}  // namespace atp
