// Banking workload: the paper's running example (Sections 1.1, 3, 4).
//
//   * transfer ETs move a bounded amount between two accounts (within one
//     branch or across two branches).  Update ETs, two Add ops, optionally a
//     rollback statement after the debit ("insufficient funds").
//   * branch-audit ETs read a sample of one branch's accounts.  Query ETs.
//   * global-audit ETs read EVERY account and report the grand total, whose
//     correct serializable value is the invariant total_money -- the realized
//     inconsistency of an execution is directly measurable against it.
//
// Off-line structure (what makes the method comparison interesting):
//   * transfers commute with each other (Add/Add), so transfer-transfer
//     pairs contribute no C edges;
//   * a cross-branch transfer chopped at the branch boundary forms an
//     SC-cycle with any audit that covers both branches -> SR-chopping
//     degenerates to unchopped whenever a global audit is in the job stream,
//     while ESR-chopping stays fine-grained as long as the transfer bound
//     fits the eps budgets (Definition 1).  This is exactly the paper's
//     Section 4 New-York/Los-Angeles scenario.
#pragma once

#include <cstdint>

#include "workload/workload.h"

namespace atp {

struct BankingConfig {
  std::size_t branches = 2;
  std::size_t accounts_per_branch = 64;
  Value initial_balance = 1000;
  Value max_transfer = 100;      ///< per-transfer bound (the "$500/day" cap)
  double intra_branch_fraction = 0.0;   ///< transfers within one branch
  double branch_audit_fraction = 0.15;  ///< of instances
  double global_audit_fraction = 0.05;  ///< of instances
  std::size_t audit_scan = 16;   ///< accounts a branch audit reads
  double zipf_theta = 0.0;       ///< account-selection skew
  Value update_epsilon = 200;    ///< Limit_t of transfers (export side)
  Value query_epsilon = 400;     ///< Limit_t of audits (import side)
  double rollback_probability = 0.0;  ///< transfers that take the rollback
  /// Hops per transfer: each hop is a (debit, credit) pair between two
  /// branches, so a transfer type has 2*hops ops and chops into up to
  /// 2*hops pieces -- the chopping-depth knob of the Figure 2 ablation.
  std::size_t hops = 1;
  /// Let the chopper split audits into per-read pieces.  Off by default:
  /// the paper's central local scenario chops the updates while audits read
  /// boundedly-stale data whole (chopped queries star in the distributed
  /// layer instead).
  bool chop_audits = false;
};

/// Key of account `index` in `branch`.
[[nodiscard]] constexpr Key banking_account_key(std::size_t branch,
                                                std::size_t index) noexcept {
  return static_cast<Key>(branch) * 1'000'000 + index;
}

/// Abstract item standing for "all accounts of branch b" in type programs.
[[nodiscard]] constexpr Key banking_branch_class(std::size_t branch) noexcept {
  return 900'000'000 + static_cast<Key>(branch);
}

[[nodiscard]] Workload make_banking(const BankingConfig& config,
                                    std::size_t n_instances,
                                    std::uint64_t seed);

}  // namespace atp
