#include "workload/orders.h"

#include <cassert>
#include <string>

#include "common/rng.h"

namespace atp {

Workload make_orders(const OrdersConfig& cfg, std::size_t n_instances,
                     std::uint64_t seed) {
  assert(cfg.districts >= 1 && cfg.items_per_district >= cfg.lines_per_order);
  Workload w;
  Rng rng(seed);

  for (std::size_t d = 0; d < cfg.districts; ++d) {
    for (std::size_t i = 0; i < cfg.items_per_district; ++i) {
      w.initial_data.emplace_back(orders_stock_key(d, i), cfg.initial_stock);
    }
    w.initial_data.emplace_back(orders_count_key(d), 0);
    w.initial_data.emplace_back(orders_ytd_key(d), 0);
  }
  w.total_money = 0;  // revenue grows; no invariant oracle in this domain

  // --- types --------------------------------------------------------------
  const Value ytd_bound = cfg.max_price * Value(cfg.lines_per_order);
  std::vector<std::size_t> order_type(cfg.districts);
  std::vector<std::size_t> stockq_type(cfg.districts);
  for (std::size_t d = 0; d < cfg.districts; ++d) {
    order_type[d] = w.types.size();
    ProgramBuilder pb("new_order_" + std::to_string(d), TxnKind::Update);
    for (std::size_t l = 0; l < cfg.lines_per_order; ++l) {
      pb.add(orders_stock_class(d), -1, cfg.max_quantity);
    }
    pb.add(orders_count_class(d), +1, 1);
    pb.add(orders_ytd_class(d), +1, ytd_bound);
    pb.epsilon(cfg.update_epsilon);
    w.types.push_back(pb.build());
  }
  if (cfg.stock_query_fraction > 0) {
    for (std::size_t d = 0; d < cfg.districts; ++d) {
      stockq_type[d] = w.types.size();
      ProgramBuilder pb("stock_level_" + std::to_string(d), TxnKind::Query);
      for (std::size_t k = 0; k < cfg.stock_scan; ++k) {
        pb.read(orders_stock_class(d));
      }
      pb.epsilon(cfg.query_epsilon);
      pb.not_choppable();
      w.types.push_back(pb.build());
    }
  }
  std::size_t report_type = 0;
  if (cfg.report_fraction > 0) {
    report_type = w.types.size();
    ProgramBuilder pb("revenue_report", TxnKind::Query);
    for (std::size_t d = 0; d < cfg.districts; ++d) {
      pb.read(orders_ytd_class(d));
      pb.read(orders_count_class(d));
    }
    pb.epsilon(cfg.query_epsilon);
    pb.not_choppable();
    w.types.push_back(pb.build());
  }

  // --- instances ----------------------------------------------------------
  Zipf item_dist(cfg.items_per_district, cfg.zipf_theta);
  w.instances.reserve(n_instances);
  for (std::size_t i = 0; i < n_instances; ++i) {
    const double roll = rng.uniform01();
    TxnInstance inst;
    if (cfg.report_fraction > 0 && roll < cfg.report_fraction) {
      inst.type_index = report_type;
      for (std::size_t d = 0; d < cfg.districts; ++d) {
        inst.ops.push_back(Access::read(orders_ytd_key(d)));
        inst.ops.push_back(Access::read(orders_count_key(d)));
      }
    } else if (cfg.stock_query_fraction > 0 &&
               roll < cfg.report_fraction + cfg.stock_query_fraction) {
      const std::size_t d = rng.uniform(cfg.districts);
      inst.type_index = stockq_type[d];
      for (std::size_t k = 0; k < cfg.stock_scan; ++k) {
        inst.ops.push_back(
            Access::read(orders_stock_key(d, item_dist.sample(rng))));
      }
    } else {
      const std::size_t d = rng.uniform(cfg.districts);
      inst.type_index = order_type[d];
      Value order_value = 0;
      // Distinct item lines (re-sample on collision; line count is small).
      std::vector<std::size_t> picked;
      while (picked.size() < cfg.lines_per_order) {
        const std::size_t item = item_dist.sample(rng);
        bool dup = false;
        for (std::size_t p : picked) dup |= (p == item);
        if (dup) continue;
        picked.push_back(item);
        const Value qty = 1 + Value(rng.uniform(std::uint64_t(cfg.max_quantity)));
        const Value price = 1 + Value(rng.uniform(std::uint64_t(cfg.max_price)));
        inst.ops.push_back(
            Access::add(orders_stock_key(d, item), -qty, cfg.max_quantity));
        order_value += qty > 0 ? price : 0;
      }
      inst.ops.push_back(Access::add(orders_count_key(d), +1, 1));
      inst.ops.push_back(Access::add(orders_ytd_key(d), order_value, ytd_bound));
      assert(inst.ops.size() == w.types[inst.type_index].ops.size());
    }
    w.instances.push_back(std::move(inst));
  }
  return w;
}

}  // namespace atp
