// Order-processing workload (TPC-C flavoured): the multi-piece update shape
// that motivates chopping in the OLTP literature Shasha's technique targets.
//
//   * new-order ETs touch several tables in sequence: decrement stock for a
//     few items, increase the district's order count, add the order value to
//     the district's year-to-date revenue.  Every mutation is a bounded Add,
//     so orders commute with each other and chop finely.
//   * stock-level queries scan the stock of one district's popular items.
//   * the revenue report reads every district's YTD cell plus order counts
//     -- the cross-cutting query that puts chopped orders on SC-cycles.
//
// There is no conservation invariant (orders create revenue), so this domain
// exercises the fuzziness accounting rather than the exact-error oracle --
// complementary to banking/payroll.
#pragma once

#include <cstdint>

#include "workload/workload.h"

namespace atp {

struct OrdersConfig {
  std::size_t districts = 4;
  std::size_t items_per_district = 32;
  Value initial_stock = 10000;
  std::size_t lines_per_order = 3;   ///< stock items touched per order
  Value max_quantity = 10;           ///< per line (C-edge weight)
  Value max_price = 100;             ///< per line, feeds the YTD bound
  double stock_query_fraction = 0.2;
  double report_fraction = 0.05;
  std::size_t stock_scan = 8;
  double zipf_theta = 0.8;           ///< popular items
  Value update_epsilon = 5000;
  Value query_epsilon = 10000;
};

[[nodiscard]] constexpr Key orders_stock_key(std::size_t district,
                                             std::size_t item) noexcept {
  return 6'000'000 + static_cast<Key>(district) * 10'000 + item;
}
[[nodiscard]] constexpr Key orders_count_key(std::size_t district) noexcept {
  return 7'000'000 + static_cast<Key>(district);
}
[[nodiscard]] constexpr Key orders_ytd_key(std::size_t district) noexcept {
  return 7'100'000 + static_cast<Key>(district);
}
[[nodiscard]] constexpr Key orders_stock_class(std::size_t district) noexcept {
  return 900'400'000 + static_cast<Key>(district);
}
[[nodiscard]] constexpr Key orders_count_class(std::size_t district) noexcept {
  return 900'500'000 + static_cast<Key>(district);
}
[[nodiscard]] constexpr Key orders_ytd_class(std::size_t district) noexcept {
  return 900'600'000 + static_cast<Key>(district);
}

[[nodiscard]] Workload make_orders(const OrdersConfig& config,
                                   std::size_t n_instances,
                                   std::uint64_t seed);

}  // namespace atp
