#include "workload/payroll.h"

#include <cassert>
#include <string>

#include "common/rng.h"

namespace atp {

Workload make_payroll(const PayrollConfig& cfg, std::size_t n_instances,
                      std::uint64_t seed) {
  assert(cfg.departments >= 1 && cfg.employees_per_dept >= 1);
  Workload w;
  Rng rng(seed);

  for (std::size_t d = 0; d < cfg.departments; ++d) {
    w.initial_data.emplace_back(payroll_budget_key(d), cfg.dept_budget);
    for (std::size_t e = 0; e < cfg.employees_per_dept; ++e) {
      w.initial_data.emplace_back(payroll_salary_key(d, e),
                                  cfg.initial_salary);
    }
  }
  w.total_money = static_cast<Value>(cfg.departments) * cfg.dept_budget +
                  static_cast<Value>(cfg.departments) *
                      static_cast<Value>(cfg.employees_per_dept) *
                      cfg.initial_salary;

  // --- types --------------------------------------------------------------
  std::vector<std::size_t> raise_type(cfg.departments);
  std::vector<std::size_t> report_type(cfg.departments);
  for (std::size_t d = 0; d < cfg.departments; ++d) {
    raise_type[d] = w.types.size();
    ProgramBuilder pb("raise_" + std::to_string(d), TxnKind::Update);
    pb.add(payroll_budget_class(d), -1, cfg.raise_cap);
    pb.add(payroll_salary_class(d), +1, cfg.raise_cap);
    pb.epsilon(cfg.update_epsilon);
    w.types.push_back(pb.build());
  }
  if (cfg.dept_report_fraction > 0) {
    for (std::size_t d = 0; d < cfg.departments; ++d) {
      report_type[d] = w.types.size();
      ProgramBuilder pb("report_" + std::to_string(d), TxnKind::Query);
      for (std::size_t e = 0; e < cfg.employees_per_dept; ++e) {
        pb.read(payroll_salary_class(d));
      }
      pb.epsilon(cfg.query_epsilon);
      pb.not_choppable();
      w.types.push_back(pb.build());
    }
  }
  std::size_t global_type = 0;
  if (cfg.global_report_fraction > 0) {
    global_type = w.types.size();
    ProgramBuilder pb("global_report", TxnKind::Query);
    for (std::size_t d = 0; d < cfg.departments; ++d) {
      pb.read(payroll_budget_class(d));
      for (std::size_t e = 0; e < cfg.employees_per_dept; ++e) {
        pb.read(payroll_salary_class(d));
      }
    }
    pb.epsilon(cfg.query_epsilon);
    pb.not_choppable();
    w.types.push_back(pb.build());
  }

  // --- instances ----------------------------------------------------------
  Zipf emp_dist(cfg.employees_per_dept, cfg.zipf_theta);
  w.instances.reserve(n_instances);
  for (std::size_t i = 0; i < n_instances; ++i) {
    const double roll = rng.uniform01();
    TxnInstance inst;
    if (cfg.global_report_fraction > 0 && roll < cfg.global_report_fraction) {
      inst.type_index = global_type;
      for (std::size_t d = 0; d < cfg.departments; ++d) {
        inst.ops.push_back(Access::read(payroll_budget_key(d)));
        for (std::size_t e = 0; e < cfg.employees_per_dept; ++e) {
          inst.ops.push_back(Access::read(payroll_salary_key(d, e)));
        }
      }
      inst.has_expected_result = true;
      inst.expected_result = w.total_money;
    } else if (cfg.dept_report_fraction > 0 &&
               roll < cfg.global_report_fraction + cfg.dept_report_fraction) {
      const std::size_t d = rng.uniform(cfg.departments);
      inst.type_index = report_type[d];
      for (std::size_t e = 0; e < cfg.employees_per_dept; ++e) {
        inst.ops.push_back(Access::read(payroll_salary_key(d, e)));
      }
    } else {
      const std::size_t d = rng.uniform(cfg.departments);
      const std::size_t e = emp_dist.sample(rng);
      inst.type_index = raise_type[d];
      const Value amount = 1 + Value(rng.uniform(std::uint64_t(cfg.raise_cap)));
      inst.ops.push_back(Access::add(payroll_budget_key(d), -amount, cfg.raise_cap));
      inst.ops.push_back(
          Access::add(payroll_salary_key(d, e), +amount, cfg.raise_cap));
    }
    w.instances.push_back(std::move(inst));
  }
  return w;
}

}  // namespace atp
