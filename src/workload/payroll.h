// Payroll workload (the paper's third bounded-update example: "a payroll
// system may limit the salary raise for each employee per year").
//
//   * raise ETs move a bounded amount from a department's raise budget into
//     one employee's salary cell: add(budget_d, -amount); add(salary_e,
//     +amount).  Because raises draw from budgets, total compensation
//     dollars are invariant -- the global compensation report has an exact
//     serializable ground truth, like banking's global audit.
//   * department reports read one department's salaries (query ETs).
//   * the global compensation report reads every budget and salary cell.
#pragma once

#include <cstdint>

#include "workload/workload.h"

namespace atp {

struct PayrollConfig {
  std::size_t departments = 4;
  std::size_t employees_per_dept = 32;
  Value initial_salary = 50000;
  Value dept_budget = 100000;
  Value raise_cap = 5000;        ///< per-raise bound (C-edge weight)
  double dept_report_fraction = 0.15;
  double global_report_fraction = 0.05;
  double zipf_theta = 0.0;
  Value update_epsilon = 10000;  ///< Limit_t of raises (export)
  Value query_epsilon = 20000;   ///< Limit_t of reports (import)
};

[[nodiscard]] constexpr Key payroll_salary_key(std::size_t dept,
                                               std::size_t emp) noexcept {
  return 4'000'000 + static_cast<Key>(dept) * 10'000 + emp;
}
[[nodiscard]] constexpr Key payroll_budget_key(std::size_t dept) noexcept {
  return 5'000'000 + static_cast<Key>(dept);
}
[[nodiscard]] constexpr Key payroll_salary_class(std::size_t dept) noexcept {
  return 900'200'000 + static_cast<Key>(dept);
}
[[nodiscard]] constexpr Key payroll_budget_class(std::size_t dept) noexcept {
  return 900'300'000 + static_cast<Key>(dept);
}

[[nodiscard]] Workload make_payroll(const PayrollConfig& config,
                                    std::size_t n_instances,
                                    std::uint64_t seed);

}  // namespace atp
