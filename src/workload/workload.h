// Workload container shared by the generators: a type stream (what the
// administrator chops off-line), an instance stream (what runs), and the
// initial database contents.
#pragma once

#include <utility>
#include <vector>

#include "chop/program.h"
#include "common/types.h"
#include "sched/database.h"

namespace atp {

struct Workload {
  std::vector<TxnProgram> types;
  std::vector<TxnInstance> instances;
  std::vector<std::pair<Key, Value>> initial_data;
  Value total_money = 0;  ///< invariant sum (ground truth for global audits)

  void load_into(Database& db) const {
    for (const auto& [k, v] : initial_data) db.load(k, v);
  }
};

}  // namespace atp
