// Epsilon-limit plan checker (rules LM001..LM005): the repo's own
// distributions must certify clean, and every seeded violation must be
// caught with the right rule ID and piece localization.
#include <gtest/gtest.h>

#include <vector>

#include "analysis/limit_check.h"
#include "limits/distribution.h"

namespace atp {
namespace {

using namespace atp::analysis;

LintReport plan_errors_only(const LintReport& r, Rule rule) {
  LintReport out;
  for (const Diagnostic& d : r.diagnostics) {
    if (d.rule == rule) out.add(d);
  }
  return out;
}

TEST(LimitCheck, RepoDistributionsCertifyClean) {
  // Mixed restricted/unrestricted chain, the common shape after chopping.
  const ChopPlanInfo chain = ChopPlanInfo::chain(
      {true, false, true, true}, TxnKind::Update, /*limit_total=*/300);
  EXPECT_TRUE(check_limit_plans(chain, "t").ok())
      << check_limit_plans(chain, "t").to_text();

  // Tree-shaped DG: piece 0 fans out to 1 and 2; 2 has dependent 3.
  const ChopPlanInfo tree =
      ChopPlanInfo::tree({true, true, true, true}, {0, 0, 0, 2},
                         TxnKind::Update, /*limit_total=*/400);
  EXPECT_TRUE(check_limit_plans(tree, "t").ok())
      << check_limit_plans(tree, "t").to_text();

  // Degenerate: nothing restricted at all.
  const ChopPlanInfo free_chain =
      ChopPlanInfo::chain({false, false}, TxnKind::Query, 100);
  EXPECT_TRUE(check_limit_plans(free_chain, "t").ok());
}

TEST(LimitCheck, SumMismatchIsLm001) {
  const ChopPlanInfo info = ChopPlanInfo::chain(
      {true, true, true}, TxnKind::Update, /*limit_total=*/300);
  // 100 + 100 + 50 != 300.
  const LintReport r =
      check_static_plan(info, {100, 100, 50}, "leaky", /*txn_index=*/7);
  const LintReport lm001 = plan_errors_only(r, Rule::LM001);
  ASSERT_EQ(lm001.diagnostics.size(), 1u);
  EXPECT_EQ(lm001.diagnostics[0].txn, "leaky");
}

TEST(LimitCheck, NegativeLimitIsLm002) {
  const ChopPlanInfo info =
      ChopPlanInfo::chain({true, true}, TxnKind::Update, 100);
  const LintReport r = check_static_plan(info, {150, -50}, "neg");
  const LintReport lm002 = plan_errors_only(r, Rule::LM002);
  ASSERT_EQ(lm002.diagnostics.size(), 1u);
  ASSERT_TRUE(lm002.diagnostics[0].piece.has_value());
  EXPECT_EQ(lm002.diagnostics[0].piece->piece, 1u);
}

TEST(LimitCheck, FiniteLimitOnUnrestrictedPieceIsLm003) {
  const ChopPlanInfo info =
      ChopPlanInfo::chain({true, false}, TxnKind::Update, 100);
  // Piece 1 is unrestricted yet granted a finite 40.
  const LintReport r = check_static_plan(info, {100, 40}, "t");
  const LintReport lm003 = plan_errors_only(r, Rule::LM003);
  ASSERT_EQ(lm003.diagnostics.size(), 1u);
  ASSERT_TRUE(lm003.diagnostics[0].piece.has_value());
  EXPECT_EQ(lm003.diagnostics[0].piece->piece, 1u);

  const std::vector<Value> good{100, kInfiniteLimit};
  EXPECT_TRUE(check_static_plan(info, good, "t").ok());
}

TEST(LimitCheck, MalformedDependencyGraphIsLm004) {
  // A child listed before its parent breaks the forest invariant.
  ChopPlanInfo bad;
  bad.piece_count = 3;
  bad.restricted = {true, true, true};
  bad.children = {{1}, {}, {1}};  // piece 1 has two parents (0 and 2)
  bad.kind = TxnKind::Update;
  bad.limit_total = 100;
  const LintReport r = check_plan_structure(bad, "t");
  EXPECT_FALSE(plan_errors_only(r, Rule::LM004).diagnostics.empty());

  // Marks not sized to the piece count.
  ChopPlanInfo short_marks;
  short_marks.piece_count = 3;
  short_marks.restricted = {true, true};
  short_marks.children = {{1}, {2}, {}};
  short_marks.kind = TxnKind::Update;
  short_marks.limit_total = 100;
  EXPECT_FALSE(plan_errors_only(check_plan_structure(short_marks, "t"),
                                Rule::LM004)
                   .diagnostics.empty());
}

/// A distributor that forgets half of every leftover -- the Figure 2 bug the
/// dynamic checker exists to catch.
class LeakyDistribution final : public LimitDistributor {
 public:
  explicit LeakyDistribution(const ChopPlanInfo& info) : info_(info) {
    assigned_.assign(info.piece_count, 0);
    if (!assigned_.empty()) assigned_[0] = info.limit_total;
  }
  Value limit_for(std::size_t piece) override {
    return info_.restricted[piece] ? assigned_[piece] : kInfiniteLimit;
  }
  void report_committed(std::size_t piece, Value z_p) override {
    const Value leftover = info_.restricted[piece]
                               ? (assigned_[piece] - z_p) / 2  // leaks half
                               : assigned_[piece];
    for (std::size_t child : info_.children[piece]) {
      assigned_[child] =
          leftover / static_cast<Value>(info_.children[piece].size());
    }
  }

 private:
  ChopPlanInfo info_;
  std::vector<Value> assigned_;
};

TEST(LimitCheck, LeftoverLeakIsLm005) {
  const ChopPlanInfo info = ChopPlanInfo::chain(
      {true, true, true}, TxnKind::Update, /*limit_total=*/300);
  const std::vector<Value> consumed{50, 50, 50};

  // The repo's own dynamic policy propagates exactly.
  DynamicDistribution good(info);
  EXPECT_TRUE(check_dynamic_plan(info, good, consumed, "t").ok());

  LeakyDistribution leaky(info);
  const LintReport r = check_dynamic_plan(info, leaky, consumed, "t");
  const LintReport lm005 = plan_errors_only(r, Rule::LM005);
  ASSERT_FALSE(lm005.diagnostics.empty());
  // First divergence is at piece 1: granted (300-50)/2, expected 250.
  ASSERT_TRUE(lm005.diagnostics[0].piece.has_value());
  EXPECT_EQ(lm005.diagnostics[0].piece->piece, 1u);
}

TEST(LimitCheck, DynamicConsumptionBeyondGrantStillConserves) {
  // Overconsumption clamps the leftover at zero (a piece cannot bequeath
  // negative budget); the checker models the same clamp, so this is clean.
  const ChopPlanInfo info =
      ChopPlanInfo::chain({true, true}, TxnKind::Update, 100);
  DynamicDistribution d(info);
  EXPECT_TRUE(check_dynamic_plan(info, d, {150, 0}, "t").ok());
}

}  // namespace
}  // namespace atp
