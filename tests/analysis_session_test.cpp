// AnalysisSession: incremental re-analysis over the type conflict graph's
// connected components.  recompute_count() pins exactly how many component
// fixpoints ran, so these tests fail if incrementality regresses to
// whole-stream recomputation.
#include <gtest/gtest.h>

#include <vector>

#include "analysis/session.h"

namespace atp {
namespace {

using namespace atp::analysis;

constexpr Key A1 = 1, A2 = 2, B1 = 11, B2 = 12, C1 = 21;

TxnProgram touching(const std::string& name, Key x, Key y,
                    TxnKind kind = TxnKind::Update) {
  ProgramBuilder b(name, kind);
  if (kind == TxnKind::Update) {
    b.add(x, 1, 10).add(y, 1, 10);
  } else {
    b.read(x).read(y);
  }
  return b.epsilon(100).build();
}

TEST(Session, DisjointTypesAnalyzeIndependently) {
  AnalysisSession s;
  const std::size_t a = s.add_txn(touching("a", A1, A2));
  EXPECT_EQ(s.recompute_count(), 1u);

  // b touches disjoint items: its arrival must not re-run a's component.
  const std::size_t b = s.add_txn(touching("b", B1, B2));
  EXPECT_EQ(s.recompute_count(), 2u);
  EXPECT_EQ(s.live_count(), 2u);

  // A third disjoint type: again exactly one new fixpoint.
  s.add_txn(touching("c", C1, C1));
  EXPECT_EQ(s.recompute_count(), 3u);

  EXPECT_TRUE(s.live(a));
  EXPECT_TRUE(s.live(b));
  EXPECT_TRUE(s.report().ok());
}

TEST(Session, RemoveAndReAddIsACacheHit) {
  AnalysisSession s;
  s.add_txn(touching("a", A1, A2));
  const std::size_t b = s.add_txn(touching("b", B1, B2));
  ASSERT_EQ(s.recompute_count(), 2u);

  // Removing b leaves {a}, whose result is cached from step 1.
  s.remove_txn(b);
  EXPECT_EQ(s.recompute_count(), 2u);
  EXPECT_EQ(s.live_count(), 1u);
  EXPECT_FALSE(s.live(b));

  // Re-adding an identical program re-creates the cached two-component mix.
  s.add_txn(touching("b", B1, B2));
  EXPECT_EQ(s.recompute_count(), 2u);
  EXPECT_EQ(s.live_count(), 2u);
}

TEST(Session, ConflictingTypeMergesComponents) {
  AnalysisSession s;
  const std::size_t a = s.add_txn(touching("a", A1, A2));
  const std::size_t b = s.add_txn(touching("b", B1, B2));
  ASSERT_EQ(s.recompute_count(), 2u);

  // A query spanning both item families fuses the two components: one new
  // fixpoint over the merged component (the singletons stay cached).
  const std::size_t bridge =
      s.add_txn(touching("bridge", A1, B1, TxnKind::Query));
  EXPECT_EQ(s.recompute_count(), 3u);

  // With the bridge gone the old components resolve from cache.
  s.remove_txn(bridge);
  EXPECT_EQ(s.recompute_count(), 3u);
  EXPECT_TRUE(s.live(a));
  EXPECT_TRUE(s.live(b));
}

TEST(Session, AnalysisReflectsCurrentMix) {
  // Alone, an update pair chops fully under ESR; a conflicting reader
  // changes its restricted marks when it joins.
  AnalysisSession s(Mode::Esr);
  const std::size_t t = s.add_txn(touching("transfer", A1, A2));
  {
    const TypeAnalysis& ta = s.analysis(t);
    EXPECT_EQ(ta.piece_starts.size(), 2u);  // chopped into singletons
    EXPECT_EQ(ta.zis, 0);                   // no siblings to diverge from
    for (bool r : ta.restricted) EXPECT_FALSE(r);
  }

  // A whole-transaction reader makes the S edge SC-cyclic: Z^is turns
  // positive, but one C path is no C-*cycle*, so nothing is restricted yet.
  const std::size_t audit = s.add_txn(ProgramBuilder("audit", TxnKind::Query)
                                          .read(A1)
                                          .read(A2)
                                          .epsilon(100)
                                          .not_choppable()
                                          .build());
  {
    const TypeAnalysis& ta = s.analysis(t);
    EXPECT_EQ(ta.piece_starts.size(), 2u);
    EXPECT_GT(ta.zis, 0);
  }

  // A second whole reader closes a C-only cycle through both transfer
  // pieces: they are restricted now.
  s.add_txn(ProgramBuilder("audit2", TxnKind::Query)
                .read(A1)
                .read(A2)
                .epsilon(100)
                .not_choppable()
                .build());
  {
    const TypeAnalysis& ta = s.analysis(t);
    EXPECT_EQ(ta.piece_starts.size(), 2u);
    for (bool r : ta.restricted) EXPECT_TRUE(r);
  }
  EXPECT_EQ(s.program(audit).name, "audit");
  EXPECT_TRUE(s.report().ok()) << s.report().to_text();
}

TEST(Session, SrModeSessionsCoarsenInsteadOfFlagging) {
  // Under SR the transfer/audit mix cannot stay chopped: the session's
  // finest chopping leaves both whole, and the report is clean (the cycle
  // forced a merge, not a diagnostic).
  AnalysisSession s(Mode::Sr);
  const std::size_t t = s.add_txn(touching("transfer", A1, A2));
  EXPECT_EQ(s.analysis(t).piece_starts.size(), 2u);

  s.add_txn(touching("audit", A1, A2, TxnKind::Query));
  EXPECT_EQ(s.analysis(t).piece_starts.size(), 1u);
  EXPECT_TRUE(s.report().ok());
}

TEST(Session, ModeIsPartOfTheCacheKey) {
  // The same mix analyzed under SR and ESR must not share cache entries --
  // a fresh session per mode recomputes.
  AnalysisSession sr(Mode::Sr);
  sr.add_txn(touching("transfer", A1, A2));
  sr.add_txn(touching("audit", A1, A2, TxnKind::Query));
  AnalysisSession esr(Mode::Esr);
  esr.add_txn(touching("transfer", A1, A2));
  esr.add_txn(touching("audit", A1, A2, TxnKind::Query));
  // SR merges back to whole; ESR keeps the chop.  Different answers prove
  // different fixpoints ran.
  EXPECT_EQ(sr.analysis(0).piece_starts.size(), 1u);
  EXPECT_EQ(esr.analysis(0).piece_starts.size(), 2u);
}

}  // namespace
}  // namespace atp
