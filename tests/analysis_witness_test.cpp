// SC-cycle witness extraction, rollback witnesses, and the lint validators
// (rules SC001/SC002/RB001/EP001).  Every witness asserted here is also
// re-verified against a freshly rebuilt chopping graph, so the tests never
// trust the extraction they are testing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "analysis/lint.h"
#include "analysis/witness.h"
#include "chop/analyzer.h"

namespace atp {
namespace {

using namespace atp::analysis;

constexpr Key X = 1, Y = 2, Z = 3;

TxnProgram transfer(Value bound = 100, Value eps = 100) {
  return ProgramBuilder("transfer", TxnKind::Update)
      .add(X, -10, bound)
      .add(Y, +10, bound)
      .epsilon(eps)
      .build();
}

TxnProgram audit_xy(Value eps = 100) {
  return ProgramBuilder("audit", TxnKind::Query)
      .read(X)
      .read(Y)
      .epsilon(eps)
      .build();
}

// The canonical bad chopping: transfer and audit both fully chopped.  The
// four pieces form the paper's SC-cycle (Section 1.2's non-serializable
// interleaving).
TEST(Witness, CanonicalScCycleIsFoundAndVerifies) {
  const std::vector<TxnProgram> programs{transfer(), audit_xy()};
  const Chopping chopping = Chopping::finest_candidate(programs);
  const PieceGraph g = build_chopping_graph(programs, chopping);
  ASSERT_TRUE(g.has_sc_cycle());

  const auto witness = find_sc_cycle(g, programs, chopping);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(witness->verify(g));

  // The minimal cycle here visits all four pieces: t.p1 -C- a.p1 -S- a.p2
  // -C- t.p2 -S- t.p1 (up to rotation/direction).
  ASSERT_EQ(witness->edges.size(), 4u);
  const auto s_count = std::count_if(
      witness->edges.begin(), witness->edges.end(),
      [](const WitnessEdge& e) { return e.kind == EdgeKind::S; });
  EXPECT_EQ(s_count, 2);
  std::set<PieceId> visited;
  for (const WitnessEdge& e : witness->edges) visited.insert(e.from);
  const std::set<PieceId> all{PieceId{0, 0}, PieceId{0, 1}, PieceId{1, 0},
                              PieceId{1, 1}};
  EXPECT_EQ(visited, all);

  // Every C edge carries op-level provenance on the shared item.
  for (const WitnessEdge& e : witness->edges) {
    if (e.kind != EdgeKind::C) continue;
    ASSERT_TRUE(e.conflict.has_value());
    EXPECT_TRUE(e.conflict->item == X || e.conflict->item == Y);
    EXPECT_FALSE(e.conflict->update_update);  // add vs read
  }
}

TEST(Witness, TamperedCycleFailsVerification) {
  const std::vector<TxnProgram> programs{transfer(), audit_xy()};
  const Chopping chopping = Chopping::finest_candidate(programs);
  const PieceGraph g = build_chopping_graph(programs, chopping);
  auto witness = find_sc_cycle(g, programs, chopping);
  ASSERT_TRUE(witness.has_value());

  CycleWitness wrong_kind = *witness;
  for (WitnessEdge& e : wrong_kind.edges) {
    if (e.kind == EdgeKind::S) {
      e.kind = EdgeKind::C;  // claim an S edge is a conflict
      break;
    }
  }
  EXPECT_FALSE(wrong_kind.verify(g));

  CycleWitness truncated = *witness;
  truncated.edges.pop_back();  // no longer a closed chain
  EXPECT_FALSE(truncated.verify(g));
}

// SR rejects the chopped transfer/audit pair; ESR tolerates the very same
// cycle because no C edge joins two update pieces -- the paper's core
// SR-vs-ESR separation, visible in the rule IDs.
TEST(Lint, EsrTolerableCycleThatSrRejects) {
  const std::vector<TxnProgram> programs{transfer(/*bound=*/100,
                                                  /*eps=*/1000),
                                         audit_xy(/*eps=*/1000)};
  const Chopping chopping = Chopping::finest_candidate(programs);

  const LintReport sr = lint_sr_chopping(programs, chopping);
  ASSERT_EQ(sr.error_count(), 1u);
  EXPECT_EQ(sr.diagnostics[0].rule, Rule::SC001);
  ASSERT_TRUE(sr.diagnostics[0].cycle.has_value());
  const PieceGraph g = build_chopping_graph(programs, chopping);
  EXPECT_TRUE(sr.diagnostics[0].cycle->verify(g));

  const LintReport esr = lint_esr_chopping(programs, chopping);
  EXPECT_TRUE(esr.ok()) << esr.to_text();
}

// Two writers on the same items: the cycle now crosses an update-update C
// edge, which even ESR must reject (SC002), with the witness flagged as such.
TEST(Lint, UpdateUpdateCycleRejectedUnderEsr) {
  const TxnProgram w1 = ProgramBuilder("w1", TxnKind::Update)
                            .write(X, 1, 1)
                            .write(Y, 1, 1)
                            .epsilon(1000)
                            .build();
  const TxnProgram w2 = ProgramBuilder("w2", TxnKind::Update)
                            .write(X, 2, 1)
                            .write(Y, 2, 1)
                            .epsilon(1000)
                            .build();
  const std::vector<TxnProgram> programs{w1, w2};
  const Chopping chopping = Chopping::finest_candidate(programs);

  const LintReport esr = lint_esr_chopping(programs, chopping);
  ASSERT_GE(esr.error_count(), 1u);
  const Diagnostic* sc002 = nullptr;
  for (const Diagnostic& d : esr.diagnostics) {
    if (d.rule == Rule::SC002) sc002 = &d;
  }
  ASSERT_NE(sc002, nullptr) << esr.to_text();
  ASSERT_TRUE(sc002->cycle.has_value());
  EXPECT_TRUE(sc002->cycle->has_update_update());
  const PieceGraph g = build_chopping_graph(programs, chopping);
  EXPECT_TRUE(sc002->cycle->verify(g, /*require_update_update=*/true));
}

TEST(Lint, ZisOverLimitFlaggedAsEp001) {
  // Chopped transfer against a whole audit: no update-update cycle, but
  // Z^is = 2 * bound = 200 > Limit_t = 150.
  const std::vector<TxnProgram> programs{transfer(/*bound=*/100, /*eps=*/150),
                                         audit_xy(/*eps=*/10000)};
  Chopping chopping({{0, 1}, {0}});
  const LintReport esr = lint_esr_chopping(programs, chopping);
  ASSERT_EQ(esr.error_count(), 1u);
  EXPECT_EQ(esr.diagnostics[0].rule, Rule::EP001);
  EXPECT_EQ(esr.diagnostics[0].txn, "transfer");
}

TEST(Lint, RollbackEscapingPieceOneIsRb001) {
  TxnProgram p = ProgramBuilder("risky", TxnKind::Update)
                     .add(X, 1, 1)
                     .add(Y, 1, 1)
                     .rollback_point()  // after op 1
                     .add(Z, 1, 1)
                     .epsilon(100)
                     .build();
  const std::vector<TxnProgram> programs{p};
  Chopping chopping({{0, 1, 2}});  // rollback op lands in piece 2

  const auto diags = rollback_violations(programs, chopping);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, Rule::RB001);
  EXPECT_EQ(diags[0].txn, "risky");
  ASSERT_TRUE(diags[0].op.has_value());
  EXPECT_EQ(*diags[0].op, 1u);
  ASSERT_TRUE(diags[0].piece.has_value());
  EXPECT_EQ(*diags[0].piece, (PieceId{0, 1}));

  // The same program chopped only after the rollback point is safe.
  Chopping safe({{0, 2}});
  EXPECT_TRUE(rollback_violations(programs, safe).empty());
}

TEST(Explain, MergeStepsCarryVerifiedCycles) {
  const std::vector<TxnProgram> programs{transfer(), audit_xy()};
  const ExplainedChopping explained =
      explain_finest_chopping(programs, Mode::Sr);

  // SR must coarsen both transactions back to whole (the canonical result).
  EXPECT_EQ(explained.chopping.piece_count(0), 1u);
  EXPECT_EQ(explained.chopping.piece_count(1), 1u);
  ASSERT_EQ(explained.steps.size(), 2u);
  for (const MergeExplanation& ex : explained.steps) {
    EXPECT_EQ(ex.step.cause, MergeCause::ScCycle);
    ASSERT_TRUE(ex.witness.has_value());
    // The witness was extracted from that round's graph: rebuild it and
    // re-verify -- the derivation is auditable, not just narrated.
    const PieceGraph g = build_chopping_graph(programs, ex.step.before);
    EXPECT_TRUE(ex.witness->verify(g));
  }
}

// ---------------------------------------------------------------------------
// Property test: on randomized job streams and choppings, whenever the block
// decomposition reports an SC-cycle, extraction must produce a witness that
// verifies against an independently rebuilt graph; and it must never produce
// a witness when no cycle exists (verify() would catch a fabricated one).
// ---------------------------------------------------------------------------

struct Lcg {
  std::uint64_t state;
  std::uint64_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  }
  std::size_t below(std::size_t n) { return next() % n; }
};

std::vector<TxnProgram> random_programs(Lcg& rng) {
  const std::size_t n_txns = 2 + rng.below(3);
  std::vector<TxnProgram> programs;
  for (std::size_t t = 0; t < n_txns; ++t) {
    ProgramBuilder b("txn" + std::to_string(t),
                     rng.below(3) == 0 ? TxnKind::Query : TxnKind::Update);
    const std::size_t n_ops = 2 + rng.below(4);
    for (std::size_t i = 0; i < n_ops; ++i) {
      const Key item = 1 + rng.below(4);
      switch (rng.below(3)) {
        case 0: b.read(item); break;
        case 1: b.add(item, 1, 10); break;
        default: b.write(item, 1, 10); break;
      }
    }
    b.epsilon(100);
    programs.push_back(b.build());
  }
  return programs;
}

Chopping random_chopping(Lcg& rng, const std::vector<TxnProgram>& programs) {
  std::vector<std::vector<std::size_t>> starts;
  for (const TxnProgram& p : programs) {
    std::vector<std::size_t> s{0};
    for (std::size_t i = 1; i < p.ops.size(); ++i) {
      if (rng.below(2) == 0) s.push_back(i);
    }
    starts.push_back(std::move(s));
  }
  return Chopping(std::move(starts));
}

TEST(WitnessProperty, EveryReportedCycleVerifiesOnRebuiltGraph) {
  Lcg rng{20260807};
  std::size_t cycles_seen = 0, uu_cycles_seen = 0;
  for (int iter = 0; iter < 300; ++iter) {
    const std::vector<TxnProgram> programs = random_programs(rng);
    const Chopping chopping = random_chopping(rng, programs);
    const PieceGraph g = build_chopping_graph(programs, chopping);
    const PieceGraph rebuilt = build_chopping_graph(programs, chopping);

    const auto witness = find_sc_cycle(g, programs, chopping);
    ASSERT_EQ(witness.has_value(), g.has_sc_cycle()) << "iter " << iter;
    if (witness) {
      ++cycles_seen;
      EXPECT_TRUE(witness->verify(rebuilt)) << "iter " << iter;
      EXPECT_GE(witness->edges.size(), 3u);
    }

    const auto uu = find_sc_cycle(g, programs, chopping,
                                  /*require_update_update=*/true);
    ASSERT_EQ(uu.has_value(), g.has_update_update_sc_cycle())
        << "iter " << iter;
    if (uu) {
      ++uu_cycles_seen;
      EXPECT_TRUE(uu->verify(rebuilt, /*require_update_update=*/true))
          << "iter " << iter;
    }
  }
  // The generator must actually exercise both branches.
  EXPECT_GT(cycles_seen, 50u);
  EXPECT_GT(uu_cycles_seen, 20u);
}

}  // namespace
}  // namespace atp
