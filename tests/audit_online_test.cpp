// Online certifier tests: hand-crafted histories streamed through a live
// Tracer (injected write-skew cycle, ESR overruns, out-of-order commits,
// graph-source retirement incl. the schedules that defeat seq-watermark
// frontiers), online-vs-offline verdict equivalence on real concurrent
// executor runs, and the bounded-window guarantee under sustained load.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "audit/esr_certifier.h"
#include "audit/online_certifier.h"
#include "audit/sr_certifier.h"
#include "engine/executor.h"
#include "obs/metrics_registry.h"
#include "sched/database.h"
#include "trace/tracer.h"
#include "workload/banking.h"

namespace atp {
namespace {

TEST(OnlineCertifier, PassesASerialHistoryAndRetiresIt) {
  Tracer tracer;
  OnlineCertifier cert(tracer);
  tracer.record(TraceKind::Write, 0, 1, 10);
  tracer.record(TraceKind::TxnCommit, 0, 1);
  tracer.record(TraceKind::Read, 0, 2, 10);
  tracer.record(TraceKind::Write, 0, 2, 11);
  tracer.record(TraceKind::TxnCommit, 0, 2);
  cert.pump();

  const OnlineCertifierStats s = cert.stats();
  EXPECT_EQ(s.violations(), 0u);
  EXPECT_EQ(s.events_processed, 5u);
  EXPECT_EQ(s.edges_added, 1u);  // the wr edge T1 -> T2
  // Everything is decided and applied with no incoming edges left, so the
  // source-draining sweep retires the whole chain in one cascade.
  EXPECT_EQ(s.live_txns, 0u);
  EXPECT_EQ(s.pending_ops, 0u);
  EXPECT_EQ(s.window_nodes, 0u);
  EXPECT_EQ(s.retired_nodes, 2u);
}

TEST(OnlineCertifier, DetectsInjectedWriteSkewCycleLive) {
  // The classic rw-rw cycle audit_test feeds the offline certifier, now
  // streamed: never blocked by fuzzy/optimistic locking, only the graph
  // sees it.  The cycle must be caught at commit time -- before either
  // participant can retire.
  Tracer tracer;
  OnlineCertifier cert(tracer);
  tracer.record(TraceKind::Read, 0, 1, 10);   // T1 r(x)
  tracer.record(TraceKind::Read, 0, 2, 11);   // T2 r(y)
  tracer.record(TraceKind::Write, 0, 1, 11);  // T1 w(y)
  tracer.record(TraceKind::Write, 0, 2, 10);  // T2 w(x)
  tracer.record(TraceKind::TxnCommit, 0, 1);
  tracer.record(TraceKind::TxnCommit, 0, 2);
  cert.pump();

  const OnlineCertifierStats s = cert.stats();
  EXPECT_EQ(s.sr_violations, 1u);
  EXPECT_EQ(s.esr_violations, 0u);
  const auto viols = cert.violations();
  ASSERT_EQ(viols.size(), 1u);
  EXPECT_EQ(viols[0].kind, OnlineViolation::Kind::SrCycle);
  EXPECT_NE(viols[0].witness.find("SR violation"), std::string::npos);
  EXPECT_NE(viols[0].witness.find("rw[key"), std::string::npos);

  // The offline certifier agrees on the same history.
  const SrReport offline = certify_sr(tracer.collect());
  EXPECT_FALSE(offline.serializable);
}

TEST(OnlineCertifier, AbortedConflictsCreateNoEdgesAndFreeMemory) {
  Tracer tracer;
  OnlineCertifier cert(tracer);
  tracer.record(TraceKind::Read, 0, 1, 10);
  tracer.record(TraceKind::Read, 0, 2, 11);
  tracer.record(TraceKind::Write, 0, 1, 11);
  tracer.record(TraceKind::Write, 0, 2, 10);
  tracer.record(TraceKind::TxnCommit, 0, 1);
  tracer.record(TraceKind::TxnAbort, 0, 2);  // the cycle's second half dies
  cert.pump();

  const OnlineCertifierStats s = cert.stats();
  EXPECT_EQ(s.violations(), 0u);
  EXPECT_EQ(s.live_txns, 0u);
  EXPECT_EQ(s.pending_ops, 0u);  // aborted ops drained, not leaked
  EXPECT_EQ(s.window_nodes, 0u);
}

TEST(OnlineCertifier, OutOfOrderCommitKeepsEdgeDirectionsRight) {
  // T2 commits before T1 although T1's conflicting write came first.  The
  // per-key queue must stall on the undecided head rather than apply T2's
  // op early -- applying out of order would flip the ww edge and a third
  // transaction could then witness a false cycle.
  Tracer tracer;
  OnlineCertifier cert(tracer);
  tracer.record(TraceKind::Write, 0, 1, 10);
  tracer.record(TraceKind::Write, 0, 2, 10);
  tracer.record(TraceKind::TxnCommit, 0, 2);
  cert.pump();
  EXPECT_EQ(cert.stats().edges_added, 0u);  // stalled behind undecided T1
  EXPECT_EQ(cert.stats().pending_ops, 2u);

  tracer.record(TraceKind::TxnCommit, 0, 1);
  cert.pump();
  const OnlineCertifierStats s = cert.stats();
  EXPECT_EQ(s.edges_added, 1u);  // ww T1 -> T2, commit order notwithstanding
  EXPECT_EQ(s.violations(), 0u);
  EXPECT_EQ(s.pending_ops, 0u);
}

TEST(OnlineCertifier, EsrOverrunAndLedgerMismatchDetectedOnline) {
  Tracer tracer;
  OnlineCertifier cert(tracer);
  // T1: two imports of 6 against limit 10 -> overrun at the second charge;
  // commit-time Z matches the ledger, so only the overrun fires.
  tracer.record(TraceKind::FuzzImport, 0, 1, 0, 6, 10, 0, 2);
  tracer.record(TraceKind::FuzzImport, 0, 1, 0, 6, 10, 0, 2);
  tracer.record(TraceKind::TxnCommit, 0, 1, 0, /*Z=*/12);
  // T3: in-limit import but the commit announces a different Z.
  tracer.record(TraceKind::FuzzImport, 0, 3, 0, 3, 10, 0, 4);
  tracer.record(TraceKind::TxnCommit, 0, 3, 0, /*Z=*/9);
  cert.pump();

  const OnlineCertifierStats s = cert.stats();
  EXPECT_EQ(s.esr_violations, 2u);
  EXPECT_EQ(s.sr_violations, 0u);
  const auto viols = cert.violations();
  ASSERT_EQ(viols.size(), 2u);
  EXPECT_EQ(viols[0].kind, OnlineViolation::Kind::EsrImportOverrun);
  EXPECT_NE(viols[0].witness.find("import overrun"), std::string::npos);
  EXPECT_EQ(viols[1].kind, OnlineViolation::Kind::EsrLedgerMismatch);

  // Offline replay of the same trace: identical verdict and count.
  const EsrReport offline = certify_esr(tracer.collect());
  EXPECT_FALSE(offline.ok);
  EXPECT_EQ(offline.violations.size(), 2u);
}

TEST(OnlineCertifier, AbortedOverrunIsTheMechanismWorking) {
  Tracer tracer;
  OnlineCertifier cert(tracer);
  tracer.record(TraceKind::FuzzImport, 0, 1, 0, 12, 10, 0, 2);
  tracer.record(TraceKind::TxnAbort, 0, 1);
  cert.pump();
  EXPECT_EQ(cert.stats().violations(), 0u);
  EXPECT_TRUE(certify_esr(tracer.collect()).ok);  // offline agrees
}

TEST(OnlineCertifier, UndecidedStragglerDoesNotPinConflictFreeNodes) {
  Tracer tracer;
  OnlineCertifier cert(tracer);
  // A long-lived undecided transaction on site 1 while both sites churn.
  // Retirement keys off the graph, not wall-clock overlap: the committed
  // nodes have no incoming edges (and no ops queued), so they retire even
  // though T99 is still undecided -- including T98, which postdates T99 on
  // the same site.
  tracer.record(TraceKind::TxnBegin, 1, 99);
  tracer.record(TraceKind::Write, 0, 1, 10);
  tracer.record(TraceKind::TxnCommit, 0, 1);
  tracer.record(TraceKind::Write, 1, 98, 20);
  tracer.record(TraceKind::TxnCommit, 1, 98);
  cert.pump();

  OnlineCertifierStats s = cert.stats();
  EXPECT_EQ(s.live_txns, 1u);  // site1:T99
  EXPECT_EQ(s.retired_nodes, 2u);
  EXPECT_EQ(s.window_nodes, 0u);

  tracer.record(TraceKind::TxnAbort, 1, 99);
  cert.pump();
  s = cert.stats();
  EXPECT_EQ(s.live_txns, 0u);
  EXPECT_EQ(s.window_nodes, 0u);
  EXPECT_EQ(s.retired_nodes, 2u);
}

TEST(OnlineCertifier, PendingOpsOfACommittedTxnKeepItsConflictersAlive) {
  // Regression for the retirement unsoundness the review caught: N commits
  // and is fully applied while X -- already committed -- still has a read
  // queued behind live L.  A seq low-watermark over live transactions
  // would retire N here (frontier = L's first seq = 7 > N's last seq = 6),
  // and the later N -> L edge would be skipped, losing the cycle
  // X -> N -> L -> X that the offline certifier reports.
  Tracer tracer;
  OnlineCertifier cert(tracer);
  tracer.record(TraceKind::TxnBegin, 0, 1);   // X            @1
  tracer.record(TraceKind::Write, 0, 1, 3);   // X w(k3)      @2
  tracer.record(TraceKind::TxnBegin, 0, 2);   // N            @3
  tracer.record(TraceKind::Read, 0, 2, 2);    // N r(k2)      @4
  tracer.record(TraceKind::Write, 0, 2, 3);   // N w(k3)      @5
  tracer.record(TraceKind::TxnCommit, 0, 2);  // N commits    @6
  tracer.record(TraceKind::TxnBegin, 0, 3);   // L            @7
  tracer.record(TraceKind::Write, 0, 3, 2);   // L w(k2)      @8
  tracer.record(TraceKind::Read, 0, 1, 2);    // X r(k2)      @9
  tracer.record(TraceKind::TxnCommit, 0, 1);  // X commits    @10
  cert.pump();  // the sweep that used to retire N out from under the cycle
  EXPECT_EQ(cert.stats().sr_violations, 0u);

  tracer.record(TraceKind::TxnCommit, 0, 3);  // L commits: cycle closes
  cert.pump();

  const OnlineCertifierStats s = cert.stats();
  EXPECT_EQ(s.sr_violations, 1u);
  const auto viols = cert.violations();
  ASSERT_EQ(viols.size(), 1u);
  EXPECT_NE(viols[0].witness.find("SR violation"), std::string::npos);
  const SrReport offline = certify_sr(tracer.collect());
  EXPECT_FALSE(offline.serializable);  // online and offline agree

  // Report-and-drain: the recorded cycle must not pin the window.
  EXPECT_EQ(s.window_nodes, 0u);
  EXPECT_EQ(s.pending_ops, 0u);
}

TEST(OnlineCertifier, SeqWatermarksCannotRetireThisCycleButInDegreeCan) {
  // The stronger schedule: by the time the dangerous sweep runs, EVERY
  // transaction that can still apply ops (live L, committed-but-pending B)
  // began after N's last event, so even a frontier extended with
  // committed-pending transactions would retire N -- yet N is still k2's
  // last writer, and B's queued read of k2 later closes A -> N -> B -> A.
  // Only the absence of incoming edges (A -> N exists) justifies keeping N.
  Tracer tracer;
  OnlineCertifier cert(tracer);
  tracer.record(TraceKind::TxnBegin, 0, 1);   // A            @1
  tracer.record(TraceKind::Read, 0, 1, 1);    // A r(k1)      @2
  tracer.record(TraceKind::TxnBegin, 0, 2);   // N            @3
  tracer.record(TraceKind::Write, 0, 2, 1);   // N w(k1)      @4
  tracer.record(TraceKind::Write, 0, 2, 2);   // N w(k2)      @5
  tracer.record(TraceKind::TxnCommit, 0, 2);  // N commits    @6
  tracer.record(TraceKind::TxnBegin, 0, 3);   // L            @7
  tracer.record(TraceKind::Write, 0, 3, 2);   // L w(k2)      @8
  tracer.record(TraceKind::TxnBegin, 0, 4);   // B            @9
  tracer.record(TraceKind::Write, 0, 4, 3);   // B w(k3)      @10
  tracer.record(TraceKind::Read, 0, 4, 2);    // B r(k2)      @11
  tracer.record(TraceKind::TxnCommit, 0, 4);  // B commits    @12
  tracer.record(TraceKind::Read, 0, 1, 3);    // A r(k3)      @13
  tracer.record(TraceKind::TxnCommit, 0, 1);  // A commits    @14
  cert.pump();  // A->N and B->A recorded; N fully applied, in-degree 1
  EXPECT_EQ(cert.stats().sr_violations, 0u);

  tracer.record(TraceKind::TxnAbort, 0, 3);  // L dies: B reads k2 from N
  cert.pump();

  const OnlineCertifierStats s = cert.stats();
  EXPECT_EQ(s.sr_violations, 1u);
  const SrReport offline = certify_sr(tracer.collect());
  EXPECT_FALSE(offline.serializable);  // online and offline agree
  EXPECT_EQ(s.window_nodes, 0u);       // and the window still drains
  EXPECT_EQ(s.live_txns, 0u);
  EXPECT_EQ(s.pending_ops, 0u);
}

TEST(OnlineCertifier, StartStopSafeFromConcurrentControlThreads) {
  // start()/stop() may race (e.g. a signal-handling thread against the main
  // thread at shutdown); the control mutex must make that safe.  TSan (the
  // audit-online label runs in the TSan job) is the real oracle here.
  Tracer tracer;
  OnlineCertifier cert(tracer);
  std::vector<std::thread> ctl;
  for (int t = 0; t < 4; ++t) {
    ctl.emplace_back([&cert] {
      for (int i = 0; i < 25; ++i) {
        cert.start();
        cert.stop();
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    tracer.record(TraceKind::Write, 0, TxnId(i + 1), Key(i % 8));
    tracer.record(TraceKind::TxnCommit, 0, TxnId(i + 1));
  }
  for (auto& th : ctl) th.join();
  cert.stop();

  const OnlineCertifierStats s = cert.stats();
  EXPECT_EQ(s.violations(), 0u);
  EXPECT_EQ(s.events_processed, 400u);
  EXPECT_EQ(s.window_nodes, 0u);
}

TEST(OnlineCertifier, DroppedEventsRaiseStickyDegradedFlag) {
  Tracer tracer(/*per_thread_capacity=*/8);
  obs::MetricsRegistry reg;
  OnlineCertifierOptions opts;
  opts.metrics = &reg;
  OnlineCertifier cert(tracer, opts);
  for (int i = 0; i < 40; ++i) {
    tracer.record(TraceKind::Read, 0, 1, Key(i));
  }
  cert.pump();

  const OnlineCertifierStats s = cert.stats();
  EXPECT_TRUE(s.degraded);
  EXPECT_EQ(s.dropped_events, 32u);
  const auto snap = reg.snapshot();
  const obs::Sample* deg = snap.find("audit.online.degraded");
  ASSERT_NE(deg, nullptr);
  EXPECT_EQ(deg->value, 1.0);
  const obs::Sample* drops = snap.find("audit.online.dropped_events");
  ASSERT_NE(drops, nullptr);
  EXPECT_EQ(drops->value, 32.0);
}

TEST(OnlineCertifier, PublishesWindowHealthThroughRegistry) {
  obs::MetricsRegistry reg;
  Tracer tracer;
  OnlineCertifierOptions opts;
  opts.metrics = &reg;
  OnlineCertifier cert(tracer, opts);
  tracer.record(TraceKind::Write, 0, 1, 10);
  tracer.record(TraceKind::TxnCommit, 0, 1);
  cert.pump();

  const auto snap = reg.snapshot();
  for (const char* name :
       {"audit.online.violations", "audit.online.events_processed",
        "audit.online.window_nodes", "audit.online.retired_nodes",
        "audit.online.window_lag_us", "audit.online.live_txns"}) {
    EXPECT_NE(snap.find(name), nullptr) << name;
  }
  EXPECT_EQ(snap.find("audit.online.violations")->value, 0.0);
  EXPECT_EQ(snap.find("audit.online.events_processed")->value, 2.0);
}

// ---------------------------------------------------------------------------
// Online vs offline on real concurrent runs, and the bounded-window
// guarantee.  Mirrors audit_test's end-to-end oracles.

Workload small_banking(std::uint64_t seed) {
  BankingConfig cfg;
  cfg.branches = 2;
  cfg.accounts_per_branch = 8;
  cfg.branch_audit_fraction = 0.2;
  cfg.global_audit_fraction = 0.1;
  return make_banking(cfg, 120, seed);
}

/// Run `method` with the online certifier live (background pump) and return
/// its final stats; the offline certifiers judge the same trace afterwards.
void equivalence_run(const MethodConfig& method, std::uint64_t seed) {
  SCOPED_TRACE(method.name());
  Tracer tracer(1 << 18);
  OnlineCertifierOptions opts;
  opts.check_sr = method.sched == SchedulerKind::CC;
  OnlineCertifier cert(tracer, opts);
  cert.start();

  const Workload w = small_banking(seed);
  auto plan = ExecutionPlan::build(w.types, method);
  ASSERT_TRUE(plan.ok()) << plan.status().to_string();
  DatabaseOptions dbo = Executor::database_options(method);
  dbo.tracer = &tracer;
  {
    Database db(dbo);
    w.load_into(db);
    ExecutorOptions eopts;
    eopts.workers = 4;
    eopts.seed = 7;
    const auto report = Executor::run(db, plan.value(), w.instances, eopts);
    EXPECT_EQ(report.committed + report.rolled_back, w.instances.size());
  }
  cert.stop();  // final drain: the verdict now covers the whole history

  const OnlineCertifierStats s = cert.stats();
  EXPECT_FALSE(s.degraded);
  EXPECT_EQ(s.live_txns, 0u);
  EXPECT_EQ(s.pending_ops, 0u);
  EXPECT_GT(s.events_processed, 0u);

  const auto events = tracer.collect();
  const EsrReport esr = certify_esr(events, tracer.dropped());
  EXPECT_TRUE(esr.complete);
  EXPECT_EQ(s.esr_violations == 0, esr.ok) << esr.describe();
  if (opts.check_sr) {
    // Online runs at ET (piece) granularity; compare against the offline
    // piece-level graph.
    const SrReport sr = certify_sr(events, nullptr, tracer.dropped());
    EXPECT_TRUE(sr.complete);
    EXPECT_EQ(s.sr_violations == 0, sr.serializable) << sr.describe();
    EXPECT_EQ(s.sr_violations, 0u);  // strict 2PL pieces: must be clean
  }
  EXPECT_EQ(s.esr_violations, 0u);
}

TEST(OnlineOracle, MatchesOfflineOnStrict2plRun) {
  equivalence_run(MethodConfig::baseline_sr(), 31);
}

TEST(OnlineOracle, MatchesOfflineOnEsrChoppedCcRun) {
  equivalence_run(MethodConfig::method2(), 32);
}

TEST(OnlineOracle, MatchesOfflineOnDivergenceControlRuns) {
  equivalence_run(MethodConfig::method1(), 33);
  equivalence_run(MethodConfig::method3(), 34);
}

TEST(OnlineOracle, WindowIsBoundedByPumpCadenceNotHistoryLength) {
  // 2000 committed transactions, pumped every 50: the source-draining
  // sweep must clear each decided batch, so the window peaks at the
  // inter-pump commit count -- 50 -- no matter how long the history grows.
  Tracer tracer(1 << 18);
  OnlineCertifier cert(tracer);
  DatabaseOptions dbo;
  dbo.scheduler = SchedulerKind::CC;
  dbo.tracer = &tracer;
  Database db(dbo);
  constexpr Key kKeys = 32;
  for (Key k = 0; k < kKeys; ++k) db.load(k, 0);

  constexpr int kTxns = 2000;
  for (int i = 0; i < kTxns; ++i) {
    Txn txn = db.begin(TxnKind::Update, EpsilonSpec::unlimited());
    ASSERT_TRUE(txn.read(Key(i) % kKeys).ok());
    ASSERT_TRUE(txn.write(Key(i) % kKeys, Value(i)).ok());
    ASSERT_TRUE(txn.commit().ok());
    if (i % 50 == 49) {
      cert.pump();
      // Everything recorded so far is decided: the whole batch retires.
      EXPECT_EQ(cert.stats().window_nodes, 0u);
    }
  }
  cert.stop();

  const OnlineCertifierStats s = cert.stats();
  EXPECT_EQ(s.violations(), 0u);
  EXPECT_EQ(s.retired_nodes, std::uint64_t(kTxns));
  EXPECT_LE(s.window_nodes_peak, 50u);  // bounded by cadence, not history
  EXPECT_EQ(s.live_txns, 0u);
  EXPECT_EQ(s.pending_ops, 0u);
}

TEST(OnlineOracle, WindowDrainsUnderConcurrentSustainedLoad) {
  // The same guarantee with the background pump racing 4 recorder threads:
  // retirement must make progress while the run is in flight (the window
  // never accumulates the entire history), and the final drain empties it.
  Tracer tracer(1 << 18);
  OnlineCertifier cert(tracer);
  DatabaseOptions dbo;
  dbo.scheduler = SchedulerKind::CC;
  dbo.tracer = &tracer;
  Database db(dbo);
  constexpr Key kKeys = 64;
  for (Key k = 0; k < kKeys; ++k) db.load(k, 0);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 400;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db, t] {
      // Disjoint key ranges: no deadlock aborts, maximal commit volume.
      const Key base = Key(t) * (kKeys / kThreads);
      for (int i = 0; i < kPerThread; ++i) {
        Txn txn = db.begin(TxnKind::Update, EpsilonSpec::unlimited());
        const Key k = base + Key(i) % (kKeys / kThreads);
        ASSERT_TRUE(txn.read(k).ok());
        ASSERT_TRUE(txn.write(k, Value(i)).ok());
        ASSERT_TRUE(txn.commit().ok());
      }
    });
  }
  for (int pumps = 0; pumps < 1000; ++pumps) {
    cert.pump();
    if (cert.stats().retired_nodes >=
        std::uint64_t(kThreads) * kPerThread) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  for (auto& th : threads) th.join();
  cert.stop();

  const OnlineCertifierStats s = cert.stats();
  const std::uint64_t total = std::uint64_t(kThreads) * kPerThread;
  EXPECT_EQ(s.violations(), 0u);
  EXPECT_EQ(s.retired_nodes, total);
  EXPECT_EQ(s.live_txns, 0u);
  EXPECT_EQ(s.pending_ops, 0u);
  // Once nothing is live, the final drain must empty the window completely.
  // (The strict peak bound lives in WindowIsBoundedByPumpCadence... above --
  // here the peak depends on how the pump thread interleaves with the load.)
  EXPECT_EQ(s.window_nodes, 0u);
}

}  // namespace
}  // namespace atp
