// SR / ESR certifier tests: hand-crafted histories (including a deliberately
// non-serializable one), merge-map semantics for chopped transactions, the
// fuzziness-ledger replay, and end-to-end oracles over real executor runs.
#include <gtest/gtest.h>

#include <vector>

#include "audit/esr_certifier.h"
#include "audit/sr_certifier.h"
#include "engine/executor.h"
#include "trace/tracer.h"
#include "workload/banking.h"

namespace atp {
namespace {

// Hand-crafted event builder: seq doubles as timestamp; everything else on
// defaults unless the test cares.
TraceEvent ev(std::uint64_t seq, TraceKind kind, TxnId txn, Key key = 0,
              double a = 0, double b = 0, std::uint64_t aux = 0,
              std::uint64_t aux2 = 0, SiteId site = 0) {
  TraceEvent e;
  e.seq = seq;
  e.ts_us = std::int64_t(seq);
  e.site = site;
  e.kind = kind;
  e.txn = txn;
  e.key = key;
  e.a = a;
  e.b = b;
  e.aux = aux;
  e.aux2 = aux2;
  return e;
}

TEST(SrCertifier, PassesASerialHistory) {
  // T1: w(x) commit; then T2: r(x) w(y) commit.  One wr edge, acyclic.
  const std::vector<TraceEvent> events{
      ev(1, TraceKind::Write, 1, 10),
      ev(2, TraceKind::TxnCommit, 1),
      ev(3, TraceKind::Read, 2, 10),
      ev(4, TraceKind::Write, 2, 11),
      ev(5, TraceKind::TxnCommit, 2),
  };
  const SrReport report = certify_sr(events);
  EXPECT_TRUE(report.serializable);
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.committed_txns, 2u);
  EXPECT_EQ(report.edges, 1u);
  EXPECT_TRUE(report.cycle.empty());
  EXPECT_NE(report.describe().find("SR: OK"), std::string::npos);
}

TEST(SrCertifier, DetectsInjectedNonSerializableHistory) {
  // The classic rw-rw cycle (write skew): T1 reads x then writes y AFTER T2
  // read y; T2 reads y then writes x after T1 read x.  Not conflict-
  // serializable, yet never blocked under fuzzy/optimistic locking.
  const std::vector<TraceEvent> events{
      ev(1, TraceKind::Read, 1, 10),   // T1 r(x)
      ev(2, TraceKind::Read, 2, 11),   // T2 r(y)
      ev(3, TraceKind::Write, 1, 11),  // T1 w(y)  -> rw edge T2 -> T1
      ev(4, TraceKind::Write, 2, 10),  // T2 w(x)  -> rw edge T1 -> T2
      ev(5, TraceKind::TxnCommit, 1),
      ev(6, TraceKind::TxnCommit, 2),
  };
  const SrReport report = certify_sr(events);
  EXPECT_FALSE(report.serializable);
  ASSERT_EQ(report.cycle.size(), 2u);
  // The cycle closes: each edge's head is the next edge's tail.
  EXPECT_EQ(report.cycle[0].to, report.cycle[1].from);
  EXPECT_EQ(report.cycle[1].to, report.cycle[0].from);
  EXPECT_EQ(report.cycle[0].kind, DepKind::RW);
  EXPECT_EQ(report.cycle[1].kind, DepKind::RW);
  const std::string verdict = report.describe();
  EXPECT_NE(verdict.find("SR violation"), std::string::npos);
  EXPECT_NE(verdict.find("rw"), std::string::npos);
}

TEST(SrCertifier, UncommittedTransactionsCreateNoEdges) {
  // T2's conflicting ops never commit, so the cycle's second half vanishes.
  const std::vector<TraceEvent> events{
      ev(1, TraceKind::Read, 1, 10),
      ev(2, TraceKind::Read, 2, 11),
      ev(3, TraceKind::Write, 1, 11),
      ev(4, TraceKind::Write, 2, 10),
      ev(5, TraceKind::TxnCommit, 1),
      ev(6, TraceKind::TxnAbort, 2),
  };
  const SrReport report = certify_sr(events);
  EXPECT_TRUE(report.serializable);
  EXPECT_EQ(report.committed_txns, 1u);
  EXPECT_EQ(report.edges, 0u);
}

TEST(SrCertifier, SameKeyDifferentSitesNeverConflict) {
  const std::vector<TraceEvent> events{
      ev(1, TraceKind::Write, 1, 10, 0, 0, 0, 0, /*site=*/0),
      ev(2, TraceKind::Write, 1, 10, 0, 0, 0, 0, /*site=*/1),
      ev(3, TraceKind::TxnCommit, 1, 0, 0, 0, 0, 0, /*site=*/0),
      ev(4, TraceKind::TxnCommit, 1, 0, 0, 0, 0, 0, /*site=*/1),
  };
  const SrReport report = certify_sr(events);
  EXPECT_TRUE(report.serializable);
  EXPECT_EQ(report.committed_txns, 2u);  // (site 0, T1) and (site 1, T1)
  EXPECT_EQ(report.edges, 0u);
}

TEST(SrCertifier, MergeMapLiftsPieceCycleToOriginals) {
  // Pieces 11 and 12 belong to original 100; piece-level the history is
  // acyclic (11 -> 2 -> 12), but merged to originals it is 100 <-> 2: the
  // interleaving the certifier must flag at original-transaction granularity.
  const std::vector<TraceEvent> events{
      ev(1, TraceKind::PieceStart, 11, 0, 0, 0, 0, /*original=*/100),
      ev(2, TraceKind::PieceStart, 12, 1, 0, 0, 0, /*original=*/100),
      ev(3, TraceKind::Read, 11, 10),
      ev(4, TraceKind::TxnCommit, 11),
      ev(5, TraceKind::Write, 2, 10),  // rw: 11 -> 2
      ev(6, TraceKind::Write, 2, 20),
      ev(7, TraceKind::TxnCommit, 2),
      ev(8, TraceKind::Write, 12, 20),  // ww: 2 -> 12
      ev(9, TraceKind::TxnCommit, 12),
  };
  const SrReport piece_level = certify_sr(events);
  EXPECT_TRUE(piece_level.serializable);

  const auto merge = piece_merge_map(events);
  ASSERT_EQ(merge.size(), 2u);
  EXPECT_EQ(merge.at(audit_node(0, 11)), audit_node(0, 100));
  const SrReport merged = certify_sr(events, &merge);
  EXPECT_FALSE(merged.serializable);
  ASSERT_EQ(merged.cycle.size(), 2u);
  EXPECT_EQ(audit_node_txn(merged.cycle[0].from), 100u);
}

TEST(SrCertifier, DroppedEventsMakeTheTraceIncomplete) {
  const std::vector<TraceEvent> events{
      ev(1, TraceKind::Write, 1, 10),
      ev(2, TraceKind::TxnCommit, 1),
  };
  const SrReport report = certify_sr(events, nullptr, /*dropped=*/5);
  EXPECT_FALSE(report.complete);
  EXPECT_NE(report.describe().find("incomplete"), std::string::npos);
}

TEST(EsrCertifier, PassesChargesWithinLimits) {
  const std::vector<TraceEvent> events{
      // Query 1 imports 3 then 4 against limit 10; update 2 exports the same
      // against limit 20.  Both commit with matching Z.
      ev(1, TraceKind::FuzzImport, 1, 0, 3, 10, 0, 2),
      ev(2, TraceKind::FuzzExport, 2, 0, 3, 20, 0, 1),
      ev(3, TraceKind::FuzzImport, 1, 0, 4, 10, 0, 2),
      ev(4, TraceKind::FuzzExport, 2, 0, 4, 20, 0, 1),
      ev(5, TraceKind::TxnCommit, 1, 0, /*Z=*/7),
      ev(6, TraceKind::TxnCommit, 2, 0, /*Z=*/7),
  };
  const EsrReport report = certify_esr(events);
  EXPECT_TRUE(report.ok) << report.describe();
  EXPECT_EQ(report.charges, 4u);
  EXPECT_EQ(report.committed_ets, 2u);
}

TEST(EsrCertifier, DetectsImportOverrun) {
  const std::vector<TraceEvent> events{
      ev(1, TraceKind::FuzzImport, 1, 0, 6, 10, 0, 2),
      ev(2, TraceKind::FuzzImport, 1, 0, 6, 10, 0, 2),  // 12 > 10
      ev(3, TraceKind::TxnCommit, 1, 0, /*Z=*/12),
  };
  const EsrReport report = certify_esr(events);
  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].kind, EsrViolationKind::ImportOverrun);
  EXPECT_EQ(report.violations[0].accumulated, 12.0);
  EXPECT_EQ(report.violations[0].limit, 10.0);
  EXPECT_EQ(report.violations[0].seq, 2u);
  EXPECT_NE(report.describe().find("import overrun"), std::string::npos);
}

TEST(EsrCertifier, DetectsExportOverrun) {
  const std::vector<TraceEvent> events{
      ev(1, TraceKind::FuzzExport, 2, 0, 30, 25, 0, 1),  // 30 > 25
      ev(2, TraceKind::TxnCommit, 2, 0, /*Z=*/30),
  };
  const EsrReport report = certify_esr(events);
  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].kind, EsrViolationKind::ExportOverrun);
}

TEST(EsrCertifier, AbortedOverrunIsTheMechanismWorking) {
  // The scheduler caught the overrun and aborted: not a violation.
  const std::vector<TraceEvent> events{
      ev(1, TraceKind::FuzzImport, 1, 0, 12, 10, 0, 2),
      ev(2, TraceKind::TxnAbort, 1),
  };
  const EsrReport report = certify_esr(events);
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.committed_ets, 0u);
}

TEST(EsrCertifier, DetectsLedgerMismatch) {
  const std::vector<TraceEvent> events{
      ev(1, TraceKind::FuzzImport, 1, 0, 3, 10, 0, 2),
      ev(2, TraceKind::TxnCommit, 1, 0, /*Z=*/9),  // replay says 3
  };
  const EsrReport report = certify_esr(events);
  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].kind, EsrViolationKind::LedgerMismatch);
}

TEST(EsrCertifier, DroppedEventsMakeTheTraceIncomplete) {
  const EsrReport report = certify_esr({}, /*dropped=*/1);
  EXPECT_FALSE(report.complete);
}

// ---------------------------------------------------------------------------
// End-to-end oracles: real workload runs, judged by the certifiers.

Workload small_banking(std::uint64_t seed) {
  BankingConfig cfg;
  cfg.branches = 2;
  cfg.accounts_per_branch = 8;
  cfg.branch_audit_fraction = 0.2;
  cfg.global_audit_fraction = 0.1;
  return make_banking(cfg, 120, seed);
}

ExecutorReport traced_run(const Workload& w, const MethodConfig& method,
                          Tracer& tracer) {
  auto plan = ExecutionPlan::build(w.types, method);
  EXPECT_TRUE(plan.ok()) << plan.status().to_string();
  DatabaseOptions dbo = Executor::database_options(method);
  dbo.tracer = &tracer;
  Database db(dbo);
  w.load_into(db);
  ExecutorOptions opts;
  opts.workers = 4;
  opts.seed = 7;
  return Executor::run(db, plan.value(), w.instances, opts);
}

TEST(AuditOracle, StrictTwoPhaseLockingRunCertifiesSr) {
  // baseline_sr = unchopped + pure CC: both the piece-level and the merged
  // (original-transaction) graphs must be acyclic.
  Tracer tracer(1 << 18);
  const Workload w = small_banking(21);
  const auto report = traced_run(w, MethodConfig::baseline_sr(), tracer);
  EXPECT_EQ(report.committed + report.rolled_back, w.instances.size());

  const auto events = tracer.collect();
  const SrReport piece_level = certify_sr(events, nullptr, tracer.dropped());
  EXPECT_TRUE(piece_level.complete);
  EXPECT_TRUE(piece_level.serializable) << piece_level.describe();
  EXPECT_GT(piece_level.committed_txns, 0u);

  const auto merge = piece_merge_map(events);
  const SrReport merged = certify_sr(events, &merge, tracer.dropped());
  EXPECT_TRUE(merged.serializable) << merged.describe();
}

TEST(AuditOracle, EsrChoppedCcRunCertifiesSrPerPiece) {
  // method2 = ESR-chop + CC: every piece is a strict-2PL transaction, so the
  // PIECE-level graph is acyclic (the original-level one need not be -- that
  // is exactly the serializability ESR trades away).
  Tracer tracer(1 << 18);
  const Workload w = small_banking(22);
  const auto report = traced_run(w, MethodConfig::method2(), tracer);
  EXPECT_EQ(report.committed + report.rolled_back, w.instances.size());

  const auto events = tracer.collect();
  const SrReport piece_level = certify_sr(events, nullptr, tracer.dropped());
  EXPECT_TRUE(piece_level.complete);
  EXPECT_TRUE(piece_level.serializable) << piece_level.describe();
}

TEST(AuditOracle, DivergenceControlRunsCertifyEsr) {
  // Methods 1 and 3 run divergence control with finite budgets: the replayed
  // ledger must show every committed ET inside its limits.
  for (const MethodConfig method :
       {MethodConfig::method1(), MethodConfig::method3()}) {
    Tracer tracer(1 << 18);
    const Workload w = small_banking(23);
    const auto report = traced_run(w, method, tracer);
    EXPECT_EQ(report.committed + report.rolled_back, w.instances.size());
    EXPECT_EQ(report.budget_violations, 0u);

    const EsrReport esr = certify_esr(tracer.collect(), tracer.dropped());
    EXPECT_TRUE(esr.complete) << method.name();
    EXPECT_TRUE(esr.ok) << method.name() << ": " << esr.describe();
    EXPECT_GT(esr.committed_ets, 0u);
  }
}

}  // namespace
}  // namespace atp
