// Percentile math and bench-harness timing helpers.
//
// The whole bench suite (tables, JSON artifacts, Histogram summaries) leans
// on one interpolated-rank percentile definition -- percentile_of in
// common/metrics.h -- so this suite pins its behaviour against known
// distributions, including the exact interpolation values the C=1
// convention prescribes.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bench_util.h"
#include "common/metrics.h"

namespace atp {
namespace {

TEST(PercentileTest, KnownUniformDistribution) {
  // 0, 1, ..., 999: percentile q sits exactly at rank q*(n-1) = q*999.
  std::vector<double> sorted(1000);
  for (std::size_t i = 0; i < sorted.size(); ++i) sorted[i] = double(i);

  EXPECT_DOUBLE_EQ(percentile_of(sorted, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile_of(sorted, 1.0), 999.0);
  EXPECT_DOUBLE_EQ(percentile_of(sorted, 0.50), 499.5);
  EXPECT_NEAR(percentile_of(sorted, 0.95), 949.05, 1e-9);
  EXPECT_NEAR(percentile_of(sorted, 0.99), 989.01, 1e-9);
}

TEST(PercentileTest, InterpolatesBetweenRanks) {
  // Ranks land between samples: 4 samples, p50 at rank 1.5.
  const std::vector<double> sorted = {10, 20, 40, 80};
  EXPECT_DOUBLE_EQ(percentile_of(sorted, 0.5), 30.0);
  // p75 at rank 2.25: 40 + 0.25*(80-40).
  EXPECT_DOUBLE_EQ(percentile_of(sorted, 0.75), 50.0);
}

TEST(PercentileTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(percentile_of({}, 0.5), 0.0);  // empty -> 0 by convention
  const std::vector<double> one = {42};
  EXPECT_DOUBLE_EQ(percentile_of(one, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(percentile_of(one, 0.5), 42.0);
  EXPECT_DOUBLE_EQ(percentile_of(one, 1.0), 42.0);
  const std::vector<double> two = {1, 3};
  EXPECT_DOUBLE_EQ(percentile_of(two, 0.5), 2.0);
  // Out-of-range q clamps to the extremes.
  EXPECT_DOUBLE_EQ(percentile_of(two, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(percentile_of(two, 1.5), 3.0);
}

TEST(PercentileTest, BenchHelperSortsItsInput) {
  // bench::percentile takes unsorted samples and must agree with the sorted
  // canonical definition.
  std::vector<double> shuffled = {7, 1, 9, 3, 5, 8, 2, 6, 4, 0};
  std::vector<double> sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  for (const double q : {0.0, 0.25, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(bench::percentile(shuffled, q), percentile_of(sorted, q))
        << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(bench::median({3, 1, 2}), 2.0);
}

TEST(PercentileTest, HistogramExactBelowReservoirCap) {
  // Below the reservoir capacity the Histogram holds every sample, so its
  // p50/p95/p99 must be bit-identical to percentile_of on the full set.
  Histogram h(4096);
  std::vector<double> samples(1000);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    samples[i] = double((i * 37) % 1000);  // a permutation of 0..999
    h.record(samples[i]);
  }
  std::sort(samples.begin(), samples.end());
  const StatSummary s = h.summarize();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_DOUBLE_EQ(s.p50, percentile_of(samples, 0.50));
  EXPECT_DOUBLE_EQ(s.p95, percentile_of(samples, 0.95));
  EXPECT_DOUBLE_EQ(s.p99, percentile_of(samples, 0.99));
  EXPECT_NEAR(s.p50, 499.5, 1e-9);
  EXPECT_NEAR(s.p99, 989.01, 1e-9);
}

TEST(BenchClockTest, SteadyClockMonotonic) {
  // bench_now_us is steady_clock-backed: consecutive reads never go back.
  std::int64_t prev = bench::bench_now_us();
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t now = bench::bench_now_us();
    ASSERT_GE(now, prev);
    prev = now;
  }
}

}  // namespace
}  // namespace atp
