// Chaos harness: Methods 1-3 on a 3-site topology under named, seeded fault
// schedules (drop / duplicate_reorder / crash_storm / torn_wal_tail).
//
// Oracles, per run:
//   * conservation -- chopped transfers move money exactly once, so the sum
//     over all accounts is invariant however many messages were lost,
//     duplicated, reordered, or replayed across crashes;
//   * ESR certifier -- every committed ET stayed inside its epsilon budget
//     (replayed from the full trace, crashes included);
//   * recovery -- an independent recover_from_log() replay of each site's
//     WAL reproduces exactly the live committed account state (redo
//     discipline held under injected fsync failures and torn tails);
//   * determinism -- the injector's decisions are pure in (seed, identity,
//     attempt), witnessed by the scripted-feed reproducibility tests.
//
// Every failure message carries the seed: rerunning with it injects the
// identical fault schedule.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "audit/esr_certifier.h"
#include "audit/sr_certifier.h"
#include "common/rng.h"
#include "dist/coordinator.h"
#include "dist/site.h"
#include "engine/method.h"
#include "fault/fault.h"
#include "fault/retry.h"
#include "obs/metrics_registry.h"
#include "storage/store.h"
#include "trace/tracer.h"
#include "wal/recovery.h"

namespace atp {
namespace {

using namespace std::chrono_literals;

constexpr Key kAccount0 = 10;  // lives at site 0 (the stable home site)
constexpr Key kAccount1 = 11;  // lives at site 1 (storm target)
constexpr Key kAccount2 = 12;  // lives at site 2 (storm target)
constexpr Value kInitial = 100000;

MethodConfig method_by_index(int i) {
  switch (i) {
    case 1: return MethodConfig::method1();
    case 2: return MethodConfig::method2();
    default: return MethodConfig::method3();
  }
}

/// One fully-wired 3-site rig: shared network + injector, per-site WAL
/// attached to both the database and the queue endpoint, shared tracer and
/// metrics registry.
struct ChaosRig {
  ChaosRig(const MethodConfig& method, const FaultSchedule& schedule,
           std::uint64_t seed)
      : tracer(1 << 20),
        net(3, net_options()),
        injector(seed, schedule.spec),
        torn(schedule.spec.torn_wal_tail) {
    net.set_tracer(&tracer);
    injector.attach_metrics(&registry);
    for (SiteId s = 0; s < 3; ++s) {
      DatabaseOptions dbo;
      dbo.scheduler = method.sched;
      dbo.lock_timeout = 500ms;
      dbo.wal = &wals[s];
      dbo.tracer = &tracer;
      dbo.site_id = s;
      dbo.metrics = &registry;
      sites.push_back(std::make_unique<Site>(s, net, dbo));
      sites.back()->queues().attach_wal(&wals[s]);
      sites.back()->queues().set_retry_interval(5ms);
      raw.push_back(sites.back().get());
    }
    sites[0]->db().load(kAccount0, kInitial);
    sites[1]->db().load(kAccount1, kInitial);
    sites[2]->db().load(kAccount2, kInitial);
    // Quiescent checkpoints make the initial balances durable, so a full
    // rebuild from the log starts from the right base.
    for (SiteId s = 0; s < 3; ++s) sites[s]->db().checkpoint();
    // Faults start only after setup is durable.
    net.set_fault_injector(&injector);
    if (schedule.spec.fsync_fail > 0) {
      for (SiteId s = 0; s < 3; ++s) wals[s].set_fault_injector(&injector, s);
    }
    Coordinator::install_chop_handler(raw);
    for (auto& site : sites) site->start();
  }

  ~ChaosRig() {
    stop_all();  // idempotent; tests usually stop earlier to collect traces
  }

  void stop_all() {
    for (auto& site : sites) site->stop();
  }

  static NetworkOptions net_options() {
    NetworkOptions n;
    n.one_way_latency = std::chrono::microseconds(300);
    n.jitter = std::chrono::microseconds(200);
    return n;
  }

  /// Crash-storm driver for one site: deterministic dwell times from the
  /// injector, torn-tail + full log rebuild when the schedule says so.
  void storm(SiteId s, const std::atomic<bool>& stop) {
    for (std::uint64_t cycle = 0; !stop.load(std::memory_order_relaxed);
         ++cycle) {
      std::this_thread::sleep_for(injector.storm_up_for(s, cycle));
      if (stop.load(std::memory_order_relaxed)) break;
      sites[s]->crash();
      injector.note_crash(s);
      if (torn) wals[s].tear_to_durable();
      std::this_thread::sleep_for(injector.storm_down_for(s, cycle));
      revive(s);
    }
    if (!sites[s]->up()) revive(s);
  }

  void revive(SiteId s) {
    if (torn) {
      // Total loss: rebuild the store and the queue endpoint from the
      // durable log prefix before rejoining.
      const RecoveryResult r = sites[s]->db().recover_from_wal();
      sites[s]->queues().restore_from(r);
    }
    sites[s]->recover();
    injector.note_recover(s);
  }

  Value balance(SiteId s, Key k) {
    return sites[s]->db().store().read_committed(k).value_or(-1);
  }

  Tracer tracer;
  obs::MetricsRegistry registry;
  SimNetwork net;
  FaultInjector injector;
  bool torn;
  LogDevice wals[3];
  std::vector<std::unique_ptr<Site>> sites;
  std::vector<Site*> raw;
};

DistTxnSpec chain_spec(Value amount, Value piece_epsilon) {
  // 3-piece chain 0 -> 1 -> 2: debit the home account, credit one account
  // at each remote hop.  Exercises multi-hop continuations, not just a
  // single queue edge.
  DistTxnSpec spec;
  spec.kind = TxnKind::Update;
  spec.piece_epsilon = piece_epsilon;
  spec.pieces = {
      DistPieceSpec{0, {Access::add(kAccount0, -2 * amount, 2 * amount)}},
      DistPieceSpec{1, {Access::add(kAccount1, +amount, amount)}},
      DistPieceSpec{2, {Access::add(kAccount2, +amount, amount)}},
  };
  return spec;
}

class ChaosMatrix
    : public ::testing::TestWithParam<std::tuple<int, std::string>> {};

TEST_P(ChaosMatrix, ConservesMoneyAndBudgetsUnderFaults) {
  const int method_index = std::get<0>(GetParam());
  const MethodConfig method = method_by_index(method_index);
  const FaultSchedule schedule = FaultSchedule::named(std::get<1>(GetParam()));
  const std::uint64_t seed =
      0xC0FFEEULL * 131 + std::uint64_t(method_index) * 17 +
      std::hash<std::string>{}(schedule.name);
  SCOPED_TRACE("method=" + method.name() + " schedule=" + schedule.name +
               " seed=" + std::to_string(seed));

  ChaosRig rig(method, schedule, seed);

  std::atomic<bool> stop{false};
  std::vector<std::thread> storms;
  if (schedule.spec.crash_storm) {
    for (SiteId s : {SiteId(1), SiteId(2)}) {
      storms.emplace_back([&rig, &stop, s] { rig.storm(s, stop); });
    }
  }

  // A concurrent query stream on the home site gives divergence control
  // something to charge: fuzzy reads of the hot debit account import the
  // in-flight updates' drift, bounded by the import limit (the ESR
  // certifier re-checks every charge from the trace afterwards).
  std::thread queries([&rig, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      Txn q = rig.sites[0]->db().begin(TxnKind::Query,
                                      EpsilonSpec::importing(500));
      if (q.read(kAccount0).ok()) {
        if (!q.commit().ok()) q.abort();
      } else {
        q.abort();
      }
      std::this_thread::sleep_for(1ms);
    }
  });

  // Client: chopped transfer chains.  Piece 1 can lose its locks to the
  // query stream, so the client retries with backoff (the chopped-client
  // contract); past piece 1, the chain completes asynchronously however
  // the storm rages.
  Coordinator coord(*rig.raw[0], rig.raw);
  const RetryPolicy policy = RetryPolicy::chop_handler();
  Rng amounts(seed * 31 + 7);
  constexpr int kTxns = 30;
  std::vector<std::uint64_t> gtids;
  bool clients_ok = true;
  for (int i = 0; i < kTxns && clients_ok; ++i) {
    const Value amount = 1 + Value(amounts.uniform(5));
    const DistTxnSpec spec = chain_spec(amount, /*piece_epsilon=*/100000);
    bool committed = false;
    for (std::uint64_t attempt = 0; attempt < 500 && !committed; ++attempt) {
      if (attempt > 0) {
        std::this_thread::sleep_for(policy.delay(attempt, std::uint64_t(i)));
      }
      auto out = coord.run_chopped(spec, 0ms);
      if (out.ok()) {
        gtids.push_back(out.value().gtid);
        committed = true;
      }
    }
    clients_ok = committed;
    std::this_thread::sleep_for(1ms);
  }

  // Quiesce: stop the storm, revive everyone, and wait out every chain.
  stop = true;
  for (auto& t : storms) t.join();
  queries.join();
  ASSERT_TRUE(clients_ok) << "piece 1 never committed within 500 attempts";
  for (const std::uint64_t gtid : gtids) {
    EXPECT_TRUE(rig.raw[0]->wait_done(gtid, 30000ms)) << "gtid " << gtid;
  }
  rig.stop_all();

  // Oracle 1: conservation.  Exactly-once end to end -- lost messages were
  // retransmitted, duplicates deduped, crashed pieces redelivered, never
  // double-applied.
  const Value total = rig.balance(0, kAccount0) + rig.balance(1, kAccount1) +
                      rig.balance(2, kAccount2);
  EXPECT_EQ(total, 3 * kInitial);

  // Oracle 2: recovery replay.  An independent redo of each site's log must
  // land on exactly the live committed balances (write-ahead discipline
  // survived injected fsync failures and torn tails).
  const Key account_of[3] = {kAccount0, kAccount1, kAccount2};
  for (SiteId s = 0; s < 3; ++s) {
    Store scratch;
    const RecoveryResult r = recover_from_log(rig.wals[s], scratch);
    EXPECT_TRUE(r.in_doubt.empty()) << "site " << s;
    EXPECT_EQ(scratch.read_committed(account_of[s]).value_or(-2),
              rig.balance(s, account_of[s]))
        << "site " << s;
  }

  // Oracle 3: ESR certifier over the full trace -- every committed ET's
  // imports/exports stayed within its spec, crash storms notwithstanding.
  const auto events = rig.tracer.collect();
  const EsrReport esr = certify_esr(events, rig.tracer.dropped());
  EXPECT_TRUE(esr.complete);
  EXPECT_TRUE(esr.ok) << esr.describe();
  EXPECT_GT(esr.committed_ets, 0u);

  // The injector must actually have injected (every named schedule does
  // something), and the fault.* instruments must have seen it.
  EXPECT_FALSE(rig.injector.trace().empty());
  const auto snap = rig.registry.snapshot();
  double injected = 0;
  for (const char* name :
       {"fault.net.dropped", "fault.net.duplicated", "fault.net.delayed",
        "fault.wal.fsync_failed", "fault.site.crashes"}) {
    if (const obs::Sample* smp = snap.find(name); smp != nullptr) {
      injected += smp->value;
    }
  }
  EXPECT_GT(injected, 0) << "schedule " << schedule.name;
}

std::string matrix_name(
    const ::testing::TestParamInfo<std::tuple<int, std::string>>& info) {
  return "method" + std::to_string(std::get<0>(info.param)) + "_" +
         std::get<1>(info.param);
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, ChaosMatrix,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::ValuesIn(FaultSchedule::known_names())),
    matrix_name);

// 2PC under heavy message loss: the retransmitting protocol rounds carry a
// single run_2pc call to commit where the old first-loss-aborts rounds
// failed almost surely (drop=0.5 over >= 4 message legs per participant).
// The SR certifier replays the history as a sanity oracle.
TEST(Chaos, TwoPcSurvivesMessageLossViaRetransmission) {
  const std::uint64_t seed = 0xD15EA5E;
  FaultSchedule schedule;
  schedule.name = "heavy_drop";
  schedule.spec.drop = 0.5;
  ChaosRig rig(MethodConfig::baseline_dc(), schedule, seed);
  SCOPED_TRACE("seed=" + std::to_string(seed));

  Coordinator coord(*rig.raw[0], rig.raw);
  Value moved = 0;
  for (int i = 0; i < 5; ++i) {
    const DistTxnSpec spec = chain_spec(10, 100000);
    auto out = coord.run_2pc(spec, /*validation_round=*/false,
                             /*decision_timeout=*/10000ms);
    ASSERT_TRUE(out.ok()) << out.status().to_string();
    EXPECT_TRUE(out.value().completed);
    moved += 10;
  }
  EXPECT_EQ(rig.balance(0, kAccount0), kInitial - 2 * moved);
  EXPECT_EQ(rig.balance(1, kAccount1), kInitial + moved);
  EXPECT_EQ(rig.balance(2, kAccount2), kInitial + moved);

  // Retransmissions actually happened and were counted.
  const auto snap = rig.registry.snapshot();
  const obs::Sample* rexmit = snap.find("retry.2pc.retransmits");
  ASSERT_NE(rexmit, nullptr);
  EXPECT_GT(rexmit->value, 0);

  rig.stop_all();
  const auto events = rig.tracer.collect();
  const SrReport sr = certify_sr(events, nullptr, rig.tracer.dropped());
  EXPECT_TRUE(sr.complete);
  EXPECT_TRUE(sr.serializable) << sr.describe();
}

// Determinism: the injector's verdicts are pure functions of (seed,
// identity, attempt) -- a scripted single-threaded feed produces the
// identical fault trace on every run with the same seed, and a different
// trace under a different seed.
TEST(Chaos, SameSeedReproducesIdenticalFaultTrace) {
  FaultSpec spec;
  spec.drop = 0.3;
  spec.duplicate = 0.2;
  spec.delay = 0.25;
  spec.max_extra_delay = std::chrono::microseconds(3000);
  spec.fsync_fail = 0.3;

  const auto run = [&spec](std::uint64_t seed) {
    FaultInjector inj(seed, spec);
    for (int i = 0; i < 300; ++i) {
      Message m;
      m.from = SiteId(i % 3);
      m.to = SiteId((i + 1) % 3);
      m.type = (i % 2) ? "qdata" : "prepare";
      m.gtid = std::uint64_t(i / 3);
      (void)inj.on_send(m);
    }
    for (SiteId s = 0; s < 3; ++s) {
      for (int k = 0; k < 30; ++k) (void)inj.fsync_fails(s);
    }
    return std::make_pair(inj.fingerprint(), inj.trace());
  };

  const auto [fp_a, trace_a] = run(7);
  const auto [fp_b, trace_b] = run(7);
  EXPECT_EQ(fp_a, fp_b);
  ASSERT_EQ(trace_a.size(), trace_b.size());
  for (std::size_t i = 0; i < trace_a.size(); ++i) {
    EXPECT_EQ(trace_a[i].describe(), trace_b[i].describe()) << "event " << i;
  }
  EXPECT_FALSE(trace_a.empty());

  // 300 sends at drop=0.3: a colliding fingerprint under a different seed
  // is negligible.
  const auto fp_c = run(8).first;
  EXPECT_NE(fp_a, fp_c);
}

// The k-th transmission of one message identity meets the same fate
// regardless of what other traffic interleaves: attempt counters are
// per-identity, not global.
TEST(Chaos, FaultDecisionsKeyOnIdentityNotGlobalOrder) {
  FaultSpec spec;
  spec.drop = 0.5;
  Message probe;
  probe.from = 0;
  probe.to = 1;
  probe.type = "qdata";
  probe.gtid = 42;

  FaultInjector quiet(9, spec);
  std::vector<bool> fates_quiet;
  for (int k = 0; k < 20; ++k) fates_quiet.push_back(quiet.on_send(probe).drop);

  FaultInjector noisy(9, spec);
  std::vector<bool> fates_noisy;
  Rng other(123);
  for (int k = 0; k < 20; ++k) {
    // Interleave unrelated traffic before each probe transmission.
    for (std::uint64_t j = 0; j < 1 + other.uniform(4); ++j) {
      Message m;
      m.from = 2;
      m.to = SiteId(other.uniform(2));
      m.type = "commit";
      m.gtid = 1000 + j;
      (void)noisy.on_send(m);
    }
    fates_noisy.push_back(noisy.on_send(probe).drop);
  }
  EXPECT_EQ(fates_quiet, fates_noisy);
}

// Crash-restart recovery of epsilon budgets (DC state): replayed committed
// state never under-counts what updates exported.  An uncommitted export
// dies with the crash (its drift was never committed state); a committed
// export survives replay exactly.
TEST(Chaos, EpsilonStateSurvivesCrashRestartWithoutUndercount) {
  LogDevice wal;
  Tracer tracer(1 << 16);
  DatabaseOptions dbo;
  dbo.scheduler = SchedulerKind::DC;
  dbo.wal = &wal;
  dbo.tracer = &tracer;
  Database db(dbo);
  db.load(1, 100);
  db.checkpoint();

  // An update stages +50 while a bounded query reads through it (fuzzy
  // grant imports the drift), then the site crashes before the update
  // commits: replay must yield the PRE-update value -- resurrecting the
  // lost write would mean the query's import charge under-counted reality.
  {
    Txn u = db.begin(TxnKind::Update, EpsilonSpec::exporting(100));
    ASSERT_TRUE(u.add(1, 50).ok());
    Txn q = db.begin(TxnKind::Query, EpsilonSpec::importing(100));
    ASSERT_TRUE(q.read(1).ok());
    ASSERT_TRUE(q.commit().ok());
    db.crash();
    // The crash-epoch guard refuses the stale commit.
    EXPECT_FALSE(u.commit().ok());
  }
  {
    const RecoveryResult r = db.recover_from_wal();
    EXPECT_EQ(db.store().read_committed(1).value(), 100);
    EXPECT_EQ(r.in_doubt.size(), 0u);
  }

  // Same dance, but the update commits before the crash: replay must carry
  // the export's full effect.
  {
    Txn u = db.begin(TxnKind::Update, EpsilonSpec::exporting(100));
    ASSERT_TRUE(u.add(1, 50).ok());
    Txn q = db.begin(TxnKind::Query, EpsilonSpec::importing(100));
    ASSERT_TRUE(q.read(1).ok());
    ASSERT_TRUE(q.commit().ok());
    ASSERT_TRUE(u.commit().ok());
    db.crash();
  }
  (void)db.recover_from_wal();
  EXPECT_EQ(db.store().read_committed(1).value(), 150);

  // The certifier agrees the whole run's charges were sound.
  const EsrReport esr = certify_esr(tracer.collect(), tracer.dropped());
  EXPECT_TRUE(esr.ok) << esr.describe();
}

// Regression (crash-path): a chopped piece whose site crashes between
// dequeue and commit must apply exactly once.  The crash-epoch guard turns
// the stale commit into an abort (so the handler does NOT forward the
// continuation for a commit that installed nothing); the message is then
// redelivered and the chain completes normally.
TEST(Chaos, CrashBetweenDequeueAndCommitDoesNotDoubleRun) {
  FaultSchedule none;
  none.name = "none";
  ChaosRig rig(MethodConfig::method3(), none, 0xBEEF);

  Coordinator coord(*rig.raw[0], rig.raw);
  auto out = coord.run_chopped(chain_spec(5, 100000), 0ms);
  ASSERT_TRUE(out.ok());
  std::this_thread::sleep_for(5ms);  // let the chain reach site 1
  rig.sites[1]->crash();
  std::this_thread::sleep_for(20ms);
  rig.revive(1);
  EXPECT_TRUE(rig.raw[0]->wait_done(out.value().gtid, 20000ms));
  const Value total = rig.balance(0, kAccount0) + rig.balance(1, kAccount1) +
                      rig.balance(2, kAccount2);
  EXPECT_EQ(total, 3 * kInitial);
  EXPECT_EQ(rig.balance(1, kAccount1), kInitial + 5);
  EXPECT_EQ(rig.balance(2, kAccount2), kInitial + 5);
}

}  // namespace
}  // namespace atp
