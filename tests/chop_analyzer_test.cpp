// Program IR, chopping construction, Theorem 1 / Definition 1 validators,
// and the finest-chopping searches.
#include <gtest/gtest.h>

#include <vector>

#include "chop/analyzer.h"
#include "chop/chopping.h"
#include "chop/program.h"

namespace atp {
namespace {

// Items.
constexpr Key X = 1, Y = 2, Z = 3;

TxnProgram transfer(Value bound = 100, Value eps = 100) {
  return ProgramBuilder("transfer", TxnKind::Update)
      .add(X, -10, bound)
      .add(Y, +10, bound)
      .epsilon(eps)
      .build();
}

TxnProgram audit_xy(Value eps = 100) {
  return ProgramBuilder("audit", TxnKind::Query)
      .read(X)
      .read(Y)
      .epsilon(eps)
      .build();
}

TEST(AccessConflicts, CommutativityMatrix) {
  const Access r = Access::read(X);
  const Access a = Access::add(X, 1, 1);
  const Access w = Access::write(X, 5, 5);
  EXPECT_FALSE(conflicts(r, Access::read(X)));  // read-read
  EXPECT_FALSE(conflicts(a, Access::add(X, 2, 2)));  // adds commute
  EXPECT_TRUE(conflicts(r, a));
  EXPECT_TRUE(conflicts(a, r));
  EXPECT_TRUE(conflicts(w, w));
  EXPECT_TRUE(conflicts(w, r));
  EXPECT_TRUE(conflicts(w, a));
  EXPECT_FALSE(conflicts(r, Access::read(Y)));  // different items
  EXPECT_FALSE(conflicts(w, Access::write(Y, 1, 1)));
}

TEST(Chopping, UnchoppedHasOnePiecePerTxn) {
  const std::vector<TxnProgram> programs{transfer(), audit_xy()};
  const Chopping c = Chopping::unchopped(programs);
  EXPECT_EQ(c.txn_count(), 2u);
  EXPECT_EQ(c.piece_count(0), 1u);
  EXPECT_EQ(c.piece_count(1), 1u);
  EXPECT_EQ(c.piece_range(0, 0, 2), (std::pair<std::size_t, std::size_t>{0, 2}));
}

TEST(Chopping, FinestCandidateSingletonPieces) {
  const std::vector<TxnProgram> programs{transfer(), audit_xy()};
  const Chopping c = Chopping::finest_candidate(programs);
  EXPECT_EQ(c.piece_count(0), 2u);
  EXPECT_EQ(c.piece_count(1), 2u);
  EXPECT_EQ(c.total_pieces(), 4u);
}

TEST(Chopping, FinestCandidateRespectsRollbackSafety) {
  // Rollback after op 1 of a 3-op program: ops 0-1 pinned in piece 1.
  TxnProgram p = ProgramBuilder("t", TxnKind::Update)
                     .add(X, 1, 1)
                     .add(Y, 1, 1)
                     .rollback_point()
                     .add(Z, 1, 1)
                     .build();
  const std::vector<TxnProgram> programs{p};
  const Chopping c = Chopping::finest_candidate(programs);
  EXPECT_EQ(c.piece_count(0), 2u);  // {ops 0,1}, {op 2}
  EXPECT_TRUE(c.rollback_safe(programs));
}

TEST(Chopping, RollbackSafetyViolationDetected) {
  TxnProgram p = ProgramBuilder("t", TxnKind::Update)
                     .add(X, 1, 1)
                     .add(Y, 1, 1)
                     .rollback_point()
                     .build();
  const std::vector<TxnProgram> programs{p};
  // Manually split at op 1: the rollback point lands in piece 2.
  const Chopping bad({{0, 1}});
  EXPECT_FALSE(bad.rollback_safe(programs));
  EXPECT_EQ(validate_sr_chopping(programs, bad).code(),
            ErrorCode::kInvalidArgument);
}

TEST(Chopping, MergeCollapsesRange) {
  Chopping c({{0, 1, 2, 3}});
  c.merge(0, 1, 2);
  EXPECT_EQ(c.starts()[0], (std::vector<std::size_t>{0, 1, 3}));
  c.merge(0, 0, 2);
  EXPECT_EQ(c.starts()[0], (std::vector<std::size_t>{0}));
}

TEST(ValidateSr, TransferAloneChopsFine) {
  // A lone transfer against nothing: chopping into two pieces is SR-correct.
  const std::vector<TxnProgram> programs{transfer()};
  const Chopping c = Chopping::finest_candidate(programs);
  EXPECT_TRUE(validate_sr_chopping(programs, c).ok());
}

TEST(ValidateSr, TransferPlusAuditCannotChop) {
  // The paper's own example: chop the transfer while an audit reads both
  // accounts -> SC-cycle -> not an SR-chopping.
  const std::vector<TxnProgram> programs{transfer(), audit_xy()};
  Chopping c = Chopping::unchopped(programs);
  c = Chopping({{0, 1}, {0}});  // chop only the transfer
  EXPECT_FALSE(validate_sr_chopping(programs, c).ok());
}

TEST(ValidateSr, DisjointAuditsAllowChopping) {
  // Audits covering only one account each leave the transfer choppable.
  const TxnProgram audit_x =
      ProgramBuilder("ax", TxnKind::Query).read(X).epsilon(10).build();
  const TxnProgram audit_y =
      ProgramBuilder("ay", TxnKind::Query).read(Y).epsilon(10).build();
  const std::vector<TxnProgram> programs{transfer(), audit_x, audit_y};
  const Chopping c({{0, 1}, {0}, {0}});
  EXPECT_TRUE(validate_sr_chopping(programs, c).ok());
}

TEST(ValidateEsr, TransferPlusAuditIsEsrChoppableWithinBudget) {
  // Limit_t(transfer) = 100 >= Z^is; Definition 1 satisfied.
  const std::vector<TxnProgram> programs{transfer(/*bound=*/40, /*eps=*/100),
                                         audit_xy(/*eps=*/100)};
  const Chopping c({{0, 1}, {0}});
  EXPECT_TRUE(validate_esr_chopping(programs, c).ok());
  const auto zis = inter_sibling_fuzziness(programs, c);
  // CE(s): both C edges (p1-audit on X, p2-audit on Y), weight 40 each.
  EXPECT_EQ(zis[0], 80);
  EXPECT_EQ(zis[1], 0);
}

TEST(ValidateEsr, BudgetTooSmallRejected) {
  const std::vector<TxnProgram> programs{transfer(/*bound=*/80, /*eps=*/100),
                                         audit_xy(/*eps=*/100)};
  const Chopping c({{0, 1}, {0}});
  // Z^is = 160 > 100.
  EXPECT_FALSE(validate_esr_chopping(programs, c).ok());
}

TEST(ValidateEsr, UnknownBoundsDegradeToSr) {
  // kUnknownBound weights make Z^is infinite: the ESR validator rejects any
  // chopping an SR validator would reject (upward compatibility).
  const std::vector<TxnProgram> programs{
      ProgramBuilder("t", TxnKind::Update)
          .add(X, -10)  // unknown bound
          .add(Y, +10)
          .epsilon(1e18)
          .build(),
      audit_xy()};
  const Chopping c({{0, 1}, {0}});
  EXPECT_FALSE(validate_esr_chopping(programs, c).ok());
}

TEST(ValidateEsr, UpdateUpdateScCycleRejectedRegardlessOfBudget) {
  // Two chopped transfers whose pieces conflict via absolute writes: the
  // SC-cycle joins update pieces -> rejected even with huge budgets (the
  // paper's permanent-inconsistency example).
  const TxnProgram t1 = ProgramBuilder("t1", TxnKind::Update)
                            .write(X, 1, 1)
                            .write(Y, 1, 1)
                            .epsilon(1e18)
                            .build();
  const TxnProgram t2 = ProgramBuilder("t2", TxnKind::Update)
                            .write(X, 2, 2)
                            .write(Y, 2, 2)
                            .epsilon(1e18)
                            .build();
  const std::vector<TxnProgram> programs{t1, t2};
  const Chopping c({{0, 1}, {0, 1}});
  const Status s = validate_esr_chopping(programs, c);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("update"), std::string::npos);
}

TEST(FinestSr, LoneTransferFullyChopped) {
  const std::vector<TxnProgram> programs{transfer()};
  const Chopping c = finest_sr_chopping(programs);
  EXPECT_EQ(c.piece_count(0), 2u);
  EXPECT_TRUE(validate_sr_chopping(programs, c).ok());
}

TEST(FinestSr, AuditForcesTransferMerge) {
  const std::vector<TxnProgram> programs{transfer(), audit_xy()};
  const Chopping c = finest_sr_chopping(programs);
  EXPECT_TRUE(validate_sr_chopping(programs, c).ok());
  // The SC-cycle must have been merged away; with an audit covering both
  // accounts nothing can stay chopped.
  EXPECT_EQ(c.total_pieces(), 2u);
}

TEST(FinestSr, DisjointWorkloadStaysFine) {
  const TxnProgram audit_x =
      ProgramBuilder("ax", TxnKind::Query).read(X).epsilon(10).build();
  const std::vector<TxnProgram> programs{transfer(), audit_x};
  const Chopping c = finest_sr_chopping(programs);
  EXPECT_TRUE(validate_sr_chopping(programs, c).ok());
  EXPECT_EQ(c.piece_count(0), 2u);  // transfer stays chopped
}

TEST(FinestEsr, KeepsChoppingWhereSrMustMerge) {
  // With bounded transfers and adequate budgets, the ESR search preserves
  // the two-piece transfer that the SR search had to merge.
  const std::vector<TxnProgram> programs{transfer(/*bound=*/40, /*eps=*/100),
                                         audit_xy(/*eps=*/100)};
  const Chopping sr = finest_sr_chopping(programs);
  const Chopping esr = finest_esr_chopping(programs);
  EXPECT_LT(sr.total_pieces(), esr.total_pieces());
  EXPECT_TRUE(validate_esr_chopping(programs, esr).ok());
  EXPECT_EQ(esr.piece_count(0), 2u);
}

TEST(FinestEsr, TightBudgetDegradesToSr) {
  const std::vector<TxnProgram> programs{transfer(/*bound=*/80, /*eps=*/10),
                                         audit_xy(/*eps=*/10)};
  const Chopping esr = finest_esr_chopping(programs);
  EXPECT_TRUE(validate_esr_chopping(programs, esr).ok());
  // Z^is would be 160 > 10: the S edge must be merged away.
  EXPECT_EQ(esr.piece_count(0), 1u);
}

TEST(FinestEsr, UnknownWeightsReduceToSrChopping) {
  // The paper's upward-compatibility claim, verified structurally: with all
  // C-edge weights unknown, finest ESR == finest SR.
  const std::vector<TxnProgram> programs{
      ProgramBuilder("t", TxnKind::Update)
          .add(X, -10)
          .add(Y, +10)
          .epsilon(1e18)
          .build(),
      audit_xy()};
  const Chopping sr = finest_sr_chopping(programs);
  const Chopping esr = finest_esr_chopping(programs);
  EXPECT_EQ(sr.starts(), esr.starts());
}

TEST(FinestEsr, ResultAlwaysValidates) {
  // A messier stream: three transfers over three items + two audits.
  const TxnProgram t1 = ProgramBuilder("t1", TxnKind::Update)
                            .add(X, -5, 50)
                            .add(Y, 5, 50)
                            .epsilon(200)
                            .build();
  const TxnProgram t2 = ProgramBuilder("t2", TxnKind::Update)
                            .add(Y, -5, 50)
                            .add(Z, 5, 50)
                            .epsilon(200)
                            .build();
  const TxnProgram a1 =
      ProgramBuilder("a1", TxnKind::Query).read(X).read(Y).epsilon(200).build();
  const TxnProgram a2 =
      ProgramBuilder("a2", TxnKind::Query).read(Y).read(Z).epsilon(200).build();
  const std::vector<TxnProgram> programs{t1, t2, a1, a2};
  const Chopping esr = finest_esr_chopping(programs);
  EXPECT_TRUE(validate_esr_chopping(programs, esr).ok());
  const Chopping sr = finest_sr_chopping(programs);
  EXPECT_TRUE(validate_sr_chopping(programs, sr).ok());
  EXPECT_GE(esr.total_pieces(), sr.total_pieces());
}

TEST(BuildGraph, WeightsAccumulatePerPiecePair) {
  // One piece with two adds on X conflicts with a reader of X twice:
  // the C-edge weight is the sum of the write bounds (7 + 9).
  const TxnProgram t = ProgramBuilder("t", TxnKind::Update)
                           .add(X, 1, 7)
                           .add(X, 1, 9)
                           .epsilon(100)
                           .build();
  const TxnProgram q =
      ProgramBuilder("q", TxnKind::Query).read(X).epsilon(100).build();
  const std::vector<TxnProgram> programs{t, q};
  const Chopping c = Chopping::unchopped(programs);
  const PieceGraph g = build_chopping_graph(programs, c);
  ASSERT_EQ(g.edges().size(), 1u);
  EXPECT_EQ(g.edges()[0].kind, EdgeKind::C);
  EXPECT_EQ(g.edges()[0].weight, 16);
}

TEST(BuildGraph, CommutingAddsProduceNoCEdge) {
  const TxnProgram t1 = ProgramBuilder("t1", TxnKind::Update)
                            .add(X, 1, 1)
                            .epsilon(1)
                            .build();
  const TxnProgram t2 = ProgramBuilder("t2", TxnKind::Update)
                            .add(X, 2, 2)
                            .epsilon(1)
                            .build();
  const std::vector<TxnProgram> programs{t1, t2};
  const PieceGraph g =
      build_chopping_graph(programs, Chopping::unchopped(programs));
  EXPECT_TRUE(g.edges().empty());
}

TEST(BuildGraph, SEdgeCliqueWithinTransaction) {
  const TxnProgram t = ProgramBuilder("t", TxnKind::Update)
                           .add(X, 1, 1)
                           .add(Y, 1, 1)
                           .add(Z, 1, 1)
                           .epsilon(1)
                           .build();
  const std::vector<TxnProgram> programs{t};
  const PieceGraph g =
      build_chopping_graph(programs, Chopping::finest_candidate(programs));
  std::size_t s_edges = 0;
  for (const auto& e : g.edges()) s_edges += (e.kind == EdgeKind::S);
  EXPECT_EQ(s_edges, 3u);  // 3 pieces -> C(3,2) sibling pairs
}

}  // namespace
}  // namespace atp
