// Chopping-graph machinery: biconnected components, SC-cycle and C-cycle
// detection, Eq. 4 weights -- including exact replications of the paper's
// Figure 1 and Figure 3 examples.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "chop/graph.h"

namespace atp {
namespace {

using EdgeList = std::vector<std::pair<std::size_t, std::size_t>>;

TEST(Biconnected, SingleEdgeIsABridge) {
  std::vector<std::size_t> sizes;
  const auto comp = biconnected_components(2, {{0, 1}}, sizes);
  ASSERT_EQ(comp.size(), 1u);
  ASSERT_EQ(sizes.size(), 1u);
  EXPECT_EQ(sizes[comp[0]], 1u);
}

TEST(Biconnected, TriangleIsOneBlock) {
  std::vector<std::size_t> sizes;
  const auto comp = biconnected_components(3, {{0, 1}, {1, 2}, {2, 0}}, sizes);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(sizes[comp[0]], 3u);
}

TEST(Biconnected, PathIsAllBridges) {
  std::vector<std::size_t> sizes;
  const auto comp =
      biconnected_components(4, {{0, 1}, {1, 2}, {2, 3}}, sizes);
  // Three distinct single-edge blocks.
  EXPECT_NE(comp[0], comp[1]);
  EXPECT_NE(comp[1], comp[2]);
  for (auto s : sizes) EXPECT_EQ(s, 1u);
}

TEST(Biconnected, TwoTrianglesSharingACutVertex) {
  //   0-1-2-0   and   2-3-4-2 ; vertex 2 is the articulation point.
  const EdgeList edges{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 2}};
  std::vector<std::size_t> sizes;
  const auto comp = biconnected_components(5, edges, sizes);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_EQ(comp[4], comp[5]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_EQ(sizes.size(), 2u);
}

TEST(Biconnected, BridgeBetweenCycles) {
  // triangle 0-1-2, bridge 2-3, triangle 3-4-5.
  const EdgeList edges{{0, 1}, {1, 2}, {2, 0}, {2, 3},
                       {3, 4}, {4, 5}, {5, 3}};
  std::vector<std::size_t> sizes;
  const auto comp = biconnected_components(6, edges, sizes);
  EXPECT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[comp[3]], 1u);  // the bridge
  EXPECT_EQ(sizes[comp[0]], 3u);
  EXPECT_EQ(sizes[comp[4]], 3u);
}

TEST(Biconnected, DisconnectedGraphHandled) {
  const EdgeList edges{{0, 1}, {2, 3}, {3, 4}, {4, 2}};
  std::vector<std::size_t> sizes;
  const auto comp = biconnected_components(6, edges, sizes);  // vertex 5 isolated
  EXPECT_EQ(sizes[comp[0]], 1u);
  EXPECT_EQ(sizes[comp[1]], 3u);
}

TEST(Biconnected, EmptyGraph) {
  std::vector<std::size_t> sizes;
  const auto comp = biconnected_components(3, {}, sizes);
  EXPECT_TRUE(comp.empty());
  EXPECT_TRUE(sizes.empty());
}

// --- PieceGraph: SC-cycles ---------------------------------------------

TEST(PieceGraph, NoEdgesNoCycles) {
  PieceGraph g;
  g.add_piece(0, true);
  g.add_piece(1, false);
  g.finalize();
  EXPECT_FALSE(g.has_sc_cycle());
  EXPECT_FALSE(g.restricted(0));
}

TEST(PieceGraph, ClassicScCycle) {
  // t0 = {p0, p1} (update, chopped); t1 = single query q conflicting with
  // both pieces.  Cycle p0 - q - p1 - (S) - p0.
  PieceGraph g;
  const auto p0 = g.add_piece(0, true);
  const auto p1 = g.add_piece(0, true);
  const auto q = g.add_piece(1, false);
  g.add_s_edge(p0, p1);
  g.add_c_edge(p0, q, 10);
  g.add_c_edge(p1, q, 10);
  g.finalize();
  EXPECT_TRUE(g.has_sc_cycle());
  EXPECT_TRUE(g.c_edge_on_sc_cycle(1));
  EXPECT_TRUE(g.c_edge_on_sc_cycle(2));
  // Not an update-update violation: q is a query.
  EXPECT_FALSE(g.has_update_update_sc_cycle());
}

TEST(PieceGraph, ConflictWithOnePieceOnlyIsNoCycle) {
  PieceGraph g;
  const auto p0 = g.add_piece(0, true);
  const auto p1 = g.add_piece(0, true);
  const auto q = g.add_piece(1, false);
  g.add_s_edge(p0, p1);
  g.add_c_edge(p0, q, 10);  // only one C edge: no cycle possible
  g.finalize();
  EXPECT_FALSE(g.has_sc_cycle());
}

TEST(PieceGraph, MixedCycleThroughTwoChoppedTransactions) {
  // The case the naive C-component shortcut misses:
  // p0 -C- q0, q0 -S- q1, q1 -C- p1, p1 -S- p0.
  PieceGraph g;
  const auto p0 = g.add_piece(0, true);
  const auto p1 = g.add_piece(0, true);
  const auto q0 = g.add_piece(1, true);
  const auto q1 = g.add_piece(1, true);
  g.add_s_edge(p0, p1);
  g.add_s_edge(q0, q1);
  g.add_c_edge(p0, q0, 1);
  g.add_c_edge(p1, q1, 1);
  g.finalize();
  EXPECT_TRUE(g.has_sc_cycle());
  // All four pieces are updates and C edges join update pieces on the cycle.
  EXPECT_TRUE(g.has_update_update_sc_cycle());
}

TEST(PieceGraph, UpdateUpdateScCycleDetected) {
  // Paper Section 3's forbidden shape: an SC-cycle whose C edge joins two
  // update pieces (permanent inconsistency risk).
  PieceGraph g;
  const auto p0 = g.add_piece(0, true);
  const auto p1 = g.add_piece(0, true);
  const auto u = g.add_piece(1, true);  // unchopped update txn
  g.add_s_edge(p0, p1);
  g.add_c_edge(p0, u, 5);
  g.add_c_edge(p1, u, 5);
  g.finalize();
  EXPECT_TRUE(g.has_sc_cycle());
  EXPECT_TRUE(g.has_update_update_sc_cycle());
}

// --- Figure 1: restricted vs unrestricted pieces -------------------------

// Transaction t chopped into five pieces p1..p5.  Three C-cycles touch p1,
// p3 and p5; p2 and p4 have C edges that close no cycle.
class Figure1 : public ::testing::Test {
 protected:
  void SetUp() override {
    // t = txn 0 with pieces p1..p5 (indices 0..4), all update pieces.
    for (int i = 0; i < 5; ++i) p_[i] = g_.add_piece(0, true);
    for (int i = 0; i < 5; ++i) {
      for (int j = i + 1; j < 5; ++j) g_.add_s_edge(p_[i], p_[j]);
    }
    // C-cycle 1: p1 - t1 - t2 - p1.
    const auto t1 = g_.add_piece(1, true);
    const auto t2 = g_.add_piece(2, true);
    g_.add_c_edge(p_[0], t1, 1);
    g_.add_c_edge(t1, t2, 1);
    g_.add_c_edge(t2, p_[0], 1);
    // C-cycle 2: p3 - t3 - t4 - t5 - p3.
    const auto t3 = g_.add_piece(3, true);
    const auto t4 = g_.add_piece(4, true);
    const auto t5 = g_.add_piece(5, true);
    g_.add_c_edge(p_[2], t3, 1);
    g_.add_c_edge(t3, t4, 1);
    g_.add_c_edge(t4, t5, 1);
    g_.add_c_edge(t5, p_[2], 1);
    // C-cycle 3: p5 - t6 - t7 - p5.
    const auto t6 = g_.add_piece(6, true);
    const auto t7 = g_.add_piece(7, true);
    g_.add_c_edge(p_[4], t6, 1);
    g_.add_c_edge(t6, t7, 1);
    g_.add_c_edge(t7, p_[4], 1);
    // Dangling C edges from p2 and p4 (no cycle).
    const auto t8 = g_.add_piece(8, true);
    const auto t9 = g_.add_piece(9, true);
    g_.add_c_edge(p_[1], t8, 1);
    g_.add_c_edge(p_[3], t9, 1);
    g_.finalize();
  }

  PieceGraph g_;
  std::size_t p_[5];
};

TEST_F(Figure1, RestrictedMarksMatchThePaper) {
  EXPECT_TRUE(g_.restricted(p_[0]));   // p1
  EXPECT_FALSE(g_.restricted(p_[1]));  // p2
  EXPECT_TRUE(g_.restricted(p_[2]));   // p3
  EXPECT_FALSE(g_.restricted(p_[3]));  // p4
  EXPECT_TRUE(g_.restricted(p_[4]));   // p5
}

TEST_F(Figure1, DanglingCEdgesCreateNoScCycle) {
  // The paper: these C edges "form neither SC-cycles nor C-cycles" --
  // because each C-cycle touches exactly one piece of t, no SC-cycle exists.
  EXPECT_FALSE(g_.has_sc_cycle());
}

TEST_F(Figure1, DotExportMentionsEveryPiece) {
  const std::string dot = g_.to_dot();
  EXPECT_NE(dot.find("t0.p0"), std::string::npos);
  EXPECT_NE(dot.find("t0.p4"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // S edges
}

// --- Figure 3: Eq. 4 weights ---------------------------------------------

class Figure3 : public ::testing::Test {
 protected:
  void SetUp() override {
    p1_ = g_.add_piece(0, true);   // t1 chopped: p1
    p2_ = g_.add_piece(0, true);   // t1 chopped: p2
    t2_ = g_.add_piece(1, false);  // query
    t3_ = g_.add_piece(2, true);   // update
    t4_ = g_.add_piece(3, false);  // query
    s_index_ = g_.edges().size();
    g_.add_s_edge(p1_, p2_);
    c1_ = g_.edges().size();
    g_.add_c_edge(p1_, t2_, 2);  // W_c1 = 2
    c2_ = g_.edges().size();
    g_.add_c_edge(t2_, t3_, 1);  // W_c2 = 1
    c3_ = g_.edges().size();
    g_.add_c_edge(t3_, t4_, 4);  // W_c3 = 4
    c4_ = g_.edges().size();
    g_.add_c_edge(t4_, p2_, 8);  // W_c4 = 8
    g_.finalize();
  }

  PieceGraph g_;
  std::size_t p1_{}, p2_{}, t2_{}, t3_{}, t4_{};
  std::size_t s_index_{}, c1_{}, c2_{}, c3_{}, c4_{};
};

TEST_F(Figure3, TheScCycleExists) {
  EXPECT_TRUE(g_.has_sc_cycle());
  EXPECT_TRUE(g_.c_edge_on_sc_cycle(c1_));
  EXPECT_TRUE(g_.c_edge_on_sc_cycle(c2_));
  EXPECT_TRUE(g_.c_edge_on_sc_cycle(c3_));
  EXPECT_TRUE(g_.c_edge_on_sc_cycle(c4_));
}

TEST_F(Figure3, SEdgeWeightIsTwoPlusEight) {
  // CE(s) = C edges incident to p1 or p2 that lie on an SC-cycle: c1 and c4.
  // W_S(s) = 2 + 8 = 10, exactly the paper's number.
  EXPECT_EQ(g_.s_edge_weight(s_index_), 10);
}

TEST_F(Figure3, InterSiblingFuzzinessSumsSEdges) {
  EXPECT_EQ(g_.inter_sibling_fuzziness(0), 10);  // t1: its single S edge
  EXPECT_EQ(g_.inter_sibling_fuzziness(1), 0);   // unchopped txns have none
}

TEST_F(Figure3, NoUpdateUpdateViolation) {
  // C edges alternate update/query pieces around the cycle.
  EXPECT_FALSE(g_.has_update_update_sc_cycle());
}

TEST(PieceGraphWeights, InfiniteCEdgeWeightPropagatesToSEdge) {
  PieceGraph g;
  const auto p0 = g.add_piece(0, true);
  const auto p1 = g.add_piece(0, true);
  const auto q = g.add_piece(1, false);
  g.add_s_edge(p0, p1);
  g.add_c_edge(p0, q, kInfiniteLimit);
  g.add_c_edge(p1, q, 3);
  g.finalize();
  EXPECT_EQ(g.s_edge_weight(0), kInfiniteLimit);
  EXPECT_EQ(g.inter_sibling_fuzziness(0), kInfiniteLimit);
}

TEST(PieceGraphWeights, CEdgesOffTheCycleDoNotCount) {
  PieceGraph g;
  const auto p0 = g.add_piece(0, true);
  const auto p1 = g.add_piece(0, true);
  const auto q = g.add_piece(1, false);
  const auto r = g.add_piece(2, false);
  g.add_s_edge(p0, p1);
  g.add_c_edge(p0, q, 2);
  g.add_c_edge(p1, q, 8);
  g.add_c_edge(p0, r, 100);  // dangling: on no cycle
  g.finalize();
  EXPECT_EQ(g.s_edge_weight(0), 10);  // the 100 is excluded
}

TEST(PieceGraph, VertexLookupByTxnAndPiece) {
  PieceGraph g;
  const auto a = g.add_piece(3, true);
  const auto b = g.add_piece(3, true);
  const auto c = g.add_piece(7, false);
  EXPECT_EQ(g.vertex_of(3, 0), a);
  EXPECT_EQ(g.vertex_of(3, 1), b);
  EXPECT_EQ(g.vertex_of(7, 0), c);
  EXPECT_EQ(g.vertex_of(9, 0), PieceGraph::npos);
}

}  // namespace
}  // namespace atp
