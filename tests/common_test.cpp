#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"

namespace atp {
namespace {

TEST(Types, DistanceIsSymmetricAndNonNegative) {
  EXPECT_EQ(distance(3.0, 7.0), 4.0);
  EXPECT_EQ(distance(7.0, 3.0), 4.0);
  EXPECT_EQ(distance(-2.0, 2.0), 4.0);
  EXPECT_EQ(distance(5.0, 5.0), 0.0);
}

TEST(Types, InfiniteLimitDominatesEverything) {
  EXPECT_TRUE(kInfiniteLimit > 1e308);
  EXPECT_TRUE(1e18 + kInfiniteLimit == kInfiniteLimit);
}

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_FALSE(s.is_abort());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
}

TEST(Status, AbortClassification) {
  EXPECT_TRUE(Status::Aborted().is_abort());
  EXPECT_TRUE(Status::Deadlock().is_abort());
  EXPECT_TRUE(Status::EpsilonExceeded().is_abort());
  EXPECT_TRUE(Status::Timeout().is_abort());
  EXPECT_FALSE(Status::NotFound().is_abort());
  EXPECT_FALSE(Status::InvalidArgument().is_abort());
  EXPECT_FALSE(Status::Unavailable().is_abort());
}

TEST(Status, MessageRoundTrip) {
  Status s = Status::Deadlock("cycle through txn 7");
  EXPECT_EQ(s.code(), ErrorCode::kDeadlock);
  EXPECT_NE(s.to_string().find("cycle through txn 7"), std::string::npos);
  EXPECT_NE(s.to_string().find("deadlock"), std::string::npos);
}

TEST(Result, ValueAndStatusPaths) {
  Result<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  EXPECT_EQ(good.value_or(-1), 42);

  Result<int> bad(Status::NotFound("missing"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.uniform01();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformZeroIsZero) {
  Rng rng(9);
  EXPECT_EQ(rng.uniform(0), 0u);
  EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(Rng, UniformIsRoughlyUniform) {
  Rng rng(42);
  std::vector<int> buckets(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++buckets[rng.uniform(10)];
  for (int b : buckets) {
    EXPECT_NEAR(double(b), n / 10.0, n / 10.0 * 0.1);
  }
}

TEST(Rng, ChanceProbabilityIsCalibrated) {
  Rng rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(double(hits) / n, 0.3, 0.02);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(5);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent.next() == child.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Zipf, ThetaZeroIsUniform) {
  Rng rng(1);
  Zipf z(100, 0.0);
  std::vector<int> counts(100, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(rng)];
  for (int c : counts) EXPECT_NEAR(double(c), n / 100.0, n / 100.0 * 0.25);
}

TEST(Zipf, HighThetaSkewsToHead) {
  Rng rng(2);
  Zipf z(1000, 0.99);
  int head = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) head += (z.sample(rng) < 10);
  // With theta=0.99 the top-10 of 1000 items draw a large share.
  EXPECT_GT(head, n / 4);
}

TEST(Zipf, SamplesStayInRange) {
  Rng rng(4);
  Zipf z(7, 0.8);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.sample(rng), 7u);
}

TEST(Counter, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.get(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.get(), 42u);
  c.reset();
  EXPECT_EQ(c.get(), 0u);
}

TEST(Histogram, SummaryStatistics) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(double(i));
  const StatSummary s = h.summarize();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 100.0);
  EXPECT_NEAR(s.mean, 50.5, 1e-9);
  EXPECT_NEAR(s.p50, 50.0, 1.0);
  EXPECT_NEAR(s.p95, 95.0, 1.0);
  EXPECT_NEAR(s.p99, 99.0, 1.0);
}

TEST(Histogram, PercentilesInterpolateBetweenRanks) {
  Histogram h;
  for (int i = 1; i <= 20; ++i) h.record(double(i));
  const StatSummary s = h.summarize();
  // Fractional rank q*(n-1): p50 = 10.5, p95 = rank 18.05 -> 19.05.
  EXPECT_DOUBLE_EQ(s.p50, 10.5);
  EXPECT_NEAR(s.p95, 19.05, 1e-9);
  EXPECT_NEAR(s.p99, 19.81, 1e-9);
  // Degenerate cases stay stable.
  Histogram one;
  one.record(7);
  const StatSummary s1 = one.summarize();
  EXPECT_EQ(s1.p50, 7.0);
  EXPECT_EQ(s1.p99, 7.0);
}

TEST(Histogram, ReservoirBoundsMemoryButKeepsExactMoments) {
  Histogram h(/*reservoir_capacity=*/64);
  const int n = 10000;
  double sum = 0;
  for (int i = 1; i <= n; ++i) {
    h.record(double(i));
    sum += double(i);
  }
  EXPECT_EQ(h.reservoir_size(), 64u);  // bounded despite 10k samples
  const StatSummary s = h.summarize();
  // Count / min / max / sum / mean are exact; percentiles are estimates.
  EXPECT_EQ(s.count, std::uint64_t(n));
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, double(n));
  EXPECT_DOUBLE_EQ(s.sum, sum);
  EXPECT_DOUBLE_EQ(s.mean, sum / n);
  // A uniform reservoir of a uniform stream: the median estimate must land
  // well inside the middle half.
  EXPECT_GT(s.p50, n * 0.25);
  EXPECT_LT(s.p50, n * 0.75);
  EXPECT_GE(s.p95, s.p50);
  EXPECT_GE(s.p99, s.p95);
}

TEST(Histogram, SmallCountsAreExactBelowTheCap) {
  Histogram h(/*reservoir_capacity=*/64);
  for (int i = 1; i <= 10; ++i) h.record(double(i));
  EXPECT_EQ(h.reservoir_size(), 10u);
  const StatSummary s = h.summarize();
  EXPECT_DOUBLE_EQ(s.p50, 5.5);  // exact: the reservoir holds everything
  EXPECT_DOUBLE_EQ(s.p95, 9.55);
}

TEST(Histogram, EmptySummaryIsZeroes) {
  Histogram h;
  const StatSummary s = h.summarize();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.record(5);
  h.reset();
  EXPECT_EQ(h.summarize().count, 0u);
}

TEST(HistogramMerge, ExactBelowTheCap) {
  // Both reservoirs complete and their union fits: merge is concatenation,
  // so every statistic -- percentiles included -- is exact.
  Histogram a(64), b(64);
  for (int i = 1; i <= 10; ++i) a.record(double(i));
  for (int i = 11; i <= 20; ++i) b.record(double(i));
  a.merge(b);
  const StatSummary s = a.summarize();
  EXPECT_EQ(s.count, 20u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 20.0);
  EXPECT_DOUBLE_EQ(s.mean, 10.5);
  EXPECT_DOUBLE_EQ(s.p50, 10.5);  // identical to recording 1..20 directly
  EXPECT_NEAR(s.p95, 19.05, 1e-9);
}

TEST(HistogramMerge, EmptySidesAreNoOps) {
  Histogram a, b;
  a.record(3);
  a.merge(b);  // empty rhs: nothing changes
  EXPECT_EQ(a.summarize().count, 1u);
  EXPECT_DOUBLE_EQ(a.summarize().mean, 3.0);
  b.merge(a);  // empty lhs adopts rhs wholesale
  EXPECT_EQ(b.summarize().count, 1u);
  EXPECT_DOUBLE_EQ(b.summarize().p50, 3.0);
}

TEST(HistogramMerge, MomentsExactWhenReservoirsOverflow) {
  // Past the cap percentiles become estimates, but count/sum/mean/min/max
  // must merge exactly regardless.
  Histogram a(32), b(32);
  double sum = 0;
  for (int i = 1; i <= 5000; ++i) {
    a.record(double(i));
    sum += double(i);
  }
  for (int i = 5001; i <= 10000; ++i) {
    b.record(double(i));
    sum += double(i);
  }
  a.merge(b);
  const StatSummary s = a.summarize();
  EXPECT_EQ(s.count, 10000u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 10000.0);
  EXPECT_DOUBLE_EQ(s.sum, sum);
  EXPECT_DOUBLE_EQ(s.mean, sum / 10000.0);
  EXPECT_LE(a.reservoir_size(), 32u);  // the merge respects the cap
}

TEST(HistogramMerge, WeightsBySourceStreamSize) {
  // One side saw 100x the stream of the other; a reservoir-aware merge must
  // draw overwhelmingly from the big side.  Distinguishable values: big
  // stream records 1000s, small stream records 1s.
  Histogram big(64), small(64);
  for (int i = 0; i < 10000; ++i) big.record(1000.0);
  for (int i = 0; i < 100; ++i) small.record(1.0);
  big.merge(small);
  const StatSummary s = big.summarize();
  EXPECT_EQ(s.count, 10100u);
  // The combined stream is ~99% 1000-valued: the median estimate must be
  // 1000, not 1 (a reservoir-size-weighted merge would pull it way down,
  // since both reservoirs held 64 samples).
  EXPECT_DOUBLE_EQ(s.p50, 1000.0);
  EXPECT_DOUBLE_EQ(s.p95, 1000.0);
}

TEST(HistogramMerge, SelfMergeDoubles) {
  // merge() snapshots the rhs first, so folding a histogram into itself is
  // well-defined: counts double, the value distribution is unchanged.
  Histogram h(64);
  for (int i = 1; i <= 10; ++i) h.record(double(i));
  h.merge(h);
  const StatSummary s = h.summarize();
  EXPECT_EQ(s.count, 20u);
  EXPECT_DOUBLE_EQ(s.mean, 5.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 10.0);
}

TEST(HistogramMerge, ConcurrentRecordAndMergeIsSafe) {
  // Aggregation happens while workers still record; the merge must tolerate
  // concurrent writes on both sides (it locks each side in turn).
  Histogram target(128);
  Histogram source(128);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) source.record(1.0);
  });
  for (int i = 0; i < 100; ++i) target.merge(source);
  stop.store(true);
  writer.join();
  // No assertion beyond "no crash/race"; the count is whatever the
  // interleaving produced, but the summary must be self-consistent.
  const StatSummary s = target.summarize();
  EXPECT_GE(s.max, s.min);
  EXPECT_LE(target.reservoir_size(), 128u);
}

}  // namespace
}  // namespace atp
