// Direct unit tests for the divergence-control resolver (the component the
// sched_dc integration tests exercise through the full stack).  Since the
// multi-version store, DC queries never enter the lock manager: every read
// goes through read_fresh, which charges import fuzziness from version
// timestamps (|v_latest - v_snapshot|) and falls back to the snapshot
// version when the budget refuses.
#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "sched/dc_resolver.h"

namespace atp {
namespace {

class DcResolverTest : public ::testing::Test {
 protected:
  EtRegistry reg_;
  Store store_;
  DcResolver resolver_{reg_, store_};

  TxnId query(Value import_limit) {
    return reg_.begin(TxnKind::Query, EpsilonSpec::importing(import_limit));
  }
  TxnId update(Value export_limit) {
    return reg_.begin(TxnKind::Update, EpsilonSpec::exporting(export_limit));
  }

  /// Commit `value` onto `key` through the store's transactional path.
  void commit_value(Key key, Value value) {
    const TxnId u = update(0);
    ASSERT_TRUE(store_.write(u, key, value).ok());
    store_.commit_key(u, key);
    reg_.end_commit(u);
  }
};

TEST_F(DcResolverTest, FreshKeyReadsForFree) {
  store_.load(1, 100);
  const std::uint64_t snap = store_.snapshot_acquire();
  const TxnId q = query(100);
  std::unordered_map<Key, Value> charged;
  Result<VersionRead> v = resolver_.read_fresh(q, 1, snap, charged);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().value, 100);
  EXPECT_EQ(reg_.fuzziness_of(q), 0);  // snapshot == latest: nothing charged
  store_.snapshot_release(snap);
}

TEST_F(DcResolverTest, StaleKeyChargesVersionDistanceAndReadsFresh) {
  store_.load(1, 100);
  const std::uint64_t snap = store_.snapshot_acquire();
  const TxnId q = query(100);
  commit_value(1, 140);  // the key moves after the query's snapshot
  std::unordered_map<Key, Value> charged;
  Result<VersionRead> v = resolver_.read_fresh(q, 1, snap, charged);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().value, 140);        // freshest version
  EXPECT_EQ(reg_.fuzziness_of(q), 40);    // |140 - 100| imported
  EXPECT_EQ(charged[1], 40);
  store_.snapshot_release(snap);
}

TEST_F(DcResolverTest, BudgetRefusalFallsBackToSnapshotVersion) {
  store_.load(1, 100);
  const std::uint64_t snap = store_.snapshot_acquire();
  const TxnId q = query(10);  // cannot absorb a delta of 40
  commit_value(1, 140);
  std::unordered_map<Key, Value> charged;
  Result<VersionRead> v = resolver_.read_fresh(q, 1, snap, charged);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().value, 100);      // consistent snapshot version
  EXPECT_EQ(reg_.fuzziness_of(q), 0);   // and it costs nothing
  store_.snapshot_release(snap);
}

TEST_F(DcResolverTest, RereadChargesOnlyTheIncrease) {
  store_.load(1, 100);
  const std::uint64_t snap = store_.snapshot_acquire();
  const TxnId q = query(100);
  std::unordered_map<Key, Value> charged;

  commit_value(1, 120);
  Result<VersionRead> v1 = resolver_.read_fresh(q, 1, snap, charged);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1.value().value, 120);
  EXPECT_EQ(reg_.fuzziness_of(q), 20);

  commit_value(1, 150);  // moves further: divergence now 50, 20 already paid
  Result<VersionRead> v2 = resolver_.read_fresh(q, 1, snap, charged);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2.value().value, 150);
  EXPECT_EQ(reg_.fuzziness_of(q), 50);  // charged the increase only
  EXPECT_EQ(charged[1], 50);
  store_.snapshot_release(snap);
}

TEST_F(DcResolverTest, AlreadyPaidDivergenceReadsFreshWithoutNewCharge) {
  store_.load(1, 100);
  const std::uint64_t snap = store_.snapshot_acquire();
  const TxnId q = query(100);
  std::unordered_map<Key, Value> charged;
  commit_value(1, 140);
  ASSERT_TRUE(resolver_.read_fresh(q, 1, snap, charged).ok());
  ASSERT_EQ(reg_.fuzziness_of(q), 40);
  // Second read with the key unchanged: the paid divergence covers it.
  Result<VersionRead> v = resolver_.read_fresh(q, 1, snap, charged);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().value, 140);
  EXPECT_EQ(reg_.fuzziness_of(q), 40);  // no double charge
  store_.snapshot_release(snap);
}

TEST_F(DcResolverTest, MissingKeyIsNotFound) {
  const std::uint64_t snap = store_.snapshot_acquire();
  const TxnId q = query(100);
  std::unordered_map<Key, Value> charged;
  Result<VersionRead> v = resolver_.read_fresh(q, 99, snap, charged);
  EXPECT_EQ(v.status().code(), ErrorCode::kNotFound);
  store_.snapshot_release(snap);
}

TEST_F(DcResolverTest, KeyBornAfterSnapshotAbortsAsSnapshotTooOld) {
  const std::uint64_t snap = store_.snapshot_acquire();
  const TxnId q = query(100);
  commit_value(7, 500);  // created after the snapshot
  std::unordered_map<Key, Value> charged;
  Result<VersionRead> v = resolver_.read_fresh(q, 7, snap, charged);
  // The ring cannot distinguish "did not exist yet" from "versions evicted",
  // so this surfaces as snapshot-too-old; the piece runner resubmits.
  EXPECT_EQ(v.status().code(), ErrorCode::kAborted);
  store_.snapshot_release(snap);
}

TEST_F(DcResolverTest, NeverFuzzyGrantsLockConflicts) {
  // The resolver no longer relaxes the lock table at all: queries read
  // versions, and update-update conflicts stay pure 2PL.
  const TxnId q = query(1000);
  const TxnId u = update(1000);
  const std::vector<LockHolder> holders{{u, LockMode::Exclusive, false}};
  EXPECT_FALSE(resolver_.try_fuzzy_grant(q, LockMode::Shared, 1, holders));
  EXPECT_FALSE(resolver_.try_fuzzy_grant(u, LockMode::Exclusive, 1, holders));
  EXPECT_FALSE(
      resolver_.eligible_pair(q, LockMode::Shared, u, LockMode::Exclusive));
  EXPECT_FALSE(
      resolver_.eligible_pair(u, LockMode::Exclusive, q, LockMode::Shared));
}

TEST_F(DcResolverTest, UncommittedWritesAreInvisibleToQueries) {
  store_.load(1, 100);
  const std::uint64_t snap = store_.snapshot_acquire();
  const TxnId u = update(1000);
  ASSERT_TRUE(store_.write(u, 1, 900).ok());  // staged, not committed
  const TxnId q = query(1000);
  std::unordered_map<Key, Value> charged;
  Result<VersionRead> v = resolver_.read_fresh(q, 1, snap, charged);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().value, 100);     // dirty data can never leak
  EXPECT_EQ(reg_.fuzziness_of(q), 0);  // and uncommitted state costs nothing
  store_.snapshot_release(snap);
}

}  // namespace
}  // namespace atp
