// Direct unit tests for the 2PL divergence-control resolver (the component
// the sched_dc integration tests exercise through the full stack).
#include <gtest/gtest.h>

#include <vector>

#include "sched/dc_resolver.h"

namespace atp {
namespace {

class DcResolverTest : public ::testing::Test {
 protected:
  EtRegistry reg_;
  Store store_;
  DcResolver resolver_{reg_, store_};

  TxnId query(Value import_limit) {
    return reg_.begin(TxnKind::Query, EpsilonSpec::importing(import_limit));
  }
  TxnId update(Value export_limit) {
    return reg_.begin(TxnKind::Update, EpsilonSpec::exporting(export_limit));
  }
};

TEST_F(DcResolverTest, QueryOverDirtyUpdateChargesPendingDelta) {
  store_.load(1, 100);
  const TxnId u = update(100);
  const TxnId q = query(100);
  ASSERT_TRUE(store_.write(u, 1, 140).ok());  // pending delta 40

  const std::vector<LockHolder> holders{{u, LockMode::Exclusive, false}};
  EXPECT_TRUE(resolver_.try_fuzzy_grant(q, LockMode::Shared, 1, holders));
  EXPECT_EQ(reg_.fuzziness_of(q), 40);
  EXPECT_EQ(reg_.fuzziness_of(u), 40);
}

TEST_F(DcResolverTest, QueryRefusedWhenBudgetTooSmall) {
  store_.load(1, 100);
  const TxnId u = update(1000);
  const TxnId q = query(10);
  ASSERT_TRUE(store_.write(u, 1, 140).ok());
  const std::vector<LockHolder> holders{{u, LockMode::Exclusive, false}};
  EXPECT_FALSE(resolver_.try_fuzzy_grant(q, LockMode::Shared, 1, holders));
  EXPECT_EQ(reg_.fuzziness_of(q), 0);  // nothing charged
}

TEST_F(DcResolverTest, QueryRefusedOverCleanExclusiveLock) {
  // X held but nothing staged: no inconsistency exists yet; block like 2PL
  // (granting would invert the wait once the write cannot charge).
  store_.load(1, 100);
  const TxnId u = update(1000);
  const TxnId q = query(1000);
  const std::vector<LockHolder> holders{{u, LockMode::Exclusive, false}};
  EXPECT_FALSE(resolver_.try_fuzzy_grant(q, LockMode::Shared, 1, holders));
}

TEST_F(DcResolverTest, QueryRefusedOverUpdateUpdateConflict) {
  store_.load(1, 100);
  const TxnId u1 = update(1000);
  const TxnId u2 = update(1000);
  ASSERT_TRUE(store_.write(u1, 1, 150).ok());
  const std::vector<LockHolder> holders{{u1, LockMode::Exclusive, false}};
  // An update requesting S?  Updates read via X in this engine, but the
  // resolver must still refuse the (update, update) pairing.
  EXPECT_FALSE(resolver_.try_fuzzy_grant(u2, LockMode::Shared, 1, holders));
}

TEST_F(DcResolverTest, UpdatePeeksAnnouncedDeltaOverQueries) {
  store_.load(1, 100);
  const TxnId q1 = query(50);
  const TxnId q2 = query(50);
  const TxnId u = update(100);
  const std::vector<LockHolder> holders{{q1, LockMode::Shared, false},
                                        {q2, LockMode::Shared, false}};
  resolver_.announce_write_delta(u, 30);
  // Feasible: each query can import 30; export needs 2 x 30 = 60 <= 100.
  EXPECT_TRUE(resolver_.try_fuzzy_grant(u, LockMode::Exclusive, 1, holders));
  // Peek only -- no charge yet (the write charges).
  EXPECT_EQ(reg_.fuzziness_of(q1), 0);
  EXPECT_EQ(reg_.fuzziness_of(u), 0);
}

TEST_F(DcResolverTest, UpdateRefusedWhenAnnouncedDeltaTooLarge) {
  store_.load(1, 100);
  const TxnId q = query(10);
  const TxnId u = update(1000);
  const std::vector<LockHolder> holders{{q, LockMode::Shared, false}};
  resolver_.announce_write_delta(u, 30);
  EXPECT_FALSE(resolver_.try_fuzzy_grant(u, LockMode::Exclusive, 1, holders));
  resolver_.clear_write_delta(u);
  // Without an announcement the delta defaults to 0: grant for free (the
  // write itself will block/charge).
  EXPECT_TRUE(resolver_.try_fuzzy_grant(u, LockMode::Exclusive, 1, holders));
}

TEST_F(DcResolverTest, UpdateRefusedOverNonQueryHolder) {
  store_.load(1, 100);
  const TxnId other = update(1000);
  const TxnId u = update(1000);
  const std::vector<LockHolder> holders{{other, LockMode::Shared, false}};
  resolver_.announce_write_delta(u, 1);
  EXPECT_FALSE(resolver_.try_fuzzy_grant(u, LockMode::Exclusive, 1, holders));
}

TEST_F(DcResolverTest, NoFairnessBypass) {
  const TxnId q = query(1000);
  const TxnId u = update(1000);
  EXPECT_FALSE(
      resolver_.eligible_pair(q, LockMode::Shared, u, LockMode::Exclusive));
  EXPECT_FALSE(
      resolver_.eligible_pair(u, LockMode::Exclusive, q, LockMode::Shared));
}

TEST_F(DcResolverTest, AnnouncementsAreperTransaction) {
  store_.load(1, 100);
  const TxnId q = query(5);
  const TxnId u1 = update(1000);
  const TxnId u2 = update(1000);
  resolver_.announce_write_delta(u1, 500);
  // u2 announced nothing: its grant over q is free.
  const std::vector<LockHolder> holders{{q, LockMode::Shared, false}};
  EXPECT_TRUE(resolver_.try_fuzzy_grant(u2, LockMode::Exclusive, 1, holders));
  EXPECT_FALSE(resolver_.try_fuzzy_grant(u1, LockMode::Exclusive, 1, holders));
}

}  // namespace
}  // namespace atp
