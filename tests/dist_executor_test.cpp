// Multi-client distributed executor + workload-to-spec mapping.
#include <gtest/gtest.h>

#include <memory>

#include "dist/dist_executor.h"
#include "workload/banking.h"

namespace atp {
namespace {

using namespace std::chrono_literals;

class DistExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    NetworkOptions n;
    n.one_way_latency = std::chrono::microseconds(500);
    net_ = std::make_unique<SimNetwork>(2, n);
    DatabaseOptions dbo;
    dbo.scheduler = SchedulerKind::DC;
    dbo.lock_timeout = std::chrono::milliseconds(1000);
    for (SiteId s = 0; s < 2; ++s) {
      sites_owned_.push_back(std::make_unique<Site>(s, *net_, dbo));
      sites_.push_back(sites_owned_.back().get());
    }
    Coordinator::install_chop_handler(sites_);
    for (Site* s : sites_) s->start();
  }

  void TearDown() override {
    for (Site* s : sites_) s->stop();
  }

  // Banking over 2 sites: branch b's accounts live at site b.
  Workload banking_workload(std::size_t n) {
    BankingConfig cfg;
    cfg.branches = 2;
    cfg.accounts_per_branch = 16;
    cfg.max_transfer = 50;
    cfg.branch_audit_fraction = 0.1;
    cfg.update_epsilon = 10000;
    cfg.query_epsilon = 20000;
    Workload w = make_banking(cfg, n, 55);
    for (const auto& [key, value] : w.initial_data) {
      sites_[site_of(key)]->db().load(key, value);
    }
    return w;
  }

  static SiteId site_of(Key key) { return SiteId(key / 1'000'000); }

  std::unique_ptr<SimNetwork> net_;
  std::vector<std::unique_ptr<Site>> sites_owned_;
  std::vector<Site*> sites_;
};

TEST_F(DistExecutorTest, ToDistSpecsGroupsOpsBySite) {
  const Workload w = banking_workload(40);
  const auto specs = to_dist_specs(w, site_of);
  ASSERT_EQ(specs.size(), w.instances.size());
  for (const auto& spec : specs) {
    ASSERT_FALSE(spec.pieces.empty());
    ASSERT_LE(spec.pieces.size(), 2u);
    for (const auto& piece : spec.pieces) {
      for (const auto& op : piece.ops) {
        EXPECT_EQ(site_of(op.item), piece.site);
      }
    }
  }
}

TEST_F(DistExecutorTest, ChoppedModeCommitsAndConserves) {
  const Workload w = banking_workload(50);
  const auto specs = to_dist_specs(w, site_of);
  DistExecutorOptions opts;
  opts.clients = 3;
  opts.use_chopping = true;
  const auto report = DistExecutor::run(sites_, specs, opts);
  EXPECT_EQ(report.committed, specs.size());
  EXPECT_EQ(report.completed, specs.size());
  for (Site* s : sites_) {
    const auto qs = s->queues().stats();
    std::fprintf(stderr,
                 "site %u: outbound=%zu enq=%llu tx=%llu del=%llu cons=%llu "
                 "redel=%llu chop.update=%zu chop.query=%zu done=%zu\n",
                 s->id(), s->queues().outbound_backlog(),
                 (unsigned long long)qs.enqueued,
                 (unsigned long long)qs.transmitted,
                 (unsigned long long)qs.delivered,
                 (unsigned long long)qs.consumed,
                 (unsigned long long)qs.redelivered,
                 s->queues().depth("chop.update"),
                 s->queues().depth("chop.query"),
                 s->queues().depth(kDoneQueue));
  }

  Value sum = 0;
  for (Site* s : sites_) {
    for (const auto& [k, v] : s->db().store().snapshot_committed()) sum += v;
  }
  EXPECT_EQ(sum, w.total_money);
}

TEST_F(DistExecutorTest, TwoPhaseCommitModeCommitsAndConserves) {
  const Workload w = banking_workload(50);
  const auto specs = to_dist_specs(w, site_of);
  DistExecutorOptions opts;
  opts.clients = 3;
  opts.use_chopping = false;
  const auto report = DistExecutor::run(sites_, specs, opts);
  EXPECT_EQ(report.committed + report.aborted, specs.size());
  EXPECT_EQ(report.aborted, 0u);

  Value sum = 0;
  for (Site* s : sites_) {
    for (const auto& [k, v] : s->db().store().snapshot_committed()) sum += v;
  }
  EXPECT_EQ(sum, w.total_money);
}

TEST_F(DistExecutorTest, ChoppedClientLatencyBelow2pc) {
  const Workload w = banking_workload(40);
  const auto specs = to_dist_specs(w, site_of);
  DistExecutorOptions chopped;
  chopped.clients = 2;
  chopped.use_chopping = true;
  const auto a = DistExecutor::run(sites_, specs, chopped);

  const Workload w2 = banking_workload(40);
  const auto specs2 = to_dist_specs(w2, site_of);
  DistExecutorOptions tpc;
  tpc.clients = 2;
  tpc.use_chopping = false;
  const auto b = DistExecutor::run(sites_, specs2, tpc);

  // 0.5 ms one-way: 2PC clients pay >= 2 ms per cross-site txn; chopped
  // clients pay none of it.
  EXPECT_LT(a.client_latency_ms.p50, b.client_latency_ms.p50);
  EXPECT_GT(a.throughput_tps, b.throughput_tps);
}

}  // namespace
}  // namespace atp
